// Benchmark harness regenerating every evaluation artifact of the paper
// (see DESIGN.md §4 for the experiment index).  Each BenchmarkFigNN/
// BenchmarkChN corresponds to one figure or procedure of the paper; the
// ablation benches cover this reproduction's own design decisions.  The
// custom metrics reported via b.ReportMetric carry the paper-facing
// numbers (waiting times, severities, detection counts) alongside the
// usual ns/op.
package repro_test

import (
	"fmt"
	"io"
	"path/filepath"
	"testing"
	"time"

	"repro/ats"
	"repro/internal/analyzer"
	"repro/internal/asl"
	"repro/internal/conformance"
	"repro/internal/core"
	"repro/internal/distr"
	"repro/internal/experiments"
	"repro/internal/generator"
	"repro/internal/grindstone"
	"repro/internal/microbench"
	"repro/internal/mpi"
	"repro/internal/omp"
	"repro/internal/rescache"
	"repro/internal/trace"
	"repro/internal/vtime"
	"repro/internal/xctx"
)

// BenchmarkFig32_SingleProperty regenerates Figure 3.2: single-property
// test programs for imbalance_at_mpi_barrier with different distributions
// and severities, plus the init/finalize-overhead observation.
func BenchmarkFig32_SingleProperty(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig32(io.Discard, 8)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// Severity must track configuration: row 3 (x2) must exceed
			// row 2 (x0.5).
			b.ReportMetric(res.Sweep[0].Wait, "wait_block2_s")
			b.ReportMetric(res.Sweep[1].Wait, "wait_linear_s")
			b.ReportMetric(res.InitOverheadSmall*100, "init_ovh_small_%")
			b.ReportMetric(res.InitOverheadLarge*100, "init_ovh_large_%")
			if res.InitOverheadSmall <= res.InitOverheadLarge {
				b.Fatalf("init overhead should dominate the tiny program: %v vs %v",
					res.InitOverheadSmall, res.InitOverheadLarge)
			}
		}
	}
}

// BenchmarkFig33_CompositeAllMPI regenerates Figure 3.3: the composite
// program exercising every MPI property function; the analyzer must find
// all six property classes.
func BenchmarkFig33_CompositeAllMPI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig33(io.Discard, 16)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			detected := 0
			for _, ok := range res.Detected {
				if ok {
					detected++
				}
			}
			b.ReportMetric(float64(detected), "classes_detected")
			b.ReportMetric(float64(res.Events), "trace_events")
			if detected != len(res.Detected) {
				b.Fatalf("only %d of %d property classes detected", detected, len(res.Detected))
			}
		}
	}
}

// BenchmarkFig34_TwoCommunicators regenerates Figure 3.4: two property
// sets executing concurrently in split communicators.
func BenchmarkFig34_TwoCommunicators(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr, err := mpi.Run(mpi.Options{Procs: 16}, func(c *mpi.Comm) {
			core.TwoCommunicators(c, core.DefaultComposite())
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(tr.Events)), "trace_events")
		}
	}
}

// BenchmarkFig35_ExpertAnalysis regenerates Figure 3.5: the EXPERT-style
// analysis of the two-communicator run, checking the three-pane
// localization (property, call path, ranks).
func BenchmarkFig35_ExpertAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig34And35(io.Discard, 16)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			if !res.LateBcastOnUpperHalfOnly || !res.TopPathHasBcast {
				b.Fatalf("localization failed: %+v", res)
			}
			b.ReportMetric(float64(res.RootWorldRank), "bcast_root_world_rank")
		}
	}
}

// BenchmarkPositiveCorrectness runs every registered property function
// with defaults and verifies the analyzer's verdicts (§1 positive
// correctness).
func BenchmarkPositiveCorrectness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PositiveCorrectness(io.Discard, 8, 4)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			correct := 0
			for _, r := range rows {
				if r.Correct {
					correct++
				}
			}
			b.ReportMetric(float64(correct), "properties_correct")
			b.ReportMetric(float64(len(rows)), "properties_total")
			if correct != len(rows) {
				b.Fatalf("%d of %d properties misdetected", len(rows)-correct, len(rows))
			}
		}
	}
}

// BenchmarkNegativeCorrectness runs the well-tuned programs; any finding
// is a failure (§1 negative correctness).
func BenchmarkNegativeCorrectness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := experiments.NegativeCorrectness(io.Discard, 8, 4)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rs {
				if !r.AnalyzedOK {
					b.Fatalf("%s produced spurious finding %s", r.Program, r.TopProperty)
				}
			}
			b.ReportMetric(float64(len(rs)), "clean_programs")
		}
	}
}

// BenchmarkCh2_SemanticsPreservation runs the validation suite with and
// without instrumentation and compares digests (Chapter 2 procedure).
func BenchmarkCh2_SemanticsPreservation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Ch2(io.Discard, 4)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			if !res.SemanticsPreserved {
				b.Fatal("instrumentation changed program results")
			}
			b.ReportMetric(float64(res.Checks), "checks")
			b.ReportMetric(res.Intrusiveness.Overhead*100, "tracing_ovh_%")
		}
	}
}

// BenchmarkCh4_Applications runs the mini-applications tuned and with
// injected pathologies (Chapter 4).
func BenchmarkCh4_Applications(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Ch4Applications(io.Discard, 4)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			ok := 0
			for _, r := range rows {
				if r.AsDesired {
					ok++
				}
			}
			b.ReportMetric(float64(ok), "cases_as_desired")
			if ok != len(rows) {
				b.Fatalf("%d of %d application cases misbehaved: %+v", len(rows)-ok, len(rows), rows)
			}
		}
	}
}

// BenchmarkWorkAccuracy measures the §3.1.1 work-specification accuracy
// (virtual mode exactness; real mode only under -bench with -timeout
// headroom, here virtual only for stability).
func BenchmarkWorkAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.WorkAccuracy(io.Discard, false)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && !res.VirtualExact {
			b.Fatal("virtual work not exact")
		}
	}
}

// BenchmarkAblation_VirtualVsReal and the protocol ablation cover the
// reproduction's design decisions (DESIGN.md §5).
func BenchmarkAblation_EagerRendezvous(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Ablations(io.Discard, false)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.EagerLateReceiverWait, "eager_wait_s")
			b.ReportMetric(res.RendezvousLateReceiverWait, "rendezvous_wait_s")
			if res.EagerLateReceiverWait != 0 || res.RendezvousLateReceiverWait < 0.09 {
				b.Fatalf("protocol ablation unexpected: %+v", res)
			}
		}
	}
}

// BenchmarkSweep_SeverityScaling drives the ZENTURIO-style parameter
// sweep used throughout §3.2.
func BenchmarkSweep_SeverityScaling(b *testing.B) {
	spec, _ := core.Get("late_sender")
	pts := generator.GridFloat(spec, "extrawork", []float64{0.01, 0.02, 0.04, 0.08}, 8, 1)
	for i := 0; i < b.N; i++ {
		rs, err := generator.Sweep("late_sender", pts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rs[len(rs)-1].Wait/rs[0].Wait, "wait_ratio_8x")
		}
	}
}

// --- substrate microbenchmarks (SKaMPI / EPCC counterparts) -------------

func BenchmarkMicro_PingPong1K(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := microbench.PingPong([]int{1024}, 10, vtime.Virtual)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rs[0].RTT*1e6, "model_rtt_us")
		}
	}
}

func BenchmarkMicro_Collectives16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := microbench.Collectives([]int{16}, 1024, 5, vtime.Virtual); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicro_OMPOverheads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := microbench.OMPOverheads(4, 10, vtime.Virtual); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRuntime_* measure the host cost of the substrate itself (how
// expensive is simulating a rank/thread operation), which bounds the
// suite's usable scale.

func BenchmarkRuntime_P2PMessage(b *testing.B) {
	_, err := mpi.Run(mpi.Options{Procs: 2, Untraced: true}, func(c *mpi.Comm) {
		buf := mpi.AllocBuf(mpi.TypeByte, 64)
		c.Barrier()
		for i := 0; i < b.N; i++ {
			if c.Rank() == 0 {
				c.Send(buf, 1, 0)
			} else {
				c.Recv(buf, 0, 0)
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkRuntime_Barrier8(b *testing.B) {
	_, err := mpi.Run(mpi.Options{Procs: 8, Untraced: true}, func(c *mpi.Comm) {
		for i := 0; i < b.N; i++ {
			c.Barrier()
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkRuntime_Allreduce8(b *testing.B) {
	_, err := mpi.Run(mpi.Options{Procs: 8, Untraced: true}, func(c *mpi.Comm) {
		s := mpi.AllocBuf(mpi.TypeDouble, 64)
		r := mpi.AllocBuf(mpi.TypeDouble, 64)
		for i := 0; i < b.N; i++ {
			c.Allreduce(s, r, mpi.OpSum)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkRuntime_OMPParallel(b *testing.B) {
	_, err := omp.Run(omp.RunOptions{Threads: 4, Untraced: true},
		func(ctx *xctx.Ctx, opt omp.Options) {
			for i := 0; i < b.N; i++ {
				omp.Parallel(ctx, opt, func(tc *omp.TC) {})
			}
		})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkRuntime_TraceMergeAnalyze(b *testing.B) {
	tr, err := mpi.Run(mpi.Options{Procs: 8}, func(c *mpi.Comm) {
		core.CompositeAllMPI(c, core.DefaultComposite())
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analyzer.Analyze(tr, analyzer.Options{})
	}
	b.ReportMetric(float64(len(tr.Events)), "events")
}

func BenchmarkRuntime_TraceSerialize(b *testing.B) {
	tr, err := mpi.Run(mpi.Options{Procs: 8}, func(c *mpi.Comm) {
		core.CompositeAllMPI(c, core.DefaultComposite())
	})
	if err != nil {
		b.Fatal(err)
	}
	// Size the MB/s metric from one untimed write up front: SetBytes must
	// be in effect for the whole timed loop, not applied after the fact.
	n, err := tr.Write(io.Discard)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Write(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRuntime_ConformanceSweepCold and ..._Warm measure the result
// cache (internal/rescache) at the conformance-sweep granularity the
// tentpole targets: Cold runs a 10-seed oracle sweep against an empty
// store on every iteration (run+trace+analyze plus write-through), Warm
// runs the same sweep against a pre-populated store (pure cache
// replays).  The ratio between the two ns/op figures is the speedup a
// repeated `atsfuzz run -cache` sweep sees; doc/PERFORMANCE.md records
// the measured values.

// benchSweep runs one 10-seed conformance sweep through the cache.
func benchSweep(b *testing.B) {
	for seed := uint64(1); seed <= 10; seed++ {
		cs := conformance.Generate(seed, conformance.Config{})
		if _, err := conformance.CheckCached(cs, conformance.CheckOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRuntime_ConformanceSweepCold(b *testing.B) {
	defer conformance.SetResultCache(nil)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		store, err := rescache.Open(filepath.Join(b.TempDir(), "rescache"))
		if err != nil {
			b.Fatal(err)
		}
		conformance.SetResultCache(store)
		b.StartTimer()
		benchSweep(b)
	}
}

func BenchmarkRuntime_ConformanceSweepWarm(b *testing.B) {
	store, err := rescache.Open(filepath.Join(b.TempDir(), "rescache"))
	if err != nil {
		b.Fatal(err)
	}
	conformance.SetResultCache(store)
	defer conformance.SetResultCache(nil)
	benchSweep(b) // populate
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSweep(b)
	}
	st := store.Stats()
	if st.Hits == 0 {
		b.Fatal("warm sweep never hit the cache")
	}
	b.ReportMetric(float64(st.Hits)/float64(b.N), "hits/op")
}

// BenchmarkGenerator_AllPrograms measures single-property program
// generation (§3.2).
func BenchmarkGenerator_AllPrograms(b *testing.B) {
	specs := core.All()
	for i := 0; i < b.N; i++ {
		for _, s := range specs {
			if _, err := generator.Generate(s); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(specs)), "programs")
}

// BenchmarkTimelineRender measures the Vampir-stand-in renderer.
func BenchmarkTimelineRender(b *testing.B) {
	tr, err := mpi.Run(mpi.Options{Procs: 16}, func(c *mpi.Comm) {
		core.TwoCommunicators(c, core.DefaultComposite())
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trace.Timeline(tr, trace.TimelineOptions{Width: 120})
	}
}

// BenchmarkASL_CatalogEval measures parsing + evaluating a user ASL
// property catalog over an analyzed trace.
func BenchmarkASL_CatalogEval(b *testing.B) {
	tr, err := mpi.Run(mpi.Options{Procs: 8}, func(c *mpi.Comm) {
		core.CompositeAllMPI(c, core.DefaultComposite())
	})
	if err != nil {
		b.Fatal(err)
	}
	rep := analyzer.Analyze(tr, analyzer.Options{})
	const catalog = `
	property p2p { condition wait("late_sender") + wait("late_receiver") > 0.1;
	               severity (wait("late_sender") + wait("late_receiver")) / total_time(); }
	property coll { condition wait("late_broadcast") > 0 && wait("early_reduce") > 0; }
	property startup { condition region_time("MPI_Init") / total_time() > 0.5; }
	`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs, err := asl.EvalAll(catalog, rep)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			holds := 0
			for _, f := range fs {
				if f.Holds {
					holds++
				}
			}
			b.ReportMetric(float64(holds), "holding")
			if holds != 2 {
				b.Fatalf("expected 2 holding properties, got %d", holds)
			}
		}
	}
}

// BenchmarkGrindstone runs the Grindstone-style diagnostic programs
// (paper Ch. 2) and verifies their documented diagnoses.
func BenchmarkGrindstone(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range grindstone.Programs() {
			tr, err := mpi.Run(mpi.Options{Procs: 4}, func(c *mpi.Comm) {
				p.Run(c, grindstone.Config{})
			})
			if err != nil {
				b.Fatalf("%s: %v", p.Name, err)
			}
			if i == 0 {
				rep := analyzer.Analyze(tr, analyzer.Options{})
				switch p.Name {
				case "passive_server":
					if rep.Wait(analyzer.PropLateSender) <= 0 {
						b.Fatalf("%s: diagnosis missing", p.Name)
					}
				case "random_barrier":
					if rep.Wait(analyzer.PropWaitAtBarrier) <= 0 {
						b.Fatalf("%s: diagnosis missing", p.Name)
					}
				case "small_messages":
					if rep.Messages.AvgBytes > 64 {
						b.Fatalf("%s: avg message size %v", p.Name, rep.Messages.AvgBytes)
					}
				case "big_messages":
					if rep.Messages.AvgBytes < 1<<19 {
						b.Fatalf("%s: avg message size %v", p.Name, rep.Messages.AvgBytes)
					}
				}
			}
		}
	}
	b.ReportMetric(float64(len(grindstone.Programs())), "programs")
}

// BenchmarkScale_CompositeRanks measures the substrate's host-side cost at
// growing simulated rank counts — the scale ceiling a user cares about.
func BenchmarkScale_CompositeRanks(b *testing.B) {
	for _, procs := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr, err := mpi.Run(mpi.Options{Procs: procs, Timeout: 120 * time.Second},
					func(c *mpi.Comm) {
						core.ImbalanceAtMPIBarrier(c,
							mustDF(b), distrV2(0.001, 0.01), 3)
						buf := mpi.AllocBuf(mpi.TypeDouble, 16)
						c.Bcast(buf, 0)
					})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(len(tr.Events)), "events")
				}
			}
		})
	}
}

// BenchmarkScale_EventEngineRanks is the tentpole scale benchmark: the
// big-rank composite (compute skew, ring exchange, barriers) through the
// event-driven scheduler and the streaming pipeline at 4096–65536 simulated
// ranks in one process.  Reported metrics: trace events, peak sampled
// HeapAlloc (the O(ranks + pending events) memory claim), and event
// throughput.  The committed baselines under testdata/bench/ track these
// numbers release to release; doc/PERFORMANCE.md discusses them.
func BenchmarkScale_EventEngineRanks(b *testing.B) {
	for _, procs := range []int{4096, 16384, 65536} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := experiments.ScaleStreamed(io.Discard, []int{procs})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					r := rows[0]
					b.ReportMetric(float64(r.Events), "events")
					b.ReportMetric(float64(r.PeakHeap)/(1<<20), "peak-MiB")
					b.ReportMetric(r.EventsPerSec, "events/sec")
				}
			}
		})
	}
}

// BenchmarkStreamAnalyze measures the bounded-memory streaming pipeline —
// chunk spool, k-way merge, incremental analysis — on the same workload as
// BenchmarkScale_CompositeRanks, at rank counts where the materialized
// trace dominates memory.  Allocations are reported because bytes/op is
// the number this pipeline exists to bound (see doc/PERFORMANCE.md).
func BenchmarkStreamAnalyze(b *testing.B) {
	for _, procs := range []int{256, 1024} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := ats.RunMPIStream(
					ats.MPIOptions{Procs: procs, Timeout: 120 * time.Second}, 0,
					func(c *mpi.Comm) {
						core.ImbalanceAtMPIBarrier(c,
							mustDF(b), distrV2(0.001, 0.01), 3)
						buf := mpi.AllocBuf(mpi.TypeDouble, 16)
						c.Bcast(buf, 0)
					})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(out.Events), "events")
					if out.Report.Wait(analyzer.PropWaitAtBarrier) <= 0 {
						b.Fatal("streamed analysis missed imbalance_at_mpi_barrier")
					}
				}
			}
		})
	}
}

func mustDF(b *testing.B) distr.Func {
	f, ok := distr.Lookup("linear")
	if !ok {
		b.Fatal("linear distribution missing")
	}
	return f
}

func distrV2(low, high float64) distr.Desc {
	return distr.Val2{Low: low, High: high}
}
