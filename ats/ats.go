// Package ats is the public facade of the APART Test Suite reproduction.
//
// It ties the pieces together for downstream users: run a synthetic
// parallel program on the MPI-like or OpenMP-like substrate, collect its
// event trace, analyze it with the EXPERT-style automatic analyzer, and
// render Vampir-style timelines — everything needed to reproduce the
// paper's workflow of constructing positive/negative test programs and
// checking that an analysis tool detects, localizes and ranks the seeded
// performance properties.
//
// Quick start:
//
//	tr, err := ats.RunMPI(ats.MPIOptions{Procs: 8}, func(c *mpi.Comm) {
//		core.LateSender(c, 0.01, 0.05, 10)
//	})
//	rep := ats.Analyze(tr)
//	fmt.Print(rep.Render())
//
// For large rank counts the materialized trace dominates memory; the
// streaming entry points (RunMPIStream, RunOMPStream, RunPropertyStream)
// spill events to an on-disk chunk spool while the program executes and
// analyze them incrementally, producing a report byte-identical to the
// in-memory path with peak memory proportional to the location grid
// rather than the event count:
//
//	out, err := ats.RunMPIStream(ats.MPIOptions{Procs: 1024}, body)
//	fmt.Print(out.Report.Render())
//
// See doc/ARCHITECTURE.md for the package map and doc/FORMATS.md for the
// on-disk encodings.
package ats

import (
	"fmt"
	"os"

	"repro/internal/analyzer"
	"repro/internal/asl"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/omp"
	"repro/internal/trace"
	"repro/internal/vtime"
	"repro/internal/xctx"
)

// Re-exported option and result types, so typical users import only ats
// plus the substrate package(s) their program is written against.
type (
	// MPIOptions configures an MPI-style run (see mpi.Options).
	MPIOptions = mpi.Options
	// OMPOptions configures a standalone OpenMP-style run.
	OMPOptions = omp.RunOptions
	// TeamOptions configures individual parallel regions.
	TeamOptions = omp.Options
	// Report is an analysis result.
	Report = analyzer.Report
	// Trace is a merged event trace.
	Trace = trace.Trace
	// Args carries property-function parameter values (see core.Args).
	Args = core.Args
	// DistrSpec is the serializable form of a distribution argument.
	DistrSpec = core.DistrSpec
)

// NewArgs returns an empty property-argument set.  Generated
// single-property programs build their flag values into it, so they only
// need this facade package — the internal packages are not importable
// from outside this module.
func NewArgs() Args { return core.NewArgs() }

// RegisterASL compiles every `scenario` definition in the ASL source text
// and registers it as a property function, indistinguishable from the
// built-ins: RunProperty executes it, the generator emits a program for
// it, and the conformance oracle checks it against its ASL closed form.
// It returns the registered names.  See doc/ASL.md for the language.
func RegisterASL(src string) ([]string, error) { return asl.RegisterSource(src) }

// RegisterASLFile is RegisterASL over the contents of an .asl file.
func RegisterASLFile(path string) ([]string, error) { return asl.RegisterFile(path) }

// EvalASL parses ASL `property` definitions and evaluates them against an
// analysis report (custom-property checking, cf. examples/customproperty).
func EvalASL(src string, rep *Report) ([]asl.Finding, error) { return asl.EvalAll(src, rep) }

// Clock modes.
const (
	// Virtual selects deterministic logical time (the default).
	Virtual = vtime.Virtual
	// Real selects wall-clock time with calibrated busy-wait work.
	Real = vtime.Real
)

// Execution engines (MPIOptions.Engine).  EngineEvent is the Virtual-mode
// default: a single-stepped virtual-clock event scheduler that scales to
// 10⁴–10⁵ ranks in one process.  EngineGoroutine is goroutine-per-rank
// execution, the migration escape hatch and the only engine for Real mode.
const (
	EngineAuto      = mpi.EngineAuto
	EngineEvent     = mpi.EngineEvent
	EngineGoroutine = mpi.EngineGoroutine
)

// ParseEngine parses an -engine flag value ("auto", "event", "goroutine").
func ParseEngine(s string) (mpi.Engine, error) { return mpi.ParseEngine(s) }

// SetDefaultEngine sets the process-wide engine applied to runs whose
// Engine option is EngineAuto, for CLI tools with a single -engine flag.
func SetDefaultEngine(e mpi.Engine) { mpi.SetDefaultEngine(e) }

// RunMPI executes body on every rank of a fresh world and returns the
// merged trace.
func RunMPI(opt MPIOptions, body func(c *mpi.Comm)) (*Trace, error) {
	return mpi.Run(opt, body)
}

// RunOMP executes body as a standalone OpenMP-style program.
func RunOMP(opt OMPOptions, body func(ctx *xctx.Ctx, team TeamOptions)) (*Trace, error) {
	return omp.Run(opt, body)
}

// Analyze runs the automatic analyzer with default options.
func Analyze(tr *Trace) *Report {
	return analyzer.Analyze(tr, analyzer.Options{})
}

// AnalyzeWithThreshold runs the analyzer with a custom severity threshold.
func AnalyzeWithThreshold(tr *Trace, threshold float64) *Report {
	return analyzer.Analyze(tr, analyzer.Options{Threshold: threshold})
}

// Timeline renders a Vampir-style ASCII timeline of the trace.
func Timeline(tr *Trace, width int) string {
	return trace.Timeline(tr, trace.TimelineOptions{Width: width})
}

// StreamOutcome is the result of a streamed run: the analysis report plus
// the trace-shape metadata (location grid and event count) that a
// materialized run would carry in its Trace.  The events themselves were
// spilled to a temporary chunk spool and are gone by the time it returns.
type StreamOutcome struct {
	Report         *Report
	Ranks, Threads int
	Events         int
}

// streamed orchestrates one bounded-memory run: spool events through a
// temporary chunk file while run executes, then merge and analyze the
// spool incrementally.  The spool is removed before returning.
func streamed(threshold float64, run func(trace.Sink) error) (*StreamOutcome, error) {
	f, err := os.CreateTemp("", "ats-spool-*.atsc")
	if err != nil {
		return nil, err
	}
	spool := f.Name()
	f.Close()
	defer os.Remove(spool)

	w, err := trace.NewChunkWriter(spool, trace.DefaultSpillEvents)
	if err != nil {
		return nil, err
	}
	if err := run(w); err != nil {
		w.Abort()
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}

	r, err := trace.OpenChunkFile(spool)
	if err != nil {
		return nil, err
	}
	st, err := trace.NewStream(r)
	if err != nil {
		r.Close()
		return nil, err
	}
	defer st.Close()
	rep, err := analyzer.AnalyzeStream(st, analyzer.Options{Threshold: threshold})
	if err != nil {
		return nil, err
	}
	ranks, threads := st.Shape()
	return &StreamOutcome{Report: rep, Ranks: ranks, Threads: threads, Events: st.Events()}, nil
}

// RunMPIStream executes body like RunMPI but never materializes the
// trace: events are spilled to a temporary on-disk chunk spool as ranks
// execute and analyzed incrementally afterwards.  The report is
// byte-identical (same profile content hash) to Analyze on the
// materialized trace of the same run.  threshold zero selects the
// analyzer default.
func RunMPIStream(opt MPIOptions, threshold float64, body func(c *mpi.Comm)) (*StreamOutcome, error) {
	return streamed(threshold, func(sink trace.Sink) error {
		o := opt
		o.Sink = sink
		_, err := mpi.Run(o, body)
		return err
	})
}

// RunOMPStream is RunOMP through the bounded-memory streaming pipeline
// (see RunMPIStream).
func RunOMPStream(opt OMPOptions, threshold float64, body func(ctx *xctx.Ctx, team TeamOptions)) (*StreamOutcome, error) {
	return streamed(threshold, func(sink trace.Sink) error {
		o := opt
		o.Sink = sink
		_, err := omp.Run(o, body)
		return err
	})
}

// RunPropertyStream is RunProperty through the bounded-memory streaming
// pipeline (see RunMPIStream): the property runs with events spilled to a
// temporary spool and the report is computed incrementally.
func RunPropertyStream(name string, procs, threads int, threshold float64, a core.Args) (*StreamOutcome, error) {
	spec, ok := core.Get(name)
	if !ok {
		return nil, fmt.Errorf("ats: unknown property %q (have %v)", name, core.Names())
	}
	team := omp.Options{Threads: threads}
	if spec.Paradigm == core.ParadigmOMP {
		return RunOMPStream(OMPOptions{Threads: threads}, threshold, func(ctx *xctx.Ctx, _ TeamOptions) {
			spec.Run(core.Env{Ctx: ctx, OMP: team}, a)
		})
	}
	return RunMPIStream(MPIOptions{Procs: procs}, threshold, func(c *mpi.Comm) {
		spec.Run(core.Env{Comm: c, Ctx: c.Ctx(), OMP: team}, a)
	})
}

// SpoolProperty runs one registered property function with events
// spilled to an ATSC chunk spool at path, leaving the spool on disk
// instead of analyzing it — the producer half of the streaming
// pipeline, for handing a run to another process (e.g. uploading to an
// atsd analysis server).  Analyzing the spool elsewhere yields a report
// byte-identical to running the property in-process.
func SpoolProperty(name string, procs, threads int, a core.Args, path string) error {
	spec, ok := core.Get(name)
	if !ok {
		return fmt.Errorf("ats: unknown property %q (have %v)", name, core.Names())
	}
	w, err := trace.NewChunkWriter(path, trace.DefaultSpillEvents)
	if err != nil {
		return err
	}
	team := omp.Options{Threads: threads}
	var runErr error
	if spec.Paradigm == core.ParadigmOMP {
		_, runErr = omp.Run(OMPOptions{Threads: threads, Sink: w}, func(ctx *xctx.Ctx, _ TeamOptions) {
			spec.Run(core.Env{Ctx: ctx, OMP: team}, a)
		})
	} else {
		_, runErr = mpi.Run(MPIOptions{Procs: procs, Sink: w}, func(c *mpi.Comm) {
			spec.Run(core.Env{Comm: c, Ctx: c.Ctx(), OMP: team}, a)
		})
	}
	if runErr != nil {
		w.Abort()
		return runErr
	}
	return w.Close()
}

// RunProperty runs one registered property function as a single-property
// test program (paper §3.2) in a fresh environment and returns the trace.
// Pure-OpenMP properties run on a standalone team of `threads` threads;
// MPI and hybrid properties run on `procs` ranks (hybrid ones fork teams
// of `threads` threads per rank).
func RunProperty(name string, procs, threads int, a core.Args) (*Trace, error) {
	spec, ok := core.Get(name)
	if !ok {
		return nil, fmt.Errorf("ats: unknown property %q (have %v)", name, core.Names())
	}
	team := omp.Options{Threads: threads}
	if spec.Paradigm == core.ParadigmOMP {
		return RunOMP(OMPOptions{Threads: threads}, func(ctx *xctx.Ctx, _ TeamOptions) {
			spec.Run(core.Env{Ctx: ctx, OMP: team}, a)
		})
	}
	return RunMPI(MPIOptions{Procs: procs}, func(c *mpi.Comm) {
		spec.Run(core.Env{Comm: c, Ctx: c.Ctx(), OMP: team}, a)
	})
}

// RunPropertyDefaults is RunProperty with the spec's default arguments.
func RunPropertyDefaults(name string, procs, threads int) (*Trace, error) {
	spec, ok := core.Get(name)
	if !ok {
		return nil, fmt.Errorf("ats: unknown property %q", name)
	}
	return RunProperty(name, procs, threads, spec.Defaults())
}
