// Package ats is the public facade of the APART Test Suite reproduction.
//
// It ties the pieces together for downstream users: run a synthetic
// parallel program on the MPI-like or OpenMP-like substrate, collect its
// event trace, analyze it with the EXPERT-style automatic analyzer, and
// render Vampir-style timelines — everything needed to reproduce the
// paper's workflow of constructing positive/negative test programs and
// checking that an analysis tool detects, localizes and ranks the seeded
// performance properties.
//
// Quick start:
//
//	tr, err := ats.RunMPI(ats.MPIOptions{Procs: 8}, func(c *mpi.Comm) {
//		core.LateSender(c, 0.01, 0.05, 10)
//	})
//	rep := ats.Analyze(tr)
//	fmt.Print(rep.Render())
package ats

import (
	"fmt"

	"repro/internal/analyzer"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/omp"
	"repro/internal/trace"
	"repro/internal/vtime"
	"repro/internal/xctx"
)

// Re-exported option and result types, so typical users import only ats
// plus the substrate package(s) their program is written against.
type (
	// MPIOptions configures an MPI-style run (see mpi.Options).
	MPIOptions = mpi.Options
	// OMPOptions configures a standalone OpenMP-style run.
	OMPOptions = omp.RunOptions
	// TeamOptions configures individual parallel regions.
	TeamOptions = omp.Options
	// Report is an analysis result.
	Report = analyzer.Report
	// Trace is a merged event trace.
	Trace = trace.Trace
	// Args carries property-function parameter values (see core.Args).
	Args = core.Args
	// DistrSpec is the serializable form of a distribution argument.
	DistrSpec = core.DistrSpec
)

// NewArgs returns an empty property-argument set.  Generated
// single-property programs build their flag values into it, so they only
// need this facade package — the internal packages are not importable
// from outside this module.
func NewArgs() Args { return core.NewArgs() }

// Clock modes.
const (
	// Virtual selects deterministic logical time (the default).
	Virtual = vtime.Virtual
	// Real selects wall-clock time with calibrated busy-wait work.
	Real = vtime.Real
)

// RunMPI executes body on every rank of a fresh world and returns the
// merged trace.
func RunMPI(opt MPIOptions, body func(c *mpi.Comm)) (*Trace, error) {
	return mpi.Run(opt, body)
}

// RunOMP executes body as a standalone OpenMP-style program.
func RunOMP(opt OMPOptions, body func(ctx *xctx.Ctx, team TeamOptions)) (*Trace, error) {
	return omp.Run(opt, body)
}

// Analyze runs the automatic analyzer with default options.
func Analyze(tr *Trace) *Report {
	return analyzer.Analyze(tr, analyzer.Options{})
}

// AnalyzeWithThreshold runs the analyzer with a custom severity threshold.
func AnalyzeWithThreshold(tr *Trace, threshold float64) *Report {
	return analyzer.Analyze(tr, analyzer.Options{Threshold: threshold})
}

// Timeline renders a Vampir-style ASCII timeline of the trace.
func Timeline(tr *Trace, width int) string {
	return trace.Timeline(tr, trace.TimelineOptions{Width: width})
}

// RunProperty runs one registered property function as a single-property
// test program (paper §3.2) in a fresh environment and returns the trace.
// Pure-OpenMP properties run on a standalone team of `threads` threads;
// MPI and hybrid properties run on `procs` ranks (hybrid ones fork teams
// of `threads` threads per rank).
func RunProperty(name string, procs, threads int, a core.Args) (*Trace, error) {
	spec, ok := core.Get(name)
	if !ok {
		return nil, fmt.Errorf("ats: unknown property %q (have %v)", name, core.Names())
	}
	team := omp.Options{Threads: threads}
	if spec.Paradigm == core.ParadigmOMP {
		return RunOMP(OMPOptions{Threads: threads}, func(ctx *xctx.Ctx, _ TeamOptions) {
			spec.Run(core.Env{Ctx: ctx, OMP: team}, a)
		})
	}
	return RunMPI(MPIOptions{Procs: procs}, func(c *mpi.Comm) {
		spec.Run(core.Env{Comm: c, Ctx: c.Ctx(), OMP: team}, a)
	})
}

// RunPropertyDefaults is RunProperty with the spec's default arguments.
func RunPropertyDefaults(name string, procs, threads int) (*Trace, error) {
	spec, ok := core.Get(name)
	if !ok {
		return nil, fmt.Errorf("ats: unknown property %q", name)
	}
	return RunProperty(name, procs, threads, spec.Defaults())
}
