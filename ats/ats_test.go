package ats_test

import (
	"strings"
	"testing"

	"repro/ats"
	"repro/internal/analyzer"
	"repro/internal/core"
	"repro/internal/distr"
	"repro/internal/mpi"
	"repro/internal/profile"
	"repro/internal/xctx"
)

func TestRunMPIFacade(t *testing.T) {
	tr, err := ats.RunMPI(ats.MPIOptions{Procs: 4}, func(c *mpi.Comm) {
		c.Work(0.01)
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Locations) != 4 {
		t.Errorf("locations = %v", tr.Locations)
	}
	rep := ats.Analyze(tr)
	if rep.TotalTime <= 0 {
		t.Error("no total time")
	}
}

func TestRunOMPFacade(t *testing.T) {
	tr, err := ats.RunOMP(ats.OMPOptions{Threads: 3}, func(ctx *xctx.Ctx, team ats.TeamOptions) {
		core.ImbalanceAtOMPBarrier(ctx, team, mustDistr(t), mustDesc(), 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Locations) != 3 {
		t.Errorf("locations = %v", tr.Locations)
	}
}

func TestRunPropertyAllParadigms(t *testing.T) {
	for _, name := range []string{"late_sender", "imbalance_at_omp_barrier", "hybrid_barrier_after_omp_regions"} {
		tr, err := ats.RunPropertyDefaults(name, 4, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tr.Events) == 0 {
			t.Errorf("%s: empty trace", name)
		}
	}
}

func TestRunPropertyUnknown(t *testing.T) {
	if _, err := ats.RunPropertyDefaults("nope", 2, 2); err == nil {
		t.Error("unknown property accepted")
	}
	if _, err := ats.RunProperty("nope", 2, 2, core.NewArgs()); err == nil {
		t.Error("unknown property accepted")
	}
}

func TestTimelineFacade(t *testing.T) {
	tr, err := ats.RunPropertyDefaults("late_sender", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := ats.Timeline(tr, 50)
	if !strings.Contains(out, "legend") {
		t.Errorf("timeline output missing legend:\n%s", out)
	}
}

func TestAnalyzeWithThreshold(t *testing.T) {
	tr, err := ats.RunPropertyDefaults("late_sender", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	strict := ats.AnalyzeWithThreshold(tr, 0.99)
	if strict.Top() != nil {
		t.Error("99% threshold still produced findings")
	}
	loose := ats.AnalyzeWithThreshold(tr, 0.0001)
	if loose.Top() == nil || loose.Top().Property != analyzer.PropLateSender {
		t.Error("loose threshold missed the late sender")
	}
}

// TestStreamFacadeMatchesInMemory runs the Fig 3.4 two-communicator
// program — the richest composite in the suite — through both pipelines
// and requires byte-identical profiles.
func TestStreamFacadeMatchesInMemory(t *testing.T) {
	body := func(c *mpi.Comm) {
		core.TwoCommunicators(c, core.DefaultComposite())
	}
	tr, err := ats.RunMPI(ats.MPIOptions{Procs: 8}, body)
	if err != nil {
		t.Fatal(err)
	}
	rep := ats.Analyze(tr)

	out, err := ats.RunMPIStream(ats.MPIOptions{Procs: 8}, 0, body)
	if err != nil {
		t.Fatal(err)
	}
	if out.Events != len(tr.Events) {
		t.Fatalf("streamed %d events, materialized %d", out.Events, len(tr.Events))
	}
	if out.Ranks != 8 {
		t.Fatalf("streamed ranks = %d", out.Ranks)
	}
	want, err := profile.FromRun("fig34", tr, rep, profile.RunInfo{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := profile.FromAnalysis("fig34",
		profile.TraceInfo{Ranks: out.Ranks, Threads: out.Threads, Events: out.Events},
		out.Report, profile.RunInfo{})
	if err != nil {
		t.Fatal(err)
	}
	wantHash, err := want.Hash()
	if err != nil {
		t.Fatal(err)
	}
	gotHash, err := got.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if gotHash != wantHash {
		t.Fatalf("streamed profile hash %s != in-memory %s", gotHash, wantHash)
	}
}

// TestStreamFacadeOMPAndProperty covers the OMP and property-registry
// streaming entry points.
func TestStreamFacadeOMPAndProperty(t *testing.T) {
	out, err := ats.RunOMPStream(ats.OMPOptions{Threads: 3}, 0, func(ctx *xctx.Ctx, team ats.TeamOptions) {
		core.ImbalanceAtOMPBarrier(ctx, team, mustDistr(t), mustDesc(), 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Threads != 3 || out.Events == 0 {
		t.Fatalf("OMP stream outcome: %+v", out)
	}

	spec, ok := core.Get("late_sender")
	if !ok {
		t.Fatal("late_sender not registered")
	}
	pout, err := ats.RunPropertyStream("late_sender", 4, 1, 0.0001, spec.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if top := pout.Report.Top(); top == nil || top.Property != analyzer.PropLateSender {
		t.Fatalf("streamed property run missed the late sender: %+v", top)
	}
	if _, err := ats.RunPropertyStream("nope", 2, 2, 0, ats.NewArgs()); err == nil {
		t.Error("unknown property accepted")
	}
}

// mustDistr resolves a block2 distribution through the registry path the
// CLI drivers use.
func mustDistr(t *testing.T) distr.Func {
	t.Helper()
	ds := core.DistrSpec{Name: "block2", Low: 0.01, High: 0.05}
	df, _, err := ds.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	return df
}

func mustDesc() distr.Desc {
	ds := core.DistrSpec{Name: "block2", Low: 0.01, High: 0.05}
	_, dd, _ := ds.Resolve()
	return dd
}
