// Package repro is a from-scratch Go reproduction of the APART Test Suite
// (ATS) described in "Initial Design of a Test Suite for Automatic
// Performance Analysis Tools" (Mohr & Träff, FZJ-ZAM-IB-2002-13 / IPPS
// 2003): a framework for constructing synthetic parallel test programs
// with controllable performance pathologies, together with everything it
// needs that Go does not have — an MPI-like message-passing runtime, an
// OpenMP-like thread-team runtime, event tracing, and an EXPERT-style
// automatic analyzer to validate the suite against.
//
// Start with package repro/ats (the public facade), DESIGN.md (system
// inventory and per-experiment index), and EXPERIMENTS.md (paper-vs-
// measured results).  The benchmarks in this directory regenerate every
// figure of the paper; run them with:
//
//	go test -bench=. -benchmem
package repro
