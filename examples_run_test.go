package repro_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/asl"
	"repro/internal/conformance"
	"repro/internal/core"
)

// TestExamplesRun executes every example program end to end with `go run`
// and checks for the key line each must print.  Skipped with -short: the
// repeated compiles are slow on small machines.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example execution is slow")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go binary not available")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		dir  string
		args []string
		want []string
	}{
		{"quickstart", nil, []string{"late_sender", "analyzer measured 2.000s"}},
		{"composite", []string{"-procs", "8"}, []string{"late_broadcast", "early_reduce", "wait_at_nxn"}},
		{"multicommunicator", []string{"-procs", "8"}, []string{"late_broadcast", "MPI_Bcast"}},
		{"hybrid", []string{"-procs", "2", "-threads", "2"}, []string{"late_sender", "imbalance_at_omp_barrier"}},
		{"negative", nil, []string{"clean (no significant findings)"}},
		{"apps", nil, []string{"jacobi residual", "imbalance_in_omp_loop"}},
		{"customproperty", nil, []string{"sawtooth_detected", "HOLDS", "ASL scenario paired_delay_probe"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.dir, func(t *testing.T) {
			args := append([]string{"run", "./examples/" + tc.dir}, tc.args...)
			cmd := exec.Command(goBin, args...)
			cmd.Dir = wd
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example failed: %v\n%s", err, out)
			}
			for _, want := range tc.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("output missing %q:\n%s", want, out)
				}
			}
		})
	}
	// Sanity: the example list above covers every directory under
	// examples/ that holds a main package.
	entries, err := os.ReadDir(filepath.Join(wd, "examples"))
	if err != nil {
		t.Fatal(err)
	}
	covered := map[string]bool{}
	for _, tc := range cases {
		covered[tc.dir] = true
	}
	for _, e := range entries {
		if e.IsDir() && !covered[e.Name()] {
			t.Errorf("example %q not exercised by this test", e.Name())
		}
	}
}

// TestCatalogScenarioConformance holds the committed catalog scenario to
// the full oracle: detected at its closed-form magnitude (positive
// axis), nothing but its declared companions (negative axis), and
// deterministic across reruns and the streamed pipeline.
func TestCatalogScenarioConformance(t *testing.T) {
	names, err := asl.RegisterFile("examples/catalog.asl")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { asl.Unregister(names...) })
	spec, ok := core.Get("ramped_exchange")
	if !ok {
		t.Fatalf("ramped_exchange not in %v", names)
	}
	args := spec.Defaults()
	out, err := conformance.Check(conformance.Case{
		Schema: conformance.CaseSchema, Procs: 4, Threads: 1, Threshold: 0.005,
		Props: []conformance.CaseProp{{
			Name: spec.Name, Float: args.Float, Int: args.Int, Distr: args.Distr,
		}},
	}, conformance.CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK() {
		t.Errorf("catalog scenario fails the oracle: %v", out.Violations)
	}
}

// TestCatalogScenarioRoundTrip runs the scenario committed in
// examples/catalog.asl through the real atsrun binary: registered from
// the file, executed, and its declared detection reported by the
// analyzer.  This is the CLI face of the doc/ASL.md pipeline.
func TestCatalogScenarioRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("go run compile is slow")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go binary not available")
	}
	cmd := exec.Command(goBin, "run", "./cmd/atsrun",
		"-asl", "examples/catalog.asl", "-property", "ramped_exchange", "-procs", "4")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("atsrun failed: %v\n%s", err, out)
	}
	for _, want := range []string{
		"registered ASL scenarios: ramped_exchange",
		"late_sender",         // the declared detection fires...
		"wait_at_mpi_barrier", // ...and so does the companion primitive's
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("atsrun output missing %q:\n%s", want, out)
		}
	}
}
