package repro_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestExamplesRun executes every example program end to end with `go run`
// and checks for the key line each must print.  Skipped with -short: the
// repeated compiles are slow on small machines.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example execution is slow")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go binary not available")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		dir  string
		args []string
		want []string
	}{
		{"quickstart", nil, []string{"late_sender", "analyzer measured 2.000s"}},
		{"composite", []string{"-procs", "8"}, []string{"late_broadcast", "early_reduce", "wait_at_nxn"}},
		{"multicommunicator", []string{"-procs", "8"}, []string{"late_broadcast", "MPI_Bcast"}},
		{"hybrid", []string{"-procs", "2", "-threads", "2"}, []string{"late_sender", "imbalance_at_omp_barrier"}},
		{"negative", nil, []string{"clean (no significant findings)"}},
		{"apps", nil, []string{"jacobi residual", "imbalance_in_omp_loop"}},
		{"customproperty", nil, []string{"sawtooth_detected", "HOLDS"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.dir, func(t *testing.T) {
			args := append([]string{"run", "./examples/" + tc.dir}, tc.args...)
			cmd := exec.Command(goBin, args...)
			cmd.Dir = wd
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example failed: %v\n%s", err, out)
			}
			for _, want := range tc.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("output missing %q:\n%s", want, out)
				}
			}
		})
	}
	// Sanity: the example list above covers every directory under
	// examples/ that holds a main package.
	entries, err := os.ReadDir(filepath.Join(wd, "examples"))
	if err != nil {
		t.Fatal(err)
	}
	covered := map[string]bool{}
	for _, tc := range cases {
		covered[tc.dir] = true
	}
	for _, e := range entries {
		if e.IsDir() && !covered[e.Name()] {
			t.Errorf("example %q not exercised by this test", e.Name())
		}
	}
}
