// Quickstart: construct a synthetic test program with one seeded
// performance property (a late sender), run it on 8 simulated MPI ranks,
// and check that the automatic analyzer detects, quantifies, and
// localizes it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/ats"
	"repro/internal/core"
	"repro/internal/mpi"
)

func main() {
	// Each iteration the even ranks work 60ms while the odd ranks work
	// 10ms and then wait in MPI_Recv: a textbook late sender worth
	// 4 pairs × 50ms × 10 reps = 2s of waiting.
	const basework, extrawork, reps = 0.01, 0.05, 10

	tr, err := ats.RunMPI(ats.MPIOptions{Procs: 8}, func(c *mpi.Comm) {
		core.LateSender(c, basework, extrawork, reps)
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("timeline of the synthetic program:")
	fmt.Print(ats.Timeline(tr, 96))
	fmt.Println()

	rep := ats.Analyze(tr)
	fmt.Print(rep.Render())

	want := 4 * extrawork * reps
	got := rep.Wait("late_sender")
	fmt.Printf("\nseeded waiting time %.3fs, analyzer measured %.3fs\n", want, got)
}
