// Composite test program (paper Fig 3.3): one run invoking every MPI
// property function back to back with different severities — the quick
// way to count how many property classes an analysis tool can detect.
//
//	go run ./examples/composite [-procs 16]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/ats"
	"repro/internal/core"
	"repro/internal/mpi"
)

func main() {
	procs := flag.Int("procs", 16, "number of MPI processes")
	flag.Parse()

	tr, err := ats.RunMPI(ats.MPIOptions{Procs: *procs}, func(c *mpi.Comm) {
		core.CompositeAllMPI(c, core.DefaultComposite())
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("composite program: %d property functions, %d trace events\n\n",
		len(core.CompositeMPIProperties), len(tr.Events))
	fmt.Print(ats.Timeline(tr, 120))
	fmt.Println()
	rep := ats.AnalyzeWithThreshold(tr, 0.001)
	fmt.Print(rep.Render())
}
