// Negative correctness (paper §1): well-tuned synthetic programs with no
// seeded performance problem.  A correct automatic analysis tool must
// report nothing above its threshold for these — spurious diagnoses are
// as much a tool bug as missed ones.
//
//	go run ./examples/negative
package main

import (
	"fmt"
	"log"

	"repro/ats"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/omp"
	"repro/internal/xctx"
)

func main() {
	check := func(name string, tr *ats.Trace, err error) {
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		rep := ats.Analyze(tr)
		if top := rep.Top(); top != nil {
			fmt.Printf("%-28s SPURIOUS finding %s (%.2f%%)\n",
				name, top.Property, top.Severity*100)
		} else {
			fmt.Printf("%-28s clean (no significant findings)\n", name)
		}
	}

	tr, err := ats.RunMPI(ats.MPIOptions{Procs: 8}, func(c *mpi.Comm) {
		core.NegativeBalancedMPI(c, 0.02, 10)
	})
	check("balanced MPI program", tr, err)

	tr, err = ats.RunOMP(ats.OMPOptions{Threads: 4}, func(ctx *xctx.Ctx, team ats.TeamOptions) {
		core.NegativeBalancedOMP(ctx, team, 0.02, 10)
	})
	check("balanced OpenMP program", tr, err)

	tr, err = ats.RunMPI(ats.MPIOptions{Procs: 4}, func(c *mpi.Comm) {
		core.NegativeBalancedHybrid(c, omp.Options{Threads: 4}, 0.02, 5)
	})
	check("balanced hybrid program", tr, err)
}
