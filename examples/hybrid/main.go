// Hybrid MPI+OpenMP composite (paper §3.3, closing scenario): property
// functions from both paradigms in one program — per-rank OpenMP barrier
// imbalance, MPI-level late senders, and the cause-and-effect property
// where thread imbalance inside the sending ranks delays their MPI sends.
//
//	go run ./examples/hybrid [-procs 4] [-threads 4]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/ats"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/omp"
)

func main() {
	procs := flag.Int("procs", 4, "number of MPI processes")
	threads := flag.Int("threads", 4, "OpenMP threads per process")
	flag.Parse()

	tr, err := ats.RunMPI(ats.MPIOptions{Procs: *procs}, func(c *mpi.Comm) {
		core.CompositeHybrid(c, omp.Options{Threads: *threads}, core.DefaultComposite())
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hybrid run: %d ranks × %d threads, %d locations in the trace\n\n",
		*procs, *threads, len(tr.Locations))
	fmt.Print(ats.Timeline(tr, 120))
	fmt.Println()
	fmt.Print(ats.AnalyzeWithThreshold(tr, 0.001).Render())
}
