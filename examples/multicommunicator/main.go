// Multi-communicator composite (paper Figs 3.4 and 3.5): the world is
// split into halves running different property sets concurrently; the
// analysis must attribute each property to the correct communicator's
// ranks — in particular Late Broadcast to the upper half, excluding its
// communicator-local root 1 (world rank procs/2+1).
//
//	go run ./examples/multicommunicator [-procs 16]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/ats"
	"repro/internal/core"
	"repro/internal/mpi"
)

func main() {
	procs := flag.Int("procs", 16, "number of MPI processes (even)")
	flag.Parse()
	if *procs%2 != 0 || *procs < 4 {
		log.Fatal("need an even process count >= 4")
	}

	tr, err := ats.RunMPI(ats.MPIOptions{Procs: *procs}, func(c *mpi.Comm) {
		core.TwoCommunicators(c, core.DefaultComposite())
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("lower half runs %v\nupper half runs %v (bcast root: world rank %d)\n\n",
		core.LowerHalfProperties, core.UpperHalfProperties,
		*procs/2+core.UpperHalfBcastRoot)
	fmt.Print(ats.Timeline(tr, 120))
	fmt.Println()

	rep := ats.AnalyzeWithThreshold(tr, 0.001)
	fmt.Print(rep.RenderTree())
	fmt.Println()
	// The two EXPERT panes of Fig 3.5 for the Late Broadcast property.
	fmt.Print(rep.RenderCallPaths("late_broadcast"))
	fmt.Println()
	fmt.Print(rep.RenderLocations("late_broadcast"))
}
