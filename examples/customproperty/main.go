// Custom extension walkthrough: the ATS framework is designed so that
// "users can provide their own distribution functions and distribution
// descriptors" (§3.1.2) and so that the property-function collection can
// grow (§5).  This example adds all three user extension points:
//
//  1. a custom distribution (a sawtooth over the ranks),
//
//  2. a custom property function registered with the suite (so atsrun
//     and the generator pick it up like any built-in), and
//
//  3. a custom ASL property catalog evaluated against the run, and
//
//  4. a custom property *defined* in ASL: a scenario declaration
//     (doc/ASL.md) compiled into a registered property function with a
//     closed-form expected severity.
//
//     go run ./examples/customproperty
package main

import (
	"fmt"
	"log"

	"repro/ats"
	"repro/internal/asl"
	"repro/internal/core"
	"repro/internal/distr"
	"repro/internal/mpi"
)

func main() {
	// (1) A custom distribution: rank r gets Low + (r mod 4) × (High-Low)/3.
	err := distr.Register("sawtooth4", "val2",
		func(me, sz int, scale float64, dd distr.Desc) float64 {
			v := dd.(distr.Val2)
			step := (v.High - v.Low) / 3
			return (v.Low + float64(me%4)*step) * scale
		})
	if err != nil {
		log.Fatal(err)
	}

	// (2) A custom property function using it, registered like the
	// built-ins: sawtooth imbalance released by an Allreduce.
	err = core.Register(&core.Spec{
		Name:     "sawtooth_imbalance_at_allreduce",
		Paradigm: core.ParadigmMPI,
		Help:     "sawtooth work imbalance in front of MPI_Allreduce (user-defined)",
		Params: []core.Param{
			{Name: "distr", Kind: core.ParamDistr,
				DefDistr: core.DistrSpec{Name: "sawtooth4", Low: 0.01, High: 0.07},
				Help:     "work distribution"},
			{Name: "r", Kind: core.ParamInt, DefInt: 5, Help: "repetitions"},
		},
		Run: func(env core.Env, a core.Args) {
			df, dd := a.D("distr")
			env.Comm.Begin("sawtooth_imbalance_at_allreduce")
			defer env.Comm.End()
			s := env.Comm.BaseBuf()
			r := env.Comm.BaseBuf()
			for i := 0; i < a.I("r"); i++ {
				env.Comm.DoWork(df, dd, 1.0)
				env.Comm.Allreduce(s, r, mpi.OpSum)
			}
		},
		ExpectedWait: func(p, _ int, a core.Args) float64 { return -1 },
	})
	if err != nil {
		log.Fatal(err)
	}

	// Run it through the same facade as any built-in property.
	tr, err := ats.RunPropertyDefaults("sawtooth_imbalance_at_allreduce", 8, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ats.Timeline(tr, 96))
	rep := ats.Analyze(tr)
	fmt.Println()
	fmt.Print(rep.RenderTree())

	// (3) A custom ASL catalog judging the run.
	catalog := `
	property sawtooth_detected {
	    condition severity("wait_at_nxn") > 0.05;
	    severity  severity("wait_at_nxn");
	}
	property too_much_startup {
	    condition region_time("MPI_Init") / total_time() > 0.25;
	}
	`
	findings, err := asl.EvalAll(catalog, rep)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nASL catalog verdicts:")
	for _, f := range findings {
		if f.Holds {
			fmt.Printf("  %-24s HOLDS (severity %.2f%%)\n", f.Name, f.Severity*100)
		} else {
			fmt.Printf("  %-24s does not hold\n", f.Name)
		}
	}

	// (4) The reverse direction: a new synthetic property defined
	// entirely in ASL.  The scenario compiles to a core.Spec — the same
	// registry entry a hand-written Go property gets — and carries its
	// own closed-form expected wait.
	names, err := ats.RegisterASL(`
	scenario paired_delay_probe {
	    help "every odd rank's receive blocks behind a delayed send";
	    param extra float = 0.02 in [0.01, 0.04];
	    param r     int   = 3    in [1, 6];
	    inject delayed_send(0.002, extra, r);
	    detects "late_sender";
	    severity floor(ranks() / 2) * extra * r;
	}`)
	if err != nil {
		log.Fatal(err)
	}
	scenario, _ := core.Get(names[0])
	tr2, err := ats.RunPropertyDefaults(scenario.Name, 8, 1)
	if err != nil {
		log.Fatal(err)
	}
	rep2 := ats.Analyze(tr2)
	fmt.Printf("\nASL scenario %s: closed form %.3fs, analyzer measured %.3fs of late_sender wait\n",
		scenario.Name,
		scenario.ExpectedWait(8, 1, scenario.Defaults()),
		rep2.Wait("late_sender"))
}
