# Example ASL property catalog for atsanalyze -asl.
#
# Evaluate against any serialized trace:
#
#   go run ./cmd/atsrun -property late_sender -procs 8 -trace /tmp/t.ats
#   go run ./cmd/atsanalyze -asl examples/catalog.asl /tmp/t.ats

property dominant_p2p_waiting {
    condition wait("late_sender") + wait("late_receiver") > 0.05 * total_time();
    severity  (wait("late_sender") + wait("late_receiver")) / total_time();
}

property collective_waiting {
    condition wait("late_broadcast") + wait("early_reduce") + wait("wait_at_nxn") > 0;
    severity  (wait("late_broadcast") + wait("early_reduce") + wait("wait_at_nxn")) / total_time();
}

property latency_bound_messaging {
    condition msg_count() > 100 && msg_avg_bytes() < 256;
    severity  region_time("MPI_Recv") / total_time();
}

property startup_dominates {
    condition (region_time("MPI_Init") + region_time("MPI_Finalize")) / total_time() > 0.5;
    severity  (region_time("MPI_Init") + region_time("MPI_Finalize")) / total_time();
}

property omp_thread_waiting {
    condition wait("imbalance_at_omp_barrier") + wait("imbalance_in_omp_loop")
            + wait("imbalance_in_omp_region") > 0.02 * total_time();
    severity  (wait("imbalance_at_omp_barrier") + wait("imbalance_in_omp_loop")
            + wait("imbalance_in_omp_region")) / total_time();
}
