# Example ASL catalog (doc/ASL.md): checking properties for
# atsanalyze -asl, plus a defining scenario that atsrun/atsfuzz can run
# as a property function.
#
# Evaluate the properties against any serialized trace:
#
#   go run ./cmd/atsrun -property late_sender -procs 8 -trace /tmp/t.ats
#   go run ./cmd/atsanalyze -asl examples/catalog.asl /tmp/t.ats
#
# Run the scenario like a built-in property:
#
#   go run ./cmd/atsrun -asl examples/catalog.asl -property ramped_exchange -procs 4
#   go run ./cmd/atsfuzz run -seeds 25 -asl examples/catalog.asl

property dominant_p2p_waiting {
    condition wait("late_sender") + wait("late_receiver") > 0.05 * total_time();
    severity  (wait("late_sender") + wait("late_receiver")) / total_time();
}

property collective_waiting {
    condition wait("late_broadcast") + wait("early_reduce") + wait("wait_at_nxn") > 0;
    severity  (wait("late_broadcast") + wait("early_reduce") + wait("wait_at_nxn")) / total_time();
}

property latency_bound_messaging {
    condition msg_count() > 100 && msg_avg_bytes() < 256;
    severity  region_time("MPI_Recv") / total_time();
}

property startup_dominates {
    condition (region_time("MPI_Init") + region_time("MPI_Finalize")) / total_time() > 0.5;
    severity  (region_time("MPI_Init") + region_time("MPI_Finalize")) / total_time();
}

# A defining scenario: a new synthetic property with late senders
# alongside a skewed barrier and a message-size ramp.  The severity
# clause is its closed-form expected wait, so the conformance oracle
# can hold the analyzer to it; wait_at_mpi_barrier is a companion.
scenario ramped_exchange {
    help "late senders alongside a skewed barrier and a size ramp";
    param base  float = 0.004 in [0.002, 0.008];
    param extra float = 0.02  in [0.01, 0.04];
    param work  distr = block2(0.004, 0.02);
    param r     int   = 2     in [1, 4];
    inject delayed_send(base, extra, r);
    inject skewed_barrier(work, r);
    inject ramp_send(128, 4096, r);
    detects "late_sender";
    localize "exchange_core";
    severity floor(ranks() / 2) * extra * r;
}

property omp_thread_waiting {
    condition wait("imbalance_at_omp_barrier") + wait("imbalance_in_omp_loop")
            + wait("imbalance_in_omp_region") > 0.02 * total_time();
    severity  (wait("imbalance_at_omp_barrier") + wait("imbalance_in_omp_loop")
            + wait("imbalance_in_omp_region")) / total_time();
}
