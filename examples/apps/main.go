// Applications (paper Chapter 4): the suite must also exercise tools on
// realistically structured programs, not just synthetic kernels.  This
// example runs the bundled mini-applications tuned and with injected
// pathologies and shows what a correct tool reports for each.
//
//	go run ./examples/apps
package main

import (
	"fmt"
	"log"

	"repro/ats"
	"repro/internal/apps"
	"repro/internal/mpi"
)

func main() {
	show := func(name string, tr *ats.Trace, err error) {
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		rep := ats.Analyze(tr)
		fmt.Printf("--- %s ---\n", name)
		if top := rep.Top(); top != nil {
			fmt.Printf("top finding: %s (%.2f%%) at %s\n",
				top.Property, top.Severity*100, top.TopPath())
		} else {
			fmt.Println("clean (no significant findings)")
		}
		fmt.Println()
	}

	tr, err := ats.RunMPI(ats.MPIOptions{Procs: 4}, func(c *mpi.Comm) {
		r := apps.Jacobi(c, apps.JacobiConfig{Rows: 64, Iters: 10, CellCost: 5e-6})
		if c.Rank() == 0 {
			fmt.Printf("jacobi residual %.6g checksum %.6g\n", r.Residual, r.Checksum)
		}
	})
	show("Jacobi (tuned)", tr, err)

	tr, err = ats.RunMPI(ats.MPIOptions{Procs: 4}, func(c *mpi.Comm) {
		apps.Jacobi(c, apps.JacobiConfig{Rows: 64, Iters: 10, CellCost: 5e-6,
			Inject: apps.InjectImbalance})
	})
	show("Jacobi (imbalanced decomposition)", tr, err)

	tr, err = ats.RunMPI(ats.MPIOptions{Procs: 4}, func(c *mpi.Comm) {
		apps.MasterWorker(c, apps.MasterWorkerConfig{Tasks: 24, TaskCost: 2e-3})
	})
	show("master/worker farm (uniform tasks)", tr, err)

	tr, err = ats.RunMPI(ats.MPIOptions{Procs: 4}, func(c *mpi.Comm) {
		apps.MasterWorker(c, apps.MasterWorkerConfig{Tasks: 24, TaskCost: 2e-3,
			Inject: apps.InjectImbalance, SkewFactor: 40})
	})
	show("master/worker farm (one giant task)", tr, err)

	tr, err = ats.RunMPI(ats.MPIOptions{Procs: 4}, func(c *mpi.Comm) {
		apps.Pipeline(c, apps.PipelineConfig{Blocks: 16, StageCost: 2e-3,
			Inject: apps.InjectSlowRank, SkewFactor: 5})
	})
	show("pipeline (slow middle stage)", tr, err)

	tr, err = ats.RunMPI(ats.MPIOptions{Procs: 2}, func(c *mpi.Comm) {
		apps.HybridHeat(c, apps.HybridHeatConfig{Rows: 32, Iters: 5, CellCost: 1e-4,
			Inject: apps.InjectImbalance})
	})
	show("hybrid heat (skewed OpenMP loop)", tr, err)
}
