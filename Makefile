# Developer / CI entry points for the ATS-Go reproduction.
#
#   make check   — everything CI runs: vet, build, tests (incl. -race),
#                  and the regression smoke against the committed seed
#                  baseline under testdata/regress-store.
#   make smoke   — just the regression smoke: regenerate the Fig 3.5
#                  profile and diff it against the committed baseline
#                  (non-zero exit on drift).
#   make fuzz    — conformance-fuzzer smoke: a fixed-seed atsfuzz run, a
#                  perturbed (robustness-axis) run, plus a replay of the
#                  committed corpus (CI's second job).
#   make baseline— re-seed testdata/regress-store from a fresh run (only
#                  after an intentional severity change; commit the result).
#   make bench-json — run the Runtime/Scale/StreamAnalyze benchmark suite
#                  and drop a machine-readable snapshot at
#                  testdata/bench/BENCH_<date>.json (commit it to extend
#                  the perf trajectory).
#   make docs    — documentation conformance: every relative markdown link
#                  resolves, and the README command-line reference matches
#                  the flags the cmd/ binaries define.
#   make server-smoke — end-to-end atsd smoke: start the analysis server
#                  on a temp store, submit a conformance case and a
#                  streamed ATSC upload, verify dedup caching, and verify
#                  injected drift fails the client with exit 1.
#   make cache-smoke — result-cache smoke: run a seeded atsfuzz sweep
#                  twice against one cache (warm pass must hit >=95% and
#                  print byte-identical stdout), check -procs 2 output
#                  equality, and exercise `atsfuzz cache gc`.
#   make similar-smoke — similarity-index smoke: index a copy of the
#                  committed seed store plus generated profiles, assert
#                  `atsregress similar` top-1 self-match, recall >= 0.9
#                  vs brute force on 500 synthetic profiles, and
#                  rebuild == incremental update of the persistent log.
#   make asl-smoke — ASL scenario-pipeline smoke: register the scenario
#                  committed in examples/catalog.asl via `atsrun -asl`,
#                  run it on both rank engines (traces and reports must
#                  be byte-identical), check the declared detection, and
#                  sweep it through `atsfuzz run/diff -asl`.
#   make bench-diff — compare the two newest committed BENCH_*.json
#                  snapshots; non-zero exit if any benchmark regressed
#                  more than 25% (override with TOL=<pct>).

GO ?= go
STORE := testdata/regress-store
FIG35 := fig35_two_communicators.json
CORPUS := testdata/conformance-corpus
FUZZ_SEEDS ?= 100
BENCH_DIR := testdata/bench

TOL ?= 25

.PHONY: check vet build test race smoke fuzz baseline bench-json bench-diff docs server-smoke cache-smoke similar-smoke asl-smoke

check: vet build test race smoke docs

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) run ./cmd/atsbench -only fig35 -profiles "$$tmp" >/dev/null && \
	$(GO) run ./cmd/atsregress check -store $(STORE) "$$tmp/$(FIG35)"

fuzz:
	$(GO) run ./cmd/atsfuzz run -seeds $(FUZZ_SEEDS) -start 1
	$(GO) run ./cmd/atsfuzz run -seeds 20 -start 1 -perturb
	$(GO) run ./cmd/atsfuzz replay $(CORPUS)/*.json

baseline:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) run ./cmd/atsbench -only fig35 -profiles "$$tmp" >/dev/null && \
	$(GO) run ./cmd/atsregress save -store $(STORE) "$$tmp/$(FIG35)"

bench-json:
	@mkdir -p $(BENCH_DIR)
	$(GO) test -run '^$$' -bench '^Benchmark(Runtime_|Scale_|StreamAnalyze)' -benchtime 3x . \
		| $(GO) run ./cmd/benchjson -out $(BENCH_DIR)/BENCH_$$(date +%Y%m%d).json

docs:
	$(GO) test -run '^TestDocs' .

bench-diff:
	@old=$$(ls $(BENCH_DIR)/BENCH_*.json | sort | tail -2 | head -1) && \
	new=$$(ls $(BENCH_DIR)/BENCH_*.json | sort | tail -1) && \
	[ "$$old" != "$$new" ] || { echo "bench-diff: need two snapshots in $(BENCH_DIR)"; exit 1; } && \
	$(GO) run ./cmd/benchjson -diff -tol $(TOL) "$$old" "$$new"

server-smoke:
	GO="$(GO)" sh scripts/server-smoke.sh

cache-smoke:
	GO="$(GO)" sh scripts/cache-smoke.sh

similar-smoke:
	GO="$(GO)" sh scripts/similar-smoke.sh

asl-smoke:
	GO="$(GO)" sh scripts/asl-smoke.sh
