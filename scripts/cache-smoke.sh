#!/usr/bin/env sh
# End-to-end smoke of the result cache (internal/rescache) at the
# atsfuzz CLI surface.  Proves the tentpole contract on a real binary:
#
#   1. a warm `atsfuzz run -cache` sweep re-serves >=95% of its results
#      from the cache and prints byte-identical stdout to the cold run;
#   2. a multi-process sweep (-procs 2) over a fresh cache prints
#      byte-identical stdout to the in-process cold run;
#   3. `atsfuzz cache gc` keeps a healthy cache intact and collects a
#      corrupted entry;
#   4. a warm run after gc still hits.
#
# Run via `make cache-smoke`.
set -eu

GO=${GO:-go}
SEEDS=${CACHE_SMOKE_SEEDS:-20}

tmp=$(mktemp -d)
bin="$tmp/bin"
cache="$tmp/cache"
mkdir -p "$bin"

cleanup() { rm -rf "$tmp"; }
trap cleanup EXIT INT TERM

echo "== building atsfuzz"
$GO build -o "$bin" ./cmd/atsfuzz

run_sweep() { # extra-args... ; writes stdout to $1, stderr to $2
    out=$1; err=$2; shift 2
    "$bin/atsfuzz" run -seeds "$SEEDS" -start 1 -v "$@" >"$out" 2>"$err"
}

echo "== cold sweep ($SEEDS seeds, empty cache)"
run_sweep "$tmp/cold.out" "$tmp/cold.err" -cache "$cache"
grep 'rescache:' "$tmp/cold.err"

echo "== warm sweep (same cache)"
run_sweep "$tmp/warm.out" "$tmp/warm.err" -cache "$cache"
grep 'rescache:' "$tmp/warm.err"

echo "== warm stdout must be byte-identical to cold"
cmp "$tmp/cold.out" "$tmp/warm.out"

echo "== warm hit rate must be >= 95%"
# stderr line: "rescache: H hits, M misses, P writes (R% hit rate) at DIR"
hits=$(sed -n 's/^rescache: \([0-9]*\) hits.*/\1/p' "$tmp/warm.err")
misses=$(sed -n 's/^rescache: [0-9]* hits, \([0-9]*\) misses.*/\1/p' "$tmp/warm.err")
total=$((hits + misses))
[ "$total" -gt 0 ] || { echo "no cache traffic on warm run" >&2; exit 1; }
pct=$((hits * 100 / total))
echo "   $hits hits / $total lookups = ${pct}%"
[ "$pct" -ge 95 ] || { echo "warm hit rate ${pct}% < 95%" >&2; exit 1; }

echo "== -procs 2 over a fresh cache must match the in-process sweep"
run_sweep "$tmp/procs.out" "$tmp/procs.err" -procs 2 -j 2 -cache "$tmp/cache2"
cmp "$tmp/cold.out" "$tmp/procs.out"

echo "== cache gc keeps a healthy cache"
"$bin/atsfuzz" cache gc -dir "$cache" | tee "$tmp/gc.out"
grep 'removed 0 stale' "$tmp/gc.out"

echo "== cache gc collects a corrupted entry"
victim=$(find "$cache/objects" -name '*.json' | head -1)
echo garbage >"$victim"
"$bin/atsfuzz" cache gc -dir "$cache" | grep 'removed 1 stale'

echo "== post-gc warm sweep still serves hits and identical bytes"
run_sweep "$tmp/post.out" "$tmp/post.err" -cache "$cache"
cmp "$tmp/cold.out" "$tmp/post.out"
grep 'rescache:' "$tmp/post.err"

echo "== cache smoke OK"
