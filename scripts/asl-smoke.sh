#!/usr/bin/env sh
# End-to-end smoke of the ASL scenario pipeline (doc/ASL.md) at the CLI
# surface, on the scenario committed in examples/catalog.asl:
#
#   1. `atsrun -asl` registers the catalog's scenario next to the
#      built-ins (visible in -list);
#   2. the scenario runs on BOTH rank engines and the serialized traces
#      and analysis reports are byte-identical;
#   3. the analyzer detects the scenario's declared property and its
#      companion on the run;
#   4. `atsfuzz run/diff -asl` accept the catalog into the fuzzed pool.
#
# Run via `make asl-smoke`.
set -eu

GO=${GO:-go}
CATALOG=examples/catalog.asl
SCENARIO=ramped_exchange

tmp=$(mktemp -d)
bin="$tmp/bin"
mkdir -p "$bin"

cleanup() { rm -rf "$tmp"; }
trap cleanup EXIT INT TERM

echo "== building atsrun and atsfuzz"
$GO build -o "$bin" ./cmd/atsrun ./cmd/atsfuzz

echo "== catalog scenario registers next to the built-ins"
"$bin/atsrun" -asl "$CATALOG" -list >"$tmp/list.out" 2>"$tmp/list.err"
grep "registered ASL scenarios: $SCENARIO" "$tmp/list.err"
grep "^$SCENARIO " "$tmp/list.out"

echo "== scenario runs byte-identically on both engines"
"$bin/atsrun" -asl "$CATALOG" -property "$SCENARIO" -procs 4 \
    -engine event -trace "$tmp/event.ats" >"$tmp/event.out" 2>/dev/null
"$bin/atsrun" -asl "$CATALOG" -property "$SCENARIO" -procs 4 \
    -engine goroutine -trace "$tmp/goroutine.ats" >"$tmp/goroutine.out" 2>/dev/null
cmp "$tmp/event.ats" "$tmp/goroutine.ats"
cmp "$tmp/event.out" "$tmp/goroutine.out"

echo "== analyzer detects the declared property and its companion"
grep 'late_sender' "$tmp/event.out"
grep 'wait_at_mpi_barrier' "$tmp/event.out"

echo "== atsfuzz accepts the catalog into the fuzzed pool"
"$bin/atsfuzz" run -seeds 10 -start 1 -asl "$CATALOG" 2>"$tmp/fuzz.err"
grep "registered 1 ASL scenario(s)" "$tmp/fuzz.err"
"$bin/atsfuzz" diff -seeds 5 -asl "$CATALOG" 2>/dev/null

echo "== asl smoke OK"
