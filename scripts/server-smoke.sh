#!/usr/bin/env sh
# End-to-end smoke of the atsd analysis server against a temp store:
# start the daemon, save a baseline from a conformance case and from a
# streamed ATSC spool, prove resubmission hits the dedup cache, and
# prove injected drift fails with exit 1.  Run via `make server-smoke`.
set -eu

ADDR=${ATSD_ADDR:-127.0.0.1:7341}
URL="http://$ADDR"
GO=${GO:-go}
CORPUS=testdata/conformance-corpus

tmp=$(mktemp -d)
bin="$tmp/bin"
mkdir -p "$bin"

cleanup() {
    [ -n "${atsd_pid:-}" ] && kill "$atsd_pid" 2>/dev/null || true
    [ -n "${atsd_pid:-}" ] && wait "$atsd_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "== building atsd, atsregress, atsrun"
$GO build -o "$bin" ./cmd/atsd ./cmd/atsregress ./cmd/atsrun

echo "== starting atsd on $ADDR (store $tmp/store)"
"$bin/atsd" -addr "$ADDR" -store "$tmp/store" >"$tmp/atsd.log" 2>&1 &
atsd_pid=$!

for i in $(seq 1 50); do
    if "$bin/atsregress" ping -server "$URL" >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$atsd_pid" 2>/dev/null; then
        echo "atsd died during startup:" >&2
        cat "$tmp/atsd.log" >&2
        exit 1
    fi
    sleep 0.2
done
"$bin/atsregress" ping -server "$URL"

echo "== submit conformance case, save as baseline"
"$bin/atsregress" submit -server "$URL" -save "$CORPUS/seed001.json"

echo "== resubmit: must be served from the dedup cache"
out=$("$bin/atsregress" submit -server "$URL" "$CORPUS/seed001.json")
echo "$out"
case "$out" in
*"(cached)"*) ;;
*) echo "FAIL: resubmission was not served from the cache" >&2; exit 1 ;;
esac

echo "== spool a late_sender run, upload the ATSC stream, save as baseline"
"$bin/atsrun" -property late_sender -procs 4 -spool "$tmp/run.atsc"
"$bin/atsregress" submit -server "$URL" -experiment smoke_ls -save "$tmp/run.atsc"

echo "== clean resubmission of the same stream must pass"
"$bin/atsregress" submit -server "$URL" -experiment smoke_ls "$tmp/run.atsc"

echo "== inject drift (5x extrawork): submit must exit 1"
"$bin/atsrun" -property late_sender -procs 4 -set extrawork=0.25 -spool "$tmp/drift.atsc"
if "$bin/atsregress" submit -server "$URL" -experiment smoke_ls "$tmp/drift.atsc"; then
    echo "FAIL: drifted submission did not fail" >&2
    exit 1
else
    rc=$?
    if [ "$rc" -ne 1 ]; then
        echo "FAIL: drifted submission exited $rc, want 1" >&2
        exit 1
    fi
fi

echo "== server stats"
"$bin/atsregress" ping -server "$URL"
echo "server-smoke OK"
