#!/usr/bin/env sh
# End-to-end smoke of the similarity index (`atsregress similar` and the
# persistent LSH log): build an index over a copy of the committed seed
# store plus generated profiles, assert top-1 self-match, recall >= 0.9
# vs brute force on 500 synthetic profiles, and that an incrementally
# grown index answers exactly like one rebuilt from scratch.  The
# committed testdata/regress-store is copied first and never written.
# Run via `make similar-smoke`.
set -eu

GO=${GO:-go}
SEED_STORE=testdata/regress-store

tmp=$(mktemp -d)
bin="$tmp/bin"
mkdir -p "$bin"
trap 'rm -rf "$tmp"' EXIT INT TERM

echo "== building atsregress, atsbench"
$GO build -o "$bin" ./cmd/atsregress ./cmd/atsbench

echo "== copying committed seed store (the committed tree is never indexed in place)"
cp -R "$SEED_STORE" "$tmp/store"
SEED_HASH=$(basename "$(find "$tmp/store/objects" -name '*.json' | head -n 1)" .json)

echo "== growing the store copy with freshly generated profiles"
"$bin/atsbench" -only fig32 -profiles "$tmp/prof" >/dev/null
"$bin/atsbench" -only fig33 -profiles "$tmp/prof" >/dev/null
"$bin/atsbench" -only fig35 -profiles "$tmp/prof" >/dev/null
"$bin/atsregress" save -store "$tmp/store" "$tmp/prof"/*.json

echo "== similar by committed hash: top-1 must be the query itself"
out=$("$bin/atsregress" similar -store "$tmp/store" -k 3 "$SEED_HASH")
echo "$out"
case "$out" in
"hash"*) ;;
*) echo "FAIL: no result table" >&2; exit 1 ;;
esac
top=$(echo "$out" | sed -n 2p)
case "$top" in
"$(echo "$SEED_HASH" | cut -c1-12)"*1.000000*) ;;
*) echo "FAIL: top-1 is not the query at similarity 1 (got: $top)" >&2; exit 1 ;;
esac

echo "== similar by profile file: the stored twin must lead"
prof=$(ls "$tmp/prof"/*.json | head -n 1)
out=$("$bin/atsregress" similar -store "$tmp/store" "$prof")
echo "$out"
case "$out" in
*1.000000*) ;;
*) echo "FAIL: file query did not find its stored twin" >&2; exit 1 ;;
esac

echo "== recall >= 0.9 vs brute force on 500 synthetic profiles"
$GO test ./internal/similarity/ -run TestQueryRecallSmall -count=1

echo "== rebuild == incremental (persistent log replay, reversed insertion)"
$GO test ./internal/regress/ -run 'TestStorePutUpdatesIndexIncrementally|TestStoreSimilarSelfMatch' -count=1

echo "== committed seed store must be untouched"
if [ -e "$SEED_STORE/similarity" ]; then
    echo "FAIL: committed seed store grew an index" >&2
    exit 1
fi
if ! git diff --quiet -- "$SEED_STORE" 2>/dev/null; then
    echo "FAIL: committed seed store was modified" >&2
    exit 1
fi

echo "similar-smoke OK"
