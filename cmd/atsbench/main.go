// Command atsbench regenerates every evaluation artifact of the paper in
// one run: the Fig 3.2 single-property sweeps and timelines, the Fig 3.3
// composite, the Fig 3.4/3.5 two-communicator program with its
// EXPERT-style analysis, the positive/negative correctness tables, the
// Chapter-2 semantics-preservation and intrusiveness procedures, the
// Chapter-4 application runs, the microbenchmark tables, and the
// reproduction's design ablations.  Its output is the source material for
// EXPERIMENTS.md.
//
// Usage:
//
//	atsbench                 # everything, virtual clock only
//	atsbench -real           # include real-clock (wall time) experiments
//	atsbench -only fig35     # one experiment
//	atsbench -profiles DIR   # also emit one canonical profile per run,
//	                         # ready for `atsregress save` / `check`
//	atsbench -j 8            # run experiment campaigns 8 jobs at a time
//	                         # (output and profiles identical for any -j)
//	atsbench -only scale -stream
//	                         # streamed-vs-materialized memory comparison,
//	                         # extended to 1024 ranks
//	atsbench -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
//	                         # pprof profiles of the bench run itself
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/analyzer"
	"repro/internal/campaign"
	"repro/internal/conformance"
	"repro/internal/experiments"
	"repro/internal/grindstone"
	"repro/internal/microbench"
	"repro/internal/mpi"
	"repro/internal/profile"
	"repro/internal/rescache"
	"repro/internal/trace"
	"repro/internal/vtime"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("atsbench: ")
	var (
		procs      = flag.Int("procs", 16, "MPI processes for the figure experiments")
		threads    = flag.Int("threads", 4, "OpenMP threads")
		real       = flag.Bool("real", false, "include real-clock experiments")
		only       = flag.String("only", "", "run a single experiment (fig32, fig33, fig35, positive, negative, perturbed, ch2, ch4, micro, grind, work, ablation, scale, scalebig, similarity)")
		perturbMax = flag.Int("perturb", 3, "highest perturbation level for the perturbed experiment (0..N)")
		profDir    = flag.String("profiles", "", "emit canonical profiles (one JSON per analyzed run) into this directory")
		jobs       = flag.Int("j", 0, "concurrent campaign jobs inside experiments (0: one per CPU)")
		cpuProf    = flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
		memProf    = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
		stream     = flag.Bool("stream", false, "extend the scale experiment to 1024 ranks (streamed vs materialized memory comparison)")
		engine     = flag.String("engine", "auto", "rank execution engine for virtual-time runs (auto, event, goroutine)")
		scaleRanks = flag.String("scale-ranks", "4096,16384,65536", "comma-separated rank counts for the scalebig experiment")
		cacheDir   = flag.String("cache", "", "on-disk result cache directory for memoizable sweeps (empty: no caching)")
	)
	flag.Parse()
	w := os.Stdout

	eng, err := mpi.ParseEngine(*engine)
	if err != nil {
		log.Fatal(err)
	}
	mpi.SetDefaultEngine(eng)

	// -cache memoizes the sweeps that are pure functions of their
	// coordinates (conformance checks, the perturbed table) in the shared
	// on-disk result store; stats go to stderr so stdout stays
	// byte-identical cold or warm.  Sweeps that must execute for real
	// (e.g. any run feeding -profiles) bypass the cache automatically.
	if *cacheDir != "" {
		c, err := rescache.Open(*cacheDir)
		if err != nil {
			log.Fatalf("cache: %v", err)
		}
		conformance.SetResultCache(c)
		experiments.SetResultCache(c)
		defer func() {
			st := c.Stats()
			fmt.Fprintf(os.Stderr, "rescache: %d hits, %d misses, %d writes at %s\n",
				st.Hits, st.Misses, st.Puts, c.Dir())
		}()
	}

	// -j flows to every campaign.Run/Stream in the experiment layer
	// through the process-wide default, so the experiment signatures stay
	// free of concurrency plumbing.  Output is identical for any value.
	campaign.SetDefaultWorkers(*jobs)

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				log.Fatalf("memprofile: %v", err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatalf("memprofile: %v", err)
			}
		}()
	}

	// With -profiles, every analyzed run is captured as a canonical
	// profile file named after its experiment — the raw material for
	// atsregress baselines.
	emit := func(name string, tr *trace.Trace, rep *analyzer.Report) {}
	profileCount := 0
	if *profDir != "" {
		if err := os.MkdirAll(*profDir, 0o755); err != nil {
			log.Fatalf("profiles: %v", err)
		}
		emit = func(name string, tr *trace.Trace, rep *analyzer.Report) {
			p, err := profile.FromRun(name, tr, rep, profile.RunInfo{Clock: vtime.Virtual.String()})
			if err != nil {
				log.Fatalf("profiles: %s: %v", name, err)
			}
			path := filepath.Join(*profDir, name+".json")
			if err := p.WriteFile(path); err != nil {
				log.Fatalf("profiles: %s: %v", name, err)
			}
			profileCount++
		}
		experiments.SetProfileSink(experiments.ProfileFunc(emit))
	}

	run := func(name string, f func() error) {
		if *only != "" && *only != name {
			return
		}
		fmt.Fprintf(w, "\n######## %s ########\n", name)
		if err := f(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}

	run("fig32", func() error {
		_, err := experiments.Fig32(w, *procs)
		return err
	})
	run("fig33", func() error {
		_, err := experiments.Fig33(w, *procs)
		return err
	})
	run("fig35", func() error {
		_, err := experiments.Fig34And35(w, *procs)
		return err
	})
	run("positive", func() error {
		_, err := experiments.PositiveCorrectness(w, 8, *threads)
		return err
	})
	run("negative", func() error {
		_, err := experiments.NegativeCorrectness(w, 8, *threads)
		return err
	})
	run("perturbed", func() error {
		levels := make([]int, 0, *perturbMax+1)
		for l := 0; l <= *perturbMax; l++ {
			levels = append(levels, l)
		}
		_, err := experiments.PerturbedNegativeCorrectness(w, 8, *threads, levels)
		return err
	})
	run("ch2", func() error {
		_, err := experiments.Ch2(w, 4)
		return err
	})
	run("ch4", func() error {
		_, err := experiments.Ch4Applications(w, 4)
		return err
	})
	run("micro", func() error {
		pp, err := microbench.PingPong([]int{8, 64, 1024, 16384, 262144}, 10, vtime.Virtual)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "== microbenchmarks: ping-pong (SKaMPI-style, virtual cost model) ==")
		fmt.Fprint(w, microbench.FormatPingPong(pp))
		cs, err := microbench.Collectives([]int{2, 4, 8, 16}, 1024, 10, vtime.Virtual)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "\n== microbenchmarks: collectives ==")
		fmt.Fprint(w, microbench.FormatCollectives(cs))
		oo, err := microbench.OMPOverheads(*threads, 20, vtime.Virtual)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "\n== microbenchmarks: OpenMP construct overheads (EPCC-style) ==")
		fmt.Fprint(w, microbench.FormatOMP(oo))
		return nil
	})
	run("grind", func() error {
		fmt.Fprintln(w, "== Grindstone-style diagnostic programs (Ch. 2) ==")
		for _, p := range grindstone.Programs() {
			tr, err := mpi.Run(mpi.Options{Procs: 4}, func(c *mpi.Comm) {
				p.Run(c, grindstone.Config{})
			})
			if err != nil {
				return fmt.Errorf("%s: %w", p.Name, err)
			}
			rep := analyzer.Analyze(tr, analyzer.Options{})
			emit("grind_"+p.Name, tr, rep)
			top := "(clean)"
			if t := rep.Top(); t != nil {
				top = fmt.Sprintf("%s %.1f%%", t.Property, t.Severity*100)
			}
			fmt.Fprintf(w, "%-20s msgs=%6d avg=%9.0fB top=%-28s expected: %s\n",
				p.Name, rep.Messages.Count, rep.Messages.AvgBytes, top, p.Diagnosis)
		}
		return nil
	})
	run("scale", func() error {
		ranks := []int{16, 64, 256}
		if *stream {
			ranks = append(ranks, 1024)
		}
		_, err := experiments.Scale(w, ranks)
		return err
	})
	// scalebig only runs when asked for by name: 10⁴–10⁵-rank runs are
	// deliberate acts, not part of the default sweep.
	if *only == "scalebig" {
		run("scalebig", func() error {
			ranks, err := parseRanks(*scaleRanks)
			if err != nil {
				return err
			}
			_, err = experiments.ScaleStreamed(w, ranks)
			return err
		})
	}
	run("similarity", func() error {
		sizes := []int{1000, 5000, 10000}
		_, err := experiments.Similarity(w, sizes)
		return err
	})
	run("work", func() error {
		_, err := experiments.WorkAccuracy(w, *real)
		return err
	})
	run("ablation", func() error {
		_, err := experiments.Ablations(w, *real)
		return err
	})
	if *profDir != "" {
		fmt.Fprintf(w, "\nwrote %d profiles to %s\n", profileCount, *profDir)
	}
}

// parseRanks parses a comma-separated -scale-ranks list.
func parseRanks(s string) ([]int, error) {
	var ranks []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("scale-ranks: bad rank count %q", part)
		}
		ranks = append(ranks, n)
	}
	if len(ranks) == 0 {
		return nil, fmt.Errorf("scale-ranks: empty list")
	}
	return ranks, nil
}
