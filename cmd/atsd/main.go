// Command atsd serves the analysis and regression pipeline over HTTP:
// a long-running, multi-tenant front end to the content-addressed
// profile store that the offline tools (atsanalyze, atsregress) operate
// on directly.
//
// Clients submit conformance cases (POST /v1/cases) or serialized
// traces (POST /v1/traces, ATS1 or ATSC); the server analyzes them
// through the same code path as the CLI tools, stores the canonical
// profile, compares it against the experiment's baseline, and returns a
// JSON report with the drift verdict.  See doc/API.md for the full
// HTTP API and `atsregress submit -server URL` for the CLI client.
//
//	atsd -addr 127.0.0.1:7341 -store .ats-store
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/regress"
	"repro/internal/server"
	"repro/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the daemon and returns the process exit code.  Factored
// out of main so tests can drive the binary in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("atsd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", "127.0.0.1:7341", "listen address")
		dir       = fs.String("store", regress.DefaultStoreDir, "profile store directory")
		workers   = fs.Int("j", 0, "analysis workers (0 = one per CPU)")
		depth     = fs.Int("queue", 0, "analysis backlog depth (0 = 2x workers)")
		maxBody   = fs.Int64("max-body", server.DefaultMaxBody, "max request body bytes")
		maxReps   = fs.Int("max-reports", server.DefaultMaxReports, "completed reports kept for dedup")
		maxEvents = fs.Int64("max-events", 10_000_000, "max events per uploaded trace (0 = unlimited)")
		maxLocs   = fs.Int("max-locations", 65536, "max locations per uploaded trace (0 = unlimited)")
		maxFrame  = fs.Int64("max-frame", 8<<20, "max ATSC frame bytes (0 = unlimited)")
		rel       = fs.Float64("rel", 0, "relative wait-drift tolerance (0 = default)")
		abs       = fs.Float64("abs", 0, "absolute wait floor in seconds (0 = default)")
		outlier   = fs.Float64("outlier", 0, "wait-vector distance tolerance (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "atsd: unexpected arguments %q\n", fs.Args())
		return 2
	}
	store, err := regress.Open(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "atsd: opening store: %v\n", err)
		return 2
	}
	// Warm the similarity index up front: create or rebuild it, backfill
	// any objects stored while the daemon was down, and keep it current
	// incrementally on every accepted submission — the first
	// GET /v1/similar then never pays a full store walk.
	idx, err := store.EnsureIndex()
	if err != nil {
		fmt.Fprintf(stderr, "atsd: similarity index: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "atsd: similarity index covers %d profiles\n", idx.Len())
	srv := server.New(server.Config{
		Store:      store,
		Workers:    *workers,
		QueueDepth: *depth,
		MaxBody:    *maxBody,
		MaxReports: *maxReps,
		Limits: trace.Limits{
			MaxEvents:    *maxEvents,
			MaxLocations: *maxLocs,
			MaxFrame:     *maxFrame,
		},
		Tol: regress.Tolerances{RelWait: *rel, AbsWait: *abs, OutlierDist: *outlier},
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		srv.Close()
		fmt.Fprintf(stderr, "atsd: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "atsd: listening on %s (store %s)\n", ln.Addr(), store.Dir())
	hs := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		srv.Close()
		fmt.Fprintf(stderr, "atsd: %v\n", err)
		return 2
	case got := <-sig:
		fmt.Fprintf(stdout, "atsd: %v: shutting down\n", got)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		srv.Close()
		return 0
	}
}
