// Command atsrun is the generic single-property test-program driver
// (paper §3.2): it runs any registered ATS property function with
// parameters taken from the command line, then prints the automatic
// analysis report (and optionally a timeline or a serialized trace).
//
// Usage:
//
//	atsrun -list
//	atsrun -property late_sender -procs 8 -set extrawork=0.1 -set r=10
//	atsrun -property imbalance_at_mpi_barrier -set distr=linear \
//	       -set distr_low=0.01 -set distr_high=0.2 -timeline
//	atsrun -property late_sender -procs 1024 -stream   # bounded memory
//	atsrun -property late_sender -spool run.atsc       # spool for atsd upload
//	atsrun -asl examples/catalog.asl -property ramped_exchange -procs 4
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/ats"
	"repro/internal/core"
)

// setFlags accumulates repeated -set name=value arguments.
type setFlags map[string]string

func (s setFlags) String() string { return fmt.Sprintf("%v", map[string]string(s)) }

func (s setFlags) Set(v string) error {
	name, val, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("expected name=value, got %q", v)
	}
	s[name] = val
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("atsrun: ")
	var (
		list      = flag.Bool("list", false, "list registered properties and exit")
		property  = flag.String("property", "", "property function to run")
		procs     = flag.Int("procs", 8, "number of MPI processes")
		threads   = flag.Int("threads", 4, "number of OpenMP threads")
		traceOut  = flag.String("trace", "", "write the event trace to this file")
		timeline  = flag.Bool("timeline", false, "print a Vampir-style timeline")
		threshold = flag.Float64("threshold", 0.005, "analysis severity threshold")
		width     = flag.Int("width", 100, "timeline width in columns")
		stream    = flag.Bool("stream", false, "stream events through an on-disk spool and analyze incrementally (bounded memory; incompatible with -trace and -timeline)")
		spoolOut  = flag.String("spool", "", "write the run as an ATSC chunk spool to this file and exit without analyzing (for uploading to atsd)")
		engine    = flag.String("engine", "auto", "rank execution engine (auto, event, goroutine)")
		aslFile   = flag.String("asl", "", "register ASL scenario definitions from this file before resolving -property (see doc/ASL.md)")
	)
	sets := setFlags{}
	flag.Var(sets, "set", "set a property parameter: name=value (repeatable)")
	flag.Parse()

	eng, err := ats.ParseEngine(*engine)
	if err != nil {
		log.Fatal(err)
	}
	ats.SetDefaultEngine(eng)

	if *aslFile != "" {
		names, err := ats.RegisterASLFile(*aslFile)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "registered ASL scenarios: %s\n", strings.Join(names, ", "))
	}

	if *list {
		for _, spec := range core.All() {
			fmt.Printf("%-42s [%s] %s\n", spec.Name, spec.Paradigm, spec.Help)
			for _, p := range spec.Params {
				fmt.Printf("    %-20s %s\n", paramUsage(p), p.Help)
			}
		}
		return
	}
	if *property == "" {
		log.Fatalf("no -property given; use -list to see the registry")
	}
	spec, ok := core.Get(*property)
	if !ok {
		log.Fatalf("unknown property %q; use -list", *property)
	}
	args, err := buildArgs(spec, sets)
	if err != nil {
		log.Fatal(err)
	}

	if *spoolOut != "" {
		if *stream || *traceOut != "" || *timeline {
			log.Fatalf("-spool only writes the spool; it is incompatible with -stream, -trace and -timeline")
		}
		if err := ats.SpoolProperty(spec.Name, *procs, *threads, args, *spoolOut); err != nil {
			log.Fatalf("run failed: %v", err)
		}
		fmt.Fprintf(os.Stderr, "spool written to %s\n", *spoolOut)
		return
	}

	if *stream {
		if *traceOut != "" || *timeline {
			log.Fatalf("-stream never materializes the trace; it is incompatible with -trace and -timeline")
		}
		out, err := ats.RunPropertyStream(spec.Name, *procs, *threads, *threshold, args)
		if err != nil {
			log.Fatalf("run failed: %v", err)
		}
		fmt.Fprintf(os.Stderr, "streamed %d events (%d ranks x %d threads)\n", out.Events, out.Ranks, out.Threads)
		fmt.Print(out.Report.Render())
		return
	}

	tr, err := ats.RunProperty(spec.Name, *procs, *threads, args)
	if err != nil {
		log.Fatalf("run failed: %v", err)
	}
	if *traceOut != "" {
		if err := tr.WriteFile(*traceOut); err != nil {
			log.Fatalf("writing trace: %v", err)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (%d events)\n", *traceOut, len(tr.Events))
	}
	if *timeline {
		fmt.Print(ats.Timeline(tr, *width))
	}
	fmt.Print(ats.AnalyzeWithThreshold(tr, *threshold).Render())
}

func paramUsage(p core.Param) string {
	switch p.Kind {
	case core.ParamFloat:
		return fmt.Sprintf("%s=%g", p.Name, p.DefFloat)
	case core.ParamInt:
		return fmt.Sprintf("%s=%d", p.Name, p.DefInt)
	default:
		return fmt.Sprintf("%s=%s (+_low/_high/_med/_n)", p.Name, p.DefDistr.Name)
	}
}

// buildArgs folds -set overrides into the spec defaults.
func buildArgs(spec *core.Spec, sets setFlags) (core.Args, error) {
	args := spec.Defaults()
	consumed := map[string]bool{}
	for _, p := range spec.Params {
		switch p.Kind {
		case core.ParamFloat:
			if v, ok := sets[p.Name]; ok {
				f, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return args, fmt.Errorf("parameter %s: %v", p.Name, err)
				}
				args.Float[p.Name] = f
				consumed[p.Name] = true
			}
		case core.ParamInt:
			if v, ok := sets[p.Name]; ok {
				i, err := strconv.Atoi(v)
				if err != nil {
					return args, fmt.Errorf("parameter %s: %v", p.Name, err)
				}
				args.Int[p.Name] = i
				consumed[p.Name] = true
			}
		case core.ParamDistr:
			ds := args.Distr[p.Name]
			if v, ok := sets[p.Name]; ok {
				ds.Name = v
				consumed[p.Name] = true
			}
			for suffix, dst := range map[string]*float64{
				"_low": &ds.Low, "_high": &ds.High, "_med": &ds.Med,
			} {
				if v, ok := sets[p.Name+suffix]; ok {
					f, err := strconv.ParseFloat(v, 64)
					if err != nil {
						return args, fmt.Errorf("parameter %s%s: %v", p.Name, suffix, err)
					}
					*dst = f
					consumed[p.Name+suffix] = true
				}
			}
			if v, ok := sets[p.Name+"_n"]; ok {
				i, err := strconv.Atoi(v)
				if err != nil {
					return args, fmt.Errorf("parameter %s_n: %v", p.Name, err)
				}
				ds.N = i
				consumed[p.Name+"_n"] = true
			}
			args.Distr[p.Name] = ds
		}
	}
	for name := range sets {
		if !consumed[name] {
			return args, fmt.Errorf("property %s has no parameter %q", spec.Name, name)
		}
	}
	return args, nil
}
