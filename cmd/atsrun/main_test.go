package main

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestSetFlagsParsing(t *testing.T) {
	s := setFlags{}
	if err := s.Set("extrawork=0.1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("r=10"); err != nil {
		t.Fatal(err)
	}
	if s["extrawork"] != "0.1" || s["r"] != "10" {
		t.Errorf("parsed %v", s)
	}
	if err := s.Set("novalue"); err == nil {
		t.Error("missing '=' accepted")
	}
	if !strings.Contains(s.String(), "extrawork") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestBuildArgsDefaultsAndOverrides(t *testing.T) {
	spec, _ := core.Get("late_sender")
	args, err := buildArgs(spec, setFlags{"extrawork": "0.25", "r": "7"})
	if err != nil {
		t.Fatal(err)
	}
	if args.Float["extrawork"] != 0.25 {
		t.Errorf("extrawork = %v", args.Float["extrawork"])
	}
	if args.Int["r"] != 7 {
		t.Errorf("r = %d", args.Int["r"])
	}
	// Untouched parameter keeps its default.
	if args.Float["basework"] != core.DefaultBasework {
		t.Errorf("basework = %v", args.Float["basework"])
	}
}

func TestBuildArgsDistribution(t *testing.T) {
	spec, _ := core.Get("imbalance_at_mpi_barrier")
	args, err := buildArgs(spec, setFlags{
		"distr":      "linear",
		"distr_low":  "0.02",
		"distr_high": "0.3",
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := args.Distr["distr"]
	if ds.Name != "linear" || ds.Low != 0.02 || ds.High != 0.3 {
		t.Errorf("distr spec = %+v", ds)
	}
	if _, _, err := ds.Resolve(); err != nil {
		t.Errorf("resolved: %v", err)
	}
}

func TestBuildArgsRejectsUnknownParam(t *testing.T) {
	spec, _ := core.Get("late_sender")
	if _, err := buildArgs(spec, setFlags{"bogus": "1"}); err == nil {
		t.Error("unknown parameter accepted")
	}
}

func TestBuildArgsRejectsBadValues(t *testing.T) {
	spec, _ := core.Get("late_sender")
	if _, err := buildArgs(spec, setFlags{"extrawork": "abc"}); err == nil {
		t.Error("non-numeric float accepted")
	}
	if _, err := buildArgs(spec, setFlags{"r": "1.5"}); err == nil {
		t.Error("non-integer int accepted")
	}
}

func TestParamUsage(t *testing.T) {
	spec, _ := core.Get("imbalance_at_mpi_barrier")
	var distrParam, intParam core.Param
	for _, p := range spec.Params {
		switch p.Kind {
		case core.ParamDistr:
			distrParam = p
		case core.ParamInt:
			intParam = p
		}
	}
	if u := paramUsage(distrParam); !strings.Contains(u, "_low") {
		t.Errorf("distr usage %q lacks descriptor flags", u)
	}
	if u := paramUsage(intParam); !strings.Contains(u, "=") {
		t.Errorf("int usage %q", u)
	}
}
