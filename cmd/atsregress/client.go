// Client mode: talk to a running atsd analysis server instead of the
// local store.  `atsregress submit` uploads conformance cases or
// serialized traces and renders the server's drift verdict with the
// same exit-code contract as the offline diff/check commands; `ping`
// probes server health (the CI smoke test polls it for readiness).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"repro/internal/server"
)

// serverFlags registers the client-mode connection flags on fs.
func serverFlags(fs *flag.FlagSet) (base *string, timeout *time.Duration) {
	base = fs.String("server", "", "atsd base URL (e.g. http://127.0.0.1:7341)")
	timeout = fs.Duration("timeout", 60*time.Second, "HTTP request timeout")
	return base, timeout
}

func cmdPing(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ping", flag.ContinueOnError)
	base, timeout := serverFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *base == "" {
		return fmt.Errorf("ping: -server URL is required")
	}
	client := &http.Client{Timeout: *timeout}
	resp, err := client.Get(strings.TrimRight(*base, "/") + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("ping: server returned %s", resp.Status)
	}
	fmt.Fprintf(stdout, "ok %s\n", *base)
	return nil
}

// cmdSubmit uploads each file to the server — conformance case JSON to
// /v1/cases, ATS1/ATSC traces to /v1/traces, auto-detected by content —
// and reports drift verdicts.  Returns regressed=true when any
// submission drifted from its baseline.
func cmdSubmit(args []string, stdout io.Writer) (bool, error) {
	fs := flag.NewFlagSet("submit", flag.ContinueOnError)
	base, timeout := serverFlags(fs)
	experiment := fs.String("experiment", "", "experiment name (required for traces; cases default to \"conformance\")")
	save := fs.Bool("save", false, "promote each submission's profile to the experiment baseline")
	threshold := fs.Float64("threshold", 0, "severity threshold for trace analysis (0 = server default)")
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	if *base == "" {
		return false, fmt.Errorf("submit: -server URL is required")
	}
	if fs.NArg() == 0 {
		return false, fmt.Errorf("submit: no case or trace files given")
	}
	client := &http.Client{Timeout: *timeout}
	regressed := false
	for _, path := range fs.Args() {
		rep, err := submitFile(client, *base, path, *experiment, *save, *threshold)
		if err != nil {
			return regressed, fmt.Errorf("%s: %w", path, err)
		}
		tags := ""
		if rep.Cached {
			tags += " (cached)"
		}
		if rep.Saved {
			tags += " (saved)"
		}
		fmt.Fprintf(stdout, "%s: %s %s profile %.12s%s\n",
			path, rep.Kind, rep.Experiment, rep.ProfileHash, tags)
		if rep.Diff != nil {
			fmt.Fprint(stdout, rep.Diff.Render())
		}
		if rep.Drift {
			regressed = true
		}
	}
	if regressed {
		fmt.Fprintln(stdout, "SUBMIT FAILED: performance regressions detected")
	}
	return regressed, nil
}

// submitFile posts one file and decodes the server's report.
func submitFile(client *http.Client, base, path, experiment string, save bool, threshold float64) (*server.Report, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	q := url.Values{}
	if experiment != "" {
		q.Set("experiment", experiment)
	}
	if save {
		q.Set("save", "1")
	}
	var endpoint string
	switch {
	case bytes.HasPrefix(blob, []byte("ATS1")), bytes.HasPrefix(blob, []byte("ATSC")):
		endpoint = "/v1/traces"
		if experiment == "" {
			return nil, fmt.Errorf("trace submissions need -experiment")
		}
		if threshold > 0 {
			q.Set("threshold", fmt.Sprintf("%g", threshold))
		}
	default:
		endpoint = "/v1/cases" // case JSON; the server validates it
	}
	u := strings.TrimRight(base, "/") + endpoint
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	resp, err := client.Post(u, contentTypeFor(endpoint), bytes.NewReader(blob))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK, http.StatusUnprocessableEntity:
		var rep server.Report
		if err := json.Unmarshal(body, &rep); err != nil {
			return nil, fmt.Errorf("decoding server response: %v", err)
		}
		if rep.Status == server.StatusError {
			return nil, fmt.Errorf("server analysis failed: %s", rep.Error)
		}
		if rep.Status != "" {
			return &rep, nil
		}
		// 422 without a report payload: a plain validation error.
		fallthrough
	default:
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("server returned %s: %s", resp.Status, e.Error)
		}
		return nil, fmt.Errorf("server returned %s", resp.Status)
	}
}

func contentTypeFor(endpoint string) string {
	if endpoint == "/v1/cases" {
		return "application/json"
	}
	return "application/octet-stream"
}
