// Command atsregress tracks performance regressions across runs of the
// test suite.  It manages a content-addressed store of canonical profiles
// (produced by `atsbench -profiles DIR`) and compares fresh profiles
// against stored baselines: per-property severity drift within
// configurable tolerances, detection-set changes (a property appearing or
// disappearing — positive/negative correctness flips), and per-location
// outliers via normalized wait-vector distance.
//
// Usage:
//
//	atsregress save  [-store DIR] profile.json...   save as baselines
//	atsregress list  [-store DIR]                   list baselines
//	atsregress diff  [-store DIR flags] A.json B.json   diff two files
//	atsregress diff  [-store DIR flags] -name EXP B.json  vs stored baseline
//	atsregress check [-store DIR flags] profile.json...  exit 1 on drift
//	atsregress similar [-store DIR] [-k N] <hash|profile.json>  nearest profiles
//	atsregress submit -server URL [-experiment E] [-save] file...
//	atsregress ping   -server URL
//
// submit and ping talk to a running atsd server (see cmd/atsd) instead
// of the local store: cases and traces are analyzed server-side through
// the same pipeline and the drift verdict comes back as JSON, with
// submit keeping check's exit-1-on-drift contract.
//
// The check subcommand is the CI entry point: `atsbench -profiles tmp &&
// atsregress check tmp/*.json` fails the build when any experiment's
// known severities drifted from the committed baselines.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/profile"
	"repro/internal/regress"
	"repro/internal/similarity"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI and returns the process exit code.  It is
// factored out of main so tests can drive the binary in-process.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	cmd, rest := args[0], args[1:]
	var err error
	switch cmd {
	case "save":
		err = cmdSave(rest, stdout)
	case "list":
		err = cmdList(rest, stdout)
	case "diff":
		var regressed bool
		regressed, err = cmdDiff(rest, stdout)
		if err == nil && regressed {
			return 1
		}
	case "check":
		var regressed bool
		regressed, err = cmdCheck(rest, stdout)
		if err == nil && regressed {
			return 1
		}
	case "similar":
		err = cmdSimilar(rest, stdout)
	case "submit":
		var regressed bool
		regressed, err = cmdSubmit(rest, stdout)
		if err == nil && regressed {
			return 1
		}
	case "ping":
		err = cmdPing(rest, stdout)
	case "help", "-h", "-help", "--help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "atsregress: unknown command %q\n", cmd)
		usage(stderr)
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "atsregress: %v\n", err)
		return 2
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage: atsregress <command> [flags] [args]

commands:
  save  [-store DIR] profile.json...        store profiles as baselines
  list  [-store DIR]                        list stored baselines
  diff  [-store DIR] [tolerances] A.json B.json
  diff  [-store DIR] [tolerances] -name EXPERIMENT B.json
  check [-store DIR] [tolerances] profile.json...
                                            compare against baselines;
                                            exit 1 on any regression
  similar [-store DIR] [-k N] <hash|profile.json>
                                            top-k most similar stored
                                            profiles (LSH index)
  submit -server URL [-experiment E] [-save] [-threshold F] file...
                                            upload cases/traces to an atsd
                                            server; exit 1 on drift
  ping   -server URL                        probe atsd health
tolerance flags (diff, check):
  -rel F      relative wait-drift tolerance (default 0.02)
  -abs F      absolute wait floor in seconds (default 1e-6)
  -outlier F  normalized wait-vector distance tolerance (default 0.05)
`)
}

// storeFlag registers the common -store flag on fs.
func storeFlag(fs *flag.FlagSet) *string {
	return fs.String("store", regress.DefaultStoreDir, "profile store directory")
}

// tolFlags registers the tolerance flags on fs.
func tolFlags(fs *flag.FlagSet) *regress.Tolerances {
	tol := &regress.Tolerances{}
	fs.Float64Var(&tol.RelWait, "rel", 0, "relative wait-drift tolerance (0 = default)")
	fs.Float64Var(&tol.AbsWait, "abs", 0, "absolute wait floor in seconds (0 = default)")
	fs.Float64Var(&tol.OutlierDist, "outlier", 0, "wait-vector distance tolerance (0 = default)")
	return tol
}

func cmdSave(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("save", flag.ContinueOnError)
	dir := storeFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("save: no profile files given")
	}
	store, err := regress.Open(*dir)
	if err != nil {
		return err
	}
	for _, path := range fs.Args() {
		p, err := profile.ReadFile(path)
		if err != nil {
			return err
		}
		hash, err := store.SaveBaseline(p)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "saved %-36s %s\n", p.Experiment, hash[:12])
	}
	return nil
}

func cmdList(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("list", flag.ContinueOnError)
	dir := storeFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	store, err := regress.Open(*dir)
	if err != nil {
		return err
	}
	entries, err := store.List()
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		fmt.Fprintf(stdout, "store %s: no baselines\n", store.Dir())
		return nil
	}
	fmt.Fprintf(stdout, "%-36s %-12s %4s %6s %6s  %s\n",
		"experiment", "baseline", "vers", "shape", "sig", "top finding")
	for _, e := range entries {
		top := "(clean)"
		if e.TopProperty != "" {
			top = fmt.Sprintf("%s %.2f%%", e.TopProperty, e.TopSeverity*100)
		}
		fmt.Fprintf(stdout, "%-36s %-12s %4d %3dx%-2d %6d  %s\n",
			e.Experiment, e.Hash[:12], e.Versions, e.Ranks, e.Threads, e.Significant, top)
	}
	return nil
}

// cmdSimilar answers "which stored runs does this profile look like?"
// through the store's persistent LSH index.  The query is a stored
// object's content hash or a profile file that need not be stored; the
// index is created and backfilled on first use.
func cmdSimilar(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("similar", flag.ContinueOnError)
	dir := storeFlag(fs)
	k := fs.Int("k", 5, "number of nearest profiles to report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("similar: want one stored hash or profile file")
	}
	store, err := regress.Open(*dir)
	if err != nil {
		return err
	}
	arg := fs.Arg(0)
	var (
		matches []similarity.Match
		probed  int
	)
	if regress.ValidHash(arg) {
		matches, probed, err = store.Similar(arg, *k)
	} else {
		p, rerr := profile.ReadFile(arg)
		if rerr != nil {
			return rerr
		}
		matches, probed, err = store.SimilarProfile(p, *k)
	}
	if err != nil {
		return err
	}
	idx, err := store.EnsureIndex()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%-12s %10s  %-36s %s\n", "hash", "similarity", "experiment", "top finding")
	for _, m := range matches {
		exp, top := "(unreadable)", ""
		if mp, gerr := store.Get(m.Hash); gerr == nil {
			exp = mp.Experiment
			top = "(clean)"
			worst := 0.0
			for _, prop := range mp.Significant() {
				if prop.Severity > worst {
					worst = prop.Severity
					top = fmt.Sprintf("%s %.2f%%", prop.Name, prop.Severity*100)
				}
			}
		}
		fmt.Fprintf(stdout, "%-12s %10.6f  %-36s %s\n", m.Hash[:12], m.Similarity, exp, top)
	}
	fmt.Fprintf(stdout, "probed %d of %d indexed profiles\n", probed, idx.Len())
	return nil
}

func cmdDiff(args []string, stdout io.Writer) (bool, error) {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	dir := storeFlag(fs)
	tol := tolFlags(fs)
	name := fs.String("name", "", "diff against the stored baseline of this experiment")
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	var base, cur *profile.Profile
	switch {
	case *name != "" && fs.NArg() == 1:
		store, err := regress.Open(*dir)
		if err != nil {
			return false, err
		}
		base, _, err = store.Baseline(*name)
		if err != nil {
			return false, err
		}
		if cur, err = profile.ReadFile(fs.Arg(0)); err != nil {
			return false, err
		}
	case *name == "" && fs.NArg() == 2:
		var err error
		if base, err = profile.ReadFile(fs.Arg(0)); err != nil {
			return false, err
		}
		if cur, err = profile.ReadFile(fs.Arg(1)); err != nil {
			return false, err
		}
	default:
		return false, fmt.Errorf("diff: want two profile files, or -name EXPERIMENT and one file")
	}
	d := regress.Compare(base, cur, *tol)
	fmt.Fprint(stdout, d.Render())
	return d.Regressed(), nil
}

func cmdCheck(args []string, stdout io.Writer) (bool, error) {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	dir := storeFlag(fs)
	tol := tolFlags(fs)
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	if fs.NArg() == 0 {
		return false, fmt.Errorf("check: no profile files given")
	}
	store, err := regress.Open(*dir)
	if err != nil {
		return false, err
	}
	regressed := false
	for _, path := range fs.Args() {
		cur, err := profile.ReadFile(path)
		if err != nil {
			return false, err
		}
		base, _, err := store.Baseline(cur.Experiment)
		if err != nil {
			return false, fmt.Errorf("%w (save one first: atsregress save -store %s %s)",
				err, store.Dir(), path)
		}
		d := regress.Compare(base, cur, *tol)
		fmt.Fprint(stdout, d.Render())
		fmt.Fprintln(stdout)
		if d.Regressed() {
			regressed = true
		}
	}
	if regressed {
		fmt.Fprintln(stdout, "CHECK FAILED: performance regressions detected")
	} else {
		fmt.Fprintln(stdout, "CHECK OK: all experiments within tolerance")
	}
	return regressed, nil
}
