package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/omp"
	"repro/internal/profile"
)

// writeBarrierProfile runs imbalance_at_mpi_barrier with the given
// distribution High and writes its profile JSON to path.
func writeBarrierProfile(t *testing.T, path string, high float64) {
	t.Helper()
	spec, ok := core.Get("imbalance_at_mpi_barrier")
	if !ok {
		t.Fatal("imbalance_at_mpi_barrier not registered")
	}
	a := spec.Defaults()
	ds := a.Distr["distr"]
	ds.High = high
	a.Distr["distr"] = ds
	tr, err := mpi.Run(mpi.Options{Procs: 4}, func(c *mpi.Comm) {
		spec.Run(core.Env{Comm: c, Ctx: c.Ctx(), OMP: omp.Options{Threads: 1}}, a)
	})
	if err != nil {
		t.Fatalf("barrier run: %v", err)
	}
	p, err := profile.FromRun("barrier_cli", tr, analyzer.Analyze(tr, analyzer.Options{}), profile.RunInfo{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WriteFile(path); err != nil {
		t.Fatal(err)
	}
}

// cli invokes the command in-process and returns (exit code, stdout+stderr).
func cli(args ...string) (int, string) {
	var out bytes.Buffer
	code := run(args, &out, &out)
	return code, out.String()
}

// TestSaveCheckLifecycle drives the acceptance scenario end to end:
// save a baseline, check an identical rerun (exit 0, zero drift), then
// check a run with a doubled severity (exit 1, naming the property and
// the worst-outlier location).
func TestSaveCheckLifecycle(t *testing.T) {
	dir := t.TempDir()
	store := filepath.Join(dir, "store")
	baseFile := filepath.Join(dir, "base.json")
	rerunFile := filepath.Join(dir, "rerun.json")
	driftFile := filepath.Join(dir, "drift.json")
	writeBarrierProfile(t, baseFile, 0.06)
	writeBarrierProfile(t, rerunFile, 0.06) // identical rerun
	writeBarrierProfile(t, driftFile, 0.12) // doubled imbalance

	code, out := cli("save", "-store", store, baseFile)
	if code != 0 {
		t.Fatalf("save exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "barrier_cli") {
		t.Errorf("save output:\n%s", out)
	}

	code, out = cli("check", "-store", store, rerunFile)
	if code != 0 {
		t.Fatalf("check of identical rerun exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "zero drift") || !strings.Contains(out, "CHECK OK") {
		t.Errorf("clean check output:\n%s", out)
	}

	code, out = cli("check", "-store", store, driftFile)
	if code != 1 {
		t.Fatalf("check of drifted run exit %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "CHECK FAILED") ||
		!strings.Contains(out, analyzer.PropWaitAtBarrier) ||
		!strings.Contains(out, "worst location") {
		t.Errorf("drift check must name the property and worst location:\n%s", out)
	}
}

func TestListAndDiff(t *testing.T) {
	dir := t.TempDir()
	store := filepath.Join(dir, "store")
	baseFile := filepath.Join(dir, "base.json")
	driftFile := filepath.Join(dir, "drift.json")
	writeBarrierProfile(t, baseFile, 0.06)
	writeBarrierProfile(t, driftFile, 0.12)

	if code, out := cli("list", "-store", store); code != 0 || !strings.Contains(out, "no baselines") {
		t.Errorf("empty list: exit %d\n%s", code, out)
	}
	if code, out := cli("save", "-store", store, baseFile); code != 0 {
		t.Fatalf("save exit %d:\n%s", code, out)
	}
	code, out := cli("list", "-store", store)
	if code != 0 || !strings.Contains(out, "barrier_cli") ||
		!strings.Contains(out, analyzer.PropWaitAtBarrier) {
		t.Errorf("list: exit %d\n%s", code, out)
	}

	// File-vs-file diff needs no store.
	code, out = cli("diff", baseFile, driftFile)
	if code != 1 || !strings.Contains(out, "DRIFT") {
		t.Errorf("diff of drifted profiles: exit %d\n%s", code, out)
	}
	code, _ = cli("diff", baseFile, baseFile)
	if code != 0 {
		t.Errorf("self-diff exit %d", code)
	}

	// Baseline-vs-file diff via -name.
	code, out = cli("diff", "-store", store, "-name", "barrier_cli", driftFile)
	if code != 1 || !strings.Contains(out, analyzer.PropWaitAtBarrier) {
		t.Errorf("diff -name: exit %d\n%s", code, out)
	}
}

func TestCheckTolerancesFlag(t *testing.T) {
	dir := t.TempDir()
	store := filepath.Join(dir, "store")
	baseFile := filepath.Join(dir, "base.json")
	driftFile := filepath.Join(dir, "drift.json")
	writeBarrierProfile(t, baseFile, 0.06)
	writeBarrierProfile(t, driftFile, 0.12)
	if code, out := cli("save", "-store", store, baseFile); code != 0 {
		t.Fatalf("save exit %d:\n%s", code, out)
	}
	// Loose enough tolerances accept even the doubled severity.
	code, out := cli("check", "-store", store, "-rel", "5", "-outlier", "1", driftFile)
	if code != 0 {
		t.Errorf("check with huge tolerances exit %d:\n%s", code, out)
	}
}

func TestErrorPaths(t *testing.T) {
	dir := t.TempDir()
	store := filepath.Join(dir, "store")
	okFile := filepath.Join(dir, "ok.json")
	writeBarrierProfile(t, okFile, 0.06)

	if code, _ := cli(); code != 2 {
		t.Error("no args should exit 2")
	}
	if code, _ := cli("bogus"); code != 2 {
		t.Error("unknown command should exit 2")
	}
	if code, _ := cli("save", "-store", store); code != 2 {
		t.Error("save without files should exit 2")
	}
	if code, _ := cli("check", "-store", store); code != 2 {
		t.Error("check without files should exit 2")
	}
	// check without a stored baseline is an error, with a hint.
	code, out := cli("check", "-store", store, okFile)
	if code != 2 || !strings.Contains(out, "atsregress save") {
		t.Errorf("missing-baseline check: exit %d\n%s", code, out)
	}
	if code, _ := cli("diff", okFile); code != 2 {
		t.Error("diff with one file and no -name should exit 2")
	}
	if code, _ := cli("help"); code != 0 {
		t.Error("help should exit 0")
	}
}

// copySeedStore copies the committed testdata/regress-store into a temp
// dir: similar creates a persistent index inside the store, and the
// committed tree must never be dirtied by a test run.
func copySeedStore(t *testing.T) string {
	t.Helper()
	src := filepath.Join("..", "..", "testdata", "regress-store")
	dst := filepath.Join(t.TempDir(), "store")
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(out, 0o755)
		}
		blob, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(out, blob, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// TestSimilarCLI drives `atsregress similar` end to end against a copy
// of the committed seed store: query by stored hash (top-1 self-match)
// and by profile file, plus the error paths.
func TestSimilarCLI(t *testing.T) {
	const seedHash = "997330b4ad5c416673437df4ad4daff38e6197559734cca7d4d61b1eddb2678d"
	store := copySeedStore(t)

	// Grow the copied seed with a fresh profile so there is more than
	// one candidate to rank.
	dir := t.TempDir()
	extra := filepath.Join(dir, "extra.json")
	writeBarrierProfile(t, extra, 0.06)
	if code, out := cli("save", "-store", store, extra); code != 0 {
		t.Fatalf("save exit %d:\n%s", code, out)
	}

	// Query by the committed hash: the top line of the table is the
	// query itself at similarity 1.
	code, out := cli("similar", "-store", store, "-k", "2", seedHash)
	if code != 0 {
		t.Fatalf("similar exit %d:\n%s", code, out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 3 { // header, >=1 match, probed summary
		t.Fatalf("short output:\n%s", out)
	}
	if !strings.HasPrefix(lines[1], seedHash[:12]) || !strings.Contains(lines[1], "1.000000") {
		t.Errorf("top-1 not the query itself:\n%s", out)
	}
	if !strings.Contains(lines[1], "fig35_two_communicators") {
		t.Errorf("top-1 does not name the experiment:\n%s", out)
	}
	if !strings.Contains(lines[len(lines)-1], "probed") {
		t.Errorf("no probed summary:\n%s", out)
	}

	// Query by profile file: the stored copy of the same profile leads.
	code, out = cli("similar", "-store", store, extra)
	if code != 0 {
		t.Fatalf("similar by file exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "barrier_cli") || !strings.Contains(out, "1.000000") {
		t.Errorf("file query did not find its stored twin:\n%s", out)
	}

	// Error paths: unknown hash, missing file, extra args.
	if code, _ := cli("similar", "-store", store, strings.Repeat("0", 64)); code != 2 {
		t.Error("similar on an unknown hash should exit 2")
	}
	if code, _ := cli("similar", "-store", store, filepath.Join(dir, "nope.json")); code != 2 {
		t.Error("similar on a missing file should exit 2")
	}
	if code, _ := cli("similar", "-store", store); code != 2 {
		t.Error("similar without an argument should exit 2")
	}

	// The committed tree itself must stay pristine.
	if _, err := os.Stat(filepath.Join("..", "..", "testdata", "regress-store", "similarity")); !os.IsNotExist(err) {
		t.Fatalf("committed seed store grew an index: %v", err)
	}
}
