// Command atsvalidate runs the substrate validation suite twice — without
// and with instrumentation — and compares the results, executing the
// semantics-preservation procedure of the paper's Chapter 2 end to end.
//
// Usage:
//
//	atsvalidate        # run both, compare, report
//	atsvalidate -v     # also list every check
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/validate"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("atsvalidate: ")
	verbose := flag.Bool("v", false, "list every check outcome")
	flag.Parse()

	fmt.Println("running validation suite (uninstrumented)...")
	plain := validate.RunSuite(false)
	fmt.Println("running validation suite (instrumented)...")
	instrumented := validate.RunSuite(true)

	failed := 0
	for i := range plain {
		status := "ok"
		if !plain[i].Passed || !instrumented[i].Passed {
			status = "FAIL"
			failed++
		}
		if *verbose || status == "FAIL" {
			fmt.Printf("  %-28s %-4s digest=%016x/%016x\n",
				plain[i].Name, status, plain[i].Digest, instrumented[i].Digest)
			if plain[i].Err != nil {
				fmt.Printf("      uninstrumented: %v\n", plain[i].Err)
			}
			if instrumented[i].Err != nil {
				fmt.Printf("      instrumented:   %v\n", instrumented[i].Err)
			}
		}
	}
	if err := validate.Compare(plain, instrumented); err != nil {
		fmt.Printf("semantics-preservation: FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("semantics-preservation: OK (%d checks, identical digests with and without instrumentation)\n",
		len(plain))
	if failed > 0 {
		os.Exit(1)
	}
}
