// Command atsanalyze runs the EXPERT-style automatic analysis over a
// serialized event trace (written by atsrun -trace or the examples) and
// prints the three-pane report of paper Fig 3.5: the property tree with
// severities, and per significant property its call-path and location
// breakdowns.
//
// Custom ASL-style property catalogs (see internal/asl) can be evaluated
// against the trace with -asl:
//
//	atsanalyze -threshold 0.01 trace.ats
//	atsanalyze -asl mycatalog.asl trace.ats
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/analyzer"
	"repro/internal/asl"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("atsanalyze: ")
	var (
		threshold = flag.Float64("threshold", 0.005, "severity threshold")
		profile   = flag.Bool("profile", false, "also print the flat region profile")
		aslFile   = flag.String("asl", "", "evaluate an ASL property catalog against the trace")
		jsonOut   = flag.Bool("json", false, "emit the report as JSON instead of text")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: atsanalyze [-threshold t] [-profile] [-asl catalog] [-json] <trace file>")
	}
	tr, err := trace.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatalf("reading trace: %v", err)
	}
	rep := analyzer.Analyze(tr, analyzer.Options{Threshold: *threshold})
	if *jsonOut {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			log.Fatalf("writing JSON: %v", err)
		}
		return
	}
	fmt.Print(rep.Render())
	if *profile {
		fmt.Println()
		fmt.Print(rep.Stats.Profile())
	}
	if *aslFile != "" {
		src, err := os.ReadFile(*aslFile)
		if err != nil {
			log.Fatalf("reading ASL catalog: %v", err)
		}
		findings, err := asl.EvalAll(string(src), rep)
		if err != nil {
			log.Fatalf("evaluating ASL catalog: %v", err)
		}
		fmt.Printf("\n=== ASL catalog: %s ===\n", *aslFile)
		for _, f := range findings {
			verdict := "does not hold"
			if f.Holds {
				verdict = fmt.Sprintf("HOLDS (severity %.2f%%)", f.Severity*100)
			}
			fmt.Printf("  %-32s %s\n", f.Name, verdict)
		}
	}
}
