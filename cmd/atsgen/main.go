// Command atsgen generates standalone single-property test programs from
// the ATS property registry (paper §3.2): one main package per property,
// with command-line flags derived from the property function's signature
// metadata.
//
// Usage:
//
//	atsgen -out ./generated            # all properties
//	atsgen -out ./generated -property late_sender
//	atsgen -property late_sender      # print to stdout
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/generator"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("atsgen: ")
	var (
		out      = flag.String("out", "", "output directory (stdout if empty)")
		property = flag.String("property", "", "generate only this property")
	)
	flag.Parse()

	if *property != "" {
		spec, ok := core.Get(*property)
		if !ok {
			log.Fatalf("unknown property %q", *property)
		}
		src, err := generator.Generate(spec)
		if err != nil {
			log.Fatal(err)
		}
		if *out == "" {
			os.Stdout.Write(src)
			return
		}
		dir := filepath.Join(*out, spec.Name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(dir, "main.go")
		if err := os.WriteFile(path, src, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Println(path)
		return
	}

	if *out == "" {
		log.Fatal("generating all properties requires -out")
	}
	paths, err := generator.GenerateAll(*out)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range paths {
		fmt.Println(p)
	}
	fmt.Fprintf(os.Stderr, "generated %d single-property programs under %s\n", len(paths), *out)
}
