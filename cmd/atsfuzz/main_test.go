package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/conformance"
)

// TestMain lets the test binary stand in for the production one when
// `run -procs` re-executes itself: dispatchRun spawns os.Executable()
// with ATSFUZZ_WORKER=1 in the environment, and under `go test` that
// executable is this test binary — so route straight into the real CLI
// entry point instead of the test runner.
func TestMain(m *testing.M) {
	if os.Getenv("ATSFUZZ_WORKER") == "1" {
		os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestRunFixedSeed(t *testing.T) {
	code, out, errOut := runCmd(t, "run", "-seeds", "3", "-start", "1", "-v")
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out, errOut)
	}
	if !strings.Contains(out, "checked 3 cases: 0 failing") {
		t.Fatalf("unexpected output: %s", out)
	}
	if strings.Count(out, "ok   ") != 3 {
		t.Fatalf("-v did not print every case: %s", out)
	}
}

// normalizeNondetHashes masks the profile hash on case lines whose
// property set contains a conformance.NondeterministicWaits property.
// Those hashes are scheduling-dependent by design — the engine skips the
// byte-identical determinism axis for them, and two *sequential* runs
// already disagree on them under a perturbed scheduler (e.g. -race) — so
// they say nothing about the parallel runner.
func normalizeNondetHashes(out string) string {
	lines := strings.Split(out, "\n")
	for i, ln := range lines {
		open, clos := strings.Index(ln, "["), strings.Index(ln, "]")
		if !strings.HasPrefix(strings.TrimSpace(ln), "ok ") || open < 0 || clos < open {
			continue
		}
		nondet := false
		for _, name := range strings.Fields(ln[open+1 : clos]) {
			if conformance.NondeterministicWaits[name] {
				nondet = true
				break
			}
		}
		if c := strings.LastIndex(ln, ", "); nondet && c >= 0 && strings.HasSuffix(ln, ")") {
			lines[i] = ln[:c] + ", <nondet>)"
		}
	}
	return strings.Join(lines, "\n")
}

// TestRunParallelOutputMatchesSequential asserts the campaign contract at
// the CLI surface: `atsfuzz run -j 8` must produce byte-identical output
// (same cases, same hashes, same failure set, same order) as `-j 1`, up to
// the hashes of cases the engine itself documents as nondeterministic.
func TestRunParallelOutputMatchesSequential(t *testing.T) {
	seeds := "120"
	if testing.Short() {
		seeds = "25"
	}
	outputs := make(map[string]string)
	for _, j := range []string{"1", "8"} {
		code, out, errOut := runCmd(t, "run", "-seeds", seeds, "-v", "-j", j)
		if code != 0 {
			t.Fatalf("-j %s: exit %d, stderr:\n%s", j, code, errOut)
		}
		if errOut != "" {
			t.Fatalf("-j %s: unexpected stderr:\n%s", j, errOut)
		}
		outputs[j] = normalizeNondetHashes(out)
	}
	if outputs["1"] != outputs["8"] {
		t.Fatalf("parallel output diverges from sequential:\n-j 1:\n%s\n-j 8:\n%s",
			outputs["1"], outputs["8"])
	}
}

func TestGenReplayCorpus(t *testing.T) {
	dir := t.TempDir()
	code, out, errOut := runCmd(t, "gen", "-seeds", "2", "-out", dir)
	if code != 0 {
		t.Fatalf("gen: exit %d\nstderr: %s", code, errOut)
	}
	if strings.Count(out, "wrote ") != 2 {
		t.Fatalf("gen output: %s", out)
	}

	cases, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(cases) != 2 {
		t.Fatalf("corpus files: %v (%v)", cases, err)
	}
	code, out, errOut = runCmd(t, append([]string{"replay"}, cases...)...)
	if code != 0 {
		t.Fatalf("replay: exit %d\nstdout: %s\nstderr: %s", code, out, errOut)
	}

	code, out, _ = runCmd(t, "corpus", "-dir", dir)
	if code != 0 || !strings.Contains(out, "2 cases") {
		t.Fatalf("corpus: exit %d, output: %s", code, out)
	}
}

func TestReplayRejectsBadCase(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":1,"procs":2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := runCmd(t, "replay", bad)
	if code != 2 {
		t.Fatalf("replay of invalid case: exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "invalid shape") {
		t.Fatalf("stderr: %s", errOut)
	}
}

// TestRunMultiProcessOutputMatchesInProcess asserts the tentpole
// determinism claim at the CLI surface: `-procs 2` (real worker
// processes over the JSON protocol) must produce byte-identical stdout
// to `-procs 1` (in-process pool), up to documented-nondeterministic
// hashes.
func TestRunMultiProcessOutputMatchesInProcess(t *testing.T) {
	seeds := "40"
	if testing.Short() {
		seeds = "12"
	}
	outputs := make(map[string]string)
	for _, procs := range []string{"1", "2"} {
		code, out, errOut := runCmd(t, "run", "-seeds", seeds, "-v", "-j", "2", "-procs", procs)
		if code != 0 {
			t.Fatalf("-procs %s: exit %d, stderr:\n%s", procs, code, errOut)
		}
		outputs[procs] = normalizeNondetHashes(out)
	}
	if outputs["1"] != outputs["2"] {
		t.Fatalf("multi-process output diverges from in-process:\n-procs 1:\n%s\n-procs 2:\n%s",
			outputs["1"], outputs["2"])
	}
}

// TestRunWarmCacheOutputIdentical: a warm `-cache` rerun must hit the
// cache (stderr reports it) while stdout stays byte-for-byte identical
// to the cold run.
func TestRunWarmCacheOutputIdentical(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	args := []string{"run", "-seeds", "10", "-v", "-cache", dir}

	code, cold, coldErr := runCmd(t, args...)
	if code != 0 {
		t.Fatalf("cold: exit %d, stderr:\n%s", code, coldErr)
	}
	if !strings.Contains(coldErr, "rescache:") {
		t.Fatalf("cold run did not report cache stats on stderr:\n%s", coldErr)
	}

	code, warm, warmErr := runCmd(t, args...)
	if code != 0 {
		t.Fatalf("warm: exit %d, stderr:\n%s", code, warmErr)
	}
	if warm != cold {
		t.Fatalf("warm stdout diverges from cold:\ncold:\n%s\nwarm:\n%s", cold, warm)
	}
	if !strings.Contains(warmErr, " 0 misses") || strings.Contains(warmErr, " 0 hits") {
		t.Fatalf("warm run was not fully served from cache:\n%s", warmErr)
	}
}

// TestRunPerturbedWarmCache: the robustness ladder caches per level and
// replays identically.
func TestRunPerturbedWarmCache(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	args := []string{"run", "-seeds", "4", "-v", "-perturb", "-cache", dir}
	code, cold, _ := runCmd(t, args...)
	if code != 0 {
		t.Fatalf("cold perturbed run failed: %d", code)
	}
	code, warm, warmErr := runCmd(t, args...)
	if code != 0 {
		t.Fatalf("warm perturbed run failed: %d", code)
	}
	if warm != cold {
		t.Fatalf("perturbed warm stdout diverges:\n%s\nvs\n%s", cold, warm)
	}
	if !strings.Contains(warmErr, " 0 misses") {
		t.Fatalf("perturbed warm run missed the cache:\n%s", warmErr)
	}
}

// TestCacheGCAndStats drives the maintenance subcommands end to end: a
// populated cache reports its entries, gc keeps valid ones, and a
// corrupted entry is collected.
func TestCacheGCAndStats(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	if code, _, errOut := runCmd(t, "run", "-seeds", "3", "-cache", dir); code != 0 {
		t.Fatalf("populate: %s", errOut)
	}

	code, out, _ := runCmd(t, "cache", "stats", "-dir", dir)
	if code != 0 || !strings.Contains(out, "servable entries") {
		t.Fatalf("stats: exit %d, out: %s", code, out)
	}

	// Corrupt one entry file, then gc: it must be removed, the rest kept.
	entries, err := filepath.Glob(filepath.Join(dir, "objects", "*", "*.json"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no cache entries written: %v (%v)", entries, err)
	}
	if err := os.WriteFile(entries[0], []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ = runCmd(t, "cache", "gc", "-dir", dir)
	if code != 0 {
		t.Fatalf("gc exit %d", code)
	}
	if !strings.Contains(out, "removed 1 stale") {
		t.Fatalf("gc did not collect the corrupted entry: %s", out)
	}

	// The sweep still works (and recomputes the collected entry).
	if code, _, _ := runCmd(t, "run", "-seeds", "3", "-cache", dir); code != 0 {
		t.Fatal("post-gc run failed")
	}
}

// TestWorkerSubcommandRejectsBadFlags keeps the worker's CLI surface
// honest without speaking the protocol by hand.
func TestWorkerSubcommandRejectsBadFlags(t *testing.T) {
	if code, _, errOut := runCmd(t, "worker", "-engine", "warp"); code != 2 || !strings.Contains(errOut, "unknown engine") {
		t.Fatalf("bad engine: exit %d, stderr: %s", code, errOut)
	}
	if code, _, _ := runCmd(t, "cache"); code != 2 {
		t.Fatal("bare cache subcommand should exit 2")
	}
	if code, _, _ := runCmd(t, "cache", "bogus"); code != 2 {
		t.Fatal("unknown cache subcommand should exit 2")
	}
}

func TestUsageAndUnknown(t *testing.T) {
	if code, _, _ := runCmd(t); code != 2 {
		t.Fatal("no args should exit 2")
	}
	if code, _, _ := runCmd(t, "bogus"); code != 2 {
		t.Fatal("unknown command should exit 2")
	}
	if code, out, _ := runCmd(t, "help"); code != 0 || !strings.Contains(out, "usage:") {
		t.Fatal("help should print usage and exit 0")
	}
}
