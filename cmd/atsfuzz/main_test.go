package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestRunFixedSeed(t *testing.T) {
	code, out, errOut := runCmd(t, "run", "-seeds", "3", "-start", "1", "-v")
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out, errOut)
	}
	if !strings.Contains(out, "checked 3 cases: 0 failing") {
		t.Fatalf("unexpected output: %s", out)
	}
	if strings.Count(out, "ok   ") != 3 {
		t.Fatalf("-v did not print every case: %s", out)
	}
}

func TestGenReplayCorpus(t *testing.T) {
	dir := t.TempDir()
	code, out, errOut := runCmd(t, "gen", "-seeds", "2", "-out", dir)
	if code != 0 {
		t.Fatalf("gen: exit %d\nstderr: %s", code, errOut)
	}
	if strings.Count(out, "wrote ") != 2 {
		t.Fatalf("gen output: %s", out)
	}

	cases, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(cases) != 2 {
		t.Fatalf("corpus files: %v (%v)", cases, err)
	}
	code, out, errOut = runCmd(t, append([]string{"replay"}, cases...)...)
	if code != 0 {
		t.Fatalf("replay: exit %d\nstdout: %s\nstderr: %s", code, out, errOut)
	}

	code, out, _ = runCmd(t, "corpus", "-dir", dir)
	if code != 0 || !strings.Contains(out, "2 cases") {
		t.Fatalf("corpus: exit %d, output: %s", code, out)
	}
}

func TestReplayRejectsBadCase(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":1,"procs":2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := runCmd(t, "replay", bad)
	if code != 2 {
		t.Fatalf("replay of invalid case: exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "invalid shape") {
		t.Fatalf("stderr: %s", errOut)
	}
}

func TestUsageAndUnknown(t *testing.T) {
	if code, _, _ := runCmd(t); code != 2 {
		t.Fatal("no args should exit 2")
	}
	if code, _, _ := runCmd(t, "bogus"); code != 2 {
		t.Fatal("unknown command should exit 2")
	}
	if code, out, _ := runCmd(t, "help"); code != 0 || !strings.Contains(out, "usage:") {
		t.Fatal("help should print usage and exit 0")
	}
}
