package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/conformance"
)

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestRunFixedSeed(t *testing.T) {
	code, out, errOut := runCmd(t, "run", "-seeds", "3", "-start", "1", "-v")
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out, errOut)
	}
	if !strings.Contains(out, "checked 3 cases: 0 failing") {
		t.Fatalf("unexpected output: %s", out)
	}
	if strings.Count(out, "ok   ") != 3 {
		t.Fatalf("-v did not print every case: %s", out)
	}
}

// normalizeNondetHashes masks the profile hash on case lines whose
// property set contains a conformance.NondeterministicWaits property.
// Those hashes are scheduling-dependent by design — the engine skips the
// byte-identical determinism axis for them, and two *sequential* runs
// already disagree on them under a perturbed scheduler (e.g. -race) — so
// they say nothing about the parallel runner.
func normalizeNondetHashes(out string) string {
	lines := strings.Split(out, "\n")
	for i, ln := range lines {
		open, clos := strings.Index(ln, "["), strings.Index(ln, "]")
		if !strings.HasPrefix(strings.TrimSpace(ln), "ok ") || open < 0 || clos < open {
			continue
		}
		nondet := false
		for _, name := range strings.Fields(ln[open+1 : clos]) {
			if conformance.NondeterministicWaits[name] {
				nondet = true
				break
			}
		}
		if c := strings.LastIndex(ln, ", "); nondet && c >= 0 && strings.HasSuffix(ln, ")") {
			lines[i] = ln[:c] + ", <nondet>)"
		}
	}
	return strings.Join(lines, "\n")
}

// TestRunParallelOutputMatchesSequential asserts the campaign contract at
// the CLI surface: `atsfuzz run -j 8` must produce byte-identical output
// (same cases, same hashes, same failure set, same order) as `-j 1`, up to
// the hashes of cases the engine itself documents as nondeterministic.
func TestRunParallelOutputMatchesSequential(t *testing.T) {
	seeds := "120"
	if testing.Short() {
		seeds = "25"
	}
	outputs := make(map[string]string)
	for _, j := range []string{"1", "8"} {
		code, out, errOut := runCmd(t, "run", "-seeds", seeds, "-v", "-j", j)
		if code != 0 {
			t.Fatalf("-j %s: exit %d, stderr:\n%s", j, code, errOut)
		}
		if errOut != "" {
			t.Fatalf("-j %s: unexpected stderr:\n%s", j, errOut)
		}
		outputs[j] = normalizeNondetHashes(out)
	}
	if outputs["1"] != outputs["8"] {
		t.Fatalf("parallel output diverges from sequential:\n-j 1:\n%s\n-j 8:\n%s",
			outputs["1"], outputs["8"])
	}
}

func TestGenReplayCorpus(t *testing.T) {
	dir := t.TempDir()
	code, out, errOut := runCmd(t, "gen", "-seeds", "2", "-out", dir)
	if code != 0 {
		t.Fatalf("gen: exit %d\nstderr: %s", code, errOut)
	}
	if strings.Count(out, "wrote ") != 2 {
		t.Fatalf("gen output: %s", out)
	}

	cases, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(cases) != 2 {
		t.Fatalf("corpus files: %v (%v)", cases, err)
	}
	code, out, errOut = runCmd(t, append([]string{"replay"}, cases...)...)
	if code != 0 {
		t.Fatalf("replay: exit %d\nstdout: %s\nstderr: %s", code, out, errOut)
	}

	code, out, _ = runCmd(t, "corpus", "-dir", dir)
	if code != 0 || !strings.Contains(out, "2 cases") {
		t.Fatalf("corpus: exit %d, output: %s", code, out)
	}
}

func TestReplayRejectsBadCase(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":1,"procs":2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := runCmd(t, "replay", bad)
	if code != 2 {
		t.Fatalf("replay of invalid case: exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "invalid shape") {
		t.Fatalf("stderr: %s", errOut)
	}
}

func TestUsageAndUnknown(t *testing.T) {
	if code, _, _ := runCmd(t); code != 2 {
		t.Fatal("no args should exit 2")
	}
	if code, _, _ := runCmd(t, "bogus"); code != 2 {
		t.Fatal("unknown command should exit 2")
	}
	if code, out, _ := runCmd(t, "help"); code != 0 || !strings.Contains(out, "usage:") {
		t.Fatal("help should print usage and exit 0")
	}
}
