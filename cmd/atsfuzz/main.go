// Command atsfuzz drives the metamorphic conformance fuzzer from the
// command line, sharing one engine (internal/conformance) with the Go
// native fuzz harnesses and the quick-mode unit test.
//
//	atsfuzz run -seeds 100            # fuzz 100 seeded cases, shrink failures
//	atsfuzz replay case.json ...      # re-check saved reproducers
//	atsfuzz corpus                    # list the committed corpus
//	atsfuzz gen -seeds 10 -out DIR    # write seed cases as corpus files
//	atsfuzz diff -seeds 20            # byte-compare the event and goroutine engines
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/campaign"
	"repro/internal/conformance"
	"repro/internal/mpi"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: atsfuzz <command> [flags]

commands:
  run     -seeds N [-start S] [-procs P] [-threads T] [-corpus DIR] [-j N] [-v] [-perturb]
          generate and check N seeded cases; shrink and save failures
          (-j runs cases concurrently; output is identical for any -j;
          -perturb sweeps each case over the deterministic perturbation ladder)
  replay  <case.json> [...]
          re-run saved cases through the oracle
  corpus  [-dir DIR]
          list the corpus cases
  gen     -seeds N [-start S] [-out DIR]
          write generated seed cases as corpus files
  diff    [-seeds N] [-v]
          run generated cases on both execution engines (event and
          goroutine) and byte-compare the serialized traces and profile
          hashes — the scheduler migration oracle`)
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "run":
		return cmdRun(args[1:], stdout, stderr)
	case "replay":
		return cmdReplay(args[1:], stdout, stderr)
	case "corpus":
		return cmdCorpus(args[1:], stdout, stderr)
	case "gen":
		return cmdGen(args[1:], stdout, stderr)
	case "diff":
		return cmdDiff(args[1:], stdout, stderr)
	case "-h", "--help", "help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "atsfuzz: unknown command %q\n", args[0])
		usage(stderr)
		return 2
	}
}

func cmdRun(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seeds := fs.Int("seeds", 50, "number of seeded cases to check")
	start := fs.Uint64("start", 1, "first seed")
	procs := fs.Int("procs", 0, "fix the rank count (0: random per case)")
	threads := fs.Int("threads", 0, "fix the thread count (0: random per case)")
	corpus := fs.String("corpus", "", "directory to save shrunken reproducers into")
	verbose := fs.Bool("v", false, "print every case, not just failures")
	jobs := fs.Int("j", 0, "concurrent cases (0: one per CPU)")
	perturbed := fs.Bool("perturb", false,
		"sweep every case over the deterministic perturbation ladder (robustness axis)")
	engine := fs.String("engine", "auto", "rank execution engine (auto, event, goroutine)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if eng, err := mpi.ParseEngine(*engine); err != nil {
		fmt.Fprintf(stderr, "atsfuzz: %v\n", err)
		return 2
	} else {
		mpi.SetDefaultEngine(eng)
	}
	cfg := conformance.Config{}
	if *procs > 0 {
		cfg.Procs = []int{*procs}
	}
	if *threads > 0 {
		cfg.Threads = []int{*threads}
	}
	opt := conformance.CheckOptions{}

	// Each seed is one campaign job: generate, check, and (only on
	// failure) shrink — all deterministic functions of the seed.  The
	// sink owns every output byte and all corpus writes, and runs in seed
	// order, so the output stream is byte-identical for any -j.
	type outcome struct {
		cs  conformance.Case
		out conformance.Outcome
		min conformance.Case // shrunken reproducer, valid when !out.OK()
	}
	failures := 0
	err := campaign.Stream(*seeds,
		campaign.Options{Workers: *jobs},
		func(i int) (outcome, error) {
			seed := *start + uint64(i)
			cs := conformance.Generate(seed, cfg)
			shrinkOpt := opt
			var out conformance.Outcome
			if *perturbed {
				ro, err := conformance.CheckRobust(cs, opt, nil)
				if err != nil {
					return outcome{}, fmt.Errorf("seed %d: %v", seed, err)
				}
				if ro.OK() {
					out = ro.Outcomes[0]
				} else {
					// Shrink against the level that failed, so the
					// minimized case reproduces under replay.
					out = ro.FailOutcome()
					shrinkOpt.Perturb = ro.FailProfile()
				}
			} else {
				var err error
				out, err = conformance.Check(cs, opt)
				if err != nil {
					return outcome{}, fmt.Errorf("seed %d: %v", seed, err)
				}
			}
			oc := outcome{cs: cs, out: out}
			if !out.OK() {
				oc.min = conformance.Shrink(cs, shrinkOpt)
			}
			return oc, nil
		},
		func(i int, oc outcome) error {
			seed := *start + uint64(i)
			if oc.out.OK() {
				if *verbose {
					fmt.Fprintf(stdout, "ok   %s (%d events, %d findings, %s)\n",
						oc.cs, oc.out.Events, oc.out.Findings, short(oc.out.Hash))
				}
				return nil
			}
			failures++
			fmt.Fprintf(stdout, "FAIL %s\n", oc.cs)
			for _, v := range oc.out.Violations {
				fmt.Fprintf(stdout, "     %s\n", v)
			}
			fmt.Fprintf(stdout, "     shrunk to %s\n", oc.min)
			if *corpus != "" {
				path := filepath.Join(*corpus, fmt.Sprintf("seed%d.json", seed))
				if err := conformance.WriteCase(path, oc.min); err != nil {
					return fmt.Errorf("save %s: %v", path, err)
				}
				fmt.Fprintf(stdout, "     saved %s\n", path)
			}
			return nil
		})
	if err != nil {
		var ce *campaign.Error
		if errors.As(err, &ce) {
			err = ce.Err
		}
		fmt.Fprintf(stderr, "atsfuzz: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "checked %d cases: %d failing\n", *seeds, failures)
	if failures > 0 {
		return 1
	}
	return 0
}

func cmdReplay(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "atsfuzz replay: no case files given")
		return 2
	}
	failures := 0
	for _, path := range fs.Args() {
		cs, err := conformance.ReadCase(path)
		if err != nil {
			fmt.Fprintf(stderr, "atsfuzz: %v\n", err)
			return 2
		}
		out, err := conformance.Check(cs, conformance.CheckOptions{})
		if err != nil {
			fmt.Fprintf(stderr, "atsfuzz: %s: %v\n", path, err)
			return 2
		}
		if out.OK() {
			fmt.Fprintf(stdout, "ok   %s: %s (%d events, %s)\n", path, cs, out.Events, short(out.Hash))
			continue
		}
		failures++
		fmt.Fprintf(stdout, "FAIL %s: %s\n", path, cs)
		for _, v := range out.Violations {
			fmt.Fprintf(stdout, "     %s\n", v)
		}
	}
	if failures > 0 {
		fmt.Fprintf(stdout, "%d of %d cases failing\n", failures, fs.NArg())
		return 1
	}
	return 0
}

func cmdCorpus(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("corpus", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "testdata/conformance-corpus", "corpus directory")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	entries, err := conformance.LoadCorpus(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "atsfuzz: %v\n", err)
		return 2
	}
	for _, e := range entries {
		fmt.Fprintf(stdout, "%-24s %s\n", e.Name, e.Case)
	}
	fmt.Fprintf(stdout, "%d cases\n", len(entries))
	return 0
}

func cmdGen(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seeds := fs.Int("seeds", 10, "number of cases to generate")
	start := fs.Uint64("start", 1, "first seed")
	out := fs.String("out", "testdata/conformance-corpus", "output directory")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	for i := 0; i < *seeds; i++ {
		seed := *start + uint64(i)
		cs := conformance.Generate(seed, conformance.Config{})
		path := filepath.Join(*out, fmt.Sprintf("seed%03d.json", seed))
		if err := conformance.WriteCase(path, cs); err != nil {
			fmt.Fprintf(stderr, "atsfuzz: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "wrote %s: %s\n", path, cs)
	}
	return 0
}

func cmdDiff(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seeds := fs.Int("seeds", 20, "number of seeded cases to compare across engines")
	verbose := fs.Bool("v", false, "print every compared seed, not just the summary")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	compared := 0
	err := conformance.DiffSeeds(*seeds, func(seed uint64, out conformance.DiffOutcome) {
		compared++
		if *verbose {
			mode := "byte-compared"
			if !out.BytesCompared {
				mode = "ran on both engines (nondeterministic waits; bytes not compared)"
			}
			fmt.Fprintf(stdout, "ok   seed %-4d %8d trace bytes  %s  %s\n",
				seed, out.TraceBytes, short(out.Hash), mode)
		}
	})
	if err != nil {
		fmt.Fprintf(stderr, "atsfuzz diff: engines diverge: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "diff: %d seeds, event and goroutine engines agree byte for byte\n", compared)
	return 0
}

func short(hash string) string {
	if len(hash) > 12 {
		return hash[:12]
	}
	return hash
}
