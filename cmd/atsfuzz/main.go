// Command atsfuzz drives the metamorphic conformance fuzzer from the
// command line, sharing one engine (internal/conformance) with the Go
// native fuzz harnesses and the quick-mode unit test.
//
//	atsfuzz run -seeds 100            # fuzz 100 seeded cases, shrink failures
//	atsfuzz run -cache auto -procs 4  # memoized sweep fanned across 4 processes
//	atsfuzz replay case.json ...      # re-check saved reproducers
//	atsfuzz corpus                    # list the committed corpus
//	atsfuzz gen -seeds 10 -out DIR    # write seed cases as corpus files
//	atsfuzz diff -seeds 20            # byte-compare the event and goroutine engines
//	atsfuzz worker                    # campaign worker process (spawned by -procs)
//	atsfuzz cache gc -dir DIR         # drop stale-version result-cache entries
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/asl"
	"repro/internal/campaign"
	"repro/internal/conformance"
	"repro/internal/mpi"
	"repro/internal/rescache"
)

// loadASL registers the scenarios of an -asl file into the property
// registry, so generated cases can draw them and replayed cases can
// resolve them.  An empty path is a no-op.
func loadASL(path string, stderr io.Writer) bool {
	if path == "" {
		return true
	}
	names, err := asl.RegisterFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "atsfuzz: %v\n", err)
		return false
	}
	fmt.Fprintf(stderr, "registered %d ASL scenario(s) from %s\n", len(names), path)
	return true
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: atsfuzz <command> [flags]

Every fuzzing command accepts -asl FILE to register ASL-defined scenarios
(doc/ASL.md) into the property pool before generating or replaying cases.

commands:
  run     -seeds N [-start S] [-ranks P] [-threads T] [-corpus DIR] [-j N]
          [-procs M] [-cache DIR] [-v] [-perturb] [-asl FILE]
          generate and check N seeded cases; shrink and save failures
          (-j runs cases concurrently and -procs fans them across worker
          processes; output is identical for any -j and -procs;
          -perturb sweeps each case over the deterministic perturbation
          ladder; -cache memoizes verdicts on disk so repeated sweeps
          are free — "auto" picks the default location)
  replay  <case.json> [...]
          re-run saved cases through the oracle
  corpus  [-dir DIR]
          list the corpus cases
  gen     -seeds N [-start S] [-out DIR]
          write generated seed cases as corpus files
  diff    [-seeds N] [-cache DIR] [-v]
          run generated cases on both execution engines (event and
          goroutine) and byte-compare the serialized traces and profile
          hashes — the scheduler migration oracle
  worker  [-j N] [-cache DIR] [-engine E]
          serve conformance checks over the campaign worker protocol
          (line-delimited JSON on stdin/stdout; spawned by run -procs)
  cache   gc|stats [-dir DIR]
          result-cache maintenance: gc drops entries recorded under a
          stale engine version or profile schema; stats counts entries`)
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "run":
		return cmdRun(args[1:], stdout, stderr)
	case "replay":
		return cmdReplay(args[1:], stdout, stderr)
	case "corpus":
		return cmdCorpus(args[1:], stdout, stderr)
	case "gen":
		return cmdGen(args[1:], stdout, stderr)
	case "diff":
		return cmdDiff(args[1:], stdout, stderr)
	case "worker":
		return cmdWorker(args[1:], stdout, stderr)
	case "cache":
		return cmdCache(args[1:], stdout, stderr)
	case "-h", "--help", "help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "atsfuzz: unknown command %q\n", args[0])
		usage(stderr)
		return 2
	}
}

// resolveCacheDir maps a -cache flag value to a directory: "auto"
// selects the corpus-adjacent default when a corpus directory is in
// play, the repository default otherwise; anything else is taken
// verbatim.
func resolveCacheDir(flagVal, corpusDir string) string {
	if flagVal != "auto" {
		return flagVal
	}
	if corpusDir != "" {
		return filepath.Join(corpusDir, ".rescache")
	}
	return rescache.DefaultDir
}

// openCache opens the result cache and installs it process-wide.  The
// returned reporter prints hit/miss statistics to stderr — stderr, not
// stdout, so a warm sweep's stdout stays byte-identical to a cold one.
func openCache(dir string, stderr io.Writer) (*rescache.Store, func(), error) {
	c, err := rescache.Open(dir)
	if err != nil {
		return nil, nil, err
	}
	conformance.SetResultCache(c)
	report := func() {
		conformance.SetResultCache(nil)
		st := c.Stats()
		total := st.Hits + st.Misses
		rate := 0.0
		if total > 0 {
			rate = float64(st.Hits) / float64(total) * 100
		}
		fmt.Fprintf(stderr, "rescache: %d hits, %d misses, %d writes (%.1f%% hit rate) at %s\n",
			st.Hits, st.Misses, st.Puts, rate, c.Dir())
	}
	return c, report, nil
}

// seedJob is the worker-protocol payload of one conformance sweep job.
type seedJob struct {
	Case      conformance.Case `json:"case"`
	Perturbed bool             `json:"perturbed"`
}

// seedResult is one job's result: the oracle verdict plus, on failure,
// the shrunken reproducer.
type seedResult struct {
	Out conformance.Outcome `json:"out"`
	Min *conformance.Case   `json:"min,omitempty"`
}

// checkSeedCase runs one case through the oracle (the full robustness
// ladder with perturbed set) and shrinks failures — the unit of work
// shared verbatim by the in-process pool, the worker protocol, and the
// result cache, which is what keeps every execution strategy
// byte-identical.
func checkSeedCase(cs conformance.Case, opt conformance.CheckOptions, perturbed bool) (seedResult, error) {
	shrinkOpt := opt
	var out conformance.Outcome
	if perturbed {
		ro, err := conformance.CheckRobust(cs, opt, nil)
		if err != nil {
			return seedResult{}, fmt.Errorf("seed %d: %v", cs.Seed, err)
		}
		if ro.OK() {
			out = ro.Outcomes[0]
		} else {
			// Shrink against the level that failed, so the minimized
			// case reproduces under replay.
			out = ro.FailOutcome()
			shrinkOpt.Perturb = ro.FailProfile()
		}
	} else {
		var err error
		out, err = conformance.CheckCached(cs, opt)
		if err != nil {
			return seedResult{}, fmt.Errorf("seed %d: %v", cs.Seed, err)
		}
	}
	res := seedResult{Out: out}
	if !out.OK() {
		min := conformance.Shrink(cs, shrinkOpt)
		res.Min = &min
	}
	return res, nil
}

func cmdRun(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seeds := fs.Int("seeds", 50, "number of seeded cases to check")
	start := fs.Uint64("start", 1, "first seed")
	ranks := fs.Int("ranks", 0, "fix the rank count of generated cases (0: random per case)")
	threads := fs.Int("threads", 0, "fix the thread count (0: random per case)")
	corpus := fs.String("corpus", "", "directory to save shrunken reproducers into")
	verbose := fs.Bool("v", false, "print every case, not just failures")
	jobs := fs.Int("j", 0, "concurrent cases per process (0: one per CPU)")
	procs := fs.Int("procs", 1, "worker processes to fan the sweep across (1: in-process)")
	cacheDir := fs.String("cache", "", `on-disk result cache directory ("auto": default location; empty: no caching)`)
	perturbed := fs.Bool("perturb", false,
		"sweep every case over the deterministic perturbation ladder (robustness axis)")
	engine := fs.String("engine", "auto", "rank execution engine (auto, event, goroutine)")
	aslFile := fs.String("asl", "", "register ASL scenarios from this file into the property pool")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if eng, err := mpi.ParseEngine(*engine); err != nil {
		fmt.Fprintf(stderr, "atsfuzz: %v\n", err)
		return 2
	} else {
		mpi.SetDefaultEngine(eng)
	}
	if !loadASL(*aslFile, stderr) {
		return 2
	}
	var cache *rescache.Store
	if *cacheDir != "" {
		c, report, err := openCache(resolveCacheDir(*cacheDir, *corpus), stderr)
		if err != nil {
			fmt.Fprintf(stderr, "atsfuzz: %v\n", err)
			return 2
		}
		cache = c
		defer report()
	}
	cfg := conformance.Config{}
	if *ranks > 0 {
		cfg.Procs = []int{*ranks}
	}
	if *threads > 0 {
		cfg.Threads = []int{*threads}
	}
	opt := conformance.CheckOptions{}

	// Each seed is one campaign job: generate, check, and (only on
	// failure) shrink — all deterministic functions of the seed.  The
	// sink owns every output byte and all corpus writes, and runs in seed
	// order, so the output stream is byte-identical for any -j and any
	// -procs.
	failures := 0
	sink := func(i int, cs conformance.Case, res seedResult) error {
		seed := *start + uint64(i)
		if res.Out.OK() {
			if *verbose {
				fmt.Fprintf(stdout, "ok   %s (%d events, %d findings, %s)\n",
					cs, res.Out.Events, res.Out.Findings, short(res.Out.Hash))
			}
			return nil
		}
		failures++
		fmt.Fprintf(stdout, "FAIL %s\n", cs)
		for _, v := range res.Out.Violations {
			fmt.Fprintf(stdout, "     %s\n", v)
		}
		fmt.Fprintf(stdout, "     shrunk to %s\n", *res.Min)
		if *corpus != "" {
			path := filepath.Join(*corpus, fmt.Sprintf("seed%d.json", seed))
			if err := conformance.WriteCase(path, *res.Min); err != nil {
				return fmt.Errorf("save %s: %v", path, err)
			}
			fmt.Fprintf(stdout, "     saved %s\n", path)
		}
		return nil
	}

	var err error
	if *procs > 1 {
		err = dispatchRun(*seeds, *start, cfg, *perturbed, dispatchConfig{
			procs: *procs, jobs: *jobs, engine: *engine, cache: cache,
			aslFile: *aslFile, stderr: stderr,
		}, sink)
	} else {
		err = campaign.Stream(*seeds,
			campaign.Options{Workers: *jobs},
			func(i int) (seedResult, error) {
				cs := conformance.Generate(*start+uint64(i), cfg)
				return checkSeedCase(cs, opt, *perturbed)
			},
			func(i int, res seedResult) error {
				return sink(i, conformance.Generate(*start+uint64(i), cfg), res)
			})
	}
	if err != nil {
		var ce *campaign.Error
		if errors.As(err, &ce) {
			err = ce.Err
		}
		fmt.Fprintf(stderr, "atsfuzz: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "checked %d cases: %d failing\n", *seeds, failures)
	if failures > 0 {
		return 1
	}
	return 0
}

// dispatchConfig carries the fan-out parameters of a -procs run.
type dispatchConfig struct {
	procs   int
	jobs    int
	engine  string
	cache   *rescache.Store
	aslFile string
	stderr  io.Writer
}

// workerEnv marks spawned processes so the test binary's TestMain can
// route itself into worker mode (the production binary ignores it — its
// argv already says "worker").
const workerEnv = "ATSFUZZ_WORKER=1"

// dispatchRun fans the sweep across `atsfuzz worker` processes.  The
// workers inherit the engine, per-process concurrency, and — crucially —
// the cache directory, so every result they compute lands in the same
// store the next (or a crash-recovering) sweep reads.
func dispatchRun(seeds int, start uint64, cfg conformance.Config, perturbed bool, dc dispatchConfig, sink func(int, conformance.Case, seedResult) error) error {
	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("locate worker binary: %v", err)
	}
	argv := []string{exe, "worker"}
	if dc.jobs > 0 {
		argv = append(argv, "-j", strconv.Itoa(dc.jobs))
	}
	if dc.engine != "" && dc.engine != "auto" {
		argv = append(argv, "-engine", dc.engine)
	}
	if dc.cache != nil {
		argv = append(argv, "-cache", dc.cache.Dir())
	}
	if dc.aslFile != "" {
		argv = append(argv, "-asl", dc.aslFile)
	}
	window := dc.jobs
	if window <= 0 {
		window = campaign.DefaultWorkers()
	}
	return campaign.Dispatch(seeds,
		campaign.DispatchOptions{
			Procs:  dc.procs,
			Window: window,
			Argv:   argv,
			Env:    []string{workerEnv},
			Stderr: dc.stderr,
		},
		func(i int) (json.RawMessage, error) {
			return json.Marshal(seedJob{
				Case:      conformance.Generate(start+uint64(i), cfg),
				Perturbed: perturbed,
			})
		},
		func(i int, result json.RawMessage) error {
			var res seedResult
			if err := json.Unmarshal(result, &res); err != nil {
				return fmt.Errorf("worker result: %v", err)
			}
			return sink(i, conformance.Generate(start+uint64(i), cfg), res)
		})
}

func cmdWorker(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("worker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jobs := fs.Int("j", 0, "concurrent jobs inside this worker (0: one per CPU)")
	cacheDir := fs.String("cache", "", "on-disk result cache directory (empty: no caching)")
	engine := fs.String("engine", "auto", "rank execution engine (auto, event, goroutine)")
	aslFile := fs.String("asl", "", "register ASL scenarios from this file into the property pool")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if eng, err := mpi.ParseEngine(*engine); err != nil {
		fmt.Fprintf(stderr, "atsfuzz: %v\n", err)
		return 2
	} else {
		mpi.SetDefaultEngine(eng)
	}
	if !loadASL(*aslFile, stderr) {
		return 2
	}
	if *cacheDir != "" {
		_, report, err := openCache(*cacheDir, stderr)
		if err != nil {
			fmt.Fprintf(stderr, "atsfuzz worker: %v\n", err)
			return 2
		}
		defer report()
	}
	workers := *jobs
	if workers <= 0 {
		workers = campaign.DefaultWorkers()
	}
	err := campaign.ServeWorker(os.Stdin, stdout, workers,
		func(job json.RawMessage) (json.RawMessage, error) {
			var sj seedJob
			if err := json.Unmarshal(job, &sj); err != nil {
				return nil, fmt.Errorf("bad job payload: %v", err)
			}
			res, err := checkSeedCase(sj.Case, conformance.CheckOptions{}, sj.Perturbed)
			if err != nil {
				return nil, err
			}
			return json.Marshal(res)
		})
	if err != nil {
		fmt.Fprintf(stderr, "atsfuzz worker: %v\n", err)
		return 2
	}
	return 0
}

func cmdCache(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "atsfuzz cache: expected gc or stats")
		return 2
	}
	sub := args[0]
	fs := flag.NewFlagSet("cache "+sub, flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", rescache.DefaultDir, "result cache directory")
	if err := fs.Parse(args[1:]); err != nil {
		return 2
	}
	store, err := rescache.Open(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "atsfuzz cache: %v\n", err)
		return 2
	}
	switch sub {
	case "gc":
		res, err := store.GC()
		if err != nil {
			fmt.Fprintf(stderr, "atsfuzz cache: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "gc %s: scanned %d, removed %d stale, kept %d\n",
			store.Dir(), res.Scanned, res.Removed, res.Kept)
		return 0
	case "stats":
		n, err := store.Len()
		if err != nil {
			fmt.Fprintf(stderr, "atsfuzz cache: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "%s: %d servable entries\n", store.Dir(), n)
		return 0
	default:
		fmt.Fprintf(stderr, "atsfuzz cache: unknown subcommand %q (want gc or stats)\n", sub)
		return 2
	}
}

func cmdReplay(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	fs.SetOutput(stderr)
	aslFile := fs.String("asl", "", "register ASL scenarios from this file into the property pool")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if !loadASL(*aslFile, stderr) {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "atsfuzz replay: no case files given")
		return 2
	}
	failures := 0
	for _, path := range fs.Args() {
		cs, err := conformance.ReadCase(path)
		if err != nil {
			fmt.Fprintf(stderr, "atsfuzz: %v\n", err)
			return 2
		}
		out, err := conformance.Check(cs, conformance.CheckOptions{})
		if err != nil {
			fmt.Fprintf(stderr, "atsfuzz: %s: %v\n", path, err)
			return 2
		}
		if out.OK() {
			fmt.Fprintf(stdout, "ok   %s: %s (%d events, %s)\n", path, cs, out.Events, short(out.Hash))
			continue
		}
		failures++
		fmt.Fprintf(stdout, "FAIL %s: %s\n", path, cs)
		for _, v := range out.Violations {
			fmt.Fprintf(stdout, "     %s\n", v)
		}
	}
	if failures > 0 {
		fmt.Fprintf(stdout, "%d of %d cases failing\n", failures, fs.NArg())
		return 1
	}
	return 0
}

func cmdCorpus(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("corpus", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "testdata/conformance-corpus", "corpus directory")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	entries, err := conformance.LoadCorpus(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "atsfuzz: %v\n", err)
		return 2
	}
	for _, e := range entries {
		fmt.Fprintf(stdout, "%-24s %s\n", e.Name, e.Case)
	}
	fmt.Fprintf(stdout, "%d cases\n", len(entries))
	return 0
}

func cmdGen(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seeds := fs.Int("seeds", 10, "number of cases to generate")
	start := fs.Uint64("start", 1, "first seed")
	out := fs.String("out", "testdata/conformance-corpus", "output directory")
	aslFile := fs.String("asl", "", "register ASL scenarios from this file into the property pool")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if !loadASL(*aslFile, stderr) {
		return 2
	}
	for i := 0; i < *seeds; i++ {
		seed := *start + uint64(i)
		cs := conformance.Generate(seed, conformance.Config{})
		path := filepath.Join(*out, fmt.Sprintf("seed%03d.json", seed))
		if err := conformance.WriteCase(path, cs); err != nil {
			fmt.Fprintf(stderr, "atsfuzz: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "wrote %s: %s\n", path, cs)
	}
	return 0
}

func cmdDiff(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seeds := fs.Int("seeds", 20, "number of seeded cases to compare across engines")
	cacheDir := fs.String("cache", "", `on-disk result cache directory ("auto": default location; empty: no caching)`)
	verbose := fs.Bool("v", false, "print every compared seed, not just the summary")
	aslFile := fs.String("asl", "", "register ASL scenarios from this file into the property pool")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if !loadASL(*aslFile, stderr) {
		return 2
	}
	if *cacheDir != "" {
		_, report, err := openCache(resolveCacheDir(*cacheDir, ""), stderr)
		if err != nil {
			fmt.Fprintf(stderr, "atsfuzz: %v\n", err)
			return 2
		}
		defer report()
	}
	compared := 0
	err := conformance.DiffSeeds(*seeds, func(seed uint64, out conformance.DiffOutcome) {
		compared++
		if *verbose {
			mode := "byte-compared"
			if !out.BytesCompared {
				mode = "ran on both engines (nondeterministic waits; bytes not compared)"
			}
			fmt.Fprintf(stdout, "ok   seed %-4d %8d trace bytes  %s  %s\n",
				seed, out.TraceBytes, short(out.Hash), mode)
		}
	})
	if err != nil {
		fmt.Fprintf(stderr, "atsfuzz diff: engines diverge: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "diff: %d seeds, event and goroutine engines agree byte for byte\n", compared)
	return 0
}

func short(hash string) string {
	if len(hash) > 12 {
		return hash[:12]
	}
	return hash
}
