// Command benchjson converts `go test -bench` text output into a stable
// JSON document, making the repository's performance trajectory
// machine-readable: each `make bench-json` run drops a BENCH_<stamp>.json
// snapshot that later PRs (and the regression tooling) can diff without
// re-parsing benchmark text.
//
//	go test -run '^$' -bench . . | benchjson -out testdata/bench/BENCH_20260805.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Iterations is b.N of the final run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline ns/op figure.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every other reported unit (MB/s, allocs/op, custom
	// b.ReportMetric units such as "events").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the emitted snapshot.
type Doc struct {
	Schema     int         `json:"schema"`
	Stamp      string      `json:"stamp"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("out", "", "output path (default: stdout)")
	stamp := flag.String("stamp", time.Now().Format("20060102"), "snapshot stamp")
	flag.Parse()

	doc := Doc{Schema: 1, Stamp: *stamp}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseLine(line)
			if ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("read: %v", err)
	}
	if len(doc.Benchmarks) == 0 {
		log.Fatal("no benchmark result lines on stdin")
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatalf("encode: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatalf("write: %v", err)
	}
	fmt.Printf("wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
}

// parseLine parses one result line:
//
//	BenchmarkScale_CompositeRanks/procs=16   3   306581 ns/op   288.0 events
//
// i.e. name, iteration count, then (value, unit) pairs.
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Benchmark{}, false
	}
	name := f[0]
	// Strip the -GOMAXPROCS suffix (absent when GOMAXPROCS=1).
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		val, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		if f[i+1] == "ns/op" {
			b.NsPerOp = val
			continue
		}
		if b.Metrics == nil {
			b.Metrics = make(map[string]float64)
		}
		b.Metrics[f[i+1]] = val
	}
	return b, true
}
