// Command benchjson converts `go test -bench` text output into a stable
// JSON document, making the repository's performance trajectory
// machine-readable: each `make bench-json` run drops a BENCH_<stamp>.json
// snapshot that later PRs (and the regression tooling) can diff without
// re-parsing benchmark text.
//
//	go test -run '^$' -bench . . | benchjson -out testdata/bench/BENCH_20260805.json
//
// With -diff it instead compares two snapshots and exits non-zero when
// any shared benchmark slowed down past the tolerance — the CI guard
// that turns the committed BENCH_*.json trail into a regression gate:
//
//	benchjson -diff -tol 25 testdata/bench/BENCH_old.json BENCH_new.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Iterations is b.N of the final run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline ns/op figure.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every other reported unit (MB/s, allocs/op, custom
	// b.ReportMetric units such as "events").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the emitted snapshot.
type Doc struct {
	Schema     int         `json:"schema"`
	Stamp      string      `json:"stamp"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("out", "", "output path (default: stdout)")
	stamp := flag.String("stamp", time.Now().Format("20060102"), "snapshot stamp")
	diff := flag.Bool("diff", false, "compare two snapshot files (old new) instead of parsing stdin")
	tol := flag.Float64("tol", 20, "with -diff: ns/op regression tolerance in percent")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			log.Fatal("usage: benchjson -diff [-tol pct] old.json new.json")
		}
		os.Exit(diffDocs(os.Stdout, flag.Arg(0), flag.Arg(1), *tol))
	}

	doc := Doc{Schema: 1, Stamp: *stamp}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseLine(line)
			if ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("read: %v", err)
	}
	if len(doc.Benchmarks) == 0 {
		log.Fatal("no benchmark result lines on stdin")
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatalf("encode: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatalf("write: %v", err)
	}
	fmt.Printf("wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
}

// readDoc loads one snapshot file.
func readDoc(path string) (Doc, error) {
	var doc Doc
	blob, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(blob, &doc); err != nil {
		return doc, fmt.Errorf("%s: %v", path, err)
	}
	if doc.Schema != 1 {
		return doc, fmt.Errorf("%s: unsupported schema %d", path, doc.Schema)
	}
	return doc, nil
}

// diffDocs compares two snapshots benchmark by benchmark and returns the
// process exit code: 0 when every shared benchmark's ns/op stayed within
// tol percent of the old value, 1 when any regressed past it.  Added and
// removed benchmarks are reported but are not failures — the benchmark
// set is allowed to grow.
func diffDocs(w *os.File, oldPath, newPath string, tol float64) int {
	oldDoc, err := readDoc(oldPath)
	if err != nil {
		log.Fatalf("diff: %v", err)
	}
	newDoc, err := readDoc(newPath)
	if err != nil {
		log.Fatalf("diff: %v", err)
	}
	oldBy := make(map[string]Benchmark, len(oldDoc.Benchmarks))
	for _, b := range oldDoc.Benchmarks {
		oldBy[b.Name] = b
	}
	newBy := make(map[string]Benchmark, len(newDoc.Benchmarks))
	for _, b := range newDoc.Benchmarks {
		newBy[b.Name] = b
	}

	regressions := 0
	for _, nb := range newDoc.Benchmarks {
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Fprintf(w, "added    %-50s %12.0f ns/op\n", nb.Name, nb.NsPerOp)
			continue
		}
		if ob.NsPerOp <= 0 {
			continue
		}
		pct := (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp * 100
		switch {
		case pct > tol:
			regressions++
			fmt.Fprintf(w, "SLOWER   %-50s %12.0f -> %12.0f ns/op (%+.1f%%, tol %.0f%%)\n",
				nb.Name, ob.NsPerOp, nb.NsPerOp, pct, tol)
		case pct < -tol:
			fmt.Fprintf(w, "faster   %-50s %12.0f -> %12.0f ns/op (%+.1f%%)\n",
				nb.Name, ob.NsPerOp, nb.NsPerOp, pct)
		default:
			fmt.Fprintf(w, "ok       %-50s %12.0f -> %12.0f ns/op (%+.1f%%)\n",
				nb.Name, ob.NsPerOp, nb.NsPerOp, pct)
		}
	}
	for _, ob := range oldDoc.Benchmarks {
		if _, ok := newBy[ob.Name]; !ok {
			fmt.Fprintf(w, "removed  %-50s\n", ob.Name)
		}
	}
	fmt.Fprintf(w, "%d benchmarks compared (%s -> %s), %d regressions\n",
		len(newDoc.Benchmarks), oldDoc.Stamp, newDoc.Stamp, regressions)
	if regressions > 0 {
		return 1
	}
	return 0
}

// parseLine parses one result line:
//
//	BenchmarkScale_CompositeRanks/procs=16   3   306581 ns/op   288.0 events
//
// i.e. name, iteration count, then (value, unit) pairs.
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Benchmark{}, false
	}
	name := f[0]
	// Strip the -GOMAXPROCS suffix (absent when GOMAXPROCS=1).
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		val, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		if f[i+1] == "ns/op" {
			b.NsPerOp = val
			continue
		}
		if b.Metrics == nil {
			b.Metrics = make(map[string]float64)
		}
		b.Metrics[f[i+1]] = val
	}
	return b, true
}
