package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkScale_CompositeRanks/procs=16-4   3   306581 ns/op   288.0 events")
	if !ok {
		t.Fatal("parseLine rejected a valid line")
	}
	if b.Name != "BenchmarkScale_CompositeRanks/procs=16" {
		t.Fatalf("name = %q (GOMAXPROCS suffix not stripped)", b.Name)
	}
	if b.Iterations != 3 || b.NsPerOp != 306581 || b.Metrics["events"] != 288 {
		t.Fatalf("parsed %+v", b)
	}
	if _, ok := parseLine("BenchmarkBroken"); ok {
		t.Fatal("parseLine accepted a truncated line")
	}
}

func writeDoc(t *testing.T, path string, benchmarks []Benchmark) {
	t.Helper()
	doc := Doc{Schema: 1, Stamp: "test", Benchmarks: benchmarks}
	blob, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestDiffDocs(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeDoc(t, oldPath, []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1000},
		{Name: "BenchmarkB", NsPerOp: 2000},
		{Name: "BenchmarkGone", NsPerOp: 500},
	})

	// Within tolerance (+10% on A, faster B, one added, one removed): ok.
	writeDoc(t, newPath, []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1100},
		{Name: "BenchmarkB", NsPerOp: 1500},
		{Name: "BenchmarkNew", NsPerOp: 42},
	})
	if code := diffDocs(os.Stdout, oldPath, newPath, 20); code != 0 {
		t.Fatalf("within-tolerance diff exited %d", code)
	}

	// Past tolerance: non-zero exit.
	writeDoc(t, newPath, []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1500},
		{Name: "BenchmarkB", NsPerOp: 2000},
	})
	if code := diffDocs(os.Stdout, oldPath, newPath, 20); code != 1 {
		t.Fatalf("regression diff exited %d; want 1", code)
	}

	// The same regression passes under a looser tolerance.
	if code := diffDocs(os.Stdout, oldPath, newPath, 60); code != 0 {
		t.Fatalf("loose-tolerance diff exited %d", code)
	}
}
