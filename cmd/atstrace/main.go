// Command atstrace renders a serialized event trace as a Vampir-style
// ASCII timeline (the visualization stand-in for paper Figs 3.2–3.4) and
// optionally dumps the flat region profile or the raw events.
//
// Usage:
//
//	atstrace trace.ats
//	atstrace -width 160 -profile trace.ats
//	atstrace -events trace.ats | head
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("atstrace: ")
	var (
		width    = flag.Int("width", 100, "timeline width in columns")
		profile  = flag.Bool("profile", false, "print the flat region profile")
		calltree = flag.Bool("calltree", false, "print the call-tree profile")
		events   = flag.Bool("events", false, "dump raw events")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: atstrace [-width n] [-profile] [-calltree] [-events] <trace file>")
	}
	tr, err := trace.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatalf("reading trace: %v", err)
	}
	fmt.Print(trace.Timeline(tr, trace.TimelineOptions{Width: *width}))
	if *profile {
		fmt.Println()
		fmt.Print(trace.ComputeStats(tr).Profile())
	}
	if *calltree {
		fmt.Println()
		fmt.Print(trace.ComputePathProfile(tr).RenderTree(tr))
	}
	if *events {
		fmt.Println()
		for _, ev := range tr.Events {
			fmt.Printf("%.9f %-7s %-7s path=%q peer=%d tag=%d bytes=%d coll=%v match=%d\n",
				ev.Time, ev.Loc, ev.Kind, tr.PathString(ev.Path),
				ev.Peer, ev.Tag, ev.Bytes, ev.Coll, ev.Match)
		}
	}
}
