package apps

import (
	"repro/internal/mpi"
	"repro/internal/work"
)

// WorkStealConfig configures the work-stealing task farm.
//
// Performance behaviour: unlike the demand-driven MasterWorker farm,
// tasks are pre-partitioned into per-worker queues (locality: a worker
// prefers its own block).  Rank 0 coordinates: it hands each requesting
// worker the next task of that worker's own queue, and once a queue
// runs dry it steals from the tail of the currently richest queue.  With
// stealing on, a heavy-tailed block (one worker's queue holds the big
// tasks) self-balances and the farm analyzes clean.  InjectImbalance
// disables stealing: workers that drain their cheap queues early stop
// and wait at the final barrier while the loaded worker grinds alone —
// wait_at_mpi_barrier, located in the "workstealing" call path.
type WorkStealConfig struct {
	// Tasks is the total task count (default 8×workers).
	Tasks int
	// TaskCost is the nominal per-task duration (default 5ms).
	TaskCost float64
	// HeavyFactor scales the tasks of worker 1's block (default 6): the
	// heavy tail that stealing must redistribute.
	HeavyFactor float64
	// Inject selects a seeded pathology; InjectImbalance disables
	// stealing so the heavy block stays put.
	Inject Injection
	// Seed randomizes task durations deterministically.
	Seed uint64
}

func (cfg WorkStealConfig) withDefaults(workers int) WorkStealConfig {
	if cfg.Tasks <= 0 {
		cfg.Tasks = 8 * workers
	}
	if cfg.TaskCost <= 0 {
		cfg.TaskCost = 5e-3
	}
	if cfg.HeavyFactor <= 0 {
		cfg.HeavyFactor = 6
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	return cfg
}

// WorkStealResult reports the farm outcome.
type WorkStealResult struct {
	// TasksDone is the number of tasks this rank processed.
	TasksDone int
	// Stolen is how many of them came from another worker's queue.
	Stolen int
	// Steals is the coordinator's total steal count (0 elsewhere).
	Steals int
	// Total is the verified sum Σ id² (identical on all ranks).
	Total int64
}

// Coordinator protocol tags.
const (
	tagWSReq  = 40
	tagWSTask = 41
	tagWSStop = 42
)

// WorkSteal runs the work-stealing farm on communicator c (requires
// ≥ 2 ranks).  Every rank must call it with the same configuration.
func WorkSteal(c *mpi.Comm, cfg WorkStealConfig) WorkStealResult {
	workers := c.Size() - 1
	if workers < 1 {
		panic("apps: WorkSteal needs at least 2 ranks")
	}
	cfg = cfg.withDefaults(workers)
	c.Begin("workstealing")
	defer c.End()

	// Task durations and the static block partition, identical on all
	// ranks: worker w owns the contiguous block of queue[w].
	durations := make([]float64, cfg.Tasks)
	rng := work.NewRNG(cfg.Seed)
	for i := range durations {
		durations[i] = cfg.TaskCost * (0.5 + rng.Float64())
	}
	queues := make([][]int, workers+1)
	for i := 0; i < cfg.Tasks; i++ {
		w := 1 + i*workers/cfg.Tasks
		queues[w] = append(queues[w], i)
	}
	for _, id := range queues[1] {
		durations[id] *= cfg.HeavyFactor
	}
	stealing := cfg.Inject != InjectImbalance

	req := mpi.AllocBuf(mpi.TypeInt, 2)
	task := mpi.AllocBuf(mpi.TypeInt, 2)
	res := WorkStealResult{}

	if c.Rank() == 0 {
		// Coordinator: serve requests until every queue is empty and
		// every worker has been stopped.
		heads := make([]int, workers+1) // consumed prefix per queue
		var total int64
		stopped := 0
		for stopped < workers {
			st := c.Recv(req, mpi.AnySource, tagWSReq)
			if id := req.Int64(0); id >= 0 {
				total += req.Int64(1)
			}
			w := st.Source
			if heads[w] < len(queues[w]) {
				// Own queue first: pop the front.
				task.SetInt64(0, int64(queues[w][heads[w]]))
				task.SetInt64(1, 0)
				heads[w]++
				c.Send(task, w, tagWSTask)
				continue
			}
			if stealing {
				// Steal from the tail of the richest queue.
				victim, best := 0, 0
				for v := 1; v <= workers; v++ {
					if remaining := len(queues[v]) - heads[v]; remaining > best {
						victim, best = v, remaining
					}
				}
				if victim != 0 {
					last := len(queues[victim]) - 1
					task.SetInt64(0, int64(queues[victim][last]))
					task.SetInt64(1, 1)
					queues[victim] = queues[victim][:last]
					res.Steals++
					c.Send(task, w, tagWSTask)
					continue
				}
			}
			c.Send(task, w, tagWSStop)
			stopped++
		}
		res.Total = total
	} else {
		req.SetInt64(0, -1)
		for {
			c.Send(req, 0, tagWSReq)
			st := c.Recv(task, 0, mpi.AnyTag)
			if st.Tag == tagWSStop {
				break
			}
			id := int(task.Int64(0))
			c.Begin("task")
			c.Work(durations[id])
			c.End()
			res.TasksDone++
			if task.Int64(1) != 0 {
				res.Stolen++
			}
			req.SetInt64(0, int64(id))
			req.SetInt64(1, int64(id)*int64(id))
		}
	}

	// Completion barrier: with stealing off, the early-finished workers
	// idle here while the loaded worker drains its heavy block.
	c.Barrier()

	// Broadcast the verified total so every rank can cross-check.
	tot := mpi.AllocBuf(mpi.TypeInt, 1)
	if c.Rank() == 0 {
		tot.SetInt64(0, res.Total)
	}
	c.Bcast(tot, 0)
	res.Total = tot.Int64(0)
	return res
}

// WorkStealScenarioASL restates the stealing-disabled pathology as an
// ASL scenario: per-worker compute times are drawn from a two-block
// distribution and every round joins a barrier, so the imbalance of the
// distribution is exactly the barrier wait (see doc/ASL.md).
const WorkStealScenarioASL = `
scenario stealing_disabled {
    help "heavy-tailed task blocks with work stealing switched off";
    param load distr = block2(0.004, 0.02);
    param r    int   = 3 in [1, 6];
    inject skewed_barrier(load, r);
    detects "wait_at_mpi_barrier";
    severity r * imbalance(load);
}
`
