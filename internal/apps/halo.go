package apps

import (
	"math"

	"repro/internal/mpi"
)

// HaloConfig configures the communication-avoiding 1-D stencil solver
// with a parameterized ghost-cell (halo) width.
//
// Performance behaviour: with halo width g each rank exchanges g cells
// per neighbour every g iterations and in return recomputes up to g-1
// ghost cells per sub-step — the classic deep-halo tradeoff: message
// count drops by a factor of g while the modeled computation grows by
// the redundant ghost work.  The numerical result is independent of
// both the decomposition and g.  Under InjectImbalance (skewed cell
// partition) or InjectSlowRank the overloaded rank delays its halo
// sends and the per-superstep residual allreduce: a tool must report
// late_sender at "halo_exchange" and wait_at_nxn at the residual, both
// inside the "halo_superstep" call path.
type HaloConfig struct {
	// Cells sizes the global 1-D domain (default 256).
	Cells int
	// Ghost is the halo width g ≥ 1 (default 2).
	Ghost int
	// Steps is the smoothing step count, rounded up to a multiple of
	// Ghost (default 12).
	Steps int
	// CellCost is the modeled time to update one cell (default 1µs).
	CellCost float64
	// Inject selects a seeded pathology.
	Inject Injection
	// SkewFactor scales the injected slowdown (default 3).
	SkewFactor float64
}

func (cfg HaloConfig) withDefaults() HaloConfig {
	if cfg.Cells <= 0 {
		cfg.Cells = 256
	}
	if cfg.Ghost <= 0 {
		cfg.Ghost = 2
	}
	if cfg.Steps <= 0 {
		cfg.Steps = 12
	}
	if cfg.CellCost <= 0 {
		cfg.CellCost = 1e-6
	}
	if cfg.SkewFactor <= 0 {
		cfg.SkewFactor = 3
	}
	return cfg
}

// HaloResult reports the solve outcome.
type HaloResult struct {
	Checksum   float64
	Residual   float64
	Cells      int // local cells of this rank
	Supersteps int
}

// cellPartition returns each rank's cell count under the configuration.
func (cfg HaloConfig) cellPartition(size int) []int {
	cells := make([]int, size)
	base := cfg.Cells / size
	rem := cfg.Cells % size
	for i := range cells {
		cells[i] = base
		if i < rem {
			cells[i]++
		}
	}
	if cfg.Inject == InjectImbalance && size > 1 {
		want := int(float64(base) * cfg.SkewFactor)
		for i := 1; i < size && cells[0] < want; i++ {
			give := cells[i] - 1
			if cells[0]+give > want {
				give = want - cells[0]
			}
			cells[i] -= give
			cells[0] += give
		}
	}
	return cells
}

// Halo runs the deep-halo stencil solver on communicator c and returns
// this rank's result.  Every rank must call it with the same
// configuration.
func Halo(c *mpi.Comm, cfg HaloConfig) HaloResult {
	cfg = cfg.withDefaults()
	c.Begin("halo")
	defer c.End()

	size, rank := c.Size(), c.Rank()
	g := cfg.Ghost
	supersteps := (cfg.Steps + g - 1) / g

	cells := cfg.cellPartition(size)
	n := cells[rank]
	first := 0
	for i := 0; i < rank; i++ {
		first += cells[i]
	}

	// Local domain with g ghost cells each side; local index i holds the
	// global cell first-g+i.  Global boundary cells 0 and Cells-1 are
	// fixed (hot edges), so the update is identical however the domain
	// is cut.
	cur := make([]float64, n+2*g)
	next := make([]float64, n+2*g)
	globalOf := func(i int) int { return first - g + i }
	for i := range cur {
		if gl := globalOf(i); gl >= 0 && gl < cfg.Cells {
			cur[i] = math.Sin(float64(gl*13)) * 0.01
			if gl == 0 || gl == cfg.Cells-1 {
				cur[i] = 1.0
			}
		}
	}

	left, right := rank-1, rank+1
	out := mpi.AllocBuf(mpi.TypeDouble, g)
	in := mpi.AllocBuf(mpi.TypeDouble, g)
	resS := mpi.AllocBuf(mpi.TypeDouble, 1)
	resR := mpi.AllocBuf(mpi.TypeDouble, 1)

	cellCost := cfg.CellCost
	if cfg.Inject == InjectSlowRank && rank == 0 {
		cellCost *= cfg.SkewFactor
	}

	var residual float64
	for ss := 0; ss < supersteps; ss++ {
		c.Begin("halo_superstep")

		// Deep-halo exchange: g edge cells per neighbour, every g steps.
		c.Begin("halo_exchange")
		if left >= 0 {
			copyCells(out, cur[g:2*g])
			c.Sendrecv(out, left, 30, in, left, 31)
			copyCellsBack(cur[:g], in)
		}
		if right < size {
			copyCells(out, cur[n:n+g])
			c.Sendrecv(out, right, 31, in, right, 30)
			copyCellsBack(cur[n+g:], in)
		}
		c.End()

		// g sub-steps on the snapshot: the correctly updatable window
		// shrinks by one cell per side per sub-step, so the last step
		// still covers exactly the owned cells.  The ghost updates are
		// the redundant computation the wide halo buys.
		local := 0.0
		for s := 0; s < g; s++ {
			lo, hi := 1+s, n+2*g-1-s
			if rank == 0 {
				lo = g + 1 // global cell 0 is a fixed boundary
			}
			if rank == size-1 {
				hi = n + g - 1 // global cell Cells-1 likewise
			}
			for i := lo; i < hi; i++ {
				v := 0.25*cur[i-1] + 0.5*cur[i] + 0.25*cur[i+1]
				next[i] = v
				if s == g-1 && i >= g && i < n+g {
					d := v - cur[i]
					local += d * d
				}
			}
			next[lo-1], next[hi] = cur[lo-1], cur[hi]
			c.Work(float64(hi-lo) * cellCost)
			cur, next = next, cur
		}

		// Global residual of the superstep.
		resS.SetFloat64(0, local)
		c.Allreduce(resS, resR, mpi.OpSum)
		residual = math.Sqrt(resR.Float64(0))
		c.End()
	}

	var sum float64
	for i := g; i < n+g; i++ {
		sum += cur[i]
	}
	resS.SetFloat64(0, sum)
	c.Allreduce(resS, resR, mpi.OpSum)
	return HaloResult{Checksum: resR.Float64(0), Residual: residual, Cells: n, Supersteps: supersteps}
}

func copyCells(dst *mpi.Buf, cells []float64) {
	for j, v := range cells {
		dst.SetFloat64(j, v)
	}
}

func copyCellsBack(cells []float64, src *mpi.Buf) {
	for j := range cells {
		cells[j] = src.Float64(j)
	}
}

// HaloScenarioASL restates the Halo slow-rank pathology as an ASL
// scenario: the overloaded neighbour's halo sends arrive late on every
// exchange, which is exactly a delayed-send pattern with a closed-form
// late-sender wait (see doc/ASL.md).
const HaloScenarioASL = `
scenario halo_slow_neighbor {
    help "deep-halo exchange with one overloaded rank delaying its sends";
    param base  float = 0.002 in [0.001, 0.004];
    param extra float = 0.01  in [0.005, 0.02];
    param r     int   = 4     in [1, 8];
    inject delayed_send(base, extra, r);
    detects "late_sender";
    severity floor(ranks() / 2) * extra * r;
}
`
