package apps

import (
	"repro/internal/mpi"
	"repro/internal/work"
)

// MasterWorkerConfig configures the task-farm application.
//
// Performance behaviour: rank 0 is the master; it hands task descriptors
// to workers on demand and collects results.  With many small, uniform
// tasks the farm self-balances and analyzes clean apart from the master's
// own serialization.  Two pathologies are characteristic:
//
//   - InjectImbalance: task durations become heavy-tailed (one giant task),
//     so workers that finish early idle in MPI_Recv waiting for the final
//     result round — late_sender located under "masterworker".
//   - A too-small TasksPerWorker ratio starves workers on the master's
//     send path (master becomes the bottleneck — MPI time fraction rises).
type MasterWorkerConfig struct {
	// Tasks is the total number of tasks (default 8×workers).
	Tasks int
	// TaskCost is the nominal per-task duration (default 5ms).
	TaskCost float64
	// Inject selects a seeded pathology.
	Inject Injection
	// SkewFactor scales the giant task under InjectImbalance (default 20).
	SkewFactor float64
	// Seed randomizes task order deterministically.
	Seed uint64
}

func (cfg MasterWorkerConfig) withDefaults(workers int) MasterWorkerConfig {
	if cfg.Tasks <= 0 {
		cfg.Tasks = 8 * workers
	}
	if cfg.TaskCost <= 0 {
		cfg.TaskCost = 5e-3
	}
	if cfg.SkewFactor <= 0 {
		cfg.SkewFactor = 20
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	return cfg
}

// MasterWorkerResult reports the farm outcome.
type MasterWorkerResult struct {
	// TasksDone is the number of tasks this rank processed (0 on the
	// master).
	TasksDone int
	// Total is the verified sum of all task results (identical on all
	// ranks).
	Total int64
}

// Message tags of the farm protocol.
const (
	tagTask   = 20
	tagResult = 21
	tagStop   = 22
)

// MasterWorker runs the task farm on communicator c (requires ≥ 2 ranks).
func MasterWorker(c *mpi.Comm, cfg MasterWorkerConfig) MasterWorkerResult {
	workers := c.Size() - 1
	if workers < 1 {
		panic("apps: MasterWorker needs at least 2 ranks")
	}
	cfg = cfg.withDefaults(workers)
	c.Begin("masterworker")
	defer c.End()

	// Task durations, identical on all ranks (deterministic RNG).
	durations := make([]float64, cfg.Tasks)
	rng := work.NewRNG(cfg.Seed)
	for i := range durations {
		durations[i] = cfg.TaskCost * (0.5 + rng.Float64())
	}
	if cfg.Inject == InjectImbalance {
		durations[cfg.Tasks/2] = cfg.TaskCost * cfg.SkewFactor
	}

	task := mpi.AllocBuf(mpi.TypeInt, 1)
	result := mpi.AllocBuf(mpi.TypeInt, 2)
	res := MasterWorkerResult{}

	if c.Rank() == 0 {
		// Master: initial round-robin seeding, then demand-driven.
		next := 0
		outstanding := 0
		var total int64
		for w := 1; w <= workers && next < cfg.Tasks; w++ {
			task.SetInt64(0, int64(next))
			c.Send(task, w, tagTask)
			next++
			outstanding++
		}
		for outstanding > 0 {
			st := c.Recv(result, mpi.AnySource, tagResult)
			total += result.Int64(1)
			outstanding--
			if next < cfg.Tasks {
				task.SetInt64(0, int64(next))
				c.Send(task, st.Source, tagTask)
				next++
				outstanding++
			} else {
				c.Send(task, st.Source, tagStop)
			}
		}
		res.Total = total
	} else {
		for {
			st := c.Recv(task, 0, mpi.AnyTag)
			if st.Tag == tagStop {
				break
			}
			id := int(task.Int64(0))
			c.Begin("task")
			c.Work(durations[id])
			c.End()
			result.SetInt64(0, int64(id))
			result.SetInt64(1, int64(id)*int64(id)) // verifiable payload
			c.Send(result, 0, tagResult)
			res.TasksDone++
		}
	}

	// Broadcast the verified total so every rank can cross-check.
	tot := mpi.AllocBuf(mpi.TypeInt, 1)
	if c.Rank() == 0 {
		tot.SetInt64(0, res.Total)
	}
	c.Bcast(tot, 0)
	res.Total = tot.Int64(0)
	return res
}

// MasterWorkerExpectedTotal returns the verified sum Σ id² the farm must
// produce for a given task count.
func MasterWorkerExpectedTotal(tasks int) int64 {
	var t int64
	for i := 0; i < tasks; i++ {
		t += int64(i) * int64(i)
	}
	return t
}
