package apps

import (
	"fmt"
	"math"

	"repro/internal/mpi"
)

// Jacobi2DConfig configures the two-dimensionally decomposed Jacobi
// solver: the global grid is split over a Px×Py Cartesian process grid
// (mpi.CartCreate), each rank exchanging one halo row/column with up to
// four neighbours per iteration.
//
// Performance behaviour: like the 1-D solver, tuned runs are
// bulk-synchronous and clean.  The 2-D decomposition's characteristic
// failure mode is a *corner/edge imbalance*: with InjectImbalance the
// ranks in grid row 0 receive SkewFactor× the cell cost (e.g. a slow
// node row), which a tool must localize to those grid coordinates.
type Jacobi2DConfig struct {
	// Rows, Cols size the global grid (defaults 48×48).
	Rows, Cols int
	// Px, Py size the process grid; Px*Py must not exceed the
	// communicator size (defaults: 2 × size/2).
	Px, Py int
	// Iters is the iteration count (default 8).
	Iters int
	// CellCost is the modeled per-cell smoothing time (default 1µs).
	CellCost float64
	// Inject selects a seeded pathology.
	Inject Injection
	// SkewFactor scales the injected slowdown (default 3).
	SkewFactor float64
}

func (cfg Jacobi2DConfig) withDefaults(size int) Jacobi2DConfig {
	if cfg.Rows <= 0 {
		cfg.Rows = 48
	}
	if cfg.Cols <= 0 {
		cfg.Cols = 48
	}
	if cfg.Px <= 0 || cfg.Py <= 0 {
		cfg.Px = 2
		cfg.Py = size / 2
		if cfg.Py < 1 {
			cfg.Px, cfg.Py = 1, 1
		}
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 8
	}
	if cfg.CellCost <= 0 {
		cfg.CellCost = 1e-6
	}
	if cfg.SkewFactor <= 0 {
		cfg.SkewFactor = 3
	}
	return cfg
}

// Jacobi2D runs the 2-D-decomposed solver.  Ranks outside the process
// grid return a zero result.  The returned checksum is identical on all
// grid ranks and independent of the decomposition.
func Jacobi2D(c *mpi.Comm, cfg Jacobi2DConfig) JacobiResult {
	cfg = cfg.withDefaults(c.Size())
	c.Begin("jacobi2d")
	defer c.End()

	grid := c.CartCreate([]int{cfg.Px, cfg.Py}, []bool{false, false})
	if grid == nil {
		return JacobiResult{}
	}
	co := grid.Coords()
	if cfg.Rows%cfg.Px != 0 || cfg.Cols%cfg.Py != 0 {
		panic(fmt.Sprintf("apps: Jacobi2D grid %dx%d not divisible by process grid %dx%d",
			cfg.Rows, cfg.Cols, cfg.Px, cfg.Py))
	}
	lr, lc := cfg.Rows/cfg.Px, cfg.Cols/cfg.Py
	r0, c0 := co[0]*lr, co[1]*lc

	// Local block with one halo layer on each side.
	cur := make([][]float64, lr+2)
	next := make([][]float64, lr+2)
	for i := range cur {
		cur[i] = make([]float64, lc+2)
		next[i] = make([]float64, lc+2)
	}
	for i := 1; i <= lr; i++ {
		for j := 1; j <= lc; j++ {
			g, h := r0+i-1, c0+j-1
			cur[i][j] = math.Sin(float64(g*31+h)) * 0.01
			if h == 0 {
				cur[i][j] = 1.0 // hot left edge
			}
		}
	}

	upSrc, upDst := grid.Shift(0, 1)     // data flows toward +x
	leftSrc, leftDst := grid.Shift(1, 1) // data flows toward +y
	rowBuf := mpi.AllocBuf(mpi.TypeDouble, lc)
	rowIn := mpi.AllocBuf(mpi.TypeDouble, lc)
	colBuf := mpi.AllocBuf(mpi.TypeDouble, lr)
	colIn := mpi.AllocBuf(mpi.TypeDouble, lr)
	resS := mpi.AllocBuf(mpi.TypeDouble, 1)
	resR := mpi.AllocBuf(mpi.TypeDouble, 1)

	cellCost := cfg.CellCost
	if cfg.Inject == InjectImbalance && co[0] == 0 {
		cellCost *= cfg.SkewFactor
	}

	var residual float64
	for it := 0; it < cfg.Iters; it++ {
		grid.Begin("jacobi2d_iteration")

		grid.Begin("halo_exchange_2d")
		// +x direction: send bottom row down, receive top halo from up.
		for j := 0; j < lc; j++ {
			rowBuf.SetFloat64(j, cur[lr][j+1])
		}
		grid.SendrecvNeighbor(rowBuf, upDst, 40, rowIn, upSrc, 40)
		if upSrc != mpi.ProcNull {
			for j := 0; j < lc; j++ {
				cur[0][j+1] = rowIn.Float64(j)
			}
		}
		// −x direction: send top row up, receive bottom halo.
		for j := 0; j < lc; j++ {
			rowBuf.SetFloat64(j, cur[1][j+1])
		}
		grid.SendrecvNeighbor(rowBuf, upSrc, 41, rowIn, upDst, 41)
		if upDst != mpi.ProcNull {
			for j := 0; j < lc; j++ {
				cur[lr+1][j+1] = rowIn.Float64(j)
			}
		}
		// +y / −y directions: column halos.
		for i := 0; i < lr; i++ {
			colBuf.SetFloat64(i, cur[i+1][lc])
		}
		grid.SendrecvNeighbor(colBuf, leftDst, 42, colIn, leftSrc, 42)
		if leftSrc != mpi.ProcNull {
			for i := 0; i < lr; i++ {
				cur[i+1][0] = colIn.Float64(i)
			}
		}
		for i := 0; i < lr; i++ {
			colBuf.SetFloat64(i, cur[i+1][1])
		}
		grid.SendrecvNeighbor(colBuf, leftSrc, 43, colIn, leftDst, 43)
		if leftDst != mpi.ProcNull {
			for i := 0; i < lr; i++ {
				cur[i+1][lc+1] = colIn.Float64(i)
			}
		}
		grid.End()

		// Smooth the interior of the local block.  Global boundary cells
		// keep their values (no halo beyond the domain).
		local := 0.0
		for i := 1; i <= lr; i++ {
			for j := 1; j <= lc; j++ {
				g, h := r0+i-1, c0+j-1
				if g == 0 || g == cfg.Rows-1 || h == 0 || h == cfg.Cols-1 {
					next[i][j] = cur[i][j]
					continue
				}
				v := 0.25 * (cur[i-1][j] + cur[i+1][j] + cur[i][j-1] + cur[i][j+1])
				next[i][j] = v
				d := v - cur[i][j]
				local += d * d
			}
		}
		grid.Work(float64(lr*lc) * cellCost)
		cur, next = next, cur

		resS.SetFloat64(0, local)
		grid.Allreduce(resS, resR, mpi.OpSum)
		residual = math.Sqrt(resR.Float64(0))
		grid.End()
	}

	var sum float64
	for i := 1; i <= lr; i++ {
		for j := 1; j <= lc; j++ {
			sum += cur[i][j]
		}
	}
	resS.SetFloat64(0, sum)
	grid.Allreduce(resS, resR, mpi.OpSum)
	return JacobiResult{Residual: residual, Checksum: resR.Float64(0), Rows: lr}
}
