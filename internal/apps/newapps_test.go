package apps

import (
	"math"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/mpi"
	"repro/internal/trace"
)

// ---- Halo: deep-halo stencil with parameterized ghost width ----

func haloChecksum(t *testing.T, procs int, cfg HaloConfig) float64 {
	t.Helper()
	var sum float64
	run(t, procs, func(c *mpi.Comm) {
		r := Halo(c, cfg)
		if c.Rank() == 0 {
			sum = r.Checksum
		}
	})
	return sum
}

func TestHaloChecksumIndependentOfGhostWidthAndDecomposition(t *testing.T) {
	// 12 steps divide evenly by every tested ghost width, so each run
	// executes the same global iteration count.
	base := haloChecksum(t, 1, HaloConfig{Steps: 12, Ghost: 1})
	for _, procs := range []int{2, 4} {
		for _, g := range []int{1, 2, 3} {
			got := haloChecksum(t, procs, HaloConfig{Steps: 12, Ghost: g})
			if math.Abs(got-base) > 1e-9 {
				t.Errorf("procs=%d ghost=%d: checksum %v, want %v", procs, g, got, base)
			}
		}
	}
}

func TestHaloWiderGhostSendsFewerMessages(t *testing.T) {
	msgs := func(g int) int {
		tr := run(t, 4, func(c *mpi.Comm) {
			Halo(c, HaloConfig{Steps: 12, Ghost: g})
		})
		n := 0
		for _, ev := range tr.Events {
			if ev.Kind == trace.KindSend {
				n++
			}
		}
		return n
	}
	m1, m3 := msgs(1), msgs(3)
	if m3*2 >= m1 {
		t.Errorf("ghost=3 sends %d messages vs %d at ghost=1; want a ~3x drop", m3, m1)
	}
}

func TestHaloTunedAnalyzesClean(t *testing.T) {
	tr := run(t, 4, func(c *mpi.Comm) {
		Halo(c, HaloConfig{Steps: 12, Ghost: 2, CellCost: 5e-6})
	})
	rep := analyze(tr)
	if top := rep.Top(); top != nil {
		t.Errorf("tuned Halo flagged: %s (%.2f%%)\n%s",
			top.Property, top.Severity*100, rep.Render())
	}
}

func TestHaloInjectedDetectedAndLocalized(t *testing.T) {
	for _, inject := range []Injection{InjectImbalance, InjectSlowRank} {
		tr := run(t, 4, func(c *mpi.Comm) {
			Halo(c, HaloConfig{Steps: 12, Ghost: 2, CellCost: 5e-6, Inject: inject})
		})
		rep := analyze(tr)
		top := rep.Top()
		if top == nil {
			t.Fatalf("%v: injected pathology not detected", inject)
		}
		if top.Property != analyzer.PropWaitAtNxN && top.Property != analyzer.PropLateSender {
			t.Errorf("%v: top = %s, want NxN wait or late sender", inject, top.Property)
		}
		if p := top.TopPath(); !contains(p, "halo_superstep") {
			t.Errorf("%v: top path %q not in halo_superstep", inject, p)
		}
	}
}

// ---- WorkSteal: work-stealing task farm ----

func TestWorkStealComputesCorrectTotal(t *testing.T) {
	const tasks = 24
	totals := make([]int64, 4)
	done := make([]int, 4)
	run(t, 4, func(c *mpi.Comm) {
		r := WorkSteal(c, WorkStealConfig{Tasks: tasks, TaskCost: 1e-3})
		totals[c.WorldRank()] = r.Total
		done[c.WorldRank()] = r.TasksDone
	})
	want := MasterWorkerExpectedTotal(tasks)
	for rank, got := range totals {
		if got != want {
			t.Errorf("rank %d total = %d, want %d", rank, got, want)
		}
	}
	sum := 0
	for _, d := range done {
		sum += d
	}
	if sum != tasks || done[0] != 0 {
		t.Errorf("processed %d tasks (master %d), want %d (master 0)", sum, done[0], tasks)
	}
}

func TestWorkStealStealsRebalanceTheHeavyBlock(t *testing.T) {
	// With stealing on, part of worker 1's heavy block must run
	// elsewhere; with stealing off, nothing moves.
	var steals, stolen int
	run(t, 4, func(c *mpi.Comm) {
		r := WorkSteal(c, WorkStealConfig{Tasks: 18, TaskCost: 1e-3, HeavyFactor: 8})
		if c.Rank() == 0 {
			steals = r.Steals
		}
		if c.Rank() > 1 {
			stolen += r.Stolen
		}
	})
	if steals == 0 || stolen == 0 {
		t.Errorf("no stealing happened: coordinator %d, workers %d", steals, stolen)
	}
	run(t, 4, func(c *mpi.Comm) {
		r := WorkSteal(c, WorkStealConfig{Tasks: 18, TaskCost: 1e-3, HeavyFactor: 8,
			Inject: InjectImbalance})
		if r.Steals != 0 || r.Stolen != 0 {
			t.Errorf("rank %d stole with stealing disabled: %+v", c.Rank(), r)
		}
	})
}

func TestWorkStealDisabledStealingDetectedAtBarrier(t *testing.T) {
	barrierWait := func(inject Injection) float64 {
		tr := run(t, 4, func(c *mpi.Comm) {
			WorkSteal(c, WorkStealConfig{Tasks: 18, TaskCost: 2e-3, HeavyFactor: 10,
				Inject: inject})
		})
		rep := analyze(tr)
		w := rep.Wait(analyzer.PropWaitAtBarrier)
		if inject == InjectImbalance {
			r := rep.Get(analyzer.PropWaitAtBarrier)
			if r == nil || r.Severity < rep.Threshold {
				t.Fatalf("stalled farm not detected\n%s", rep.Render())
			}
			if p := r.TopPath(); !contains(p, "workstealing") {
				t.Errorf("barrier wait path %q not under workstealing", p)
			}
		}
		return w
	}
	tuned := barrierWait(InjectNone)
	stalled := barrierWait(InjectImbalance)
	if stalled < 3*tuned {
		t.Errorf("stealing does not reduce the barrier wait: tuned %v, stalled %v", tuned, stalled)
	}
}

// ---- AMR: adaptive-imbalance phases ----

func TestAMRChecksumMatchesSerialAcrossDecompositions(t *testing.T) {
	want := AMRExpectedChecksum(128, 8)
	for _, procs := range []int{1, 3, 4} {
		for _, inject := range []Injection{InjectNone, InjectImbalance} {
			var got float64
			run(t, procs, func(c *mpi.Comm) {
				r := AMR(c, AMRConfig{Cells: 128, Phases: 8, Inject: inject})
				if c.Rank() == 0 {
					got = r.Checksum
				}
			})
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("procs=%d inject=%v: checksum %v, want %v", procs, inject, got, want)
			}
		}
	}
}

func TestAMRRebalanceKeepsPhasesBalanced(t *testing.T) {
	nxnWait := func(inject Injection) float64 {
		tr := run(t, 4, func(c *mpi.Comm) {
			AMR(c, AMRConfig{Cells: 128, Phases: 8, CellCost: 1e-5, Inject: inject})
		})
		rep := analyze(tr)
		if inject == InjectImbalance {
			r := rep.Get(analyzer.PropWaitAtNxN)
			if r == nil || r.Severity < rep.Threshold {
				t.Fatalf("unbalanced refinement not detected\n%s", rep.Render())
			}
			if p := r.TopPath(); !contains(p, "amr_phase") {
				t.Errorf("NxN wait path %q not in amr_phase", p)
			}
		}
		return rep.Wait(analyzer.PropWaitAtNxN)
	}
	balanced := nxnWait(InjectNone)
	skewed := nxnWait(InjectImbalance)
	if skewed < 3*balanced {
		t.Errorf("rebalance does not reduce the collective wait: balanced %v, skewed %v",
			balanced, skewed)
	}
}

func TestAMRRefinementReachesMaxLevel(t *testing.T) {
	run(t, 2, func(c *mpi.Comm) {
		r := AMR(c, AMRConfig{Cells: 128, Phases: 8})
		if c.Rank() == 0 && r.MaxLevel != 2 {
			t.Errorf("MaxLevel = %d, want 2", r.MaxLevel)
		}
		if c.Rank() == 0 && r.Rebalances != 7 {
			t.Errorf("Rebalances = %d, want 7", r.Rebalances)
		}
	})
}
