package apps

import (
	"math"
	"testing"
	"time"

	"repro/internal/analyzer"
	"repro/internal/mpi"
	"repro/internal/trace"
)

func run(t *testing.T, procs int, body func(c *mpi.Comm)) *trace.Trace {
	t.Helper()
	tr, err := mpi.Run(mpi.Options{Procs: procs, Timeout: 60 * time.Second}, body)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	return tr
}

func analyze(tr *trace.Trace) *analyzer.Report {
	return analyzer.Analyze(tr, analyzer.Options{})
}

func TestJacobiConvergesAndIsDeterministic(t *testing.T) {
	var res1, res2 JacobiResult
	run(t, 4, func(c *mpi.Comm) {
		r := Jacobi(c, JacobiConfig{Iters: 20})
		if c.Rank() == 0 {
			res1 = r
		}
	})
	run(t, 4, func(c *mpi.Comm) {
		r := Jacobi(c, JacobiConfig{Iters: 20})
		if c.Rank() == 0 {
			res2 = r
		}
	})
	if res1.Checksum != res2.Checksum || res1.Residual != res2.Residual {
		t.Errorf("non-deterministic: %+v vs %+v", res1, res2)
	}
	if res1.Residual <= 0 || math.IsNaN(res1.Residual) {
		t.Errorf("bad residual %v", res1.Residual)
	}
}

func TestJacobiChecksumIndependentOfDecomposition(t *testing.T) {
	// The same grid split over 2 vs 4 ranks must produce the same field.
	var c2, c4 float64
	run(t, 2, func(c *mpi.Comm) {
		r := Jacobi(c, JacobiConfig{Iters: 8})
		c2 = r.Checksum
	})
	run(t, 4, func(c *mpi.Comm) {
		r := Jacobi(c, JacobiConfig{Iters: 8})
		c4 = r.Checksum
	})
	if math.Abs(c2-c4) > 1e-9 {
		t.Errorf("checksum depends on decomposition: %v vs %v", c2, c4)
	}
}

func TestJacobiTunedAnalyzesClean(t *testing.T) {
	tr := run(t, 4, func(c *mpi.Comm) {
		Jacobi(c, JacobiConfig{Rows: 64, Iters: 10, CellCost: 5e-6})
	})
	rep := analyze(tr)
	if top := rep.Top(); top != nil {
		t.Errorf("tuned Jacobi flagged: %s (%.2f%%)\n%s",
			top.Property, top.Severity*100, rep.Render())
	}
}

func TestJacobiImbalanceDetectedAndLocalized(t *testing.T) {
	for _, inject := range []Injection{InjectImbalance, InjectSlowRank} {
		tr := run(t, 4, func(c *mpi.Comm) {
			Jacobi(c, JacobiConfig{Rows: 64, Iters: 10, CellCost: 5e-6, Inject: inject})
		})
		rep := analyze(tr)
		top := rep.Top()
		if top == nil {
			t.Fatalf("%v: injected pathology not detected", inject)
		}
		// The imbalance surfaces at the residual allreduce and/or the
		// halo exchange.
		if top.Property != analyzer.PropWaitAtNxN && top.Property != analyzer.PropLateSender {
			t.Errorf("%v: top = %s, want NxN wait or late sender", inject, top.Property)
		}
		// Localized inside the iteration call path.
		if p := top.TopPath(); !contains(p, "jacobi_iteration") {
			t.Errorf("%v: top path %q not in jacobi_iteration", inject, p)
		}
		// Rank 0 is the overloaded one: it must NOT be the top waiter.
		r := rep.Get(analyzer.PropWaitAtNxN)
		if r != nil {
			w0 := r.ByLocation[trace.Location{Rank: 0}]
			for loc, w := range r.ByLocation {
				if loc.Rank != 0 && w < w0*0.5 {
					t.Errorf("%v: overloaded rank 0 waits (%v) more than rank %d (%v)",
						inject, w0, loc.Rank, w)
				}
			}
		}
	}
}

func contains(path, region string) bool {
	for len(path) > 0 {
		i := 0
		for i < len(path) && path[i] != '/' {
			i++
		}
		if path[:i] == region {
			return true
		}
		if i == len(path) {
			break
		}
		path = path[i+1:]
	}
	return false
}

func TestMasterWorkerComputesCorrectTotal(t *testing.T) {
	const tasks = 24
	totals := make([]int64, 4)
	run(t, 4, func(c *mpi.Comm) {
		r := MasterWorker(c, MasterWorkerConfig{Tasks: tasks, TaskCost: 1e-3})
		totals[c.WorldRank()] = r.Total
	})
	want := MasterWorkerExpectedTotal(tasks)
	for rank, got := range totals {
		if got != want {
			t.Errorf("rank %d total = %d, want %d", rank, got, want)
		}
	}
}

func TestMasterWorkerAllTasksProcessed(t *testing.T) {
	const tasks = 30
	done := make([]int, 5)
	run(t, 5, func(c *mpi.Comm) {
		r := MasterWorker(c, MasterWorkerConfig{Tasks: tasks, TaskCost: 1e-3})
		done[c.WorldRank()] = r.TasksDone
	})
	sum := 0
	for _, d := range done {
		sum += d
	}
	if sum != tasks {
		t.Errorf("workers processed %d tasks, want %d", sum, tasks)
	}
	if done[0] != 0 {
		t.Errorf("master processed %d tasks", done[0])
	}
}

func TestMasterWorkerGiantTaskDetected(t *testing.T) {
	tr := run(t, 4, func(c *mpi.Comm) {
		MasterWorker(c, MasterWorkerConfig{Tasks: 12, TaskCost: 2e-3,
			Inject: InjectImbalance, SkewFactor: 40})
	})
	rep := analyze(tr)
	// Early-finishing workers idle in Recv while the giant task runs:
	// late sender must be significant and located under masterworker.
	r := rep.Get(analyzer.PropLateSender)
	if r == nil || r.Severity < rep.Threshold {
		t.Fatalf("giant task not detected\n%s", rep.Render())
	}
	if p := r.TopPath(); !contains(p, "masterworker") {
		t.Errorf("late sender path %q not under masterworker", p)
	}
}

func TestPipelineChecksum(t *testing.T) {
	const P, blocks = 5, 12
	var got int64
	run(t, P, func(c *mpi.Comm) {
		r := Pipeline(c, PipelineConfig{Blocks: blocks, StageCost: 1e-3})
		got = r.Checksum
	})
	if want := PipelineExpectedChecksum(P, blocks); got != want {
		t.Errorf("checksum = %d, want %d", got, want)
	}
}

func TestPipelineBottleneckDetected(t *testing.T) {
	const P = 4
	tr := run(t, P, func(c *mpi.Comm) {
		Pipeline(c, PipelineConfig{Blocks: 16, StageCost: 2e-3,
			Inject: InjectSlowRank, SkewFactor: 5})
	})
	rep := analyze(tr)
	r := rep.Get(analyzer.PropLateSender)
	if r == nil || r.Severity < rep.Threshold {
		t.Fatalf("pipeline bottleneck not detected\n%s", rep.Render())
	}
	// The starvation is downstream of the slow stage (rank P/2): the
	// immediate successor must be a prominent waiter.
	succ := trace.Location{Rank: P/2 + 1}
	if r.ByLocation[succ] <= 0 {
		t.Errorf("successor of the slow stage shows no waiting: %v", r.ByLocation)
	}
	// Upstream of the slow stage there is (eager sends) no late-sender
	// waiting beyond pipeline fill: rank 0 never receives at all.
	if w := r.ByLocation[trace.Location{Rank: 0}]; w > 0 {
		t.Errorf("source stage waits on a receive: %v", w)
	}
}

func TestHybridHeatDeterministicAndDetectable(t *testing.T) {
	var clean, skewed float64
	tr1 := run(t, 2, func(c *mpi.Comm) {
		clean = HybridHeat(c, HybridHeatConfig{Rows: 32, Iters: 4, CellCost: 1e-4})
	})
	tr2 := run(t, 2, func(c *mpi.Comm) {
		skewed = HybridHeat(c, HybridHeatConfig{Rows: 32, Iters: 4, CellCost: 1e-4,
			Inject: InjectImbalance})
	})
	if clean != skewed {
		t.Errorf("injection changed numerical result: %v vs %v", clean, skewed)
	}
	repClean := analyze(tr1)
	if w := repClean.Wait(analyzer.PropOMPLoop); w > 0.001 {
		t.Errorf("tuned hybrid shows loop imbalance: %v", w)
	}
	repSkew := analyze(tr2)
	r := repSkew.Get(analyzer.PropOMPLoop)
	if r == nil || r.Severity < repSkew.Threshold {
		t.Fatalf("hybrid loop imbalance not detected\n%s", repSkew.Render())
	}
	if p := r.TopPath(); !contains(p, "hybrid_iteration") {
		t.Errorf("loop imbalance path %q not in hybrid_iteration", p)
	}
}

func TestInjectionStrings(t *testing.T) {
	if InjectNone.String() != "none" || InjectImbalance.String() != "imbalance" ||
		InjectSlowRank.String() != "slow-rank" {
		t.Error("injection strings wrong")
	}
}

func TestJacobi2DChecksumMatchesDecompositions(t *testing.T) {
	// The same 48×48 grid over 1×1, 2×2 and 2×4 process grids must agree.
	run2d := func(procs, px, py int) float64 {
		var sum float64
		run(t, procs, func(c *mpi.Comm) {
			r := Jacobi2D(c, Jacobi2DConfig{Px: px, Py: py, Iters: 6})
			if c.Rank() == 0 {
				sum = r.Checksum
			}
		})
		return sum
	}
	a := run2d(1, 1, 1)
	b := run2d(4, 2, 2)
	c := run2d(8, 2, 4)
	if math.Abs(a-b) > 1e-9 || math.Abs(a-c) > 1e-9 {
		t.Errorf("checksums differ across decompositions: %v %v %v", a, b, c)
	}
}

func TestJacobi2DTunedClean(t *testing.T) {
	tr := run(t, 4, func(c *mpi.Comm) {
		Jacobi2D(c, Jacobi2DConfig{Px: 2, Py: 2, Iters: 8, CellCost: 5e-6})
	})
	rep := analyze(tr)
	if top := rep.Top(); top != nil {
		t.Errorf("tuned 2-D Jacobi flagged: %s (%.2f%%)\n%s",
			top.Property, top.Severity*100, rep.Render())
	}
}

func TestJacobi2DRowImbalanceLocalized(t *testing.T) {
	// Process grid 2×2: ranks 0,1 form grid row 0 (the slow row).
	tr := run(t, 4, func(c *mpi.Comm) {
		Jacobi2D(c, Jacobi2DConfig{Px: 2, Py: 2, Iters: 8, CellCost: 5e-6,
			Inject: InjectImbalance, SkewFactor: 4})
	})
	rep := analyze(tr)
	r := rep.Get(analyzer.PropWaitAtNxN)
	if r == nil || r.Severity < rep.Threshold {
		t.Fatalf("2-D imbalance not detected\n%s", rep.Render())
	}
	// The fast ranks (grid row 1: ranks 2,3) wait at the residual
	// allreduce; the slow ranks (0,1) do not.
	slow := r.ByLocation[trace.Location{Rank: 0}] + r.ByLocation[trace.Location{Rank: 1}]
	fast := r.ByLocation[trace.Location{Rank: 2}] + r.ByLocation[trace.Location{Rank: 3}]
	if fast < 5*slow {
		t.Errorf("waits not localized to the fast row: slow %v fast %v", slow, fast)
	}
	if p := r.TopPath(); !contains(p, "jacobi2d_iteration") {
		t.Errorf("top path %q not in jacobi2d_iteration", p)
	}
}

func TestJacobi2DExcessRanksIdle(t *testing.T) {
	run(t, 5, func(c *mpi.Comm) {
		r := Jacobi2D(c, Jacobi2DConfig{Px: 2, Py: 2, Iters: 2})
		if c.Rank() == 4 && (r.Checksum != 0 || r.Rows != 0) {
			t.Errorf("excess rank computed: %+v", r)
		}
	})
}
