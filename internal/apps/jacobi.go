// Package apps provides realistic mini-applications for the suite's
// scalability/applicability axis (paper Chapter 4): multi-phase parallel
// codes with documented performance behaviour, usable both as "well-tuned
// real programs" (negative tests at application scale) and — with an
// injected pathology — as positive tests whose root cause hides inside a
// real program structure rather than a synthetic kernel.
//
// Each application computes real data (so the validation layer can check
// that instrumentation does not alter results) and charges the executor
// clocks a modeled computation cost proportional to its actual local work
// (so traces have realistic shape in virtual time).
package apps

import (
	"fmt"
	"math"

	"repro/internal/mpi"
)

// Injection selects a seeded pathology in an application run.
type Injection uint8

const (
	// InjectNone runs the tuned application.
	InjectNone Injection = iota
	// InjectImbalance skews the domain decomposition so one rank gets a
	// disproportionate share of the work.
	InjectImbalance
	// InjectSlowRank makes one rank's computation slower (e.g. a slow
	// node), leaving the decomposition balanced.
	InjectSlowRank
)

// String names the injection.
func (in Injection) String() string {
	switch in {
	case InjectNone:
		return "none"
	case InjectImbalance:
		return "imbalance"
	case InjectSlowRank:
		return "slow-rank"
	default:
		return fmt.Sprintf("injection(%d)", uint8(in))
	}
}

// JacobiConfig configures the 2-D Jacobi heat-diffusion solver.
//
// Performance behaviour (documented per the Chapter-4 template): the
// tuned solver is bulk-synchronous — per iteration each rank smooths its
// row block, exchanges one halo row with each neighbour, and joins an
// allreduce for the global residual.  With a balanced decomposition it
// shows no wait states beyond intrinsic communication costs.  Under
// InjectImbalance (or InjectSlowRank) the slower rank delays its halo
// sends and the residual allreduce: a tool must report late_sender at the
// halo exchange and wait_at_nxn at the allreduce, located in the
// "jacobi_iteration" call path.
type JacobiConfig struct {
	// Rows and Cols size the global grid (default 64×32).
	Rows, Cols int
	// Iters is the iteration count (default 10).
	Iters int
	// CellCost is the modeled time to smooth one cell (default 1µs).
	CellCost float64
	// Inject selects a seeded pathology.
	Inject Injection
	// SkewFactor scales the injected slowdown (default 3: the affected
	// rank is 3× slower or 3× bigger).
	SkewFactor float64
}

func (cfg JacobiConfig) withDefaults() JacobiConfig {
	if cfg.Rows <= 0 {
		cfg.Rows = 64
	}
	if cfg.Cols <= 0 {
		cfg.Cols = 32
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 10
	}
	if cfg.CellCost <= 0 {
		cfg.CellCost = 1e-6
	}
	if cfg.SkewFactor <= 0 {
		cfg.SkewFactor = 3
	}
	return cfg
}

// JacobiResult reports the solve outcome.
type JacobiResult struct {
	Residual float64
	Checksum float64
	Rows     int // local rows of this rank
}

// rowPartition returns each rank's row count under the configuration.
func (cfg JacobiConfig) rowPartition(size int) []int {
	rows := make([]int, size)
	base := cfg.Rows / size
	rem := cfg.Rows % size
	for i := range rows {
		rows[i] = base
		if i < rem {
			rows[i]++
		}
	}
	if cfg.Inject == InjectImbalance && size > 1 {
		// Move rows onto rank 0 until it holds SkewFactor times its
		// balanced share (bounded by what the others can give up).
		want := int(float64(base) * cfg.SkewFactor)
		for i := 1; i < size && rows[0] < want; i++ {
			give := rows[i] - 1
			if rows[0]+give > want {
				give = want - rows[0]
			}
			rows[i] -= give
			rows[0] += give
		}
	}
	return rows
}

// Jacobi runs the solver on communicator c and returns this rank's result.
// Every rank must call it with the same configuration.
func Jacobi(c *mpi.Comm, cfg JacobiConfig) JacobiResult {
	cfg = cfg.withDefaults()
	c.Begin("jacobi")
	defer c.End()

	size, rank := c.Size(), c.Rank()
	rows := cfg.rowPartition(size)
	myRows := rows[rank]
	firstRow := 0
	for i := 0; i < rank; i++ {
		firstRow += rows[i]
	}

	// Local grid with two halo rows.
	cur := make([][]float64, myRows+2)
	next := make([][]float64, myRows+2)
	for i := range cur {
		cur[i] = make([]float64, cfg.Cols)
		next[i] = make([]float64, cfg.Cols)
	}
	// Boundary condition: hot left edge, deterministic interior seed.
	for i := 1; i <= myRows; i++ {
		g := firstRow + i - 1
		for j := 0; j < cfg.Cols; j++ {
			cur[i][j] = math.Sin(float64(g*31+j)) * 0.01
		}
		cur[i][0] = 1.0
	}

	up, down := rank-1, rank+1
	halo := mpi.AllocBuf(mpi.TypeDouble, cfg.Cols)
	haloIn := mpi.AllocBuf(mpi.TypeDouble, cfg.Cols)
	resS := mpi.AllocBuf(mpi.TypeDouble, 1)
	resR := mpi.AllocBuf(mpi.TypeDouble, 1)

	cellCost := cfg.CellCost
	if cfg.Inject == InjectSlowRank && rank == 0 {
		cellCost *= cfg.SkewFactor
	}

	var residual float64
	for it := 0; it < cfg.Iters; it++ {
		c.Begin("jacobi_iteration")

		// Halo exchange: send top row up / bottom row down.
		c.Begin("halo_exchange")
		if up >= 0 {
			copyRow(halo, cur[1])
			c.Sendrecv(halo, up, 10, haloIn, up, 11)
			copyRowBack(cur[0], haloIn)
		}
		if down < size {
			copyRow(halo, cur[myRows])
			c.Sendrecv(halo, down, 11, haloIn, down, 10)
			copyRowBack(cur[myRows+1], haloIn)
		}
		c.End()

		// Smooth, accumulating the local residual, and charge the
		// modeled computation time.
		local := 0.0
		for i := 1; i <= myRows; i++ {
			for j := 1; j < cfg.Cols-1; j++ {
				v := 0.25 * (cur[i-1][j] + cur[i+1][j] + cur[i][j-1] + cur[i][j+1])
				next[i][j] = v
				d := v - cur[i][j]
				local += d * d
			}
			next[i][0], next[i][cfg.Cols-1] = cur[i][0], cur[i][cfg.Cols-1]
		}
		c.Work(float64(myRows*cfg.Cols) * cellCost)
		cur, next = next, cur

		// Global residual.
		resS.SetFloat64(0, local)
		c.Allreduce(resS, resR, mpi.OpSum)
		residual = math.Sqrt(resR.Float64(0))
		c.End()
	}

	var sum float64
	for i := 1; i <= myRows; i++ {
		for j := 0; j < cfg.Cols; j++ {
			sum += cur[i][j]
		}
	}
	// Global checksum so every rank returns identical verifiable state.
	resS.SetFloat64(0, sum)
	c.Allreduce(resS, resR, mpi.OpSum)
	return JacobiResult{Residual: residual, Checksum: resR.Float64(0), Rows: myRows}
}

func copyRow(dst *mpi.Buf, row []float64) {
	for j, v := range row {
		dst.SetFloat64(j, v)
	}
}

func copyRowBack(row []float64, src *mpi.Buf) {
	for j := range row {
		row[j] = src.Float64(j)
	}
}
