package apps

import (
	"repro/internal/mpi"
	"repro/internal/omp"
)

// PipelineConfig configures the stage-pipeline application.
//
// Performance behaviour: the ranks form a software pipeline; block b
// passes through stages 0..P-1 in order.  With equal stage costs the
// pipeline streams cleanly after its fill phase.  Under InjectSlowRank the
// middle stage becomes the bottleneck: downstream stages starve in
// MPI_Recv (late_sender located under "pipeline_stage"), which is the
// classic bottleneck signature a tool must localize to the slow stage's
// successor links.
type PipelineConfig struct {
	// Blocks is the number of data blocks pushed through (default 16).
	Blocks int
	// StageCost is the per-block per-stage work (default 2ms).
	StageCost float64
	// Inject selects a seeded pathology.
	Inject Injection
	// SkewFactor scales the slow stage (default 4).
	SkewFactor float64
}

func (cfg PipelineConfig) withDefaults() PipelineConfig {
	if cfg.Blocks <= 0 {
		cfg.Blocks = 16
	}
	if cfg.StageCost <= 0 {
		cfg.StageCost = 2e-3
	}
	if cfg.SkewFactor <= 0 {
		cfg.SkewFactor = 4
	}
	return cfg
}

// PipelineResult reports the pipeline outcome.
type PipelineResult struct {
	// Checksum is the last rank's accumulated output (0 elsewhere),
	// broadcast to all ranks for verification.
	Checksum int64
	// Processed counts blocks handled by this rank.
	Processed int
}

// Pipeline runs the stage pipeline on communicator c.
func Pipeline(c *mpi.Comm, cfg PipelineConfig) PipelineResult {
	cfg = cfg.withDefaults()
	c.Begin("pipeline")
	defer c.End()

	rank, size := c.Rank(), c.Size()
	cost := cfg.StageCost
	if cfg.Inject == InjectSlowRank && rank == size/2 {
		cost *= cfg.SkewFactor
	}

	buf := mpi.AllocBuf(mpi.TypeInt, 1)
	res := PipelineResult{}
	var acc int64
	for b := 0; b < cfg.Blocks; b++ {
		c.Begin("pipeline_stage")
		var v int64
		if rank == 0 {
			v = int64(b)
		} else {
			c.Recv(buf, rank-1, 30)
			v = buf.Int64(0)
		}
		c.Work(cost)
		v = v*3 + 1 // verifiable transformation per stage
		res.Processed++
		if rank < size-1 {
			buf.SetInt64(0, v)
			c.Send(buf, rank+1, 30)
		} else {
			acc += v
		}
		c.End()
	}
	// Broadcast the sink's checksum.
	out := mpi.AllocBuf(mpi.TypeInt, 1)
	if rank == size-1 {
		out.SetInt64(0, acc)
	}
	c.Bcast(out, size-1)
	res.Checksum = out.Int64(0)
	return res
}

// PipelineExpectedChecksum computes the reference checksum for a pipeline
// of `stages` stages and `blocks` blocks.
func PipelineExpectedChecksum(stages, blocks int) int64 {
	var total int64
	for b := 0; b < blocks; b++ {
		v := int64(b)
		for s := 0; s < stages; s++ {
			v = v*3 + 1
		}
		total += v
	}
	return total
}

// HybridHeatConfig configures the hybrid MPI+OpenMP variant of the Jacobi
// solver: each rank smooths its block with an OpenMP worksharing loop.
//
// Performance behaviour: tuned, it analyzes clean at both levels.  Under
// InjectImbalance the OpenMP loop of every rank is fed a skewed static
// schedule, so imbalance_in_omp_loop appears inside each rank while the
// MPI level stays balanced — the hybrid separation-of-levels scenario of
// paper §3.3.
type HybridHeatConfig struct {
	// Rows, Cols, Iters, CellCost as in JacobiConfig.
	Rows, Cols int
	Iters      int
	CellCost   float64
	// Threads is the per-rank team size (default 4).
	Threads int
	// Inject selects a seeded pathology.
	Inject Injection
}

func (cfg HybridHeatConfig) withDefaults() HybridHeatConfig {
	if cfg.Rows <= 0 {
		cfg.Rows = 32
	}
	if cfg.Cols <= 0 {
		cfg.Cols = 16
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 5
	}
	if cfg.CellCost <= 0 {
		cfg.CellCost = 1e-6
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 4
	}
	return cfg
}

// HybridHeat runs the hybrid solver and returns a per-rank checksum
// (identical on all ranks).
func HybridHeat(c *mpi.Comm, cfg HybridHeatConfig) float64 {
	cfg = cfg.withDefaults()
	c.Begin("hybrid_heat")
	defer c.End()

	local := cfg.Rows / c.Size()
	if local < 1 {
		local = 1
	}
	team := omp.Options{Threads: cfg.Threads}
	resS := mpi.AllocBuf(mpi.TypeDouble, 1)
	resR := mpi.AllocBuf(mpi.TypeDouble, 1)
	state := float64(c.Rank() + 1)

	for it := 0; it < cfg.Iters; it++ {
		c.Begin("hybrid_iteration")
		omp.Parallel(c.Ctx(), team, func(tc *omp.TC) {
			T := tc.NumThreads()
			tc.For(local, omp.ForOpt{Sched: omp.Static}, func(row int) {
				cost := cfg.CellCost * float64(cfg.Cols)
				if cfg.Inject == InjectImbalance {
					// Rows owned by thread 0's block are 4× heavier.
					if row < local/T {
						cost *= 4
					}
				}
				tc.Work(cost)
			})
		})
		state = state*0.5 + 1
		resS.SetFloat64(0, state)
		c.Allreduce(resS, resR, mpi.OpSum)
		c.End()
	}
	return resR.Float64(0)
}
