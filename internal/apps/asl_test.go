package apps

import (
	"math"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/asl"
	"repro/internal/conformance"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/perturb"
)

// appScenarios pairs each application with its ASL restatement: the
// pathology the app seeds structurally, reduced to primitives with a
// closed-form severity.  The tests below keep app and restatement in
// agreement — detection, localization, and magnitude.
var appScenarios = []struct {
	app      string
	src      string
	scenario string
	detects  string
}{
	{"halo", HaloScenarioASL, "halo_slow_neighbor", analyzer.PropLateSender},
	{"workstealing", WorkStealScenarioASL, "stealing_disabled", analyzer.PropWaitAtBarrier},
	{"amr", AMRScenarioASL, "amr_unbalanced_refinement", analyzer.PropWaitAtNxN},
}

// TestAppScenarioRestatements registers each app's ASL restatement, runs
// it as a property function, and checks that the analyzer's verdict
// matches the scenario's own claims: the declared detection fires, it is
// localized under the scenario region, and the measured wait matches
// the ASL closed form.
func TestAppScenarioRestatements(t *testing.T) {
	const procs = 4
	for _, tc := range appScenarios {
		t.Run(tc.scenario, func(t *testing.T) {
			names, err := asl.RegisterSource(tc.src)
			if err != nil {
				t.Fatalf("RegisterSource: %v", err)
			}
			t.Cleanup(func() { asl.Unregister(names...) })
			spec, ok := core.Get(tc.scenario)
			if !ok {
				t.Fatalf("scenario %s not registered (got %v)", tc.scenario, names)
			}
			args := spec.Defaults()
			tr, err := mpi.Run(mpi.Options{Procs: procs}, func(c *mpi.Comm) {
				spec.Run(core.Env{Comm: c, Ctx: c.Ctx()}, args)
			})
			if err != nil {
				t.Fatal(err)
			}
			rep := analyze(tr)
			r := rep.Get(tc.detects)
			if r == nil || r.Severity < rep.Threshold {
				t.Fatalf("%s not detected\n%s", tc.detects, rep.Render())
			}
			if p := r.TopPath(); !contains(p, tc.scenario) {
				t.Errorf("wait path %q not under %s", p, tc.scenario)
			}
			want := spec.ExpectedWait(procs, 1, args)
			if want <= 0 {
				t.Fatalf("scenario has no closed form: %v", want)
			}
			got := rep.Wait(tc.detects)
			if rel := math.Abs(got-want) / want; rel > 0.25 {
				t.Errorf("measured wait %v vs ASL closed form %v (%.0f%% off)",
					got, want, rel*100)
			}
		})
	}
}

// TestAppScenariosPassConformance runs each restatement through the full
// oracle — positive, negative and determinism axes — with its default
// arguments, making the three scenarios bona fide fuzz targets.
func TestAppScenariosPassConformance(t *testing.T) {
	for _, tc := range appScenarios {
		t.Run(tc.scenario, func(t *testing.T) {
			names, err := asl.RegisterSource(tc.src)
			if err != nil {
				t.Fatalf("RegisterSource: %v", err)
			}
			t.Cleanup(func() { asl.Unregister(names...) })
			spec, _ := core.Get(tc.scenario)
			args := spec.Defaults()
			cs := conformance.Case{
				Schema: conformance.CaseSchema, Procs: 4, Threads: 1, Threshold: 0.005,
				Props: []conformance.CaseProp{{
					Name: tc.scenario, Float: args.Float, Int: args.Int, Distr: args.Distr,
				}},
			}
			out, err := conformance.Check(cs, conformance.CheckOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !out.OK() {
				t.Errorf("restatement fails the oracle: %v", out.Violations)
			}
		})
	}
}

// TestNewAppsEngineDiff: the three applications produce byte-identical
// traces on the event-driven and goroutine engines, tuned and injected.
func TestNewAppsEngineDiff(t *testing.T) {
	bodies := map[string]func(c *mpi.Comm){
		"halo":              func(c *mpi.Comm) { Halo(c, HaloConfig{Steps: 6, Ghost: 2}) },
		"halo-slow":         func(c *mpi.Comm) { Halo(c, HaloConfig{Steps: 6, Ghost: 2, Inject: InjectSlowRank}) },
		"worksteal":         func(c *mpi.Comm) { WorkSteal(c, WorkStealConfig{Tasks: 12, TaskCost: 1e-3}) },
		"worksteal-nosteal": func(c *mpi.Comm) { WorkSteal(c, WorkStealConfig{Tasks: 12, TaskCost: 1e-3, Inject: InjectImbalance}) },
		"amr":               func(c *mpi.Comm) { AMR(c, AMRConfig{Cells: 64, Phases: 4}) },
		"amr-static":        func(c *mpi.Comm) { AMR(c, AMRConfig{Cells: 64, Phases: 4, Inject: InjectImbalance}) },
	}
	for name, body := range bodies {
		name, body := name, body
		t.Run(name, func(t *testing.T) {
			if _, err := conformance.DiffEngineBodies(4, body); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestNewAppsPerturbedDeterministic: under a seeded perturbation profile
// each app is still a pure function of its inputs — same profile, same
// report; and the numerical results are unchanged by the perturbation.
func TestNewAppsPerturbedDeterministic(t *testing.T) {
	model := perturb.NewModel(perturb.Level(11, 3))
	runOnce := func() (string, float64) {
		var sum float64
		tr, err := mpi.Run(mpi.Options{Procs: 4, Perturb: model}, func(c *mpi.Comm) {
			h := Halo(c, HaloConfig{Steps: 6, Ghost: 2})
			a := AMR(c, AMRConfig{Cells: 64, Phases: 4})
			if c.Rank() == 0 {
				sum = h.Checksum + a.Checksum
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return analyze(tr).Render(), sum
	}
	rep1, sum1 := runOnce()
	rep2, sum2 := runOnce()
	if rep1 != rep2 {
		t.Error("perturbed app run is not deterministic")
	}
	if sum1 != sum2 {
		t.Errorf("perturbed checksums differ: %v vs %v", sum1, sum2)
	}
	want := AMRExpectedChecksum(64, 4)
	clean := haloChecksum(t, 4, HaloConfig{Steps: 6, Ghost: 2})
	if math.Abs(sum1-(clean+want)) > 1e-9 {
		t.Errorf("perturbation altered numerical results: %v vs %v", sum1, clean+want)
	}
}

// FuzzHaloDecomposition: for any small shape, the deep-halo solver must
// match the single-process checksum and never panic — the ghost-width
// machinery is exactly equivalent to plain iteration.
func FuzzHaloDecomposition(f *testing.F) {
	f.Add(uint8(4), uint8(2), uint8(12), false)
	f.Add(uint8(2), uint8(3), uint8(6), true)
	f.Fuzz(func(t *testing.T, procs, ghost, steps uint8, slow bool) {
		p := 1 + int(procs)%6
		g := 1 + int(ghost)%4
		// Steps divisible by g so every ghost width runs the same
		// global iteration count as the reference.
		s := g * (1 + int(steps)%4)
		cfg := HaloConfig{Cells: 64, Steps: s, Ghost: g}
		if slow {
			cfg.Inject = InjectSlowRank
		}
		ref := HaloConfig{Cells: 64, Steps: s, Ghost: 1}
		var got, want float64
		tr, err := mpi.Run(mpi.Options{Procs: p}, func(c *mpi.Comm) {
			got = Halo(c, cfg).Checksum
		})
		if err != nil || tr == nil {
			t.Fatalf("run failed: %v", err)
		}
		if _, err := mpi.Run(mpi.Options{Procs: 1}, func(c *mpi.Comm) {
			want = Halo(c, ref).Checksum
		}); err != nil {
			t.Fatalf("reference run failed: %v", err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("procs=%d ghost=%d steps=%d: checksum %v, want %v", p, g, s, got, want)
		}
	})
}

// FuzzWorkStealTotal: for any task count, cost skew, and steal setting,
// the farm must process every task exactly once and produce the
// verified total on all ranks.
func FuzzWorkStealTotal(f *testing.F) {
	f.Add(uint8(18), uint8(8), true)
	f.Add(uint8(9), uint8(2), false)
	f.Fuzz(func(t *testing.T, tasks, heavy uint8, noSteal bool) {
		n := 4 + int(tasks)%28
		cfg := WorkStealConfig{Tasks: n, TaskCost: 5e-4,
			HeavyFactor: float64(1 + heavy%12)}
		if noSteal {
			cfg.Inject = InjectImbalance
		}
		want := MasterWorkerExpectedTotal(n)
		done := make([]int, 4)
		if _, err := mpi.Run(mpi.Options{Procs: 4}, func(c *mpi.Comm) {
			r := WorkSteal(c, cfg)
			if r.Total != want {
				t.Errorf("rank %d: total %d, want %d", c.Rank(), r.Total, want)
			}
			done[c.WorldRank()] = r.TasksDone
		}); err != nil {
			t.Fatalf("run failed: %v", err)
		}
		sum := 0
		for _, d := range done {
			sum += d
		}
		if sum != n {
			t.Fatalf("processed %d of %d tasks", sum, n)
		}
	})
}
