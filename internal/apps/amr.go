package apps

import (
	"math"

	"repro/internal/mpi"
)

// AMRConfig configures the adaptive-mesh-refinement-like phase solver.
//
// Performance behaviour: a feature (steep front) moves across a 1-D
// coarse grid; cells near it are refined, and a refined cell costs 4×
// per level.  The tuned solver repartitions the grid by cost before
// every phase (greedy contiguous rebalance), so each phase computes
// balanced and the per-phase allreduce shows no wait.  InjectImbalance
// disables rebalancing: the equal-cell static partition leaves the
// refined region concentrated on whichever rank the feature is
// crossing, so that rank arrives last at every allreduce —
// wait_at_nxn, growing with refinement depth, located in the
// "amr_phase" call path.
type AMRConfig struct {
	// Cells sizes the coarse grid (default 128).
	Cells int
	// Phases is the phase count; the feature crosses the whole grid
	// (default 8).
	Phases int
	// CellCost is the modeled cost of one coarse-level cell update
	// (default 2µs); a cell refined to level l costs 4^l times that.
	CellCost float64
	// Inject selects a seeded pathology; InjectImbalance disables the
	// per-phase rebalance.
	Inject Injection
}

func (cfg AMRConfig) withDefaults() AMRConfig {
	if cfg.Cells <= 0 {
		cfg.Cells = 128
	}
	if cfg.Phases <= 0 {
		cfg.Phases = 8
	}
	if cfg.CellCost <= 0 {
		cfg.CellCost = 2e-6
	}
	return cfg
}

// AMRResult reports the solve outcome.
type AMRResult struct {
	// Checksum is the global sum of all cell values after the last
	// phase (identical on all ranks and for any decomposition).
	Checksum float64
	// MaxLevel is the deepest refinement level encountered.
	MaxLevel int
	// Rebalances counts executed repartitions.
	Rebalances int
}

// amrLevel returns the refinement level of cell i at phase p: level 2
// within Cells/16 of the moving feature, level 1 within Cells/8.
func amrLevel(cells, phases, i, p int) int {
	center := (p*cells + cells/2) / phases
	d := i - center
	if d < 0 {
		d = -d
	}
	switch {
	case d <= cells/16:
		return 2
	case d <= cells/8:
		return 1
	default:
		return 0
	}
}

// amrCost returns the cost units of cell i at phase p (4^level).
func amrCost(cells, phases, i, p int) int {
	return 1 << (2 * amrLevel(cells, phases, i, p))
}

// amrUpdate is the per-phase contribution of cell i: a pure function of
// the global cell id, the phase, and the refinement level, so the sum
// is independent of who owns the cell.
func amrUpdate(cells, phases, i, p int) float64 {
	return math.Sin(float64(i*7+p*13)) * float64(1+amrLevel(cells, phases, i, p))
}

// amrPartition returns the first owned cell per rank (plus the end
// sentinel) for phase p: equal cell counts when static, greedy
// cost-balanced cuts when rebalancing.  Deterministic and
// communication-free — every rank computes the same partition.
func amrPartition(cfg AMRConfig, size, p int, rebalance bool) []int {
	cuts := make([]int, size+1)
	cuts[size] = cfg.Cells
	if !rebalance {
		for r := 1; r < size; r++ {
			cuts[r] = r * cfg.Cells / size
		}
		return cuts
	}
	total := 0
	for i := 0; i < cfg.Cells; i++ {
		total += amrCost(cfg.Cells, cfg.Phases, i, p)
	}
	acc, r := 0, 1
	for i := 0; i < cfg.Cells && r < size; i++ {
		acc += amrCost(cfg.Cells, cfg.Phases, i, p)
		if acc*size >= total*r {
			cuts[r] = i + 1
			r++
		}
	}
	for ; r < size; r++ {
		cuts[r] = cfg.Cells
	}
	return cuts
}

// AMR runs the phased adaptive solver on communicator c and returns
// this rank's result.  Every rank must call it with the same
// configuration.
func AMR(c *mpi.Comm, cfg AMRConfig) AMRResult {
	cfg = cfg.withDefaults()
	c.Begin("amr")
	defer c.End()

	size, rank := c.Size(), c.Rank()
	rebalance := cfg.Inject != InjectImbalance

	values := make([]float64, cfg.Cells)
	resS := mpi.AllocBuf(mpi.TypeDouble, 1)
	resR := mpi.AllocBuf(mpi.TypeDouble, 1)

	res := AMRResult{}
	for p := 0; p < cfg.Phases; p++ {
		cuts := amrPartition(cfg, size, p, rebalance)
		if rebalance && p > 0 {
			res.Rebalances++
		}
		lo, hi := cuts[rank], cuts[rank+1]

		c.Begin("amr_phase")
		cost := 0
		local := 0.0
		for i := lo; i < hi; i++ {
			if l := amrLevel(cfg.Cells, cfg.Phases, i, p); l > res.MaxLevel {
				res.MaxLevel = l
			}
			u := amrUpdate(cfg.Cells, cfg.Phases, i, p)
			values[i] += u
			local += u * u
			cost += amrCost(cfg.Cells, cfg.Phases, i, p)
		}
		c.Work(float64(cost) * cfg.CellCost)

		// Phase residual: the synchronization the laggard delays.
		resS.SetFloat64(0, local)
		c.Allreduce(resS, resR, mpi.OpSum)
		c.End()
	}

	// Each (cell, phase) contribution was added by exactly one rank, so
	// the global checksum is the allreduce of every rank's whole local
	// accumulation — ownership migration included.
	var sum float64
	for i := 0; i < cfg.Cells; i++ {
		sum += values[i]
	}
	resS.SetFloat64(0, sum)
	c.Allreduce(resS, resR, mpi.OpSum)
	res.Checksum = resR.Float64(0)
	return res
}

// AMRExpectedChecksum returns the checksum the solver must produce: the
// serial sum of every cell's per-phase contributions.
func AMRExpectedChecksum(cells, phases int) float64 {
	var sum float64
	for i := 0; i < cells; i++ {
		for p := 0; p < phases; p++ {
			sum += amrUpdate(cells, phases, i, p)
		}
	}
	return sum
}

// AMRScenarioASL restates the rebalance-off pathology as an ASL
// scenario: per-rank work follows a single-peak distribution (the rank
// under the feature) into an all-to-all reduction, so the distribution
// imbalance is exactly the collective wait (see doc/ASL.md).
const AMRScenarioASL = `
scenario amr_unbalanced_refinement {
    help "adaptive refinement concentrated on one rank, rebalance off";
    param load distr = peak(0.002, 0.016, 0.002, 0);
    param r    int   = 4 in [1, 8];
    inject imbalanced_work(load, r);
    detects "wait_at_nxn";
    severity r * imbalance(load);
}
`
