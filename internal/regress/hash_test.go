package regress

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestValidHash(t *testing.T) {
	good := strings.Repeat("0123456789abcdef", 4)
	tests := []struct {
		hash string
		want bool
	}{
		{good, true},
		{"", false},
		{good[:63], false},
		{good + "0", false},
		{strings.ToUpper(good), false},                  // hashes are lowercase hex
		{strings.Repeat("g", 64), false},                // non-hex
		{"../../secret" + strings.Repeat("0", 52), false}, // traversal, right length
		{"../../secret", false},
	}
	for _, tc := range tests {
		if got := ValidHash(tc.hash); got != tc.want {
			t.Errorf("ValidHash(%q) = %v, want %v", tc.hash, got, tc.want)
		}
	}
}

// TestLookupRejectsNonHashNames plants a decoy file exactly where a
// traversal "hash" would land and checks Get/ObjectReader/SetBaseline
// refuse to touch it: only the 64-hex content-hash form may name an
// object.
func TestLookupRejectsNonHashNames(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	// ../../secret resolves (via the legacy flat layout) to dir/secret.json.
	secret := filepath.Join(dir, "secret.json")
	if err := os.WriteFile(secret, []byte(`{"planted": true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, h := range []string{"../../secret", "..", "", strings.Repeat("A", 64), "no-such-object"} {
		if _, err := store.Get(h); !errors.Is(err, fs.ErrNotExist) {
			t.Errorf("Get(%q) = %v, want fs.ErrNotExist", h, err)
		}
		if f, err := store.ObjectReader(h); !errors.Is(err, fs.ErrNotExist) {
			if f != nil {
				f.Close()
			}
			t.Errorf("ObjectReader(%q) = %v, want fs.ErrNotExist", h, err)
		}
		if err := store.SetBaseline("exp", h); !errors.Is(err, fs.ErrNotExist) {
			t.Errorf("SetBaseline(%q) = %v, want fs.ErrNotExist", h, err)
		}
	}
}

// TestBaselineErrNoBaseline checks the sentinel a caller uses to tell
// "no baseline yet" apart from store I/O faults.
func TestBaselineErrNoBaseline(t *testing.T) {
	store, err := Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Baseline("never-saved"); !errors.Is(err, ErrNoBaseline) {
		t.Errorf("Baseline on empty store = %v, want ErrNoBaseline", err)
	}
}
