// Package regress implements performance-regression tracking over the
// canonical profiles of package profile: an on-disk content-addressed
// store with a ref index (experiment name → baseline profile), and a
// comparison engine that diffs two profiles for severity drift,
// detection-set changes, and per-location outliers.
//
// The shape follows Perun's version-indexed performance profiles: blobs
// are immutable and named by content hash under objects/, while refs.json
// carries the mutable experiment → baseline mapping plus per-experiment
// history (newest first).
package regress

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/profile"
)

// DefaultStoreDir is the conventional store location inside a repository.
const DefaultStoreDir = ".ats/profiles"

// refsVersion identifies the refs.json format.
const refsVersion = 1

// refsFile is the mutable index of a store.
type refsFile struct {
	Version int `json:"version"`
	// Baselines maps experiment name → content hash of its baseline.
	Baselines map[string]string `json:"baselines"`
	// History maps experiment name → hashes ever saved, newest first.
	History map[string][]string `json:"history"`
}

// Store is an on-disk profile store.
type Store struct {
	dir string
}

// Open opens (creating if necessary) the store rooted at dir.  An empty
// dir selects DefaultStoreDir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		dir = DefaultStoreDir
	}
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("regress: open store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store root.
func (s *Store) Dir() string { return s.dir }

func (s *Store) objectPath(hash string) string {
	return filepath.Join(s.dir, "objects", hash+".json")
}

func (s *Store) refsPath() string { return filepath.Join(s.dir, "refs.json") }

// loadRefs reads the index; a missing file yields an empty index.
func (s *Store) loadRefs() (*refsFile, error) {
	refs := &refsFile{
		Version:   refsVersion,
		Baselines: make(map[string]string),
		History:   make(map[string][]string),
	}
	blob, err := os.ReadFile(s.refsPath())
	if os.IsNotExist(err) {
		return refs, nil
	}
	if err != nil {
		return nil, fmt.Errorf("regress: read refs: %w", err)
	}
	if err := json.Unmarshal(blob, refs); err != nil {
		return nil, fmt.Errorf("regress: parse refs: %w", err)
	}
	if refs.Version != refsVersion {
		return nil, fmt.Errorf("regress: refs version %d (want %d)", refs.Version, refsVersion)
	}
	if refs.Baselines == nil {
		refs.Baselines = make(map[string]string)
	}
	if refs.History == nil {
		refs.History = make(map[string][]string)
	}
	return refs, nil
}

// saveRefs writes the index atomically (temp file + rename).
func (s *Store) saveRefs(refs *refsFile) error {
	blob, err := json.MarshalIndent(refs, "", "  ")
	if err != nil {
		return fmt.Errorf("regress: marshal refs: %w", err)
	}
	blob = append(blob, '\n')
	tmp := s.refsPath() + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return fmt.Errorf("regress: write refs: %w", err)
	}
	return os.Rename(tmp, s.refsPath())
}

// Put stores p as an immutable object and returns its content hash.  An
// object that already exists is left untouched (content addressing makes
// the write idempotent).  Put does not move any baseline ref.
func (s *Store) Put(p *profile.Profile) (string, error) {
	hash, err := p.Hash()
	if err != nil {
		return "", err
	}
	path := s.objectPath(hash)
	if _, err := os.Stat(path); err == nil {
		return hash, nil
	}
	// WriteFile is atomic (temp + rename), which the existence fast-path
	// above depends on: an interrupted Put must never leave a truncated
	// object that later calls would treat as already stored.
	if err := p.WriteFile(path); err != nil {
		return "", fmt.Errorf("regress: store object: %w", err)
	}
	return hash, nil
}

// Get loads the object with the given content hash.
func (s *Store) Get(hash string) (*profile.Profile, error) {
	p, err := profile.ReadFile(s.objectPath(hash))
	if err != nil {
		return nil, fmt.Errorf("regress: object %s: %w", shortHash(hash), err)
	}
	return p, nil
}

// SaveBaseline stores p and makes it the baseline for its experiment,
// pushing the previous baseline (if any) into the history.
func (s *Store) SaveBaseline(p *profile.Profile) (string, error) {
	hash, err := s.Put(p)
	if err != nil {
		return "", err
	}
	refs, err := s.loadRefs()
	if err != nil {
		return "", err
	}
	name := p.Experiment
	if refs.Baselines[name] != hash {
		refs.Baselines[name] = hash
		refs.History[name] = append([]string{hash}, refs.History[name]...)
	}
	return hash, s.saveRefs(refs)
}

// Baseline returns the baseline profile and hash for an experiment.
func (s *Store) Baseline(name string) (*profile.Profile, string, error) {
	refs, err := s.loadRefs()
	if err != nil {
		return nil, "", err
	}
	hash, ok := refs.Baselines[name]
	if !ok {
		return nil, "", fmt.Errorf("regress: no baseline for experiment %q", name)
	}
	p, err := s.Get(hash)
	if err != nil {
		return nil, "", err
	}
	return p, hash, nil
}

// History returns the hashes ever saved as baseline for an experiment,
// newest first.
func (s *Store) History(name string) ([]string, error) {
	refs, err := s.loadRefs()
	if err != nil {
		return nil, err
	}
	return refs.History[name], nil
}

// Entry summarizes one baseline for listings.
type Entry struct {
	Experiment string
	Hash       string
	// Versions is the history depth of the experiment.
	Versions int
	// Significant is the number of significant properties recorded.
	Significant int
	// TopProperty and TopSeverity identify the worst recorded finding.
	TopProperty string
	TopSeverity float64
	// Ranks and Threads echo the run shape.
	Ranks, Threads int
}

// List returns one entry per baseline, sorted by experiment name.
func (s *Store) List() ([]Entry, error) {
	refs, err := s.loadRefs()
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(refs.Baselines))
	for name := range refs.Baselines {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []Entry
	for _, name := range names {
		hash := refs.Baselines[name]
		e := Entry{Experiment: name, Hash: hash, Versions: len(refs.History[name])}
		p, err := s.Get(hash)
		if err != nil {
			return nil, err
		}
		e.Ranks, e.Threads = p.Run.Procs, p.Run.Threads
		for _, prop := range p.Significant() {
			e.Significant++
			if prop.Severity > e.TopSeverity {
				e.TopProperty, e.TopSeverity = prop.Name, prop.Severity
			}
		}
		out = append(out, e)
	}
	return out, nil
}

// shortHash abbreviates a content hash for display.
func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}
