// Package regress implements performance-regression tracking over the
// canonical profiles of package profile: an on-disk content-addressed
// store with a ref index (experiment name → baseline profile), and a
// comparison engine that diffs two profiles for severity drift,
// detection-set changes, and per-location outliers.
//
// The shape follows Perun's version-indexed performance profiles: blobs
// are immutable and named by content hash under objects/, while refs.json
// carries the mutable experiment → baseline mapping plus per-experiment
// history (newest first).
//
// The object layout is sharded git-style — objects/<first-two-hex>/<hash>.json
// — so a store holding millions of profiles never concentrates them in one
// directory.  Stores written by earlier versions used a flat
// objects/<hash>.json layout; reads fall back to it transparently, and Put
// migrates a flat object into its shard when it touches one.
//
// A Store is safe for concurrent use by multiple goroutines (the analysis
// server runs many analyses against one store): objects are immutable and
// written atomically, and the refs.json read-modify-write cycle is
// serialized by an internal mutex.
package regress

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/profile"
	"repro/internal/similarity"
)

// DefaultStoreDir is the conventional store location inside a repository.
const DefaultStoreDir = ".ats/profiles"

// refsVersion identifies the refs.json format.
const refsVersion = 1

// refsFile is the mutable index of a store.
type refsFile struct {
	Version int `json:"version"`
	// Baselines maps experiment name → content hash of its baseline.
	Baselines map[string]string `json:"baselines"`
	// History maps experiment name → hashes ever saved, newest first.
	History map[string][]string `json:"history"`
}

// ErrNoBaseline is wrapped by Baseline when an experiment has no
// baseline ref; callers distinguish it from store I/O failures with
// errors.Is.
var ErrNoBaseline = errors.New("no baseline for experiment")

// ValidHash reports whether hash has the only form the store ever
// assigns: the 64 lowercase hex characters of profile.Hash.  Lookups
// reject anything else before building a path, so an attacker-supplied
// "hash" (../../secret, an absolute path, a %2F-smuggled slash) can
// never name a file outside objects/.
func ValidHash(hash string) bool {
	if len(hash) != 64 {
		return false
	}
	for i := 0; i < len(hash); i++ {
		if c := hash[i]; (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Store is an on-disk profile store.
type Store struct {
	dir string
	// mu serializes the refs.json read-modify-write cycle.  Object writes
	// need no lock: they are content-addressed, atomic, and idempotent.
	mu sync.Mutex
	// simMu guards the lazily opened similarity-index handle (similar.go).
	simMu sync.Mutex
	sim   *similarity.PersistentIndex
}

// Open opens (creating if necessary) the store rooted at dir.  An empty
// dir selects DefaultStoreDir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		dir = DefaultStoreDir
	}
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("regress: open store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store root.
func (s *Store) Dir() string { return s.dir }

// objectPath is the sharded location of an object: two hex characters of
// fan-out keep directory sizes manageable at million-profile scale.
// Hashes too short to shard (never produced by profile.Hash) stay flat.
func (s *Store) objectPath(hash string) string {
	if len(hash) < 2 {
		return s.legacyObjectPath(hash)
	}
	return filepath.Join(s.dir, "objects", hash[:2], hash+".json")
}

// legacyObjectPath is the flat pre-sharding location, still readable (and
// migrated by Put) for stores written by earlier versions.
func (s *Store) legacyObjectPath(hash string) string {
	return filepath.Join(s.dir, "objects", hash+".json")
}

func (s *Store) refsPath() string { return filepath.Join(s.dir, "refs.json") }

// loadRefs reads the index; a missing file yields an empty index.
func (s *Store) loadRefs() (*refsFile, error) {
	refs := &refsFile{
		Version:   refsVersion,
		Baselines: make(map[string]string),
		History:   make(map[string][]string),
	}
	blob, err := os.ReadFile(s.refsPath())
	if os.IsNotExist(err) {
		return refs, nil
	}
	if err != nil {
		return nil, fmt.Errorf("regress: read refs: %w", err)
	}
	if err := json.Unmarshal(blob, refs); err != nil {
		return nil, fmt.Errorf("regress: parse refs: %w", err)
	}
	if refs.Version != refsVersion {
		return nil, fmt.Errorf("regress: refs version %d (want %d)", refs.Version, refsVersion)
	}
	if refs.Baselines == nil {
		refs.Baselines = make(map[string]string)
	}
	if refs.History == nil {
		refs.History = make(map[string][]string)
	}
	return refs, nil
}

// saveRefs writes the index atomically (temp file + rename).
func (s *Store) saveRefs(refs *refsFile) error {
	blob, err := json.MarshalIndent(refs, "", "  ")
	if err != nil {
		return fmt.Errorf("regress: marshal refs: %w", err)
	}
	blob = append(blob, '\n')
	tmp := s.refsPath() + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return fmt.Errorf("regress: write refs: %w", err)
	}
	return os.Rename(tmp, s.refsPath())
}

// Put stores p as an immutable object and returns its content hash.  An
// object that already exists is left untouched (content addressing makes
// the write idempotent); one found at the flat legacy path is migrated
// into its shard.  Put does not move any baseline ref.
func (s *Store) Put(p *profile.Profile) (string, error) {
	hash, err := p.Hash()
	if err != nil {
		return "", err
	}
	path := s.objectPath(hash)
	if _, err := os.Stat(path); err == nil {
		return hash, nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return "", fmt.Errorf("regress: store object: %w", err)
	}
	if legacy := s.legacyObjectPath(hash); legacy != path {
		if _, err := os.Stat(legacy); err == nil {
			// Migrate the flat object into its shard.  Rename is atomic; a
			// concurrent Put racing on the same hash loses the ENOENT race
			// benignly — the object is immutable and already in place.
			if err := os.Rename(legacy, path); err == nil || errors.Is(err, fs.ErrNotExist) {
				return hash, nil
			}
		}
	}
	// WriteFile is atomic (temp + rename), which the existence fast-path
	// above depends on: an interrupted Put must never leave a truncated
	// object that later calls would treat as already stored.
	if err := p.WriteFile(path); err != nil {
		return "", fmt.Errorf("regress: store object: %w", err)
	}
	// Keep the similarity index (when the store has one) covering every
	// object, incrementally: one O(1) append per new profile instead of
	// an O(store) rebuild per query.
	if err := s.indexAdd(hash, p); err != nil {
		return "", fmt.Errorf("regress: index object: %w", err)
	}
	return hash, nil
}

// Get loads the object with the given content hash, falling back to the
// flat legacy layout for stores written before sharding.
func (s *Store) Get(hash string) (*profile.Profile, error) {
	if !ValidHash(hash) {
		return nil, fmt.Errorf("regress: object %q: not a content hash: %w", shortHash(hash), fs.ErrNotExist)
	}
	path := s.objectPath(hash)
	p, err := profile.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		if legacy := s.legacyObjectPath(hash); legacy != path {
			if lp, lerr := profile.ReadFile(legacy); lerr == nil {
				return lp, nil
			}
		}
	}
	if err != nil {
		return nil, fmt.Errorf("regress: object %s: %w", shortHash(hash), err)
	}
	return p, nil
}

// ObjectReader opens the raw canonical encoding of an object for
// streaming (the server's GET /v1/store/{hash} path), without decoding.
func (s *Store) ObjectReader(hash string) (*os.File, error) {
	if !ValidHash(hash) {
		return nil, fmt.Errorf("regress: object %q: not a content hash: %w", shortHash(hash), fs.ErrNotExist)
	}
	f, err := os.Open(s.objectPath(hash))
	if errors.Is(err, fs.ErrNotExist) {
		if legacy := s.legacyObjectPath(hash); legacy != s.objectPath(hash) {
			if lf, lerr := os.Open(legacy); lerr == nil {
				return lf, nil
			}
		}
	}
	if err != nil {
		return nil, fmt.Errorf("regress: object %s: %w", shortHash(hash), err)
	}
	return f, nil
}

// SaveBaseline stores p and makes it the baseline for its experiment,
// pushing the previous baseline (if any) into the history.
func (s *Store) SaveBaseline(p *profile.Profile) (string, error) {
	hash, err := s.Put(p)
	if err != nil {
		return "", err
	}
	return hash, s.setBaseline(p.Experiment, hash)
}

// SetBaseline points an experiment's baseline at an object already in the
// store — the promote operation of the server's baseline API.  The object
// must exist.
func (s *Store) SetBaseline(experiment, hash string) error {
	if experiment == "" {
		return fmt.Errorf("regress: empty experiment name")
	}
	if _, err := s.Get(hash); err != nil {
		return err
	}
	return s.setBaseline(experiment, hash)
}

// setBaseline performs the refs read-modify-write under the store mutex.
func (s *Store) setBaseline(name, hash string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	refs, err := s.loadRefs()
	if err != nil {
		return err
	}
	if refs.Baselines[name] != hash {
		refs.Baselines[name] = hash
		refs.History[name] = append([]string{hash}, refs.History[name]...)
	}
	return s.saveRefs(refs)
}

// Baseline returns the baseline profile and hash for an experiment.
func (s *Store) Baseline(name string) (*profile.Profile, string, error) {
	refs, err := s.loadRefs()
	if err != nil {
		return nil, "", err
	}
	hash, ok := refs.Baselines[name]
	if !ok {
		return nil, "", fmt.Errorf("regress: %w %q", ErrNoBaseline, name)
	}
	p, err := s.Get(hash)
	if err != nil {
		return nil, "", err
	}
	return p, hash, nil
}

// History returns the hashes ever saved as baseline for an experiment,
// newest first.
func (s *Store) History(name string) ([]string, error) {
	refs, err := s.loadRefs()
	if err != nil {
		return nil, err
	}
	return refs.History[name], nil
}

// Entry summarizes one baseline for listings.
type Entry struct {
	Experiment string
	Hash       string
	// Versions is the history depth of the experiment.
	Versions int
	// Significant is the number of significant properties recorded.
	Significant int
	// TopProperty and TopSeverity identify the worst recorded finding.
	TopProperty string
	TopSeverity float64
	// Ranks and Threads echo the run shape.
	Ranks, Threads int
}

// List returns one entry per baseline, sorted by experiment name.
func (s *Store) List() ([]Entry, error) {
	refs, err := s.loadRefs()
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(refs.Baselines))
	for name := range refs.Baselines {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []Entry
	for _, name := range names {
		hash := refs.Baselines[name]
		e := Entry{Experiment: name, Hash: hash, Versions: len(refs.History[name])}
		p, err := s.Get(hash)
		if err != nil {
			return nil, err
		}
		e.Ranks, e.Threads = p.Run.Procs, p.Run.Threads
		for _, prop := range p.Significant() {
			e.Significant++
			if prop.Severity > e.TopSeverity {
				e.TopProperty, e.TopSeverity = prop.Name, prop.Severity
			}
		}
		out = append(out, e)
	}
	return out, nil
}

// shortHash abbreviates a content hash for display.
func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}
