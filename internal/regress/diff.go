package regress

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/profile"
)

// Tolerances bounds the drift a comparison accepts before flagging a
// property.  Zero fields take the defaults below.
type Tolerances struct {
	// RelWait is the accepted relative waiting-time drift (default 2%).
	RelWait float64
	// AbsWait is the absolute waiting-time floor in seconds: drifts
	// smaller than this never count, whatever the relative change
	// (default 1 µs).  It keeps near-zero baselines from amplifying
	// noise into huge relative drifts.
	AbsWait float64
	// OutlierDist is the accepted normalized wait-vector distance
	// between the per-location distributions (default 0.05).  The
	// vectors are normalized to unit sum, so the distance measures a
	// change in the *shape* of the imbalance — which locations wait —
	// independent of its magnitude (similarity-analysis style).
	OutlierDist float64
}

func (t Tolerances) withDefaults() Tolerances {
	if t.RelWait <= 0 {
		t.RelWait = 0.02
	}
	if t.AbsWait <= 0 {
		t.AbsWait = 1e-6
	}
	if t.OutlierDist <= 0 {
		t.OutlierDist = 0.05
	}
	return t
}

// PropertyDelta is the comparison result for one property.
type PropertyDelta struct {
	Name string
	Info bool
	// BaseWait/CurWait are the two waiting times (0 when absent).
	BaseWait, CurWait         float64
	BaseSeverity, CurSeverity float64
	// AbsDrift is CurWait-BaseWait; RelDrift is AbsDrift/BaseWait
	// (0 when the base is 0).
	AbsDrift, RelDrift float64
	// Appeared/Disappeared record significance flips — the positive/
	// negative correctness changes of the test suite's known severities.
	Appeared, Disappeared bool
	// WaitDrifted records drift beyond both tolerance bounds.
	WaitDrifted bool
	// Distance is the normalized wait-vector distance between the two
	// per-location distributions; ShapeShifted marks it over tolerance.
	Distance     float64
	ShapeShifted bool
	// WorstLocation is the location with the largest absolute wait
	// change ("rank.thread"), and WorstDelta that change in seconds.
	WorstLocation string
	WorstDelta    float64
}

// Regressed reports whether this delta violates the tolerances.
func (d *PropertyDelta) Regressed() bool {
	return d.Appeared || d.Disappeared || d.WaitDrifted || d.ShapeShifted
}

// status renders the delta's verdict for reports.
func (d *PropertyDelta) status() string {
	var flags []string
	if d.Appeared {
		flags = append(flags, "APPEARED")
	}
	if d.Disappeared {
		flags = append(flags, "DISAPPEARED")
	}
	if d.WaitDrifted {
		flags = append(flags, "DRIFT")
	}
	if d.ShapeShifted {
		flags = append(flags, "SHAPE")
	}
	if len(flags) == 0 {
		return "ok"
	}
	return strings.Join(flags, "+")
}

// Diff is the full comparison of two profiles of one experiment.
type Diff struct {
	Experiment        string
	BaseHash, CurHash string
	Tol               Tolerances
	// ConfigMismatch warns that the two profiles were produced by
	// different configurations (hash of experiment/run/threshold) and
	// drift is therefore expected.
	ConfigMismatch bool
	// Deltas holds one entry per property present on either side,
	// sorted by name.
	Deltas []PropertyDelta
}

// Compare diffs cur against base under the given tolerances.
func Compare(base, cur *profile.Profile, tol Tolerances) *Diff {
	tol = tol.withDefaults()
	d := &Diff{
		Experiment:     cur.Experiment,
		Tol:            tol,
		ConfigMismatch: base.ConfigHash != cur.ConfigHash,
	}
	d.BaseHash, _ = base.Hash()
	d.CurHash, _ = cur.Hash()

	names := map[string]bool{}
	for _, p := range base.Properties {
		names[p.Name] = true
	}
	for _, p := range cur.Properties {
		names[p.Name] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	for _, name := range sorted {
		bp, cp := base.Get(name), cur.Get(name)
		pd := PropertyDelta{Name: name}
		var bSig, cSig bool
		if bp != nil {
			pd.BaseWait, pd.BaseSeverity, bSig = bp.Wait, bp.Severity, bp.Significant
			pd.Info = bp.Info
		}
		if cp != nil {
			pd.CurWait, pd.CurSeverity, cSig = cp.Wait, cp.Severity, cp.Significant
			pd.Info = cp.Info
		}
		pd.AbsDrift = pd.CurWait - pd.BaseWait
		if pd.BaseWait != 0 {
			pd.RelDrift = pd.AbsDrift / pd.BaseWait
		}
		pd.Appeared = cSig && !bSig
		pd.Disappeared = bSig && !cSig
		pd.WaitDrifted = math.Abs(pd.AbsDrift) > tol.AbsWait &&
			math.Abs(pd.AbsDrift) > tol.RelWait*pd.BaseWait
		// Every `> tol` comparison is false when the operand is NaN, so a
		// poisoned profile (NaN/Inf wait) would otherwise gate as "clean".
		// Non-finite on either side is always a regression.
		if !finite(pd.BaseWait) || !finite(pd.CurWait) || math.IsNaN(pd.AbsDrift) {
			pd.WaitDrifted = true
		}
		pd.Distance, pd.WorstLocation, pd.WorstDelta = locationDrift(bp, cp)
		pd.ShapeShifted = bp != nil && cp != nil &&
			(pd.Distance > tol.OutlierDist || math.IsNaN(pd.Distance))
		d.Deltas = append(d.Deltas, pd)
	}
	return d
}

// locationDrift compares the per-location wait vectors of two property
// records.  It returns the L2 distance between the unit-sum-normalized
// vectors (the outlier signal) plus the location with the largest raw
// wait change.
func locationDrift(bp, cp *profile.Property) (dist float64, worst string, worstDelta float64) {
	var bm, cm map[string]float64
	if bp != nil {
		bm = bp.LocationMap()
	}
	if cp != nil {
		cm = cp.LocationMap()
	}
	var bTot, cTot float64
	for _, w := range bm {
		bTot += w
	}
	for _, w := range cm {
		cTot += w
	}
	keys := map[string]bool{}
	for k := range bm {
		keys[k] = true
	}
	for k := range cm {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	var sumSq float64
	for _, k := range sorted {
		var bShare, cShare float64
		if bTot > 0 {
			bShare = bm[k] / bTot
		}
		if cTot > 0 {
			cShare = cm[k] / cTot
		}
		sumSq += (cShare - bShare) * (cShare - bShare)
		delta := cm[k] - bm[k]
		if math.Abs(delta) > math.Abs(worstDelta) ||
			(math.Abs(delta) == math.Abs(worstDelta) && worst == "") {
			worst, worstDelta = k, delta
		}
	}
	// A side with zero total is the zero vector: a distribution that
	// appears from (or collapses to) nothing is maximal shape drift — the
	// L2 norm of the surviving normalized vector — not zero drift.
	dist = math.Sqrt(sumSq)
	return dist, worst, worstDelta
}

// Regressions returns the deltas that violate the tolerances.
func (d *Diff) Regressions() []PropertyDelta {
	var out []PropertyDelta
	for _, pd := range d.Deltas {
		if pd.Regressed() {
			out = append(out, pd)
		}
	}
	return out
}

// Regressed reports whether any property violates the tolerances.
func (d *Diff) Regressed() bool { return len(d.Regressions()) > 0 }

// Render produces the human-readable comparison report.  For each flagged
// property it names the drift and the worst-outlier location, which is
// what a CI failure message needs to be actionable.
func (d *Diff) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "regression check: %s (base %s → cur %s)\n",
		d.Experiment, shortHash(d.BaseHash), shortHash(d.CurHash))
	if d.ConfigMismatch {
		fmt.Fprintf(&b, "WARNING: config hash mismatch — profiles come from different setups; drift is expected\n")
	}
	fmt.Fprintf(&b, "tolerances: rel %.2f%%, abs %.2es, outlier-dist %.3f\n",
		d.Tol.RelWait*100, d.Tol.AbsWait, d.Tol.OutlierDist)
	fmt.Fprintf(&b, "%-36s %12s %12s %9s %8s  %s\n",
		"property", "base(s)", "cur(s)", "drift", "dist", "verdict")
	for _, pd := range d.Deltas {
		name := pd.Name
		if pd.Info {
			name += " [info]"
		}
		fmt.Fprintf(&b, "%-36s %12.6f %12.6f %8.1f%% %8.4f  %s\n",
			name, pd.BaseWait, pd.CurWait, pd.RelDrift*100, pd.Distance, pd.status())
	}
	regs := d.Regressions()
	if len(regs) == 0 {
		fmt.Fprintf(&b, "result: OK — zero drift beyond tolerance\n")
		return b.String()
	}
	fmt.Fprintf(&b, "result: %d propert%s drifted:\n", len(regs), plural(len(regs), "y", "ies"))
	for _, pd := range regs {
		fmt.Fprintf(&b, "  %s: %s — wait %.6fs → %.6fs (%+.1f%%)",
			pd.Name, pd.status(), pd.BaseWait, pd.CurWait, pd.RelDrift*100)
		if pd.WorstLocation != "" {
			fmt.Fprintf(&b, "; worst location %s (%+.6fs)", pd.WorstLocation, pd.WorstDelta)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// finite reports whether v is neither NaN nor ±Inf.
func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
