package regress_test

import (
	"strings"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/omp"
	"repro/internal/profile"
	"repro/internal/regress"
)

// barrierProfile runs imbalance_at_mpi_barrier with the distribution's
// High overridden and returns its canonical profile — High is the knob
// the drift tests turn to inject a severity change.
func barrierProfile(t *testing.T, procs int, high float64) *profile.Profile {
	t.Helper()
	spec, ok := core.Get("imbalance_at_mpi_barrier")
	if !ok {
		t.Fatal("imbalance_at_mpi_barrier not registered")
	}
	a := spec.Defaults()
	ds := a.Distr["distr"]
	ds.High = high
	a.Distr["distr"] = ds
	tr, err := mpi.Run(mpi.Options{Procs: procs}, func(c *mpi.Comm) {
		spec.Run(core.Env{Comm: c, Ctx: c.Ctx(), OMP: omp.Options{Threads: 1}}, a)
	})
	if err != nil {
		t.Fatalf("barrier run: %v", err)
	}
	rep := analyzer.Analyze(tr, analyzer.Options{})
	p, err := profile.FromRun("barrier_drift", tr, rep, profile.RunInfo{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestStoreSaveAndRetrieve(t *testing.T) {
	store, err := regress.Open(t.TempDir() + "/store")
	if err != nil {
		t.Fatal(err)
	}
	p := barrierProfile(t, 4, 0.06)
	hash, err := store.SaveBaseline(p)
	if err != nil {
		t.Fatal(err)
	}
	got, gotHash, err := store.Baseline("barrier_drift")
	if err != nil {
		t.Fatal(err)
	}
	if gotHash != hash {
		t.Errorf("baseline hash %s, saved %s", gotHash, hash)
	}
	wantHash, _ := got.Hash()
	if wantHash != hash {
		t.Errorf("stored object re-hashes to %s, want %s", wantHash, hash)
	}

	// Content addressing: re-saving the identical profile is idempotent.
	if _, err := store.SaveBaseline(p); err != nil {
		t.Fatal(err)
	}
	hist, err := store.History("barrier_drift")
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 1 {
		t.Errorf("history after idempotent save = %v", hist)
	}

	// A changed profile advances the baseline and grows the history.
	p2 := barrierProfile(t, 4, 0.12)
	hash2, err := store.SaveBaseline(p2)
	if err != nil {
		t.Fatal(err)
	}
	if hash2 == hash {
		t.Fatal("different run produced the same content hash")
	}
	_, cur, err := store.Baseline("barrier_drift")
	if err != nil {
		t.Fatal(err)
	}
	if cur != hash2 {
		t.Errorf("baseline not advanced: %s", cur)
	}
	hist, _ = store.History("barrier_drift")
	if len(hist) != 2 || hist[0] != hash2 || hist[1] != hash {
		t.Errorf("history = %v, want [%s %s]", hist, hash2, hash)
	}

	entries, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Experiment != "barrier_drift" ||
		entries[0].Versions != 2 || entries[0].TopProperty != analyzer.PropWaitAtBarrier {
		t.Errorf("list = %+v", entries)
	}
}

func TestStoreMissingBaseline(t *testing.T) {
	store, err := regress.Open(t.TempDir() + "/store")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Baseline("nope"); err == nil {
		t.Error("missing baseline did not error")
	}
}

// TestCompareIdenticalRunsIsClean is the zero-drift half of the
// acceptance criterion: an identical rerun must report no regression.
func TestCompareIdenticalRunsIsClean(t *testing.T) {
	base := barrierProfile(t, 4, 0.06)
	cur := barrierProfile(t, 4, 0.06)
	d := regress.Compare(base, cur, regress.Tolerances{})
	if d.Regressed() {
		t.Fatalf("identical rerun regressed:\n%s", d.Render())
	}
	if d.ConfigMismatch {
		t.Error("identical setups flagged as config mismatch")
	}
	if !strings.Contains(d.Render(), "zero drift") {
		t.Errorf("render lacks the all-clear:\n%s", d.Render())
	}
}

// TestCompareInjectedSeverityChange is the other half: doubling the
// property's imbalance must fail the check and the report must name the
// drifted property and its worst-outlier location.
func TestCompareInjectedSeverityChange(t *testing.T) {
	base := barrierProfile(t, 4, 0.06)
	cur := barrierProfile(t, 4, 0.12) // doubled imbalance span
	d := regress.Compare(base, cur, regress.Tolerances{})
	if !d.Regressed() {
		t.Fatalf("injected severity change not detected:\n%s", d.Render())
	}
	var bar *regress.PropertyDelta
	for i := range d.Deltas {
		if d.Deltas[i].Name == analyzer.PropWaitAtBarrier {
			bar = &d.Deltas[i]
		}
	}
	if bar == nil || !bar.WaitDrifted {
		t.Fatalf("wait_at_mpi_barrier drift not flagged: %+v", bar)
	}
	if bar.AbsDrift <= 0 {
		t.Errorf("drift direction wrong: %+v", bar)
	}
	if bar.WorstLocation == "" {
		t.Error("worst-outlier location missing")
	}
	out := d.Render()
	if !strings.Contains(out, analyzer.PropWaitAtBarrier) ||
		!strings.Contains(out, "worst location "+bar.WorstLocation) {
		t.Errorf("report does not name the property and worst location:\n%s", out)
	}
}

// synthetic builds a profile by hand so significance flips and shape
// shifts can be tested precisely.
func synthetic(waits map[string][]float64, sig map[string]bool) *profile.Profile {
	p := &profile.Profile{
		Schema:     profile.SchemaVersion,
		Experiment: "synthetic",
		ConfigHash: "cafecafecafe",
		Threshold:  0.01,
		TotalTime:  10,
	}
	// Insert in deterministic (sorted) order like FromRun does.
	names := make([]string, 0, len(waits))
	for name := range waits {
		names = append(names, name)
	}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, name := range names {
		locs := waits[name]
		prop := profile.Property{Name: name, Significant: sig[name]}
		for rank, w := range locs {
			prop.Wait += w
			prop.Locations = append(prop.Locations, profile.LocationWait{
				Rank: int32(rank), Wait: w,
			})
		}
		prop.Severity = prop.Wait / p.TotalTime
		p.Properties = append(p.Properties, prop)
	}
	return p
}

func TestCompareDetectionSetFlips(t *testing.T) {
	base := synthetic(map[string][]float64{
		"late_sender": {0.2, 0.2},
	}, map[string]bool{"late_sender": true})
	cur := synthetic(map[string][]float64{
		"wait_at_nxn": {0.3, 0.3},
	}, map[string]bool{"wait_at_nxn": true})
	d := regress.Compare(base, cur, regress.Tolerances{})
	var appeared, disappeared bool
	for _, pd := range d.Deltas {
		if pd.Name == "wait_at_nxn" && pd.Appeared {
			appeared = true
		}
		if pd.Name == "late_sender" && pd.Disappeared {
			disappeared = true
		}
	}
	if !appeared || !disappeared {
		t.Errorf("detection-set flips missed: appeared=%v disappeared=%v\n%s",
			appeared, disappeared, d.Render())
	}
}

func TestCompareShapeShiftWithoutTotalDrift(t *testing.T) {
	// Same total wait (0.4s), but the imbalance moved from an even split
	// to a single outlier rank — the similarity-analysis signal.
	base := synthetic(map[string][]float64{
		"late_sender": {0.2, 0.2, 0, 0},
	}, map[string]bool{"late_sender": true})
	cur := synthetic(map[string][]float64{
		"late_sender": {0, 0, 0.4, 0},
	}, map[string]bool{"late_sender": true})
	d := regress.Compare(base, cur, regress.Tolerances{})
	pd := d.Deltas[0]
	if pd.WaitDrifted {
		t.Errorf("total wait unchanged but drift flagged: %+v", pd)
	}
	if !pd.ShapeShifted || pd.Distance == 0 {
		t.Errorf("moved imbalance not flagged as shape shift: %+v", pd)
	}
	if pd.WorstLocation != "2.0" {
		t.Errorf("worst outlier = %q, want 2.0", pd.WorstLocation)
	}
	if !d.Regressed() {
		t.Error("shape shift alone should fail the check")
	}
}

func TestToleranceBoundsRespected(t *testing.T) {
	base := synthetic(map[string][]float64{"late_sender": {0.2, 0.2}},
		map[string]bool{"late_sender": true})
	cur := synthetic(map[string][]float64{"late_sender": {0.201, 0.201}},
		map[string]bool{"late_sender": true})
	// +0.5% drift: inside the default 2% tolerance…
	if d := regress.Compare(base, cur, regress.Tolerances{}); d.Regressed() {
		t.Errorf("sub-tolerance drift flagged:\n%s", d.Render())
	}
	// …but outside a tightened 0.1% tolerance.
	if d := regress.Compare(base, cur, regress.Tolerances{RelWait: 0.001}); !d.Regressed() {
		t.Error("tightened tolerance did not flag the drift")
	}
}

func TestCompareConfigMismatchWarns(t *testing.T) {
	base := synthetic(map[string][]float64{"late_sender": {0.2}},
		map[string]bool{"late_sender": true})
	cur := synthetic(map[string][]float64{"late_sender": {0.2}},
		map[string]bool{"late_sender": true})
	cur.ConfigHash = "deadbeef0000"
	d := regress.Compare(base, cur, regress.Tolerances{})
	if !d.ConfigMismatch {
		t.Error("config mismatch not detected")
	}
	if !strings.Contains(d.Render(), "config hash mismatch") {
		t.Error("render lacks config-mismatch warning")
	}
}
