package regress

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/profile"
	"repro/internal/similarity"
)

// similaritySubdir holds the persistent LSH index inside a store root,
// alongside objects/ and refs.json.
const similaritySubdir = "similarity"

func (s *Store) similarityDir() string { return filepath.Join(s.dir, similaritySubdir) }

// Objects enumerates every object hash in the store (sharded and legacy
// flat layouts), sorted ascending.  It reads directory names only — no
// object is opened — so walking a million-profile store stays cheap.
func (s *Store) Objects() ([]string, error) {
	root := filepath.Join(s.dir, "objects")
	ents, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("regress: list objects: %w", err)
	}
	var out []string
	add := func(name string) {
		hash := strings.TrimSuffix(name, ".json")
		if len(hash) < len(name) && ValidHash(hash) {
			out = append(out, hash)
		}
	}
	for _, ent := range ents {
		if !ent.IsDir() {
			add(ent.Name()) // legacy flat object
			continue
		}
		if len(ent.Name()) != 2 {
			continue
		}
		shard, err := os.ReadDir(filepath.Join(root, ent.Name()))
		if err != nil {
			return nil, fmt.Errorf("regress: list objects: %w", err)
		}
		for _, obj := range shard {
			if !obj.IsDir() {
				add(obj.Name())
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// EnsureIndex opens the store's persistent similarity index (creating
// or rebuilding it when absent or stamped by an incompatible schema)
// and backfills every stored object the index does not know yet.  After
// it returns, the index covers the whole store; subsequent Puts keep it
// current incrementally.  The handle is cached on the Store, so calling
// it repeatedly is cheap.
func (s *Store) EnsureIndex() (*similarity.PersistentIndex, error) {
	idx, err := s.openIndex()
	if err != nil {
		return nil, err
	}
	hashes, err := s.Objects()
	if err != nil {
		return nil, err
	}
	for _, hash := range hashes {
		if idx.Has(hash) {
			continue
		}
		p, err := s.Get(hash)
		if err != nil {
			return nil, fmt.Errorf("regress: index backfill: %w", err)
		}
		if err := idx.Add(hash, similarity.Embed(p)); err != nil {
			return nil, fmt.Errorf("regress: index backfill: %w", err)
		}
	}
	return idx, nil
}

// openIndex returns the cached index handle, opening the log on first
// use.  The index geometry is stamped with the profile schema: bumping
// either discards and rebuilds.
func (s *Store) openIndex() (*similarity.PersistentIndex, error) {
	s.simMu.Lock()
	defer s.simMu.Unlock()
	if s.sim != nil {
		return s.sim, nil
	}
	idx, err := similarity.OpenIndex(s.similarityDir(), similarity.DefaultParams, profile.SchemaVersion)
	if err != nil {
		return nil, err
	}
	s.sim = idx
	return idx, nil
}

// indexAdd incrementally indexes a newly stored object — but only when
// the store has an index at all: plain `atsregress save` runs against
// index-less stores must not conjure one up.  EnsureIndex (the similar
// CLI/endpoint path) creates the index and backfills whatever Puts
// happened before it existed.
func (s *Store) indexAdd(hash string, p *profile.Profile) error {
	s.simMu.Lock()
	cached := s.sim
	s.simMu.Unlock()
	if cached == nil && !similarity.IndexExists(s.similarityDir()) {
		return nil
	}
	idx, err := s.openIndex()
	if err != nil {
		return err
	}
	return idx.Add(hash, similarity.Embed(p))
}

// Similar returns the k stored profiles most similar to the stored
// object with the given hash (the query itself is indexed, so its own
// entry — similarity 1 — leads the result).  The index is ensured
// first: opened, schema-checked, and backfilled to cover the store.
func (s *Store) Similar(hash string, k int) ([]similarity.Match, int, error) {
	p, err := s.Get(hash)
	if err != nil {
		return nil, 0, err
	}
	return s.SimilarProfile(p, k)
}

// SimilarProfile is Similar for a profile that need not be stored —
// the "which past run does this new regression look like?" query.
func (s *Store) SimilarProfile(p *profile.Profile, k int) ([]similarity.Match, int, error) {
	idx, err := s.EnsureIndex()
	if err != nil {
		return nil, 0, err
	}
	return idx.Query(similarity.Embed(p), k)
}
