package regress_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/regress"
)

// TestHistoryOrderingUnderRepeatedSetBaseline: History must list every
// baseline move newest first, must not duplicate a no-op re-point, and
// must record a hash again when the baseline genuinely returns to it.
func TestHistoryOrderingUnderRepeatedSetBaseline(t *testing.T) {
	store, err := regress.Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	a := synthProfile("exp", 0.5)
	b := synthProfile("exp", 0.75)
	hashA, err := store.SaveBaseline(a)
	if err != nil {
		t.Fatal(err)
	}
	hashB, err := store.SaveBaseline(b)
	if err != nil {
		t.Fatal(err)
	}

	// Re-pointing at the current baseline is a no-op for history.
	if err := store.SetBaseline("exp", hashB); err != nil {
		t.Fatal(err)
	}
	hist, err := store.History("exp")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{hashB, hashA}; !reflect.DeepEqual(hist, want) {
		t.Fatalf("history after no-op re-point = %v, want %v", hist, want)
	}

	// Moving back to A is a real move and prepends again.
	if err := store.SetBaseline("exp", hashA); err != nil {
		t.Fatal(err)
	}
	if err := store.SetBaseline("exp", hashA); err != nil { // and a second no-op
		t.Fatal(err)
	}
	hist, err = store.History("exp")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{hashA, hashB, hashA}; !reflect.DeepEqual(hist, want) {
		t.Fatalf("history after move back = %v, want %v", hist, want)
	}

	// The baseline ref agrees with the head of the history.
	_, cur, err := store.Baseline("exp")
	if err != nil {
		t.Fatal(err)
	}
	if cur != hashA {
		t.Fatalf("baseline = %s, want %s", cur, hashA)
	}
}

// TestHistorySetBaselineShardedAndLegacy: SetBaseline must resolve
// objects in both the sharded layout Put writes today and the flat
// legacy layout older stores carry, and the history it records must be
// identical either way.
func TestHistorySetBaselineShardedAndLegacy(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	store, err := regress.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Sharded object: stored through Put.
	sharded := synthProfile("exp", 0.5)
	hashSharded, err := store.Put(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "objects", hashSharded[:2], hashSharded+".json")); err != nil {
		t.Fatalf("object not sharded: %v", err)
	}

	// Legacy object: written at the flat path by hand, as an old store
	// version would have left it.
	legacy := synthProfile("exp", 0.75)
	hashLegacy, err := legacy.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if err := legacy.WriteFile(filepath.Join(dir, "objects", hashLegacy+".json")); err != nil {
		t.Fatal(err)
	}

	if err := store.SetBaseline("exp", hashSharded); err != nil {
		t.Fatalf("SetBaseline sharded: %v", err)
	}
	if err := store.SetBaseline("exp", hashLegacy); err != nil {
		t.Fatalf("SetBaseline legacy: %v", err)
	}
	if err := store.SetBaseline("exp", hashSharded); err != nil {
		t.Fatal(err)
	}
	hist, err := store.History("exp")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{hashSharded, hashLegacy, hashSharded}
	if !reflect.DeepEqual(hist, want) {
		t.Fatalf("history across layouts = %v, want %v", hist, want)
	}
}
