package regress_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/profile"
	"repro/internal/regress"
)

// synthProfile builds a minimal distinct canonical profile without running
// an engine — cheap enough for concurrency stress.
func synthProfile(experiment string, wait float64) *profile.Profile {
	return &profile.Profile{
		Schema:     profile.SchemaVersion,
		Experiment: experiment,
		Run:        profile.RunInfo{Clock: "virtual", Procs: 2, Threads: 1},
		Duration:   1,
		TotalTime:  2,
		Threshold:  0.005,
		Events:     4,
		Properties: []profile.Property{{
			Name: "late_sender", Wait: wait, Severity: wait / 2,
			Instances: 1, Significant: true,
		}},
	}
}

// TestStoreShardedLayout verifies that Put lands objects in the
// objects/<first-two-hex>/ fan-out.
func TestStoreShardedLayout(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	store, err := regress.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := synthProfile("shard_layout", 0.25)
	hash, err := store.Put(p)
	if err != nil {
		t.Fatal(err)
	}
	sharded := filepath.Join(dir, "objects", hash[:2], hash+".json")
	if _, err := os.Stat(sharded); err != nil {
		t.Fatalf("object not at sharded path %s: %v", sharded, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "objects", hash+".json")); err == nil {
		t.Fatal("object also present at flat legacy path")
	}
	got, err := store.Get(hash)
	if err != nil {
		t.Fatal(err)
	}
	if gotHash, _ := got.Hash(); gotHash != hash {
		t.Fatalf("round-trip hash %s, want %s", gotHash, hash)
	}
}

// TestStoreLegacyFallback seeds a flat pre-sharding object and checks that
// reads fall back to it and that Put migrates it into its shard.
func TestStoreLegacyFallback(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	store, err := regress.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := synthProfile("legacy_fallback", 0.5)
	hash, err := p.Hash()
	if err != nil {
		t.Fatal(err)
	}
	flat := filepath.Join(dir, "objects", hash+".json")
	if err := p.WriteFile(flat); err != nil {
		t.Fatal(err)
	}

	// Reads see the flat object.
	if _, err := store.Get(hash); err != nil {
		t.Fatalf("Get via legacy fallback: %v", err)
	}
	r, err := store.ObjectReader(hash)
	if err != nil {
		t.Fatalf("ObjectReader via legacy fallback: %v", err)
	}
	r.Close()

	// Put migrates it into the shard.
	if _, err := store.Put(p); err != nil {
		t.Fatal(err)
	}
	sharded := filepath.Join(dir, "objects", hash[:2], hash+".json")
	if _, err := os.Stat(sharded); err != nil {
		t.Fatalf("object not migrated to %s: %v", sharded, err)
	}
	if _, err := os.Stat(flat); err == nil {
		t.Fatal("flat object still present after migration")
	}
	if _, err := store.Get(hash); err != nil {
		t.Fatalf("Get after migration: %v", err)
	}
}

// TestStoreSetBaseline promotes an existing object to baseline without
// re-uploading it.
func TestStoreSetBaseline(t *testing.T) {
	store, err := regress.Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	p := synthProfile("promote", 0.125)
	hash, err := store.Put(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.SetBaseline("promote", hash); err != nil {
		t.Fatal(err)
	}
	_, gotHash, err := store.Baseline("promote")
	if err != nil {
		t.Fatal(err)
	}
	if gotHash != hash {
		t.Fatalf("baseline %s, want %s", gotHash, hash)
	}
	if err := store.SetBaseline("promote", "no-such-object"); err == nil {
		t.Fatal("SetBaseline accepted a missing object")
	}
}

// TestStoreConcurrentUse is the -race stress the server relies on: many
// goroutines saving baselines for distinct experiments while others read,
// with no lost updates in the refs index.
func TestStoreConcurrentUse(t *testing.T) {
	store, err := regress.Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	const writers = 16
	var wg sync.WaitGroup
	hashes := make([]string, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := synthProfile(fmt.Sprintf("conc_%02d", i), float64(i+1)/16)
			h, err := store.SaveBaseline(p)
			if err != nil {
				t.Errorf("SaveBaseline %d: %v", i, err)
				return
			}
			hashes[i] = h
		}(i)
	}
	// Concurrent readers: List and Baseline must never see a torn index.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if _, err := store.List(); err != nil {
					t.Errorf("List: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	// Every writer's update survived: no read-modify-write was lost.
	for i := 0; i < writers; i++ {
		name := fmt.Sprintf("conc_%02d", i)
		_, h, err := store.Baseline(name)
		if err != nil {
			t.Fatalf("Baseline(%s): %v", name, err)
		}
		if h != hashes[i] {
			t.Fatalf("Baseline(%s) = %s, want %s", name, h, hashes[i])
		}
	}
}
