package regress_test

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/regress"
	"repro/internal/similarity"
)

// TestStoreSimilarSelfMatch: after EnsureIndex, every stored profile's
// nearest neighbor is itself at similarity 1.
func TestStoreSimilarSelfMatch(t *testing.T) {
	store, err := regress.Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	hashes := make([]string, 0, 30)
	for i := 0; i < 30; i++ {
		h, err := store.Put(similarity.SyntheticProfile(21, i))
		if err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, h)
	}
	for i := 0; i < len(hashes); i += 7 {
		h := hashes[i]
		matches, probed, err := store.Similar(h, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(matches) == 0 || matches[0].Hash != h {
			t.Fatalf("Similar(%s) top-1 = %+v, want self", h[:12], matches)
		}
		if matches[0].Similarity < 0.999999 {
			t.Fatalf("self similarity = %v", matches[0].Similarity)
		}
		if probed <= 0 {
			t.Fatalf("probed = %d", probed)
		}
	}
}

// TestStorePutUpdatesIndexIncrementally: once a store has an index,
// every subsequent Put keeps it current — and the incrementally grown
// index answers exactly like one rebuilt from scratch over the same
// objects (the rebuild ≡ incremental invariant of the CI smoke).
func TestStorePutUpdatesIndexIncrementally(t *testing.T) {
	incDir := filepath.Join(t.TempDir(), "inc")
	store, err := regress.Open(incDir)
	if err != nil {
		t.Fatal(err)
	}
	// Seed a few objects, then create the index (backfills them).
	for i := 0; i < 5; i++ {
		if _, err := store.Put(similarity.SyntheticProfile(33, i)); err != nil {
			t.Fatal(err)
		}
	}
	if similarity.IndexExists(filepath.Join(incDir, "similarity")) {
		t.Fatal("Put conjured up an index on an index-less store")
	}
	idx, err := store.EnsureIndex()
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 5 {
		t.Fatalf("backfilled index has %d entries, want 5", idx.Len())
	}
	// Further Puts land in the index without another EnsureIndex walk.
	var lastHash string
	for i := 5; i < 20; i++ {
		if lastHash, err = store.Put(similarity.SyntheticProfile(33, i)); err != nil {
			t.Fatal(err)
		}
	}
	if idx.Len() != 20 {
		t.Fatalf("incremental index has %d entries, want 20", idx.Len())
	}
	if !idx.Has(lastHash) {
		t.Fatal("last Put missing from index")
	}

	// A second store over the same objects, rebuilt from nothing, must
	// answer queries identically.
	rebDir := filepath.Join(t.TempDir(), "reb")
	rebuilt, err := regress.Open(rebDir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 19; i >= 0; i-- { // same profiles, reversed insertion order
		if _, err := rebuilt.Put(similarity.SyntheticProfile(33, i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rebuilt.EnsureIndex(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i += 7 {
		p := similarity.SyntheticProfile(33, i)
		a, _, err := store.SimilarProfile(p, 5)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := rebuilt.SimilarProfile(p, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("query %d: incremental %+v != rebuilt %+v", i, a, b)
		}
	}
}

// TestStoreSimilarUnknownHash: querying a hash the store does not hold
// is an error, not an empty answer.
func TestStoreSimilarUnknownHash(t *testing.T) {
	store, err := regress.Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	missing := fmt.Sprintf("%064d", 7)
	if _, _, err := store.Similar(missing, 3); err == nil {
		t.Fatal("Similar on a missing hash succeeded")
	}
	if _, _, err := store.Similar("../../etc/passwd", 3); err == nil {
		t.Fatal("Similar accepted a non-hash")
	}
}
