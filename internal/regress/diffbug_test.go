package regress_test

import (
	"math"
	"testing"

	"repro/internal/profile"
	"repro/internal/regress"
)

// TestCompareShapeShiftFromNothing is the regression test for the
// zero-total locationDrift bug: a wait distribution that appears from —
// or collapses to — nothing used to report distance 0 and sail through
// the outlier gate.  The missing side is the zero vector, so the
// distance must be the L2 norm of the surviving normalized vector.
func TestCompareShapeShiftFromNothing(t *testing.T) {
	loaded := map[string][]float64{"late_sender": {1, 2, 3}}
	empty := map[string][]float64{"late_sender": {0, 0, 0}}
	sig := map[string]bool{"late_sender": true}
	// ‖(1/6, 2/6, 3/6)‖₂ = √14/6.
	wantDist := math.Sqrt(14) / 6

	for _, tc := range []struct {
		name      string
		base, cur *profile.Profile
	}{
		{"collapses to nothing", synthetic(loaded, sig), synthetic(empty, sig)},
		{"appears from nothing", synthetic(empty, sig), synthetic(loaded, sig)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := regress.Compare(tc.base, tc.cur, regress.Tolerances{})
			pd := findDelta(t, d, "late_sender")
			if math.Abs(pd.Distance-wantDist) > 1e-12 {
				t.Errorf("Distance = %v, want %v", pd.Distance, wantDist)
			}
			if !pd.ShapeShifted {
				t.Error("ShapeShifted = false; zero-total side slipped through the outlier gate")
			}
			if !d.Regressed() {
				t.Error("diff not regressed")
			}
		})
	}
}

// TestCompareNonFiniteIsRegressed is the regression test for NaN-blind
// gating: every `math.Abs(drift) > tol` comparison is false when the
// drift is NaN, so a poisoned profile used to be reported "clean".
func TestCompareNonFiniteIsRegressed(t *testing.T) {
	healthy := func() *profile.Profile {
		return synthetic(map[string][]float64{"late_sender": {1, 2, 3}},
			map[string]bool{"late_sender": true})
	}
	poisonWait := func(p *profile.Profile, v float64) *profile.Profile {
		p.Properties[0].Wait = v
		return p
	}
	poisonLocation := func(p *profile.Profile, v float64) *profile.Profile {
		p.Properties[0].Locations[1].Wait = v
		return p
	}

	for _, tc := range []struct {
		name      string
		base, cur *profile.Profile
	}{
		{"NaN current wait", healthy(), poisonWait(healthy(), math.NaN())},
		{"NaN baseline wait", poisonWait(healthy(), math.NaN()), healthy()},
		{"+Inf current wait", healthy(), poisonWait(healthy(), math.Inf(1))},
		{"-Inf baseline wait", poisonWait(healthy(), math.Inf(-1)), healthy()},
		{"NaN on both sides", poisonWait(healthy(), math.NaN()), poisonWait(healthy(), math.NaN())},
		{"NaN location wait", healthy(), poisonLocation(healthy(), math.NaN())},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := regress.Compare(tc.base, tc.cur, regress.Tolerances{})
			if !d.Regressed() {
				t.Fatalf("poisoned comparison reported clean:\n%s", d.Render())
			}
		})
	}
}

// TestCompareWorstLocationTieBreak: with equal |delta| at several
// locations the reported worst location must be deterministic — the
// first key in sorted order — not whatever map iteration yields.
func TestCompareWorstLocationTieBreak(t *testing.T) {
	base := synthetic(map[string][]float64{"late_sender": {1, 1, 1, 1}},
		map[string]bool{"late_sender": true})
	// Rank 1 gains 0.5, rank 2 loses 0.5: equal magnitude, opposite sign.
	cur := synthetic(map[string][]float64{"late_sender": {1, 1.5, 0.5, 1}},
		map[string]bool{"late_sender": true})

	for i := 0; i < 20; i++ {
		d := regress.Compare(base, cur, regress.Tolerances{})
		pd := findDelta(t, d, "late_sender")
		if pd.WorstLocation != "1.0" {
			t.Fatalf("iteration %d: WorstLocation = %q, want %q (first sorted key of the tied pair)",
				i, pd.WorstLocation, "1.0")
		}
		if pd.WorstDelta != 0.5 {
			t.Fatalf("iteration %d: WorstDelta = %v, want 0.5", i, pd.WorstDelta)
		}
	}
}

// findDelta extracts one property's delta from a diff.
func findDelta(t *testing.T, d *regress.Diff, name string) *regress.PropertyDelta {
	t.Helper()
	for i := range d.Deltas {
		if d.Deltas[i].Name == name {
			return &d.Deltas[i]
		}
	}
	t.Fatalf("no delta for %q", name)
	return nil
}
