package regress_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/regress"
)

// An interrupted Put must never leave a partial object that the
// existence fast-path would then treat as already stored.  Failure is
// injected by replacing the objects/ directory with a regular file: shard
// creation then fails before any byte lands at the object path.
func TestPutInterruptedLeavesNoPartialObject(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	store, err := regress.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := barrierProfile(t, 2, 0.06)
	objects := filepath.Join(dir, "objects")
	if err := os.RemoveAll(objects); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(objects, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Put(p); err == nil {
		t.Fatal("Put succeeded with objects/ blocked by a file")
	}

	// Recovery: once the directory is back, the same Put stores a
	// complete, readable object — nothing partial survived to trip the
	// fast-path.
	if err := os.Remove(objects); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(objects, 0o755); err != nil {
		t.Fatal(err)
	}
	hash, err := store.Put(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := store.Get(hash)
	if err != nil {
		t.Fatalf("object unreadable after recovery: %v", err)
	}
	h2, err := got.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h2 != hash {
		t.Fatalf("round-tripped object hash %s != %s", h2, hash)
	}

	// The store tree holds only real objects — no temp litter — and
	// exactly one object landed (inside its shard directory).
	var files []string
	err = filepath.WalkDir(objects, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if strings.Contains(d.Name(), ".tmp") {
			t.Fatalf("temp litter in objects/: %s", path)
		}
		if !d.IsDir() {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("objects/ holds %d files, want 1: %v", len(files), files)
	}
}

// A truncated object planted at the object path (the pre-fix failure
// mode) must not be returned by Get as if it were valid.
func TestGetRejectsTruncatedObject(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	store, err := regress.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := barrierProfile(t, 2, 0.06)
	hash, err := store.Put(p)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "objects", hash[:2], hash+".json")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob[:len(blob)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Get(hash); err == nil {
		t.Fatal("truncated object decoded successfully")
	}
}
