package regress_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/regress"
)

// An interrupted Put must never leave a partial object that the
// existence fast-path would then treat as already stored.  Failure is
// injected by removing the objects/ directory: the atomic write (temp +
// rename in the target directory) then fails before any byte lands at
// the object path.
func TestPutInterruptedLeavesNoPartialObject(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	store, err := regress.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := barrierProfile(t, 2, 0.06)
	objects := filepath.Join(dir, "objects")
	if err := os.RemoveAll(objects); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Put(p); err == nil {
		t.Fatal("Put succeeded without an objects directory")
	}

	// Recovery: once the directory is back, the same Put stores a
	// complete, readable object — nothing partial survived to trip the
	// fast-path.
	if err := os.MkdirAll(objects, 0o755); err != nil {
		t.Fatal(err)
	}
	hash, err := store.Put(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := store.Get(hash)
	if err != nil {
		t.Fatalf("object unreadable after recovery: %v", err)
	}
	h2, err := got.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h2 != hash {
		t.Fatalf("round-tripped object hash %s != %s", h2, hash)
	}

	// The store directory holds only real objects — no temp litter.
	ents, err := os.ReadDir(objects)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp litter in objects/: %s", e.Name())
		}
	}
	if len(ents) != 1 {
		t.Fatalf("objects/ holds %d entries, want 1", len(ents))
	}
}

// A truncated object planted at the object path (the pre-fix failure
// mode) must not be returned by Get as if it were valid.
func TestGetRejectsTruncatedObject(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	store, err := regress.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := barrierProfile(t, 2, 0.06)
	hash, err := store.Put(p)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "objects", hash+".json")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob[:len(blob)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Get(hash); err == nil {
		t.Fatal("truncated object decoded successfully")
	}
}
