package campaign

import "encoding/json"

// Cache is the minimal interface a campaign needs from a result cache:
// byte-blob get/put under a content-addressed key.  internal/rescache
// implements it with an on-disk, engine-versioned store; tests implement
// it with a map.  Implementations must be safe for concurrent use —
// Memo-wrapped jobs run on the campaign pool.
type Cache interface {
	// Get returns the cached value for key, or ok=false on a miss.
	Get(key string) ([]byte, bool)
	// Put stores value under key.
	Put(key string, value []byte) error
}

// Memo wraps a campaign job with content-addressed memoization: on a
// cache hit the job is skipped entirely and the decoded cached value
// returned; on a miss the job runs and its result is written through.
// The contract that makes this safe is the same one the whole suite is
// built on — jobs are pure functions of their index (and the key must
// encode every input the result depends on, including engine identity
// and version; see rescache.Key), so the cached value IS the value a
// cold run would have produced.
//
// Degradation is always toward recomputation, never toward wrong
// results: a nil cache or an empty key disables memoization for that
// job; a corrupted or undecodable cached entry falls through to the job
// and is overwritten; a failed cache write is ignored (the sweep's
// correctness never depends on the cache accepting writes — a read-only
// or full cache just stays cold).  Job errors are not cached: failures
// of the environment (as opposed to deterministic oracle verdicts, which
// are ordinary values) must stay re-observable.
//
// Panic confinement is unchanged: a panicking job propagates out of the
// wrapper and is confined per-job by the pool exactly as without Memo.
func Memo[T any](cache Cache, key func(i int) string, job func(i int) (T, error)) func(int) (T, error) {
	if cache == nil {
		return job
	}
	return func(i int) (T, error) {
		k := key(i)
		if k == "" {
			return job(i)
		}
		if blob, ok := cache.Get(k); ok {
			var v T
			if err := json.Unmarshal(blob, &v); err == nil {
				return v, nil
			}
			// Undecodable entry: recompute below; the Put overwrites it.
		}
		v, err := job(i)
		if err != nil {
			return v, err
		}
		if blob, merr := json.Marshal(v); merr == nil {
			_ = cache.Put(k, blob) // best-effort write-through
		}
		return v, nil
	}
}
