package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// mapCache is the in-memory Cache used by the Memo tests.
type mapCache struct {
	mu      sync.Mutex
	m       map[string][]byte
	gets    int
	puts    int
	putErr  error
	failAll bool
}

func newMapCache() *mapCache { return &mapCache{m: make(map[string][]byte)} }

func (c *mapCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gets++
	v, ok := c.m[key]
	return v, ok
}

func (c *mapCache) Put(key string, value []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.puts++
	if c.putErr != nil {
		return c.putErr
	}
	if !c.failAll {
		c.m[key] = append([]byte(nil), value...)
	}
	return nil
}

func key(i int) string { return fmt.Sprintf("%064x", i) }

func TestMemoHitSkipsJob(t *testing.T) {
	c := newMapCache()
	runs := 0
	job := Memo(c, key, func(i int) (int, error) {
		runs++
		return i * i, nil
	})
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 5; i++ {
			v, err := job(i)
			if err != nil || v != i*i {
				t.Fatalf("pass %d job(%d) = %d, %v", pass, i, v, err)
			}
		}
	}
	if runs != 5 {
		t.Fatalf("jobs ran %d times; want 5 (second pass all hits)", runs)
	}
}

func TestMemoNilCacheAndEmptyKeyPassThrough(t *testing.T) {
	runs := 0
	raw := func(i int) (int, error) { runs++; return i, nil }
	job := Memo(nil, key, raw)
	job(1)
	job(1)
	if runs != 2 {
		t.Fatalf("nil cache memoized: %d runs", runs)
	}
	runs = 0
	c := newMapCache()
	job = Memo(c, func(int) string { return "" }, raw)
	job(1)
	job(1)
	if runs != 2 || c.gets != 0 || c.puts != 0 {
		t.Fatalf("empty key touched the cache: runs=%d gets=%d puts=%d", runs, c.gets, c.puts)
	}
}

func TestMemoErrorsNotCached(t *testing.T) {
	c := newMapCache()
	fail := true
	job := Memo(c, key, func(i int) (int, error) {
		if fail {
			return 0, errors.New("transient")
		}
		return 7, nil
	})
	if _, err := job(0); err == nil {
		t.Fatal("expected error")
	}
	if len(c.m) != 0 {
		t.Fatal("failed job was cached")
	}
	fail = false
	if v, err := job(0); err != nil || v != 7 {
		t.Fatalf("retry = %d, %v", v, err)
	}
	if len(c.m) != 1 {
		t.Fatal("successful retry was not cached")
	}
}

func TestMemoCorruptEntryRecomputesAndOverwrites(t *testing.T) {
	c := newMapCache()
	c.m[key(3)] = []byte("not json at all")
	runs := 0
	job := Memo(c, key, func(i int) (int, error) { runs++; return 42, nil })
	if v, err := job(3); err != nil || v != 42 {
		t.Fatalf("job = %d, %v", v, err)
	}
	if runs != 1 {
		t.Fatal("corrupt entry did not fall through to the job")
	}
	var stored int
	if err := json.Unmarshal(c.m[key(3)], &stored); err != nil || stored != 42 {
		t.Fatalf("overwrite: %q (%v)", c.m[key(3)], err)
	}
}

func TestMemoPutFailureIsIgnored(t *testing.T) {
	c := newMapCache()
	c.putErr = errors.New("disk full")
	runs := 0
	job := Memo(c, key, func(i int) (int, error) { runs++; return i, nil })
	for pass := 0; pass < 2; pass++ {
		if v, err := job(9); err != nil || v != 9 {
			t.Fatalf("pass %d: %d, %v", pass, v, err)
		}
	}
	if runs != 2 {
		t.Fatalf("write-rejecting cache changed results: %d runs", runs)
	}
}

// TestMemoUnderStreamInterleavedHits runs a memoized campaign where some
// indices are warm and others cold: delivery order, values, and the
// lowest-failing-index contract must be indistinguishable from an
// unmemoized run.
func TestMemoUnderStreamInterleavedHits(t *testing.T) {
	const n = 40
	c := newMapCache()
	// Pre-warm the even indices with the values a cold run would produce.
	for i := 0; i < n; i += 2 {
		blob, _ := json.Marshal(i * 10)
		c.m[key(i)] = blob
	}
	var mu sync.Mutex
	runs := 0
	job := Memo(c, key, func(i int) (int, error) {
		mu.Lock()
		runs++
		mu.Unlock()
		return i * 10, nil
	})
	var got []int
	err := Stream(n, Options{Workers: 8}, job, func(i int, v int) error {
		if v != i*10 {
			return fmt.Errorf("job %d delivered %d", i, v)
		}
		got = append(got, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("delivered %d of %d", len(got), n)
	}
	for i, idx := range got {
		if i != idx {
			t.Fatalf("out-of-order delivery at %d: %d", i, idx)
		}
	}
	if runs != n/2 {
		t.Fatalf("cold jobs ran %d times; want %d", runs, n/2)
	}
}

// TestMemoPanicConfinement: a panic inside a memoized job is confined by
// the pool exactly as without Memo, and nothing is cached for it.
func TestMemoPanicConfinement(t *testing.T) {
	c := newMapCache()
	job := Memo(c, key, func(i int) (int, error) {
		if i == 2 {
			panic("boom")
		}
		return i, nil
	})
	_, err := Run(5, Options{Workers: 2}, job)
	var ce *Error
	if !errors.As(err, &ce) || ce.Index != 2 {
		t.Fatalf("err = %v; want *Error at index 2", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v; want PanicError inside", err)
	}
	if _, ok := c.m[key(2)]; ok {
		t.Fatal("panicking job left a cache entry")
	}
}
