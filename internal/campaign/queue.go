package campaign

import (
	"errors"
	"sync"
	"sync/atomic"
)

// ErrSaturated is returned by Queue.Submit when the pending queue is full.
// Callers translate it into backpressure at their boundary — the analysis
// server answers 429 with a Retry-After hint instead of buffering without
// bound.
var ErrSaturated = errors.New("campaign: queue saturated")

// ErrQueueClosed is returned by Queue.Submit after Close.
var ErrQueueClosed = errors.New("campaign: queue closed")

// Queue is the long-running sibling of runPool: where Run/Stream execute a
// batch of jobs known up front, a Queue accepts jobs one at a time for the
// lifetime of a service, runs them on a bounded worker pool, and rejects
// new work once the pending backlog reaches its depth.  It is the
// admission-control layer of the analysis server (cmd/atsd): bounded
// workers keep concurrent analyses from oversubscribing the machine, and
// the bounded backlog turns overload into an explicit ErrSaturated instead
// of unbounded memory growth.
//
// Jobs must be independent, like runPool jobs: a panic in one job is
// confined to that job and does not poison the pool.
type Queue struct {
	jobs    chan func()
	wg      sync.WaitGroup
	workers int

	mu     sync.Mutex
	closed bool

	pending  atomic.Int64
	running  atomic.Int64
	done     atomic.Int64
	rejected atomic.Int64
	panicked atomic.Int64
}

// QueueStats is a point-in-time snapshot of a queue's counters.
type QueueStats struct {
	// Workers and Depth echo the queue's configuration.
	Workers int `json:"workers"`
	Depth   int `json:"depth"`
	// Pending is the number of submitted jobs not yet started; Running the
	// number currently executing.
	Pending int `json:"pending"`
	Running int `json:"running"`
	// Done counts jobs that finished (including panicked ones); Rejected
	// counts Submit calls refused with ErrSaturated; Panicked counts jobs
	// whose panic was confined.
	Done     int64 `json:"done"`
	Rejected int64 `json:"rejected"`
	Panicked int64 `json:"panicked"`
}

// NewQueue starts a pool of `workers` goroutines consuming a pending
// queue of at most `depth` jobs.  workers <= 0 selects DefaultWorkers();
// depth <= 0 selects 2×workers.
func NewQueue(workers, depth int) *Queue {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if depth <= 0 {
		depth = 2 * workers
	}
	q := &Queue{jobs: make(chan func(), depth), workers: workers}
	for i := 0; i < workers; i++ {
		q.wg.Add(1)
		go func() {
			defer q.wg.Done()
			for job := range q.jobs {
				q.pending.Add(-1)
				q.running.Add(1)
				q.runOne(job)
				q.running.Add(-1)
				q.done.Add(1)
			}
		}()
	}
	return q
}

// runOne executes one job with panic confinement.
func (q *Queue) runOne(job func()) {
	defer func() {
		if r := recover(); r != nil {
			q.panicked.Add(1)
		}
	}()
	job()
}

// Submit enqueues job for execution.  It never blocks: when the pending
// queue is full it returns ErrSaturated immediately, and after Close it
// returns ErrQueueClosed.
func (q *Queue) Submit(job func()) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	select {
	case q.jobs <- job:
		q.pending.Add(1)
		return nil
	default:
		q.rejected.Add(1)
		return ErrSaturated
	}
}

// Close stops admission, drains the pending queue, and waits for every
// running job to finish.  It is idempotent.
func (q *Queue) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		q.wg.Wait()
		return
	}
	q.closed = true
	close(q.jobs)
	q.mu.Unlock()
	q.wg.Wait()
}

// Stats returns a snapshot of the queue's counters.
func (q *Queue) Stats() QueueStats {
	return QueueStats{
		Workers:  q.workers,
		Depth:    cap(q.jobs),
		Pending:  int(q.pending.Load()),
		Running:  int(q.running.Load()),
		Done:     q.done.Load(),
		Rejected: q.rejected.Load(),
		Panicked: q.panicked.Load(),
	}
}
