package campaign

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestQueueRunsJobs submits more jobs than workers and verifies all run.
func TestQueueRunsJobs(t *testing.T) {
	q := NewQueue(4, 64)
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		if err := q.Submit(func() { ran.Add(1); wg.Done() }); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	wg.Wait()
	q.Close()
	if got := ran.Load(); got != 50 {
		t.Fatalf("ran %d jobs, want 50", got)
	}
	st := q.Stats()
	if st.Done != 50 || st.Pending != 0 || st.Running != 0 {
		t.Fatalf("stats after drain: %+v", st)
	}
}

// TestQueueSaturation fills the workers and the backlog, then checks that
// the next submission is refused with ErrSaturated rather than blocking.
func TestQueueSaturation(t *testing.T) {
	q := NewQueue(2, 2)
	release := make(chan struct{})
	started := make(chan struct{}, 2)
	blocker := func() {
		started <- struct{}{}
		<-release
	}
	// Occupy both workers...
	if err := q.Submit(blocker); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := q.Submit(blocker); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-started
	<-started
	// ...fill the backlog...
	for i := 0; i < 2; i++ {
		if err := q.Submit(func() {}); err != nil {
			t.Fatalf("Submit into backlog: %v", err)
		}
	}
	// ...and the next submission must bounce immediately.
	if err := q.Submit(func() {}); !errors.Is(err, ErrSaturated) {
		t.Fatalf("Submit on full queue: err = %v, want ErrSaturated", err)
	}
	if st := q.Stats(); st.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", st.Rejected)
	}
	close(release)
	q.Close()
	// After draining, capacity is available again — but the queue is
	// closed, so admission stays off.
	if err := q.Submit(func() {}); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("Submit after Close: err = %v, want ErrQueueClosed", err)
	}
}

// TestQueuePanicConfinement checks that a panicking job does not kill its
// worker: later jobs still run.
func TestQueuePanicConfinement(t *testing.T) {
	q := NewQueue(1, 8)
	if err := q.Submit(func() { panic("job boom") }); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	done := make(chan struct{})
	if err := q.Submit(func() { close(done) }); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("job after panic never ran; worker died")
	}
	q.Close()
	if st := q.Stats(); st.Panicked != 1 || st.Done != 2 {
		t.Fatalf("stats: %+v, want Panicked=1 Done=2", st)
	}
}

// TestQueueConcurrentSubmit hammers Submit from many goroutines (the -race
// stress for the server's admission path).
func TestQueueConcurrentSubmit(t *testing.T) {
	q := NewQueue(4, 16)
	var ran atomic.Int64
	var submitted atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				err := q.Submit(func() { ran.Add(1) })
				if err == nil {
					submitted.Add(1)
				} else if !errors.Is(err, ErrSaturated) {
					t.Errorf("Submit: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	q.Close()
	if got, want := ran.Load(), submitted.Load(); got != want {
		t.Fatalf("ran %d of %d accepted jobs", got, want)
	}
	st := q.Stats()
	if st.Done != submitted.Load() {
		t.Fatalf("Done = %d, want %d", st.Done, submitted.Load())
	}
}

// TestQueueCloseIdempotent verifies double Close is safe.
func TestQueueCloseIdempotent(t *testing.T) {
	q := NewQueue(1, 1)
	q.Close()
	q.Close()
}
