// Package campaign is the throughput-oriented execution layer of the test
// suite.  Every paper-facing procedure — the Fig 3.2–3.5 sweeps, the §1
// positive/negative correctness tables, the conformance fuzzer, regression
// baselining — is a campaign: many independent world→trace→analyze jobs
// whose *aggregate* wall-clock time, not single-run latency, is what the
// ROADMAP's "as fast as the hardware allows" target means at production
// scale.
//
// The package runs such job sets on a bounded worker pool while keeping
// the sequential contract callers rely on:
//
//   - Results are collected (Run) or delivered (Stream) in job-index
//     order, so output bytes, profile-sink emission order, and therefore
//     content-addressed profile hashes are identical for any worker count.
//   - The first failure is reported as the failure of the *lowest* failing
//     index, matching what a sequential loop that stops at the first error
//     would have surfaced.
//   - A panic in one job is confined to that job (converted into its
//     error); it does not poison the pool or abort sibling jobs.
//
// Jobs must be independent: they may not communicate, and their work must
// not depend on execution order.  Everything the suite runs through this
// pool satisfies that by construction — each job owns a fresh mpi/omp
// world in virtual time.
package campaign

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Options tunes a campaign.
type Options struct {
	// Workers bounds the number of concurrently running jobs.  Zero (the
	// common case) selects the process-wide default (DefaultWorkers);
	// negative values are treated as 1.
	Workers int
}

func (o Options) workers(n int) int {
	w := o.Workers
	if w == 0 {
		w = DefaultWorkers()
	}
	if w < 1 {
		w = 1
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// defaultWorkers holds the process-wide default worker count; zero means
// "derive from GOMAXPROCS at call time".
var defaultWorkers atomic.Int64

// DefaultWorkers returns the worker count used when Options.Workers is
// zero: the value installed with SetDefaultWorkers, or GOMAXPROCS.
func DefaultWorkers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetDefaultWorkers installs the process-wide default concurrency used by
// every campaign that does not set Options.Workers explicitly.  CLIs wire
// their -j flag here once instead of threading it through every layer;
// n <= 0 restores the GOMAXPROCS-derived default.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Error is a job failure, annotated with the index of the job that failed.
type Error struct {
	// Index is the failing job's index in [0, n).
	Index int
	// Err is the job's error (for a panicking job, a PanicError).
	Err error
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("campaign: job %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying job error.
func (e *Error) Unwrap() error { return e.Err }

// PanicError wraps a recovered job panic.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
}

// Error implements error.
func (e *PanicError) Error() string { return fmt.Sprintf("job panicked: %v", e.Value) }

// result carries one finished job through the collection stage.
type result[T any] struct {
	value T
	err   error
	done  bool
}

// pool coordinates the three roles every campaign shares — producers
// claiming job indices, producers recording finished results, and the
// single collector delivering them in strict index order.  It is the
// common machinery under runPool (goroutine workers in this process) and
// Dispatch (worker processes on the other end of a pipe): both get
// identical ordering, lowest-failing-index, and abandoned-suffix
// semantics because both run through this one implementation.
type pool[T any] struct {
	n int
	// next is the dispatch cursor; stopAt is an exclusive upper bound on
	// indices worth starting, lowered to the first failing index so a
	// campaign does not keep burning CPU on work whose results are
	// already unreachable.
	next   atomic.Int64
	stopAt atomic.Int64

	mu      sync.Mutex
	cond    *sync.Cond
	results []result[T]
	// prodDone flips when all producers have exited (covers the
	// abandoned-suffix case, where no completion signal would arrive for
	// indices that were never started).
	prodDone atomic.Bool
}

func newPool[T any](n int) *pool[T] {
	p := &pool[T]{n: n, results: make([]result[T], n)}
	p.cond = sync.NewCond(&p.mu)
	p.stopAt.Store(int64(n))
	return p
}

// claim returns the next job index to start, or -1 when none remain
// (exhausted, or abandoned past the lowest known failure).
func (p *pool[T]) claim() int {
	i := int(p.next.Add(1) - 1)
	if i >= p.n || int64(i) >= p.stopAt.Load() {
		return -1
	}
	return i
}

// record stores one finished job and wakes the collector.  A failure
// lowers stopAt to this index if it is the lowest seen so far.
func (p *pool[T]) record(i int, v T, err error) {
	if err != nil {
		for {
			cur := p.stopAt.Load()
			if int64(i) >= cur || p.stopAt.CompareAndSwap(cur, int64(i)) {
				break
			}
		}
	}
	p.mu.Lock()
	p.results[i] = result[T]{value: v, err: err, done: true}
	p.cond.Broadcast()
	p.mu.Unlock()
}

// finish signals that no further results will arrive.
func (p *pool[T]) finish() {
	p.mu.Lock()
	p.prodDone.Store(true)
	p.cond.Broadcast()
	p.mu.Unlock()
}

// collect invokes deliver(i, res) in strict index order as a contiguous
// prefix of jobs completes.  deliver runs on the collecting goroutine
// only, never concurrently.  The lowest failing index wins; anything
// producers completed beyond it is discarded unseen.
func (p *pool[T]) collect(deliver func(int, T) error) error {
	var firstErr *Error
	p.mu.Lock()
	for i := 0; i < p.n; i++ {
		for !p.results[i].done {
			if p.prodDone.Load() {
				break // abandoned suffix: job was never started
			}
			p.cond.Wait()
		}
		if !p.results[i].done {
			if firstErr == nil && p.stopAt.Load() >= int64(p.n) {
				// Producers quit with work left and no recorded failure.
				// Impossible for in-process workers (they only exit once
				// claims run dry), but a dispatch whose worker processes
				// all exited early lands here; silence would misreport a
				// truncated sweep as a complete one.
				firstErr = &Error{Index: i, Err: fmt.Errorf("job abandoned: all workers exited before running it")}
			}
			break
		}
		r := &p.results[i]
		if r.err != nil {
			firstErr = &Error{Index: i, Err: r.err}
			break
		}
		p.mu.Unlock()
		err := deliver(i, r.value)
		p.mu.Lock()
		if err != nil {
			firstErr = &Error{Index: i, Err: err}
			break
		}
	}
	// Stop producers from claiming anything further before returning.
	p.stopAt.Store(-1)
	p.mu.Unlock()
	if firstErr != nil {
		return firstErr
	}
	return nil
}

// runPool executes jobs 0..n-1 on w workers and invokes deliver(i, res)
// in strict index order as a contiguous prefix of jobs completes.  When a
// job fails, indices above the lowest known failure are abandoned
// (workers stop claiming them), matching the prefix a sequential loop
// would have executed; in-flight jobs run to completion but their results
// past the failure are discarded.
func runPool[T any](n int, opt Options, job func(int) (T, error), deliver func(int, T) error) error {
	if n <= 0 {
		return nil
	}
	workers := opt.workers(n)
	p := newPool[T](n)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := p.claim()
				if i < 0 {
					return
				}
				v, err := runJob(job, i)
				p.record(i, v, err)
			}
		}()
	}
	go func() {
		wg.Wait()
		p.finish()
	}()

	err := p.collect(deliver)
	// Let any straggling workers finish before returning so no job is
	// still touching caller state after the campaign reports completion.
	wg.Wait()
	return err
}

// runJob invokes one job with panic confinement.
func runJob[T any](job func(int) (T, error), i int) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r}
		}
	}()
	return job(i)
}

// Run executes n independent jobs on a bounded pool and returns their
// results indexed by job — element i is job i's value, regardless of
// completion order.  On failure it returns the error of the lowest
// failing index (wrapped in *Error); the returned slice is nil.
func Run[T any](n int, opt Options, job func(int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := runPool(n, opt, job, func(i int, v T) error {
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Stream executes n independent jobs on a bounded pool and calls sink in
// strict job-index order with each result — the streaming analogue of a
// sequential loop, with the loop bodies overlapped.  sink is never called
// concurrently and never out of order, so writers that produce
// byte-identical sequential output stay byte-identical at any worker
// count.  A sink error stops the campaign and is returned wrapped in
// *Error with the job index it occurred at.
func Stream[T any](n int, opt Options, job func(int) (T, error), sink func(int, T) error) error {
	return runPool(n, opt, job, sink)
}
