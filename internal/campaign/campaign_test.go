package campaign

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunCollectsInIndexOrder(t *testing.T) {
	const n = 200
	out, err := Run(n, Options{Workers: 8}, func(i int) (int, error) {
		// Finish out of order on purpose.
		time.Sleep(time.Duration((n-i)%7) * time.Microsecond)
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("got %d results, want %d", len(out), n)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestStreamDeliversSequentially(t *testing.T) {
	const n = 300
	for _, workers := range []int{1, 2, 8, 64} {
		var seen []int
		err := Stream(n, Options{Workers: workers},
			func(i int) (int, error) { return i, nil },
			func(i int, v int) error {
				if v != i {
					return fmt.Errorf("index %d delivered value %d", i, v)
				}
				seen = append(seen, i)
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(seen) != n {
			t.Fatalf("workers=%d: delivered %d of %d", workers, len(seen), n)
		}
		for i, v := range seen {
			if v != i {
				t.Fatalf("workers=%d: delivery order broken at %d: got %d", workers, i, v)
			}
		}
	}
}

func TestErrorReportsLowestFailingIndex(t *testing.T) {
	// Several jobs fail; the campaign must surface the lowest index no
	// matter which failure a worker observes first.
	for _, workers := range []int{1, 3, 16} {
		_, err := Run(100, Options{Workers: workers}, func(i int) (int, error) {
			if i == 23 || i == 24 || i == 71 {
				return 0, fmt.Errorf("boom at %d", i)
			}
			return i, nil
		})
		var ce *Error
		if !errors.As(err, &ce) {
			t.Fatalf("workers=%d: error %v is not a *campaign.Error", workers, err)
		}
		if ce.Index != 23 {
			t.Fatalf("workers=%d: failure index %d, want 23", workers, ce.Index)
		}
	}
}

func TestStreamErrorStopsDelivery(t *testing.T) {
	var delivered []int
	err := Stream(50, Options{Workers: 4},
		func(i int) (int, error) {
			if i == 10 {
				return 0, errors.New("job failure")
			}
			return i, nil
		},
		func(i int, v int) error {
			delivered = append(delivered, i)
			return nil
		})
	var ce *Error
	if !errors.As(err, &ce) || ce.Index != 10 {
		t.Fatalf("expected failure at index 10, got %v", err)
	}
	// Exactly the sequential prefix 0..9 must have been delivered.
	if len(delivered) != 10 {
		t.Fatalf("delivered %v, want exactly 0..9", delivered)
	}
	for i, v := range delivered {
		if v != i {
			t.Fatalf("delivered %v, want exactly 0..9", delivered)
		}
	}
}

func TestPanicIsConfinedToItsJob(t *testing.T) {
	var completed atomic.Int64
	_, err := Run(64, Options{Workers: 8}, func(i int) (int, error) {
		if i == 31 {
			panic("job 31 exploded")
		}
		completed.Add(1)
		return i, nil
	})
	var ce *Error
	if !errors.As(err, &ce) {
		t.Fatalf("error %v is not a *campaign.Error", err)
	}
	if ce.Index != 31 {
		t.Fatalf("failure index %d, want 31", ce.Index)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v does not unwrap to *PanicError", err)
	}
	// The pool must not have been poisoned: at minimum every job below
	// the panicking index ran to completion.
	if completed.Load() < 31 {
		t.Fatalf("only %d sibling jobs completed", completed.Load())
	}
}

func TestSinkErrorIsWrapped(t *testing.T) {
	sentinel := errors.New("sink rejected")
	err := Stream(10, Options{Workers: 2},
		func(i int) (int, error) { return i, nil },
		func(i int, v int) error {
			if i == 4 {
				return sentinel
			}
			return nil
		})
	var ce *Error
	if !errors.As(err, &ce) || ce.Index != 4 || !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want *Error{Index: 4} wrapping sentinel", err)
	}
}

func TestZeroAndTinyCampaigns(t *testing.T) {
	if err := Stream(0, Options{}, func(i int) (int, error) { return 0, nil },
		func(int, int) error { t.Fatal("sink called for empty campaign"); return nil }); err != nil {
		t.Fatal(err)
	}
	out, err := Run(1, Options{Workers: 16}, func(i int) (string, error) { return "only", nil })
	if err != nil || len(out) != 1 || out[0] != "only" {
		t.Fatalf("singleton campaign: %v %v", out, err)
	}
}

func TestDefaultWorkersOverride(t *testing.T) {
	old := DefaultWorkers()
	SetDefaultWorkers(3)
	if DefaultWorkers() != 3 {
		t.Fatalf("DefaultWorkers = %d, want 3", DefaultWorkers())
	}
	SetDefaultWorkers(0)
	if DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers = %d after reset", DefaultWorkers())
	}
	SetDefaultWorkers(old)
}

// TestStress hammers the pool with randomized job durations, sporadic
// errors and panics under the race detector: errors must carry the right
// index, successful campaigns must deliver everything in order, and no
// iteration may deadlock.
func TestStress(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 60; round++ {
		n := 1 + rng.Intn(120)
		workers := 1 + rng.Intn(16)
		failAt := -1
		if rng.Intn(3) == 0 && n > 2 {
			failAt = rng.Intn(n)
		}
		panicAt := -1
		if rng.Intn(5) == 0 && n > 2 {
			panicAt = rng.Intn(n)
		}
		var delivered atomic.Int64
		err := Stream(n, Options{Workers: workers},
			func(i int) (int, error) {
				if rng := i % 13; rng == 0 {
					time.Sleep(time.Duration(i%5) * time.Microsecond)
				}
				if i == panicAt {
					panic(i)
				}
				if i == failAt {
					return 0, fmt.Errorf("fail %d", i)
				}
				return i, nil
			},
			func(i int, v int) error {
				if int64(i) != delivered.Load() {
					return fmt.Errorf("out-of-order delivery: got %d, want %d", i, delivered.Load())
				}
				delivered.Add(1)
				return nil
			})
		wantFail := -1
		switch {
		case failAt >= 0 && panicAt >= 0:
			wantFail = min(failAt, panicAt)
		case failAt >= 0:
			wantFail = failAt
		case panicAt >= 0:
			wantFail = panicAt
		}
		if wantFail < 0 {
			if err != nil {
				t.Fatalf("round %d: unexpected error %v", round, err)
			}
			if delivered.Load() != int64(n) {
				t.Fatalf("round %d: delivered %d of %d", round, delivered.Load(), n)
			}
			continue
		}
		var ce *Error
		if !errors.As(err, &ce) {
			t.Fatalf("round %d: error %v is not *campaign.Error", round, err)
		}
		if ce.Index != wantFail {
			t.Fatalf("round %d: failure index %d, want %d", round, ce.Index, wantFail)
		}
		if delivered.Load() != int64(wantFail) {
			t.Fatalf("round %d: delivered %d results before failure at %d", round, delivered.Load(), wantFail)
		}
	}
}
