package campaign

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"testing"
)

// TestMain doubles the test binary as a dispatch worker: when the
// helper-process env var is set, the process speaks the worker protocol
// on stdin/stdout instead of running tests — the standard trick for
// exercising real child processes without a separate binary.
func TestMain(m *testing.M) {
	switch os.Getenv("CAMPAIGN_TEST_WORKER") {
	case "":
		os.Exit(m.Run())
	case "square":
		err := ServeWorker(os.Stdin, os.Stdout, 4, func(job json.RawMessage) (json.RawMessage, error) {
			var n int
			if err := json.Unmarshal(job, &n); err != nil {
				return nil, err
			}
			if n < 0 {
				return nil, fmt.Errorf("negative input %d", n)
			}
			if n == 1000 {
				panic("worker job panic")
			}
			return json.Marshal(n * n)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	case "crash":
		// Answer the first request, then die without responding to
		// anything else — the crash-confinement fixture.
		dec := json.NewDecoder(os.Stdin)
		enc := json.NewEncoder(os.Stdout)
		var req Request
		if err := dec.Decode(&req); err != nil {
			os.Exit(3)
		}
		enc.Encode(&Response{ID: req.ID, Result: req.Job})
		var second Request
		dec.Decode(&second) // accept one more request, never answer it
		os.Exit(3)
	default:
		os.Exit(2)
	}
}

// workerOpts builds DispatchOptions that re-exec this test binary in the
// given helper mode.
func workerOpts(t *testing.T, mode string, procs, window int) DispatchOptions {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return DispatchOptions{
		Procs:  procs,
		Window: window,
		Argv:   []string{exe},
		Env:    []string{"CAMPAIGN_TEST_WORKER=" + mode},
		Stderr: io.Discard,
	}
}

func encodeInt(i int) (json.RawMessage, error) { return json.Marshal(i) }

func TestDispatchDeliversInOrder(t *testing.T) {
	const n = 25
	for _, procs := range []int{1, 3} {
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			var got []int
			err := Dispatch(n, workerOpts(t, "square", procs, 4), encodeInt,
				func(i int, result json.RawMessage) error {
					var v int
					if err := json.Unmarshal(result, &v); err != nil {
						return err
					}
					if v != i*i {
						return fmt.Errorf("job %d returned %d", i, v)
					}
					got = append(got, i)
					return nil
				})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != n {
				t.Fatalf("delivered %d of %d", len(got), n)
			}
			for i, idx := range got {
				if i != idx {
					t.Fatalf("out of order at %d: %d", i, idx)
				}
			}
		})
	}
}

// TestDispatchMatchesInProcessOutput is the tentpole determinism claim at
// the package level: a Dispatch sweep and an in-process Stream sweep over
// the same jobs must drive a byte-producing sink identically.
func TestDispatchMatchesInProcessOutput(t *testing.T) {
	const n = 30
	render := func(runner func(sink func(int, int) error) error) string {
		var buf bytes.Buffer
		err := runner(func(i, v int) error {
			fmt.Fprintf(&buf, "job %d -> %d\n", i, v)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	inProc := render(func(sink func(int, int) error) error {
		return Stream(n, Options{Workers: 4},
			func(i int) (int, error) { return i * i, nil }, sink)
	})
	dispatched := render(func(sink func(int, int) error) error {
		return Dispatch(n, workerOpts(t, "square", 2, 3), encodeInt,
			func(i int, result json.RawMessage) error {
				var v int
				if err := json.Unmarshal(result, &v); err != nil {
					return err
				}
				return sink(i, v)
			})
	})
	if inProc != dispatched {
		t.Fatalf("dispatch output diverges from in-process:\n%s\nvs\n%s", inProc, dispatched)
	}
}

func TestDispatchJobErrorReportsLowestIndex(t *testing.T) {
	// Jobs 7 and 13 fail (negative input); the campaign must surface 7.
	err := Dispatch(20, workerOpts(t, "square", 2, 2),
		func(i int) (json.RawMessage, error) {
			if i == 7 || i == 13 {
				return json.Marshal(-i)
			}
			return json.Marshal(i)
		},
		func(i int, result json.RawMessage) error { return nil })
	var ce *Error
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v; want *Error", err)
	}
	if ce.Index != 7 {
		t.Fatalf("failing index = %d; want 7", ce.Index)
	}
	if !strings.Contains(ce.Err.Error(), "negative input") {
		t.Fatalf("err = %v", ce.Err)
	}
}

func TestDispatchWorkerPanicConfined(t *testing.T) {
	// Input 1000 makes the worker's handler panic; ServeWorker must
	// convert it to a job error, not kill the worker.
	delivered := 0
	err := Dispatch(5, workerOpts(t, "square", 1, 1),
		func(i int) (json.RawMessage, error) {
			if i == 3 {
				return json.Marshal(1000)
			}
			return json.Marshal(i)
		},
		func(i int, result json.RawMessage) error { delivered++; return nil })
	var ce *Error
	if !errors.As(err, &ce) || ce.Index != 3 {
		t.Fatalf("err = %v; want *Error at 3", err)
	}
	if !strings.Contains(ce.Err.Error(), "panic") {
		t.Fatalf("err = %v; want panic message", ce.Err)
	}
	if delivered != 3 {
		t.Fatalf("delivered %d jobs before the failure; want 3", delivered)
	}
}

// TestDispatchSurvivesWorkerCrash: one worker answers a single request
// and dies; its unanswered in-flight job must fail at its own index
// while the other worker keeps the sweep going — and the error must name
// the worker death, not hang or succeed silently.
func TestDispatchSurvivesWorkerCrash(t *testing.T) {
	err := Dispatch(10, workerOpts(t, "crash", 1, 1), encodeInt,
		func(i int, result json.RawMessage) error { return nil })
	var ce *Error
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v; want *Error from the crashed worker", err)
	}
	msg := ce.Err.Error()
	if !strings.Contains(msg, "worker") {
		t.Fatalf("err = %v; want a worker-death error", ce.Err)
	}
}

// TestDispatchCrashedWorkerDoesNotPoisonSurvivors: with two workers, one
// of which crashes after its first answer, every index the survivor
// handles still completes; only the crashed worker's in-flight jobs can
// fail.  We can't control which worker claims which index, so assert the
// weaker — but load-bearing — property: the sweep terminates, and any
// error is a worker-death at some index, not a hang or a protocol error.
func TestDispatchCrashedWorkerDoesNotPoisonSurvivors(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	derr := Dispatch(12, DispatchOptions{
		Procs:  2,
		Window: 1,
		Argv:   []string{exe},
		Env:    []string{"CAMPAIGN_TEST_WORKER=crash"},
		Stderr: io.Discard,
	}, encodeInt, func(i int, result json.RawMessage) error { delivered++; return nil })
	// Both workers crash after one answer each, so with 12 jobs the sweep
	// must fail — but deterministically, with a worker-death *Error*, and
	// with every job before the first failure delivered.
	var ce *Error
	if !errors.As(derr, &ce) {
		t.Fatalf("err = %v; want *Error", derr)
	}
	if delivered > 12 || delivered < ce.Index-1 {
		t.Fatalf("delivered %d with failure at %d", delivered, ce.Index)
	}
}

func TestDispatchEmptyArgvAndZeroJobs(t *testing.T) {
	if err := Dispatch(0, DispatchOptions{}, encodeInt, nil); err != nil {
		t.Fatalf("zero jobs: %v", err)
	}
	err := Dispatch(3, DispatchOptions{}, encodeInt,
		func(i int, r json.RawMessage) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "argv") {
		t.Fatalf("empty argv: %v", err)
	}
}

func TestDispatchUnstartableWorker(t *testing.T) {
	err := Dispatch(3, DispatchOptions{
		Argv:   []string{"/nonexistent/worker/binary"},
		Stderr: io.Discard,
	}, encodeInt, func(i int, r json.RawMessage) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "start worker") {
		t.Fatalf("err = %v; want start-worker failure", err)
	}
}

func TestServeWorkerDirect(t *testing.T) {
	var in bytes.Buffer
	enc := json.NewEncoder(&in)
	for i := 0; i < 5; i++ {
		blob, _ := json.Marshal(i)
		enc.Encode(&Request{ID: i, Job: blob})
	}
	var out bytes.Buffer
	err := ServeWorker(&in, &out, 2, func(job json.RawMessage) (json.RawMessage, error) {
		var n int
		json.Unmarshal(job, &n)
		if n == 2 {
			return nil, errors.New("job two fails")
		}
		return json.Marshal(n + 100)
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]Response{}
	dec := json.NewDecoder(&out)
	for {
		var r Response
		if err := dec.Decode(&r); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		seen[r.ID] = r
	}
	if len(seen) != 5 {
		t.Fatalf("got %d responses; want 5", len(seen))
	}
	for i := 0; i < 5; i++ {
		r := seen[i]
		if i == 2 {
			if r.Err != "job two fails" {
				t.Fatalf("job 2: %+v", r)
			}
			continue
		}
		var v int
		if err := json.Unmarshal(r.Result, &v); err != nil || v != i+100 {
			t.Fatalf("job %d: %+v", i, r)
		}
	}
}

func TestServeWorkerMalformedStream(t *testing.T) {
	err := ServeWorker(strings.NewReader(`{"id":0}{bad json`), io.Discard, 1,
		func(job json.RawMessage) (json.RawMessage, error) { return job, nil })
	if err == nil || !strings.Contains(err.Error(), "read request") {
		t.Fatalf("err = %v; want read-request failure", err)
	}
}
