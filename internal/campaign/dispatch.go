package campaign

// Process-level fan-out: the same deterministic campaign contract —
// index-ordered delivery, lowest-failing-index errors, per-job failure
// confinement — extended past one process.  Dispatch shells out to M
// worker processes speaking a line-delimited JSON protocol over
// stdin/stdout and multiplexes jobs onto them; ServeWorker is the other
// side of the pipe, run by a CLI's `worker` subcommand.  A worker
// process that crashes fails the jobs it had in flight (they surface as
// ordinary job errors at their indices), not the dispatcher: surviving
// workers keep draining, and because workers write results through the
// shared on-disk cache (internal/rescache), a rerun after a crash
// resumes where the completed prefix stopped instead of recomputing it.
//
// Protocol (one JSON object per line, both directions):
//
//	parent → worker: {"id": 17, "job": <opaque payload>}
//	worker → parent: {"id": 17, "result": <opaque payload>}
//	                 {"id": 17, "err": "message"}        on job failure
//
// Ids echo the job index; responses may arrive in any order (workers run
// jobs concurrently on their internal pool).  The parent closes the
// worker's stdin when no work remains; the worker finishes its in-flight
// jobs, flushes its responses, and exits 0.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
)

// Request is one parent→worker job assignment.
type Request struct {
	// ID is the job index; the response echoes it.
	ID int `json:"id"`
	// Job is the caller-defined payload (opaque to the protocol).
	Job json.RawMessage `json:"job,omitempty"`
}

// Response is one worker→parent job result.
type Response struct {
	// ID echoes the request's job index.
	ID int `json:"id"`
	// Err is the job's failure message; empty on success.
	Err string `json:"err,omitempty"`
	// Result is the caller-defined result payload; nil on failure.
	Result json.RawMessage `json:"result,omitempty"`
}

// DispatchOptions tunes a process fan-out.
type DispatchOptions struct {
	// Procs is the number of worker processes (minimum 1).
	Procs int
	// Window bounds the requests in flight per worker; set it to the
	// worker's internal -j so its pool stays busy (minimum 1).
	Window int
	// Argv is the worker command line (Argv[0] is the binary).
	Argv []string
	// Env is appended to the parent environment for each worker.
	Env []string
	// Stderr receives worker stderr (default os.Stderr), so worker
	// diagnostics and cache statistics stay visible.  When it is not an
	// *os.File, Dispatch serializes the workers' writes onto it.
	Stderr io.Writer
}

// lockedWriter serializes the stderr streams of multiple worker
// processes onto one destination.  os/exec copies a worker's stderr on
// its own goroutine whenever the writer is not an *os.File, so a shared
// bytes.Buffer (tests, log capture) would otherwise race.
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

func (o DispatchOptions) procs() int {
	if o.Procs < 1 {
		return 1
	}
	return o.Procs
}

func (o DispatchOptions) window() int {
	if o.Window < 1 {
		return 1
	}
	return o.Window
}

// workerProc is one live worker process: an encoder feeding its stdin, a
// reader goroutine routing its responses, and the pending-call table
// joining them.
type workerProc struct {
	cmd   *exec.Cmd
	stdin io.WriteCloser
	done  chan struct{} // closed by readLoop after the process is reaped

	wmu sync.Mutex // serializes request encoding onto stdin
	enc *json.Encoder

	mu      sync.Mutex
	pending map[int]chan Response
	err     error // set once when the process dies; guards new calls
}

// startWorker launches one worker process and its response router.
func startWorker(opt DispatchOptions) (*workerProc, error) {
	cmd := exec.Command(opt.Argv[0], opt.Argv[1:]...)
	cmd.Env = append(os.Environ(), opt.Env...)
	if opt.Stderr != nil {
		cmd.Stderr = opt.Stderr
	} else {
		cmd.Stderr = os.Stderr
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	wp := &workerProc{
		cmd:     cmd,
		stdin:   stdin,
		done:    make(chan struct{}),
		enc:     json.NewEncoder(stdin),
		pending: make(map[int]chan Response),
	}
	go wp.readLoop(stdout)
	return wp, nil
}

// readLoop routes responses to their waiting calls until the process
// closes its stdout (exit or crash), then fails every pending call.
// The cmd.Wait on the exit path also joins os/exec's stderr-copy
// goroutine, so once done closes the worker has stopped writing to
// opt.Stderr.
func (wp *workerProc) readLoop(stdout io.Reader) {
	defer close(wp.done)
	dec := json.NewDecoder(stdout)
	for {
		var r Response
		if err := dec.Decode(&r); err != nil {
			wErr := wp.cmd.Wait()
			switch {
			case err == io.EOF && wErr == nil:
				err = fmt.Errorf("worker exited before responding")
			case wErr != nil:
				err = fmt.Errorf("worker died: %v", wErr)
			default:
				err = fmt.Errorf("worker protocol error: %v", err)
			}
			wp.fail(err)
			return
		}
		wp.mu.Lock()
		ch := wp.pending[r.ID]
		delete(wp.pending, r.ID)
		wp.mu.Unlock()
		if ch != nil {
			ch <- r
		}
	}
}

// fail marks the process dead and wakes every pending call with the
// death reason.
func (wp *workerProc) fail(err error) {
	wp.mu.Lock()
	if wp.err == nil {
		wp.err = err
	}
	pending := wp.pending
	wp.pending = make(map[int]chan Response)
	wp.mu.Unlock()
	for _, ch := range pending {
		close(ch)
	}
}

// call sends one request and waits for its response.  On worker death
// (before or during the call) it returns the death reason — the caller
// records it as this job's error, which is exactly the crash-confinement
// contract: a dead worker fails its in-flight indices, nothing else.
func (wp *workerProc) call(req Request) (Response, error) {
	ch := make(chan Response, 1)
	wp.mu.Lock()
	if wp.err != nil {
		err := wp.err
		wp.mu.Unlock()
		return Response{}, err
	}
	wp.pending[req.ID] = ch
	wp.mu.Unlock()

	wp.wmu.Lock()
	err := wp.enc.Encode(&req)
	wp.wmu.Unlock()
	if err != nil {
		// The write side broke; readLoop will observe the death and fail
		// pending calls (including this one) with the wait error.
		wp.mu.Lock()
		delete(wp.pending, req.ID)
		wp.mu.Unlock()
		return Response{}, fmt.Errorf("worker write: %v", err)
	}
	r, ok := <-ch
	if !ok {
		wp.mu.Lock()
		err := wp.err
		wp.mu.Unlock()
		return Response{}, err
	}
	return r, nil
}

// alive reports whether the process can still accept calls.
func (wp *workerProc) alive() bool {
	wp.mu.Lock()
	defer wp.mu.Unlock()
	return wp.err == nil
}

// shutdown closes the worker's stdin (the protocol's end-of-work signal)
// and lets readLoop reap the process.
func (wp *workerProc) shutdown() { wp.stdin.Close() }

// Dispatch executes n jobs across worker processes and invokes deliver
// in strict job-index order — the multi-process analogue of Stream.
// encode(i) builds job i's request payload; deliver(i, result) receives
// the raw response payload.  All sequential-contract guarantees of Run
// and Stream hold: delivery order, byte-identical output for any
// Procs × Window, lowest-failing-index error semantics (wrapped in
// *Error), and failure confinement — an encode error, a job error
// reported by a worker, or a worker crash fails that job's index, while
// jobs on surviving workers continue until the ordered collector stops
// at the lowest failure.
//
// Dispatch returns a plain error (not *Error) only when no worker
// process could be started at all.
func Dispatch(n int, opt DispatchOptions, encode func(i int) (json.RawMessage, error), deliver func(i int, result json.RawMessage) error) error {
	if n <= 0 {
		return nil
	}
	if len(opt.Argv) == 0 {
		return fmt.Errorf("campaign: dispatch: empty worker argv")
	}
	if opt.Stderr != nil {
		if _, isFile := opt.Stderr.(*os.File); !isFile {
			opt.Stderr = &lockedWriter{w: opt.Stderr}
		}
	}

	procs := opt.procs()
	if procs > n {
		procs = n
	}
	var workers []*workerProc
	for w := 0; w < procs; w++ {
		wp, err := startWorker(opt)
		if err != nil {
			if len(workers) == 0 {
				return fmt.Errorf("campaign: dispatch: start worker: %w", err)
			}
			break // run degraded on the workers that did start
		}
		workers = append(workers, wp)
	}

	p := newPool[json.RawMessage](n)
	var wg sync.WaitGroup
	for _, wp := range workers {
		for f := 0; f < opt.window(); f++ {
			wg.Add(1)
			go func(wp *workerProc) {
				defer wg.Done()
				for wp.alive() {
					i := p.claim()
					if i < 0 {
						return
					}
					payload, err := encode(i)
					if err != nil {
						p.record(i, nil, err)
						continue
					}
					resp, err := wp.call(Request{ID: i, Job: payload})
					switch {
					case err != nil:
						p.record(i, nil, err)
					case resp.Err != "":
						p.record(i, nil, fmt.Errorf("%s", resp.Err))
					default:
						p.record(i, resp.Result, nil)
					}
				}
			}(wp)
		}
	}
	go func() {
		wg.Wait()
		p.finish()
	}()

	err := p.collect(deliver)
	wg.Wait()
	for _, wp := range workers {
		wp.shutdown()
	}
	// Wait for every worker to be reaped so no stderr-copy goroutine
	// outlives Dispatch — the caller may inspect opt.Stderr immediately.
	for _, wp := range workers {
		<-wp.done
	}
	return err
}

// ServeWorker runs the worker side of the Dispatch protocol: read
// requests from in, execute them concurrently on a bounded pool of
// `workers` goroutines (minimum 1), and write one response per request
// to out.  handle receives the request payload and returns the response
// payload; a panic inside handle is confined to that request and
// reported as its error, mirroring the in-process pool.  ServeWorker
// returns when in reaches EOF and every in-flight job has responded —
// the normal end of a dispatch — or on a malformed request stream.
func ServeWorker(in io.Reader, out io.Writer, workers int, handle func(job json.RawMessage) (json.RawMessage, error)) error {
	if workers < 1 {
		workers = 1
	}
	dec := json.NewDecoder(in)
	enc := json.NewEncoder(out)
	var wmu sync.Mutex // serializes response encoding onto out

	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			wg.Wait()
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("campaign: worker: read request: %w", err)
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(req Request) {
			defer wg.Done()
			defer func() { <-sem }()
			result, err := handleJob(handle, req.Job)
			resp := Response{ID: req.ID}
			if err != nil {
				resp.Err = err.Error()
			} else {
				resp.Result = result
			}
			wmu.Lock()
			// A write failure means the parent is gone; nothing useful
			// remains to report it to, and stdin EOF ends the loop.
			_ = enc.Encode(&resp)
			wmu.Unlock()
		}(req)
	}
}

// handleJob invokes handle with panic confinement.
func handleJob(handle func(json.RawMessage) (json.RawMessage, error), job json.RawMessage) (result json.RawMessage, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r}
		}
	}()
	return handle(job)
}
