// Package core implements the heart of the APART Test Suite: the
// performance property functions (paper §3.1.5), the property registry
// that drives test-program generation (§3.2), and the composite test
// program builders (§3.3).
//
// A performance property function is a routine which, when executed by all
// participants of a parallel construct, exhibits exactly one well-defined
// performance property (late sender, imbalance at barrier, …) whose
// severity is controlled by its parameters.  Following the paper, most
// functions take a generic distribution (function + descriptor) describing
// the work imbalance, plus a repetition count; pattern-specific functions
// (late_sender and friends) instead take explicit basework/extrawork
// parameters because they require one particular distribution shape.
//
// Every property function wraps its body in a trace region named after the
// property, so the analyzer's call-graph pane can localize each finding at
// "<property>/<MPI call>" exactly as EXPERT does in paper Fig 3.5.
package core
