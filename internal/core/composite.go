package core

import (
	"fmt"

	"repro/internal/distr"
	"repro/internal/mpi"
	"repro/internal/omp"
)

// Composite test programs (paper §3.3): programs invoking more than one
// property function, used to test whether a tool can find problems that
// appear only in parts of a program, rank multiple coexisting problems,
// and attribute concurrent problems to the right process groups.

// CompositeConfig scales a composite program.
type CompositeConfig struct {
	// Basework is the per-iteration base work in seconds.
	Basework float64
	// Extrawork is the pathological extra work in seconds.
	Extrawork float64
	// Reps is the repetition count per property.
	Reps int
}

// DefaultComposite returns the configuration used by the examples and
// benchmarks.
func DefaultComposite() CompositeConfig {
	return CompositeConfig{
		Basework:  DefaultBasework,
		Extrawork: DefaultExtrawork,
		Reps:      DefaultReps,
	}
}

func (cc CompositeConfig) withDefaults() CompositeConfig {
	if cc.Basework <= 0 {
		cc.Basework = DefaultBasework
	}
	if cc.Extrawork <= 0 {
		cc.Extrawork = DefaultExtrawork
	}
	if cc.Reps <= 0 {
		cc.Reps = DefaultReps
	}
	return cc
}

// CompositeMPIProperties is the set exercised by CompositeAllMPI, in
// execution order — the paper's Figure 3.3 program ("simply calls all
// currently defined MPI property functions with different severities and
// repetition factors").
var CompositeMPIProperties = []string{
	"late_sender",
	"late_sender_nonblocking",
	"late_receiver",
	"imbalance_at_mpi_barrier",
	"imbalance_at_mpi_alltoall",
	"imbalance_at_mpi_allreduce",
	"imbalance_at_mpi_allgather",
	"late_broadcast",
	"late_scatter",
	"late_scatterv",
	"early_reduce",
	"early_gather",
	"early_gatherv",
}

// CompositeAllMPI calls every MPI property function back to back with
// varying severities, reproducing the Fig 3.3 program.  Property i runs
// with extra work scaled by (1 + i mod 3)/2 so severities differ, as in
// the figure.
func CompositeAllMPI(c *mpi.Comm, cc CompositeConfig) {
	cc = cc.withDefaults()
	c.Begin("composite_all_mpi")
	defer c.End()
	for i, name := range CompositeMPIProperties {
		spec, ok := Get(name)
		if !ok {
			panic(fmt.Sprintf("core: composite references unknown property %q", name))
		}
		a := spec.Defaults()
		scale := float64(1+i%3) / 2
		for k := range a.Float {
			switch k {
			case "basework", "rootwork":
				a.Float[k] = cc.Basework
			default:
				a.Float[k] = cc.Extrawork * scale
			}
		}
		if _, ok := a.Int["r"]; ok {
			a.Int["r"] = cc.Reps
		}
		if ds, ok := a.Distr["distr"]; ok {
			ds.Low = cc.Basework
			ds.High = cc.Basework + cc.Extrawork*scale
			a.Distr["distr"] = ds
		}
		spec.Run(Env{Comm: c, Ctx: c.Ctx()}, a)
		c.Barrier() // separate the property phases, as in the figure
	}
}

// LowerHalfProperties and UpperHalfProperties are the two property sets of
// the Fig 3.4/3.5 program.  The upper half runs late_broadcast with
// communicator-local root 1, which on a 16-rank world corresponds to world
// rank 9 — the paper's EXPERT screenshot shows exactly that localization
// ("MPI ranks 8 and 9 to 15 … root rank 1 on the communicator with the
// upper half").
var (
	LowerHalfProperties = []string{
		"late_sender",
		"imbalance_at_mpi_barrier",
		"early_reduce",
	}
	UpperHalfProperties = []string{
		"late_broadcast",
		"late_receiver",
		"imbalance_at_mpi_alltoall",
	}
)

// UpperHalfBcastRoot is the communicator-local root used by the upper
// half's late_broadcast, matching the paper's setup.
const UpperHalfBcastRoot = 1

// TwoCommunicators splits the world into lower and upper halves and runs a
// different property set in each, concurrently — the Fig 3.4 program.  It
// returns the world rank boundary (start of the upper half).
func TwoCommunicators(c *mpi.Comm, cc CompositeConfig) int {
	cc = cc.withDefaults()
	half := c.Size() / 2
	color := 0
	if c.Rank() >= half {
		color = 1
	}
	c.Begin("two_communicators")
	defer c.End()
	sub := c.Split(color, c.Rank())
	names := LowerHalfProperties
	if color == 1 {
		names = UpperHalfProperties
	}
	for _, name := range names {
		spec, ok := Get(name)
		if !ok {
			panic(fmt.Sprintf("core: unknown property %q", name))
		}
		a := spec.Defaults()
		for k := range a.Float {
			switch k {
			case "basework", "rootwork":
				a.Float[k] = cc.Basework
			default:
				a.Float[k] = cc.Extrawork
			}
		}
		if _, ok := a.Int["r"]; ok {
			a.Int["r"] = cc.Reps
		}
		if _, ok := a.Int["root"]; ok && name == "late_broadcast" {
			a.Int["root"] = UpperHalfBcastRoot
		}
		if ds, ok := a.Distr["distr"]; ok {
			ds.Low = cc.Basework
			ds.High = cc.Basework + cc.Extrawork
			a.Distr["distr"] = ds
		}
		spec.Run(Env{Comm: sub, Ctx: c.Ctx()}, a)
		sub.Barrier()
	}
	c.Barrier()
	return half
}

// CompositeHybrid mixes MPI and OpenMP property functions in one program
// (the §3.3 closing scenario): every rank first exhibits OpenMP-level
// imbalance, then the world exhibits MPI-level late senders, then the
// hybrid cause-and-effect property runs.
func CompositeHybrid(c *mpi.Comm, opt omp.Options, cc CompositeConfig) {
	cc = cc.withDefaults()
	c.Begin("composite_hybrid")
	defer c.End()
	dd := distr.Val2{Low: cc.Basework, High: cc.Basework + cc.Extrawork}
	ImbalanceAtOMPBarrier(c.Ctx(), opt, distr.Block2, dd, cc.Reps)
	c.Barrier()
	LateSender(c, cc.Basework, cc.Extrawork, cc.Reps)
	c.Barrier()
	HybridOMPImbalanceCausesLateSender(c, opt, cc.Basework, cc.Extrawork, cc.Reps)
	c.Barrier()
}
