package core

import (
	"repro/internal/distr"
	"repro/internal/mpi"
	"repro/internal/omp"
	"repro/internal/xctx"
)

// Negative test programs (paper §1, "negative correctness"): synthetic
// programs with no performance problem beyond the intrinsic cost of the
// operations they use.  A correct analysis tool must not report findings
// above its noise threshold for these.

// NegativeBalancedMPI runs perfectly balanced work interleaved with the
// same MPI operations the positive tests use: every rank computes the same
// amount, so barriers, collectives and the send-receive pattern complete
// without wait states.
func NegativeBalancedMPI(c *mpi.Comm, work float64, r int) {
	c.Begin("negative_balanced_mpi")
	defer c.End()
	dd := distr.Val1{Val: work}
	buf := c.BaseBuf()
	defer mpi.FreeBuf(buf)
	sbuf := c.BaseBuf()
	rbuf := c.BaseBuf()
	defer mpi.FreeBuf(sbuf)
	defer mpi.FreeBuf(rbuf)
	for i := 0; i < r; i++ {
		c.DoWork(distr.Same, dd, 1.0)
		c.Barrier()
		c.DoWork(distr.Same, dd, 1.0)
		mpi.PatternSendRecv(c, buf, mpi.DirUp, mpi.PatternOpts{})
		c.DoWork(distr.Same, dd, 1.0)
		c.Bcast(buf, 0)
		c.DoWork(distr.Same, dd, 1.0)
		c.Allreduce(sbuf, rbuf, mpi.OpSum)
	}
}

// NegativeBalancedOMP is the OpenMP counterpart: balanced thread work with
// barriers and a balanced static loop.
func NegativeBalancedOMP(ctx *xctx.Ctx, opt omp.Options, work float64, r int) {
	ctx.Enter("negative_balanced_omp")
	defer ctx.Exit()
	dd := distr.Val1{Val: work}
	omp.Parallel(ctx, opt, func(tc *omp.TC) {
		for i := 0; i < r; i++ {
			tc.DoWork(distr.Same, dd, 1.0)
			tc.Barrier()
			n := tc.NumThreads()
			tc.For(n, omp.ForOpt{Sched: omp.Static}, func(j int) {
				tc.Work(work)
			})
		}
	})
}

// NegativeBalancedHybrid combines both: balanced OpenMP regions inside
// balanced MPI phases.
func NegativeBalancedHybrid(c *mpi.Comm, opt omp.Options, work float64, r int) {
	c.Begin("negative_balanced_hybrid")
	defer c.End()
	dd := distr.Val1{Val: work}
	for i := 0; i < r; i++ {
		omp.Parallel(c.Ctx(), opt, func(tc *omp.TC) {
			tc.DoWork(distr.Same, dd, 1.0)
		})
		c.Barrier()
	}
}
