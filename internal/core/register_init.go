package core

// This file registers every built-in property function with the registry.
// The registrations are the machine-readable form of the paper's
// "currently implemented performance property functions" list (§3.1.5),
// extended with the hybrid and additional properties foreseen as future
// work (§5).  The single-property program generator (§3.2) and the CLI
// driver derive flags and main programs from these specs.

func init() {
	registerMPIProps()
	registerOMPProps()
	registerHybridProps()
}

func registerMPIProps() {
	mustRegister(&Spec{
		Name: "late_sender", Paradigm: ParadigmMPI,
		Help: "receivers block because the matching sends start too late",
		Params: []Param{
			fparam("basework", DefaultBasework, "base work per iteration [s]"),
			fparam("extrawork", DefaultExtrawork, "extra work of the sending (even) ranks [s]"),
			iparam("r", DefaultReps, "repetitions"),
		},
		Run: func(env Env, a Args) {
			LateSender(env.Comm, a.F("basework"), a.F("extrawork"), a.I("r"))
		},
		ExpectedWait: func(p, _ int, a Args) float64 {
			return float64(p/2) * a.F("extrawork") * float64(a.I("r"))
		},
	})
	mustRegister(&Spec{
		Name: "late_sender_nonblocking", Paradigm: ParadigmMPI,
		Help: "late sender realized with MPI_Isend/MPI_Irecv/MPI_Wait",
		Params: []Param{
			fparam("basework", DefaultBasework, "base work per iteration [s]"),
			fparam("extrawork", DefaultExtrawork, "extra work of the sending (even) ranks [s]"),
			iparam("r", DefaultReps, "repetitions"),
		},
		Run: func(env Env, a Args) {
			LateSenderNonBlocking(env.Comm, a.F("basework"), a.F("extrawork"), a.I("r"))
		},
		ExpectedWait: func(p, _ int, a Args) float64 {
			return float64(p/2) * a.F("extrawork") * float64(a.I("r"))
		},
	})
	mustRegister(&Spec{
		Name: "late_receiver", Paradigm: ParadigmMPI,
		Help: "synchronous senders block because the receivers arrive late",
		Params: []Param{
			fparam("basework", DefaultBasework, "base work per iteration [s]"),
			fparam("extrawork", DefaultExtrawork, "extra work of the receiving (odd) ranks [s]"),
			iparam("r", DefaultReps, "repetitions"),
		},
		Run: func(env Env, a Args) {
			LateReceiver(env.Comm, a.F("basework"), a.F("extrawork"), a.I("r"))
		},
		ExpectedWait: func(p, _ int, a Args) float64 {
			return float64(p/2) * a.F("extrawork") * float64(a.I("r"))
		},
	})
	mustRegister(&Spec{
		Name: "imbalance_at_mpi_barrier", Paradigm: ParadigmMPI,
		Help: "distribution-driven work imbalance in front of MPI_Barrier",
		Params: []Param{
			dparam("distr", defaultImbalanceDistr, "work distribution over ranks"),
			iparam("r", DefaultReps, "repetitions"),
		},
		Run: func(env Env, a Args) {
			df, dd := a.D("distr")
			ImbalanceAtMPIBarrier(env.Comm, df, dd, a.I("r"))
		},
		ExpectedWait: func(p, _ int, a Args) float64 {
			return imbalanceWait(a.Distr["distr"], p, a.I("r"))
		},
	})
	mustRegister(&Spec{
		Name: "imbalance_at_mpi_alltoall", Paradigm: ParadigmMPI,
		Help: "work imbalance in front of the N×N exchange MPI_Alltoall",
		Params: []Param{
			dparam("distr", defaultImbalanceDistr, "work distribution over ranks"),
			iparam("r", DefaultReps, "repetitions"),
		},
		Run: func(env Env, a Args) {
			df, dd := a.D("distr")
			ImbalanceAtMPIAlltoall(env.Comm, df, dd, a.I("r"))
		},
		ExpectedWait: func(p, _ int, a Args) float64 {
			return imbalanceWait(a.Distr["distr"], p, a.I("r"))
		},
	})
	mustRegister(&Spec{
		Name: "imbalance_at_mpi_allreduce", Paradigm: ParadigmMPI,
		Help: "work imbalance in front of MPI_Allreduce (extension)",
		Params: []Param{
			dparam("distr", defaultImbalanceDistr, "work distribution over ranks"),
			iparam("r", DefaultReps, "repetitions"),
		},
		Run: func(env Env, a Args) {
			df, dd := a.D("distr")
			ImbalanceAtMPIAllreduce(env.Comm, df, dd, a.I("r"))
		},
		ExpectedWait: func(p, _ int, a Args) float64 {
			return imbalanceWait(a.Distr["distr"], p, a.I("r"))
		},
	})
	mustRegister(&Spec{
		Name: "imbalance_at_mpi_allgather", Paradigm: ParadigmMPI,
		Help: "work imbalance in front of MPI_Allgather (extension)",
		Params: []Param{
			dparam("distr", defaultImbalanceDistr, "work distribution over ranks"),
			iparam("r", DefaultReps, "repetitions"),
		},
		Run: func(env Env, a Args) {
			df, dd := a.D("distr")
			ImbalanceAtMPIAllgather(env.Comm, df, dd, a.I("r"))
		},
		ExpectedWait: func(p, _ int, a Args) float64 {
			return imbalanceWait(a.Distr["distr"], p, a.I("r"))
		},
	})
	mustRegister(&Spec{
		Name: "late_broadcast", Paradigm: ParadigmMPI,
		Help: "MPI_Bcast root arrives late; all other ranks wait",
		Params: []Param{
			fparam("basework", DefaultBasework, "base work per iteration [s]"),
			fparam("rootextrawork", DefaultExtrawork, "extra work of the root [s]"),
			rankparam("root", 0, "root rank"),
			iparam("r", DefaultReps, "repetitions"),
		},
		Run: func(env Env, a Args) {
			LateBroadcast(env.Comm, a.F("basework"), a.F("rootextrawork"), a.I("root"), a.I("r"))
		},
		ExpectedWait: func(p, _ int, a Args) float64 {
			return float64(p-1) * a.F("rootextrawork") * float64(a.I("r"))
		},
	})
	mustRegister(&Spec{
		Name: "late_scatter", Paradigm: ParadigmMPI,
		Help: "MPI_Scatter root arrives late; all other ranks wait",
		Params: []Param{
			fparam("basework", DefaultBasework, "base work per iteration [s]"),
			fparam("rootextrawork", DefaultExtrawork, "extra work of the root [s]"),
			rankparam("root", 0, "root rank"),
			iparam("r", DefaultReps, "repetitions"),
		},
		Run: func(env Env, a Args) {
			LateScatter(env.Comm, a.F("basework"), a.F("rootextrawork"), a.I("root"), a.I("r"))
		},
		ExpectedWait: func(p, _ int, a Args) float64 {
			return float64(p-1) * a.F("rootextrawork") * float64(a.I("r"))
		},
	})
	mustRegister(&Spec{
		Name: "late_scatterv", Paradigm: ParadigmMPI,
		Help: "irregular MPI_Scatterv root arrives late",
		Params: []Param{
			fparam("basework", DefaultBasework, "base work per iteration [s]"),
			fparam("rootextrawork", DefaultExtrawork, "extra work of the root [s]"),
			rankparam("root", 0, "root rank"),
			iparam("r", DefaultReps, "repetitions"),
		},
		Run: func(env Env, a Args) {
			LateScatterv(env.Comm, a.F("basework"), a.F("rootextrawork"), a.I("root"), a.I("r"))
		},
		ExpectedWait: func(p, _ int, a Args) float64 {
			return float64(p-1) * a.F("rootextrawork") * float64(a.I("r"))
		},
	})
	mustRegister(&Spec{
		Name: "early_reduce", Paradigm: ParadigmMPI,
		Help: "MPI_Reduce root arrives early and waits for all contributors",
		Params: []Param{
			fparam("rootwork", DefaultBasework, "work of the root per iteration [s]"),
			fparam("baseextrawork", DefaultExtrawork, "extra work of the non-root ranks [s]"),
			rankparam("root", 0, "root rank"),
			iparam("r", DefaultReps, "repetitions"),
		},
		Run: func(env Env, a Args) {
			EarlyReduce(env.Comm, a.F("rootwork"), a.F("baseextrawork"), a.I("root"), a.I("r"))
		},
		ExpectedWait: func(p, _ int, a Args) float64 {
			// Only the root waits, once per repetition.
			return a.F("baseextrawork") * float64(a.I("r"))
		},
	})
	mustRegister(&Spec{
		Name: "early_gather", Paradigm: ParadigmMPI,
		Help: "MPI_Gather root arrives early and waits for all contributors",
		Params: []Param{
			fparam("rootwork", DefaultBasework, "work of the root per iteration [s]"),
			fparam("baseextrawork", DefaultExtrawork, "extra work of the non-root ranks [s]"),
			rankparam("root", 0, "root rank"),
			iparam("r", DefaultReps, "repetitions"),
		},
		Run: func(env Env, a Args) {
			EarlyGather(env.Comm, a.F("rootwork"), a.F("baseextrawork"), a.I("root"), a.I("r"))
		},
		ExpectedWait: func(p, _ int, a Args) float64 {
			return a.F("baseextrawork") * float64(a.I("r"))
		},
	})
	mustRegister(&Spec{
		Name: "early_gatherv", Paradigm: ParadigmMPI,
		Help: "irregular MPI_Gatherv root arrives early",
		Params: []Param{
			fparam("rootwork", DefaultBasework, "work of the root per iteration [s]"),
			fparam("baseextrawork", DefaultExtrawork, "extra work of the non-root ranks [s]"),
			rankparam("root", 0, "root rank"),
			iparam("r", DefaultReps, "repetitions"),
		},
		Run: func(env Env, a Args) {
			EarlyGatherv(env.Comm, a.F("rootwork"), a.F("baseextrawork"), a.I("root"), a.I("r"))
		},
		ExpectedWait: func(p, _ int, a Args) float64 {
			return a.F("baseextrawork") * float64(a.I("r"))
		},
	})
	mustRegister(&Spec{
		Name: "unparallelized_mpi_code", Paradigm: ParadigmMPI,
		Help: "all work on rank 0; every other rank idles at the barrier",
		Params: []Param{
			fparam("serialwork", DefaultExtrawork, "serial work on rank 0 per iteration [s]"),
			iparam("r", DefaultReps, "repetitions"),
		},
		Run: func(env Env, a Args) {
			UnparallelizedMPICode(env.Comm, a.F("serialwork"), a.I("r"))
		},
		ExpectedWait: func(p, _ int, a Args) float64 {
			return float64(p-1) * a.F("serialwork") * float64(a.I("r"))
		},
	})
	mustRegister(&Spec{
		Name: "growing_imbalance_at_mpi_barrier", Paradigm: ParadigmMPI,
		Help: "barrier imbalance whose severity grows with the iteration number",
		Params: []Param{
			dparam("distr", defaultImbalanceDistr, "base work distribution over ranks"),
			iparam("r", DefaultReps, "repetitions (iteration i scales work by i+1)"),
		},
		Run: func(env Env, a Args) {
			df, dd := a.D("distr")
			GrowingImbalanceAtMPIBarrier(env.Comm, df, dd, a.I("r"))
		},
		ExpectedWait: func(p, _ int, a Args) float64 {
			// Σ_{i=1..r} i × Imbalance = Imbalance × r(r+1)/2.
			r := a.I("r")
			base := imbalanceWait(a.Distr["distr"], p, 1)
			if base < 0 {
				return -1
			}
			return base * float64(r*(r+1)/2)
		},
	})
	mustRegister(&Spec{
		Name: "dominated_by_communication", Paradigm: ParadigmMPI,
		Help: "fine-grained messaging dominates negligible computation (extension)",
		Params: []Param{
			fparam("msgwork", 1e-5, "computation between messages [s]"),
			iparam("r", 50, "repetitions"),
		},
		Run: func(env Env, a Args) {
			DominatedByCommunication(env.Comm, a.F("msgwork"), a.I("r"))
		},
		ExpectedWait: func(p, _ int, a Args) float64 { return -1 },
	})
}

func registerOMPProps() {
	mustRegister(&Spec{
		Name: "imbalance_in_omp_pregion", Paradigm: ParadigmOMP,
		Help: "work imbalance inside a parallel region (wait at join)",
		Params: []Param{
			dparam("distr", defaultImbalanceDistr, "work distribution over threads"),
			iparam("r", DefaultReps, "repetitions"),
		},
		Run: func(env Env, a Args) {
			df, dd := a.D("distr")
			ImbalanceInOMPPRegion(env.Ctx, env.OMP, df, dd, a.I("r"))
		},
		ExpectedWait: func(_, t int, a Args) float64 {
			return imbalanceWait(a.Distr["distr"], t, a.I("r"))
		},
	})
	mustRegister(&Spec{
		Name: "imbalance_at_omp_barrier", Paradigm: ParadigmOMP,
		Help: "work imbalance in front of an explicit OpenMP barrier",
		Params: []Param{
			dparam("distr", defaultImbalanceDistr, "work distribution over threads"),
			iparam("r", DefaultReps, "repetitions"),
		},
		Run: func(env Env, a Args) {
			df, dd := a.D("distr")
			ImbalanceAtOMPBarrier(env.Ctx, env.OMP, df, dd, a.I("r"))
		},
		ExpectedWait: func(_, t int, a Args) float64 {
			return imbalanceWait(a.Distr["distr"], t, a.I("r"))
		},
	})
	mustRegister(&Spec{
		Name: "imbalance_in_omp_loop", Paradigm: ParadigmOMP,
		Help: "work imbalance across the iterations of a worksharing loop",
		Params: []Param{
			dparam("distr", defaultImbalanceDistr, "work distribution over threads"),
			iparam("r", DefaultReps, "repetitions"),
		},
		Run: func(env Env, a Args) {
			df, dd := a.D("distr")
			ImbalanceInOMPLoop(env.Ctx, env.OMP, df, dd, a.I("r"))
		},
		ExpectedWait: func(_, t int, a Args) float64 {
			return imbalanceWait(a.Distr["distr"], t, a.I("r"))
		},
	})
	mustRegister(&Spec{
		Name: "serialization_at_omp_critical", Paradigm: ParadigmOMP,
		Help: "threads serialize at a critical section (extension)",
		Params: []Param{
			fparam("secwork", DefaultBasework, "time inside the critical section [s]"),
			iparam("r", DefaultReps, "repetitions"),
		},
		Run: func(env Env, a Args) {
			SerializationAtOMPCritical(env.Ctx, env.OMP, a.F("secwork"), a.I("r"))
		},
		ExpectedWait: func(_, t int, a Args) float64 {
			// Barrier-resynced rounds of simultaneous arrivals: each
			// round serializes for 0+1+…+(t-1) section times.
			return a.F("secwork") * float64(t*(t-1)/2) * float64(a.I("r"))
		},
	})
	mustRegister(&Spec{
		Name: "unparallelized_in_single", Paradigm: ParadigmOMP,
		Help: "all work in a single construct; the team idles (extension)",
		Params: []Param{
			fparam("singlework", DefaultExtrawork, "work inside the single [s]"),
			iparam("r", DefaultReps, "repetitions"),
		},
		Run: func(env Env, a Args) {
			UnparallelizedInSingle(env.Ctx, env.OMP, a.F("singlework"), a.I("r"))
		},
		ExpectedWait: func(_, t int, a Args) float64 {
			return a.F("singlework") * float64(t-1) * float64(a.I("r"))
		},
	})
	mustRegister(&Spec{
		Name: "imbalance_at_omp_sections", Paradigm: ParadigmOMP,
		Help: "sections of unequal duration distributed over the team (extension)",
		Params: []Param{
			dparam("distr", defaultImbalanceDistr, "duration distribution over sections"),
			iparam("r", DefaultReps, "repetitions"),
		},
		Run: func(env Env, a Args) {
			df, dd := a.D("distr")
			ImbalanceAtOMPSections(env.Ctx, env.OMP, df, dd, a.I("r"))
		},
		ExpectedWait: func(_, t int, a Args) float64 {
			return imbalanceWait(a.Distr["distr"], t, a.I("r"))
		},
	})
}

func registerHybridProps() {
	mustRegister(&Spec{
		Name: "hybrid_omp_imbalance_causes_late_sender", Paradigm: ParadigmHybrid,
		Help: "thread imbalance on the sending ranks delays MPI sends",
		Params: []Param{
			fparam("basework", DefaultBasework, "per-thread base work [s]"),
			fparam("ompextra", DefaultExtrawork, "extra work of one sender thread [s]"),
			iparam("r", DefaultReps, "repetitions"),
		},
		Run: func(env Env, a Args) {
			HybridOMPImbalanceCausesLateSender(env.Comm, env.OMP,
				a.F("basework"), a.F("ompextra"), a.I("r"))
		},
		ExpectedWait: func(p, t int, a Args) float64 {
			// The sender's team joins ompextra late each iteration (one
			// thread is overloaded by ompextra; fork/join overheads are
			// identical on both sides), so the MPI-level late-sender wait
			// is pairs × ompextra × reps — same shape as plain late_sender.
			return float64(p/2) * a.F("ompextra") * float64(a.I("r"))
		},
	})
	mustRegister(&Spec{
		Name: "hybrid_barrier_after_omp_regions", Paradigm: ParadigmHybrid,
		Help: "process imbalance built from per-rank OpenMP regions",
		Params: []Param{
			dparam("distr", defaultImbalanceDistr, "work distribution over ranks"),
			iparam("r", DefaultReps, "repetitions"),
		},
		Run: func(env Env, a Args) {
			df, dd := a.D("distr")
			HybridBarrierAfterOMPRegions(env.Comm, env.OMP, df, dd, a.I("r"))
		},
		ExpectedWait: func(p, _ int, a Args) float64 {
			// Each rank's team is internally balanced (every thread works
			// df(rank)), so the whole thread-level imbalance surfaces as
			// rank-level wait at the closing MPI barrier: the plain
			// imbalance closed form over ranks.
			return imbalanceWait(a.Distr["distr"], p, a.I("r"))
		},
	})
}
