package core_test

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/analyzer"
	"repro/internal/core"
	"repro/internal/distr"
	"repro/internal/mpi"
)

// TestQuickImbalanceWaitMatchesTheory is the end-to-end property at the
// heart of the suite: for random distribution parameters, group sizes and
// repetition counts, the analyzer's measured wait-at-barrier equals
// reps × Σ(max−work_i) — the closed form of the seeded severity.
func TestQuickImbalanceWaitMatchesTheory(t *testing.T) {
	inv := func(pRaw, rRaw uint8, lowRaw, spreadRaw uint16, dfIdx uint8) bool {
		procs := int(pRaw%6) + 2 // 2..7
		reps := int(rRaw%4) + 1  // 1..4
		low := float64(lowRaw%100)/1000 + 0.001
		high := low + float64(spreadRaw%200)/1000
		names := []string{"block2", "cyclic2", "linear"}
		name := names[int(dfIdx)%len(names)]
		df, _ := distr.Lookup(name)
		dd := distr.Val2{Low: low, High: high}

		theory := float64(reps) * distr.Imbalance(df, procs, 1.0, dd)
		tr, err := mpi.Run(mpi.Options{Procs: procs, Timeout: 30 * time.Second},
			func(c *mpi.Comm) {
				core.ImbalanceAtMPIBarrier(c, df, dd, reps)
			})
		if err != nil {
			return false
		}
		got := analyzer.Analyze(tr, analyzer.Options{}).Wait(analyzer.PropWaitAtBarrier)
		// Tolerance: per-instance network/overhead terms (µs-scale).
		tol := 1e-4*float64(reps*procs) + 1e-9
		return math.Abs(got-theory) <= tol
	}
	if err := quick.Check(inv, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickLateSenderScalesLinearly: for random extrawork, the measured
// late-sender wait is pairs × extrawork × reps.
func TestQuickLateSenderScalesLinearly(t *testing.T) {
	inv := func(pRaw, rRaw uint8, extraRaw uint16) bool {
		procs := int(pRaw%4)*2 + 2 // 2,4,6,8 (even, all paired)
		reps := int(rRaw%3) + 1
		extra := float64(extraRaw%500)/1000 + 0.002
		theory := float64(procs/2) * extra * float64(reps)
		tr, err := mpi.Run(mpi.Options{Procs: procs, Timeout: 30 * time.Second},
			func(c *mpi.Comm) {
				core.LateSender(c, 0.001, extra, reps)
			})
		if err != nil {
			return false
		}
		got := analyzer.Analyze(tr, analyzer.Options{}).Wait(analyzer.PropLateSender)
		return math.Abs(got-theory) <= 1e-4*float64(reps*procs)+1e-9
	}
	if err := quick.Check(inv, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickNegativeStaysClean: balanced programs of random sizes produce
// no significant findings.
func TestQuickNegativeStaysClean(t *testing.T) {
	inv := func(pRaw, rRaw uint8, workRaw uint16) bool {
		procs := int(pRaw%7) + 2
		reps := int(rRaw%5) + 1
		w := float64(workRaw%100)/1000 + 0.005
		tr, err := mpi.Run(mpi.Options{Procs: procs, Timeout: 30 * time.Second},
			func(c *mpi.Comm) {
				core.NegativeBalancedMPI(c, w, reps)
			})
		if err != nil {
			return false
		}
		return analyzer.Analyze(tr, analyzer.Options{}).Top() == nil
	}
	if err := quick.Check(inv, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
