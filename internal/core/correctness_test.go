package core_test

import (
	"math"
	"testing"

	"repro/ats"
	"repro/internal/analyzer"
	"repro/internal/core"
	"repro/internal/distr"
	"repro/internal/mpi"
	"repro/internal/omp"
	"repro/internal/trace"
	"repro/internal/xctx"
)

const (
	testProcs   = 8
	testThreads = 4
)

// TestPositiveCorrectnessAllProperties is the suite's central promise: for
// every registered property function, a single-property test program must
// lead a correct analysis tool to report exactly that property as its
// dominant finding, with the configured severity.
func TestPositiveCorrectnessAllProperties(t *testing.T) {
	for _, spec := range core.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			want, ok := analyzer.ExpectedDetection[spec.Name]
			if !ok {
				t.Fatalf("no expected detection registered for %q", spec.Name)
			}
			tr, err := ats.RunPropertyDefaults(spec.Name, testProcs, testThreads)
			if err != nil {
				t.Fatalf("run failed: %v", err)
			}
			rep := ats.Analyze(tr)

			if want == analyzer.PropMPITimeFraction {
				// Cost metric, not a wait state: MPI must dominate.
				r := rep.Get(analyzer.PropMPITimeFraction)
				if r == nil || r.Severity < 0.5 {
					t.Fatalf("MPI time fraction not dominant: %+v", r)
				}
				return
			}

			top := rep.Top()
			if top == nil {
				t.Fatalf("no significant finding; report:\n%s", rep.Render())
			}
			// Properties whose physics necessarily produce an equally or
			// more severe companion finding: hybrid cause-and-effect
			// properties, and critical-section serialization (whose
			// staggered exits always create a matching barrier wait).
			nonDominant := spec.Paradigm == core.ParadigmHybrid ||
				spec.Name == "serialization_at_omp_critical"
			if nonDominant {
				// Hybrid properties seed a root cause in one paradigm
				// that manifests in the other; the root cause may
				// legitimately dominate.  The characteristic effect must
				// still be among the significant findings.
				found := false
				for _, r := range rep.Significant() {
					if r.Property == want {
						found = true
					}
				}
				if !found {
					t.Fatalf("expected %s among significant findings; report:\n%s",
						want, rep.Render())
				}
			} else if top.Property != want {
				t.Fatalf("top finding = %s, want %s; report:\n%s",
					top.Property, want, rep.Render())
			}

			// Quantitative check where a closed form exists: the measured
			// waiting time must match the configured severity.  Virtual
			// time makes this nearly exact; the tolerance absorbs the
			// small network-model terms.
			expWait := spec.ExpectedWait(testProcs, testThreads, spec.Defaults())
			if expWait > 0 {
				got := rep.Wait(want)
				if math.Abs(got-expWait) > 0.10*expWait+0.002 {
					t.Errorf("measured wait %.6fs, expected %.6fs (±10%%)", got, expWait)
				}
			}
		})
	}
}

// TestPositiveCorrectnessLocalization checks the call-path dimension: the
// dominant finding must be attributed to a call path inside the property
// function's own region.
func TestPositiveCorrectnessLocalization(t *testing.T) {
	cases := map[string]string{ // property -> region that must appear in top path
		"late_sender":              "late_sender",
		"late_broadcast":           "late_broadcast",
		"imbalance_at_mpi_barrier": "imbalance_at_mpi_barrier",
		"early_reduce":             "early_reduce",
		"imbalance_at_omp_barrier": "imbalance_at_omp_barrier",
	}
	for name, region := range cases {
		tr, err := ats.RunPropertyDefaults(name, testProcs, testThreads)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rep := ats.Analyze(tr)
		top := rep.Top()
		if top == nil {
			t.Fatalf("%s: no finding", name)
		}
		path := top.TopPath()
		if !containsRegion(path, region) {
			t.Errorf("%s: top path %q does not contain region %q", name, path, region)
		}
	}
}

func containsRegion(path, region string) bool {
	for len(path) > 0 {
		i := 0
		for i < len(path) && path[i] != '/' {
			i++
		}
		if path[:i] == region {
			return true
		}
		if i == len(path) {
			break
		}
		path = path[i+1:]
	}
	return false
}

// TestNegativeCorrectness: well-tuned programs must produce no significant
// findings (paper §1, negative correctness).
func TestNegativeCorrectness(t *testing.T) {
	t.Run("mpi", func(t *testing.T) {
		tr, err := ats.RunMPI(ats.MPIOptions{Procs: testProcs}, func(c *mpi.Comm) {
			core.NegativeBalancedMPI(c, 0.02, 10)
		})
		if err != nil {
			t.Fatal(err)
		}
		rep := ats.Analyze(tr)
		if top := rep.Top(); top != nil {
			t.Errorf("spurious finding %s (%.2f%%):\n%s",
				top.Property, top.Severity*100, rep.Render())
		}
	})
	t.Run("omp", func(t *testing.T) {
		tr, err := ats.RunOMP(ats.OMPOptions{Threads: testThreads},
			func(ctx *xctx.Ctx, team ats.TeamOptions) {
				core.NegativeBalancedOMP(ctx, team, 0.02, 10)
			})
		if err != nil {
			t.Fatal(err)
		}
		rep := ats.Analyze(tr)
		if top := rep.Top(); top != nil {
			t.Errorf("spurious finding %s (%.2f%%)", top.Property, top.Severity*100)
		}
	})
	t.Run("hybrid", func(t *testing.T) {
		tr, err := ats.RunMPI(ats.MPIOptions{Procs: 4}, func(c *mpi.Comm) {
			core.NegativeBalancedHybrid(c, omp.Options{Threads: testThreads}, 0.02, 5)
		})
		if err != nil {
			t.Fatal(err)
		}
		rep := ats.Analyze(tr)
		if top := rep.Top(); top != nil {
			t.Errorf("spurious finding %s (%.2f%%)", top.Property, top.Severity*100)
		}
	})
}

// TestSeverityScalesWithParameters: doubling the pathological extra work
// must double the measured waiting time (the suite is parameterized so
// tool thresholds can be probed, §3.1).
func TestSeverityScalesWithParameters(t *testing.T) {
	measure := func(extra float64) float64 {
		a := core.NewArgs()
		a.Float["basework"] = 0.01
		a.Float["extrawork"] = extra
		a.Int["r"] = 5
		tr, err := ats.RunProperty("late_sender", testProcs, 1, a)
		if err != nil {
			t.Fatal(err)
		}
		return ats.Analyze(tr).Wait(analyzer.PropLateSender)
	}
	w1, w2 := measure(0.02), measure(0.04)
	if w1 <= 0 {
		t.Fatal("no late-sender wait measured")
	}
	ratio := w2 / w1
	if math.Abs(ratio-2) > 0.1 {
		t.Errorf("wait ratio = %.3f, want ≈ 2 (w1=%v w2=%v)", ratio, w1, w2)
	}
}

// TestCompositeAllMPIDetectsEverything reproduces Fig 3.3: one program
// calling all MPI property functions; the analyzer must find every
// property class, each localized in its own property region.
func TestCompositeAllMPIDetectsEverything(t *testing.T) {
	tr, err := ats.RunMPI(ats.MPIOptions{Procs: testProcs}, func(c *mpi.Comm) {
		core.CompositeAllMPI(c, core.DefaultComposite())
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := ats.AnalyzeWithThreshold(tr, 0.001)
	wantProps := map[string]bool{
		analyzer.PropLateSender:    false,
		analyzer.PropLateReceiver:  false,
		analyzer.PropWaitAtBarrier: false,
		analyzer.PropLateBroadcast: false,
		analyzer.PropEarlyReduce:   false,
		analyzer.PropWaitAtNxN:     false,
	}
	for _, r := range rep.Significant() {
		if _, ok := wantProps[r.Property]; ok {
			wantProps[r.Property] = true
		}
	}
	for p, found := range wantProps {
		if !found {
			t.Errorf("composite program: property %s not detected\n%s", p, rep.Render())
		}
	}
	// Each source property function must appear as a distinct call path
	// of its detected property.
	ls := rep.Get(analyzer.PropLateSender)
	foundPlain, foundNB := false, false
	for p := range ls.ByPath {
		if containsRegion(p, "late_sender") {
			foundPlain = true
		}
		if containsRegion(p, "late_sender_nonblocking") {
			foundNB = true
		}
	}
	if !foundPlain || !foundNB {
		t.Errorf("late_sender call paths incomplete: plain=%v nonblocking=%v", foundPlain, foundNB)
	}
}

// TestTwoCommunicatorsLocalization reproduces Fig 3.4/3.5: the world is
// split in half, each half runs its own property set concurrently, and
// the analyzer must attribute each property to the correct ranks.  In
// particular late_broadcast runs on the upper half with communicator-local
// root 1 — world rank size/2+1 — and the waiting must appear on the upper
// half excluding that root, exactly the localization EXPERT shows in the
// paper's screenshot.
func TestTwoCommunicatorsLocalization(t *testing.T) {
	const P = 16
	tr, err := ats.RunMPI(ats.MPIOptions{Procs: P}, func(c *mpi.Comm) {
		core.TwoCommunicators(c, core.DefaultComposite())
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := ats.AnalyzeWithThreshold(tr, 0.001)
	half := P / 2

	lb := rep.Get(analyzer.PropLateBroadcast)
	if lb == nil {
		t.Fatalf("late_broadcast not detected\n%s", rep.Render())
	}
	rootWorld := int32(half + core.UpperHalfBcastRoot)
	for loc, w := range lb.ByLocation {
		if w <= 0 {
			continue
		}
		if loc.Rank < int32(half) {
			t.Errorf("late_broadcast wait on lower-half rank %d", loc.Rank)
		}
		if loc.Rank == rootWorld {
			t.Errorf("late_broadcast wait attributed to the root rank %d", loc.Rank)
		}
	}
	// Every non-root upper-half rank must have waited.
	for r := int32(half); r < P; r++ {
		if r == rootWorld {
			continue
		}
		if lb.ByLocation[trace.Location{Rank: r}] <= 0 {
			t.Errorf("upper-half rank %d shows no late_broadcast wait", r)
		}
	}
	// The call-graph pane must point at MPI_Bcast inside late_broadcast.
	if p := lb.TopPath(); !containsRegion(p, "late_broadcast") || !containsRegion(p, "MPI_Bcast") {
		t.Errorf("late_broadcast top path %q lacks late_broadcast/MPI_Bcast", p)
	}

	// Late sender belongs to the lower half only.
	ls := rep.Get(analyzer.PropLateSender)
	if ls == nil {
		t.Fatalf("late_sender not detected")
	}
	for loc, w := range ls.ByLocation {
		if w > 0 && loc.Rank >= int32(half) {
			t.Errorf("late_sender wait on upper-half rank %d", loc.Rank)
		}
	}
	// Late receiver belongs to the upper half only.
	lr := rep.Get(analyzer.PropLateReceiver)
	if lr == nil {
		t.Fatalf("late_receiver not detected")
	}
	for loc, w := range lr.ByLocation {
		if w > 0 && loc.Rank < int32(half) {
			t.Errorf("late_receiver wait on lower-half rank %d", loc.Rank)
		}
	}
}

// TestCompositeHybrid: MPI-level and OpenMP-level properties coexist in
// one program and are both reported (§3.3 closing scenario).
func TestCompositeHybrid(t *testing.T) {
	tr, err := ats.RunMPI(ats.MPIOptions{Procs: 4}, func(c *mpi.Comm) {
		core.CompositeHybrid(c, omp.Options{Threads: testThreads}, core.DefaultComposite())
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := ats.AnalyzeWithThreshold(tr, 0.001)
	if rep.Wait(analyzer.PropLateSender) <= 0 {
		t.Error("hybrid composite: no late_sender detected")
	}
	if rep.Wait(analyzer.PropOMPBarrier) <= 0 {
		t.Error("hybrid composite: no OpenMP barrier imbalance detected")
	}
}

// TestRegistryConsistency checks the registry invariants the generator
// relies on.
func TestRegistryConsistency(t *testing.T) {
	names := core.Names()
	if len(names) < 20 {
		t.Fatalf("only %d properties registered", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate property %q", n)
		}
		seen[n] = true
		spec, ok := core.Get(n)
		if !ok {
			t.Fatalf("Get(%q) failed", n)
		}
		if spec.Help == "" {
			t.Errorf("%s: missing help text", n)
		}
		if _, ok := analyzer.ExpectedDetection[n]; !ok {
			t.Errorf("%s: no entry in analyzer.ExpectedDetection", n)
		}
		a := spec.Defaults()
		for _, p := range spec.Params {
			if p.Kind == core.ParamDistr {
				if _, _, err := a.Distr[p.Name].Resolve(); err != nil {
					t.Errorf("%s: default distribution invalid: %v", n, err)
				}
			}
		}
		if spec.ExpectedWait == nil {
			t.Errorf("%s: missing ExpectedWait", n)
		}
	}
	// Paradigm partition covers everything.
	total := len(core.ByParadigm(core.ParadigmMPI)) +
		len(core.ByParadigm(core.ParadigmOMP)) +
		len(core.ByParadigm(core.ParadigmHybrid))
	if total != len(names) {
		t.Errorf("paradigm partition %d != registry size %d", total, len(names))
	}
}

// TestExpectedWaitFormulas cross-checks the closed forms against the
// distribution-level Imbalance helper.
func TestExpectedWaitFormulas(t *testing.T) {
	spec, _ := core.Get("imbalance_at_mpi_barrier")
	a := spec.Defaults()
	got := spec.ExpectedWait(8, 1, a)
	df, dd, err := a.Distr["distr"].Resolve()
	if err != nil {
		t.Fatal(err)
	}
	want := float64(a.Int["r"]) * distr.Imbalance(df, 8, 1.0, dd)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("ExpectedWait = %v, want %v", got, want)
	}
}
