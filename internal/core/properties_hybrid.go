package core

import (
	"repro/internal/distr"
	"repro/internal/mpi"
	"repro/internal/omp"
)

// --- Hybrid MPI + OpenMP performance properties ---------------------------
//
// The paper's §3.3 closes by noting that the modular design permits mixing
// property functions from different paradigms in one program so that tools
// for hybrid programming (e.g. on the Hitachi SR8000 targeted by [8]) can
// be tested.  The functions here are such mixtures.

// HybridOMPImbalanceCausesLateSender runs an OpenMP region inside each MPI
// rank before the even-odd send-receive pattern; the teams of the sending
// (even) ranks are imbalanced by ompextra seconds, which delays the join
// and thereby the MPI send — an OpenMP-level root cause manifesting as an
// MPI-level late sender.
func HybridOMPImbalanceCausesLateSender(c *mpi.Comm, opt omp.Options, basework, ompextra float64, r int) {
	c.Begin("hybrid_omp_imbalance_causes_late_sender")
	defer c.End()
	buf := c.BaseBuf()
	defer mpi.FreeBuf(buf)
	sender := c.Rank()%2 == 0
	for i := 0; i < r; i++ {
		omp.Parallel(c.Ctx(), opt, func(tc *omp.TC) {
			dd := distr.Val2N{Low: basework, High: basework, N: -1}
			if sender {
				// One thread of the sender's team is overloaded.
				dd = distr.Val2N{Low: basework, High: basework + ompextra, N: 0}
			}
			tc.DoWork(distr.Peak, dd, 1.0)
		})
		mpi.PatternSendRecv(c, buf, mpi.DirUp, mpi.PatternOpts{})
	}
}

// HybridBarrierAfterOMPRegions runs df-imbalanced OpenMP regions on every
// rank followed by an MPI barrier: thread-level imbalance accumulates into
// process-level wait-at-barrier (the two properties are simultaneously
// visible at both levels).
func HybridBarrierAfterOMPRegions(c *mpi.Comm, opt omp.Options, df distr.Func, dd distr.Desc, r int) {
	c.Begin("hybrid_barrier_after_omp_regions")
	defer c.End()
	for i := 0; i < r; i++ {
		omp.Parallel(c.Ctx(), opt, func(tc *omp.TC) {
			// Thread work is scaled by the process's distribution value
			// so the process-level imbalance follows df.
			w := df(c.Rank(), c.Size(), 1.0, dd)
			tc.Work(w)
		})
		c.Barrier()
	}
}
