package core

import (
	"repro/internal/distr"
	"repro/internal/omp"
	"repro/internal/xctx"
)

// --- OpenMP parallel region performance properties -----------------------
//
// The OpenMP property functions fork their own team from the encountering
// context (ctx), which may be a standalone master or an MPI rank (hybrid
// programs, paper §3.3).  Team size and construct costs come from opt.

// ImbalanceInOMPPRegion executes df-distributed work inside a parallel
// region r times (imbalance_in_omp_pregion): lightly loaded threads wait
// at the region's implicit join.
func ImbalanceInOMPPRegion(ctx *xctx.Ctx, opt omp.Options, df distr.Func, dd distr.Desc, r int) {
	ctx.Enter("imbalance_in_omp_pregion")
	defer ctx.Exit()
	for i := 0; i < r; i++ {
		omp.Parallel(ctx, opt, func(tc *omp.TC) {
			tc.DoWork(df, dd, 1.0)
		})
	}
}

// ImbalanceAtOMPBarrier is the transliteration of the paper's complete
// example (§3.1.5): one parallel region whose body repeats df-distributed
// work followed by an explicit barrier r times.
func ImbalanceAtOMPBarrier(ctx *xctx.Ctx, opt omp.Options, df distr.Func, dd distr.Desc, r int) {
	ctx.Enter("imbalance_at_omp_barrier")
	defer ctx.Exit()
	omp.Parallel(ctx, opt, func(tc *omp.TC) {
		for i := 0; i < r; i++ {
			tc.DoWork(df, dd, 1.0)
			tc.Barrier()
		}
	})
}

// ImbalanceInOMPLoop runs a statically scheduled worksharing loop whose
// per-thread work follows df (imbalance_in_omp_loop): the imbalance
// surfaces at the loop's implicit barrier.  The loop has exactly one
// iteration per thread so the distribution maps 1:1 onto threads.
func ImbalanceInOMPLoop(ctx *xctx.Ctx, opt omp.Options, df distr.Func, dd distr.Desc, r int) {
	ctx.Enter("imbalance_in_omp_loop")
	defer ctx.Exit()
	omp.Parallel(ctx, opt, func(tc *omp.TC) {
		n := tc.NumThreads()
		for i := 0; i < r; i++ {
			tc.For(n, omp.ForOpt{Sched: omp.Static}, func(j int) {
				tc.Work(df(j, n, 1.0, dd))
			})
		}
	})
}

// SerializationAtOMPCritical is an extension property: every thread passes
// through the same critical section holding it for secwork seconds, r
// times, so threads serialize ("serialization at critical section").  A
// barrier re-synchronizes the team between iterations, which makes the
// per-iteration lock waiting deterministic (0+1+…+(T-1) section times).
// Note the unavoidable physics of serialization: the staggered exits also
// produce an equally sized wait at the re-synchronization point, so an
// analysis tool will (correctly) report imbalance_at_omp_barrier alongside
// the serialization — the positive-correctness oracle therefore requires
// the serialization finding to be present and exact, not dominant.
func SerializationAtOMPCritical(ctx *xctx.Ctx, opt omp.Options, secwork float64, r int) {
	ctx.Enter("serialization_at_omp_critical")
	defer ctx.Exit()
	omp.Parallel(ctx, opt, func(tc *omp.TC) {
		for i := 0; i < r; i++ {
			tc.Critical("ats_serialized", func() {
				tc.Work(secwork)
			})
			tc.Barrier()
		}
	})
}

// UnparallelizedInSingle is an extension property: all the region's work
// happens inside a single construct while the rest of the team idles at
// the implicit barrier ("unparallelized code / idle threads").
func UnparallelizedInSingle(ctx *xctx.Ctx, opt omp.Options, singlework float64, r int) {
	ctx.Enter("unparallelized_in_single")
	defer ctx.Exit()
	omp.Parallel(ctx, opt, func(tc *omp.TC) {
		for i := 0; i < r; i++ {
			tc.Single(func() {
				tc.Work(singlework)
			})
		}
	})
}

// ImbalanceAtOMPSections is an extension property: sections of df-
// distributed durations (one section per thread count) distributed over
// the team; imbalance surfaces at the sections construct's implicit
// barrier.
func ImbalanceAtOMPSections(ctx *xctx.Ctx, opt omp.Options, df distr.Func, dd distr.Desc, r int) {
	ctx.Enter("imbalance_at_omp_sections")
	defer ctx.Exit()
	omp.Parallel(ctx, opt, func(tc *omp.TC) {
		n := tc.NumThreads()
		secs := make([]func(), n)
		for j := 0; j < n; j++ {
			w := df(j, n, 1.0, dd)
			secs[j] = func() { tc.Work(w) }
		}
		for i := 0; i < r; i++ {
			tc.Sections(secs...)
		}
	})
}
