package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/distr"
	"repro/internal/mpi"
	"repro/internal/omp"
	"repro/internal/xctx"
)

// Paradigm classifies a property function by the programming model it
// exercises.
type Paradigm uint8

const (
	// ParadigmMPI properties run on an MPI communicator.
	ParadigmMPI Paradigm = iota
	// ParadigmOMP properties run on an OpenMP team.
	ParadigmOMP
	// ParadigmHybrid properties mix both.
	ParadigmHybrid
)

// String names the paradigm.
func (p Paradigm) String() string {
	switch p {
	case ParadigmMPI:
		return "mpi"
	case ParadigmOMP:
		return "omp"
	case ParadigmHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("paradigm(%d)", uint8(p))
	}
}

// ParamKind types a property-function parameter.
type ParamKind uint8

const (
	// ParamFloat is a float64 parameter (work amounts in seconds).
	ParamFloat ParamKind = iota
	// ParamInt is an integer parameter (repetitions, root rank).
	ParamInt
	// ParamDistr is a generic distribution parameter (function name plus
	// descriptor values), as used by the imbalance properties.
	ParamDistr
)

// DistrSpec is the serializable form of a distribution argument: the
// function name plus the descriptor parameters, mirroring what a generated
// test program accepts on its command line.  The JSON encoding is the wire
// form used by replayable conformance cases.
type DistrSpec struct {
	Name string  `json:"name"`          // distribution function name, e.g. "block2"
	Low  float64 `json:"low"`           // first descriptor value (Val for "same")
	High float64 `json:"high,omitempty"`
	Med  float64 `json:"med,omitempty"`
	N    int     `json:"n,omitempty"` // peak rank for "peak"
}

// Resolve looks the function up and builds its descriptor.
func (ds DistrSpec) Resolve() (distr.Func, distr.Desc, error) {
	df, ok := distr.Lookup(ds.Name)
	if !ok {
		return nil, nil, fmt.Errorf("core: unknown distribution %q", ds.Name)
	}
	kind, _ := distr.DescKind(ds.Name)
	dd, err := distr.ParseDesc(kind, ds.Low, ds.High, ds.Med, ds.N)
	if err != nil {
		return nil, nil, err
	}
	return df, dd, nil
}

// Param describes one parameter of a property function, with its default —
// the information the test-program generator turns into command-line
// flags (paper §3.2).  The Min/Max fields bound the *in-range* values a
// randomized conformance test may draw for the parameter: within them the
// property function is well defined and its closed-form expected wait
// (Spec.ExpectedWait) holds.  They are metadata for test generation, not
// runtime constraints — the property functions themselves accept any
// value.
type Param struct {
	Name     string
	Kind     ParamKind
	DefFloat float64
	DefInt   int
	DefDistr DistrSpec
	Help     string
	// MinFloat/MaxFloat bound in-range ParamFloat draws (inclusive).
	MinFloat, MaxFloat float64
	// MinInt/MaxInt bound in-range ParamInt draws (inclusive).
	MinInt, MaxInt int
	// Rank marks a ParamInt that indexes a member of the executing group
	// (a root rank); its in-range interval is [0, group size) at draw
	// time, so MinInt/MaxInt are left zero.
	Rank bool
}

// Args carries concrete parameter values for one invocation.
type Args struct {
	Float map[string]float64
	Int   map[string]int
	Distr map[string]DistrSpec
}

// NewArgs returns an empty argument set.
func NewArgs() Args {
	return Args{
		Float: make(map[string]float64),
		Int:   make(map[string]int),
		Distr: make(map[string]DistrSpec),
	}
}

// F fetches a float parameter (panics on absence: construction bugs in
// test harnesses should fail loudly).
func (a Args) F(name string) float64 {
	v, ok := a.Float[name]
	if !ok {
		panic(fmt.Sprintf("core: missing float arg %q", name))
	}
	return v
}

// I fetches an int parameter.
func (a Args) I(name string) int {
	v, ok := a.Int[name]
	if !ok {
		panic(fmt.Sprintf("core: missing int arg %q", name))
	}
	return v
}

// D fetches and resolves a distribution parameter.
func (a Args) D(name string) (distr.Func, distr.Desc) {
	ds, ok := a.Distr[name]
	if !ok {
		panic(fmt.Sprintf("core: missing distribution arg %q", name))
	}
	df, dd, err := ds.Resolve()
	if err != nil {
		panic(err)
	}
	return df, dd
}

// Env is the execution environment handed to a registered property
// function: the MPI communicator (nil for pure-OpenMP programs), the
// encountering executor context, and the OpenMP team options.
type Env struct {
	Comm *mpi.Comm
	Ctx  *xctx.Ctx
	OMP  omp.Options
}

// Spec describes one registered property function: everything the
// single-property program generator, the CLI driver, and the
// positive-correctness experiments need.
type Spec struct {
	Name     string
	Paradigm Paradigm
	Help     string
	Params   []Param
	// Run executes the property function with the given arguments.
	Run func(env Env, a Args)
	// ExpectedWait returns the theoretical total waiting time (seconds,
	// summed over locations and repetitions) the property should induce
	// in virtual time, or a negative value if no closed form exists.
	// procs and threads describe the environment.
	ExpectedWait func(procs, threads int, a Args) float64
	// Companions lists analyzer properties the function legitimately
	// co-produces besides its expected detection; the conformance
	// oracle's negative axis must not flag them.  (ASL scenarios mixing
	// primitives record their secondary detections here.)
	Companions []string
	// ASL holds the scenario source text when the spec was compiled from
	// an ASL scenario declaration (empty for built-ins).  The program
	// generator embeds it so emitted programs can re-register the
	// scenario before running it.
	ASL string
}

// Defaults builds the argument set holding every parameter's default.
func (s *Spec) Defaults() Args {
	a := NewArgs()
	for _, p := range s.Params {
		switch p.Kind {
		case ParamFloat:
			a.Float[p.Name] = p.DefFloat
		case ParamInt:
			a.Int[p.Name] = p.DefInt
		case ParamDistr:
			a.Distr[p.Name] = p.DefDistr
		}
	}
	return a
}

// registry state.
var (
	regMu    sync.RWMutex
	registry = map[string]*Spec{}
)

// Register adds a property spec; duplicate names are rejected.
func Register(s *Spec) error {
	if s == nil || s.Name == "" || s.Run == nil {
		return fmt.Errorf("core: invalid spec")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[s.Name]; dup {
		return fmt.Errorf("core: property %q already registered", s.Name)
	}
	registry[s.Name] = s
	return nil
}

func mustRegister(s *Spec) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// Unregister removes a spec from the registry (a no-op for unknown
// names).  It exists for dynamically registered properties — ASL
// scenarios — and for test hygiene; the built-in registrations are never
// removed by the shipped tools.
func Unregister(name string) {
	regMu.Lock()
	delete(registry, name)
	regMu.Unlock()
}

// Get returns the spec registered under name.
func Get(name string) (*Spec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Names returns the sorted names of all registered properties.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ByParadigm returns the sorted specs of one paradigm.
func ByParadigm(p Paradigm) []*Spec {
	regMu.RLock()
	defer regMu.RUnlock()
	var out []*Spec
	for _, s := range registry {
		if s.Paradigm == p {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// All returns all specs sorted by name.
func All() []*Spec {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]*Spec, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// common parameter constructors.  The derived in-range intervals keep the
// default centered: work amounts fuzz between a tenth and twice their
// default (small enough to stay fast, large enough to move severities
// across the significance threshold), repetition counts between 1 and the
// default.

func fparam(name string, def float64, help string) Param {
	return Param{Name: name, Kind: ParamFloat, DefFloat: def, Help: help,
		MinFloat: def / 10, MaxFloat: def * 2}
}

func iparam(name string, def int, help string) Param {
	max := def
	if max < 1 {
		max = 1
	}
	return Param{Name: name, Kind: ParamInt, DefInt: def, Help: help,
		MinInt: 1, MaxInt: max}
}

// rankparam declares an int parameter that names a rank of the executing
// group; conformance draws it uniformly from [0, group size).
func rankparam(name string, def int, help string) Param {
	return Param{Name: name, Kind: ParamInt, DefInt: def, Help: help, Rank: true}
}

func dparam(name string, def DistrSpec, help string) Param {
	return Param{Name: name, Kind: ParamDistr, DefDistr: def, Help: help}
}

// defaultImbalanceDistr is the default distribution for the imbalance
// properties: block2 with a 1:5 work ratio.
var defaultImbalanceDistr = DistrSpec{
	Name: "block2", Low: DefaultBasework, High: DefaultBasework + DefaultExtrawork,
}

// imbalanceWait returns the closed-form waiting time of a df-driven
// imbalance followed by a synchronizing operation.
func imbalanceWait(ds DistrSpec, group, reps int) float64 {
	df, dd, err := ds.Resolve()
	if err != nil {
		return -1
	}
	return float64(reps) * distr.Imbalance(df, group, 1.0, dd)
}
