// MPI point-to-point and collective property functions (paper §3.1.5).
package core

import (
	"repro/internal/distr"
	"repro/internal/mpi"
)

// Paper-defaults used by the property functions' registry entries.
const (
	// DefaultBasework is the default per-iteration base work in seconds.
	DefaultBasework = 0.01
	// DefaultExtrawork is the default pathological extra work in seconds.
	DefaultExtrawork = 0.05
	// DefaultReps is the default repetition count.
	DefaultReps = 5
)

// --- MPI point-to-point communication performance properties ------------

// LateSender makes the receiving processes wait: the sending (even) ranks
// execute basework+extrawork seconds of work per iteration while the
// receiving (odd) ranks execute only basework, so every receive blocks for
// extrawork seconds (late_sender in the paper, whose source this function
// transliterates: a cyclic2 distribution assigning the extra work to the
// even ranks, followed by the even-odd send-receive pattern).
func LateSender(c *mpi.Comm, basework, extrawork float64, r int) {
	c.Begin("late_sender")
	defer c.End()
	buf := c.BaseBuf()
	defer mpi.FreeBuf(buf)
	dd := distr.Val2{Low: basework + extrawork, High: basework}
	for i := 0; i < r; i++ {
		c.DoWork(distr.Cyclic2, dd, 1.0)
		mpi.PatternSendRecv(c, buf, mpi.DirUp, mpi.PatternOpts{})
	}
}

// LateSenderNonBlocking is the non-blocking variant of LateSender: the
// receivers post MPI_Irecv and block in MPI_Wait instead (an extension
// beyond the paper's initial list, exercising the use_isend/use_irecv
// flags of the communication pattern).
func LateSenderNonBlocking(c *mpi.Comm, basework, extrawork float64, r int) {
	c.Begin("late_sender_nonblocking")
	defer c.End()
	buf := c.BaseBuf()
	defer mpi.FreeBuf(buf)
	dd := distr.Val2{Low: basework + extrawork, High: basework}
	for i := 0; i < r; i++ {
		c.DoWork(distr.Cyclic2, dd, 1.0)
		mpi.PatternSendRecv(c, buf, mpi.DirUp, mpi.PatternOpts{UseIsend: true, UseIrecv: true})
	}
}

// LateReceiver makes the sending processes wait: the receiving (odd) ranks
// are loaded with extrawork while the senders use the synchronous
// protocol, so every send blocks until its receiver finally arrives
// (late_receiver).
func LateReceiver(c *mpi.Comm, basework, extrawork float64, r int) {
	c.Begin("late_receiver")
	defer c.End()
	buf := c.BaseBuf()
	defer mpi.FreeBuf(buf)
	dd := distr.Val2{Low: basework, High: basework + extrawork}
	for i := 0; i < r; i++ {
		c.DoWork(distr.Cyclic2, dd, 1.0)
		mpi.PatternSendRecv(c, buf, mpi.DirUp, mpi.PatternOpts{UseSsend: true})
	}
}

// --- MPI collective communication performance properties ----------------

// ImbalanceAtMPIBarrier executes df-distributed work followed by a barrier,
// r times (imbalance_at_mpi_barrier): lightly loaded ranks wait at the
// barrier for the heavily loaded ones.
func ImbalanceAtMPIBarrier(c *mpi.Comm, df distr.Func, dd distr.Desc, r int) {
	c.Begin("imbalance_at_mpi_barrier")
	defer c.End()
	for i := 0; i < r; i++ {
		c.DoWork(df, dd, 1.0)
		c.Barrier()
	}
}

// ImbalanceAtMPIAlltoall is the N×N variant (imbalance_at_mpi_alltoall):
// the all-to-all exchange cannot complete until its last participant
// arrives.
func ImbalanceAtMPIAlltoall(c *mpi.Comm, df distr.Func, dd distr.Desc, r int) {
	c.Begin("imbalance_at_mpi_alltoall")
	defer c.End()
	t, cnt := c.Base()
	sbuf := mpi.AllocBuf(t, cnt*c.Size())
	rbuf := mpi.AllocBuf(t, cnt*c.Size())
	defer mpi.FreeBuf(sbuf)
	defer mpi.FreeBuf(rbuf)
	for i := 0; i < r; i++ {
		c.DoWork(df, dd, 1.0)
		c.Alltoall(sbuf, rbuf)
	}
}

// ImbalanceAtMPIAllreduce is an extension property: imbalance in front of
// a synchronizing MPI_Allreduce.
func ImbalanceAtMPIAllreduce(c *mpi.Comm, df distr.Func, dd distr.Desc, r int) {
	c.Begin("imbalance_at_mpi_allreduce")
	defer c.End()
	sbuf := c.BaseBuf()
	rbuf := c.BaseBuf()
	defer mpi.FreeBuf(sbuf)
	defer mpi.FreeBuf(rbuf)
	for i := 0; i < r; i++ {
		c.DoWork(df, dd, 1.0)
		c.Allreduce(sbuf, rbuf, mpi.OpSum)
	}
}

// ImbalanceAtMPIAllgather is an extension property: imbalance in front of
// a synchronizing MPI_Allgather.
func ImbalanceAtMPIAllgather(c *mpi.Comm, df distr.Func, dd distr.Desc, r int) {
	c.Begin("imbalance_at_mpi_allgather")
	defer c.End()
	t, cnt := c.Base()
	sbuf := mpi.AllocBuf(t, cnt)
	rbuf := mpi.AllocBuf(t, cnt*c.Size())
	defer mpi.FreeBuf(sbuf)
	defer mpi.FreeBuf(rbuf)
	for i := 0; i < r; i++ {
		c.DoWork(df, dd, 1.0)
		c.Allgather(sbuf, rbuf)
	}
}

// LateBroadcast delays the root of an MPI_Bcast by rootextrawork seconds,
// so every other rank waits inside the broadcast (late_broadcast; EXPERT
// calls the resulting pattern "Late Broadcast", see paper Fig 3.5).
func LateBroadcast(c *mpi.Comm, basework, rootextrawork float64, root, r int) {
	c.Begin("late_broadcast")
	defer c.End()
	buf := c.BaseBuf()
	defer mpi.FreeBuf(buf)
	dd := distr.Val2N{Low: basework, High: basework + rootextrawork, N: root}
	for i := 0; i < r; i++ {
		c.DoWork(distr.Peak, dd, 1.0)
		c.Bcast(buf, root)
	}
}

// LateScatter is the MPI_Scatter analogue of LateBroadcast (late_scatter).
func LateScatter(c *mpi.Comm, basework, rootextrawork float64, root, r int) {
	c.Begin("late_scatter")
	defer c.End()
	t, cnt := c.Base()
	var sbuf *mpi.Buf
	if c.Rank() == root {
		sbuf = mpi.AllocBuf(t, cnt*c.Size())
		defer mpi.FreeBuf(sbuf)
	}
	rbuf := mpi.AllocBuf(t, cnt)
	defer mpi.FreeBuf(rbuf)
	dd := distr.Val2N{Low: basework, High: basework + rootextrawork, N: root}
	for i := 0; i < r; i++ {
		c.DoWork(distr.Peak, dd, 1.0)
		c.Scatter(sbuf, rbuf, root)
	}
}

// LateScatterv is the irregular variant (late_scatterv); portion sizes
// follow a linear distribution around the base count.
func LateScatterv(c *mpi.Comm, basework, rootextrawork float64, root, r int) {
	c.Begin("late_scatterv")
	defer c.End()
	t, cnt := c.Base()
	v := mpi.AllocVBuf(c, t, distr.Linear,
		distr.Val2{Low: 1, High: float64(2*cnt - 1)}, 1.0, root)
	defer mpi.FreeVBuf(v)
	dd := distr.Val2N{Low: basework, High: basework + rootextrawork, N: root}
	for i := 0; i < r; i++ {
		c.DoWork(distr.Peak, dd, 1.0)
		c.Scatterv(v)
	}
}

// EarlyReduce makes the MPI_Reduce root arrive early and wait for its last
// contributor: the root executes only rootwork seconds while every other
// rank executes rootwork+baseextrawork (early_reduce).
func EarlyReduce(c *mpi.Comm, rootwork, baseextrawork float64, root, r int) {
	c.Begin("early_reduce")
	defer c.End()
	sbuf := c.BaseBuf()
	rbuf := c.BaseBuf()
	defer mpi.FreeBuf(sbuf)
	defer mpi.FreeBuf(rbuf)
	dd := distr.Val2N{Low: rootwork + baseextrawork, High: rootwork, N: root}
	for i := 0; i < r; i++ {
		c.DoWork(distr.Peak, dd, 1.0)
		c.Reduce(sbuf, rbuf, mpi.OpSum, root)
	}
}

// EarlyGather is the MPI_Gather analogue of EarlyReduce (early_gather).
func EarlyGather(c *mpi.Comm, rootwork, baseextrawork float64, root, r int) {
	c.Begin("early_gather")
	defer c.End()
	t, cnt := c.Base()
	sbuf := mpi.AllocBuf(t, cnt)
	defer mpi.FreeBuf(sbuf)
	var rbuf *mpi.Buf
	if c.Rank() == root {
		rbuf = mpi.AllocBuf(t, cnt*c.Size())
		defer mpi.FreeBuf(rbuf)
	}
	dd := distr.Val2N{Low: rootwork + baseextrawork, High: rootwork, N: root}
	for i := 0; i < r; i++ {
		c.DoWork(distr.Peak, dd, 1.0)
		c.Gather(sbuf, rbuf, root)
	}
}

// EarlyGatherv is the irregular variant (early_gatherv).
func EarlyGatherv(c *mpi.Comm, rootwork, baseextrawork float64, root, r int) {
	c.Begin("early_gatherv")
	defer c.End()
	t, cnt := c.Base()
	v := mpi.AllocVBuf(c, t, distr.Linear,
		distr.Val2{Low: 1, High: float64(2*cnt - 1)}, 1.0, root)
	defer mpi.FreeVBuf(v)
	dd := distr.Val2N{Low: rootwork + baseextrawork, High: rootwork, N: root}
	for i := 0; i < r; i++ {
		c.DoWork(distr.Peak, dd, 1.0)
		c.Gatherv(v)
	}
}

// UnparallelizedMPICode is the sequential-property extension foreseen in
// §5 ("we also need test functions for sequential performance
// properties"): all useful work happens on rank 0 while every other rank
// idles at the synchronizing barrier — the classic unparallelized code
// section.
func UnparallelizedMPICode(c *mpi.Comm, serialwork float64, r int) {
	c.Begin("unparallelized_mpi_code")
	defer c.End()
	dd := distr.Val2N{Low: 0, High: serialwork, N: 0}
	for i := 0; i < r; i++ {
		c.DoWork(distr.Peak, dd, 1.0)
		c.Barrier()
	}
}

// GrowingImbalanceAtMPIBarrier makes the severity a function of the
// iteration number, exactly as the paper suggests: "more complicated
// implementations are possible, e.g., where the severity of the pattern is
// a function of the iteration number.  This can easily be implemented by
// using the scale factor parameter of the distribution functions."
// Iteration i runs with scale factor i+1, so the per-iteration waiting
// time grows linearly through the run.
func GrowingImbalanceAtMPIBarrier(c *mpi.Comm, df distr.Func, dd distr.Desc, r int) {
	c.Begin("growing_imbalance_at_mpi_barrier")
	defer c.End()
	for i := 0; i < r; i++ {
		c.DoWork(df, dd, float64(i+1))
		c.Barrier()
	}
}

// DominatedByCommunication is an extension property: negligible
// computation interleaved with fine-grained messaging and barriers, so MPI
// time dominates execution ("communication dominates" in the ASL catalog).
func DominatedByCommunication(c *mpi.Comm, msgwork float64, r int) {
	c.Begin("dominated_by_communication")
	defer c.End()
	sbuf := c.BaseBuf()
	rbuf := c.BaseBuf()
	defer mpi.FreeBuf(sbuf)
	defer mpi.FreeBuf(rbuf)
	for i := 0; i < r; i++ {
		c.DoWork(distr.Same, distr.Val1{Val: msgwork}, 1.0)
		mpi.PatternShift(c, sbuf, rbuf, mpi.DirUp, mpi.PatternOpts{})
		c.Barrier()
	}
}
