// Package distr implements the ATS distribution layer (paper §3.1.2).
//
// A distribution assigns to each participant of a parallel group a scalar
// value (an amount of work in seconds, or a number of buffer elements).
// Following the paper, a distribution is specified by the combination of a
// distribution function (the type of the distribution) and a distribution
// descriptor (its parameters), plus a proportional scale factor:
//
//	value := df(me, sz, scale, dd)
//
// The seven predefined functions of the ATS prototype are provided —
// Same, Cyclic2, Block2, Linear, Peak, Cyclic3, Block3 — together with the
// four predefined descriptor types (one to three parameters).  Users may
// supply their own functions with the same signature; Register makes them
// available by name to the test-program generator and the CLI drivers.
package distr

import (
	"fmt"
	"sort"
	"sync"
)

// Desc is a distribution descriptor: the parameter block passed to a
// distribution function.  The concrete types below mirror the C structs
// val1_distr_t .. val3_distr_t of the original ATS.
type Desc interface {
	// Kind names the descriptor type, e.g. "val2".
	Kind() string
}

// Val1 carries a single value (val1_distr_t).
type Val1 struct {
	Val float64
}

// Kind implements Desc.
func (Val1) Kind() string { return "val1" }

// Val2 carries a low and a high value (val2_distr_t).
type Val2 struct {
	Low  float64
	High float64
}

// Kind implements Desc.
func (Val2) Kind() string { return "val2" }

// Val2N carries low/high values and an integer parameter, used by the Peak
// distribution to select the peaking rank (val2_n_distr_t).
type Val2N struct {
	Low  float64
	High float64
	N    int
}

// Kind implements Desc.
func (Val2N) Kind() string { return "val2n" }

// Val3 carries low, medium and high values (val3_distr_t).
type Val3 struct {
	Low  float64
	High float64
	Med  float64
}

// Kind implements Desc.
func (Val3) Kind() string { return "val3" }

// Func is the ATS generic distribution function type: it returns the value
// for participant me of a group of size sz, scaled by scale, according to
// descriptor dd.  Implementations must be pure (same inputs, same output):
// the buffer-management layer relies on every rank computing every other
// rank's share identically.
type Func func(me, sz int, scale float64, dd Desc) float64

// mustVal1 etc. convert a descriptor or panic with a helpful message; the
// panic indicates a programming error in test construction, mirroring the
// undefined behaviour a mismatched C struct cast would have produced.
func mustVal1(name string, dd Desc) Val1 {
	v, ok := dd.(Val1)
	if !ok {
		panic(fmt.Sprintf("distr: %s requires a Val1 descriptor, got %T", name, dd))
	}
	return v
}

func mustVal2(name string, dd Desc) Val2 {
	v, ok := dd.(Val2)
	if !ok {
		panic(fmt.Sprintf("distr: %s requires a Val2 descriptor, got %T", name, dd))
	}
	return v
}

func mustVal2N(name string, dd Desc) Val2N {
	v, ok := dd.(Val2N)
	if !ok {
		panic(fmt.Sprintf("distr: %s requires a Val2N descriptor, got %T", name, dd))
	}
	return v
}

func mustVal3(name string, dd Desc) Val3 {
	v, ok := dd.(Val3)
	if !ok {
		panic(fmt.Sprintf("distr: %s requires a Val3 descriptor, got %T", name, dd))
	}
	return v
}

func checkMeSz(name string, me, sz int) {
	if sz <= 0 {
		panic(fmt.Sprintf("distr: %s called with non-positive group size %d", name, sz))
	}
	if me < 0 || me >= sz {
		panic(fmt.Sprintf("distr: %s called with rank %d outside group of size %d", name, me, sz))
	}
}

// Same gives every participant the same value: Val * scale (df_same).
func Same(me, sz int, scale float64, dd Desc) float64 {
	checkMeSz("Same", me, sz)
	return mustVal1("Same", dd).Val * scale
}

// Cyclic2 alternates between Low (even ranks) and High (odd ranks)
// (df_cyclic2).
func Cyclic2(me, sz int, scale float64, dd Desc) float64 {
	checkMeSz("Cyclic2", me, sz)
	v := mustVal2("Cyclic2", dd)
	if me%2 == 0 {
		return v.Low * scale
	}
	return v.High * scale
}

// Block2 assigns Low to the first half of the group and High to the second
// half (df_block2).  With odd group sizes the first block is the larger.
func Block2(me, sz int, scale float64, dd Desc) float64 {
	checkMeSz("Block2", me, sz)
	v := mustVal2("Block2", dd)
	if 2*me < sz {
		return v.Low * scale
	}
	return v.High * scale
}

// Linear interpolates linearly from Low at rank 0 to High at rank sz-1
// (df_linear).  A singleton group receives Low.
func Linear(me, sz int, scale float64, dd Desc) float64 {
	checkMeSz("Linear", me, sz)
	v := mustVal2("Linear", dd)
	if sz == 1 {
		return v.Low * scale
	}
	frac := float64(me) / float64(sz-1)
	return (v.Low + (v.High-v.Low)*frac) * scale
}

// Peak gives High to rank N and Low to everyone else (df_peak).  If N lies
// outside the group no rank peaks.
func Peak(me, sz int, scale float64, dd Desc) float64 {
	checkMeSz("Peak", me, sz)
	v := mustVal2N("Peak", dd)
	if me == v.N {
		return v.High * scale
	}
	return v.Low * scale
}

// Cyclic3 cycles Low, Med, High by rank modulo three (df_cyclic3).
func Cyclic3(me, sz int, scale float64, dd Desc) float64 {
	checkMeSz("Cyclic3", me, sz)
	v := mustVal3("Cyclic3", dd)
	switch me % 3 {
	case 0:
		return v.Low * scale
	case 1:
		return v.Med * scale
	default:
		return v.High * scale
	}
}

// Block3 splits the group into three nearly equal blocks receiving Low,
// Med, High respectively (df_block3).  Remainder ranks go to the earlier
// blocks, matching a block distribution of sz items over 3 buckets.
func Block3(me, sz int, scale float64, dd Desc) float64 {
	checkMeSz("Block3", me, sz)
	v := mustVal3("Block3", dd)
	// Block boundaries of a balanced 3-way block distribution.
	b1 := (sz + 2) / 3
	b2 := b1 + (sz+1)/3
	switch {
	case me < b1:
		return v.Low * scale
	case me < b2:
		return v.Med * scale
	default:
		return v.High * scale
	}
}

// Total sums the distribution over the whole group — the aggregate work or
// buffer volume it describes.
func Total(df Func, sz int, scale float64, dd Desc) float64 {
	var t float64
	for i := 0; i < sz; i++ {
		t += df(i, sz, scale, dd)
	}
	return t
}

// Max returns the maximum value over the group.
func Max(df Func, sz int, scale float64, dd Desc) float64 {
	m := df(0, sz, scale, dd)
	for i := 1; i < sz; i++ {
		if v := df(i, sz, scale, dd); v > m {
			m = v
		}
	}
	return m
}

// Imbalance returns the theoretical load-imbalance waiting time of the
// distribution: the sum over ranks of (max - value).  For a work
// distribution followed by a synchronizing operation this is exactly the
// total waiting time a perfect analysis tool should report.
func Imbalance(df Func, sz int, scale float64, dd Desc) float64 {
	m := Max(df, sz, scale, dd)
	var w float64
	for i := 0; i < sz; i++ {
		w += m - df(i, sz, scale, dd)
	}
	return w
}

// registry maps distribution names to functions so that generated test
// programs and CLI drivers can select distributions by name.
var (
	regMu    sync.RWMutex
	registry = map[string]Func{
		"same":    Same,
		"cyclic2": Cyclic2,
		"block2":  Block2,
		"linear":  Linear,
		"peak":    Peak,
		"cyclic3": Cyclic3,
		"block3":  Block3,
	}
	// descKinds records which descriptor type each named distribution
	// expects, for CLI parsing and program generation.
	descKinds = map[string]string{
		"same":    "val1",
		"cyclic2": "val2",
		"block2":  "val2",
		"linear":  "val2",
		"peak":    "val2n",
		"cyclic3": "val3",
		"block3":  "val3",
	}
)

// Register adds a user-defined distribution under name.  kind must be one
// of "val1", "val2", "val2n", "val3" and names the descriptor type the
// function expects.  Registering an existing name replaces it.
func Register(name, kind string, f Func) error {
	switch kind {
	case "val1", "val2", "val2n", "val3":
	default:
		return fmt.Errorf("distr: unknown descriptor kind %q", kind)
	}
	if name == "" || f == nil {
		return fmt.Errorf("distr: Register requires a name and a function")
	}
	regMu.Lock()
	defer regMu.Unlock()
	registry[name] = f
	descKinds[name] = kind
	return nil
}

// Lookup returns the distribution function registered under name.
func Lookup(name string) (Func, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	f, ok := registry[name]
	return f, ok
}

// DescKind returns the descriptor kind expected by the named distribution.
func DescKind(name string) (string, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	k, ok := descKinds[name]
	return k, ok
}

// Names returns the sorted list of registered distribution names.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ParseDesc builds a descriptor of the given kind from up to three float
// parameters and one integer, as supplied on a command line:
//
//	val1:  low            (Val = low)
//	val2:  low, high
//	val2n: low, high, n
//	val3:  low, high, med
func ParseDesc(kind string, low, high, med float64, n int) (Desc, error) {
	switch kind {
	case "val1":
		return Val1{Val: low}, nil
	case "val2":
		return Val2{Low: low, High: high}, nil
	case "val2n":
		return Val2N{Low: low, High: high, N: n}, nil
	case "val3":
		return Val3{Low: low, High: high, Med: med}, nil
	default:
		return nil, fmt.Errorf("distr: unknown descriptor kind %q", kind)
	}
}
