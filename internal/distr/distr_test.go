package distr

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestSame(t *testing.T) {
	dd := Val1{Val: 3.5}
	for me := 0; me < 7; me++ {
		if got := Same(me, 7, 2.0, dd); !almostEqual(got, 7.0) {
			t.Errorf("Same(%d) = %v, want 7", me, got)
		}
	}
}

func TestCyclic2(t *testing.T) {
	dd := Val2{Low: 1, High: 2}
	want := []float64{1, 2, 1, 2, 1}
	for me, w := range want {
		if got := Cyclic2(me, 5, 1, dd); !almostEqual(got, w) {
			t.Errorf("Cyclic2(%d) = %v, want %v", me, got, w)
		}
	}
}

func TestBlock2(t *testing.T) {
	dd := Val2{Low: 1, High: 2}
	cases := []struct {
		sz   int
		want []float64
	}{
		{4, []float64{1, 1, 2, 2}},
		{5, []float64{1, 1, 1, 2, 2}}, // first block larger on odd sizes
		{1, []float64{1}},
	}
	for _, tc := range cases {
		for me, w := range tc.want {
			if got := Block2(me, tc.sz, 1, dd); !almostEqual(got, w) {
				t.Errorf("Block2(%d, %d) = %v, want %v", me, tc.sz, got, w)
			}
		}
	}
}

func TestLinear(t *testing.T) {
	dd := Val2{Low: 0, High: 10}
	want := []float64{0, 2.5, 5, 7.5, 10}
	for me, w := range want {
		if got := Linear(me, 5, 1, dd); !almostEqual(got, w) {
			t.Errorf("Linear(%d) = %v, want %v", me, got, w)
		}
	}
	if got := Linear(0, 1, 1, dd); !almostEqual(got, 0) {
		t.Errorf("Linear singleton = %v, want Low", got)
	}
}

func TestPeak(t *testing.T) {
	dd := Val2N{Low: 1, High: 9, N: 2}
	want := []float64{1, 1, 9, 1}
	for me, w := range want {
		if got := Peak(me, 4, 1, dd); !almostEqual(got, w) {
			t.Errorf("Peak(%d) = %v, want %v", me, got, w)
		}
	}
	// Out-of-range peak: nobody peaks.
	dd.N = 99
	for me := 0; me < 4; me++ {
		if got := Peak(me, 4, 1, dd); !almostEqual(got, 1) {
			t.Errorf("Peak(%d) with absent N = %v, want Low", me, got)
		}
	}
}

func TestCyclic3(t *testing.T) {
	dd := Val3{Low: 1, Med: 2, High: 3}
	want := []float64{1, 2, 3, 1, 2, 3, 1}
	for me, w := range want {
		if got := Cyclic3(me, 7, 1, dd); !almostEqual(got, w) {
			t.Errorf("Cyclic3(%d) = %v, want %v", me, got, w)
		}
	}
}

func TestBlock3(t *testing.T) {
	dd := Val3{Low: 1, Med: 2, High: 3}
	cases := []struct {
		sz   int
		want []float64
	}{
		{3, []float64{1, 2, 3}},
		{6, []float64{1, 1, 2, 2, 3, 3}},
		{7, []float64{1, 1, 1, 2, 2, 3, 3}},
		{8, []float64{1, 1, 1, 2, 2, 2, 3, 3}},
	}
	for _, tc := range cases {
		for me, w := range tc.want {
			if got := Block3(me, tc.sz, 1, dd); !almostEqual(got, w) {
				t.Errorf("Block3(%d, %d) = %v, want %v", me, tc.sz, got, w)
			}
		}
	}
}

func TestScaleFactor(t *testing.T) {
	dd := Val2{Low: 2, High: 4}
	for _, f := range []Func{Cyclic2, Block2, Linear} {
		for me := 0; me < 4; me++ {
			if got, want := f(me, 4, 3.0, dd), 3*f(me, 4, 1.0, dd); !almostEqual(got, want) {
				t.Errorf("scale not proportional at rank %d: %v vs %v", me, got, want)
			}
		}
	}
}

func TestTotalMaxImbalance(t *testing.T) {
	dd := Val2{Low: 1, High: 3}
	if got := Total(Block2, 4, 1, dd); !almostEqual(got, 8) {
		t.Errorf("Total = %v, want 8", got)
	}
	if got := Max(Block2, 4, 1, dd); !almostEqual(got, 3) {
		t.Errorf("Max = %v, want 3", got)
	}
	// Imbalance: (3-1)+(3-1)+0+0 = 4.
	if got := Imbalance(Block2, 4, 1, dd); !almostEqual(got, 4) {
		t.Errorf("Imbalance = %v, want 4", got)
	}
	// Balanced distribution has zero imbalance.
	if got := Imbalance(Same, 8, 1, Val1{Val: 5}); !almostEqual(got, 0) {
		t.Errorf("Imbalance(Same) = %v, want 0", got)
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	assertPanics("wrong descriptor", func() { Same(0, 1, 1, Val2{}) })
	assertPanics("rank out of range", func() { Cyclic2(5, 4, 1, Val2{}) })
	assertPanics("zero size", func() { Linear(0, 0, 1, Val2{}) })
}

func TestRegistryLookup(t *testing.T) {
	for _, name := range []string{"same", "cyclic2", "block2", "linear", "peak", "cyclic3", "block3"} {
		if _, ok := Lookup(name); !ok {
			t.Errorf("predefined distribution %q not registered", name)
		}
		if _, ok := DescKind(name); !ok {
			t.Errorf("descriptor kind for %q missing", name)
		}
	}
	if _, ok := Lookup("no_such"); ok {
		t.Error("lookup of unknown name succeeded")
	}
}

func TestRegisterCustom(t *testing.T) {
	err := Register("test_reverse_linear", "val2", func(me, sz int, scale float64, dd Desc) float64 {
		return Linear(sz-1-me, sz, scale, dd)
	})
	if err != nil {
		t.Fatal(err)
	}
	f, ok := Lookup("test_reverse_linear")
	if !ok {
		t.Fatal("custom distribution not found")
	}
	if got := f(0, 5, 1, Val2{Low: 0, High: 10}); !almostEqual(got, 10) {
		t.Errorf("reverse linear(0) = %v, want 10", got)
	}
	if err := Register("bad", "val9", f); err == nil {
		t.Error("register with bad kind succeeded")
	}
	if err := Register("", "val1", f); err == nil {
		t.Error("register with empty name succeeded")
	}
}

func TestParseDesc(t *testing.T) {
	d, err := ParseDesc("val2n", 1, 2, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	v := d.(Val2N)
	if v.Low != 1 || v.High != 2 || v.N != 3 {
		t.Errorf("ParseDesc = %+v", v)
	}
	if _, err := ParseDesc("nope", 0, 0, 0, 0); err == nil {
		t.Error("parse of unknown kind succeeded")
	}
}

// Property-based invariants over all predefined distributions.
func TestQuickInvariants(t *testing.T) {
	descFor := func(name string, low, high, med float64, n int) Desc {
		kind, _ := DescKind(name)
		d, _ := ParseDesc(kind, low, high, med, n)
		return d
	}
	for _, name := range Names() {
		if len(name) > 4 && name[:5] == "test_" {
			continue
		}
		f, _ := Lookup(name)
		name := name
		// Invariant 1: value is always one of {low, high, med} or a
		// convex combination (linear), and scaling is proportional.
		inv := func(meRaw, szRaw uint8, lowRaw, highRaw uint16) bool {
			sz := int(szRaw%16) + 1
			me := int(meRaw) % sz
			low := float64(lowRaw) / 100
			high := low + float64(highRaw)/100
			med := (low + high) / 2
			dd := descFor(name, low, high, med, sz/2)
			v := f(me, sz, 1.0, dd)
			if v < low-1e-9 || v > high+1e-9 {
				t.Logf("%s(%d,%d) = %v outside [%v,%v]", name, me, sz, v, low, high)
				return false
			}
			// Proportional scaling.
			if !almostEqual(f(me, sz, 2.0, dd), 2*v) {
				return false
			}
			return true
		}
		if err := quick.Check(inv, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: invariant violated: %v", name, err)
		}
	}
}

// Total of any distribution equals the sum of its per-rank values (the
// buffer layer depends on every rank computing identical counts).
func TestQuickTotalConsistency(t *testing.T) {
	inv := func(szRaw uint8, lowRaw, highRaw uint16) bool {
		sz := int(szRaw%32) + 1
		dd := Val2{Low: float64(lowRaw), High: float64(highRaw)}
		var sum float64
		for i := 0; i < sz; i++ {
			sum += Linear(i, sz, 1.0, dd)
		}
		return almostEqual(sum, Total(Linear, sz, 1.0, dd))
	}
	if err := quick.Check(inv, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
