package conformance

import (
	"testing"

	"repro/internal/analyzer"
	"repro/internal/perturb"
)

// Level 0 of the robustness sweep must be bit-identical to the
// unperturbed oracle: same outcome, same profile hash.
func TestRobustLevelZeroMatchesUnperturbed(t *testing.T) {
	cs := Generate(11, Config{})
	base, err := Check(cs, CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ro, err := CheckRobust(cs, CheckOptions{}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if !ro.OK() {
		t.Fatalf("level-0 sweep failed: %+v", ro.FailOutcome().Violations)
	}
	if ro.Outcomes[0].Hash != base.Hash {
		t.Fatalf("level 0 hash %s != unperturbed hash %s", ro.Outcomes[0].Hash, base.Hash)
	}
	if ro.Outcomes[0].Events != base.Events {
		t.Fatalf("level 0 events %d != unperturbed %d", ro.Outcomes[0].Events, base.Events)
	}
}

// A non-zero perturbation level must actually perturb: the profile hash
// changes relative to level 0, and — because the model is a pure function
// of the profile — two sweeps of the same case agree level by level.
func TestRobustPerturbsAndIsDeterministic(t *testing.T) {
	cs := Generate(11, Config{})
	ro1, err := CheckRobust(cs, CheckOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ro1.OK() {
		t.Fatalf("robust sweep failed at level %d: %+v", ro1.FailLevel(), ro1.FailOutcome().Violations)
	}
	if len(ro1.Outcomes) != len(DefaultLevels) {
		t.Fatalf("got %d outcomes, want %d", len(ro1.Outcomes), len(DefaultLevels))
	}
	changed := false
	for i := 1; i < len(ro1.Outcomes); i++ {
		if ro1.Outcomes[i].Hash != ro1.Outcomes[0].Hash {
			changed = true
		}
	}
	if !changed {
		t.Fatalf("no perturbation level changed the profile hash — the model is not wired in")
	}
	ro2, err := CheckRobust(cs, CheckOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ro1.Outcomes {
		if ro1.Outcomes[i].Hash != ro2.Outcomes[i].Hash {
			t.Fatalf("level %d not reproducible: %s != %s",
				ro1.Levels[i], ro1.Outcomes[i].Hash, ro2.Outcomes[i].Hash)
		}
	}
}

// The calibrated noise floor is positive under perturbation, zero without,
// independent of the profile seed, and cached.
func TestCalibratedNoiseFloor(t *testing.T) {
	if f := CalibratedNoiseFloor(4, 2, perturb.Profile{}); f != 0 {
		t.Fatalf("zero profile floor = %v, want 0", f)
	}
	f1 := CalibratedNoiseFloor(4, 2, perturb.Level(1, 2))
	if f1 <= 0 {
		t.Fatalf("level-2 calibrated floor = %v, want > 0", f1)
	}
	if f2 := CalibratedNoiseFloor(4, 2, perturb.Level(99, 2)); f2 != f1 {
		t.Fatalf("floor depends on profile seed: %v != %v", f2, f1)
	}
	if f3 := CalibratedNoiseFloor(4, 2, perturb.Level(1, 3)); f3 <= f1 {
		t.Fatalf("level-3 floor %v not above level-2 floor %v", f3, f1)
	}
}

// A defective analyzer (simulated by dropping a property) must still be
// caught under perturbation: robustness widens tolerances, it does not
// blind the oracle.
func TestRobustStillCatchesDroppedProperty(t *testing.T) {
	var cs Case
	drop := ""
	for seed := uint64(1); seed <= 50 && drop == ""; seed++ {
		cs = Generate(seed, Config{})
		for _, cp := range cs.Props {
			if w := expectedWait(cs, cp); w > 0 {
				drop = analyzer.ExpectedDetection[cp.Name]
				break
			}
		}
	}
	if drop == "" {
		t.Fatal("no seed in 1..50 generated a closed-form property")
	}
	ro, err := CheckRobust(cs, CheckOptions{DropProperty: drop}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ro.OK() {
		t.Fatalf("dropping %s went unnoticed across the whole sweep", drop)
	}
}
