package conformance

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/perturb"
)

// TestDiffEnginesCorpus byte-compares both engines over every committed
// corpus case — the migration oracle on the curated regression surface.
func TestDiffEnginesCorpus(t *testing.T) {
	entries, err := LoadCorpus(filepath.Join("..", "..", "testdata", "conformance-corpus"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		out, err := DiffEngines(e.Case, perturb.Profile{})
		if err != nil {
			t.Errorf("%s (%s): %v", e.Name, e.Case, err)
			continue
		}
		if out.BytesCompared && out.TraceBytes == 0 {
			t.Errorf("%s: compared an empty trace", e.Name)
		}
	}
}

// TestDiffEnginesGenerated sweeps generated seeds through the oracle.  The
// default count keeps `go test` fast; CI's scale-smoke job raises it past
// the 200-seed acceptance bar with ATS_DIFF_SEEDS (atsfuzz diff -seeds
// drives the same sweep from the command line).
func TestDiffEnginesGenerated(t *testing.T) {
	n := 12
	if s := os.Getenv("ATS_DIFF_SEEDS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("ATS_DIFF_SEEDS=%q: %v", s, err)
		}
		n = v
	} else if testing.Short() {
		n = 4
	}
	compared := 0
	for seed := uint64(1); seed <= uint64(n); seed++ {
		cs := Generate(seed, Config{})
		out, err := DiffEngines(cs, perturb.Profile{})
		if err != nil {
			t.Fatalf("seed %d (%s): %v", seed, cs, err)
		}
		if out.BytesCompared {
			compared++
		}
	}
	if compared == 0 {
		t.Fatalf("no generated case was byte-compared (all nondeterministic?)")
	}
}

// TestDiffEnginesPerturbed runs the oracle under every perturbation level:
// the perturbation model keys jitter off structural coordinates (rank,
// sequence numbers), not execution order, so engine equivalence must
// survive it at every level 0–3.
func TestDiffEnginesPerturbed(t *testing.T) {
	cs := Generate(7, Config{})
	for level := 0; level <= perturb.MaxLevel; level++ {
		prof := perturb.Level(cs.Seed, level)
		if _, err := DiffEngines(cs, prof); err != nil {
			t.Errorf("level %d (%s): %v", level, prof, err)
		}
	}
}

// TestDiffEnginesErrorSurface pins the harness's own failure reporting:
// an invalid case must fail validation, not reach either engine.
func TestDiffEnginesErrorSurface(t *testing.T) {
	cs := Generate(3, Config{})
	cs.Procs = 0
	if _, err := DiffEngines(cs, perturb.Profile{}); err == nil {
		t.Fatal("DiffEngines accepted an invalid case")
	}
}

// TestDiffEngineApps byte-compares the engines over the Ch.4 application
// kernels — the closest things the suite has to real programs, covering
// master/worker wildcard scheduling, halo exchanges, pipelines, and the
// hybrid MPI+OpenMP solver.
func TestDiffEngineApps(t *testing.T) {
	cases := []struct {
		name  string
		procs int
		body  func(c *mpi.Comm)
	}{
		{"jacobi", 4, func(c *mpi.Comm) {
			apps.Jacobi(c, apps.JacobiConfig{Rows: 16, Cols: 8, Iters: 3})
		}},
		{"jacobi-imbalance", 4, func(c *mpi.Comm) {
			apps.Jacobi(c, apps.JacobiConfig{Rows: 16, Cols: 8, Iters: 3, Inject: apps.InjectImbalance})
		}},
		{"jacobi2d", 4, func(c *mpi.Comm) {
			apps.Jacobi2D(c, apps.Jacobi2DConfig{Rows: 8, Cols: 8, Iters: 2})
		}},
		{"masterworker", 5, func(c *mpi.Comm) {
			apps.MasterWorker(c, apps.MasterWorkerConfig{Tasks: 17, TaskCost: 1e-4})
		}},
		{"masterworker-imbalance", 4, func(c *mpi.Comm) {
			apps.MasterWorker(c, apps.MasterWorkerConfig{Tasks: 9, TaskCost: 1e-4, Inject: apps.InjectImbalance})
		}},
		{"pipeline", 4, func(c *mpi.Comm) {
			apps.Pipeline(c, apps.PipelineConfig{Blocks: 6, StageCost: 1e-4})
		}},
		{"hybridheat", 3, func(c *mpi.Comm) {
			apps.HybridHeat(c, apps.HybridHeatConfig{Rows: 8, Cols: 4, Iters: 2, Threads: 3})
		}},
		{"composite-all-mpi", 4, func(c *mpi.Comm) {
			core.CompositeAllMPI(c, core.DefaultComposite())
		}},
		{"two-communicators", 6, func(c *mpi.Comm) {
			core.TwoCommunicators(c, core.DefaultComposite())
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DiffEngineBodies(tc.procs, tc.body); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// FuzzDiffEngines is the native-fuzzing entry point for the migration
// oracle: any generatable seed must produce byte-identical traces on both
// engines (or be a documented nondeterministic case).
func FuzzDiffEngines(f *testing.F) {
	for _, seed := range []uint64{1, 42, 1 << 32} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		cs := Generate(seed, Config{})
		if _, err := DiffEngines(cs, perturb.Profile{}); err != nil {
			min := Shrink(cs, CheckOptions{SkipDeterminism: true})
			blob, _ := MarshalCase(min)
			t.Fatalf("seed %d (%s): %v\nshrunken case:\n%s", seed, cs, err, blob)
		}
	})
}
