package conformance

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/analyzer"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/omp"
	"repro/internal/perturb"
	"repro/internal/profile"
	"repro/internal/trace"
)

// Axis identifiers for violations.
const (
	// AxisRun: the case failed to execute (deadlock, timeout, crash).
	AxisRun = "run"
	// AxisPositive: an injected property was missed, mislocalized, or its
	// measured wait diverged from the closed form.
	AxisPositive = "positive"
	// AxisNegative: a non-injected property rose above the noise floor.
	AxisNegative = "negative"
	// AxisDeterminism: the identical case produced a different profile
	// hash.  The rerun goes through the streaming pipeline (chunk spool +
	// incremental analysis), so this axis simultaneously proves that the
	// streamed and materialized analysis paths are byte-identical.
	AxisDeterminism = "determinism"
)

// Violation is one oracle failure.
type Violation struct {
	Axis     string `json:"axis"`
	Property string `json:"property,omitempty"`
	Detail   string `json:"detail"`
}

func (v Violation) String() string {
	if v.Property == "" {
		return fmt.Sprintf("[%s] %s", v.Axis, v.Detail)
	}
	return fmt.Sprintf("[%s] %s: %s", v.Axis, v.Property, v.Detail)
}

// Outcome is the oracle verdict for one case.
type Outcome struct {
	Case       Case
	Hash       string // canonical profile content hash of the run
	Events     int    // trace size
	Findings   int    // significant findings reported
	Violations []Violation
}

// OK reports whether every axis held.
func (o Outcome) OK() bool { return len(o.Violations) == 0 }

// CheckOptions tunes the oracle.
type CheckOptions struct {
	// NoiseFloor is the absolute waiting time (seconds) a non-injected
	// property may accumulate before the negative axis fires; it absorbs
	// the µs-scale cost-model skew at phase-separator barriers
	// (default 0.002).
	NoiseFloor float64
	// RelTol and AbsTol bound the positive-axis wait mismatch:
	// |measured − expected| ≤ AbsTol + RelTol·expected + cost-model slack
	// (defaults 0.05 and 0.002).
	RelTol, AbsTol float64
	// SkipDeterminism skips the second (streamed) run and hash comparison.
	SkipDeterminism bool
	// DropProperty removes an analyzer property from the report before
	// checking — fault injection simulating a defective analyzer, used to
	// validate that the oracle notices and that the shrinker minimizes.
	DropProperty string
	// Perturb applies a deterministic timing-perturbation profile to the
	// run (robustness axis, see package perturb).  The zero profile leaves
	// the oracle exactly as unperturbed.  A non-zero profile widens the
	// positive-axis tolerance by the profile's wait budget and raises the
	// negative-axis floor to the empirically calibrated noise floor for
	// the case's shape; the determinism axis still demands byte-identical
	// reruns, because perturbation is a pure function of the profile.
	Perturb perturb.Profile
}

func (opt CheckOptions) withDefaults() CheckOptions {
	if opt.NoiseFloor <= 0 {
		opt.NoiseFloor = 0.002
	}
	if opt.RelTol <= 0 {
		opt.RelTol = 0.05
	}
	if opt.AbsTol <= 0 {
		opt.AbsTol = 0.002
	}
	return opt
}

// companions maps an injected core property to analyzer properties it
// legitimately co-produces besides its expected detection; the negative
// axis must not flag these.
var companions = map[string][]string{
	// The critical-section rounds are barrier-resynced, so the serialized
	// exits also skew the resync barrier (documented in properties_omp.go).
	"serialization_at_omp_critical": {analyzer.PropOMPBarrier},
	// The sending ranks' teams are internally imbalanced by construction;
	// the join wait inside the OMP region is the *cause* of the MPI-level
	// late sender, not a spurious finding.
	"hybrid_omp_imbalance_causes_late_sender": {analyzer.PropOMPRegion},
}

// NondeterministicWaits lists core properties whose per-thread wait
// *attribution* legitimately varies between runs: virtual-mode lock entry
// follows real arrival order at the lock (see internal/omp.Lock), so only
// the aggregate serialization time is scheduling-independent.  Cases
// containing one keep the positive and negative axes (which check
// aggregates) but skip the byte-identical-hash determinism axis.
var NondeterministicWaits = map[string]bool{
	"serialization_at_omp_critical": true,
}

func hasNondeterministicWaits(cs Case) bool {
	for _, p := range cs.Props {
		if NondeterministicWaits[p.Name] {
			return true
		}
	}
	return false
}

// Validate checks that a case is well-formed and replayable: known
// properties, resolvable distributions, a sane shape.
func (cs Case) Validate() error {
	if cs.Schema != CaseSchema {
		return fmt.Errorf("conformance: case schema %d, want %d", cs.Schema, CaseSchema)
	}
	if cs.Procs < 1 || cs.Threads < 1 {
		return fmt.Errorf("conformance: invalid shape %dx%d", cs.Procs, cs.Threads)
	}
	if len(cs.Props) == 0 {
		return fmt.Errorf("conformance: case has no properties")
	}
	for _, cp := range cs.Props {
		spec, ok := core.Get(cp.Name)
		if !ok {
			return fmt.Errorf("conformance: unknown property %q", cp.Name)
		}
		for _, p := range spec.Params {
			switch p.Kind {
			case core.ParamFloat:
				if _, ok := cp.Float[p.Name]; !ok {
					return fmt.Errorf("conformance: %s: missing float arg %q", cp.Name, p.Name)
				}
			case core.ParamInt:
				if _, ok := cp.Int[p.Name]; !ok {
					return fmt.Errorf("conformance: %s: missing int arg %q", cp.Name, p.Name)
				}
			case core.ParamDistr:
				ds, ok := cp.Distr[p.Name]
				if !ok {
					return fmt.Errorf("conformance: %s: missing distr arg %q", cp.Name, p.Name)
				}
				if _, _, err := ds.Resolve(); err != nil {
					return fmt.Errorf("conformance: %s: %w", cp.Name, err)
				}
			}
		}
	}
	return nil
}

// sepRegion names the harness's own phase-separator barrier region.  Some
// property functions legitimately end with ranks skewed (e.g.
// late_receiver on an odd world leaves the unpaired rank ahead); the
// separator re-synchronizes before the next phase, and the wait it absorbs
// belongs to the harness, not the program under test — the oracle excludes
// waits localized under this region from the negative axis.
const sepRegion = "conformance_separator"

// runCase executes the composite: one MPI world, every injected property
// in order, separated by barriers (the paper's composite-program shape,
// cf. core.CompositeAllMPI).  Pure-OpenMP properties run per rank on the
// rank's own thread team.
func runCase(cs Case, prof perturb.Profile) (*trace.Trace, error) {
	return mpi.Run(mpi.Options{Procs: cs.Procs, Perturb: perturb.NewModel(prof)}, caseBody(cs))
}

// caseBody builds the per-rank program of the composite case.
func caseBody(cs Case) func(c *mpi.Comm) {
	team := omp.Options{Threads: cs.Threads}
	return func(c *mpi.Comm) {
		c.Begin("conformance_case")
		defer c.End()
		for _, cp := range cs.Props {
			spec, _ := core.Get(cp.Name)
			spec.Run(core.Env{Comm: c, Ctx: c.Ctx(), OMP: team}, cp.Args())
			c.Begin(sepRegion)
			c.Barrier()
			c.End()
		}
	}
}

// expectedWait returns the case-level closed-form wait for one injected
// property: the spec's per-environment form, times the rank count for
// pure-OpenMP properties (every rank runs its own team).
func expectedWait(cs Case, cp CaseProp) float64 {
	spec, _ := core.Get(cp.Name)
	w := spec.ExpectedWait(cs.Procs, cs.Threads, cp.Args())
	if w < 0 {
		return w
	}
	if spec.Paradigm == core.ParadigmOMP {
		w *= float64(cs.Procs)
	}
	return w
}

// containsSegment reports whether path, split on "/", contains region.
func containsSegment(path, region string) bool {
	for _, seg := range strings.Split(path, "/") {
		if seg == region {
			return true
		}
	}
	return false
}

// pathWait sums a result's per-call-path waits over the paths passing
// through the named trace region — detection *and* localization in one
// number: wait attributed anywhere else does not count.
func pathWait(r *analyzer.Result, region string) float64 {
	if r == nil {
		return 0
	}
	paths := make([]string, 0, len(r.ByPath))
	for p := range r.ByPath {
		paths = append(paths, p)
	}
	sort.Strings(paths) // deterministic float accumulation
	var sum float64
	for _, p := range paths {
		if containsSegment(p, region) {
			sum += r.ByPath[p]
		}
	}
	return sum
}

// Check runs the case and applies the three correctness axes.  The
// returned error reports an ill-formed case; execution failures surface
// as AxisRun violations so the fuzzer can shrink them.
func Check(cs Case, opt CheckOptions) (Outcome, error) {
	opt = opt.withDefaults()
	out := Outcome{Case: cs}
	if err := cs.Validate(); err != nil {
		return out, err
	}

	tr, err := runCase(cs, opt.Perturb)
	if err != nil {
		out.Violations = append(out.Violations, Violation{
			Axis: AxisRun, Detail: err.Error(),
		})
		return out, nil
	}
	out.Events = len(tr.Events)
	rep := analyzer.Analyze(tr, analyzer.Options{Threshold: cs.Threshold})
	out.Findings = len(rep.Significant())
	out.Hash, err = caseHash(cs, tr, rep)
	if err != nil {
		return out, err
	}

	if opt.DropProperty != "" {
		delete(rep.Results, opt.DropProperty)
	}

	// Robustness: under perturbation the injected waits smear by at most
	// the profile's wait budget, and the spurious-wait floor rises to the
	// empirically calibrated level for this shape (see robust.go).
	var extraSlack float64
	floor := opt.NoiseFloor
	if !opt.Perturb.Zero() {
		extraSlack = opt.Perturb.WaitBudget(rep.TotalTime, len(tr.Events))
		if cal := CalibratedNoiseFloor(cs.Procs, cs.Threads, opt.Perturb); cal > floor {
			floor = cal
		}
	}

	out.Violations = append(out.Violations, checkPositive(cs, rep, opt, extraSlack)...)
	out.Violations = append(out.Violations, checkNegative(cs, rep, floor)...)

	if !opt.SkipDeterminism && !hasNondeterministicWaits(cs) {
		hash2, err := streamedCaseHash(cs, opt.Perturb)
		if err != nil {
			out.Violations = append(out.Violations, Violation{
				Axis: AxisDeterminism, Detail: "streamed rerun failed: " + err.Error(),
			})
			return out, nil
		}
		if hash2 != out.Hash {
			out.Violations = append(out.Violations, Violation{
				Axis:   AxisDeterminism,
				Detail: fmt.Sprintf("profile hash changed between in-memory and streamed run: %s != %s", out.Hash, hash2),
			})
		}
	}
	return out, nil
}

// caseHash builds the canonical profile of a run and returns its content
// address — the determinism oracle.
func caseHash(cs Case, tr *trace.Trace, rep *analyzer.Report) (string, error) {
	prof, err := profile.FromRun("conformance", tr, rep, caseRunInfo(cs))
	if err != nil {
		return "", err
	}
	return prof.Hash()
}

// DefaultExperiment is the experiment name CaseProfile (and Check's
// determinism hash) records when the caller does not override it.
const DefaultExperiment = "conformance"

// CaseProfile runs the case unperturbed and returns its canonical profile
// plus the analysis report.  An empty experiment selects
// DefaultExperiment, under which the profile's content hash equals the
// hash Check computes for the same case — the contract the analysis
// server's dedup cache relies on to stay byte-identical with the offline
// CLI path.
func CaseProfile(cs Case, experiment string) (*profile.Profile, *analyzer.Report, error) {
	if experiment == "" {
		experiment = DefaultExperiment
	}
	if err := cs.Validate(); err != nil {
		return nil, nil, err
	}
	tr, err := runCase(cs, perturb.Profile{})
	if err != nil {
		return nil, nil, err
	}
	rep := analyzer.Analyze(tr, analyzer.Options{Threshold: cs.Threshold})
	prof, err := profile.FromRun(experiment, tr, rep, caseRunInfo(cs))
	if err != nil {
		return nil, nil, err
	}
	return prof, rep, nil
}

func caseRunInfo(cs Case) profile.RunInfo {
	return profile.RunInfo{
		Procs: cs.Procs, Threads: cs.Threads,
		Params: map[string]string{"seed": fmt.Sprintf("%d", cs.Seed)},
	}
}

// streamedCaseHash re-executes the case through the bounded-memory
// streaming pipeline — events spilled to a temporary chunk spool, analyzed
// incrementally, never materialized — and returns the resulting profile
// hash.  Comparing it against the in-memory hash checks determinism and
// streamed/materialized equivalence in one shot.
func streamedCaseHash(cs Case, prof perturb.Profile) (string, error) {
	f, err := os.CreateTemp("", "conformance-spool-*.atsc")
	if err != nil {
		return "", err
	}
	spool := f.Name()
	f.Close()
	defer os.Remove(spool)

	w, err := trace.NewChunkWriter(spool, trace.DefaultSpillEvents)
	if err != nil {
		return "", err
	}
	opts := mpi.Options{Procs: cs.Procs, Perturb: perturb.NewModel(prof), Sink: w}
	if _, err := mpi.Run(opts, caseBody(cs)); err != nil {
		w.Abort()
		return "", err
	}
	if err := w.Close(); err != nil {
		return "", err
	}

	r, err := trace.OpenChunkFile(spool)
	if err != nil {
		return "", err
	}
	st, err := trace.NewStream(r)
	if err != nil {
		r.Close()
		return "", err
	}
	defer st.Close()
	rep, err := analyzer.AnalyzeStream(st, analyzer.Options{Threshold: cs.Threshold})
	if err != nil {
		return "", err
	}
	p, err := profile.FromAnalysis("conformance", profile.TraceInfoOfStream(st), rep, caseRunInfo(cs))
	if err != nil {
		return "", err
	}
	return p.Hash()
}

// checkPositive verifies that every injected property is detected as its
// expected analyzer property, localized to call paths inside the property
// function's own trace region, with the closed-form magnitude.
// extraSlack is the additional absolute tolerance granted under a
// perturbation profile (the profile's wait budget; 0 when unperturbed).
func checkPositive(cs Case, rep *analyzer.Report, opt CheckOptions, extraSlack float64) []Violation {
	var vs []Violation
	// Group by core property name: duplicate invocations share a trace
	// region, so their closed forms sum over the same localized paths.
	type inj struct {
		want     string
		expected float64
		slack    float64
	}
	byName := make(map[string]*inj)
	names := make([]string, 0, len(cs.Props))
	wantSum := make(map[string]float64) // analyzer property -> total expected
	for _, cp := range cs.Props {
		w := expectedWait(cs, cp)
		if w < 0 {
			continue // no closed form; nothing mechanical to assert
		}
		g := byName[cp.Name]
		if g == nil {
			g = &inj{want: analyzer.ExpectedDetection[cp.Name]}
			byName[cp.Name] = g
			names = append(names, cp.Name)
		}
		g.expected += w
		// Cost-model slack: per-operation protocol terms are µs-scale and
		// grow with repetitions and group size (cf. the quick-check
		// tolerance in core).
		g.slack += 1e-4 * float64(cp.Int["r"]*cs.Procs*cs.Threads)
		wantSum[g.want] += w
	}
	sort.Strings(names)
	for _, name := range names {
		g := byName[name]
		tol := opt.AbsTol + opt.RelTol*g.expected + g.slack + extraSlack
		measured := pathWait(rep.Get(g.want), name)
		if diff := measured - g.expected; diff > tol || -diff > tol {
			vs = append(vs, Violation{
				Axis: AxisPositive, Property: name,
				Detail: fmt.Sprintf("%s localized at %s: wait %.6f, closed form %.6f (tol %.6f)",
					g.want, name, measured, g.expected, tol),
			})
		}
	}
	// Ranking: an analyzer property whose expected wait is clearly above
	// the significance threshold must appear in the significant findings.
	wants := make([]string, 0, len(wantSum))
	for w := range wantSum {
		wants = append(wants, w)
	}
	sort.Strings(wants)
	for _, want := range wants {
		if rep.TotalTime <= 0 {
			break
		}
		if wantSum[want]-extraSlack > 2*cs.Threshold*rep.TotalTime &&
			rep.Severity(want) < rep.Threshold {
			vs = append(vs, Violation{
				Axis: AxisPositive, Property: want,
				Detail: fmt.Sprintf("expected severity %.4f (wait %.6f) not reported significant (threshold %.4f)",
					wantSum[want]/rep.TotalTime, wantSum[want], rep.Threshold),
			})
		}
	}
	return vs
}

// checkNegative verifies that no analyzer property outside the injected
// set (plus documented companions and info metrics) accumulates waiting
// above the noise floor (the configured floor, or the calibrated one
// under perturbation).
func checkNegative(cs Case, rep *analyzer.Report, floor float64) []Violation {
	allowed := make(map[string]bool)
	for _, cp := range cs.Props {
		allowed[analyzer.ExpectedDetection[cp.Name]] = true
		for _, c := range companions[cp.Name] {
			allowed[c] = true
		}
		// Dynamically registered properties (ASL scenarios) carry their
		// companion allowances on the spec itself.
		if spec, ok := core.Get(cp.Name); ok {
			for _, c := range spec.Companions {
				allowed[c] = true
			}
		}
	}
	var vs []Violation
	for _, prop := range rep.Properties() {
		if analyzer.IsInfo(prop) || allowed[prop] {
			continue
		}
		if w := waitOutsideSeparators(rep.Get(prop)); w > floor {
			vs = append(vs, Violation{
				Axis: AxisNegative, Property: prop,
				Detail: fmt.Sprintf("spurious wait %.6f above noise floor %.6f", w, floor),
			})
		}
	}
	return vs
}

// waitOutsideSeparators sums a result's wait excluding call paths under
// the harness's separator barriers (see sepRegion).
func waitOutsideSeparators(r *analyzer.Result) float64 {
	if r == nil {
		return 0
	}
	paths := make([]string, 0, len(r.ByPath))
	for p := range r.ByPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var sum float64
	for _, p := range paths {
		if !containsSegment(p, sepRegion) {
			sum += r.ByPath[p]
		}
	}
	return sum
}
