package conformance

import (
	"sync"

	"repro/internal/analyzer"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/omp"
	"repro/internal/perturb"
)

// The robustness axis (paper §1, "robustness of the analysis"): a tool
// that only works on noiseless inputs is not a tool.  CheckRobust sweeps
// the full oracle over a ladder of deterministic perturbation profiles —
// clock-rate skew, stragglers, message and collective jitter, OS-noise
// bursts — and demands that every injected property stays detected,
// localized and ranked, and that no spurious property crosses the noise
// floor.  Because the perturbations are pure functions of the profile,
// the determinism axis keeps holding too: two perturbed runs of the same
// case hash identically.

// DefaultLevels is the standard robustness sweep: unperturbed plus every
// rung of the perturbation ladder.  Level 0 must reproduce the
// unperturbed oracle bit for bit.
var DefaultLevels = []int{0, 1, 2, 3}

// RobustOutcome aggregates one oracle verdict per perturbation level.
type RobustOutcome struct {
	Levels   []int             // the swept levels, in order
	Profiles []perturb.Profile // the perturbation profile applied at each level
	Outcomes []Outcome         // Check outcome at each level
	FailedAt int               // index into Levels of the first failing level; -1 if all held
}

// OK reports whether the oracle held at every level.
func (ro RobustOutcome) OK() bool { return ro.FailedAt < 0 }

// FailLevel returns the first failing perturbation level (-1 if none).
func (ro RobustOutcome) FailLevel() int {
	if ro.FailedAt < 0 {
		return -1
	}
	return ro.Levels[ro.FailedAt]
}

// FailOutcome returns the outcome of the first failing level (zero
// Outcome if all levels held).
func (ro RobustOutcome) FailOutcome() Outcome {
	if ro.FailedAt < 0 {
		return Outcome{}
	}
	return ro.Outcomes[ro.FailedAt]
}

// FailProfile returns the perturbation profile of the first failing level
// (zero profile if all levels held) — plug it into CheckOptions.Perturb to
// reproduce or shrink the failure.
func (ro RobustOutcome) FailProfile() perturb.Profile {
	if ro.FailedAt < 0 {
		return perturb.Profile{}
	}
	return ro.Profiles[ro.FailedAt]
}

// CheckRobust runs the oracle at each perturbation level (DefaultLevels
// when levels is nil).  Each level perturbs with a profile derived from
// the case seed, so the sweep — like everything else in the harness — is
// a pure function of the case.  The returned error reports an ill-formed
// case, exactly as Check does.  Levels are checked through the
// process-wide result cache (CheckCached) when one is installed, at
// per-level granularity: a sweep interrupted mid-ladder resumes at the
// first level it had not finished.
func CheckRobust(cs Case, opt CheckOptions, levels []int) (RobustOutcome, error) {
	if len(levels) == 0 {
		levels = DefaultLevels
	}
	ro := RobustOutcome{Levels: levels, FailedAt: -1}
	for i, lvl := range levels {
		o := opt
		o.Perturb = perturb.Level(cs.Seed, lvl)
		out, err := CheckCached(cs, o)
		if err != nil {
			return ro, err
		}
		ro.Profiles = append(ro.Profiles, o.Perturb)
		ro.Outcomes = append(ro.Outcomes, out)
		if !out.OK() && ro.FailedAt < 0 {
			ro.FailedAt = i
		}
	}
	return ro, nil
}

// Noise-floor calibration.  The unperturbed oracle uses a hard-coded
// floor that absorbs µs-scale cost-model skew; under perturbation the
// spurious wait a *correct* analyzer reports is set by the perturbation
// profile itself, so the floor is measured, not guessed: run a known-clean
// composite (the package core negative programs — balanced MPI, OpenMP
// and hybrid phases) under the same shape and perturbation level at a few
// fixed calibration seeds, take the worst spurious wait any single
// analyzer property accumulates, and pad it with a safety margin.

const (
	// calSeeds is how many independent perturbation seeds the calibration
	// averages over — fixed, and deliberately independent of the case
	// seed, so the floor is a property of (shape, level) alone.
	calSeeds = 4
	// calMargin pads the worst observed spurious wait: a calibration over
	// a handful of seeds underestimates the tail.
	calMargin = 3.0
	// calWork/calReps size the calibration composite.
	calWork = 0.002
	calReps = 3
)

// calKey caches calibration per shape, per seed-independent profile, and
// per execution engine.  The engine field is load-bearing: the floor is
// measured by *running* the clean composite, so it is a fact about the
// engine that ran it — calibration computed under the event engine must
// never be served to a `-engine goroutine` sweep (the two are proven
// byte-identical today, but the cache must not bake that theorem in; a
// version bump or real divergence would otherwise be masked by a stale
// floor).  cache_test.go pins this with a poisoned-cache regression test.
type calKey struct {
	procs, threads int
	engine         string
	prof           perturb.Profile
}

var calCache sync.Map // calKey -> float64

// CalibratedNoiseFloor returns the empirical negative-axis noise floor
// for the given shape under the given perturbation profile: the margin-
// padded worst spurious wait a correct analysis reports on perturbed
// clean composites.  The result depends only on the shape, the profile's
// disturbance magnitudes (the seed is normalized away), and the
// execution engine, and is cached — in-memory always, and through the
// process-wide result cache when one is installed (SetResultCache), so a
// fuzzing campaign pays for each (shape, level, engine) cell once per
// cache lifetime rather than once per process.
func CalibratedNoiseFloor(procs, threads int, prof perturb.Profile) float64 {
	if prof.Zero() {
		return 0
	}
	key := calKey{procs: procs, threads: threads, engine: mpi.EffectiveDefault().String(), prof: prof}
	key.prof.Seed = 0
	if v, ok := calCache.Load(key); ok {
		return v.(float64)
	}
	if floor, ok := calCacheLoad(key); ok {
		calCache.Store(key, floor)
		return floor
	}
	var worst float64
	for s := uint64(1); s <= calSeeds; s++ {
		p := prof
		p.Seed = s
		w, err := spuriousWait(procs, threads, p)
		if err != nil {
			// The clean composite cannot deadlock; treat a failed
			// calibration run as contributing nothing rather than
			// wedging the oracle.
			continue
		}
		if w > worst {
			worst = w
		}
	}
	floor := calMargin * worst
	calCache.Store(key, floor)
	calCacheStore(key, floor)
	return floor
}

// spuriousWait runs the clean composite under the profile and returns the
// worst waiting time any single non-info analyzer property accumulates —
// all of it spurious by construction.
func spuriousWait(procs, threads int, prof perturb.Profile) (float64, error) {
	team := omp.Options{Threads: threads}
	tr, err := mpi.Run(mpi.Options{Procs: procs, Perturb: perturb.NewModel(prof)}, func(c *mpi.Comm) {
		c.Begin("perturb_calibration")
		defer c.End()
		core.NegativeBalancedMPI(c, calWork, calReps)
		core.NegativeBalancedHybrid(c, team, calWork, calReps)
		core.NegativeBalancedOMP(c.Ctx(), team, calWork, calReps)
	})
	if err != nil {
		return 0, err
	}
	rep := analyzer.Analyze(tr, analyzer.Options{})
	var worst float64
	for _, prop := range rep.Properties() {
		if analyzer.IsInfo(prop) {
			continue
		}
		if w := waitOutsideSeparators(rep.Get(prop)); w > worst {
			worst = w
		}
	}
	return worst, nil
}
