package conformance

import (
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/mpi"
	"repro/internal/perturb"
	"repro/internal/rescache"
)

// withCache installs a fresh on-disk result cache for the duration of
// the test and returns it.
func withCache(t *testing.T) *rescache.Store {
	t.Helper()
	s, err := rescache.Open(filepath.Join(t.TempDir(), "rescache"))
	if err != nil {
		t.Fatal(err)
	}
	SetResultCache(s)
	t.Cleanup(func() { SetResultCache(nil) })
	return s
}

// TestCheckCachedWarmEqualsCold is the tentpole correctness claim at the
// oracle surface: a warm CheckCached must return an Outcome deeply equal
// to the cold one — the cached value IS the cold value, replayed — and
// must come from the cache, not a re-run.
func TestCheckCachedWarmEqualsCold(t *testing.T) {
	s := withCache(t)
	cs := Generate(11, Config{})
	cold, err := CheckCached(cs, CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats().Puts == 0 {
		t.Fatal("cold check wrote nothing through")
	}
	warm, err := CheckCached(cs, CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats().Hits == 0 {
		t.Fatal("warm check did not hit the cache")
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("warm outcome diverges from cold:\ncold: %+v\nwarm: %+v", cold, warm)
	}
	// And it must equal what an uncached oracle produces.
	SetResultCache(nil)
	plain, err := Check(cs, CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Hash != plain.Hash || warm.Events != plain.Events {
		t.Fatalf("cached outcome diverges from Check: %+v vs %+v", warm, plain)
	}
}

// TestCheckCachedKeySeparatesOptions: different CheckOptions must never
// share an entry.
func TestCheckCachedKeySeparatesOptions(t *testing.T) {
	cs := Generate(11, Config{})
	base, err := checkKey(cs, CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	variants := []CheckOptions{
		{NoiseFloor: 99},
		{SkipDeterminism: true},
		{Perturb: perturb.Level(cs.Seed, 2)},
		{DropProperty: "late_sender"},
	}
	for _, opt := range variants {
		k, err := checkKey(cs, opt)
		if err != nil {
			t.Fatal(err)
		}
		if k == base {
			t.Fatalf("options %+v collide with the default key", opt)
		}
	}
	if k2, _ := checkKey(Generate(12, Config{}), CheckOptions{}); k2 == base {
		t.Fatal("different cases collide")
	}
}

// TestCheckCachedKeySeparatesEngines: the engine identity is part of the
// key, so a verdict computed under one engine is invisible to the other.
func TestCheckCachedKeySeparatesEngines(t *testing.T) {
	prev := mpi.DefaultEngine()
	defer mpi.SetDefaultEngine(prev)
	cs := Generate(11, Config{})
	mpi.SetDefaultEngine(mpi.EngineEvent)
	kEvent, err := checkKey(cs, CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mpi.SetDefaultEngine(mpi.EngineGoroutine)
	kGo, err := checkKey(cs, CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if kEvent == kGo {
		t.Fatal("event and goroutine engines share a cache key")
	}
}

// TestCalibrationCacheKeyedByEngine is the satellite regression test for
// the calKey engine-identity fix: a calibration floor poisoned into the
// in-memory cache under one engine's key must NOT be served to a sweep
// running the other engine.  Before the fix, calKey omitted the engine
// and this test fails with the sentinel leaking through.
func TestCalibrationCacheKeyedByEngine(t *testing.T) {
	prev := mpi.DefaultEngine()
	defer mpi.SetDefaultEngine(prev)

	const procs, threads = 2, 2
	prof := perturb.Level(1, 2)
	prof.Seed = 0

	const sentinel = 123456.0
	// Poison the event engine's cell...
	calCache.Store(calKey{procs: procs, threads: threads, engine: mpi.EngineEvent.String(), prof: prof}, sentinel)
	t.Cleanup(func() {
		calCache.Delete(calKey{procs: procs, threads: threads, engine: mpi.EngineEvent.String(), prof: prof})
		calCache.Delete(calKey{procs: procs, threads: threads, engine: mpi.EngineGoroutine.String(), prof: prof})
	})

	// ...and calibrate under the goroutine engine: the sentinel must not
	// surface.
	mpi.SetDefaultEngine(mpi.EngineGoroutine)
	got := CalibratedNoiseFloor(procs, threads, perturb.Level(1, 2))
	if got == sentinel {
		t.Fatal("calibration computed under one engine was served to the other")
	}

	// The poisoned cell is still served to its own engine — the fix keys
	// the cache, it does not disable it.
	mpi.SetDefaultEngine(mpi.EngineEvent)
	if got := CalibratedNoiseFloor(procs, threads, perturb.Level(1, 2)); got != sentinel {
		t.Fatalf("event-engine cell = %v; want the sentinel (cache bypassed?)", got)
	}
}

// TestCalibrationDiskCacheRoundtrip: with a result cache installed, a
// calibration computed in one "process" (fresh in-memory cache) is
// reloaded from disk instead of recomputed.
func TestCalibrationDiskCacheRoundtrip(t *testing.T) {
	s := withCache(t)
	prof := perturb.Level(3, 1)
	key := calKey{procs: 2, threads: 2, engine: mpi.EffectiveDefault().String(), prof: prof}
	key.prof.Seed = 0

	floor := CalibratedNoiseFloor(2, 2, prof)
	if s.Stats().Puts == 0 {
		t.Fatal("calibration did not write through to disk")
	}
	// Simulate a new process: drop the in-memory cell, keep the disk.
	calCache.Delete(key)
	hitsBefore := s.Stats().Hits
	again := CalibratedNoiseFloor(2, 2, prof)
	if again != floor {
		t.Fatalf("disk-reloaded floor %v != original %v", again, floor)
	}
	if s.Stats().Hits == hitsBefore {
		t.Fatal("second calibration did not read the disk cache")
	}
	calCache.Delete(key)
}

// TestDiffEnginesCachedWarmEqualsCold: the engine differential memoizes
// agreeing outcomes and replays them byte-identically.
func TestDiffEnginesCachedWarmEqualsCold(t *testing.T) {
	s := withCache(t)
	cs := Generate(5, Config{})
	cold, err := DiffEnginesCached(cs, perturb.Profile{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := DiffEnginesCached(cs, perturb.Profile{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats().Hits == 0 {
		t.Fatal("warm differential did not hit the cache")
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("warm diff outcome diverges: %+v vs %+v", cold, warm)
	}
}

// TestCheckRobustUsesCachePerLevel: a robust sweep writes one entry per
// level, and a warm sweep serves every level from the cache.
func TestCheckRobustUsesCachePerLevel(t *testing.T) {
	s := withCache(t)
	cs := Generate(11, Config{})
	cold, err := CheckRobust(cs, CheckOptions{}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	missesAfterCold := s.Stats().Misses
	warm, err := CheckRobust(cs, CheckOptions{}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats().Misses != missesAfterCold {
		t.Fatal("warm robust sweep missed the cache")
	}
	if !reflect.DeepEqual(cold.Outcomes, warm.Outcomes) {
		t.Fatal("warm robust outcomes diverge from cold")
	}
}
