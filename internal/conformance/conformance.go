// Package conformance implements a seeded, deterministic metamorphic
// fuzzer for the automatic analyzer — the randomized form of the paper's
// three correctness axes.
//
// The hand-written fixtures in internal/core and internal/experiments
// exercise each property function once, with defaults.  This package turns
// the same ground truth into an *oracle* for unbounded randomized testing:
// a Case is a composite test program drawn deterministically from a seed —
// a random subset of registered property specs, random in-range parameters
// (the Min/Max metadata on core.Param), and a random rank × thread shape.
// Running the case through trace + analyzer, the oracle checks:
//
//   - positive correctness: every injected property with a closed-form
//     expected wait must be detected as its expected analyzer property,
//     localized to call paths inside the property function's trace region,
//     with the measured wait matching the closed form within tolerance —
//     and reported significant when clearly above the threshold;
//   - negative correctness: no analyzer property outside the injected set
//     (info metrics aside) may accumulate waiting above the noise floor;
//   - semantics/determinism: re-running the identical case must produce a
//     byte-identical canonical profile (internal/profile content hash).
//
// On failure the shrinker (shrink.go) minimizes the composite — drop
// properties, then halve parameters — to a smallest reproducer, which is
// written as a replayable JSON case (corpus.go).  The same engine backs
// the Go native fuzz harnesses, the quick-mode unit test, and the
// cmd/atsfuzz CLI.
package conformance

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/core"
)

// CaseSchema identifies the replayable-case wire format.
const CaseSchema = 1

// CaseProp is one injected property invocation: the registered property
// name plus its concrete argument values (the serializable mirror of
// core.Args).
type CaseProp struct {
	Name  string                    `json:"name"`
	Float map[string]float64        `json:"float,omitempty"`
	Int   map[string]int            `json:"int,omitempty"`
	Distr map[string]core.DistrSpec `json:"distr,omitempty"`
}

// Args converts the serialized values into a core argument set.
func (cp CaseProp) Args() core.Args {
	a := core.NewArgs()
	for k, v := range cp.Float {
		a.Float[k] = v
	}
	for k, v := range cp.Int {
		a.Int[k] = v
	}
	for k, v := range cp.Distr {
		a.Distr[k] = v
	}
	return a
}

// Case is one composite conformance test program, fully determined by its
// fields (the seed is recorded for provenance; replay uses the explicit
// shape and arguments).
type Case struct {
	Schema    int        `json:"schema"`
	Seed      uint64     `json:"seed"`
	Procs     int        `json:"procs"`
	Threads   int        `json:"threads"`
	Threshold float64    `json:"threshold"`
	Props     []CaseProp `json:"props"`
}

// String renders a compact one-line description of the case.
func (cs Case) String() string {
	names := make([]string, len(cs.Props))
	for i, p := range cs.Props {
		names[i] = p.Name
	}
	return fmt.Sprintf("seed=%d %dx%d [%s]", cs.Seed, cs.Procs, cs.Threads,
		strings.Join(names, " "))
}

// Config tunes case generation.
type Config struct {
	// Procs and Threads are the candidate shapes (defaults {2,3,4,6,8}
	// and {1,2,4}).
	Procs   []int
	Threads []int
	// MinProps/MaxProps bound the number of injected properties
	// (defaults 1 and 4).
	MinProps, MaxProps int
	// Threshold is the analyzer significance threshold recorded in the
	// case (default 0.005).
	Threshold float64
	// Pool is the set of property names to draw from (default: every
	// registered property except ExcludedProperties).
	Pool []string
}

// ExcludedProperties are registered properties the default pool omits:
// dominated_by_communication has no closed-form wait and its expected
// detection is an info metric, so neither the positive nor the negative
// axis can be checked mechanically for it.
var ExcludedProperties = map[string]bool{
	"dominated_by_communication": true,
}

// DefaultPool returns the default property pool in sorted order.
func DefaultPool() []string {
	var pool []string
	for _, name := range core.Names() {
		if !ExcludedProperties[name] {
			pool = append(pool, name)
		}
	}
	return pool
}

func (cfg Config) withDefaults() Config {
	if len(cfg.Procs) == 0 {
		cfg.Procs = []int{2, 3, 4, 6, 8}
	}
	if len(cfg.Threads) == 0 {
		cfg.Threads = []int{1, 2, 4}
	}
	if cfg.MinProps <= 0 {
		cfg.MinProps = 1
	}
	if cfg.MaxProps < cfg.MinProps {
		cfg.MaxProps = 4
		if cfg.MaxProps < cfg.MinProps {
			cfg.MaxProps = cfg.MinProps
		}
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 0.005
	}
	if len(cfg.Pool) == 0 {
		cfg.Pool = DefaultPool()
	}
	return cfg
}

// distrNames are the distribution functions conformance draws from.
// "same" is deliberately included: a flat distribution must produce *no*
// finding, turning the drawn property into a negative-correctness check.
var distrNames = []string{"block2", "cyclic2", "linear", "peak", "block3", "cyclic3", "same"}

// roundArg snaps a drawn float to a microsecond grid so case files stay
// readable and round-trip exactly through JSON.
func roundArg(v float64) float64 { return math.Round(v*1e6) / 1e6 }

// Generate draws the case for seed deterministically: same seed and
// config, same case — on any machine and across runs (math/rand's seeded
// sequence is stable under the Go 1 compatibility promise).
func Generate(seed uint64, cfg Config) Case {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(int64(seed)))
	cs := Case{
		Schema:    CaseSchema,
		Seed:      seed,
		Procs:     cfg.Procs[rng.Intn(len(cfg.Procs))],
		Threads:   cfg.Threads[rng.Intn(len(cfg.Threads))],
		Threshold: cfg.Threshold,
	}
	pool := append([]string(nil), cfg.Pool...)
	sort.Strings(pool)
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	k := cfg.MinProps + rng.Intn(cfg.MaxProps-cfg.MinProps+1)
	if k > len(pool) {
		k = len(pool)
	}
	for _, name := range pool[:k] {
		spec, ok := core.Get(name)
		if !ok {
			continue // pool entry vanished from the registry; skip
		}
		cs.Props = append(cs.Props, randomProp(rng, spec, groupSize(spec, cs)))
	}
	return cs
}

// groupSize is the size of the group a spec's rank-valued and
// distribution parameters index: the thread team for pure-OpenMP
// properties, the rank world otherwise.
func groupSize(spec *core.Spec, cs Case) int {
	if spec.Paradigm == core.ParadigmOMP {
		return cs.Threads
	}
	return cs.Procs
}

// randomProp draws in-range arguments for every parameter of spec.
func randomProp(rng *rand.Rand, spec *core.Spec, group int) CaseProp {
	cp := CaseProp{Name: spec.Name}
	for _, p := range spec.Params {
		switch p.Kind {
		case core.ParamFloat:
			if cp.Float == nil {
				cp.Float = make(map[string]float64)
			}
			v := p.MinFloat + rng.Float64()*(p.MaxFloat-p.MinFloat)
			v = roundArg(v)
			if v < p.MinFloat {
				v = p.MinFloat
			}
			cp.Float[p.Name] = v
		case core.ParamInt:
			if cp.Int == nil {
				cp.Int = make(map[string]int)
			}
			if p.Rank {
				cp.Int[p.Name] = rng.Intn(group)
			} else {
				cp.Int[p.Name] = p.MinInt + rng.Intn(p.MaxInt-p.MinInt+1)
			}
		case core.ParamDistr:
			if cp.Distr == nil {
				cp.Distr = make(map[string]core.DistrSpec)
			}
			low := roundArg(0.002 + rng.Float64()*0.018)
			high := roundArg(low + 0.005 + rng.Float64()*0.05)
			cp.Distr[p.Name] = core.DistrSpec{
				Name: distrNames[rng.Intn(len(distrNames))],
				Low:  low,
				High: high,
				Med:  roundArg(low + rng.Float64()*(high-low)),
				N:    rng.Intn(group),
			}
		}
	}
	return cp
}
