package conformance

import (
	"path/filepath"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/perturb"
)

// TestStreamedMatchesInMemory pins the streaming pipeline's equivalence
// claim directly: for every committed corpus case, at every perturbation
// level of the standard robustness sweep, the profile content hash of the
// streamed run (chunk spool + incremental analysis, trace never
// materialized) equals the in-memory run's.  Cases with legitimately
// nondeterministic wait attribution are skipped, as in Check.
func TestStreamedMatchesInMemory(t *testing.T) {
	entries, err := LoadCorpus(filepath.Join("..", "..", "testdata", "conformance-corpus"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if hasNondeterministicWaits(e.Case) {
			continue
		}
		for _, level := range DefaultLevels {
			prof := perturb.Level(e.Case.Seed, level)

			tr, err := runCase(e.Case, prof)
			if err != nil {
				t.Fatalf("%s level %d: in-memory run: %v", e.Name, level, err)
			}
			rep := analyzer.Analyze(tr, analyzer.Options{Threshold: e.Case.Threshold})
			want, err := caseHash(e.Case, tr, rep)
			if err != nil {
				t.Fatalf("%s level %d: %v", e.Name, level, err)
			}

			got, err := streamedCaseHash(e.Case, prof)
			if err != nil {
				t.Fatalf("%s level %d: streamed run: %v", e.Name, level, err)
			}
			if got != want {
				t.Errorf("%s level %d: streamed profile hash %s != in-memory %s",
					e.Name, level, got, want)
			}
		}
	}
}
