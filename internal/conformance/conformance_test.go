package conformance

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/core"
)

// quickOpt skips nothing: the determinism axis is part of the quick run.
var quickOpt = CheckOptions{}

// TestQuickConformance is the quick-mode fuzz run wired into `go test`:
// ≥ 50 seeded random composites, every axis checked (including the
// same-seed → same-profile-hash determinism axis inside Check).
func TestQuickConformance(t *testing.T) {
	const seeds = 60
	for seed := uint64(1); seed <= seeds; seed++ {
		cs := Generate(seed, Config{})
		out, err := Check(cs, quickOpt)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, v := range out.Violations {
			t.Errorf("seed %d (%s): %s", seed, cs, v)
		}
		if t.Failed() {
			min := Shrink(cs, quickOpt)
			blob, _ := MarshalCase(min)
			t.Fatalf("seed %d: shrunken reproducer:\n%s", seed, blob)
		}
	}
}

// TestGenerateDeterministic pins the generator: the same seed must yield
// a deeply equal case, and distinct seeds must not all collapse onto one
// shape.
func TestGenerateDeterministic(t *testing.T) {
	shapes := make(map[string]bool)
	for seed := uint64(1); seed <= 20; seed++ {
		a := Generate(seed, Config{})
		b := Generate(seed, Config{})
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: generation not deterministic:\n%+v\n%+v", seed, a, b)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d: generated invalid case: %v", seed, err)
		}
		shapes[a.String()] = true
	}
	if len(shapes) < 10 {
		t.Fatalf("20 seeds produced only %d distinct cases", len(shapes))
	}
}

// defaultsCase builds a composite from registered defaults.
func defaultsCase(procs, threads int, names ...string) Case {
	cs := Case{Schema: CaseSchema, Procs: procs, Threads: threads, Threshold: 0.005}
	for _, name := range names {
		spec, ok := core.Get(name)
		if !ok {
			panic("unknown property " + name)
		}
		a := spec.Defaults()
		cp := CaseProp{Name: name}
		if len(a.Float) > 0 {
			cp.Float = a.Float
		}
		if len(a.Int) > 0 {
			cp.Int = a.Int
		}
		if len(a.Distr) > 0 {
			cp.Distr = a.Distr
		}
		cs.Props = append(cs.Props, cp)
	}
	return cs
}

// TestShrinkerMinimizes injects a deliberate analyzer defect — the
// wait_at_mpi_barrier pattern is dropped from the report — and asserts
// the shrinker reduces the resulting 3-property failure to the single
// property exposing the defect, with smaller parameters.
func TestShrinkerMinimizes(t *testing.T) {
	orig := defaultsCase(4, 1, "late_sender", "imbalance_at_mpi_barrier", "early_reduce")
	opt := CheckOptions{SkipDeterminism: true, DropProperty: analyzer.PropWaitAtBarrier}

	out, err := Check(orig, opt)
	if err != nil {
		t.Fatal(err)
	}
	if out.OK() {
		t.Fatal("fault injection did not make the composite fail")
	}

	min := Shrink(orig, opt)
	if len(min.Props) >= len(orig.Props) {
		t.Fatalf("shrinker did not reduce property count: %d -> %d", len(orig.Props), len(min.Props))
	}
	if len(min.Props) != 1 || min.Props[0].Name != "imbalance_at_mpi_barrier" {
		t.Fatalf("expected minimal reproducer [imbalance_at_mpi_barrier], got %s", min)
	}
	if r := min.Props[0].Int["r"]; r >= orig.Props[1].Int["r"] {
		t.Fatalf("shrinker did not reduce repetitions: %d -> %d", orig.Props[1].Int["r"], r)
	}
	// The minimized case must still reproduce the failure...
	mout, err := Check(min, opt)
	if err != nil {
		t.Fatal(err)
	}
	if mout.OK() {
		t.Fatal("minimized case no longer fails under the injected defect")
	}
	// ...and pass against the healthy analyzer.
	hout, err := Check(min, CheckOptions{SkipDeterminism: true})
	if err != nil {
		t.Fatal(err)
	}
	if !hout.OK() {
		t.Fatalf("minimized case fails without the defect: %v", hout.Violations)
	}
}

// TestCorpusReplay replays every committed corpus case through the full
// oracle — the same files `atsfuzz replay` consumes.
func TestCorpusReplay(t *testing.T) {
	entries, err := LoadCorpus(filepath.Join("..", "..", "testdata", "conformance-corpus"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 10 {
		t.Fatalf("committed corpus has %d cases, want >= 10", len(entries))
	}
	for _, e := range entries {
		out, err := Check(e.Case, quickOpt)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		for _, v := range out.Violations {
			t.Errorf("%s (%s): %s", e.Name, e.Case, v)
		}
	}
}

// TestCorpusRoundTrip pins the case wire format.
func TestCorpusRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cs := Generate(7, Config{})
	path := filepath.Join(dir, "case.json")
	if err := WriteCase(path, cs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCase(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cs, got) {
		t.Fatalf("case changed across write/read:\n%+v\n%+v", cs, got)
	}
}

// TestValidateErrors covers the ill-formed-case paths.
func TestValidateErrors(t *testing.T) {
	good := Generate(1, Config{})
	tests := []struct {
		name   string
		mutate func(*Case)
	}{
		{"wrong schema", func(c *Case) { c.Schema = 99 }},
		{"zero procs", func(c *Case) { c.Procs = 0 }},
		{"zero threads", func(c *Case) { c.Threads = 0 }},
		{"no props", func(c *Case) { c.Props = nil }},
		{"unknown property", func(c *Case) { c.Props[0].Name = "no_such_property" }},
		{"missing args", func(c *Case) {
			c.Props[0].Float, c.Props[0].Int, c.Props[0].Distr = nil, nil, nil
		}},
	}
	for _, tt := range tests {
		cs := good.clone()
		tt.mutate(&cs)
		if err := cs.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the case", tt.name)
		}
		if _, err := Check(cs, quickOpt); err == nil {
			t.Errorf("%s: Check accepted the case", tt.name)
		}
	}
	bad := good.clone()
	for k, ds := range bad.Props[0].Distr {
		ds.Name = "no_such_distribution"
		bad.Props[0].Distr[k] = ds
	}
	if len(bad.Props[0].Distr) > 0 {
		if err := bad.Validate(); err == nil {
			t.Error("unresolvable distribution: Validate accepted the case")
		}
	}
}

// FuzzConformance is the native-fuzzing entry point over seeds: any seed
// the engine can generate must satisfy all three axes.  Run long sessions
// with `go test -fuzz FuzzConformance ./internal/conformance`.
func FuzzConformance(f *testing.F) {
	for _, seed := range []uint64{1, 42, 1 << 32} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		cs := Generate(seed, Config{})
		out, err := Check(cs, CheckOptions{SkipDeterminism: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !out.OK() {
			min := Shrink(cs, CheckOptions{SkipDeterminism: true})
			blob, _ := MarshalCase(min)
			t.Fatalf("seed %d (%s): %v\nshrunken reproducer:\n%s", seed, cs, out.Violations, blob)
		}
	})
}

// FuzzCaseJSON hardens the replay path: arbitrary bytes must decode or
// error, never panic, and anything that validates must run.
func FuzzCaseJSON(f *testing.F) {
	blob, err := MarshalCase(Generate(1, Config{MaxProps: 1, MinProps: 1}))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add([]byte(`{"schema":1}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var cs Case
		if err := json.Unmarshal(data, &cs); err != nil {
			return
		}
		_ = cs.Validate()
	})
}
