package conformance

import (
	"sort"

	"repro/internal/core"
)

// The shrinker is a ddmin-style minimizer for failing cases: first drop
// injected properties one at a time to a fixpoint, then repeatedly halve
// numeric parameters (floats and repetition counts, plus the spread of
// distribution arguments), keeping every reduction that still fails the
// oracle.  The result is the smallest reproducer the moves can reach —
// what gets written to the corpus for replay.

// clone deep-copies a case so shrink candidates never alias the original.
func (cs Case) clone() Case {
	out := cs
	out.Props = make([]CaseProp, len(cs.Props))
	for i, cp := range cs.Props {
		c := CaseProp{Name: cp.Name}
		if cp.Float != nil {
			c.Float = make(map[string]float64, len(cp.Float))
			for k, v := range cp.Float {
				c.Float[k] = v
			}
		}
		if cp.Int != nil {
			c.Int = make(map[string]int, len(cp.Int))
			for k, v := range cp.Int {
				c.Int[k] = v
			}
		}
		if cp.Distr != nil {
			c.Distr = make(map[string]core.DistrSpec, len(cp.Distr))
			for k, v := range cp.Distr {
				c.Distr[k] = v
			}
		}
		out.Props[i] = c
	}
	return out
}

// stillFailing reports whether the candidate still violates the oracle.
// Execution is enough to decide; the determinism axis is re-checked only
// if the original options ask for it.
func stillFailing(cs Case, opt CheckOptions) bool {
	out, err := Check(cs, opt)
	if err != nil {
		// An ill-formed candidate is not a reproducer of the original
		// failure; reject the move.
		return false
	}
	return !out.OK()
}

// Shrink minimizes a failing case under the given oracle options.  If cs
// does not fail, it is returned unchanged.  Shrinking is deterministic:
// moves are tried in a fixed order.
func Shrink(cs Case, opt CheckOptions) Case {
	opt = opt.withDefaults()
	if !stillFailing(cs, opt) {
		return cs
	}
	cur := cs.clone()

	// Phase 1: drop properties to a fixpoint.
	for len(cur.Props) > 1 {
		dropped := false
		for i := range cur.Props {
			cand := cur.clone()
			cand.Props = append(cand.Props[:i], cand.Props[i+1:]...)
			if stillFailing(cand, opt) {
				cur = cand
				dropped = true
				break
			}
		}
		if !dropped {
			break
		}
	}

	// Phase 2: halve parameters until no move is accepted.
	for pass := 0; pass < 20; pass++ {
		improved := false
		for i := range cur.Props {
			if shrinkProp(&cur, i, opt) {
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return cur
}

// shrinkProp tries every halving move on property i, mutating cs in place
// when a move keeps the case failing; reports whether any move landed.
func shrinkProp(cs *Case, i int, opt CheckOptions) bool {
	improved := false
	try := func(mutate func(*CaseProp)) {
		cand := cs.clone()
		mutate(&cand.Props[i])
		if stillFailing(cand, opt) {
			*cs = cand
			improved = true
		}
	}

	for _, k := range sortedFloatKeys(cs.Props[i]) {
		k := k
		if v := cs.Props[i].Float[k]; v > 1e-4 {
			try(func(cp *CaseProp) { cp.Float[k] = roundArg(v / 2) })
		}
	}
	for _, k := range sortedIntKeys(cs.Props[i]) {
		k := k
		if v := cs.Props[i].Int[k]; v > 1 {
			try(func(cp *CaseProp) { cp.Int[k] = v / 2 })
		}
	}
	for _, k := range sortedDistrKeys(cs.Props[i]) {
		k := k
		ds := cs.Props[i].Distr[k]
		if spread := ds.High - ds.Low; spread > 1e-4 {
			try(func(cp *CaseProp) {
				d := cp.Distr[k]
				d.High = roundArg(d.Low + spread/2)
				if d.Med > d.High {
					d.Med = d.High
				}
				cp.Distr[k] = d
			})
		}
	}
	return improved
}

func sortedFloatKeys(cp CaseProp) []string {
	ks := make([]string, 0, len(cp.Float))
	for k := range cp.Float {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func sortedIntKeys(cp CaseProp) []string {
	ks := make([]string, 0, len(cp.Int))
	for k := range cp.Int {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func sortedDistrKeys(cp CaseProp) []string {
	ks := make([]string, 0, len(cp.Distr))
	for k := range cp.Distr {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
