package conformance

// ASL-defined scenarios as first-class conformance citizens: a property
// defined purely in ASL text must flow through Generate (merged registry
// pool), Check (all three axes validated against the ASL closed form),
// Shrink (parameter halving), and DiffEngines (byte-identical traces on
// both execution engines) without any of those layers special-casing it.

import (
	"strings"
	"testing"

	"repro/internal/asl"
	"repro/internal/core"
	"repro/internal/perturb"
)

// conformanceScenario is the ASL source the oracle tests run against: a
// mixed-primitive scenario whose closed form covers only its primary
// detection (late_sender), with the barrier skew as a declared companion.
const conformanceScenario = `
scenario asl_conf_probe {
    help "late senders alongside a skewed barrier, closed under ASL";
    param base  float = 0.004 in [0.002, 0.008];
    param extra float = 0.02  in [0.01, 0.04];
    param work  distr = block2(0.004, 0.02);
    param r     int   = 2     in [1, 4];
    inject delayed_send(base, extra, r);
    inject skewed_barrier(work, r);
    inject ramp_send(128, 4096, r);
    detects "late_sender";
    severity floor(ranks() / 2) * extra * r;
}
`

// registerProbe registers the test scenario and cleans it up afterwards.
func registerProbe(t *testing.T, src string) string {
	t.Helper()
	names, err := asl.RegisterSource(src)
	if err != nil {
		t.Fatalf("RegisterSource: %v", err)
	}
	t.Cleanup(func() { asl.Unregister(names...) })
	if len(names) != 1 {
		t.Fatalf("registered %v", names)
	}
	return names[0]
}

// probeCase builds a deterministic composite case containing the scenario.
func probeCase(name string, procs int) Case {
	return Case{
		Schema: CaseSchema, Seed: 0, Procs: procs, Threads: 1, Threshold: 0.005,
		Props: []CaseProp{{
			Name:  name,
			Float: map[string]float64{"base": 0.004, "extra": 0.02},
			Int:   map[string]int{"r": 2},
			Distr: map[string]core.DistrSpec{"work": {Name: "block2", Low: 0.004, High: 0.02}},
		}},
	}
}

// TestASLScenarioCheckAllAxes: the registered scenario passes positive
// (detected, localized, closed-form magnitude), negative (the barrier skew
// is a declared companion, nothing else rises) and determinism.
func TestASLScenarioCheckAllAxes(t *testing.T) {
	name := registerProbe(t, conformanceScenario)
	for _, procs := range []int{2, 4, 5} {
		out, err := Check(probeCase(name, procs), CheckOptions{})
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if !out.OK() {
			t.Errorf("procs=%d: violations: %v", procs, out.Violations)
		}
	}
}

// TestASLScenarioWrongClosedFormCaught: an intentionally wrong severity
// expression (double the real wait) must be caught by the positive axis —
// the oracle validates the ASL claim, not just the injection.
func TestASLScenarioWrongClosedFormCaught(t *testing.T) {
	wrong := strings.Replace(conformanceScenario,
		"severity floor(ranks() / 2) * extra * r;",
		"severity 2 * floor(ranks() / 2) * extra * r;", 1)
	wrong = strings.Replace(wrong, "asl_conf_probe", "asl_conf_wrong", 1)
	name := registerProbe(t, wrong)
	out, err := Check(probeCase(name, 4), CheckOptions{SkipDeterminism: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.OK() {
		t.Fatal("wrong ASL closed form not caught")
	}
	found := false
	for _, v := range out.Violations {
		if v.Axis == AxisPositive && v.Property == name {
			found = true
		}
	}
	if !found {
		t.Errorf("no positive-axis violation for %s: %v", name, out.Violations)
	}
}

// TestASLScenarioCompanionRequired: without the companion allowance the
// barrier skew of the secondary primitive trips the negative axis — i.e.
// the Spec.Companions channel is load-bearing, not decorative.
func TestASLScenarioCompanionRequired(t *testing.T) {
	solo := `
scenario asl_conf_solo {
    param work  distr = block2(0.004, 0.02);
    param extra float = 0.02;
    param r     int   = 2;
    inject delayed_send(0.004, extra, r);
    inject skewed_barrier(work, r);
    detects "late_sender";
    severity floor(ranks() / 2) * extra * r;
}
`
	name := registerProbe(t, solo)
	spec, _ := core.Get(name)
	if len(spec.Companions) != 1 || spec.Companions[0] != "wait_at_mpi_barrier" {
		t.Fatalf("Companions = %v", spec.Companions)
	}
	// Strip the companions and verify the negative axis fires; restore.
	saved := spec.Companions
	spec.Companions = nil
	defer func() { spec.Companions = saved }()
	cs := Case{
		Schema: CaseSchema, Procs: 4, Threads: 1, Threshold: 0.005,
		Props: []CaseProp{{
			Name:  name,
			Float: map[string]float64{"extra": 0.02},
			Int:   map[string]int{"r": 2},
			Distr: map[string]core.DistrSpec{"work": {Name: "block2", Low: 0.004, High: 0.02}},
		}},
	}
	out, err := Check(cs, CheckOptions{SkipDeterminism: true})
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	for _, v := range out.Violations {
		if v.Axis == AxisNegative && v.Property == "wait_at_mpi_barrier" {
			fired = true
		}
	}
	if !fired {
		t.Errorf("negative axis silent without companions: %v", out.Violations)
	}
}

// TestASLScenarioEngineDiff: byte-identical ATS1 traces and profile hashes
// across the event-driven and goroutine engines, unperturbed and under a
// perturbation profile.
func TestASLScenarioEngineDiff(t *testing.T) {
	name := registerProbe(t, conformanceScenario)
	cs := probeCase(name, 4)
	out, err := DiffEngines(cs, perturb.Profile{})
	if err != nil {
		t.Fatalf("unperturbed: %v", err)
	}
	if !out.BytesCompared || out.TraceBytes == 0 {
		t.Errorf("unperturbed outcome %+v", out)
	}
	if _, err := DiffEngines(cs, perturb.Level(7, 2)); err != nil {
		t.Fatalf("perturbed: %v", err)
	}
}

// TestASLScenarioGenerateDrawsFromMergedRegistry: once registered, the
// scenario joins the default pool and seeds exist that draw it with
// in-range parameters.
func TestASLScenarioGenerateDrawsFromMergedRegistry(t *testing.T) {
	name := registerProbe(t, conformanceScenario)
	pool := DefaultPool()
	found := false
	for _, p := range pool {
		if p == name {
			found = true
		}
	}
	if !found {
		t.Fatalf("%s missing from DefaultPool %v", name, pool)
	}
	// Force-draw the scenario and validate the generated arguments.
	cs := Generate(3, Config{Pool: []string{name}, MinProps: 1, MaxProps: 1})
	if len(cs.Props) != 1 || cs.Props[0].Name != name {
		t.Fatalf("generated %v", cs)
	}
	if err := cs.Validate(); err != nil {
		t.Fatalf("generated case invalid: %v", err)
	}
	cp := cs.Props[0]
	if cp.Float["extra"] < 0.01 || cp.Float["extra"] > 0.04 {
		t.Errorf("extra %v outside declared in-range [0.01, 0.04]", cp.Float["extra"])
	}
	if cp.Int["r"] < 1 || cp.Int["r"] > 4 {
		t.Errorf("r %v outside declared in-range [1, 4]", cp.Int["r"])
	}
	out, err := Check(cs, CheckOptions{SkipDeterminism: true})
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK() {
		t.Errorf("generated scenario case fails oracle: %v", out.Violations)
	}
}

// TestASLScenarioShrink: a failing case containing the scenario shrinks by
// halving its ASL-declared parameters, same as any built-in.
func TestASLScenarioShrink(t *testing.T) {
	name := registerProbe(t, conformanceScenario)
	cs := probeCase(name, 4)
	cs.Props[0].Float["extra"] = 0.04
	cs.Props[0].Int["r"] = 4
	// A dropped detection makes the case fail its positive axis, giving
	// the shrinker something real to minimize.
	opt := CheckOptions{SkipDeterminism: true, DropProperty: "late_sender"}
	min := Shrink(cs, opt)
	if len(min.Props) != 1 || min.Props[0].Name != name {
		t.Fatalf("shrunk to %v", min)
	}
	if got := min.Props[0].Int["r"]; got != 1 {
		t.Errorf("r not halved to 1: %d", got)
	}
	if got := min.Props[0].Float["extra"]; got >= 0.04 {
		t.Errorf("extra not shrunk: %v", got)
	}
	if !stillFailing(min, opt.withDefaults()) {
		t.Error("shrunk case no longer fails")
	}
}
