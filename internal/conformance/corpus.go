package conformance

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Corpus I/O: failing (or seed) cases live as one JSON file each under a
// corpus directory — testdata/conformance-corpus/ in this repository —
// and replay byte-identically through ReadCase + Check.

// CorpusEntry is one named case of a corpus directory.
type CorpusEntry struct {
	Name string
	Case Case
}

// MarshalCase renders the canonical JSON form of a case.
func MarshalCase(cs Case) ([]byte, error) {
	blob, err := json.MarshalIndent(cs, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("conformance: marshal case: %w", err)
	}
	return append(blob, '\n'), nil
}

// WriteCase writes a case file, creating the directory if needed.
func WriteCase(path string, cs Case) error {
	blob, err := MarshalCase(cs)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, blob, 0o644)
}

// ReadCase loads and validates one case file.
func ReadCase(path string) (Case, error) {
	var cs Case
	blob, err := os.ReadFile(path)
	if err != nil {
		return cs, err
	}
	if err := json.Unmarshal(blob, &cs); err != nil {
		return cs, fmt.Errorf("conformance: %s: %w", path, err)
	}
	if err := cs.Validate(); err != nil {
		return cs, fmt.Errorf("conformance: %s: %w", path, err)
	}
	return cs, nil
}

// LoadCorpus reads every *.json case under dir, sorted by file name.  A
// missing directory is an empty corpus, not an error.
func LoadCorpus(dir string) ([]CorpusEntry, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var out []CorpusEntry
	for _, p := range paths {
		cs, err := ReadCase(p)
		if err != nil {
			return nil, err
		}
		out = append(out, CorpusEntry{Name: filepath.Base(p), Case: cs})
	}
	return out, nil
}
