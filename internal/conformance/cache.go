package conformance

// Result-cache wiring: the conformance oracle is a pure function of
// (case, options, engine, engine version, perturbation profile), which
// makes its verdicts ideal content-addressed cache entries — a warm
// sweep replays stored Outcomes byte-identically instead of re-running
// run+trace+analyze.  The cache is process-wide (SetResultCache), like
// campaign.SetDefaultWorkers and mpi.SetDefaultEngine: CLIs install it
// once from their -cache flag and every sweep layer — CheckCached,
// CheckRobust's per-level loop, noise-floor calibration, the engine
// differential — shares it.

import (
	"encoding/json"
	"sync/atomic"

	"repro/internal/mpi"
	"repro/internal/perturb"
	"repro/internal/profile"
	"repro/internal/rescache"
)

// resultCache is the installed process-wide store (nil: caching off).
var resultCache atomic.Pointer[rescache.Store]

// SetResultCache installs (or, with nil, removes) the process-wide
// result cache consulted by CheckCached, CheckRobust, DiffEnginesCached
// and CalibratedNoiseFloor.
func SetResultCache(s *rescache.Store) { resultCache.Store(s) }

// ResultCache returns the installed result cache, or nil.
func ResultCache() *rescache.Store { return resultCache.Load() }

// checkKeyDoc is everything a Check outcome depends on.  The engine
// identity and version are load-bearing: an outcome computed under one
// engine must never be served to a sweep running another (the
// calibration cache historically omitted exactly this and is the
// cautionary tale), and an engine change invalidates by version bump.
type checkKeyDoc struct {
	Kind            string          `json:"kind"`
	Case            Case            `json:"case"`
	NoiseFloor      float64         `json:"noise_floor"`
	RelTol          float64         `json:"rel_tol"`
	AbsTol          float64         `json:"abs_tol"`
	SkipDeterminism bool            `json:"skip_determinism"`
	DropProperty    string          `json:"drop_property,omitempty"`
	Perturb         perturb.Profile `json:"perturb"`
	Engine          string          `json:"engine"`
	EngineVersion   int             `json:"engine_version"`
	ProfileSchema   int             `json:"profile_schema"`
}

// checkKey derives the content key of one oracle invocation.
func checkKey(cs Case, opt CheckOptions) (string, error) {
	opt = opt.withDefaults()
	eng := mpi.EffectiveDefault()
	return rescache.Key(checkKeyDoc{
		Kind:            "conformance/check",
		Case:            cs,
		NoiseFloor:      opt.NoiseFloor,
		RelTol:          opt.RelTol,
		AbsTol:          opt.AbsTol,
		SkipDeterminism: opt.SkipDeterminism,
		DropProperty:    opt.DropProperty,
		Perturb:         opt.Perturb,
		Engine:          eng.String(),
		EngineVersion:   eng.Version(),
		ProfileSchema:   profile.SchemaVersion,
	})
}

// CheckCached is Check behind the process-wide result cache: a hit
// returns the stored Outcome without executing anything; a miss runs
// Check and writes the verdict through.  Without an installed cache it
// is exactly Check.  Errors (ill-formed cases) are never cached;
// failing Outcomes are — a deterministic FAIL verdict is as replayable
// as an ok one, and a warm rerun of a failing sweep must print the same
// bytes.
func CheckCached(cs Case, opt CheckOptions) (Outcome, error) {
	c := ResultCache()
	if c == nil {
		return Check(cs, opt)
	}
	key, err := checkKey(cs, opt)
	if err != nil {
		return Check(cs, opt)
	}
	if blob, ok := c.Get(key); ok {
		var out Outcome
		if json.Unmarshal(blob, &out) == nil {
			return out, nil
		}
	}
	out, err := Check(cs, opt)
	if err != nil {
		return out, err
	}
	if blob, merr := json.Marshal(out); merr == nil {
		_ = c.Put(key, blob) // best-effort write-through
	}
	return out, nil
}

// diffKeyDoc keys an engine-differential outcome: it depends on both
// engines, so both versions are part of the key.
type diffKeyDoc struct {
	Kind             string          `json:"kind"`
	Case             Case            `json:"case"`
	Perturb          perturb.Profile `json:"perturb"`
	EventVersion     int             `json:"event_version"`
	GoroutineVersion int             `json:"goroutine_version"`
	ProfileSchema    int             `json:"profile_schema"`
}

// DiffEnginesCached is DiffEngines behind the process-wide result cache.
// Only agreeing outcomes are cached: a divergence is a finding about the
// running binary and must be re-observed, never replayed from disk.
func DiffEnginesCached(cs Case, prof perturb.Profile) (DiffOutcome, error) {
	c := ResultCache()
	if c == nil {
		return DiffEngines(cs, prof)
	}
	key, kerr := rescache.Key(diffKeyDoc{
		Kind:             "conformance/diff",
		Case:             cs,
		Perturb:          prof,
		EventVersion:     mpi.EngineEvent.Version(),
		GoroutineVersion: mpi.EngineGoroutine.Version(),
		ProfileSchema:    profile.SchemaVersion,
	})
	if kerr != nil {
		return DiffEngines(cs, prof)
	}
	if blob, ok := c.Get(key); ok {
		var out DiffOutcome
		if json.Unmarshal(blob, &out) == nil {
			return out, nil
		}
	}
	out, err := DiffEngines(cs, prof)
	if err != nil {
		return out, err
	}
	if blob, merr := json.Marshal(out); merr == nil {
		_ = c.Put(key, blob)
	}
	return out, nil
}

// calKeyDoc keys one noise-floor calibration cell.  The profile's seed
// is normalized away by the caller (the floor is a property of shape ×
// disturbance magnitudes alone); the engine identity is not — see the
// regression test in cache_test.go.
type calKeyDoc struct {
	Kind          string          `json:"kind"`
	Procs         int             `json:"procs"`
	Threads       int             `json:"threads"`
	Profile       perturb.Profile `json:"profile"`
	Engine        string          `json:"engine"`
	EngineVersion int             `json:"engine_version"`
}

// calDiskKey derives the on-disk key of one calibration cell.
func calDiskKey(k calKey) (string, error) {
	return rescache.Key(calKeyDoc{
		Kind:          "conformance/calibration",
		Procs:         k.procs,
		Threads:       k.threads,
		Profile:       k.prof,
		Engine:        k.engine,
		EngineVersion: mpi.EffectiveDefault().Version(),
	})
}

// calCacheLoad consults the on-disk store for a calibration cell.
func calCacheLoad(k calKey) (float64, bool) {
	c := ResultCache()
	if c == nil {
		return 0, false
	}
	key, err := calDiskKey(k)
	if err != nil {
		return 0, false
	}
	blob, ok := c.Get(key)
	if !ok {
		return 0, false
	}
	var floor float64
	if json.Unmarshal(blob, &floor) != nil {
		return 0, false
	}
	return floor, true
}

// calCacheStore writes a calibration cell through to the on-disk store.
func calCacheStore(k calKey, floor float64) {
	c := ResultCache()
	if c == nil {
		return
	}
	key, err := calDiskKey(k)
	if err != nil {
		return
	}
	if blob, merr := json.Marshal(floor); merr == nil {
		_ = c.Put(key, blob)
	}
}
