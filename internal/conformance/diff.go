package conformance

// Engine differential harness: the migration oracle for the event-driven
// virtual-time scheduler.  A case is executed twice — once per execution
// engine — and the serialized ATS1 traces and canonical profile hashes are
// compared byte for byte.  Any divergence (message matching, collective
// completion times, wildcard resolution order, OMP team scheduling) shows
// up as a trace or hash mismatch, so the event engine's claim of
// observational equivalence with the goroutine engine is checked on the
// whole conformance surface rather than argued case by case.

import (
	"bytes"
	"fmt"

	"repro/internal/analyzer"
	"repro/internal/mpi"
	"repro/internal/perturb"
)

// DiffOutcome reports one engine-differential comparison.
type DiffOutcome struct {
	// Hash is the profile content hash both engines produced.
	Hash string
	// TraceBytes is the size of the serialized ATS1 trace compared.
	TraceBytes int
	// BytesCompared is false for cases containing a property in
	// NondeterministicWaits: their traces legitimately vary run to run
	// (lock-entry attribution), so only successful completion on both
	// engines is checked.
	BytesCompared bool
}

// engineRun executes the case on one engine and returns the serialized
// trace plus the canonical profile hash.
func engineRun(cs Case, prof perturb.Profile, eng mpi.Engine) ([]byte, string, error) {
	opts := mpi.Options{Procs: cs.Procs, Perturb: perturb.NewModel(prof), Engine: eng}
	tr, err := mpi.Run(opts, caseBody(cs))
	if err != nil {
		return nil, "", fmt.Errorf("engine %s: %w", eng, err)
	}
	var buf bytes.Buffer
	if _, err := tr.Write(&buf); err != nil {
		return nil, "", fmt.Errorf("engine %s: serialize: %w", eng, err)
	}
	rep := analyzer.Analyze(tr, analyzer.Options{Threshold: cs.Threshold})
	hash, err := caseHash(cs, tr, rep)
	if err != nil {
		return nil, "", fmt.Errorf("engine %s: hash: %w", eng, err)
	}
	return buf.Bytes(), hash, nil
}

// DiffEngines runs the case under the given perturbation profile on both
// the event and goroutine engines and compares the serialized traces and
// profile hashes byte for byte.  A mismatch is returned as an error naming
// the first diverging byte offset; the error is the finding.
func DiffEngines(cs Case, prof perturb.Profile) (DiffOutcome, error) {
	if err := cs.Validate(); err != nil {
		return DiffOutcome{}, err
	}
	evBytes, evHash, err := engineRun(cs, prof, mpi.EngineEvent)
	if err != nil {
		return DiffOutcome{}, err
	}
	goBytes, goHash, err := engineRun(cs, prof, mpi.EngineGoroutine)
	if err != nil {
		return DiffOutcome{}, err
	}
	out := DiffOutcome{Hash: evHash, TraceBytes: len(evBytes)}
	if hasNondeterministicWaits(cs) {
		return out, nil
	}
	out.BytesCompared = true
	if evHash != goHash {
		return out, fmt.Errorf("conformance: engine divergence: profile hash event=%s goroutine=%s", evHash, goHash)
	}
	if !bytes.Equal(evBytes, goBytes) {
		off := diffOffset(evBytes, goBytes)
		return out, fmt.Errorf("conformance: engine divergence: ATS1 traces differ at byte %d (event %dB, goroutine %dB)",
			off, len(evBytes), len(goBytes))
	}
	return out, nil
}

// DiffEngineBodies runs an arbitrary rank body at the given scale on both
// engines and byte-compares the serialized traces — the mpi-level half of
// the harness, for programs (Ch.4 apps, fig35, hand-written patterns) that
// are not expressible as conformance cases.  It returns the shared trace
// size.
func DiffEngineBodies(procs int, body func(c *mpi.Comm)) (int, error) {
	ser := func(eng mpi.Engine) ([]byte, error) {
		tr, err := mpi.Run(mpi.Options{Procs: procs, Engine: eng}, body)
		if err != nil {
			return nil, fmt.Errorf("engine %s: %w", eng, err)
		}
		var buf bytes.Buffer
		if _, err := tr.Write(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	evBytes, err := ser(mpi.EngineEvent)
	if err != nil {
		return 0, err
	}
	goBytes, err := ser(mpi.EngineGoroutine)
	if err != nil {
		return 0, err
	}
	if !bytes.Equal(evBytes, goBytes) {
		return len(evBytes), fmt.Errorf("engine divergence: ATS1 traces differ at byte %d (event %dB, goroutine %dB)",
			diffOffset(evBytes, goBytes), len(evBytes), len(goBytes))
	}
	return len(evBytes), nil
}

// DiffSeeds runs the generated-seed sweep used by `atsfuzz diff` and the
// CI scale-smoke job: seeds 1..n, each unperturbed plus one perturbation
// level (cycling 0..MaxLevel by seed), stopping at the first divergence.
// Comparisons go through the process-wide result cache when one is
// installed (agreeing seeds are free on reruns; divergences always
// re-execute).
func DiffSeeds(n int, progress func(seed uint64, out DiffOutcome)) error {
	for seed := uint64(1); seed <= uint64(n); seed++ {
		cs := Generate(seed, Config{})
		out, err := DiffEnginesCached(cs, perturb.Profile{})
		if err != nil {
			return fmt.Errorf("seed %d (%s): %w", seed, cs, err)
		}
		level := int(seed % uint64(perturb.MaxLevel+1))
		if level > 0 {
			if _, err := DiffEnginesCached(cs, perturb.Level(seed, level)); err != nil {
				return fmt.Errorf("seed %d (%s) perturb level %d: %w", seed, cs, level, err)
			}
		}
		if progress != nil {
			progress(seed, out)
		}
	}
	return nil
}

// diffOffset returns the first index at which a and b differ.
func diffOffset(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
