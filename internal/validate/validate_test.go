package validate

import (
	"strings"
	"testing"
)

func TestSuitePassesUninstrumented(t *testing.T) {
	for _, o := range RunSuite(false) {
		if !o.Passed {
			t.Errorf("%s failed: %v", o.Name, o.Err)
		}
	}
}

func TestSuitePassesInstrumented(t *testing.T) {
	for _, o := range RunSuite(true) {
		if !o.Passed {
			t.Errorf("%s failed: %v", o.Name, o.Err)
		}
	}
}

// TestSemanticsPreservation is the paper's Chapter-2 procedure end to end:
// identical results with and without instrumentation.
func TestSemanticsPreservation(t *testing.T) {
	plain := RunSuite(false)
	instrumented := RunSuite(true)
	if err := Compare(plain, instrumented); err != nil {
		t.Fatal(err)
	}
}

func TestDigestsDeterministic(t *testing.T) {
	a := RunSuite(false)
	b := RunSuite(false)
	for i := range a {
		if a[i].Digest != b[i].Digest {
			t.Errorf("%s: digest varies between identical runs", a[i].Name)
		}
	}
}

func TestCompareDetectsDivergence(t *testing.T) {
	a := RunSuite(false)
	b := RunSuite(false)
	b[3].Digest ^= 1
	if err := Compare(a, b); err == nil || !strings.Contains(err.Error(), a[3].Name) {
		t.Errorf("digest divergence not detected: %v", err)
	}
	c := RunSuite(false)
	c[0].Passed = false
	if err := Compare(a, c); err == nil {
		t.Error("failed check not detected")
	}
	if err := Compare(a, a[:5]); err == nil {
		t.Error("length mismatch not detected")
	}
}

func TestCheckNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, ck := range Checks() {
		if seen[ck.Name] {
			t.Errorf("duplicate check %q", ck.Name)
		}
		seen[ck.Name] = true
	}
	if len(seen) < 15 {
		t.Errorf("only %d checks in the suite", len(seen))
	}
}
