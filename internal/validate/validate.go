// Package validate implements the validation-suite layer of the paper's
// Chapter 2: a self-contained suite of semantic checks for the MPI-like
// and OpenMP-like substrates, runnable with and without instrumentation.
//
// The paper's procedure for testing that a performance tool is
// semantics-preserving is: run a validation suite on the target system;
// run it again with the tool's instrumentation added; the results must be
// identical.  Each check here therefore computes a deterministic result
// digest, so the two runs can be compared bit-for-bit, not just
// pass/fail.
package validate

import (
	"fmt"
	"hash/fnv"
	"sync/atomic"
	"time"

	"repro/internal/distr"
	"repro/internal/mpi"
	"repro/internal/omp"
	"repro/internal/xctx"
)

// Check is one validation test: it runs a small parallel program and
// returns a digest of the data it computed.  traced selects whether the
// run is instrumented (event tracing on) — the digest must not depend on
// it.
type Check struct {
	Name string
	Run  func(traced bool) (uint64, error)
}

// Outcome records one check's result.
type Outcome struct {
	Name   string
	Passed bool
	Digest uint64
	Err    error
}

// digest hashes a byte stream.
type digest struct{ h uint64 }

func newDigest() *digest { return &digest{h: fnv.New64a().Sum64()} }

func (d *digest) add(p []byte) {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(d.h >> (8 * i))
	}
	h.Write(buf[:])
	h.Write(p)
	d.h = h.Sum64()
}

func (d *digest) addInt(v int64) {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(v) >> (8 * i))
	}
	d.add(buf[:])
}

// mpiOpts builds the world options for a check.
func mpiOpts(procs int, traced bool) mpi.Options {
	return mpi.Options{
		Procs:    procs,
		Untraced: !traced,
		Timeout:  30 * time.Second,
		Seed:     12345,
	}
}

// gatherDigest collects every rank's local digest at rank 0 and combines
// them in rank order, producing a single world digest.
func gatherDigest(c *mpi.Comm, local uint64) uint64 {
	s := mpi.AllocBuf(mpi.TypeInt, 1)
	s.SetInt64(0, int64(local))
	var r *mpi.Buf
	if c.Rank() == 0 {
		r = mpi.AllocBuf(mpi.TypeInt, c.Size())
	}
	c.Gather(s, r, 0)
	if c.Rank() != 0 {
		return 0
	}
	d := newDigest()
	for i := 0; i < c.Size(); i++ {
		d.addInt(r.Int64(i))
	}
	return d.h
}

// runMPICheck runs body on a fresh world and returns rank 0's digest.
func runMPICheck(procs int, traced bool, body func(c *mpi.Comm, d *digest)) (uint64, error) {
	result := make([]uint64, procs)
	_, err := mpi.Run(mpiOpts(procs, traced), func(c *mpi.Comm) {
		d := newDigest()
		body(c, d)
		result[c.WorldRank()] = gatherDigest(c, d.h)
	})
	return result[0], err
}

// Checks returns the full validation suite.
func Checks() []Check {
	return []Check{
		{"mpi_p2p_roundtrip", checkP2PRoundtrip},
		{"mpi_p2p_ordering", checkP2POrdering},
		{"mpi_p2p_tags", checkP2PTags},
		{"mpi_sendrecv_ring", checkSendrecvRing},
		{"mpi_bcast", checkBcast},
		{"mpi_reduce_allreduce", checkReduce},
		{"mpi_scatter_gather", checkScatterGather},
		{"mpi_scatterv_gatherv", checkScattervGatherv},
		{"mpi_alltoall", checkAlltoall},
		{"mpi_scan", checkScan},
		{"mpi_comm_split", checkCommSplit},
		{"mpi_nonblocking", checkNonblocking},
		{"mpi_allgatherv", checkAllgatherv},
		{"mpi_probe_bsend", checkProbeBsend},
		{"mpi_vector_datatype", checkVectorDatatype},
		{"omp_loop_coverage", checkOMPLoopCoverage},
		{"omp_reduction_critical", checkOMPCritical},
		{"omp_single_sections", checkOMPSingleSections},
		{"hybrid_phases", checkHybridPhases},
	}
}

func checkP2PRoundtrip(traced bool) (uint64, error) {
	return runMPICheck(4, traced, func(c *mpi.Comm, d *digest) {
		b := mpi.AllocBuf(mpi.TypeInt, 16)
		if c.Rank() == 0 {
			for i := 0; i < 16; i++ {
				b.SetInt64(i, int64(i*i+1))
			}
			for dst := 1; dst < c.Size(); dst++ {
				c.Send(b, dst, 1)
			}
			acc := mpi.AllocBuf(mpi.TypeInt, 16)
			for dst := 1; dst < c.Size(); dst++ {
				c.Recv(acc, dst, 2)
				d.add(acc.Data)
			}
		} else {
			c.Recv(b, 0, 1)
			for i := 0; i < 16; i++ {
				b.SetInt64(i, b.Int64(i)*int64(c.Rank()))
			}
			c.Send(b, 0, 2)
			d.add(b.Data)
		}
	})
}

func checkP2POrdering(traced bool) (uint64, error) {
	return runMPICheck(2, traced, func(c *mpi.Comm, d *digest) {
		const n = 32
		b := mpi.AllocBuf(mpi.TypeInt, 1)
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				b.SetInt64(0, int64(i))
				c.Send(b, 1, 0)
			}
		} else {
			for i := 0; i < n; i++ {
				c.Recv(b, 0, 0)
				if b.Int64(0) != int64(i) {
					panic(fmt.Sprintf("ordering violated: got %d at %d", b.Int64(0), i))
				}
				d.addInt(b.Int64(0))
			}
		}
	})
}

func checkP2PTags(traced bool) (uint64, error) {
	return runMPICheck(2, traced, func(c *mpi.Comm, d *digest) {
		b := mpi.AllocBuf(mpi.TypeInt, 1)
		if c.Rank() == 0 {
			for _, tag := range []int{5, 3, 9} {
				b.SetInt64(0, int64(tag*100))
				c.Send(b, 1, tag)
			}
		} else {
			for _, tag := range []int{9, 5, 3} { // out of send order
				c.Recv(b, 0, tag)
				if b.Int64(0) != int64(tag*100) {
					panic("tag selectivity violated")
				}
				d.addInt(b.Int64(0))
			}
		}
	})
}

func checkSendrecvRing(traced bool) (uint64, error) {
	return runMPICheck(5, traced, func(c *mpi.Comm, d *digest) {
		s := mpi.AllocBuf(mpi.TypeDouble, 8)
		r := mpi.AllocBuf(mpi.TypeDouble, 8)
		s.FillSeq(c.Rank())
		next, prev := (c.Rank()+1)%c.Size(), (c.Rank()+c.Size()-1)%c.Size()
		for step := 0; step < c.Size(); step++ {
			c.Sendrecv(s, next, 7, r, prev, 7)
			s, r = r, s
		}
		// After size steps the original data returns.
		want := mpi.AllocBuf(mpi.TypeDouble, 8)
		want.FillSeq(c.Rank())
		if !s.Equal(want) {
			panic("ring shift did not return original data")
		}
		d.add(s.Data)
	})
}

func checkBcast(traced bool) (uint64, error) {
	return runMPICheck(6, traced, func(c *mpi.Comm, d *digest) {
		for root := 0; root < c.Size(); root++ {
			b := mpi.AllocBuf(mpi.TypeDouble, 10)
			if c.Rank() == root {
				b.FillSeq(root + 100)
			}
			c.Bcast(b, root)
			want := mpi.AllocBuf(mpi.TypeDouble, 10)
			want.FillSeq(root + 100)
			if !b.Equal(want) {
				panic(fmt.Sprintf("bcast from root %d corrupted data", root))
			}
			d.add(b.Data)
		}
	})
}

func checkReduce(traced bool) (uint64, error) {
	return runMPICheck(5, traced, func(c *mpi.Comm, d *digest) {
		s := mpi.AllocBuf(mpi.TypeInt, 4)
		for i := 0; i < 4; i++ {
			s.SetInt64(i, int64((c.Rank()+1)*(i+1)))
		}
		r := mpi.AllocBuf(mpi.TypeInt, 4)
		for _, op := range []mpi.Op{mpi.OpSum, mpi.OpMax, mpi.OpMin, mpi.OpProd} {
			c.Reduce(s, r, op, 2)
			if c.Rank() == 2 {
				d.add(r.Data)
			}
			c.Allreduce(s, r, op)
			d.add(r.Data)
		}
		// Cross-check allreduce sum against the closed form.
		c.Allreduce(s, r, mpi.OpSum)
		n := int64(c.Size())
		for i := 0; i < 4; i++ {
			want := n * (n + 1) / 2 * int64(i+1)
			if r.Int64(i) != want {
				panic(fmt.Sprintf("allreduce sum element %d = %d, want %d", i, r.Int64(i), want))
			}
		}
	})
}

func checkScatterGather(traced bool) (uint64, error) {
	return runMPICheck(4, traced, func(c *mpi.Comm, d *digest) {
		const cnt = 5
		var sb, gb *mpi.Buf
		if c.Rank() == 1 {
			sb = mpi.AllocBuf(mpi.TypeInt, cnt*c.Size())
			for i := 0; i < cnt*c.Size(); i++ {
				sb.SetInt64(i, int64(3*i+7))
			}
			gb = mpi.AllocBuf(mpi.TypeInt, cnt*c.Size())
		}
		part := mpi.AllocBuf(mpi.TypeInt, cnt)
		c.Scatter(sb, part, 1)
		for i := 0; i < cnt; i++ {
			part.SetInt64(i, part.Int64(i)+1)
		}
		c.Gather(part, gb, 1)
		if c.Rank() == 1 {
			for i := 0; i < cnt*c.Size(); i++ {
				if gb.Int64(i) != int64(3*i+8) {
					panic("scatter/gather round trip corrupted data")
				}
			}
			d.add(gb.Data)
		}
	})
}

func checkScattervGatherv(traced bool) (uint64, error) {
	return runMPICheck(4, traced, func(c *mpi.Comm, d *digest) {
		v := mpi.AllocVBuf(c, mpi.TypeInt, distr.Linear, distr.Val2{Low: 1, High: 7}, 1.0, 0)
		if c.Rank() == 0 {
			for i := 0; i < v.Total; i++ {
				v.RootBuf.SetInt64(i, int64(i))
			}
		}
		c.Scatterv(v)
		for i := 0; i < v.Buf.Count; i++ {
			v.Buf.SetInt64(i, v.Buf.Int64(i)*10)
		}
		c.Gatherv(v)
		if c.Rank() == 0 {
			for i := 0; i < v.Total; i++ {
				if v.RootBuf.Int64(i) != int64(10*i) {
					panic("scatterv/gatherv round trip corrupted data")
				}
			}
			d.add(v.RootBuf.Data)
		}
	})
}

func checkAlltoall(traced bool) (uint64, error) {
	return runMPICheck(4, traced, func(c *mpi.Comm, d *digest) {
		P := c.Size()
		s := mpi.AllocBuf(mpi.TypeInt, P)
		r := mpi.AllocBuf(mpi.TypeInt, P)
		for j := 0; j < P; j++ {
			s.SetInt64(j, int64(c.Rank()*1000+j))
		}
		c.Alltoall(s, r)
		for j := 0; j < P; j++ {
			if r.Int64(j) != int64(j*1000+c.Rank()) {
				panic("alltoall misrouted data")
			}
		}
		d.add(r.Data)
	})
}

func checkScan(traced bool) (uint64, error) {
	return runMPICheck(6, traced, func(c *mpi.Comm, d *digest) {
		s := mpi.AllocBuf(mpi.TypeInt, 1)
		r := mpi.AllocBuf(mpi.TypeInt, 1)
		s.SetInt64(0, int64(c.Rank()+1))
		c.Scan(s, r, mpi.OpSum)
		want := int64((c.Rank() + 1) * (c.Rank() + 2) / 2)
		if r.Int64(0) != want {
			panic("scan prefix wrong")
		}
		d.addInt(r.Int64(0))
	})
}

func checkCommSplit(traced bool) (uint64, error) {
	return runMPICheck(8, traced, func(c *mpi.Comm, d *digest) {
		sub := c.Split(c.Rank()%3, c.Rank())
		s := mpi.AllocBuf(mpi.TypeInt, 1)
		r := mpi.AllocBuf(mpi.TypeInt, 1)
		s.SetInt64(0, int64(c.Rank()))
		sub.Allreduce(s, r, mpi.OpSum)
		// Sum of world ranks with the same color.
		var want int64
		for i := c.Rank() % 3; i < c.Size(); i += 3 {
			want += int64(i)
		}
		if r.Int64(0) != want {
			panic("split communicator reduced wrong group")
		}
		d.addInt(r.Int64(0))
		d.addInt(int64(sub.Rank()))
		d.addInt(int64(sub.Size()))
	})
}

func checkNonblocking(traced bool) (uint64, error) {
	return runMPICheck(4, traced, func(c *mpi.Comm, d *digest) {
		P := c.Size()
		// Everyone isends its rank to everyone else, then receives.
		var reqs []*mpi.Request
		bufs := make([]*mpi.Buf, P)
		for dst := 0; dst < P; dst++ {
			if dst == c.Rank() {
				continue
			}
			b := mpi.AllocBuf(mpi.TypeInt, 1)
			b.SetInt64(0, int64(c.Rank()*10+dst))
			reqs = append(reqs, c.Isend(b, dst, 4))
		}
		for src := 0; src < P; src++ {
			if src == c.Rank() {
				continue
			}
			bufs[src] = mpi.AllocBuf(mpi.TypeInt, 1)
			reqs = append(reqs, c.Irecv(bufs[src], src, 4))
		}
		c.WaitAll(reqs...)
		for src := 0; src < P; src++ {
			if src == c.Rank() {
				continue
			}
			if bufs[src].Int64(0) != int64(src*10+c.Rank()) {
				panic("nonblocking exchange misrouted data")
			}
			d.addInt(bufs[src].Int64(0))
		}
	})
}

func checkAllgatherv(traced bool) (uint64, error) {
	return runMPICheck(4, traced, func(c *mpi.Comm, d *digest) {
		counts := []int{1, 3, 2, 4}
		s := mpi.AllocBuf(mpi.TypeInt, counts[c.Rank()])
		for i := 0; i < s.Count; i++ {
			s.SetInt64(i, int64(c.Rank()*100+i))
		}
		total := 0
		for _, n := range counts {
			total += n
		}
		r := mpi.AllocBuf(mpi.TypeInt, total)
		c.Allgatherv(s, r, counts)
		off := 0
		for rank, n := range counts {
			for i := 0; i < n; i++ {
				if r.Int64(off) != int64(rank*100+i) {
					panic("allgatherv misplaced data")
				}
				off++
			}
		}
		d.add(r.Data)
	})
}

func checkProbeBsend(traced bool) (uint64, error) {
	return runMPICheck(2, traced, func(c *mpi.Comm, d *digest) {
		if c.Rank() == 0 {
			// Bsend of a large message must not block without a receiver.
			big := mpi.AllocBuf(mpi.TypeDouble, 4096)
			big.FillSeq(7)
			c.Bsend(big, 1, 3)
			small := mpi.AllocBuf(mpi.TypeInt, 2)
			small.SetInt64(0, 11)
			small.SetInt64(1, 22)
			c.Send(small, 1, 4)
			d.addInt(11)
		} else {
			// Probe learns the size before allocating, as real MPI code
			// does with MPI_Probe + MPI_Get_count.
			st := c.Probe(0, 3)
			buf := mpi.AllocBuf(mpi.TypeDouble, st.Count)
			c.Recv(buf, 0, 3)
			want := mpi.AllocBuf(mpi.TypeDouble, 4096)
			want.FillSeq(7)
			if !buf.Equal(want) {
				panic("probed message corrupted")
			}
			st2 := c.Probe(mpi.AnySource, mpi.AnyTag)
			if st2.Tag != 4 || st2.Count != 2 {
				panic(fmt.Sprintf("second probe got %+v", st2))
			}
			small := mpi.AllocBuf(mpi.TypeInt, st2.Count)
			c.Recv(small, st2.Source, st2.Tag)
			d.addInt(small.Int64(0) + small.Int64(1))
		}
	})
}

func checkVectorDatatype(traced bool) (uint64, error) {
	return runMPICheck(2, traced, func(c *mpi.Comm, d *digest) {
		v := mpi.Vector{Count: 5, BlockLen: 2, Stride: 4}
		if c.Rank() == 0 {
			buf := mpi.AllocBuf(mpi.TypeInt, 20)
			for i := 0; i < 20; i++ {
				buf.SetInt64(i, int64(i*i))
			}
			c.SendVector(buf, v, 1, 6)
		} else {
			buf := mpi.AllocBuf(mpi.TypeInt, 20)
			c.RecvVector(buf, v, 0, 6)
			for b := 0; b < v.Count; b++ {
				for j := 0; j < v.BlockLen; j++ {
					idx := b*v.Stride + j
					if buf.Int64(idx) != int64(idx*idx) {
						panic("vector transfer misplaced data")
					}
				}
			}
			d.add(buf.Data)
		}
	})
}

func checkOMPLoopCoverage(traced bool) (uint64, error) {
	var errOut error
	var dig uint64
	_, err := omp.Run(omp.RunOptions{Threads: 4, Untraced: !traced, Seed: 7},
		func(ctx *xctx.Ctx, opt omp.Options) {
			const n = 200
			var hits [n]atomic.Int32
			for _, sched := range []omp.Schedule{omp.Static, omp.Dynamic, omp.Guided} {
				for i := range hits {
					hits[i].Store(0)
				}
				omp.Parallel(ctx, opt, func(tc *omp.TC) {
					tc.For(n, omp.ForOpt{Sched: sched, Chunk: 3}, func(i int) {
						hits[i].Add(1)
					})
				})
				d := newDigest()
				for i := range hits {
					if hits[i].Load() != 1 {
						errOut = fmt.Errorf("schedule %v: iteration %d ran %d times", sched, i, hits[i].Load())
						return
					}
					d.addInt(int64(hits[i].Load()))
				}
				dig ^= d.h
			}
		})
	if err != nil {
		return 0, err
	}
	return dig, errOut
}

func checkOMPCritical(traced bool) (uint64, error) {
	var total int64
	_, err := omp.Run(omp.RunOptions{Threads: 6, Untraced: !traced, Seed: 7},
		func(ctx *xctx.Ctx, opt omp.Options) {
			sum := 0
			omp.Parallel(ctx, opt, func(tc *omp.TC) {
				for i := 0; i < 50; i++ {
					tc.Critical("sum", func() {
						sum++
					})
				}
			})
			total = int64(sum)
		})
	if err != nil {
		return 0, err
	}
	if total != 6*50 {
		return 0, fmt.Errorf("critical-protected counter = %d, want %d", total, 6*50)
	}
	d := newDigest()
	d.addInt(total)
	return d.h, nil
}

func checkOMPSingleSections(traced bool) (uint64, error) {
	var singles, secs atomic.Int32
	_, err := omp.Run(omp.RunOptions{Threads: 4, Untraced: !traced, Seed: 7},
		func(ctx *xctx.Ctx, opt omp.Options) {
			omp.Parallel(ctx, opt, func(tc *omp.TC) {
				tc.Single(func() { singles.Add(1) })
				tc.Sections(
					func() { secs.Add(1) },
					func() { secs.Add(10) },
					func() { secs.Add(100) },
				)
			})
		})
	if err != nil {
		return 0, err
	}
	if singles.Load() != 1 || secs.Load() != 111 {
		return 0, fmt.Errorf("single=%d sections=%d", singles.Load(), secs.Load())
	}
	d := newDigest()
	d.addInt(int64(singles.Load()))
	d.addInt(int64(secs.Load()))
	return d.h, nil
}

func checkHybridPhases(traced bool) (uint64, error) {
	return runMPICheck(3, traced, func(c *mpi.Comm, d *digest) {
		local := int64(0)
		omp.Parallel(c.Ctx(), omp.Options{Threads: 3}, func(tc *omp.TC) {
			tc.Critical("acc", func() {
				local += int64(tc.ThreadNum() + 1)
			})
		})
		s := mpi.AllocBuf(mpi.TypeInt, 1)
		r := mpi.AllocBuf(mpi.TypeInt, 1)
		s.SetInt64(0, local*int64(c.Rank()+1))
		c.Allreduce(s, r, mpi.OpSum)
		// local = 1+2+3 = 6 per rank; weighted sum = 6*(1+2+3) = 36.
		if r.Int64(0) != 36 {
			panic(fmt.Sprintf("hybrid phase result %d, want 36", r.Int64(0)))
		}
		d.addInt(r.Int64(0))
	})
}

// RunSuite runs every check and returns the outcomes.
func RunSuite(traced bool) []Outcome {
	var out []Outcome
	for _, ck := range Checks() {
		dig, err := ck.Run(traced)
		out = append(out, Outcome{
			Name:   ck.Name,
			Passed: err == nil,
			Digest: dig,
			Err:    err,
		})
	}
	return out
}

// Compare verifies the semantics-preservation property of Chapter 2: the
// uninstrumented and instrumented runs must both pass every check with
// identical result digests.
func Compare(plain, instrumented []Outcome) error {
	if len(plain) != len(instrumented) {
		return fmt.Errorf("validate: outcome counts differ: %d vs %d", len(plain), len(instrumented))
	}
	for i := range plain {
		p, q := plain[i], instrumented[i]
		if p.Name != q.Name {
			return fmt.Errorf("validate: check order differs at %d: %s vs %s", i, p.Name, q.Name)
		}
		if !p.Passed {
			return fmt.Errorf("validate: %s failed uninstrumented: %v", p.Name, p.Err)
		}
		if !q.Passed {
			return fmt.Errorf("validate: %s failed instrumented: %v", q.Name, q.Err)
		}
		if p.Digest != q.Digest {
			return fmt.Errorf("validate: %s: instrumentation changed the result digest (%x vs %x)",
				p.Name, p.Digest, q.Digest)
		}
	}
	return nil
}
