// Package analyzer implements the automatic performance analysis tool of
// the reproduction — the consumer the APART Test Suite is validated
// against, playing the role EXPERT plays in the paper (Fig 3.5).
//
// The analyzer searches an event trace for the APART performance
// properties (compound events describing wait states) and quantifies each
// with a severity: the accumulated waiting time divided by the total
// resource consumption of the run (sum of all locations' time spans), the
// ASL convention.  Results are localized along the two remaining EXPERT
// dimensions: the dynamic call path and the process/thread location.
package analyzer

import (
	"sort"

	"repro/internal/trace"
)

// Property identifiers reported by the analyzer.  These follow the
// EXPERT/ASL catalog names rather than the ATS function names: several ATS
// functions map onto one analysis property (e.g. late_scatter manifests as
// the Late Broadcast 1-to-N pattern).
const (
	PropLateSender      = "late_sender"
	PropLateReceiver    = "late_receiver"
	PropWaitAtBarrier   = "wait_at_mpi_barrier"
	PropLateBroadcast   = "late_broadcast" // 1-to-N rooted collectives
	PropEarlyReduce     = "early_reduce"   // N-to-1 rooted collectives
	PropWaitAtNxN       = "wait_at_nxn"    // N-to-N collectives
	PropOMPRegion       = "imbalance_in_omp_region"
	PropOMPBarrier      = "imbalance_at_omp_barrier"
	PropOMPLoop         = "imbalance_in_omp_loop"
	PropOMPSections     = "imbalance_at_omp_sections"
	PropOMPSingle       = "idle_threads_at_omp_single"
	PropOMPCritical     = "serialization_at_omp_critical"
	PropInitFinalize    = "mpi_init_finalize_overhead"
	PropMPITimeFraction = "mpi_time_fraction"
	PropTotalWaiting    = "total_waiting"

	// PropRankOutlier is the finding kind of the similarity miner
	// (package similarity): a rank whose normalized wait vector clusters
	// away from the majority behavior of its run.  It is derived from a
	// profile rather than measured from a trace, so the analyzer itself
	// never reports it; the constant names the finding wherever it
	// surfaces (server reports, CLI output).
	PropRankOutlier = "rank_behavior_outlier"
)

// ExpectedDetection maps each ATS property-function name (package core) to
// the analyzer property a correct tool must report as the dominant finding
// for that function's single-property test program.  This table is the
// positive-correctness oracle of the test suite.
var ExpectedDetection = map[string]string{
	"late_sender":                             PropLateSender,
	"late_sender_nonblocking":                 PropLateSender,
	"late_receiver":                           PropLateReceiver,
	"imbalance_at_mpi_barrier":                PropWaitAtBarrier,
	"growing_imbalance_at_mpi_barrier":        PropWaitAtBarrier,
	"unparallelized_mpi_code":                 PropWaitAtBarrier,
	"imbalance_at_mpi_alltoall":               PropWaitAtNxN,
	"imbalance_at_mpi_allreduce":              PropWaitAtNxN,
	"imbalance_at_mpi_allgather":              PropWaitAtNxN,
	"late_broadcast":                          PropLateBroadcast,
	"late_scatter":                            PropLateBroadcast,
	"late_scatterv":                           PropLateBroadcast,
	"early_reduce":                            PropEarlyReduce,
	"early_gather":                            PropEarlyReduce,
	"early_gatherv":                           PropEarlyReduce,
	"dominated_by_communication":              PropMPITimeFraction,
	"imbalance_in_omp_pregion":                PropOMPRegion,
	"imbalance_at_omp_barrier":                PropOMPBarrier,
	"imbalance_in_omp_loop":                   PropOMPLoop,
	"imbalance_at_omp_sections":               PropOMPSections,
	"serialization_at_omp_critical":           PropOMPCritical,
	"unparallelized_in_single":                PropOMPSingle,
	"hybrid_omp_imbalance_causes_late_sender": PropLateSender,
	"hybrid_barrier_after_omp_regions":        PropWaitAtBarrier,
}

// Hierarchy maps each property to its parent in the EXPERT-style property
// tree; PropTotalWaiting is the root.
var Hierarchy = map[string]string{
	PropLateSender:        "mpi_p2p",
	PropLateReceiver:      "mpi_p2p",
	PropLateBroadcast:     "mpi_collective",
	PropEarlyReduce:       "mpi_collective",
	PropWaitAtNxN:         "mpi_collective",
	PropWaitAtBarrier:     "mpi_synchronization",
	"mpi_p2p":             "mpi",
	"mpi_collective":      "mpi",
	"mpi_synchronization": "mpi",
	"mpi":                 PropTotalWaiting,
	PropOMPRegion:         "omp",
	PropOMPBarrier:        "omp",
	PropOMPLoop:           "omp",
	PropOMPSections:       "omp",
	PropOMPSingle:         "omp",
	PropOMPCritical:       "omp",
	"omp":                 PropTotalWaiting,
}

// Result aggregates one property's findings.
type Result struct {
	Property string
	// Wait is the accumulated waiting time in seconds.
	Wait float64
	// Severity is Wait normalized by the run's total resource time.
	Severity float64
	// Instances counts the compound events contributing to Wait.
	Instances int
	// ByPath accumulates Wait per call path (rendered string).
	ByPath map[string]float64
	// ByLocation accumulates Wait per location.
	ByLocation map[trace.Location]float64
}

func newResult(prop string) *Result {
	return &Result{
		Property:   prop,
		ByPath:     make(map[string]float64),
		ByLocation: make(map[trace.Location]float64),
	}
}

// TopPath returns the call path with the largest accumulated wait.
func (r *Result) TopPath() string {
	best, bestW := "", -1.0
	for p, w := range r.ByPath {
		if w > bestW || (w == bestW && p < best) {
			best, bestW = p, w
		}
	}
	return best
}

// Options tunes the analysis.
type Options struct {
	// Threshold is the minimum severity for a finding to be considered
	// significant (default 0.005, i.e. 0.5% of total resource time —
	// automatic tools have "different thresholds/sensitivities", which
	// is exactly why the suite's severities are parameterizable).
	Threshold float64
}

// MessageStats summarizes point-to-point traffic — the raw material for
// diagnosing latency-bound (many tiny messages) versus bandwidth-bound
// (few huge messages) communication, as the Grindstone-style programs
// require.
type MessageStats struct {
	// Count is the number of point-to-point messages sent.
	Count int `json:"count"`
	// Bytes is their total payload volume.
	Bytes int64 `json:"bytes"`
	// AvgBytes is Bytes/Count (0 without messages).
	AvgBytes float64 `json:"avg_bytes"`
	// Rate is messages per second of trace span.
	Rate float64 `json:"rate"`
}

// Report is the complete analysis result.
type Report struct {
	// TotalTime is the aggregate resource time severity is normalized by.
	TotalTime float64
	// Duration is the wall span of the trace.
	Duration float64
	// Results holds one entry per detected leaf property.
	Results map[string]*Result
	// Stats is the flat region profile of the trace.
	Stats *trace.Stats
	// Messages summarizes point-to-point traffic.
	Messages MessageStats
	// Threshold is the significance threshold used.
	Threshold float64
}

// IsInfo reports whether prop is an info metric: a cost measure (MPI
// init/finalize overhead, MPI time fraction) rather than a wait state.
// Info metrics are reported separately and never count as findings.
func IsInfo(prop string) bool {
	return prop == PropInitFinalize || prop == PropMPITimeFraction
}

// Get returns the result for a property (nil if nothing was detected).
func (rep *Report) Get(prop string) *Result { return rep.Results[prop] }

// Properties returns the names of all detected properties (including info
// metrics) in sorted order — the stable iteration order external tooling
// (profile extraction, regression diffing) relies on.
func (rep *Report) Properties() []string {
	names := make([]string, 0, len(rep.Results))
	for name := range rep.Results {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Wait returns the accumulated waiting time for a property (0 if none).
func (rep *Report) Wait(prop string) float64 {
	if r := rep.Results[prop]; r != nil {
		return r.Wait
	}
	return 0
}

// Severity returns a property's severity (0 if not detected).
func (rep *Report) Severity(prop string) float64 {
	if r := rep.Results[prop]; r != nil {
		return r.Severity
	}
	return 0
}

// Significant returns the leaf properties at or above the threshold,
// ranked by severity (highest first).  Info-metrics (init/finalize
// overhead, MPI time fraction) are excluded: they are reported separately
// because they measure cost rather than waiting.
func (rep *Report) Significant() []*Result {
	var out []*Result
	for _, r := range rep.Results {
		if IsInfo(r.Property) {
			continue
		}
		if r.Severity >= rep.Threshold {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Severity != out[j].Severity {
			return out[i].Severity > out[j].Severity
		}
		return out[i].Property < out[j].Property
	})
	return out
}

// Top returns the most severe significant property result, or nil.
func (rep *Report) Top() *Result {
	sig := rep.Significant()
	if len(sig) == 0 {
		return nil
	}
	return sig[0]
}

// Analyze runs the full pattern search over a materialized trace.
//
// The search is a single sweep over the event slab: one pass feeds the
// flat profile, the p2p matcher, the collective grouper, the lock detector
// and the message statistics.  The sweep is implemented by StreamAnalyzer
// (see stream.go), which AnalyzeStream drives from an on-disk chunk stream
// instead of a slab; both entry points perform the identical event-order
// arithmetic, so their reports — and the content-addressed profile hashes
// derived from them — are byte-identical.
func Analyze(tr *trace.Trace, opt Options) *Report {
	a := NewStreamAnalyzer(tr, opt)
	for i := range tr.Events {
		a.Add(&tr.Events[i])
	}
	return a.Finish()
}

// collKey identifies one collective instance: the operation and its match
// id.
type collKey struct {
	coll  trace.CollKind
	match uint64
}

// detectCostMetrics derives the region-profile metrics: MPI init/finalize
// overhead (the property the paper observes dominating tiny test programs
// in Fig 3.2) and the overall MPI time fraction.
func detectCostMetrics(stats *trace.Stats, rep *Report) {
	initFin := stats.RegionInclusive("MPI_Init") + stats.RegionInclusive("MPI_Finalize")
	if initFin > 0 {
		r := newResult(PropInitFinalize)
		r.Wait = initFin
		r.Instances = stats.RegionCount("MPI_Init") + stats.RegionCount("MPI_Finalize")
		r.ByPath["MPI_Init+MPI_Finalize"] = initFin
		rep.Results[PropInitFinalize] = r
	}
	var mpiTime float64
	var mpiCount int
	for _, region := range stats.RegionNames() {
		if len(region) > 4 && region[:4] == "MPI_" {
			mpiTime += stats.RegionInclusive(region)
			mpiCount += stats.RegionCount(region)
		}
	}
	if mpiTime > 0 {
		r := newResult(PropMPITimeFraction)
		r.Wait = mpiTime
		r.Instances = mpiCount
		r.ByPath["all MPI regions"] = mpiTime
		rep.Results[PropMPITimeFraction] = r
	}
}
