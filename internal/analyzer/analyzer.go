// Package analyzer implements the automatic performance analysis tool of
// the reproduction — the consumer the APART Test Suite is validated
// against, playing the role EXPERT plays in the paper (Fig 3.5).
//
// The analyzer searches an event trace for the APART performance
// properties (compound events describing wait states) and quantifies each
// with a severity: the accumulated waiting time divided by the total
// resource consumption of the run (sum of all locations' time spans), the
// ASL convention.  Results are localized along the two remaining EXPERT
// dimensions: the dynamic call path and the process/thread location.
package analyzer

import (
	"sort"

	"repro/internal/trace"
)

// Property identifiers reported by the analyzer.  These follow the
// EXPERT/ASL catalog names rather than the ATS function names: several ATS
// functions map onto one analysis property (e.g. late_scatter manifests as
// the Late Broadcast 1-to-N pattern).
const (
	PropLateSender      = "late_sender"
	PropLateReceiver    = "late_receiver"
	PropWaitAtBarrier   = "wait_at_mpi_barrier"
	PropLateBroadcast   = "late_broadcast" // 1-to-N rooted collectives
	PropEarlyReduce     = "early_reduce"   // N-to-1 rooted collectives
	PropWaitAtNxN       = "wait_at_nxn"    // N-to-N collectives
	PropOMPRegion       = "imbalance_in_omp_region"
	PropOMPBarrier      = "imbalance_at_omp_barrier"
	PropOMPLoop         = "imbalance_in_omp_loop"
	PropOMPSections     = "imbalance_at_omp_sections"
	PropOMPSingle       = "idle_threads_at_omp_single"
	PropOMPCritical     = "serialization_at_omp_critical"
	PropInitFinalize    = "mpi_init_finalize_overhead"
	PropMPITimeFraction = "mpi_time_fraction"
	PropTotalWaiting    = "total_waiting"
)

// ExpectedDetection maps each ATS property-function name (package core) to
// the analyzer property a correct tool must report as the dominant finding
// for that function's single-property test program.  This table is the
// positive-correctness oracle of the test suite.
var ExpectedDetection = map[string]string{
	"late_sender":                             PropLateSender,
	"late_sender_nonblocking":                 PropLateSender,
	"late_receiver":                           PropLateReceiver,
	"imbalance_at_mpi_barrier":                PropWaitAtBarrier,
	"growing_imbalance_at_mpi_barrier":        PropWaitAtBarrier,
	"unparallelized_mpi_code":                 PropWaitAtBarrier,
	"imbalance_at_mpi_alltoall":               PropWaitAtNxN,
	"imbalance_at_mpi_allreduce":              PropWaitAtNxN,
	"imbalance_at_mpi_allgather":              PropWaitAtNxN,
	"late_broadcast":                          PropLateBroadcast,
	"late_scatter":                            PropLateBroadcast,
	"late_scatterv":                           PropLateBroadcast,
	"early_reduce":                            PropEarlyReduce,
	"early_gather":                            PropEarlyReduce,
	"early_gatherv":                           PropEarlyReduce,
	"dominated_by_communication":              PropMPITimeFraction,
	"imbalance_in_omp_pregion":                PropOMPRegion,
	"imbalance_at_omp_barrier":                PropOMPBarrier,
	"imbalance_in_omp_loop":                   PropOMPLoop,
	"imbalance_at_omp_sections":               PropOMPSections,
	"serialization_at_omp_critical":           PropOMPCritical,
	"unparallelized_in_single":                PropOMPSingle,
	"hybrid_omp_imbalance_causes_late_sender": PropLateSender,
	"hybrid_barrier_after_omp_regions":        PropWaitAtBarrier,
}

// Hierarchy maps each property to its parent in the EXPERT-style property
// tree; PropTotalWaiting is the root.
var Hierarchy = map[string]string{
	PropLateSender:        "mpi_p2p",
	PropLateReceiver:      "mpi_p2p",
	PropLateBroadcast:     "mpi_collective",
	PropEarlyReduce:       "mpi_collective",
	PropWaitAtNxN:         "mpi_collective",
	PropWaitAtBarrier:     "mpi_synchronization",
	"mpi_p2p":             "mpi",
	"mpi_collective":      "mpi",
	"mpi_synchronization": "mpi",
	"mpi":                 PropTotalWaiting,
	PropOMPRegion:         "omp",
	PropOMPBarrier:        "omp",
	PropOMPLoop:           "omp",
	PropOMPSections:       "omp",
	PropOMPSingle:         "omp",
	PropOMPCritical:       "omp",
	"omp":                 PropTotalWaiting,
}

// Result aggregates one property's findings.
type Result struct {
	Property string
	// Wait is the accumulated waiting time in seconds.
	Wait float64
	// Severity is Wait normalized by the run's total resource time.
	Severity float64
	// Instances counts the compound events contributing to Wait.
	Instances int
	// ByPath accumulates Wait per call path (rendered string).
	ByPath map[string]float64
	// ByLocation accumulates Wait per location.
	ByLocation map[trace.Location]float64
}

func newResult(prop string) *Result {
	return &Result{
		Property:   prop,
		ByPath:     make(map[string]float64),
		ByLocation: make(map[trace.Location]float64),
	}
}

// TopPath returns the call path with the largest accumulated wait.
func (r *Result) TopPath() string {
	best, bestW := "", -1.0
	for p, w := range r.ByPath {
		if w > bestW || (w == bestW && p < best) {
			best, bestW = p, w
		}
	}
	return best
}

// Options tunes the analysis.
type Options struct {
	// Threshold is the minimum severity for a finding to be considered
	// significant (default 0.005, i.e. 0.5% of total resource time —
	// automatic tools have "different thresholds/sensitivities", which
	// is exactly why the suite's severities are parameterizable).
	Threshold float64
}

// MessageStats summarizes point-to-point traffic — the raw material for
// diagnosing latency-bound (many tiny messages) versus bandwidth-bound
// (few huge messages) communication, as the Grindstone-style programs
// require.
type MessageStats struct {
	// Count is the number of point-to-point messages sent.
	Count int `json:"count"`
	// Bytes is their total payload volume.
	Bytes int64 `json:"bytes"`
	// AvgBytes is Bytes/Count (0 without messages).
	AvgBytes float64 `json:"avg_bytes"`
	// Rate is messages per second of trace span.
	Rate float64 `json:"rate"`
}

// Report is the complete analysis result.
type Report struct {
	// TotalTime is the aggregate resource time severity is normalized by.
	TotalTime float64
	// Duration is the wall span of the trace.
	Duration float64
	// Results holds one entry per detected leaf property.
	Results map[string]*Result
	// Stats is the flat region profile of the trace.
	Stats *trace.Stats
	// Messages summarizes point-to-point traffic.
	Messages MessageStats
	// Threshold is the significance threshold used.
	Threshold float64
}

// IsInfo reports whether prop is an info metric: a cost measure (MPI
// init/finalize overhead, MPI time fraction) rather than a wait state.
// Info metrics are reported separately and never count as findings.
func IsInfo(prop string) bool {
	return prop == PropInitFinalize || prop == PropMPITimeFraction
}

// Get returns the result for a property (nil if nothing was detected).
func (rep *Report) Get(prop string) *Result { return rep.Results[prop] }

// Properties returns the names of all detected properties (including info
// metrics) in sorted order — the stable iteration order external tooling
// (profile extraction, regression diffing) relies on.
func (rep *Report) Properties() []string {
	names := make([]string, 0, len(rep.Results))
	for name := range rep.Results {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Wait returns the accumulated waiting time for a property (0 if none).
func (rep *Report) Wait(prop string) float64 {
	if r := rep.Results[prop]; r != nil {
		return r.Wait
	}
	return 0
}

// Severity returns a property's severity (0 if not detected).
func (rep *Report) Severity(prop string) float64 {
	if r := rep.Results[prop]; r != nil {
		return r.Severity
	}
	return 0
}

// Significant returns the leaf properties at or above the threshold,
// ranked by severity (highest first).  Info-metrics (init/finalize
// overhead, MPI time fraction) are excluded: they are reported separately
// because they measure cost rather than waiting.
func (rep *Report) Significant() []*Result {
	var out []*Result
	for _, r := range rep.Results {
		if IsInfo(r.Property) {
			continue
		}
		if r.Severity >= rep.Threshold {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Severity != out[j].Severity {
			return out[i].Severity > out[j].Severity
		}
		return out[i].Property < out[j].Property
	})
	return out
}

// Top returns the most severe significant property result, or nil.
func (rep *Report) Top() *Result {
	sig := rep.Significant()
	if len(sig) == 0 {
		return nil
	}
	return sig[0]
}

// Analyze runs the full pattern search over a trace.
//
// The search is a single sweep over the event slab: one pass feeds the
// flat profile, the p2p matcher, the collective grouper, the lock detector
// and the message statistics, where the original implementation walked the
// slab five times.  Fusing the sweeps is safe for the content-addressed
// profile identity because every floating-point accumulation keeps its
// order: the p2p and collective reductions still run over sorted match
// keys after the sweep, lock waits are the only contributor to their
// property so moving them into the sweep reorders nothing within a Result,
// and the profile arithmetic is shared with trace.ComputeStats via
// trace.StatsBuilder.
func Analyze(tr *trace.Trace, opt Options) *Report {
	if opt.Threshold <= 0 {
		opt.Threshold = 0.005
	}
	rep := &Report{
		Duration:  tr.Duration(),
		Results:   make(map[string]*Result),
		Threshold: opt.Threshold,
	}

	add := func(prop string, wait float64, path string, loc trace.Location) {
		if wait <= 0 {
			return
		}
		r := rep.Results[prop]
		if r == nil {
			r = newResult(prop)
			rep.Results[prop] = r
		}
		r.Wait += wait
		r.Instances++
		r.ByPath[path] += wait
		r.ByLocation[loc] += wait
	}

	sb := trace.NewStatsBuilder(tr)
	sends := make(map[uint64]*trace.Event)
	recvs := make(map[uint64]*trace.Event)
	groups := make(map[collKey][]*trace.Event)
	for i := range tr.Events {
		ev := &tr.Events[i]
		sb.Add(ev)
		switch ev.Kind {
		case trace.KindSend:
			sends[ev.Match] = ev
			rep.Messages.Count++
			rep.Messages.Bytes += ev.Bytes
		case trace.KindRecv:
			recvs[ev.Match] = ev
		case trace.KindColl:
			k := collKey{ev.Coll, ev.Match}
			groups[k] = append(groups[k], ev)
		case trace.KindLock:
			if ev.Aux > 0 {
				add(PropOMPCritical, ev.Aux, tr.PathString(ev.Path), ev.Loc)
			}
		}
	}
	stats := sb.Finish()
	rep.TotalTime = stats.TotalTime
	rep.Stats = stats

	reduceP2P(tr, sends, recvs, add)
	reduceCollectives(tr, groups, add)
	detectCostMetrics(tr, stats, rep)
	if rep.Messages.Count > 0 {
		rep.Messages.AvgBytes = float64(rep.Messages.Bytes) / float64(rep.Messages.Count)
		if rep.Duration > 0 {
			rep.Messages.Rate = float64(rep.Messages.Count) / rep.Duration
		}
	}

	for _, r := range rep.Results {
		if stats.TotalTime > 0 {
			r.Severity = r.Wait / stats.TotalTime
		}
	}
	return rep
}

type addFunc func(prop string, wait float64, path string, loc trace.Location)

// collKey identifies one collective instance: the operation and its match
// id.
type collKey struct {
	coll  trace.CollKind
	match uint64
}

// reduceP2P pairs message events collected during the sweep and derives
// Late Sender / Late Receiver.
func reduceP2P(tr *trace.Trace, sends, recvs map[uint64]*trace.Event, add addFunc) {
	// Iterate matches in sorted order: wait times are accumulated with
	// floating-point additions, so map-order iteration would make the
	// low bits of Result.Wait run-dependent and break the profile
	// store's content-addressed identity.
	matches := make([]uint64, 0, len(sends))
	for m := range sends {
		matches = append(matches, m)
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i] < matches[j] })
	for _, m := range matches {
		s := sends[m]
		r, ok := recvs[m]
		if !ok {
			continue // message never received (truncated trace)
		}
		// Late sender: the receiver entered its receive before the send
		// operation started.
		if wait := s.Time - r.Aux; wait > 0 {
			add(PropLateSender, wait, tr.PathString(r.Path), r.Loc)
		}
		// Late receiver: a synchronous sender blocked until the receive
		// was posted.
		if s.Flags&trace.FlagSync != 0 {
			if wait := r.Aux - s.Time; wait > 0 {
				add(PropLateReceiver, wait, tr.PathString(s.Path), s.Loc)
			}
		}
	}
}

// reduceCollectives takes the collective instances grouped during the
// sweep and derives the wait-state properties of each collective class.
func reduceCollectives(tr *trace.Trace, groups map[collKey][]*trace.Event, add addFunc) {
	// Sorted instance order for deterministic float accumulation (see
	// reduceP2P).
	keys := make([]collKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].coll != keys[j].coll {
			return keys[i].coll < keys[j].coll
		}
		return keys[i].match < keys[j].match
	})
	for _, k := range keys {
		evs := groups[k]
		switch k.coll {
		case trace.CollBarrier:
			nxnWaits(tr, evs, PropWaitAtBarrier, add)

		case trace.CollBcast, trace.CollScatter, trace.CollScatterv:
			// 1-to-N: non-roots wait for the root.
			var rootEnter float64
			found := false
			for _, ev := range evs {
				if ev.Flags&trace.FlagRoot != 0 {
					rootEnter, found = ev.Aux, true
					break
				}
			}
			if !found {
				continue
			}
			for _, ev := range evs {
				if ev.Flags&trace.FlagRoot != 0 {
					continue
				}
				if wait := rootEnter - ev.Aux; wait > 0 {
					add(PropLateBroadcast, wait, tr.PathString(ev.Path), ev.Loc)
				}
			}

		case trace.CollReduce, trace.CollGather, trace.CollGatherv:
			// N-to-1: the root waits for its last contributor.
			var root *trace.Event
			lastOther := -1.0
			for _, ev := range evs {
				if ev.Flags&trace.FlagRoot != 0 {
					root = ev
				} else if ev.Aux > lastOther {
					lastOther = ev.Aux
				}
			}
			if root == nil || lastOther < 0 {
				continue
			}
			if wait := lastOther - root.Aux; wait > 0 {
				add(PropEarlyReduce, wait, tr.PathString(root.Path), root.Loc)
			}

		case trace.CollAlltoall, trace.CollAlltoallv, trace.CollAllreduce,
			trace.CollAllgather, trace.CollAllgatherv, trace.CollReduceScatter:
			nxnWaits(tr, evs, PropWaitAtNxN, add)

		case trace.CollScan:
			// Rank i waits for the slowest of ranks 0..i.
			sort.Slice(evs, func(a, b int) bool { return evs[a].CRank < evs[b].CRank })
			prefixMax := -1.0
			for _, ev := range evs {
				if ev.Aux > prefixMax {
					prefixMax = ev.Aux
				}
				if wait := prefixMax - ev.Aux; wait > 0 {
					add(PropWaitAtNxN, wait, tr.PathString(ev.Path), ev.Loc)
				}
			}

		case trace.CollOMPBarrier:
			nxnWaits(tr, evs, PropOMPBarrier, add)
		case trace.CollOMPForEnd:
			nxnWaits(tr, evs, PropOMPLoop, add)
		case trace.CollOMPSection:
			nxnWaits(tr, evs, PropOMPSections, add)
		case trace.CollOMPJoin:
			nxnWaits(tr, evs, PropOMPRegion, add)
		case trace.CollOMPSingle:
			// Root is the executing thread; everyone else idles from
			// arrival to release.
			for _, ev := range evs {
				if int32(ev.CRank) == ev.Root {
					continue
				}
				if wait := ev.Time - ev.Aux; wait > 0 {
					add(PropOMPSingle, wait, tr.PathString(ev.Path), ev.Loc)
				}
			}
		}
	}
}

// nxnWaits attributes (maxEnter - enter) waiting to each participant of a
// fully synchronizing operation.
func nxnWaits(tr *trace.Trace, evs []*trace.Event, prop string, add addFunc) {
	maxEnter := -1.0
	for _, ev := range evs {
		if ev.Aux > maxEnter {
			maxEnter = ev.Aux
		}
	}
	for _, ev := range evs {
		if wait := maxEnter - ev.Aux; wait > 0 {
			add(prop, wait, tr.PathString(ev.Path), ev.Loc)
		}
	}
}

// detectCostMetrics derives the region-profile metrics: MPI init/finalize
// overhead (the property the paper observes dominating tiny test programs
// in Fig 3.2) and the overall MPI time fraction.
func detectCostMetrics(tr *trace.Trace, stats *trace.Stats, rep *Report) {
	initFin := stats.RegionInclusive("MPI_Init") + stats.RegionInclusive("MPI_Finalize")
	if initFin > 0 {
		r := newResult(PropInitFinalize)
		r.Wait = initFin
		r.Instances = stats.RegionCount("MPI_Init") + stats.RegionCount("MPI_Finalize")
		r.ByPath["MPI_Init+MPI_Finalize"] = initFin
		rep.Results[PropInitFinalize] = r
	}
	var mpiTime float64
	var mpiCount int
	for _, region := range stats.RegionNames() {
		if len(region) > 4 && region[:4] == "MPI_" {
			mpiTime += stats.RegionInclusive(region)
			mpiCount += stats.RegionCount(region)
		}
	}
	if mpiTime > 0 {
		r := newResult(PropMPITimeFraction)
		r.Wait = mpiTime
		r.Instances = mpiCount
		r.ByPath["all MPI regions"] = mpiTime
		rep.Results[PropMPITimeFraction] = r
	}
}
