package analyzer

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/trace"
)

// Rendering: the three EXPERT panes of paper Fig 3.5 as text — the
// property tree (left pane), the call-path breakdown of a selected
// property (middle pane), and the per-location distribution (right pane).

// treeOrder fixes the display order of the property tree.
var treeOrder = []string{
	PropTotalWaiting,
	"mpi",
	"mpi_p2p",
	PropLateSender,
	PropLateReceiver,
	"mpi_collective",
	PropLateBroadcast,
	PropEarlyReduce,
	PropWaitAtNxN,
	"mpi_synchronization",
	PropWaitAtBarrier,
	"omp",
	PropOMPRegion,
	PropOMPBarrier,
	PropOMPLoop,
	PropOMPSections,
	PropOMPSingle,
	PropOMPCritical,
}

// depth computes a node's depth in the hierarchy.
func depth(prop string) int {
	d := 0
	for prop != PropTotalWaiting {
		parent, ok := Hierarchy[prop]
		if !ok {
			return d
		}
		prop = parent
		d++
	}
	return d
}

// rollup computes aggregated waits for inner tree nodes.
func (rep *Report) rollup() map[string]float64 {
	agg := make(map[string]float64)
	for _, prop := range rep.Properties() {
		if IsInfo(prop) {
			continue
		}
		r := rep.Results[prop]
		node := prop
		agg[node] += r.Wait
		for {
			parent, ok := Hierarchy[node]
			if !ok {
				break
			}
			agg[parent] += r.Wait
			node = parent
		}
	}
	return agg
}

// RenderTree renders the property-tree pane with severities.
func (rep *Report) RenderTree() string {
	agg := rep.rollup()
	var b strings.Builder
	b.WriteString("performance properties (severity = waiting time / total resource time)\n")
	for _, prop := range treeOrder {
		w, ok := agg[prop]
		if !ok {
			continue
		}
		sev := 0.0
		if rep.TotalTime > 0 {
			sev = w / rep.TotalTime
		}
		marker := " "
		if sev >= rep.Threshold {
			marker = "*"
		}
		fmt.Fprintf(&b, "%s %s%-32s %10.6fs  %6.2f%%\n",
			marker, strings.Repeat("  ", depth(prop)), prop, w, sev*100)
	}
	if r := rep.Results[PropInitFinalize]; r != nil {
		fmt.Fprintf(&b, "  [info] %-30s %10.6fs  %6.2f%%\n",
			PropInitFinalize, r.Wait, r.Severity*100)
	}
	if r := rep.Results[PropMPITimeFraction]; r != nil {
		fmt.Fprintf(&b, "  [info] %-30s %10.6fs  %6.2f%%\n",
			PropMPITimeFraction, r.Wait, r.Severity*100)
	}
	return b.String()
}

// RenderCallPaths renders the call-path pane for one property.
func (rep *Report) RenderCallPaths(prop string) string {
	r := rep.Results[prop]
	if r == nil {
		return fmt.Sprintf("property %s: not detected\n", prop)
	}
	type row struct {
		path string
		wait float64
	}
	var rows []row
	for p, w := range r.ByPath {
		rows = append(rows, row{p, w})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].wait != rows[j].wait {
			return rows[i].wait > rows[j].wait
		}
		return rows[i].path < rows[j].path
	})
	var b strings.Builder
	fmt.Fprintf(&b, "call paths for %s:\n", prop)
	for _, rw := range rows {
		fmt.Fprintf(&b, "  %10.6fs  %s\n", rw.wait, rw.path)
	}
	return b.String()
}

// RenderLocations renders the location pane for one property as a
// per-rank/thread bar chart.
func (rep *Report) RenderLocations(prop string) string {
	r := rep.Results[prop]
	if r == nil {
		return fmt.Sprintf("property %s: not detected\n", prop)
	}
	locs := make([]trace.Location, 0, len(r.ByLocation))
	maxW := 0.0
	for l, w := range r.ByLocation {
		locs = append(locs, l)
		if w > maxW {
			maxW = w
		}
	}
	sort.Slice(locs, func(i, j int) bool {
		if locs[i].Rank != locs[j].Rank {
			return locs[i].Rank < locs[j].Rank
		}
		return locs[i].Thread < locs[j].Thread
	})
	var b strings.Builder
	fmt.Fprintf(&b, "locations for %s:\n", prop)
	for _, l := range locs {
		w := r.ByLocation[l]
		bar := 0
		if maxW > 0 {
			bar = int(w / maxW * 40)
		}
		fmt.Fprintf(&b, "  %8s %10.6fs |%s\n", l, w, strings.Repeat("#", bar))
	}
	return b.String()
}

// jsonReport is the export schema of WriteJSON.
type jsonReport struct {
	Duration  float64            `json:"duration"`
	TotalTime float64            `json:"total_time"`
	Threshold float64            `json:"threshold"`
	Messages  MessageStats       `json:"messages"`
	Findings  []jsonFinding      `json:"findings"`
	Info      map[string]float64 `json:"info_metrics"`
}

type jsonFinding struct {
	Property   string             `json:"property"`
	Wait       float64            `json:"wait_s"`
	Severity   float64            `json:"severity"`
	Instances  int                `json:"instances"`
	ByPath     map[string]float64 `json:"by_path"`
	ByLocation map[string]float64 `json:"by_location"`
}

// WriteJSON exports the report (significant findings plus info metrics)
// as a single JSON document for external tooling.
func (rep *Report) WriteJSON(w io.Writer) error {
	out := jsonReport{
		Duration:  rep.Duration,
		TotalTime: rep.TotalTime,
		Threshold: rep.Threshold,
		Messages:  rep.Messages,
		Info:      map[string]float64{},
	}
	for _, r := range rep.Significant() {
		jf := jsonFinding{
			Property:   r.Property,
			Wait:       r.Wait,
			Severity:   r.Severity,
			Instances:  r.Instances,
			ByPath:     r.ByPath,
			ByLocation: map[string]float64{},
		}
		for loc, v := range r.ByLocation {
			jf.ByLocation[loc.String()] = v
		}
		out.Findings = append(out.Findings, jf)
	}
	for _, p := range []string{PropInitFinalize, PropMPITimeFraction} {
		if r := rep.Results[p]; r != nil {
			out.Info[p] = r.Severity
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&out)
}

// Render produces the full three-pane report: the tree, then the call-path
// and location panes for every significant property in rank order.
func (rep *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== automatic analysis report ===\n")
	fmt.Fprintf(&b, "trace span %.6fs, total resource time %.6fs, threshold %.2f%%\n",
		rep.Duration, rep.TotalTime, rep.Threshold*100)
	if rep.Messages.Count > 0 {
		fmt.Fprintf(&b, "p2p traffic: %d messages, %d bytes (avg %.0f B, %.0f msg/s)\n",
			rep.Messages.Count, rep.Messages.Bytes, rep.Messages.AvgBytes, rep.Messages.Rate)
	}
	b.WriteString("\n")
	b.WriteString(rep.RenderTree())
	sig := rep.Significant()
	if len(sig) == 0 {
		b.WriteString("\nno significant performance properties found\n")
		return b.String()
	}
	for i, r := range sig {
		fmt.Fprintf(&b, "\n--- finding %d: %s (severity %.2f%%, %d instances) ---\n",
			i+1, r.Property, r.Severity*100, r.Instances)
		b.WriteString(rep.RenderCallPaths(r.Property))
		b.WriteString(rep.RenderLocations(r.Property))
	}
	return b.String()
}
