package analyzer

import (
	"sort"

	"repro/internal/trace"
)

// Streaming analysis.  StreamAnalyzer is the incremental core both entry
// points share: Analyze feeds it a materialized trace's event slab,
// AnalyzeStream feeds it a merged chunk stream.  Either way the event
// sequence, every floating-point accumulation, and every rendered path are
// identical, so the two paths produce byte-identical reports (and
// therefore identical content-addressed profile hashes).
//
// Memory is O(locations + open regions + unmatched compound state): the
// pattern matchers keep compact pending records (a PathID instead of a
// rendered string, ~40 bytes each) for sends awaiting their receive and
// collective instances awaiting their last participant, and drop them at
// Finish.  Matched state never accumulates with the event count.

// p2pEnd is the pending half of a point-to-point match: for sends the
// operation's enter time, for receives the receive's enter time (Aux).
type p2pEnd struct {
	time  float64 // Send: ev.Time
	aux   float64 // Recv: ev.Aux
	path  trace.PathID
	loc   trace.Location
	flags uint8
}

// collPart is one participant of a pending collective instance.
type collPart struct {
	time  float64 // completion
	aux   float64 // participant's enter time
	path  trace.PathID
	loc   trace.Location
	crank int32
	root  int32
	flags uint8
}

// StreamAnalyzer consumes events in merged trace order and produces the
// same Report Analyze computes.  Feed events with Add (in order), then
// call Finish exactly once.  Paths are resolved through the View only at
// Finish, when every referenced path is interned.
type StreamAnalyzer struct {
	view trace.View
	rep  *Report
	sb   *trace.StatsBuilder

	sends  map[uint64]p2pEnd
	recvs  map[uint64]p2pEnd
	groups map[collKey][]collPart

	first, last float64
	any         bool
}

// NewStreamAnalyzer returns an analyzer consuming events resolved through
// view (a *trace.Trace or *trace.Stream).  A non-positive threshold
// selects the 0.005 default.
func NewStreamAnalyzer(view trace.View, opt Options) *StreamAnalyzer {
	if opt.Threshold <= 0 {
		opt.Threshold = 0.005
	}
	return &StreamAnalyzer{
		view: view,
		rep: &Report{
			Results:   make(map[string]*Result),
			Threshold: opt.Threshold,
		},
		sb:     trace.NewStatsBuilderFor(view),
		sends:  make(map[uint64]p2pEnd),
		recvs:  make(map[uint64]p2pEnd),
		groups: make(map[collKey][]collPart),
	}
}

// add accumulates one compound-event contribution (same semantics as the
// closure in the original Analyze).
func (a *StreamAnalyzer) add(prop string, wait float64, path string, loc trace.Location) {
	if wait <= 0 {
		return
	}
	r := a.rep.Results[prop]
	if r == nil {
		r = newResult(prop)
		a.rep.Results[prop] = r
	}
	r.Wait += wait
	r.Instances++
	r.ByPath[path] += wait
	r.ByLocation[loc] += wait
}

// Add feeds one event, in merged trace order.
func (a *StreamAnalyzer) Add(ev *trace.Event) {
	if !a.any {
		a.first, a.any = ev.Time, true
	}
	a.last = ev.Time
	a.sb.Add(ev)
	switch ev.Kind {
	case trace.KindSend:
		a.sends[ev.Match] = p2pEnd{time: ev.Time, path: ev.Path, loc: ev.Loc, flags: ev.Flags}
		a.rep.Messages.Count++
		a.rep.Messages.Bytes += ev.Bytes
	case trace.KindRecv:
		a.recvs[ev.Match] = p2pEnd{aux: ev.Aux, path: ev.Path, loc: ev.Loc}
	case trace.KindColl:
		k := collKey{ev.Coll, ev.Match}
		a.groups[k] = append(a.groups[k], collPart{
			time: ev.Time, aux: ev.Aux, path: ev.Path, loc: ev.Loc,
			crank: ev.CRank, root: ev.Root, flags: ev.Flags,
		})
	case trace.KindLock:
		if ev.Aux > 0 {
			a.add(PropOMPCritical, ev.Aux, a.view.PathString(ev.Path), ev.Loc)
		}
	}
}

// Finish runs the sorted reductions over the pending compound state and
// returns the completed report.
func (a *StreamAnalyzer) Finish() *Report {
	rep := a.rep
	if a.any {
		rep.Duration = a.last - a.first
	}
	stats := a.sb.Finish()
	rep.TotalTime = stats.TotalTime
	rep.Stats = stats

	a.reduceP2P()
	a.reduceCollectives()
	detectCostMetrics(stats, rep)
	if rep.Messages.Count > 0 {
		rep.Messages.AvgBytes = float64(rep.Messages.Bytes) / float64(rep.Messages.Count)
		if rep.Duration > 0 {
			rep.Messages.Rate = float64(rep.Messages.Count) / rep.Duration
		}
	}
	for _, r := range rep.Results {
		if stats.TotalTime > 0 {
			r.Severity = r.Wait / stats.TotalTime
		}
	}
	return rep
}

// reduceP2P pairs pending message halves and derives Late Sender / Late
// Receiver.
func (a *StreamAnalyzer) reduceP2P() {
	// Iterate matches in sorted order: wait times are accumulated with
	// floating-point additions, so map-order iteration would make the
	// low bits of Result.Wait run-dependent and break the profile
	// store's content-addressed identity.
	matches := make([]uint64, 0, len(a.sends))
	for m := range a.sends {
		matches = append(matches, m)
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i] < matches[j] })
	for _, m := range matches {
		s := a.sends[m]
		r, ok := a.recvs[m]
		if !ok {
			continue // message never received (truncated trace)
		}
		// Late sender: the receiver entered its receive before the send
		// operation started.
		if wait := s.time - r.aux; wait > 0 {
			a.add(PropLateSender, wait, a.view.PathString(r.path), r.loc)
		}
		// Late receiver: a synchronous sender blocked until the receive
		// was posted.
		if s.flags&trace.FlagSync != 0 {
			if wait := r.aux - s.time; wait > 0 {
				a.add(PropLateReceiver, wait, a.view.PathString(s.path), s.loc)
			}
		}
	}
}

// reduceCollectives derives the wait-state properties of each collective
// class from the pending instance groups.
func (a *StreamAnalyzer) reduceCollectives() {
	// Sorted instance order for deterministic float accumulation (see
	// reduceP2P).
	keys := make([]collKey, 0, len(a.groups))
	for k := range a.groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].coll != keys[j].coll {
			return keys[i].coll < keys[j].coll
		}
		return keys[i].match < keys[j].match
	})
	for _, k := range keys {
		parts := a.groups[k]
		switch k.coll {
		case trace.CollBarrier:
			a.nxnWaits(parts, PropWaitAtBarrier)

		case trace.CollBcast, trace.CollScatter, trace.CollScatterv:
			// 1-to-N: non-roots wait for the root.
			var rootEnter float64
			found := false
			for i := range parts {
				if parts[i].flags&trace.FlagRoot != 0 {
					rootEnter, found = parts[i].aux, true
					break
				}
			}
			if !found {
				continue
			}
			for i := range parts {
				p := &parts[i]
				if p.flags&trace.FlagRoot != 0 {
					continue
				}
				if wait := rootEnter - p.aux; wait > 0 {
					a.add(PropLateBroadcast, wait, a.view.PathString(p.path), p.loc)
				}
			}

		case trace.CollReduce, trace.CollGather, trace.CollGatherv:
			// N-to-1: the root waits for its last contributor.
			var root *collPart
			lastOther := -1.0
			for i := range parts {
				if parts[i].flags&trace.FlagRoot != 0 {
					root = &parts[i]
				} else if parts[i].aux > lastOther {
					lastOther = parts[i].aux
				}
			}
			if root == nil || lastOther < 0 {
				continue
			}
			if wait := lastOther - root.aux; wait > 0 {
				a.add(PropEarlyReduce, wait, a.view.PathString(root.path), root.loc)
			}

		case trace.CollAlltoall, trace.CollAlltoallv, trace.CollAllreduce,
			trace.CollAllgather, trace.CollAllgatherv, trace.CollReduceScatter:
			a.nxnWaits(parts, PropWaitAtNxN)

		case trace.CollScan:
			// Rank i waits for the slowest of ranks 0..i.
			sort.Slice(parts, func(x, y int) bool { return parts[x].crank < parts[y].crank })
			prefixMax := -1.0
			for i := range parts {
				p := &parts[i]
				if p.aux > prefixMax {
					prefixMax = p.aux
				}
				if wait := prefixMax - p.aux; wait > 0 {
					a.add(PropWaitAtNxN, wait, a.view.PathString(p.path), p.loc)
				}
			}

		case trace.CollOMPBarrier:
			a.nxnWaits(parts, PropOMPBarrier)
		case trace.CollOMPForEnd:
			a.nxnWaits(parts, PropOMPLoop)
		case trace.CollOMPSection:
			a.nxnWaits(parts, PropOMPSections)
		case trace.CollOMPJoin:
			a.nxnWaits(parts, PropOMPRegion)
		case trace.CollOMPSingle:
			// Root is the executing thread; everyone else idles from
			// arrival to release.
			for i := range parts {
				p := &parts[i]
				if p.crank == p.root {
					continue
				}
				if wait := p.time - p.aux; wait > 0 {
					a.add(PropOMPSingle, wait, a.view.PathString(p.path), p.loc)
				}
			}
		}
	}
}

// nxnWaits attributes (maxEnter - enter) waiting to each participant of a
// fully synchronizing operation.
func (a *StreamAnalyzer) nxnWaits(parts []collPart, prop string) {
	maxEnter := -1.0
	for i := range parts {
		if parts[i].aux > maxEnter {
			maxEnter = parts[i].aux
		}
	}
	for i := range parts {
		p := &parts[i]
		if wait := maxEnter - p.aux; wait > 0 {
			a.add(prop, wait, a.view.PathString(p.path), p.loc)
		}
	}
}

// AnalyzeStream drains a merged chunk stream through a StreamAnalyzer.
// The report is byte-identical to Analyze on the materialized trace of the
// same run; peak memory is O(locations + open regions + pending compound
// state) instead of O(events).
func AnalyzeStream(src *trace.Stream, opt Options) (*Report, error) {
	a := NewStreamAnalyzer(src, opt)
	for {
		ev, err := src.Next()
		if err != nil {
			return nil, err
		}
		if ev == nil {
			break
		}
		a.Add(ev)
	}
	return a.Finish(), nil
}
