package analyzer

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/trace"
)

func loc(r, th int32) trace.Location { return trace.Location{Rank: r, Thread: th} }

// buildP2PTrace constructs a minimal two-rank trace with one message whose
// send entered at sendT and whose receive entered at recvT (completing at
// recvDone), optionally synchronous.
func buildP2PTrace(sendT, recvT, recvDone float64, sync bool) *trace.Trace {
	var flags uint8
	if sync {
		flags = trace.FlagSync
	}
	b0 := trace.NewBuffer(loc(0, 0))
	b0.Enter("app", 0)
	b0.Enter("MPI_Send", sendT)
	b0.Record(trace.Event{Time: sendT, Kind: trace.KindSend, Peer: 1, CRank: 0,
		Tag: 1, Bytes: 8, Match: 1, Flags: flags})
	b0.Exit(sendT + 0.001)
	b0.Exit(recvDone + 0.01)

	b1 := trace.NewBuffer(loc(1, 0))
	b1.Enter("app", 0)
	b1.Enter("MPI_Recv", recvT)
	b1.Record(trace.Event{Time: recvDone, Aux: recvT, Kind: trace.KindRecv,
		Peer: 0, CRank: 1, Tag: 1, Bytes: 8, Match: 1, Flags: flags})
	b1.Exit(recvDone)
	b1.Exit(recvDone + 0.01)
	return trace.Merge(b0, b1)
}

func TestLateSenderDetection(t *testing.T) {
	// Receiver enters at 0.1, sender at 0.4: wait = 0.3.
	tr := buildP2PTrace(0.4, 0.1, 0.41, false)
	rep := Analyze(tr, Options{})
	got := rep.Wait(PropLateSender)
	if math.Abs(got-0.3) > 1e-9 {
		t.Errorf("late sender wait = %v, want 0.3", got)
	}
	r := rep.Get(PropLateSender)
	if r.Instances != 1 {
		t.Errorf("instances = %d", r.Instances)
	}
	// Attributed to the receiver's location and its MPI_Recv path.
	if w := r.ByLocation[loc(1, 0)]; math.Abs(w-0.3) > 1e-9 {
		t.Errorf("wait at receiver = %v", w)
	}
	if p := r.TopPath(); !strings.Contains(p, "MPI_Recv") {
		t.Errorf("top path = %q", p)
	}
	// No late receiver for an eager message.
	if rep.Wait(PropLateReceiver) != 0 {
		t.Error("spurious late receiver")
	}
}

func TestLateReceiverDetection(t *testing.T) {
	// Sync message: sender enters at 0.1, receiver at 0.5: sender waited 0.4.
	tr := buildP2PTrace(0.1, 0.5, 0.51, true)
	rep := Analyze(tr, Options{})
	got := rep.Wait(PropLateReceiver)
	if math.Abs(got-0.4) > 1e-9 {
		t.Errorf("late receiver wait = %v, want 0.4", got)
	}
	r := rep.Get(PropLateReceiver)
	if w := r.ByLocation[loc(0, 0)]; math.Abs(w-0.4) > 1e-9 {
		t.Errorf("wait at sender = %v", w)
	}
	if rep.Wait(PropLateSender) != 0 {
		t.Error("spurious late sender")
	}
}

func TestNonSyncLateReceiverIgnored(t *testing.T) {
	// Eager message with late receiver: no sender wait state exists.
	tr := buildP2PTrace(0.1, 0.5, 0.51, false)
	rep := Analyze(tr, Options{})
	if rep.Wait(PropLateReceiver) != 0 {
		t.Error("eager message produced late-receiver wait")
	}
}

func TestUnmatchedSendTolerated(t *testing.T) {
	b := trace.NewBuffer(loc(0, 0))
	b.Enter("app", 0)
	b.Record(trace.Event{Time: 0.1, Kind: trace.KindSend, Match: 7})
	b.Exit(1)
	rep := Analyze(trace.Merge(b), Options{})
	if rep.Wait(PropLateSender) != 0 || rep.Wait(PropLateReceiver) != 0 {
		t.Error("unmatched send produced findings")
	}
}

// buildCollTrace constructs a P-rank trace of one collective with given
// enter times; root < 0 means unrooted.  All exit at maxEnter+0.01.
func buildCollTrace(kind trace.CollKind, enters []float64, root int) *trace.Trace {
	maxE := 0.0
	for _, e := range enters {
		if e > maxE {
			maxE = e
		}
	}
	exit := maxE + 0.01
	var bufs []*trace.Buffer
	for i, e := range enters {
		b := trace.NewBuffer(loc(int32(i), 0))
		b.Enter("app", 0)
		b.Enter(kind.String(), e)
		var flags uint8
		if i == root {
			flags = trace.FlagRoot
		}
		b.Record(trace.Event{Time: exit, Aux: e, Kind: trace.KindColl,
			Coll: kind, Root: int32(root), CRank: int32(i), Match: 5, Flags: flags})
		b.Exit(exit)
		b.Exit(exit + 0.001)
		bufs = append(bufs, b)
	}
	return trace.Merge(bufs...)
}

func TestWaitAtBarrierDetection(t *testing.T) {
	tr := buildCollTrace(trace.CollBarrier, []float64{0.1, 0.3, 0.2, 0.3}, -1)
	rep := Analyze(tr, Options{})
	// Waits: 0.2 + 0 + 0.1 + 0 = 0.3.
	if got := rep.Wait(PropWaitAtBarrier); math.Abs(got-0.3) > 1e-9 {
		t.Errorf("barrier wait = %v, want 0.3", got)
	}
	r := rep.Get(PropWaitAtBarrier)
	if w := r.ByLocation[loc(0, 0)]; math.Abs(w-0.2) > 1e-9 {
		t.Errorf("rank 0 wait = %v, want 0.2", w)
	}
}

func TestLateBroadcastDetection(t *testing.T) {
	// Root (rank 2) enters at 0.5; others at 0.1, 0.2, 0.3.
	tr := buildCollTrace(trace.CollBcast, []float64{0.1, 0.2, 0.5, 0.3}, 2)
	rep := Analyze(tr, Options{})
	// Waits: 0.4 + 0.3 + 0.2 = 0.9.
	if got := rep.Wait(PropLateBroadcast); math.Abs(got-0.9) > 1e-9 {
		t.Errorf("late broadcast wait = %v, want 0.9", got)
	}
	r := rep.Get(PropLateBroadcast)
	if _, hasRoot := r.ByLocation[loc(2, 0)]; hasRoot {
		t.Error("root charged with broadcast waiting")
	}
}

func TestLateBroadcastNoRootTolerated(t *testing.T) {
	tr := buildCollTrace(trace.CollBcast, []float64{0.1, 0.2}, -1)
	rep := Analyze(tr, Options{})
	if rep.Wait(PropLateBroadcast) != 0 {
		t.Error("rootless bcast group produced waits")
	}
}

func TestEarlyReduceDetection(t *testing.T) {
	// Root (rank 0) enters at 0.1; last contributor at 0.6: root waits 0.5.
	tr := buildCollTrace(trace.CollReduce, []float64{0.1, 0.4, 0.6, 0.2}, 0)
	rep := Analyze(tr, Options{})
	if got := rep.Wait(PropEarlyReduce); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("early reduce wait = %v, want 0.5", got)
	}
	r := rep.Get(PropEarlyReduce)
	if w := r.ByLocation[loc(0, 0)]; math.Abs(w-0.5) > 1e-9 {
		t.Errorf("root wait = %v", w)
	}
	if len(r.ByLocation) != 1 {
		t.Errorf("non-roots charged: %v", r.ByLocation)
	}
}

func TestEarlyReduceLateRootNoWait(t *testing.T) {
	// Root arrives last: no early-reduce wait.
	tr := buildCollTrace(trace.CollReduce, []float64{0.9, 0.4, 0.6, 0.2}, 0)
	rep := Analyze(tr, Options{})
	if rep.Wait(PropEarlyReduce) != 0 {
		t.Error("late root charged with early-reduce wait")
	}
}

func TestWaitAtNxNDetection(t *testing.T) {
	tr := buildCollTrace(trace.CollAlltoall, []float64{0.0, 0.4}, -1)
	rep := Analyze(tr, Options{})
	if got := rep.Wait(PropWaitAtNxN); math.Abs(got-0.4) > 1e-9 {
		t.Errorf("NxN wait = %v, want 0.4", got)
	}
}

func TestScanPrefixWaits(t *testing.T) {
	// Enter times 0.4, 0.1, 0.2: rank1 waits for rank0 (0.3), rank2
	// waits for max(0.4,0.1)-0.2 = 0.2; rank0 waits 0.
	tr := buildCollTrace(trace.CollScan, []float64{0.4, 0.1, 0.2}, -1)
	rep := Analyze(tr, Options{})
	if got := rep.Wait(PropWaitAtNxN); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("scan waits = %v, want 0.5", got)
	}
}

func TestOMPCollDetection(t *testing.T) {
	cases := []struct {
		kind trace.CollKind
		prop string
	}{
		{trace.CollOMPBarrier, PropOMPBarrier},
		{trace.CollOMPForEnd, PropOMPLoop},
		{trace.CollOMPSection, PropOMPSections},
		{trace.CollOMPJoin, PropOMPRegion},
	}
	for _, tc := range cases {
		tr := buildCollTrace(tc.kind, []float64{0.1, 0.5}, -1)
		rep := Analyze(tr, Options{})
		if got := rep.Wait(tc.prop); math.Abs(got-0.4) > 1e-9 {
			t.Errorf("%v: wait = %v, want 0.4", tc.kind, got)
		}
	}
}

func TestOMPSingleDetection(t *testing.T) {
	// Thread 1 executes (root); thread 0 idles from 0.1 to exit 0.51.
	tr := buildCollTrace(trace.CollOMPSingle, []float64{0.1, 0.5}, 1)
	rep := Analyze(tr, Options{})
	// Exit is maxEnter+0.01 = 0.51; thread 0 waits 0.41.
	if got := rep.Wait(PropOMPSingle); math.Abs(got-0.41) > 1e-9 {
		t.Errorf("single wait = %v, want 0.41", got)
	}
}

func TestLockDetection(t *testing.T) {
	b := trace.NewBuffer(loc(0, 1))
	b.Enter("app", 0)
	b.Record(trace.Event{Time: 0.5, Aux: 0.2, Kind: trace.KindLock, CRank: 1})
	b.Exit(1)
	rep := Analyze(trace.Merge(b), Options{})
	if got := rep.Wait(PropOMPCritical); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("lock wait = %v, want 0.2", got)
	}
}

func TestInitFinalizeMetric(t *testing.T) {
	b := trace.NewBuffer(loc(0, 0))
	b.Enter("MPI_Init", 0)
	b.Exit(0.4)
	b.Enter("compute", 0.4)
	b.Exit(0.5)
	b.Enter("MPI_Finalize", 0.5)
	b.Exit(0.6)
	rep := Analyze(trace.Merge(b), Options{})
	r := rep.Get(PropInitFinalize)
	if r == nil {
		t.Fatal("init/finalize metric missing")
	}
	if math.Abs(r.Wait-0.5) > 1e-9 {
		t.Errorf("init+finalize = %v, want 0.5", r.Wait)
	}
	// Severity relative to the 0.6s span.
	if math.Abs(r.Severity-0.5/0.6) > 1e-9 {
		t.Errorf("severity = %v", r.Severity)
	}
	// Info metrics never appear in Significant().
	for _, s := range rep.Significant() {
		if s.Property == PropInitFinalize || s.Property == PropMPITimeFraction {
			t.Errorf("info metric %s ranked as finding", s.Property)
		}
	}
}

func TestThresholdFiltering(t *testing.T) {
	// 0.3 wait over 100s total: severity 0.3%.
	b0 := trace.NewBuffer(loc(0, 0))
	b0.Enter("app", 0)
	b0.Record(trace.Event{Time: 0.4, Kind: trace.KindSend, Match: 1, CRank: 0, Peer: 1})
	b0.Exit(100)
	b1 := trace.NewBuffer(loc(1, 0))
	b1.Enter("app", 0)
	b1.Record(trace.Event{Time: 0.45, Aux: 0.1, Kind: trace.KindRecv, Match: 1, CRank: 1, Peer: 0})
	b1.Exit(100)
	tr := trace.Merge(b0, b1)

	strict := Analyze(tr, Options{Threshold: 0.01})
	if strict.Top() != nil {
		t.Errorf("0.15%% severity survived a 1%% threshold")
	}
	loose := Analyze(tr, Options{Threshold: 0.0001})
	if loose.Top() == nil || loose.Top().Property != PropLateSender {
		t.Errorf("finding missing at 0.01%% threshold")
	}
}

func TestRanking(t *testing.T) {
	// Two barrier groups and one bigger bcast wait: ranking must order by
	// severity.
	b := func(kind trace.CollKind, match uint64, enters []float64, root int) []*trace.Buffer {
		var bufs []*trace.Buffer
		maxE := 0.0
		for _, e := range enters {
			if e > maxE {
				maxE = e
			}
		}
		for i, e := range enters {
			bb := trace.NewBuffer(loc(int32(i), int32(match)))
			bb.Enter("app", 0)
			var flags uint8
			if i == root {
				flags = trace.FlagRoot
			}
			bb.Record(trace.Event{Time: maxE, Aux: e, Kind: trace.KindColl,
				Coll: kind, Root: int32(root), CRank: int32(i), Match: match, Flags: flags})
			bb.Exit(maxE + 0.1)
			bufs = append(bufs, bb)
		}
		return bufs
	}
	var all []*trace.Buffer
	all = append(all, b(trace.CollBarrier, 1, []float64{0, 0.1}, -1)...)
	all = append(all, b(trace.CollBcast, 2, []float64{0, 0.9}, 1)...)
	rep := Analyze(trace.Merge(all...), Options{Threshold: 0.001})
	sig := rep.Significant()
	if len(sig) < 2 {
		t.Fatalf("got %d findings", len(sig))
	}
	if sig[0].Property != PropLateBroadcast {
		t.Errorf("top finding = %s, want late_broadcast", sig[0].Property)
	}
}

func TestRenderPanes(t *testing.T) {
	tr := buildCollTrace(trace.CollBcast, []float64{0.0, 0.0, 0.5}, 2)
	rep := Analyze(tr, Options{})
	out := rep.Render()
	for _, want := range []string{
		"late_broadcast", "mpi_collective", "total_waiting",
		"call paths", "locations",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if s := rep.RenderCallPaths("no_such_prop"); !strings.Contains(s, "not detected") {
		t.Errorf("missing-property pane = %q", s)
	}
	if s := rep.RenderLocations("no_such_prop"); !strings.Contains(s, "not detected") {
		t.Errorf("missing-property pane = %q", s)
	}
}

func TestRenderNegative(t *testing.T) {
	b := trace.NewBuffer(loc(0, 0))
	b.Enter("app", 0)
	b.Exit(1)
	rep := Analyze(trace.Merge(b), Options{})
	if !strings.Contains(rep.Render(), "no significant performance properties") {
		t.Error("clean trace did not render as clean")
	}
}

func TestAnalyzeSerializedTraceIdentical(t *testing.T) {
	tr := buildCollTrace(trace.CollBcast, []float64{0.1, 0.2, 0.6}, 2)
	var buf bytes.Buffer
	if _, err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	tr2, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r1 := Analyze(tr, Options{})
	r2 := Analyze(tr2, Options{})
	if r1.Wait(PropLateBroadcast) != r2.Wait(PropLateBroadcast) {
		t.Error("analysis differs after serialization round trip")
	}
}

func TestHierarchyWellFormed(t *testing.T) {
	for prop, parent := range Hierarchy {
		if prop == PropTotalWaiting {
			t.Errorf("root has a parent entry")
		}
		// Walk to the root without cycles.
		seen := map[string]bool{prop: true}
		node := parent
		for node != PropTotalWaiting {
			if seen[node] {
				t.Fatalf("cycle at %s", node)
			}
			seen[node] = true
			next, ok := Hierarchy[node]
			if !ok {
				t.Fatalf("node %s (parent of %s) lacks a parent path to root", node, prop)
			}
			node = next
		}
	}
	// Every detectable leaf property must be in the hierarchy.
	for _, p := range []string{
		PropLateSender, PropLateReceiver, PropWaitAtBarrier,
		PropLateBroadcast, PropEarlyReduce, PropWaitAtNxN,
		PropOMPRegion, PropOMPBarrier, PropOMPLoop, PropOMPSections,
		PropOMPSingle, PropOMPCritical,
	} {
		if _, ok := Hierarchy[p]; !ok {
			t.Errorf("property %s missing from hierarchy", p)
		}
	}
}

func TestExpectedDetectionTargetsExist(t *testing.T) {
	valid := map[string]bool{
		PropLateSender: true, PropLateReceiver: true, PropWaitAtBarrier: true,
		PropLateBroadcast: true, PropEarlyReduce: true, PropWaitAtNxN: true,
		PropOMPRegion: true, PropOMPBarrier: true, PropOMPLoop: true,
		PropOMPSections: true, PropOMPSingle: true, PropOMPCritical: true,
		PropMPITimeFraction: true,
	}
	for fn, prop := range ExpectedDetection {
		if !valid[prop] {
			t.Errorf("%s maps to unknown property %s", fn, prop)
		}
	}
}

func TestWriteJSONReport(t *testing.T) {
	tr := buildCollTrace(trace.CollBcast, []float64{0.0, 0.0, 0.5}, 2)
	rep := Analyze(tr, Options{})
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("not JSON: %v", err)
	}
	findings := m["findings"].([]any)
	if len(findings) == 0 {
		t.Fatal("no findings exported")
	}
	f := findings[0].(map[string]any)
	if f["property"] != PropLateBroadcast {
		t.Errorf("property = %v", f["property"])
	}
	if f["wait_s"].(float64) != 1.0 {
		t.Errorf("wait = %v", f["wait_s"])
	}
	locs := f["by_location"].(map[string]any)
	if _, ok := locs["0.0"]; !ok {
		t.Errorf("locations = %v", locs)
	}
}

func TestMessageStatsComputed(t *testing.T) {
	b0 := trace.NewBuffer(loc(0, 0))
	b0.Enter("app", 0)
	b0.Record(trace.Event{Time: 0.1, Kind: trace.KindSend, Bytes: 100, Match: 1})
	b0.Record(trace.Event{Time: 0.2, Kind: trace.KindSend, Bytes: 300, Match: 2})
	b0.Exit(1)
	rep := Analyze(trace.Merge(b0), Options{})
	if rep.Messages.Count != 2 || rep.Messages.Bytes != 400 {
		t.Errorf("stats = %+v", rep.Messages)
	}
	if rep.Messages.AvgBytes != 200 {
		t.Errorf("avg = %v", rep.Messages.AvgBytes)
	}
	if rep.Messages.Rate != 2 {
		t.Errorf("rate = %v", rep.Messages.Rate)
	}
}
