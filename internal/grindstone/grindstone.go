// Package grindstone provides a Grindstone-style suite of small
// diagnostic programs.  The paper's Chapter 2 collects existing suites a
// performance-tool test effort should cover, among them "Grindstone: A
// Test Suite for Parallel Performance Tools" (Hollingsworth et al., 9 PVM
// programs).  Grindstone's programs differ from the ATS property
// functions: each is a tiny but complete *program* with one well-known
// performance bug class (a hot procedure, a message flood, a passive
// server, …) rather than a parameterized compound-event generator.
//
// This package reimplements the Grindstone idea on the ATS substrate: six
// programs, each documenting the diagnosis a correct tool must produce.
// The tests in this package run each program through the analyzer and
// check that diagnosis, making the suite a second, independent
// positive-correctness corpus beside the ATS property functions.
package grindstone

import (
	"fmt"

	"repro/internal/distr"
	"repro/internal/mpi"
	"repro/internal/work"
)

// Config scales the suite's programs.
type Config struct {
	// Work is the base unit of computation in seconds (default 5 ms).
	Work float64
	// Reps is the iteration count (default 10).
	Reps int
}

func (c Config) withDefaults() Config {
	if c.Work <= 0 {
		c.Work = 5e-3
	}
	if c.Reps <= 0 {
		c.Reps = 10
	}
	return c
}

// Program is one diagnostic program of the suite.
type Program struct {
	Name string
	// Diagnosis documents what a correct tool reports.
	Diagnosis string
	// Run executes the program on the communicator.
	Run func(c *mpi.Comm, cfg Config)
}

// Programs returns the suite.
func Programs() []Program {
	return []Program{
		{
			Name: "hot_procedure",
			Diagnosis: "one procedure (hot_spot) consumes the dominant share " +
				"of execution time on every rank",
			Run: hotProcedure,
		},
		{
			Name: "diffuse_procedure",
			Diagnosis: "the same total time is burned, but scattered over many " +
				"small procedures — no single hot spot",
			Run: diffuseProcedure,
		},
		{
			Name: "small_messages",
			Diagnosis: "communication time dominated by per-message latency: a " +
				"flood of tiny messages (high count, low volume)",
			Run: smallMessages,
		},
		{
			Name: "big_messages",
			Diagnosis: "communication time dominated by bandwidth: few, very " +
				"large messages",
			Run: bigMessages,
		},
		{
			Name: "passive_server",
			Diagnosis: "rank 0 is a passive server: it idles in MPI_Recv " +
				"between requests while clients compute (late_sender on the server)",
			Run: passiveServer,
		},
		{
			Name: "random_barrier",
			Diagnosis: "barrier waits spread over all ranks: a different rank " +
				"is slow in every iteration (no single culprit)",
			Run: randomBarrier,
		},
	}
}

// Lookup returns a program by name.
func Lookup(name string) (Program, bool) {
	for _, p := range Programs() {
		if p.Name == name {
			return p, true
		}
	}
	return Program{}, false
}

// hotProcedure burns most of the time in one traced procedure.
func hotProcedure(c *mpi.Comm, cfg Config) {
	cfg = cfg.withDefaults()
	c.Begin("grindstone_hot_procedure")
	defer c.End()
	for i := 0; i < cfg.Reps; i++ {
		c.Begin("hot_spot")
		c.Work(cfg.Work * 4)
		c.End()
		c.Begin("cold_work")
		c.Work(cfg.Work / 4)
		c.End()
		c.Barrier()
	}
}

// diffuseProcedure burns the same total time across many small regions.
func diffuseProcedure(c *mpi.Comm, cfg Config) {
	cfg = cfg.withDefaults()
	c.Begin("grindstone_diffuse_procedure")
	defer c.End()
	const parts = 8
	for i := 0; i < cfg.Reps; i++ {
		for j := 0; j < parts; j++ {
			c.Begin(fmt.Sprintf("diffuse_part_%d", j))
			c.Work(cfg.Work * 4.25 / parts)
			c.End()
		}
		c.Barrier()
	}
}

// smallMessages floods rank 0 with tiny messages.
func smallMessages(c *mpi.Comm, cfg Config) {
	cfg = cfg.withDefaults()
	c.Begin("grindstone_small_messages")
	defer c.End()
	const perRep = 20
	buf := mpi.AllocBuf(mpi.TypeInt, 1) // 8 bytes
	if c.Rank() == 0 {
		for i := 0; i < cfg.Reps*perRep*(c.Size()-1); i++ {
			c.Recv(buf, mpi.AnySource, 1)
		}
	} else {
		for i := 0; i < cfg.Reps*perRep; i++ {
			c.Send(buf, 0, 1)
		}
	}
	c.Barrier()
}

// bigMessages ships few huge messages instead.
func bigMessages(c *mpi.Comm, cfg Config) {
	cfg = cfg.withDefaults()
	c.Begin("grindstone_big_messages")
	defer c.End()
	buf := mpi.AllocBuf(mpi.TypeByte, 1<<20) // 1 MiB
	if c.Rank() == 0 {
		for i := 0; i < cfg.Reps*(c.Size()-1); i++ {
			c.Recv(buf, mpi.AnySource, 2)
		}
	} else {
		for i := 0; i < cfg.Reps; i++ {
			c.Send(buf, 0, 2)
		}
	}
	c.Barrier()
}

// passiveServer makes rank 0 serve requests it mostly waits for.
func passiveServer(c *mpi.Comm, cfg Config) {
	cfg = cfg.withDefaults()
	c.Begin("grindstone_passive_server")
	defer c.End()
	req := mpi.AllocBuf(mpi.TypeInt, 1)
	if c.Rank() == 0 {
		clients := c.Size() - 1
		for i := 0; i < cfg.Reps*clients; i++ {
			st := c.Recv(req, mpi.AnySource, 3)
			req.SetInt64(0, req.Int64(0)*2)
			c.Send(req, st.Source, 4)
		}
	} else {
		for i := 0; i < cfg.Reps; i++ {
			c.Work(cfg.Work) // clients compute between requests
			req.SetInt64(0, int64(i))
			c.Send(req, 0, 3)
			c.Recv(req, 0, 4)
			if req.Int64(0) != int64(2*i) {
				panic("server returned wrong answer")
			}
		}
	}
	c.Barrier()
}

// randomBarrier makes a pseudo-randomly chosen rank slow each iteration.
func randomBarrier(c *mpi.Comm, cfg Config) {
	cfg = cfg.withDefaults()
	c.Begin("grindstone_random_barrier")
	defer c.End()
	// All ranks derive the same slow-rank sequence from a shared seed.
	rng := work.NewRNG(987)
	for i := 0; i < cfg.Reps; i++ {
		slow := rng.Intn(c.Size())
		dd := distr.Val2N{Low: cfg.Work / 4, High: cfg.Work * 3, N: slow}
		c.DoWork(distr.Peak, dd, 1.0)
		c.Barrier()
	}
}
