package grindstone

import (
	"testing"
	"time"

	"repro/internal/analyzer"
	"repro/internal/mpi"
	"repro/internal/trace"
)

func runProgram(t *testing.T, name string, procs int) (*trace.Trace, *analyzer.Report) {
	t.Helper()
	p, ok := Lookup(name)
	if !ok {
		t.Fatalf("unknown program %q", name)
	}
	tr, err := mpi.Run(mpi.Options{Procs: procs, Timeout: 60 * time.Second},
		func(c *mpi.Comm) {
			p.Run(c, Config{})
		})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return tr, analyzer.Analyze(tr, analyzer.Options{})
}

func TestSuiteComplete(t *testing.T) {
	ps := Programs()
	if len(ps) != 6 {
		t.Fatalf("suite has %d programs", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if p.Name == "" || p.Diagnosis == "" || p.Run == nil {
			t.Errorf("incomplete program %+v", p)
		}
		if seen[p.Name] {
			t.Errorf("duplicate program %q", p.Name)
		}
		seen[p.Name] = true
	}
	if _, ok := Lookup("no_such"); ok {
		t.Error("lookup of unknown program succeeded")
	}
}

// TestHotProcedure: the hot_spot region must dominate the profile.
func TestHotProcedure(t *testing.T) {
	_, rep := runProgram(t, "hot_procedure", 4)
	hot := rep.Stats.RegionInclusive("hot_spot")
	cold := rep.Stats.RegionInclusive("cold_work")
	if hot < 10*cold {
		t.Errorf("hot %v not dominating cold %v", hot, cold)
	}
	if frac := hot / rep.TotalTime; frac < 0.6 {
		t.Errorf("hot spot fraction %v, want > 0.6", frac)
	}
}

// TestDiffuseProcedure: same total burn, but no single region dominates.
func TestDiffuseProcedure(t *testing.T) {
	_, rep := runProgram(t, "diffuse_procedure", 4)
	maxFrac := 0.0
	total := 0.0
	for region := range rep.Stats.Regions {
		if len(region) > 7 && region[:7] == "diffuse" {
			f := rep.Stats.RegionInclusive(region) / rep.TotalTime
			total += f
			if f > maxFrac {
				maxFrac = f
			}
		}
	}
	if maxFrac > 0.2 {
		t.Errorf("a diffuse part takes %v of the time — not diffuse", maxFrac)
	}
	if total < 0.6 {
		t.Errorf("diffuse parts cover only %v of the time", total)
	}
}

// TestSmallVsBigMessages: the message statistics must separate the
// latency-bound flood from the bandwidth-bound transfer.
func TestSmallVsBigMessages(t *testing.T) {
	_, small := runProgram(t, "small_messages", 4)
	_, big := runProgram(t, "big_messages", 4)

	if small.Messages.AvgBytes > 64 {
		t.Errorf("small-message program avg size %v", small.Messages.AvgBytes)
	}
	if big.Messages.AvgBytes < 1<<19 {
		t.Errorf("big-message program avg size %v", big.Messages.AvgBytes)
	}
	if small.Messages.Count < 10*big.Messages.Count {
		t.Errorf("counts do not separate: %d vs %d", small.Messages.Count, big.Messages.Count)
	}
	if big.Messages.Bytes < 100*small.Messages.Bytes {
		t.Errorf("volumes do not separate: %d vs %d", big.Messages.Bytes, small.Messages.Bytes)
	}
	// Both are communication-dominated.
	for name, rep := range map[string]*analyzer.Report{"small": small, "big": big} {
		r := rep.Get(analyzer.PropMPITimeFraction)
		if r == nil || r.Severity < 0.5 {
			t.Errorf("%s: MPI time not dominant", name)
		}
	}
	// Effective bandwidth of the big program approaches the model's
	// 1 GB/s; the small program is latency-bound far below it.
	smallBW := float64(small.Messages.Bytes) / small.Duration
	bigBW := float64(big.Messages.Bytes) / big.Duration
	if bigBW < 100*smallBW {
		t.Errorf("bandwidth separation weak: big %v vs small %v B/s", bigBW, smallBW)
	}
}

// TestPassiveServer: the server (rank 0) idles in MPI_Recv; the waiting
// must sit on rank 0, not on the clients.
func TestPassiveServer(t *testing.T) {
	_, rep := runProgram(t, "passive_server", 4)
	r := rep.Get(analyzer.PropLateSender)
	if r == nil || r.Severity < rep.Threshold {
		t.Fatalf("server idling not detected:\n%s", rep.Render())
	}
	server := r.ByLocation[trace.Location{Rank: 0}]
	var clients float64
	for loc, w := range r.ByLocation {
		if loc.Rank != 0 {
			clients += w
		}
	}
	if server < 3*clients {
		t.Errorf("server wait %v vs client waits %v — not a passive server", server, clients)
	}
}

// TestRandomBarrier: barrier waits significant but spread — no location
// holds a majority.
func TestRandomBarrier(t *testing.T) {
	const P = 4
	_, rep := runProgram(t, "random_barrier", P)
	r := rep.Get(analyzer.PropWaitAtBarrier)
	if r == nil || r.Severity < rep.Threshold {
		t.Fatalf("barrier waits not detected:\n%s", rep.Render())
	}
	var total, maxLoc float64
	for _, w := range r.ByLocation {
		total += w
		if w > maxLoc {
			maxLoc = w
		}
	}
	if maxLoc/total > 0.6 {
		t.Errorf("one rank holds %v of the barrier waits — should be spread", maxLoc/total)
	}
	if len(r.ByLocation) < P {
		t.Errorf("waits on only %d of %d ranks", len(r.ByLocation), P)
	}
}

// TestDeterministicDiagnoses: the whole suite is deterministic in virtual
// time, including the wildcard-receiving server programs.
func TestDeterministicDiagnoses(t *testing.T) {
	for _, p := range Programs() {
		run := func() float64 {
			tr, err := mpi.Run(mpi.Options{Procs: 4, Timeout: 60 * time.Second},
				func(c *mpi.Comm) { p.Run(c, Config{Reps: 3}) })
			if err != nil {
				t.Fatalf("%s: %v", p.Name, err)
			}
			return tr.End()
		}
		if a, b := run(), run(); a != b {
			t.Errorf("%s: end times differ: %v vs %v", p.Name, a, b)
		}
	}
}
