package perturb

import (
	"testing"
	"time"

	"repro/internal/vtime"
)

// timeZero is the shared epoch of the virtual-clock tests (unused by
// Virtual mode, but NewClock wants one).
var timeZero = time.Time{}

func TestLevelZeroIsZero(t *testing.T) {
	p := Level(12345, 0)
	if !p.Zero() {
		t.Fatalf("Level(_, 0) = %+v, want zero profile", p)
	}
	if NewModel(p) != nil {
		t.Fatalf("NewModel(zero profile) != nil")
	}
	if p.WaitBudget(10, 1000) != 0 {
		t.Fatalf("zero profile has nonzero wait budget")
	}
}

func TestLevelLadderMonotone(t *testing.T) {
	prev := Level(1, 0)
	for lvl := 1; lvl <= MaxLevel; lvl++ {
		p := Level(1, lvl)
		if p.Zero() {
			t.Fatalf("Level(_, %d) is zero", lvl)
		}
		if p.SkewMax < prev.SkewMax || p.MsgJitter < prev.MsgJitter ||
			p.NoiseRate < prev.NoiseRate || p.NoiseBurst < prev.NoiseBurst {
			t.Fatalf("ladder not monotone at level %d: %+v after %+v", lvl, p, prev)
		}
		prev = p
	}
	if got := Level(1, MaxLevel+5); got != Level(1, MaxLevel) {
		t.Fatalf("levels above MaxLevel should saturate: %+v != %+v", got, Level(1, MaxLevel))
	}
}

// Two executors built from the same (seed, rank) must replay identically.
func TestExecutorDeterminism(t *testing.T) {
	m := NewModel(Level(7, 3))
	a := m.Executor(2, 8)
	b := m.Executor(2, 8)
	now := 0.0
	for i := 0; i < 1000; i++ {
		d := 0.001 * float64(i%7+1)
		da := a.PerturbAdvance(now, d)
		db := b.PerturbAdvance(now, d)
		if da != db {
			t.Fatalf("step %d: %v != %v", i, da, db)
		}
		if da < d*0.9 {
			t.Fatalf("step %d: perturbed duration %v shrank far below %v", i, da, d)
		}
		now += da
	}
}

// Forked children replay identically too, and differ from their parent.
func TestForkDeterminism(t *testing.T) {
	m := NewModel(Level(7, 3))
	mk := func() vtime.Perturber { return m.Executor(0, 4).Fork() }
	a, b := mk(), mk()
	var sumA, sumB float64
	now := 0.0
	for i := 0; i < 200; i++ {
		da := a.PerturbAdvance(now, 0.002)
		db := b.PerturbAdvance(now, 0.002)
		if da != db {
			t.Fatalf("fork replay diverged at step %d: %v != %v", i, da, db)
		}
		sumA += da
		sumB += db
		now += da
	}
	// Sibling forks get distinct noise streams.
	parent := m.Executor(0, 4)
	c1, c2 := parent.Fork(), parent.Fork()
	diff := false
	now = 0
	for i := 0; i < 500; i++ {
		d1 := c1.PerturbAdvance(now, 0.002)
		d2 := c2.PerturbAdvance(now, 0.002)
		if d1 != d2 {
			diff = true
			break
		}
		now += d1
	}
	if !diff {
		t.Fatalf("sibling forks produced identical noise streams")
	}
	_ = sumA
	_ = sumB
}

func TestStragglerSelection(t *testing.T) {
	m := NewModel(Level(42, 3)) // Stragglers: 1
	const procs = 8
	count := 0
	for r := 0; r < procs; r++ {
		if m.isStraggler(r, procs) {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("straggler count = %d, want 1", count)
	}
	// A straggler's executor is strictly slower than the skew band alone
	// allows.
	prof := Level(42, 3)
	for r := 0; r < procs; r++ {
		scale := m.Executor(r, procs).scale
		lo, hi := 1-prof.SkewMax, 1+prof.SkewMax
		if m.isStraggler(r, procs) {
			lo, hi = lo+prof.StragglerSkew, hi+prof.StragglerSkew
		}
		if scale < lo-1e-12 || scale > hi+1e-12 {
			t.Fatalf("rank %d scale %v outside [%v, %v]", r, scale, lo, hi)
		}
	}
}

func TestJitterBoundsAndDeterminism(t *testing.T) {
	prof := Level(9, 2)
	m := NewModel(prof)
	for seq := uint64(0); seq < 100; seq++ {
		j := m.MessageJitter(1, 3, seq)
		if j < 0 || j >= prof.MsgJitter {
			t.Fatalf("message jitter %v outside [0, %v)", j, prof.MsgJitter)
		}
		if j != m.MessageJitter(1, 3, seq) {
			t.Fatalf("message jitter not deterministic at seq %d", seq)
		}
		cj := m.CollJitter(0, seq, 2)
		if cj < 0 || cj >= prof.CollJitter {
			t.Fatalf("collective jitter %v outside [0, %v)", cj, prof.CollJitter)
		}
		if cj != m.CollJitter(0, seq, 2) {
			t.Fatalf("collective jitter not deterministic at seq %d", seq)
		}
	}
	// A nil model is the identity everywhere.
	var nilM *Model
	if nilM.MessageJitter(0, 1, 0) != 0 || nilM.CollJitter(0, 0, 0) != 0 {
		t.Fatalf("nil model jitter != 0")
	}
	if nilM.Executor(0, 4) != nil {
		t.Fatalf("nil model executor != nil")
	}
}

// The vtime hook applies the perturber and forks it with the clock.
func TestClockIntegration(t *testing.T) {
	m := NewModel(Level(3, 3))
	mkClock := func() *vtime.Clock {
		c := vtime.NewClock(vtime.Virtual, timeZero)
		c.SetPerturber(m.Executor(1, 4))
		return c
	}
	c1, c2 := mkClock(), mkClock()
	for i := 0; i < 300; i++ {
		c1.Advance(0.003)
		c2.Advance(0.003)
	}
	if c1.Now() != c2.Now() {
		t.Fatalf("perturbed clocks diverged: %v != %v", c1.Now(), c2.Now())
	}
	if c1.Now() == 0.9 {
		t.Fatalf("perturbation left the clock exactly nominal (suspicious)")
	}
	// Fork inherits the perturber: a forked clock and a fork of an
	// identical parent agree.
	f1 := c1.Fork()
	f2 := c2.Fork()
	f1.Advance(0.01)
	f2.Advance(0.01)
	if f1.Now() != f2.Now() {
		t.Fatalf("forked perturbed clocks diverged: %v != %v", f1.Now(), f2.Now())
	}
}
