// Package perturb implements a seeded, fully deterministic perturbation
// model for the virtual-time engine.
//
// The paper's negative-correctness axis demands that an analysis tool
// raise no spurious diagnoses on well-tuned programs, and it concedes that
// the original busy-wait ATS prototype is "not guaranteed to be stable
// especially under heavy work load".  The reproduction's virtual clock is
// the opposite extreme: perfectly noise-free, so the analyzer had never
// been exercised against realistic timing jitter.  This package closes
// that gap without giving up reproducibility: every disturbance is a pure
// function of (seed, identity, sequence), so a perturbed run is exactly as
// deterministic as an unperturbed one — same seed, same shape, same
// profile, byte-identical trace and profile hash.
//
// The model has four ingredients, mirroring the disturbance taxonomy of
// similarity-based SPMD debugging (arXiv:0906.1326) and Perun's
// measurement-robustness requirements (arXiv:2207.12900):
//
//   - per-rank clock-rate skew: each rank's locally accounted work is
//     scaled by a fixed factor 1 ± U·SkewMax (cores differ in effective
//     speed).  All threads forked from a rank inherit the rank's factor,
//     so pure-OpenMP regions stay internally balanced;
//   - straggler ranks: a deterministic subset of ranks receives an
//     additional slowdown of StragglerSkew (an overloaded or thermally
//     throttled node);
//   - per-message latency jitter: every point-to-point message carries an
//     extra wire delay U·MsgJitter keyed by (src, dst, message sequence),
//     and every collective adds a per-participant exit delay U·CollJitter
//     keyed by (communicator, collective sequence, rank);
//   - OS noise bursts: each executor owns a deterministic schedule of
//     transient preemptions (exponential gaps at NoiseRate, burst lengths
//     up to NoiseBurst) injected as extra virtual work whenever its
//     computation crosses a scheduled burst time.
//
// Hook points: the per-rank ingredients implement vtime.Perturber and are
// installed on rank clocks by mpi.Run (and omp.Run); the message and
// collective jitter are consulted by the mpi substrate directly.  Blocking
// waits (Clock.AdvanceTo) are never perturbed — the disturbance already
// happened in the producer's timeline.
package perturb

import (
	"fmt"
	"math"

	"repro/internal/vtime"
)

// Profile describes the perturbation magnitudes of one run.  The zero
// value (and any profile with Level 0) perturbs nothing: runs are
// bit-identical to unperturbed ones, which keeps golden fixtures valid.
// Profile is comparable, so it can key calibration caches.
type Profile struct {
	// Level is the intensity-ladder step this profile was built from
	// (informational; Level(seed, n) fills it).
	Level int `json:"level"`
	// Seed drives every deterministic draw.
	Seed uint64 `json:"seed"`
	// SkewMax is the maximum relative clock-rate skew per rank: each
	// rank's work is scaled by a factor in [1-SkewMax, 1+SkewMax].
	SkewMax float64 `json:"skew_max"`
	// Stragglers is the number of ranks slowed by an extra
	// StragglerSkew on top of their ordinary skew.
	Stragglers int `json:"stragglers"`
	// StragglerSkew is the additional relative slowdown of stragglers.
	StragglerSkew float64 `json:"straggler_skew"`
	// MsgJitter is the maximum extra wire latency per p2p message (s).
	MsgJitter float64 `json:"msg_jitter"`
	// CollJitter is the maximum extra per-participant exit delay per
	// collective operation (s).
	CollJitter float64 `json:"coll_jitter"`
	// NoiseRate is the expected OS-noise bursts per virtual second per
	// executor; NoiseBurst is the maximum burst length (s).
	NoiseRate  float64 `json:"noise_rate"`
	NoiseBurst float64 `json:"noise_burst"`
}

// Zero reports whether the profile perturbs nothing.
func (p Profile) Zero() bool {
	return p.SkewMax == 0 && p.Stragglers == 0 && p.MsgJitter == 0 &&
		p.CollJitter == 0 && p.NoiseRate == 0
}

// String renders a compact description for tables and logs.
func (p Profile) String() string {
	if p.Zero() {
		return fmt.Sprintf("L%d (none)", p.Level)
	}
	return fmt.Sprintf("L%d skew=%.2g%% stragglers=%d(+%.2g%%) msg=%.2gs coll=%.2gs noise=%.3g/s×%.2gs",
		p.Level, p.SkewMax*100, p.Stragglers, p.StragglerSkew*100,
		p.MsgJitter, p.CollJitter, p.NoiseRate, p.NoiseBurst)
}

// MaxLevel is the top step of the canonical intensity ladder.
const MaxLevel = 3

// Level returns the canonical perturbation profile for an intensity step:
// level 0 is the exact unperturbed model (bit-identical runs), and levels
// 1..MaxLevel raise every disturbance together — roughly "quiet cluster",
// "shared cluster", "heavily loaded cluster".  Levels above MaxLevel
// saturate at MaxLevel.
func Level(seed uint64, level int) Profile {
	if level <= 0 {
		return Profile{Seed: seed}
	}
	if level > MaxLevel {
		level = MaxLevel
	}
	p := Profile{Level: level, Seed: seed}
	switch level {
	case 1:
		p.SkewMax = 0.002 // ±0.2 %
		p.MsgJitter = 2e-6
		p.CollJitter = 1e-6
		p.NoiseRate, p.NoiseBurst = 2, 20e-6
	case 2:
		p.SkewMax = 0.005
		p.Stragglers, p.StragglerSkew = 1, 0.01
		p.MsgJitter = 5e-6
		p.CollJitter = 3e-6
		p.NoiseRate, p.NoiseBurst = 5, 50e-6
	case 3:
		p.SkewMax = 0.01
		p.Stragglers, p.StragglerSkew = 1, 0.03
		p.MsgJitter = 2e-5
		p.CollJitter = 1e-5
		p.NoiseRate, p.NoiseBurst = 10, 200e-6
	}
	return p
}

// WaitBudget bounds how far perturbation can move an aggregate waiting
// time, given the run's total (per-location-summed) time and its event
// count.  It is deliberately a generous upper bound: skew shifts every
// piece of work by at most SkewMax+StragglerSkew in both directions of an
// imbalance, noise adds at most NoiseRate·NoiseBurst of extra work per
// unit time, and each traced operation can carry one jittered message or
// collective exit.  The conformance robustness axis widens its
// closed-form tolerance by exactly this budget.
func (p Profile) WaitBudget(totalTime float64, events int) float64 {
	if p.Zero() {
		return 0
	}
	skew := 2 * (p.SkewMax + p.StragglerSkew) * totalTime
	noise := p.NoiseRate * p.NoiseBurst * totalTime
	jitter := float64(events) * math.Max(p.MsgJitter, p.CollJitter)
	return skew + noise + jitter
}

// Model instantiates a profile for one run (one mpi.World or one
// standalone OpenMP run).  It is stateless and safe for concurrent use:
// all per-executor state lives in the Executors it hands out.
type Model struct {
	prof Profile
}

// NewModel returns the run-level model for a profile, or nil for a zero
// profile — callers can install the result unconditionally, and a nil
// model means "perturb nothing" everywhere it is consulted.
func NewModel(prof Profile) *Model {
	if prof.Zero() {
		return nil
	}
	return &Model{prof: prof}
}

// Profile returns the model's profile (zero value for a nil model).
func (m *Model) Profile() Profile {
	if m == nil {
		return Profile{}
	}
	return m.prof
}

// domain tags keep the deterministic draws of the four ingredients
// independent of one another.
const (
	domSkew = iota + 1
	domStraggler
	domMsg
	domColl
	domNoise
	domFork
)

// mix folds a variadic key into 64 well-scrambled bits (splitmix64
// finalizer over a running combine).  It is the only source of
// randomness in the package, making every draw a pure function of its
// arguments.
func mix(vs ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vs {
		h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h += 0x9e3779b97f4a7c15
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

// unit maps a key to a float in [0, 1).
func unit(vs ...uint64) float64 {
	return float64(mix(vs...)>>11) / (1 << 53)
}

// isStraggler reports whether rank is one of the prof.Stragglers ranks
// (of procs) designated stragglers: the ranks whose straggler scores are
// smallest, ties broken by rank.  The selection is a pure function of
// (seed, procs), so every caller agrees on it.
func (m *Model) isStraggler(rank, procs int) bool {
	k := m.prof.Stragglers
	if k <= 0 {
		return false
	}
	if k >= procs {
		return true
	}
	my := mix(m.prof.Seed, domStraggler, uint64(rank))
	smaller := 0
	for r := 0; r < procs; r++ {
		if r == rank {
			continue
		}
		s := mix(m.prof.Seed, domStraggler, uint64(r))
		if s < my || (s == my && r < rank) {
			smaller++
		}
	}
	return smaller < k
}

// StragglerRanks returns the ranks (sorted ascending) that the model's
// profile designates as stragglers in a world of procs ranks — the
// ground-truth oracle for outlier-mining validation (package
// similarity).  A nil model, or one without stragglers, returns nil.
func (m *Model) StragglerRanks(procs int) []int {
	if m == nil {
		return nil
	}
	var out []int
	for r := 0; r < procs; r++ {
		if m.isStraggler(r, procs) {
			out = append(out, r)
		}
	}
	return out
}

// Executor returns the per-rank perturber to install on rank's clock
// (vtime.Clock.SetPerturber) for a world of procs ranks.  A nil model
// returns nil.
func (m *Model) Executor(rank, procs int) *Executor {
	if m == nil {
		return nil
	}
	scale := 1.0
	if m.prof.SkewMax > 0 {
		// u in [-1, 1): symmetric skew around the nominal rate.
		u := 2*unit(m.prof.Seed, domSkew, uint64(rank)) - 1
		scale += u * m.prof.SkewMax
	}
	if m.isStraggler(rank, procs) {
		scale += m.prof.StragglerSkew
	}
	return &Executor{
		scale:     scale,
		rate:      m.prof.NoiseRate,
		burst:     m.prof.NoiseBurst,
		rng:       mix(m.prof.Seed, domNoise, uint64(rank)),
		forkKey:   mix(m.prof.Seed, domFork, uint64(rank)),
		nextNoise: -1,
	}
}

// MessageJitter returns the extra wire latency (s) of the seq-th message
// from world rank src to world rank dst.  seq counts the sender's
// messages to that destination in program order, which is deterministic
// under MPI's non-overtaking rule.
func (m *Model) MessageJitter(src, dst int, seq uint64) float64 {
	if m == nil || m.prof.MsgJitter <= 0 {
		return 0
	}
	return unit(m.prof.Seed, domMsg, uint64(src), uint64(dst), seq) * m.prof.MsgJitter
}

// CollJitter returns the extra exit delay (s) of participant rank in the
// seq-th collective on communicator cid.  Both coordinates are
// deterministic: MPI requires all members to call collectives in the same
// per-communicator order.
func (m *Model) CollJitter(cid int32, seq uint64, rank int) float64 {
	if m == nil || m.prof.CollJitter <= 0 {
		return 0
	}
	return unit(m.prof.Seed, domColl, uint64(uint32(cid)), seq, uint64(rank)) * m.prof.CollJitter
}

// Executor is the per-executor perturbation state: a fixed work-rate
// scale plus a deterministic OS-noise schedule.  It implements
// vtime.Perturber and is owned by a single goroutine (its clock's owner).
type Executor struct {
	scale float64 // work-rate multiplier (1 = nominal)
	rate  float64 // noise bursts per virtual second
	burst float64 // maximum burst length (s)

	rng       uint64  // private draw stream for the noise schedule
	nextNoise float64 // next scheduled burst time; -1 until first use
	forkKey   uint64  // identity for deriving children
	forkSeq   uint64  // children forked so far
}

// next draws the next 64 bits of the executor's private stream.
func (e *Executor) next() uint64 {
	e.rng += 0x9e3779b97f4a7c15
	z := e.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unit01 draws a float in (0, 1] (never zero, so logarithms are safe).
func (e *Executor) unit01() float64 {
	return float64(e.next()>>11+1) / (1 << 53)
}

// gap draws an exponential inter-burst gap for the configured rate.
func (e *Executor) gap() float64 {
	return -math.Log(e.unit01()) / e.rate
}

// PerturbAdvance implements vtime.Perturber: scale the duration by the
// executor's work rate, then add every noise burst whose scheduled time
// falls inside the (scaled) computation interval.  Bursts model the OS
// preempting the executor mid-computation; they extend local time but do
// not reschedule further bursts within the same call, so the schedule
// advances at the configured rate regardless of burst lengths.
func (e *Executor) PerturbAdvance(now, d float64) float64 {
	d *= e.scale
	if e.rate <= 0 {
		return d
	}
	if e.nextNoise < 0 {
		e.nextNoise = now + e.gap()
	}
	end := now + d
	for e.nextNoise <= end {
		d += e.unit01() * e.burst
		e.nextNoise += e.gap()
	}
	return d
}

// Fork implements vtime.Perturber: the child inherits the parent's rank
// skew (threads of a rank run at the rank's rate) but owns an independent
// deterministic noise stream, keyed by the parent's identity and a fork
// sequence number.  Forks happen in program order on the parent's
// goroutine, so the derivation is deterministic.
func (e *Executor) Fork() vtime.Perturber {
	e.forkSeq++
	return &Executor{
		scale:     e.scale,
		rate:      e.rate,
		burst:     e.burst,
		rng:       mix(e.forkKey, domNoise, e.forkSeq),
		forkKey:   mix(e.forkKey, domFork, e.forkSeq),
		nextNoise: -1,
	}
}
