package similarity

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// IndexSchema identifies the on-disk index-log format; bump it on any
// breaking change to the header or entry encoding below.
const IndexSchema = 1

// IndexLogName is the index file inside an index directory.
const IndexLogName = "index.log"

// indexHeader is the first line of the log: the stamp that makes the
// index self-invalidating.  Any mismatch — format version, LSH
// geometry, or the profile schema the embeddings were computed from —
// discards the log and triggers a rebuild, the same discipline the
// result cache (package rescache) applies to its env stamp.
type indexHeader struct {
	Schema        int    `json:"schema"`
	Params        Params `json:"params"`
	ProfileSchema int    `json:"profile_schema"`
}

// indexEntry is one embedding line.  Vec components are rounded to
// float32 before writing, matching the in-memory representation, so an
// index reloaded from disk is bit-identical to the one that wrote it.
type indexEntry struct {
	Hash string    `json:"hash"`
	Vec  []float64 `json:"vec"`
}

// PersistentIndex is an Index backed by an append-only log: every Add
// lands in memory and as one JSON line on disk, so reopening the log
// replays the exact index state in O(entries) with no re-embedding.  It
// is safe for concurrent use by multiple goroutines.
type PersistentIndex struct {
	mu   sync.Mutex
	path string
	ix   *Index
	f    *os.File
}

// IndexExists reports whether dir holds an index log (of any vintage).
func IndexExists(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, IndexLogName))
	return err == nil
}

// OpenIndex opens (creating if necessary) the persistent index in dir.
// A log whose stamp does not match (params, IndexSchema, profileSchema)
// is discarded and restarted empty — the caller is expected to backfill
// from the profile store, which holds the ground truth.  A truncated
// tail (torn final write) is dropped, not fatal.
func OpenIndex(dir string, params Params, profileSchema int) (*PersistentIndex, error) {
	params = params.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("similarity: open index: %w", err)
	}
	path := filepath.Join(dir, IndexLogName)
	want := indexHeader{Schema: IndexSchema, Params: params, ProfileSchema: profileSchema}
	pi := &PersistentIndex{path: path, ix: NewIndex(params)}

	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("similarity: read index: %w", err)
	}
	good := 0 // byte offset past the last intact, in-stamp line
	if len(data) > 0 {
		lines := bytes.SplitAfter(data, []byte("\n"))
		var have indexHeader
		first := lines[0]
		if bytes.HasSuffix(first, []byte("\n")) &&
			json.Unmarshal(first, &have) == nil && have == want {
			good = len(first)
			for _, line := range lines[1:] {
				if !bytes.HasSuffix(line, []byte("\n")) {
					break // torn tail: drop it
				}
				var e indexEntry
				if json.Unmarshal(line, &e) != nil {
					break
				}
				if err := pi.ix.Add(e.Hash, e.Vec); err != nil {
					break
				}
				good += len(line)
			}
		}
	}

	if good == 0 {
		// Fresh log (or stamped by another world): restart with the
		// header line.  Atomic temp+rename so a crash never leaves a
		// half-written header behind the existence fast-path.
		blob, err := json.Marshal(want)
		if err != nil {
			return nil, fmt.Errorf("similarity: marshal header: %w", err)
		}
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, append(blob, '\n'), 0o644); err != nil {
			return nil, fmt.Errorf("similarity: write index: %w", err)
		}
		if err := os.Rename(tmp, path); err != nil {
			return nil, fmt.Errorf("similarity: write index: %w", err)
		}
	} else if good < len(data) {
		if err := os.Truncate(path, int64(good)); err != nil {
			return nil, fmt.Errorf("similarity: drop torn index tail: %w", err)
		}
	}

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("similarity: append index: %w", err)
	}
	pi.f = f
	return pi, nil
}

// Path returns the log location.
func (pi *PersistentIndex) Path() string { return pi.path }

// Params returns the index geometry.
func (pi *PersistentIndex) Params() Params { return pi.ix.Params() }

// Len returns the number of indexed profiles.
func (pi *PersistentIndex) Len() int {
	pi.mu.Lock()
	defer pi.mu.Unlock()
	return pi.ix.Len()
}

// Has reports whether the profile hash is indexed.
func (pi *PersistentIndex) Has(hash string) bool {
	pi.mu.Lock()
	defer pi.mu.Unlock()
	return pi.ix.Has(hash)
}

// Add indexes one embedding and appends it to the log.  Adding a known
// hash is a no-op, so replaying a store into an existing index is
// idempotent.
func (pi *PersistentIndex) Add(hash string, vec []float64) error {
	pi.mu.Lock()
	defer pi.mu.Unlock()
	if pi.ix.Has(hash) {
		return nil
	}
	if pi.f == nil {
		return fmt.Errorf("similarity: index is closed")
	}
	// Round through float32 first so the logged entry replays to the
	// exact in-memory vector (rebuild ≡ incremental, bit for bit).
	rounded := make([]float64, len(vec))
	for i, x := range vec {
		rounded[i] = float64(float32(x))
	}
	if err := pi.ix.Add(hash, rounded); err != nil {
		return err
	}
	blob, err := json.Marshal(indexEntry{Hash: hash, Vec: rounded})
	if err != nil {
		return fmt.Errorf("similarity: marshal entry: %w", err)
	}
	if _, err := pi.f.Write(append(blob, '\n')); err != nil {
		return fmt.Errorf("similarity: append index: %w", err)
	}
	return nil
}

// Query is Index.Query under the lock.
func (pi *PersistentIndex) Query(vec []float64, k int) ([]Match, int, error) {
	pi.mu.Lock()
	defer pi.mu.Unlock()
	return pi.ix.Query(vec, k)
}

// Scan is Index.Scan (exact brute force) under the lock.
func (pi *PersistentIndex) Scan(vec []float64, k int) ([]Match, error) {
	pi.mu.Lock()
	defer pi.mu.Unlock()
	return pi.ix.Scan(vec, k)
}

// Close releases the append handle.  The index stays readable.
func (pi *PersistentIndex) Close() error {
	pi.mu.Lock()
	defer pi.mu.Unlock()
	if pi.f == nil {
		return nil
	}
	err := pi.f.Close()
	pi.f = nil
	return err
}
