package similarity

import (
	"math"
	"sort"

	"repro/internal/profile"
)

// Embedding geometry: a feature-hashed per-property severity block, a
// wait-concentration histogram block, a run-scale block, and one bias
// dimension that keeps every embedding non-zero (so cosine similarity
// is defined for clean profiles, which then all sit at similarity 1).
//
// Each block is normalized to unit length and weighted independently.
// Raw severities and wait shares are all non-negative, which would
// squeeze every profile into the positive orthant: pairwise angles stay
// tiny, and sign-LSH buckets collapse into a few giants.  Per-block
// normalization makes the sparse severity pattern — *which* properties
// a run exhibits — the dominant signal, the dense histogram block is
// additionally centered (its common DC component carries no
// information), and the result spreads the corpus over the sphere so
// 12-bit signatures actually partition it.
const (
	sevDims   = 32
	histDims  = 16
	scaleDims = 6
	biasDims  = 1
	// Dims is the dimensionality of profile embeddings.
	Dims = sevDims + histDims + scaleDims + biasDims
)

// Block weights: the property mix separates best, the wait shape
// refines within it, the run scale keeps 4-rank and 4096-rank runs of
// the same pathology from being conflated outright.
const (
	sevWeight   = 1.0
	histWeight  = 0.7
	scaleWeight = 0.3
	biasWeight  = 0.1
)

// Embed maps a profile to its fixed-dimension feature vector.  The
// embedding is a pure function of the profile bytes (all iteration
// orders are fixed), so an identical run embeds identically everywhere
// — the self-match guarantee of the index.
func Embed(p *profile.Profile) []float64 {
	v := make([]float64, Dims)
	sev := v[:sevDims]
	hist := v[sevDims : sevDims+histDims]
	scale := v[sevDims+histDims : sevDims+histDims+scaleDims]

	rankWait := map[int32]float64{}
	maxRank := int32(-1)
	for i := range p.Properties {
		prop := &p.Properties[i]
		if prop.Info {
			continue
		}
		sev[hashDim(prop.Name, sevDims)] += prop.Severity
		for _, lw := range prop.Locations {
			rankWait[lw.Rank] += lw.Wait
			if lw.Rank > maxRank {
				maxRank = lw.Rank
			}
		}
	}

	// Wait-concentration histogram: per-rank total-wait shares, sorted
	// descending, accumulated into histDims positional bins.  Rank count
	// varies across runs; relative position (heaviest first) does not.
	// Iteration is over sorted ranks: float accumulation order is part
	// of the embedding's determinism contract.
	ranks := make([]int32, 0, len(rankWait))
	for r := range rankWait {
		ranks = append(ranks, r)
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })
	var tot float64
	for _, r := range ranks {
		tot += rankWait[r]
	}
	if tot > 0 {
		shares := make([]float64, 0, len(ranks))
		for _, r := range ranks {
			shares = append(shares, rankWait[r]/tot)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(shares)))
		for i, s := range shares {
			bin := i * histDims / len(shares)
			hist[bin] += s
		}
		// Center the dense histogram block; the sparse severity block
		// stays uncentered so disjoint property mixes remain orthogonal.
		var mean float64
		for _, x := range hist {
			mean += x
		}
		mean /= float64(len(hist))
		for i := range hist {
			hist[i] -= mean
		}
	}

	// Run scale: one-hot log₂ bucket of the rank count.
	procs := p.Run.Procs
	if procs <= int(maxRank) {
		procs = int(maxRank) + 1
	}
	if procs > 0 {
		bucket := 0
		for n := procs; n >= 8 && bucket < scaleDims-1; n >>= 2 {
			bucket++ // 1–7, 8–31, 32–127, … ranks
		}
		scale[bucket] = 1
	}

	any := normalizeBlock(sev, sevWeight)
	any = normalizeBlock(hist, histWeight) || any
	normalizeBlock(scale, scaleWeight)
	if !any {
		// No recorded waits, no severities: a clean profile.  Only the
		// bias (and run scale) remain, at full strength, so clean runs
		// match other clean runs of the same scale first.
		v[Dims-1] = 1
		return v
	}
	v[Dims-1] = biasWeight
	return v
}

// normalizeBlock scales block to length weight (leaving an all-zero
// block alone) and reports whether it had any signal.
func normalizeBlock(block []float64, weight float64) bool {
	var norm float64
	for _, x := range block {
		norm += x * x
	}
	if norm == 0 {
		return false
	}
	norm = math.Sqrt(norm)
	for i := range block {
		block[i] *= weight / norm
	}
	return true
}

// hashDim feature-hashes a property name into [0, dims).
func hashDim(name string, dims int) int {
	h := uint64(0)
	for i := 0; i < len(name); i++ {
		h = mix(h, uint64(name[i]))
	}
	return int(h % uint64(dims))
}

// cosineSim is cos(a, b) with zero-vector conventions mirroring
// cosineDistance (embeddings carry a bias dimension and are never zero,
// but the helper stays total).
func cosineSim(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	switch {
	case na == 0 && nb == 0:
		return 1
	case na == 0 || nb == 0:
		return 0
	}
	s := dot / math.Sqrt(na*nb)
	if s > 1 {
		return 1
	}
	return s
}

// mix folds a variadic key into 64 well-scrambled bits (splitmix64
// finalizer over a running combine) — the package's only randomness
// source, so hyperplanes and feature hashes are pure functions of their
// arguments.
func mix(vs ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vs {
		h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h += 0x9e3779b97f4a7c15
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}
