package similarity

import (
	"fmt"
	"testing"
)

// fakeHash gives entry i a unique 64-hex-char identity without the cost
// of marshaling and hashing 10⁴ synthetic profiles.
func fakeHash(i int) string { return fmt.Sprintf("%064x", i) }

// TestQueryRecallAtScale is the sublinearity acceptance check: over
// 10⁴ indexed profiles, top-10 queries must reach recall ≥ 0.9 against
// exact brute force while probing < 10% of the stored candidates.
func TestQueryRecallAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("10⁴-profile index in -short mode")
	}
	const (
		n       = 10_000
		queries = 100
		k       = 10
	)
	ix := NewIndex(DefaultParams)
	vecs := make([][]float64, n)
	for i := 0; i < n; i++ {
		vecs[i] = Embed(SyntheticProfile(42, i))
		if err := ix.Add(fakeHash(i), vecs[i]); err != nil {
			t.Fatal(err)
		}
	}

	var recallSum, probeSum float64
	for q := 0; q < queries; q++ {
		vec := vecs[q*(n/queries)]
		exact, err := ix.Scan(vec, k)
		if err != nil {
			t.Fatal(err)
		}
		approx, probed, err := ix.Query(vec, k)
		if err != nil {
			t.Fatal(err)
		}
		truth := map[string]bool{}
		for _, m := range exact {
			truth[m.Hash] = true
		}
		hit := 0
		for _, m := range approx {
			if truth[m.Hash] {
				hit++
			}
		}
		recallSum += float64(hit) / float64(len(exact))
		probeSum += float64(probed) / float64(n)
	}
	recall := recallSum / queries
	probeFrac := probeSum / queries
	t.Logf("n=%d k=%d: recall=%.3f probed=%.2f%%", n, k, recall, probeFrac*100)
	if recall < 0.9 {
		t.Errorf("recall = %.3f, want ≥ 0.9", recall)
	}
	if probeFrac >= 0.10 {
		t.Errorf("probed %.2f%% of candidates on average, want < 10%%", probeFrac*100)
	}
}

// TestQueryRecallSmall is the small-corpus recall bound the similar
// smoke asserts: 500 synthetic profiles is the regime where 20-bit
// buckets are nearly singletons and recall rests on adaptive multiprobe
// widening the candidate set.
func TestQueryRecallSmall(t *testing.T) {
	const (
		n       = 500
		queries = 100
		k       = 10
	)
	ix := NewIndex(DefaultParams)
	vecs := make([][]float64, n)
	for i := 0; i < n; i++ {
		vecs[i] = Embed(SyntheticProfile(42, i))
		if err := ix.Add(fakeHash(i), vecs[i]); err != nil {
			t.Fatal(err)
		}
	}
	var recallSum float64
	for q := 0; q < queries; q++ {
		vec := vecs[q*(n/queries)]
		exact, err := ix.Scan(vec, k)
		if err != nil {
			t.Fatal(err)
		}
		approx, _, err := ix.Query(vec, k)
		if err != nil {
			t.Fatal(err)
		}
		truth := map[string]bool{}
		for _, m := range exact {
			truth[m.Hash] = true
		}
		hit := 0
		for _, m := range approx {
			if truth[m.Hash] {
				hit++
			}
		}
		recallSum += float64(hit) / float64(len(exact))
	}
	recall := recallSum / queries
	t.Logf("n=%d k=%d: recall=%.3f", n, k, recall)
	if recall < 0.9 {
		t.Errorf("recall = %.3f on %d profiles, want ≥ 0.9", recall, n)
	}
}

// TestQuerySelfMatch: a stored profile's own embedding must come back
// first at similarity 1 — LSH buckets always contain the exact entry.
func TestQuerySelfMatch(t *testing.T) {
	ix := NewIndex(DefaultParams)
	for i := 0; i < 200; i++ {
		if err := ix.Add(fakeHash(i), Embed(SyntheticProfile(7, i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i += 17 {
		got, _, err := ix.Query(Embed(SyntheticProfile(7, i)), 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 || got[0].Hash != fakeHash(i) {
			t.Fatalf("query %d: top-1 = %+v, want self", i, got)
		}
		if got[0].Similarity < 0.999999 {
			t.Fatalf("query %d: self similarity = %v", i, got[0].Similarity)
		}
	}
}

// TestAddIdempotent: re-adding a hash must not duplicate entries or
// bucket members.
func TestAddIdempotent(t *testing.T) {
	ix := NewIndex(Params{})
	vec := Embed(SyntheticProfile(1, 0))
	for i := 0; i < 3; i++ {
		if err := ix.Add(fakeHash(0), vec); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Len() != 1 {
		t.Fatalf("Len = %d after duplicate adds", ix.Len())
	}
	got, _, err := ix.Query(vec, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("query returned %d matches, want 1", len(got))
	}
}

// TestQueryDimsMismatch: wrong-dimension vectors are rejected, not
// silently mis-hashed.
func TestQueryDimsMismatch(t *testing.T) {
	ix := NewIndex(DefaultParams)
	if err := ix.Add("x", make([]float64, 3)); err == nil {
		t.Error("Add accepted a 3-dim vector")
	}
	if _, _, err := ix.Query(make([]float64, 3), 5); err == nil {
		t.Error("Query accepted a 3-dim vector")
	}
}

// TestEmbedDeterministic: the embedding is a pure function of the
// profile bytes — the self-match guarantee of the persistent index.
func TestEmbedDeterministic(t *testing.T) {
	for i := 0; i < 20; i++ {
		a := Embed(SyntheticProfile(9, i))
		b := Embed(SyntheticProfile(9, i))
		for d := range a {
			if a[d] != b[d] {
				t.Fatalf("profile %d dim %d: %v != %v", i, d, a[d], b[d])
			}
		}
		if len(a) != Dims {
			t.Fatalf("embedding has %d dims, want %d", len(a), Dims)
		}
	}
}
