// Package similarity mines the wait vectors the test suite already
// records, in the spirit of the Liu et al. SPMD similarity analysis: it
// clusters per-rank behavior vectors within one run to flag outlier
// ranks without a closed-form oracle, and embeds whole profiles into a
// fixed-dimension feature space indexed by random-hyperplane LSH so a
// million-profile store answers "which past run does this regression
// look like?" in sublinear time.
//
// Within-run clustering (ClusterRanks) normalizes each rank's
// per-property wait vector to unit sum and single-links ranks under a
// cosine-distance radius.  The decisive signal for injected stragglers
// is structural, not proportional: a straggler is the rank everyone
// else waits *for*, so its own wait vector is (near) zero while the
// pack's vectors agree — under the convention that the zero vector is
// at distance 1 from every non-zero vector, the straggler isolates
// cleanly.  A severity gate keeps quiet runs (nothing significant to
// cluster) from producing noise-driven outliers.
//
// Cross-run search (Embed + Index) is specified in embed.go / lsh.go /
// index.go; doc/ARCHITECTURE.md documents the layout and invalidation
// discipline of the persistent index.
package similarity

import (
	"math"
	"sort"

	"repro/internal/analyzer"
	"repro/internal/profile"
)

// Outlier classification kinds.
const (
	// KindStraggler marks an outlier rank whose own recorded wait is
	// below the majority median — the rank the others wait for.
	KindStraggler = "straggler"
	// KindDeviant marks any other behavioral outlier (a rank that waits
	// in different places than the pack).
	KindDeviant = "deviant"
)

// RankOptions tunes ClusterRanks.  The zero value selects the defaults.
type RankOptions struct {
	// Epsilon is the single-linkage merge radius in cosine distance
	// (default 0.35): ranks closer than this end up in one cluster.
	Epsilon float64
	// Gate is the minimum total non-info wait severity a run must show
	// before clustering is attempted (default: the profile's analyzer
	// threshold, or 0.005 when the profile records none).  Below it the
	// run is considered clean: wait vectors are then dominated by noise
	// and any cluster structure is meaningless.
	Gate float64
	// MaxOutlierFrac bounds the share of ranks a cluster may hold and
	// still be called an outlier group (default 0.25): when "outliers"
	// approach half the run there is no majority behavior to deviate
	// from.
	MaxOutlierFrac float64
}

func (o RankOptions) withDefaults(p *profile.Profile) RankOptions {
	if o.Epsilon <= 0 {
		o.Epsilon = 0.35
	}
	if o.Gate <= 0 {
		if p != nil && p.Threshold > 0 {
			o.Gate = p.Threshold
		} else {
			o.Gate = 0.005
		}
	}
	if o.MaxOutlierFrac <= 0 {
		o.MaxOutlierFrac = 0.25
	}
	return o
}

// RankFinding is one flagged outlier rank — the payload of an
// analyzer.PropRankOutlier finding.
type RankFinding struct {
	Rank int `json:"rank"`
	// Kind is KindStraggler or KindDeviant.
	Kind string `json:"kind"`
	// Distance is the cosine distance from the rank's normalized wait
	// vector to its nearest majority-cluster rank.
	Distance float64 `json:"distance"`
	// Wait is the rank's total recorded waiting time in seconds.
	Wait float64 `json:"wait_s"`
}

// RankClusters is the result of clustering one run's ranks.
type RankClusters struct {
	// Ranks is the number of ranks clustered.
	Ranks int
	// Severity is the gate signal: the run's total non-info wait
	// severity.
	Severity float64
	// Gated reports that Severity fell below the gate and no clustering
	// was attempted (Clusters and Outliers are empty).
	Gated bool
	// Clusters partitions the ranks, ordered by smallest member; each
	// cluster lists its ranks ascending.
	Clusters [][]int
	// Outliers holds the flagged ranks, ascending by rank.  Empty when
	// the run has no majority behavior to deviate from.
	Outliers []RankFinding
}

// OutlierRanks returns just the flagged rank numbers, ascending.
func (rc RankClusters) OutlierRanks() []int {
	out := make([]int, 0, len(rc.Outliers))
	for _, f := range rc.Outliers {
		out = append(out, f.Rank)
	}
	return out
}

// ClusterRanks clusters the per-rank wait vectors of one profile and
// flags outlier ranks.  The result is a pure function of the profile
// bytes (iteration orders are fixed), so the same run flags the same
// ranks on every engine and every machine.
func ClusterRanks(p *profile.Profile, opt RankOptions) RankClusters {
	opt = opt.withDefaults(p)
	ranks := p.Run.Procs
	vecs, waits, severity := rankVectors(p, &ranks)
	rc := RankClusters{Ranks: ranks, Severity: severity}
	if ranks == 0 {
		return rc
	}
	if severity < opt.Gate {
		rc.Gated = true
		return rc
	}

	// Unit-sum normalize each rank's vector; an all-zero vector stays
	// zero (the straggler signature).
	for _, v := range vecs {
		var tot float64
		for _, w := range v {
			tot += w
		}
		if tot > 0 {
			for i := range v {
				v[i] /= tot
			}
		}
	}

	// Single-linkage: union ranks whose cosine distance is within the
	// radius.  O(R²) pairs — within-run rank counts are small next to
	// the cross-run index sizes.
	parent := make([]int, ranks)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for a := 0; a < ranks; a++ {
		for b := a + 1; b < ranks; b++ {
			if cosineDistance(vecs[a], vecs[b]) <= opt.Epsilon {
				ra, rb := find(a), find(b)
				if ra != rb {
					if ra > rb {
						ra, rb = rb, ra
					}
					parent[rb] = ra
				}
			}
		}
	}
	members := map[int][]int{}
	for r := 0; r < ranks; r++ {
		root := find(r)
		members[root] = append(members[root], r)
	}
	roots := make([]int, 0, len(members))
	for root := range members {
		roots = append(roots, root)
	}
	sort.Ints(roots)
	for _, root := range roots {
		rc.Clusters = append(rc.Clusters, members[root])
	}

	// Majority behavior: the one cluster holding more than half the
	// ranks.  Without it the run is ambiguous and nothing is flagged.
	majority := -1
	for i, cl := range rc.Clusters {
		if 2*len(cl) > ranks {
			majority = i
			break
		}
	}
	if majority < 0 {
		return rc
	}
	majorityWaits := make([]float64, 0, len(rc.Clusters[majority]))
	for _, r := range rc.Clusters[majority] {
		majorityWaits = append(majorityWaits, waits[r])
	}
	medianWait := median(majorityWaits)

	maxOutlier := int(opt.MaxOutlierFrac * float64(ranks))
	for i, cl := range rc.Clusters {
		if i == majority || len(cl) > maxOutlier {
			continue
		}
		for _, r := range cl {
			f := RankFinding{Rank: r, Kind: KindDeviant, Wait: waits[r], Distance: math.Inf(1)}
			for _, m := range rc.Clusters[majority] {
				if d := cosineDistance(vecs[r], vecs[m]); d < f.Distance {
					f.Distance = d
				}
			}
			if f.Wait < medianWait {
				f.Kind = KindStraggler
			}
			rc.Outliers = append(rc.Outliers, f)
		}
	}
	sort.Slice(rc.Outliers, func(i, j int) bool { return rc.Outliers[i].Rank < rc.Outliers[j].Rank })
	return rc
}

// rankVectors builds one wait vector per rank over the profile's
// component properties (non-info, excluding the total_waiting aggregate),
// summing threads into their rank.  It also returns each rank's total
// wait and the run's gate severity.  *ranks is grown to cover every
// location seen when the profile does not record the proc count.
func rankVectors(p *profile.Profile, ranks *int) (vecs [][]float64, waits []float64, severity float64) {
	props := make([]*profile.Property, 0, len(p.Properties))
	var totalSeen bool
	for i := range p.Properties {
		prop := &p.Properties[i]
		if prop.Info {
			continue
		}
		if prop.Name == analyzer.PropTotalWaiting {
			severity += prop.Severity
			totalSeen = true
			continue
		}
		props = append(props, prop)
		for _, lw := range prop.Locations {
			if int(lw.Rank) >= *ranks {
				*ranks = int(lw.Rank) + 1
			}
		}
	}
	if !totalSeen {
		for _, prop := range props {
			severity += prop.Severity
		}
	}
	vecs = make([][]float64, *ranks)
	waits = make([]float64, *ranks)
	for r := range vecs {
		vecs[r] = make([]float64, len(props))
	}
	for pi, prop := range props {
		for _, lw := range prop.Locations {
			r := int(lw.Rank)
			vecs[r][pi] += lw.Wait
			waits[r] += lw.Wait
		}
	}
	return vecs, waits, severity
}

// cosineDistance is 1 − cos(a, b) with the zero-vector conventions the
// straggler signature relies on: two zero vectors are identical
// (distance 0) and a zero vector is maximally far (distance 1) from any
// non-zero vector.
func cosineDistance(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	switch {
	case na == 0 && nb == 0:
		return 0
	case na == 0 || nb == 0:
		return 1
	}
	d := 1 - dot/math.Sqrt(na*nb)
	if d < 0 {
		return 0 // clamp float noise
	}
	return d
}

// median of a non-empty slice (copied, not mutated).
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
