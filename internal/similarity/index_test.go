package similarity

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// queryTop returns the hashes of the top-k matches — the comparison
// currency of the persistence tests.
func queryTop(t *testing.T, pi *PersistentIndex, vec []float64, k int) []string {
	t.Helper()
	matches, _, err := pi.Query(vec, k)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(matches))
	for i, m := range matches {
		out[i] = m.Hash
	}
	return out
}

// TestPersistentIndexRoundTrip: entries added incrementally must replay
// identically from the log — including float32 rounding, so reopen ≡
// in-memory bit for bit.
func TestPersistentIndexRoundTrip(t *testing.T) {
	dir := t.TempDir()
	pi, err := OpenIndex(dir, Params{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 60
	vecs := make([][]float64, n)
	for i := 0; i < n; i++ {
		vecs[i] = Embed(SyntheticProfile(3, i))
		if err := pi.Add(fakeHash(i), vecs[i]); err != nil {
			t.Fatal(err)
		}
	}
	want := queryTop(t, pi, vecs[7], 5)
	if err := pi.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenIndex(dir, Params{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != n {
		t.Fatalf("reopened Len = %d, want %d", re.Len(), n)
	}
	if got := queryTop(t, re, vecs[7], 5); !reflect.DeepEqual(got, want) {
		t.Fatalf("reopened query = %v, want %v", got, want)
	}
}

// TestPersistentIndexRebuildEqualsIncremental: an index grown Add by
// Add must answer queries identically to one rebuilt from scratch over
// the same profiles — the CI smoke's invariant.
func TestPersistentIndexRebuildEqualsIncremental(t *testing.T) {
	const n = 80
	incDir, rebDir := t.TempDir(), t.TempDir()
	inc, err := OpenIndex(incDir, Params{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer inc.Close()
	vecs := make([][]float64, n)
	for i := 0; i < n; i++ {
		vecs[i] = Embed(SyntheticProfile(11, i))
		if err := inc.Add(fakeHash(i), vecs[i]); err != nil {
			t.Fatal(err)
		}
	}
	reb, err := OpenIndex(rebDir, Params{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer reb.Close()
	for i := 0; i < n; i++ { // same set, different insertion pattern
		if err := reb.Add(fakeHash(n-1-i), vecs[n-1-i]); err != nil {
			t.Fatal(err)
		}
	}
	for q := 0; q < n; q += 13 {
		a := queryTop(t, inc, vecs[q], 10)
		b := queryTop(t, reb, vecs[q], 10)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("query %d: incremental %v != rebuilt %v", q, a, b)
		}
	}
}

// TestPersistentIndexTornTail: a torn final write (partial last line)
// is dropped on reopen; the intact prefix survives and the next Add
// lands cleanly after it.
func TestPersistentIndexTornTail(t *testing.T) {
	dir := t.TempDir()
	pi, err := OpenIndex(dir, Params{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := pi.Add(fakeHash(i), Embed(SyntheticProfile(5, i))); err != nil {
			t.Fatal(err)
		}
	}
	path := pi.Path()
	pi.Close()

	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob[:len(blob)-17], 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := OpenIndex(dir, Params{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 9 {
		t.Fatalf("Len after torn tail = %d, want 9", re.Len())
	}
	if re.Has(fakeHash(9)) {
		t.Error("torn entry survived reopen")
	}
	// The dropped entry can be re-added and a further reopen sees 10.
	if err := re.Add(fakeHash(9), Embed(SyntheticProfile(5, 9))); err != nil {
		t.Fatal(err)
	}
	re.Close()
	re2, err := OpenIndex(dir, Params{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if re2.Len() != 10 {
		t.Fatalf("Len after repair = %d, want 10", re2.Len())
	}
}

// TestPersistentIndexStampInvalidation: a log written under different
// LSH geometry or profile schema is discarded, not misread.
func TestPersistentIndexStampInvalidation(t *testing.T) {
	for _, tc := range []struct {
		name          string
		params        Params
		profileSchema int
	}{
		{"geometry change", Params{Dims: Dims, Bits: 8, Tables: 2}, 1},
		{"profile schema bump", Params{}, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			pi, err := OpenIndex(dir, Params{}, 1)
			if err != nil {
				t.Fatal(err)
			}
			if err := pi.Add(fakeHash(1), Embed(SyntheticProfile(1, 1))); err != nil {
				t.Fatal(err)
			}
			pi.Close()

			re, err := OpenIndex(dir, tc.params, tc.profileSchema)
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			if re.Len() != 0 {
				t.Fatalf("stamp mismatch kept %d entries, want rebuild from empty", re.Len())
			}
		})
	}
}

// TestPersistentIndexGarbage: a log that is not an index at all is
// discarded and restarted, never fatal.
func TestPersistentIndexGarbage(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, IndexLogName), []byte("not json\n{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pi, err := OpenIndex(dir, Params{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer pi.Close()
	if pi.Len() != 0 {
		t.Fatalf("Len = %d over garbage log", pi.Len())
	}
	if err := pi.Add(fakeHash(1), Embed(SyntheticProfile(1, 1))); err != nil {
		t.Fatal(err)
	}
}
