package similarity_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/perturb"
	"repro/internal/profile"
	"repro/internal/similarity"
)

// perturbSeed matches the experiments layer so the ladder here is the
// one EXPERIMENTS.md documents.
const perturbSeed = 1

// perturbedComposite runs the clean composite program under the given
// perturbation level and engine, and returns its canonical profile plus
// the injected straggler ranks (the ground-truth oracle).
func perturbedComposite(t *testing.T, eng mpi.Engine, level, procs int) (*profile.Profile, []int) {
	t.Helper()
	m := perturb.NewModel(perturb.Level(perturbSeed, level))
	tr, err := mpi.Run(mpi.Options{Procs: procs, Perturb: m, Engine: eng}, func(c *mpi.Comm) {
		core.NegativeBalancedMPI(c, 0.02, 10)
	})
	if err != nil {
		t.Fatalf("L%d run: %v", level, err)
	}
	rep := analyzer.Analyze(tr, analyzer.Options{})
	p, err := profile.FromRun(fmt.Sprintf("perturbed_L%d", level), tr, rep, profile.RunInfo{})
	if err != nil {
		t.Fatal(err)
	}
	return p, m.StragglerRanks(procs)
}

// TestClusterRanksFlagsInjectedStragglers is the acceptance check of the
// within-run miner: at every perturbation level, on both engines, the
// flagged outlier ranks are exactly the injected straggler ranks — zero
// false outliers on the clean and skew-only levels (0–1, which inject no
// stragglers), exactly the straggler at the levels that inject one (2–3),
// classified as a straggler (the rank the pack waits for).
func TestClusterRanksFlagsInjectedStragglers(t *testing.T) {
	const procs = 8
	for _, eng := range []mpi.Engine{mpi.EngineEvent, mpi.EngineGoroutine} {
		for level := 0; level <= 3; level++ {
			t.Run(fmt.Sprintf("%s/L%d", eng, level), func(t *testing.T) {
				p, want := perturbedComposite(t, eng, level, procs)
				rc := similarity.ClusterRanks(p, similarity.RankOptions{})
				got := rc.OutlierRanks()
				if want == nil {
					want = []int{}
				}
				if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
					t.Fatalf("L%d outliers = %v, want %v (clusters %v, severity %.4f, gated %v)",
						level, got, want, rc.Clusters, rc.Severity, rc.Gated)
				}
				for _, f := range rc.Outliers {
					if f.Kind != similarity.KindStraggler {
						t.Errorf("rank %d classified %q, want %q (wait %.6fs, distance %.3f)",
							f.Rank, f.Kind, similarity.KindStraggler, f.Wait, f.Distance)
					}
				}
			})
		}
	}
}

// TestClusterRanksDeterministicAcrossEngines re-runs one straggler level
// on both engines and requires identical findings — the cross-engine
// determinism half of the acceptance criterion (profiles are already
// byte-identical across engines; the miner must not break that).
func TestClusterRanksDeterministicAcrossEngines(t *testing.T) {
	const procs = 8
	pEvent, _ := perturbedComposite(t, mpi.EngineEvent, 3, procs)
	pGo, _ := perturbedComposite(t, mpi.EngineGoroutine, 3, procs)
	rcEvent := similarity.ClusterRanks(pEvent, similarity.RankOptions{})
	rcGo := similarity.ClusterRanks(pGo, similarity.RankOptions{})
	if !reflect.DeepEqual(rcEvent, rcGo) {
		t.Fatalf("engines disagree:\nevent:     %+v\ngoroutine: %+v", rcEvent, rcGo)
	}
}

// TestClusterRanksSynthetic drives the clustering logic through
// hand-built profiles where the geometry is known exactly.
func TestClusterRanksSynthetic(t *testing.T) {
	mk := func(waits map[string][]float64, ranks int, severity float64) *profile.Profile {
		p := &profile.Profile{
			Schema:     profile.SchemaVersion,
			Experiment: "synthetic",
			Run:        profile.RunInfo{Procs: ranks, Threads: 1},
			Threshold:  0.005,
		}
		for name, perRank := range waits {
			prop := profile.Property{Name: name, Severity: severity, Significant: true}
			for r, w := range perRank {
				prop.Wait += w
				if w != 0 {
					prop.Locations = append(prop.Locations,
						profile.LocationWait{Rank: int32(r), Thread: 0, Wait: w})
				}
			}
			p.Properties = append(p.Properties, prop)
		}
		return p
	}

	t.Run("zero-wait straggler isolates", func(t *testing.T) {
		// Ranks 0–6 wait at the barrier; rank 7 (the straggler) never
		// waits — its zero vector is at distance 1 from the pack.
		p := mk(map[string][]float64{
			analyzer.PropWaitAtBarrier: {1, 1.1, 0.9, 1, 1.05, 0.95, 1, 0},
		}, 8, 0.02)
		rc := similarity.ClusterRanks(p, similarity.RankOptions{})
		if got := rc.OutlierRanks(); !reflect.DeepEqual(got, []int{7}) {
			t.Fatalf("outliers = %v, want [7] (clusters %v)", got, rc.Clusters)
		}
		if rc.Outliers[0].Kind != similarity.KindStraggler {
			t.Errorf("kind = %q, want straggler", rc.Outliers[0].Kind)
		}
	})

	t.Run("two stragglers", func(t *testing.T) {
		p := mk(map[string][]float64{
			analyzer.PropWaitAtBarrier: {1, 0, 1.1, 0.9, 1, 1.05, 0, 1},
		}, 8, 0.02)
		rc := similarity.ClusterRanks(p, similarity.RankOptions{})
		if got := rc.OutlierRanks(); !reflect.DeepEqual(got, []int{1, 6}) {
			t.Fatalf("outliers = %v, want [1 6]", got)
		}
	})

	t.Run("deviant waits elsewhere", func(t *testing.T) {
		// Rank 7 waits as much as everyone, but at a different property:
		// an outlier by *shape*, with wait at the pack median — deviant,
		// not straggler.
		p := mk(map[string][]float64{
			analyzer.PropWaitAtBarrier: {1, 1, 1, 1, 1, 1, 1, 0},
			analyzer.PropLateSender:    {0, 0, 0, 0, 0, 0, 0, 1},
		}, 8, 0.02)
		rc := similarity.ClusterRanks(p, similarity.RankOptions{})
		if got := rc.OutlierRanks(); !reflect.DeepEqual(got, []int{7}) {
			t.Fatalf("outliers = %v, want [7]", got)
		}
		if rc.Outliers[0].Kind != similarity.KindDeviant {
			t.Errorf("kind = %q, want deviant", rc.Outliers[0].Kind)
		}
	})

	t.Run("below gate is clean", func(t *testing.T) {
		p := mk(map[string][]float64{
			analyzer.PropWaitAtBarrier: {1, 1, 1, 1, 1, 1, 1, 0},
		}, 8, 0.001) // severity under the 0.005 gate
		rc := similarity.ClusterRanks(p, similarity.RankOptions{})
		if !rc.Gated || len(rc.Outliers) != 0 {
			t.Fatalf("gated = %v, outliers = %v; want gated, none", rc.Gated, rc.Outliers)
		}
	})

	t.Run("no majority flags nothing", func(t *testing.T) {
		// Two equal camps: no majority behavior, nothing to deviate from.
		p := mk(map[string][]float64{
			analyzer.PropWaitAtBarrier: {1, 1, 1, 1, 0, 0, 0, 0},
			analyzer.PropLateSender:    {0, 0, 0, 0, 1, 1, 1, 1},
		}, 8, 0.02)
		rc := similarity.ClusterRanks(p, similarity.RankOptions{})
		if len(rc.Outliers) != 0 {
			t.Fatalf("outliers = %v, want none (clusters %v)", rc.Outliers, rc.Clusters)
		}
	})

	t.Run("uniform pack flags nothing", func(t *testing.T) {
		p := mk(map[string][]float64{
			analyzer.PropWaitAtBarrier: {1, 1.02, 0.98, 1, 1.01, 0.99, 1, 1},
		}, 8, 0.02)
		rc := similarity.ClusterRanks(p, similarity.RankOptions{})
		if len(rc.Outliers) != 0 {
			t.Fatalf("outliers = %v, want none", rc.Outliers)
		}
	})
}
