package similarity

import (
	"fmt"

	"repro/internal/analyzer"
	"repro/internal/profile"
)

// archetypes are the property combinations the synthetic corpus draws
// from — a caricature of the real test-suite space: each synthetic
// profile is one archetype with randomized severities and wait shapes,
// so profiles of one archetype embed near each other and far from the
// rest.  Recall experiments need exactly that structure: queries with
// genuine near neighbors to miss.
var archetypes = [][]string{
	{analyzer.PropWaitAtBarrier},
	{analyzer.PropLateSender},
	{analyzer.PropLateBroadcast},
	{analyzer.PropWaitAtNxN},
	{analyzer.PropLateSender, analyzer.PropWaitAtBarrier},
	{analyzer.PropLateBroadcast, analyzer.PropEarlyReduce},
	{analyzer.PropWaitAtNxN, analyzer.PropWaitAtBarrier},
	{analyzer.PropOMPBarrier},
	{analyzer.PropOMPLoop, analyzer.PropOMPBarrier},
	{analyzer.PropLateSender, analyzer.PropLateReceiver},
	{analyzer.PropWaitAtBarrier, analyzer.PropLateBroadcast, analyzer.PropWaitAtNxN},
	{analyzer.PropOMPCritical},
}

// SyntheticProfile generates the i-th profile of a deterministic
// synthetic corpus: a pure function of (seed, i), cheap enough to
// build 10⁴–10⁶ of them without executing a single world.  The corpus
// drives the LSH recall experiments (experiments.Similarity, the
// similar-smoke CI job) and the index scale tests.
func SyntheticProfile(seed uint64, i int) *profile.Profile {
	const domSynth = 0x53594e // "SYN"
	u := func(tags ...uint64) float64 {
		key := append([]uint64{domSynth, seed, uint64(i)}, tags...)
		return float64(mix(key...)>>11) / (1 << 53)
	}
	props := archetypes[i%len(archetypes)]
	ranks := 4 + int(u(0)*28) // 4..31
	p := &profile.Profile{
		Schema:     profile.SchemaVersion,
		Experiment: fmt.Sprintf("synthetic_%d", i),
		Run:        profile.RunInfo{Clock: "virtual", Procs: ranks, Threads: 1},
		Duration:   1,
		TotalTime:  float64(ranks),
		Threshold:  0.005,
		Events:     ranks * 64,
	}
	for pi, name := range props {
		sev := 0.005 + 0.1*u(1, uint64(pi))
		prop := profile.Property{Name: name, Severity: sev, Significant: true}
		// Wait shape: a ramp with a randomized slope plus one randomized
		// heavy rank — continuous variation, so embeddings spread within
		// an archetype instead of collapsing into one LSH bucket.
		slope := u(2, uint64(pi))
		heavy := int(u(3, uint64(pi)) * float64(ranks))
		for r := 0; r < ranks; r++ {
			w := 0.01 + slope*float64(r)/float64(ranks) + 0.2*u(5, uint64(pi), uint64(r))
			if r == heavy {
				w += 1 + u(4, uint64(pi))
			}
			prop.Wait += w
			prop.Locations = append(prop.Locations,
				profile.LocationWait{Rank: int32(r), Thread: 0, Wait: w})
		}
		p.Properties = append(p.Properties, prop)
	}
	return p
}
