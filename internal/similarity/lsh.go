package similarity

import (
	"fmt"
	"math"
	"sort"
)

// Params fixes the geometry of an LSH index.  Indexes persisted with
// one geometry are unreadable under another — the on-disk log is
// schema-stamped with these values (index.go).
type Params struct {
	// Dims is the embedding dimensionality (Embed's Dims).
	Dims int `json:"dims"`
	// Bits is the signature width per table: each of the Bits random
	// hyperplanes contributes the sign of one dot product.  More bits
	// mean smaller buckets (fewer candidates, lower recall per table).
	Bits int `json:"bits"`
	// Tables is the number of independent hash tables OR-ed together at
	// query time.  More tables recover the recall the bits take away.
	Tables int `json:"tables"`
}

// DefaultParams is the geometry the persistent store index uses:
// 20-bit signatures keep buckets small at 10⁴–10⁶ profiles, and 12
// tables hold near-neighbor recall above 0.9 (measured ≈ 0.99 with
// < 8% of candidates probed on the 10⁴-profile synthetic corpus —
// see TestQueryRecallAtScale and EXPERIMENTS.md).
var DefaultParams = Params{Dims: Dims, Bits: 20, Tables: 12}

func (p Params) withDefaults() Params {
	if p.Dims <= 0 {
		p.Dims = Dims
	}
	if p.Bits <= 0 || p.Bits > 62 {
		p.Bits = DefaultParams.Bits
	}
	if p.Tables <= 0 {
		p.Tables = DefaultParams.Tables
	}
	return p
}

// Match is one query result: a stored profile hash and its exact cosine
// similarity to the query embedding (candidates are re-ranked exactly,
// only the candidate *generation* is approximate).
type Match struct {
	Hash       string  `json:"hash"`
	Similarity float64 `json:"similarity"`
}

// Index is an in-memory random-hyperplane LSH index over profile
// embeddings.  It is not safe for concurrent mutation; the persistent
// wrapper (PersistentIndex) adds locking.
type Index struct {
	params Params
	// planes holds Tables×Bits hyperplanes of Dims Gaussian components,
	// flattened; they are a pure function of (table, bit, dim), so every
	// process reconstructs the identical geometry from Params alone.
	planes []float64
	tables []map[uint64][]int32
	hashes []string
	vecs   []float32 // len(hashes)×Dims, flattened
	byHash map[string]int32
}

// domPlane tags the hyperplane draws of the deterministic generator.
const domPlane = 0x515348 // "QSH"

// NewIndex builds an empty index with the given geometry (zero fields
// take DefaultParams).
func NewIndex(p Params) *Index {
	p = p.withDefaults()
	ix := &Index{
		params: p,
		planes: make([]float64, p.Tables*p.Bits*p.Dims),
		tables: make([]map[uint64][]int32, p.Tables),
		byHash: make(map[string]int32),
	}
	for i := range ix.planes {
		ix.planes[i] = gauss(uint64(i))
	}
	for t := range ix.tables {
		ix.tables[t] = make(map[uint64][]int32)
	}
	return ix
}

// gauss draws a deterministic standard normal for plane component i
// (Box–Muller over the package mixer).
func gauss(i uint64) float64 {
	u1 := (float64(mix(domPlane, i, 1)>>11) + 0.5) / (1 << 53)
	u2 := (float64(mix(domPlane, i, 2)>>11) + 0.5) / (1 << 53)
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Params returns the index geometry.
func (ix *Index) Params() Params { return ix.params }

// Len returns the number of indexed profiles.
func (ix *Index) Len() int { return len(ix.hashes) }

// Has reports whether the profile hash is already indexed.
func (ix *Index) Has(hash string) bool {
	_, ok := ix.byHash[hash]
	return ok
}

// Add indexes one embedding under its profile hash.  Re-adding a known
// hash is a no-op (content addressing makes it idempotent).  The vector
// must have Params().Dims components.
func (ix *Index) Add(hash string, vec []float64) error {
	if len(vec) != ix.params.Dims {
		return fmt.Errorf("similarity: embedding has %d dims (index wants %d)", len(vec), ix.params.Dims)
	}
	if ix.Has(hash) {
		return nil
	}
	id := int32(len(ix.hashes))
	ix.hashes = append(ix.hashes, hash)
	for _, x := range vec {
		ix.vecs = append(ix.vecs, float32(x))
	}
	ix.byHash[hash] = id
	for t := 0; t < ix.params.Tables; t++ {
		sig := ix.signature(t, vec)
		ix.tables[t][sig] = append(ix.tables[t][sig], id)
	}
	return nil
}

// signature folds vec into table t's Bits-bit sign pattern.
func (ix *Index) signature(t int, vec []float64) uint64 {
	sig, _ := ix.signatureMargins(t, vec, false)
	return sig
}

// signatureMargins computes table t's signature and, when wantMargins
// is set, the bit indices ordered by how close their hyperplane dot
// product was to zero — the multiprobe flip order (the nearest-boundary
// bit is the likeliest to separate true neighbors).
func (ix *Index) signatureMargins(t int, vec []float64, wantMargins bool) (uint64, []int) {
	var sig uint64
	base := t * ix.params.Bits * ix.params.Dims
	var margins []float64
	if wantMargins {
		margins = make([]float64, ix.params.Bits)
	}
	for b := 0; b < ix.params.Bits; b++ {
		var dot float64
		row := ix.planes[base+b*ix.params.Dims : base+(b+1)*ix.params.Dims]
		for d, x := range vec {
			dot += row[d] * x
		}
		if dot >= 0 {
			sig |= 1 << uint(b)
		}
		if wantMargins {
			margins[b] = math.Abs(dot)
		}
	}
	if !wantMargins {
		return sig, nil
	}
	order := make([]int, ix.params.Bits)
	for b := range order {
		order[b] = b
	}
	sort.Slice(order, func(i, j int) bool {
		if margins[order[i]] != margins[order[j]] {
			return margins[order[i]] < margins[order[j]]
		}
		return order[i] < order[j] // tie-break on bit index: deterministic
	})
	return sig, order
}

// probeRounds caps adaptive multiprobe: at most this many one-bit flips
// per table beyond the base bucket.
const probeRounds = 8

// Query returns the k most similar stored profiles to the query
// embedding, plus the number of candidates probed (the work the index
// actually did; brute force would probe Len()).  Candidates are the
// union of the query's bucket in every table, re-ranked by exact cosine
// similarity and ordered (similarity desc, hash asc) so results are
// deterministic.  k ≤ 0 selects 10.
//
// When the base buckets yield fewer candidates than the probe floor
// (max(4k, 64)) — the small-corpus regime, where Bits-bit buckets are
// nearly singletons — the query multiprobes: per table it additionally
// opens the buckets reached by flipping one low-margin signature bit at
// a time, lowest margin first, until the floor is met or probeRounds
// flips are exhausted.  Large corpora meet the floor from the base
// buckets alone, so their probed fraction is unchanged.
func (ix *Index) Query(vec []float64, k int) ([]Match, int, error) {
	if len(vec) != ix.params.Dims {
		return nil, 0, fmt.Errorf("similarity: embedding has %d dims (index wants %d)", len(vec), ix.params.Dims)
	}
	floor := 4 * k
	if floor < 64 {
		floor = 64
	}
	seen := map[int32]struct{}{}
	sigs := make([]uint64, ix.params.Tables)
	var orders [][]int
	for t := 0; t < ix.params.Tables; t++ {
		sigs[t], _ = ix.signatureMargins(t, vec, false)
		for _, id := range ix.tables[t][sigs[t]] {
			seen[id] = struct{}{}
		}
	}
	for round := 0; round < probeRounds && len(seen) < floor && len(seen) < len(ix.hashes); round++ {
		if orders == nil {
			orders = make([][]int, ix.params.Tables)
			for t := range orders {
				_, orders[t] = ix.signatureMargins(t, vec, true)
			}
		}
		for t := 0; t < ix.params.Tables; t++ {
			flipped := sigs[t] ^ (1 << uint(orders[t][round]))
			for _, id := range ix.tables[t][flipped] {
				seen[id] = struct{}{}
			}
		}
	}
	matches := make([]Match, 0, len(seen))
	for id := range seen {
		matches = append(matches, Match{Hash: ix.hashes[id], Similarity: ix.sim(id, vec)})
	}
	return topK(matches, k), len(seen), nil
}

// Scan is the exact (brute-force) query over every stored profile — the
// ground truth the LSH recall experiments compare Query against, and
// the fallback a caller may prefer for tiny stores.
func (ix *Index) Scan(vec []float64, k int) ([]Match, error) {
	if len(vec) != ix.params.Dims {
		return nil, fmt.Errorf("similarity: embedding has %d dims (index wants %d)", len(vec), ix.params.Dims)
	}
	matches := make([]Match, 0, len(ix.hashes))
	for id := range ix.hashes {
		matches = append(matches, Match{Hash: ix.hashes[id], Similarity: ix.sim(int32(id), vec)})
	}
	return topK(matches, k), nil
}

// sim is the exact cosine similarity of stored entry id against vec.
func (ix *Index) sim(id int32, vec []float64) float64 {
	row := ix.vecs[int(id)*ix.params.Dims : (int(id)+1)*ix.params.Dims]
	stored := make([]float64, len(row))
	for i, x := range row {
		stored[i] = float64(x)
	}
	return cosineSim(stored, vec)
}

// topK orders matches (similarity desc, hash asc) and truncates to k.
func topK(matches []Match, k int) []Match {
	if k <= 0 {
		k = 10
	}
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].Similarity != matches[j].Similarity {
			return matches[i].Similarity > matches[j].Similarity
		}
		return matches[i].Hash < matches[j].Hash
	})
	if len(matches) > k {
		matches = matches[:k]
	}
	return matches
}
