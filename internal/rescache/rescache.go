// Package rescache is an on-disk, content-addressed memoization layer
// for analysis and conformance results: the piece that makes repeated
// sweeps free.  A fuzzing campaign, a calibration pass, or an engine
// differential recomputes byte-identical (case, engine, perturbation)
// work on every invocation; rescache stores each such result once, keyed
// by a content hash over everything the result depends on — the full
// case, the effective execution engine and its version, the perturbation
// profile, the oracle options, and the profile schema — so a warm run
// skips run+trace+analyze entirely while remaining byte-identical to a
// cold one (the cached value IS the cold value, replayed).
//
// Layout follows the regress.Store conventions: immutable JSON entries
// sharded git-style under objects/<first-two-hex>/<key>.json, written
// atomically (temp + rename), with keys validated by regress.ValidHash
// before ever touching a path.  Every entry additionally records the
// environment it was computed under (engine versions, profile schema);
// Get refuses to serve an entry whose recorded environment no longer
// matches the running binary, and GC deletes such stale entries.
//
// Invalidation rules: the environment is the *full* set of versioned
// components, not just the one the entry used — bumping any engine
// version or the profile schema invalidates every entry.  That is
// deliberately conservative: correctness of a memoized oracle verdict is
// worth a cold sweep, and the versions move rarely (see the bump rules
// in internal/mpi/engine.go).
//
// A Store is safe for concurrent use by multiple goroutines and by
// multiple cooperating processes (the campaign worker fan-out): entries
// are immutable, content-addressed, and written atomically, so
// concurrent writers of the same key race benignly.
package rescache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/internal/mpi"
	"repro/internal/profile"
	"repro/internal/regress"
)

// DefaultDir is the conventional cache location inside a repository,
// next to the regression store.
const DefaultDir = ".ats/rescache"

// EntrySchema identifies the on-disk entry format.
const EntrySchema = 1

// Env is the versioned-component environment an entry was computed
// under.  Entries are served only while the recorded environment matches
// CurrentEnv exactly.
type Env map[string]int

// CurrentEnv returns the running binary's environment: both execution
// engines' versions plus the profile wire schema.
func CurrentEnv() Env {
	return Env{
		"engine/event":     mpi.EngineEvent.Version(),
		"engine/goroutine": mpi.EngineGoroutine.Version(),
		"profile/schema":   profile.SchemaVersion,
	}
}

// equal reports whether two environments record identical versions.
func (e Env) equal(o Env) bool {
	if len(e) != len(o) {
		return false
	}
	for k, v := range e {
		ov, ok := o[k]
		if !ok || ov != v {
			return false
		}
	}
	return true
}

// Entry is the on-disk form of one cached result.
type Entry struct {
	Schema int             `json:"schema"`
	Key    string          `json:"key"`
	Env    Env             `json:"env"`
	Value  json.RawMessage `json:"value"`
}

// Stats counts cache traffic since the store was opened.
type Stats struct {
	Hits, Misses, Puts int64
}

// Store is an on-disk result cache.  It implements campaign.Cache.
type Store struct {
	dir                string
	hits, misses, puts atomic.Int64
}

// Open opens (creating if necessary) the cache rooted at dir.  An empty
// dir selects DefaultDir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		dir = DefaultDir
	}
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("rescache: open: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the cache root.
func (s *Store) Dir() string { return s.dir }

// Stats returns the hit/miss/put counters accumulated on this handle.
func (s *Store) Stats() Stats {
	return Stats{Hits: s.hits.Load(), Misses: s.misses.Load(), Puts: s.puts.Load()}
}

// entryPath shards entries exactly like regress objects: two hex
// characters of fan-out so million-entry caches never concentrate one
// directory.
func (s *Store) entryPath(key string) string {
	return filepath.Join(s.dir, "objects", key[:2], key+".json")
}

// Get returns the cached value for key, or ok=false on a miss.  Absent
// files, undecodable entries, key echoes that do not match (a corrupted
// or hand-edited file), and entries whose recorded environment differs
// from the running binary all count as misses — the caller recomputes
// and the subsequent Put overwrites the bad entry.
func (s *Store) Get(key string) ([]byte, bool) {
	e, ok := s.load(key)
	if !ok || !e.Env.equal(CurrentEnv()) {
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return e.Value, true
}

// load reads and structurally validates one entry, without the
// environment check (GC needs to see stale entries).
func (s *Store) load(key string) (*Entry, bool) {
	if !regress.ValidHash(key) {
		return nil, false
	}
	blob, err := os.ReadFile(s.entryPath(key))
	if err != nil {
		return nil, false
	}
	var e Entry
	if json.Unmarshal(blob, &e) != nil || e.Schema != EntrySchema || e.Key != key {
		return nil, false
	}
	return &e, true
}

// Put stores value under key, stamped with the current environment.  The
// write is atomic (temp + rename), so a crashed writer never leaves a
// truncated entry, and concurrent writers of the same key — equal by
// content addressing — race benignly.
func (s *Store) Put(key string, value []byte) error {
	if !regress.ValidHash(key) {
		return fmt.Errorf("rescache: put %q: not a content key", key)
	}
	e := Entry{Schema: EntrySchema, Key: key, Env: CurrentEnv(), Value: value}
	blob, err := json.Marshal(&e)
	if err != nil {
		return fmt.Errorf("rescache: put %s: %w", key[:12], err)
	}
	path := s.entryPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("rescache: put: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+key[:12]+"-*")
	if err != nil {
		return fmt.Errorf("rescache: put: %w", err)
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("rescache: put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("rescache: put: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("rescache: put: %w", err)
	}
	s.puts.Add(1)
	return nil
}

// GCResult summarizes one GC pass.
type GCResult struct {
	// Scanned is the number of entry files examined.
	Scanned int
	// Removed counts entries deleted: stale environment, undecodable,
	// or wrong schema.
	Removed int
	// Kept counts entries still valid for the running binary.
	Kept int
}

// GC walks the cache and deletes every entry the running binary would
// refuse to serve: entries recorded under a different engine version or
// profile schema, and structurally invalid (corrupt, truncated,
// mis-keyed) files.  Orphaned temp files from crashed writers are
// removed too.
func (s *Store) GC() (GCResult, error) {
	var res GCResult
	env := CurrentEnv()
	shards, err := os.ReadDir(filepath.Join(s.dir, "objects"))
	if err != nil {
		if os.IsNotExist(err) {
			return res, nil
		}
		return res, fmt.Errorf("rescache: gc: %w", err)
	}
	for _, shard := range shards {
		if !shard.IsDir() {
			continue
		}
		dir := filepath.Join(s.dir, "objects", shard.Name())
		files, err := os.ReadDir(dir)
		if err != nil {
			return res, fmt.Errorf("rescache: gc: %w", err)
		}
		for _, f := range files {
			if f.IsDir() {
				continue
			}
			path := filepath.Join(dir, f.Name())
			name := f.Name()
			if len(name) > 0 && name[0] == '.' {
				// Orphaned temp file from a crashed writer.
				os.Remove(path)
				continue
			}
			res.Scanned++
			key := trimJSON(name)
			e, ok := s.loadFile(path, key)
			if ok && e.Env.equal(env) {
				res.Kept++
				continue
			}
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				return res, fmt.Errorf("rescache: gc: %w", err)
			}
			res.Removed++
		}
	}
	return res, nil
}

// loadFile decodes one entry file for GC, validating the key echo.
func (s *Store) loadFile(path, key string) (*Entry, bool) {
	if !regress.ValidHash(key) {
		return nil, false
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var e Entry
	if json.Unmarshal(blob, &e) != nil || e.Schema != EntrySchema || e.Key != key {
		return nil, false
	}
	return &e, true
}

// trimJSON strips the ".json" suffix of an entry file name.
func trimJSON(name string) string {
	const ext = ".json"
	if len(name) > len(ext) && name[len(name)-len(ext):] == ext {
		return name[:len(name)-len(ext)]
	}
	return name
}

// Len counts the valid, currently servable entries in the store (a full
// walk; for stats and smoke tests, not hot paths).
func (s *Store) Len() (int, error) {
	n := 0
	env := CurrentEnv()
	shards, err := os.ReadDir(filepath.Join(s.dir, "objects"))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	for _, shard := range shards {
		if !shard.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, "objects", shard.Name()))
		if err != nil {
			return 0, err
		}
		for _, f := range files {
			if f.IsDir() || f.Name()[0] == '.' {
				continue
			}
			if e, ok := s.loadFile(filepath.Join(s.dir, "objects", shard.Name(), f.Name()), trimJSON(f.Name())); ok && e.Env.equal(env) {
				n++
			}
		}
	}
	return n, nil
}

// Key derives the content-addressed cache key for any JSON-marshalable
// key document: the SHA-256 of its canonical encoding (Go's json.Marshal
// sorts map keys and preserves struct field order, so equal documents
// hash equally across processes and runs).  Callers must include every
// input the cached result depends on — including the engine identity and
// version — in the document; Key itself adds nothing.
func Key(doc any) (string, error) {
	blob, err := json.Marshal(doc)
	if err != nil {
		return "", fmt.Errorf("rescache: key: %w", err)
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:]), nil
}
