package rescache

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func open(t *testing.T) *Store {
	t.Helper()
	s, err := Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustKey(t *testing.T, doc any) string {
	t.Helper()
	k, err := Key(doc)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestPutGetRoundtrip(t *testing.T) {
	s := open(t)
	key := mustKey(t, map[string]any{"kind": "test", "n": 1})
	val := []byte(`{"answer":42}`)
	if _, ok := s.Get(key); ok {
		t.Fatal("empty store served a hit")
	}
	if err := s.Put(key, val); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, val) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, val)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v; want 1 hit, 1 miss, 1 put", st)
	}
	// A second handle on the same directory sees the entry (cross-process
	// sharing is the whole point of the on-disk store).
	s2, err := Open(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Get(key); !ok || !bytes.Equal(got, val) {
		t.Fatal("fresh handle missed a persisted entry")
	}
}

func TestKeyIsDeterministicAndInputSensitive(t *testing.T) {
	type doc struct {
		Kind string `json:"kind"`
		N    int    `json:"n"`
	}
	a1 := mustKey(t, doc{Kind: "k", N: 1})
	a2 := mustKey(t, doc{Kind: "k", N: 1})
	b := mustKey(t, doc{Kind: "k", N: 2})
	if a1 != a2 {
		t.Fatalf("equal documents hashed differently: %s vs %s", a1, a2)
	}
	if a1 == b {
		t.Fatal("different documents collided")
	}
	if len(a1) != 64 || strings.ToLower(a1) != a1 {
		t.Fatalf("key is not lowercase sha256 hex: %q", a1)
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	s := open(t)
	for _, bad := range []string{"", "short", strings.Repeat("Z", 64), "../../../../etc/passwd"} {
		if _, ok := s.Get(bad); ok {
			t.Fatalf("Get(%q) served a hit", bad)
		}
		if err := s.Put(bad, []byte("x")); err == nil {
			t.Fatalf("Put(%q) accepted a non-content key", bad)
		}
	}
}

// rewriteEnv rewrites key's entry file with a modified environment — the
// on-disk state after an engine version bump (old binary wrote it, new
// binary reads it).
func rewriteEnv(t *testing.T, s *Store, key string, mutate func(Env)) {
	t.Helper()
	path := s.entryPath(key)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var e Entry
	if err := json.Unmarshal(blob, &e); err != nil {
		t.Fatal(err)
	}
	mutate(e.Env)
	out, err := json.Marshal(&e)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestStaleEnvironmentNeverServed is the invalidation contract: an entry
// recorded under any other engine version or profile schema must be a
// miss, never a hit — a stale oracle verdict served as fresh would
// silently mask an engine behavior change.
func TestStaleEnvironmentNeverServed(t *testing.T) {
	mutations := map[string]func(Env){
		"engine_bump":   func(e Env) { e["engine/event"]++ },
		"schema_bump":   func(e Env) { e["profile/schema"]++ },
		"component_add": func(e Env) { e["engine/new"] = 1 },
		"component_del": func(e Env) { delete(e, "engine/goroutine") },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			s := open(t)
			key := mustKey(t, map[string]string{"case": name})
			if err := s.Put(key, []byte(`"v"`)); err != nil {
				t.Fatal(err)
			}
			rewriteEnv(t, s, key, mutate)
			if _, ok := s.Get(key); ok {
				t.Fatal("stale-environment entry was served")
			}
			// GC must remove it.
			res, err := s.GC()
			if err != nil {
				t.Fatal(err)
			}
			if res.Scanned != 1 || res.Removed != 1 || res.Kept != 0 {
				t.Fatalf("GC = %+v; want 1 scanned, 1 removed", res)
			}
			if _, err := os.Stat(s.entryPath(key)); !os.IsNotExist(err) {
				t.Fatal("GC left the stale entry file behind")
			}
		})
	}
}

func TestCorruptEntriesAreMissesAndGCd(t *testing.T) {
	s := open(t)
	good := mustKey(t, "good")
	if err := s.Put(good, []byte(`1`)); err != nil {
		t.Fatal(err)
	}

	// Truncated JSON.
	trunc := mustKey(t, "trunc")
	if err := s.Put(trunc, []byte(`2`)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.entryPath(trunc), []byte(`{"schema":1,`), 0o644); err != nil {
		t.Fatal(err)
	}

	// Entry whose key echo does not match its file name (renamed or
	// hand-edited).
	miskeyed := mustKey(t, "miskeyed")
	if err := s.Put(miskeyed, []byte(`3`)); err != nil {
		t.Fatal(err)
	}
	blob, _ := os.ReadFile(s.entryPath(good))
	if err := os.WriteFile(s.entryPath(miskeyed), blob, 0o644); err != nil {
		t.Fatal(err)
	}

	// Orphaned temp file from a crashed writer.
	tempOrphan := filepath.Join(filepath.Dir(s.entryPath(good)), "."+good[:12]+"-orphan")
	if err := os.WriteFile(tempOrphan, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Get(trunc); ok {
		t.Fatal("truncated entry served")
	}
	if _, ok := s.Get(miskeyed); ok {
		t.Fatal("mis-keyed entry served")
	}
	if _, ok := s.Get(good); !ok {
		t.Fatal("good entry lost")
	}

	res, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed != 2 || res.Kept != 1 {
		t.Fatalf("GC = %+v; want 2 removed, 1 kept", res)
	}
	if _, err := os.Stat(tempOrphan); !os.IsNotExist(err) {
		t.Fatal("GC left the orphaned temp file")
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want 1", n, err)
	}
}

func TestPutOverwritesCorruptEntry(t *testing.T) {
	s := open(t)
	key := mustKey(t, "overwrite")
	if err := s.Put(key, []byte(`"first"`)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.entryPath(key), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("garbage entry served")
	}
	if err := s.Put(key, []byte(`"second"`)); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || string(got) != `"second"` {
		t.Fatalf("after overwrite: %q, %v", got, ok)
	}
}

func TestOpenEmptyDirUsesDefault(t *testing.T) {
	// Open("") must select DefaultDir; run inside a temp working directory
	// so the test never writes into the repository.
	t.Chdir(t.TempDir())
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	if s.Dir() != DefaultDir {
		t.Fatalf("Dir = %q; want %q", s.Dir(), DefaultDir)
	}
}

func TestGCOnEmptyStore(t *testing.T) {
	s := open(t)
	res, err := s.GC()
	if err != nil || res.Scanned != 0 {
		t.Fatalf("GC on empty store = %+v, %v", res, err)
	}
	if n, err := s.Len(); err != nil || n != 0 {
		t.Fatalf("Len on empty store = %d, %v", n, err)
	}
}
