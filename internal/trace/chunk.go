package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Chunked trace spool format ("ATSC") — the on-disk shape of a streaming
// run.  Where an ATS1 file is one fully merged trace, an ATSC file is a
// multiplexed spool of per-location chunk frames appended while the run
// executes, so no executor ever holds more than one chunk of events in
// memory.  A single file carries every location (one file per rank would
// exhaust file-descriptor limits at large rank counts); an index footer
// lets readers walk each location's frames independently via pread.
//
//	header   magic "ATSC", version byte (1)
//	frames   frame*
//	frame    tag 0x01, uvarint bodyLen, body
//	         tag 0x00 ends the frame section
//	body     varint rank, varint thread            (owning location)
//	         uvarint nNewRegions, nNewRegions × (uvarint len, bytes)
//	         uvarint nNewPaths,  nNewPaths × (uvarint parent, uvarint region)
//	         uvarint nEvents,    nEvents × event   (writeEvent encoding)
//	index    uvarint nStreams, nStreams × stream   (sorted rank-major)
//	stream   varint rank, varint thread, uvarint totalEvents,
//	         uvarint nFrames, nFrames × (uvarint bodyOff, uvarint bodyLen)
//	trailer  8-byte LE index offset, magic "ATSX"
//
// Region and path ids inside a frame are local to the owning location's
// buffer; each frame carries the delta of its intern tables since the
// previous frame, so a reader reconstructs the tables by applying frames
// in order (parents always precede children).  Every count is validated
// against the enclosing byte range before allocation, following the ATS1
// hardening rules.  doc/FORMATS.md is the normative spec.

var (
	chunkMagic        = [4]byte{'A', 'T', 'S', 'C'}
	chunkTrailerMagic = [4]byte{'A', 'T', 'S', 'X'}
)

const (
	chunkVersion    = 1
	chunkHeaderLen  = 5  // magic + version
	chunkTrailerLen = 12 // index offset + trailer magic
	chunkTagEnd     = 0x00
	chunkTagFrame   = 0x01
	// minFrameBodyBytes is the smallest legal frame body: two location
	// varints plus three zero counts.
	minFrameBodyBytes = 5
	// minStreamIndexBytes bounds the per-stream index entry size: two
	// location varints plus two counts.
	minStreamIndexBytes = 4
)

// DefaultSpillEvents is the per-location event count that triggers a chunk
// flush when a Buffer is attached to a Sink.  It bounds run-phase memory
// at roughly locations × DefaultSpillEvents events while keeping frames
// large enough that the table-delta and envelope overhead stays marginal.
const DefaultSpillEvents = 64

// Sink consumes per-location event buffers while a run executes, in place
// of materializing every event in memory.  The runtime attaches each
// buffer before its executor starts recording and finishes it exactly once
// after the executor has stopped; Attach and Finish may be called from
// different goroutines (one per executor) and must be safe to interleave.
//
// ChunkWriter is the canonical implementation.  Errors inside a sink are
// sticky: recording continues (events are dropped) and the first error is
// reported by Finish and by the writer's Close.
type Sink interface {
	// Attach registers b with the sink and arranges for its events to be
	// spilled as they accumulate.  Attaching two buffers with the same
	// location is an error (reported at Finish/Close).
	Attach(b *Buffer)
	// Finish flushes b's remaining events and intern-table deltas and
	// detaches it.  The buffer's executor must have stopped recording.
	Finish(b *Buffer) error
}

// chunkStream is the writer-side state of one location's frame sequence.
type chunkStream struct {
	regions  int // intern-table entries already written
	paths    int
	events   uint64
	frames   []frameRef
	finished bool
}

// frameRef locates one frame body inside the spool file.
type frameRef struct {
	off, len int64
}

// ChunkWriter spools per-location trace buffers into a single ATSC file.
// It implements Sink.  All methods are safe for concurrent use; a shared
// buffered writer serializes frame appends.  Like the ATS1 writers, the
// spool is written to a temporary file and renamed into place on Close, so
// a crash never leaves a truncated spool at the target path.
type ChunkWriter struct {
	mu        sync.Mutex
	path, tmp string
	f         *os.File
	bw        *bufio.Writer
	off       int64
	threshold int
	streams   map[Location]*chunkStream
	scratch   bytes.Buffer
	err       error
	closed    bool
}

// NewChunkWriter creates a spool that will land at path on Close.
// spillEvents is the per-location event count that triggers a frame flush;
// values <= 0 select DefaultSpillEvents.
func NewChunkWriter(path string, spillEvents int) (*ChunkWriter, error) {
	if spillEvents <= 0 {
		spillEvents = DefaultSpillEvents
	}
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return nil, err
	}
	w := &ChunkWriter{
		path:      path,
		tmp:       f.Name(),
		f:         f,
		bw:        bufio.NewWriterSize(f, 1<<16),
		off:       chunkHeaderLen,
		threshold: spillEvents,
		streams:   make(map[Location]*chunkStream),
	}
	w.bw.Write(chunkMagic[:]) // bufio errors are sticky; surfaced at Close
	w.bw.WriteByte(chunkVersion)
	return w, nil
}

// fail records the first error; later operations keep draining buffers so
// executors are never blocked by a broken spool.
func (w *ChunkWriter) fail(err error) {
	if w.err == nil {
		w.err = err
	}
}

// Err returns the sticky error, if any.
func (w *ChunkWriter) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Attach implements Sink.
func (w *ChunkWriter) Attach(b *Buffer) {
	if b == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		w.fail(fmt.Errorf("trace: chunk writer: Attach(%v) after Close", b.Loc))
		return
	}
	if _, dup := w.streams[b.Loc]; dup {
		w.fail(fmt.Errorf("trace: chunk writer: duplicate stream for location %v", b.Loc))
		return
	}
	w.streams[b.Loc] = &chunkStream{paths: 1} // the path root is implicit
	b.sink = w
	b.spillAt = w.threshold
}

// spill flushes b's pending events as one frame.  Called by the buffer's
// owning goroutine whenever the slab reaches the spill threshold.
func (w *ChunkWriter) spill(b *Buffer) {
	w.mu.Lock()
	w.spillLocked(b)
	w.mu.Unlock()
	// Always drop the events, even on a sticky error: the point of
	// streaming is bounding memory, and the run's result is discarded
	// anyway once Finish/Close report the error.
	b.events = b.events[:0]
}

func (w *ChunkWriter) spillLocked(b *Buffer) {
	s := w.streams[b.Loc]
	if s == nil || s.finished {
		w.fail(fmt.Errorf("trace: chunk writer: spill from unattached buffer %v", b.Loc))
		return
	}
	if w.err != nil || w.closed {
		return
	}
	nr := len(b.regions) - s.regions
	np := len(b.pathParent) - s.paths
	ne := len(b.events)
	if nr == 0 && np == 0 && ne == 0 {
		return
	}
	sc := &w.scratch
	sc.Reset()
	// Writes into a bytes.Buffer cannot fail.
	writeVarint(sc, int64(b.Loc.Rank))
	writeVarint(sc, int64(b.Loc.Thread))
	writeUvarint(sc, uint64(nr))
	for _, name := range b.regions[s.regions:] {
		writeString(sc, name)
	}
	writeUvarint(sc, uint64(np))
	for i := s.paths; i < len(b.pathParent); i++ {
		writeUvarint(sc, uint64(b.pathParent[i]))
		writeUvarint(sc, uint64(b.pathRegion[i]))
	}
	writeUvarint(sc, uint64(ne))
	for i := range b.events {
		writeEvent(sc, &b.events[i])
	}
	var hdr [1 + binary.MaxVarintLen64]byte
	hdr[0] = chunkTagFrame
	n := 1 + binary.PutUvarint(hdr[1:], uint64(sc.Len()))
	if _, err := w.bw.Write(hdr[:n]); err != nil {
		w.fail(err)
		return
	}
	if _, err := w.bw.Write(sc.Bytes()); err != nil {
		w.fail(err)
		return
	}
	s.frames = append(s.frames, frameRef{off: w.off + int64(n), len: int64(sc.Len())})
	w.off += int64(n) + int64(sc.Len())
	s.regions += nr
	s.paths += np
	s.events += uint64(ne)
}

// Finish implements Sink: it flushes b's tail frame, marks the stream
// complete, and detaches the buffer.
func (w *ChunkWriter) Finish(b *Buffer) error {
	if b == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	s := w.streams[b.Loc]
	if s == nil {
		err := fmt.Errorf("trace: chunk writer: Finish on unattached buffer %v", b.Loc)
		w.fail(err)
		return err
	}
	if !s.finished {
		w.spillLocked(b)
		s.finished = true
	}
	b.events = b.events[:0]
	b.sink = nil
	b.spillAt = 0
	return w.err
}

// Close ends the frame section, writes the index and trailer, and renames
// the spool into place.  Every attached buffer must have been finished.
// On error (including any sticky spill error) the temporary file is
// removed and nothing lands at the target path.
func (w *ChunkWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return w.err
	}
	w.closed = true
	for loc, s := range w.streams {
		if !s.finished {
			w.fail(fmt.Errorf("trace: chunk writer: Close with unfinished stream %v", loc))
			break
		}
	}
	if w.err != nil {
		w.f.Close()
		os.Remove(w.tmp)
		return w.err
	}
	w.bw.WriteByte(chunkTagEnd)
	w.off++
	indexOff := w.off
	locs := make([]Location, 0, len(w.streams))
	for loc := range w.streams {
		locs = append(locs, loc)
	}
	sort.Slice(locs, func(i, j int) bool { return locs[i].less(locs[j]) })
	writeUvarint(w.bw, uint64(len(locs)))
	for _, loc := range locs {
		s := w.streams[loc]
		writeVarint(w.bw, int64(loc.Rank))
		writeVarint(w.bw, int64(loc.Thread))
		writeUvarint(w.bw, s.events)
		writeUvarint(w.bw, uint64(len(s.frames)))
		for _, fr := range s.frames {
			writeUvarint(w.bw, uint64(fr.off))
			writeUvarint(w.bw, uint64(fr.len))
		}
	}
	var tail [chunkTrailerLen]byte
	binary.LittleEndian.PutUint64(tail[:8], uint64(indexOff))
	copy(tail[8:], chunkTrailerMagic[:])
	w.bw.Write(tail[:])
	if err := w.bw.Flush(); err != nil {
		w.fail(err)
		w.f.Close()
		os.Remove(w.tmp)
		return w.err
	}
	if err := w.f.Close(); err != nil {
		w.fail(err)
		os.Remove(w.tmp)
		return w.err
	}
	if err := os.Rename(w.tmp, w.path); err != nil {
		w.fail(err)
		os.Remove(w.tmp)
		return w.err
	}
	return nil
}

// Abort discards the spool without landing anything at the target path.
// Safe to call at any time (including after Close, where it is a no-op);
// buffers still attached keep draining into the void.
func (w *ChunkWriter) Abort() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	w.closed = true
	w.fail(errors.New("trace: chunk writer aborted"))
	w.f.Close()
	os.Remove(w.tmp)
}

// chunkIndexEntry is the reader-side index of one location's frames.
type chunkIndexEntry struct {
	loc    Location
	events uint64
	frames []frameRef
}

// ChunkReader opens an ATSC spool for streaming.  Per-location cursors
// read frames via ReadAt on the shared file handle, so a k-way merge over
// all locations holds at most one decoded frame per location.  Obtain a
// merged event stream with NewStream.
type ChunkReader struct {
	f        *os.File
	size     int64
	indexOff int64
	lim      Limits
	streams  []chunkIndexEntry
}

// OpenChunkFile opens and validates the spool at path: magic, version,
// trailer, and every index entry (locations sorted and distinct, frame
// ranges inside the frame section, counts plausible for the file size).
func OpenChunkFile(path string) (*ChunkReader, error) {
	return OpenChunkFileLimited(path, Limits{})
}

// OpenChunkFileLimited is OpenChunkFile with additional policy caps for
// untrusted network ingest (see Limits); the zero Limits is exactly
// OpenChunkFile.
func OpenChunkFileLimited(path string, lim Limits) (*ChunkReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := newChunkReader(f, lim)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

func newChunkReader(f *os.File, lim Limits) (*ChunkReader, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < chunkHeaderLen+1+chunkTrailerLen {
		return nil, fmt.Errorf("trace: chunk file too short (%d bytes)", size)
	}
	var hdr [chunkHeaderLen]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("trace: reading chunk header: %w", err)
	}
	if [4]byte(hdr[:4]) != chunkMagic {
		return nil, fmt.Errorf("trace: bad chunk magic %q", hdr[:4])
	}
	if hdr[4] != chunkVersion {
		return nil, fmt.Errorf("trace: unsupported chunk version %d (want %d)", hdr[4], chunkVersion)
	}
	var tail [chunkTrailerLen]byte
	if _, err := f.ReadAt(tail[:], size-chunkTrailerLen); err != nil {
		return nil, fmt.Errorf("trace: reading chunk trailer: %w", err)
	}
	if [4]byte(tail[8:]) != chunkTrailerMagic {
		return nil, fmt.Errorf("trace: bad chunk trailer magic %q", tail[8:])
	}
	indexOff := int64(binary.LittleEndian.Uint64(tail[:8]))
	if indexOff < chunkHeaderLen+1 || indexOff > size-chunkTrailerLen {
		return nil, fmt.Errorf("trace: chunk index offset %d outside file", indexOff)
	}
	idx := make([]byte, size-chunkTrailerLen-indexOff)
	if _, err := f.ReadAt(idx, indexOff); err != nil {
		return nil, fmt.Errorf("trace: reading chunk index: %w", err)
	}
	r := &ChunkReader{f: f, size: size, indexOff: indexOff, lim: lim}
	if err := r.parseIndex(idx); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *ChunkReader) parseIndex(idx []byte) error {
	br := bytes.NewReader(idx)
	nStreams, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("trace: chunk index: %w", err)
	}
	if err := checkCount(nStreams, minStreamIndexBytes, int64(len(idx)), "chunk stream"); err != nil {
		return err
	}
	if err := r.lim.checkLocations(nStreams); err != nil {
		return err
	}
	bodySize := r.indexOff - chunkHeaderLen
	var totalEvents uint64
	r.streams = make([]chunkIndexEntry, 0, sliceCap(nStreams))
	for i := uint64(0); i < nStreams; i++ {
		rank, err := binary.ReadVarint(br)
		if err != nil {
			return fmt.Errorf("trace: chunk index stream %d: %w", i, err)
		}
		thread, err := binary.ReadVarint(br)
		if err != nil {
			return fmt.Errorf("trace: chunk index stream %d: %w", i, err)
		}
		if rank < math.MinInt32 || rank > math.MaxInt32 || thread < math.MinInt32 || thread > math.MaxInt32 {
			return fmt.Errorf("trace: chunk index stream %d: location out of range", i)
		}
		loc := Location{Rank: int32(rank), Thread: int32(thread)}
		if n := len(r.streams); n > 0 && !r.streams[n-1].loc.less(loc) {
			return fmt.Errorf("trace: chunk index: locations unsorted or duplicated at %v", loc)
		}
		events, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("trace: chunk index stream %d: %w", i, err)
		}
		totalEvents += events
		if err := checkCount(totalEvents, minEventBytes, bodySize, "chunk event"); err != nil {
			return err
		}
		if err := r.lim.checkEvents(totalEvents); err != nil {
			return err
		}
		nFrames, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("trace: chunk index stream %d: %w", i, err)
		}
		if err := checkCount(nFrames, minFrameBodyBytes+2, bodySize, "chunk frame"); err != nil {
			return err
		}
		frames := make([]frameRef, 0, sliceCap(nFrames))
		for j := uint64(0); j < nFrames; j++ {
			off, err := binary.ReadUvarint(br)
			if err != nil {
				return fmt.Errorf("trace: chunk index stream %d frame %d: %w", i, j, err)
			}
			ln, err := binary.ReadUvarint(br)
			if err != nil {
				return fmt.Errorf("trace: chunk index stream %d frame %d: %w", i, j, err)
			}
			if off < chunkHeaderLen || ln < minFrameBodyBytes ||
				off > uint64(r.indexOff) || ln > uint64(r.indexOff) || off+ln > uint64(r.indexOff) {
				return fmt.Errorf("trace: chunk index stream %d frame %d: range [%d,%d) outside frame section", i, j, off, off+ln)
			}
			if err := r.lim.checkFrame(int64(ln)); err != nil {
				return fmt.Errorf("chunk index stream %d frame %d: %w", i, j, err)
			}
			frames = append(frames, frameRef{off: int64(off), len: int64(ln)})
		}
		r.streams = append(r.streams, chunkIndexEntry{loc: loc, events: events, frames: frames})
	}
	if br.Len() != 0 {
		return fmt.Errorf("trace: chunk index: %d trailing bytes", br.Len())
	}
	return nil
}

// Locations returns the spool's locations in rank-major order.
func (r *ChunkReader) Locations() []Location {
	locs := make([]Location, len(r.streams))
	for i := range r.streams {
		locs[i] = r.streams[i].loc
	}
	return locs
}

// Events returns the total event count recorded in the index.
func (r *ChunkReader) Events() int {
	var n uint64
	for i := range r.streams {
		n += r.streams[i].events
	}
	return int(n)
}

// Close releases the underlying file.
func (r *ChunkReader) Close() error { return r.f.Close() }

// chunkCursor iterates one location's frames, maintaining the location's
// locally-interned region and path tables across frames.  The decoded
// event slice and read buffer are reused from frame to frame, so a merge
// over many cursors holds one frame per location at a time.
type chunkCursor struct {
	r          *ChunkReader
	ent        *chunkIndexEntry
	fi         int
	delivered  uint64
	regions    []string
	pathParent []PathID
	pathRegion []RegionID
	events     []Event
	buf        []byte
}

func (r *ChunkReader) cursors() []*chunkCursor {
	cs := make([]*chunkCursor, len(r.streams))
	for i := range r.streams {
		cs[i] = &chunkCursor{
			r:          r,
			ent:        &r.streams[i],
			pathParent: []PathID{-1},
			pathRegion: []RegionID{-1},
		}
	}
	return cs
}

func (c *chunkCursor) loc() Location { return c.ent.loc }

func (c *chunkCursor) tables() (regions []string, pathParent []PathID, pathRegion []RegionID) {
	return c.regions, c.pathParent, c.pathRegion
}

// next returns the next frame's events (locally interned; valid until the
// following call), or (nil, nil) once the stream is exhausted.
func (c *chunkCursor) next() ([]Event, error) {
	for {
		if c.fi == len(c.ent.frames) {
			if c.delivered != c.ent.events {
				return nil, fmt.Errorf("trace: chunk stream %v: index records %d events, frames hold %d",
					c.ent.loc, c.ent.events, c.delivered)
			}
			return nil, nil
		}
		fr := c.ent.frames[c.fi]
		c.fi++
		if int64(cap(c.buf)) < fr.len {
			c.buf = make([]byte, fr.len)
		}
		buf := c.buf[:fr.len]
		if _, err := c.r.f.ReadAt(buf, fr.off); err != nil {
			return nil, fmt.Errorf("trace: chunk stream %v: reading frame at %d: %w", c.ent.loc, fr.off, err)
		}
		evs, err := c.parseFrame(buf)
		if err != nil {
			return nil, err
		}
		c.delivered += uint64(len(evs))
		if len(evs) > 0 {
			return evs, nil
		}
	}
}

func (c *chunkCursor) parseFrame(buf []byte) ([]Event, error) {
	corrupt := func(format string, args ...any) error {
		return fmt.Errorf("trace: chunk stream %v: corrupt frame: %s", c.ent.loc, fmt.Sprintf(format, args...))
	}
	br := bytes.NewReader(buf)
	rank, err := binary.ReadVarint(br)
	if err != nil {
		return nil, corrupt("location: %v", err)
	}
	thread, err := binary.ReadVarint(br)
	if err != nil {
		return nil, corrupt("location: %v", err)
	}
	if rank != int64(c.ent.loc.Rank) || thread != int64(c.ent.loc.Thread) {
		return nil, corrupt("frame belongs to %d.%d", rank, thread)
	}
	nr, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, corrupt("region count: %v", err)
	}
	if err := checkCount(nr, minRegionBytes, int64(br.Len()), "chunk-frame region"); err != nil {
		return nil, err
	}
	for i := uint64(0); i < nr; i++ {
		s, err := readString(br)
		if err != nil {
			return nil, corrupt("region %d: %v", i, err)
		}
		c.regions = append(c.regions, s)
	}
	np, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, corrupt("path count: %v", err)
	}
	if err := checkCount(np, minPathBytes, int64(br.Len()), "chunk-frame path"); err != nil {
		return nil, err
	}
	for i := uint64(0); i < np; i++ {
		parent, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, corrupt("path %d: %v", i, err)
		}
		region, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, corrupt("path %d: %v", i, err)
		}
		if parent >= uint64(len(c.pathParent)) || region >= uint64(len(c.regions)) {
			return nil, corrupt("path table entry %d references parent %d / region %d", i, parent, region)
		}
		c.pathParent = append(c.pathParent, PathID(parent))
		c.pathRegion = append(c.pathRegion, RegionID(region))
	}
	ne, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, corrupt("event count: %v", err)
	}
	if err := checkCount(ne, minEventBytes, int64(br.Len()), "chunk-frame event"); err != nil {
		return nil, err
	}
	evs := c.events[:0]
	for i := uint64(0); i < ne; i++ {
		evs = append(evs, Event{})
		ev := &evs[len(evs)-1]
		if err := readEventBody(br, ev); err != nil {
			return nil, corrupt("event %d: %v", i, err)
		}
		if ev.Loc != c.ent.loc {
			return nil, corrupt("event %d belongs to %v", i, ev.Loc)
		}
		if ev.Path < 0 || int(ev.Path) >= len(c.pathParent) {
			return nil, corrupt("event %d references unknown path %d", i, ev.Path)
		}
		if (ev.Kind == KindEnter || ev.Kind == KindExit) &&
			(ev.Region < 0 || int(ev.Region) >= len(c.regions)) {
			return nil, corrupt("event %d references unknown region %d", i, ev.Region)
		}
	}
	if br.Len() != 0 {
		return nil, corrupt("%d trailing bytes", br.Len())
	}
	c.events = evs
	return evs, nil
}

var _ io.Closer = (*ChunkReader)(nil)
