package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// limitsTrace builds a small two-rank materialized trace for limit tests.
func limitsTrace(t *testing.T) *Trace {
	t.Helper()
	b0 := NewBuffer(Location{Rank: 0})
	b1 := NewBuffer(Location{Rank: 1})
	for i, b := range []*Buffer{b0, b1} {
		b.Enter("main", 0.0)
		b.Enter("phase", 0.1)
		b.Exit(0.2 + float64(i)*0.1)
		b.Exit(0.5)
	}
	return Merge(b0, b1)
}

// TestReadLimited drives the ATS1 reader through the policy-cap table:
// inputs that are structurally valid but exceed a configured cap must be
// rejected, and generous caps must not reject valid input.
func TestReadLimited(t *testing.T) {
	tr := limitsTrace(t)
	var buf bytes.Buffer
	if _, err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	events := len(tr.Events)
	locs := len(tr.Locations)

	tests := []struct {
		name    string
		lim     Limits
		wantErr string // substring; empty = must succeed
	}{
		{"unlimited", Limits{}, ""},
		{"generous", Limits{MaxEvents: int64(events), MaxLocations: locs, MaxFrame: 1 << 20}, ""},
		{"events over cap", Limits{MaxEvents: int64(events) - 1}, "events, limit"},
		{"locations over cap", Limits{MaxLocations: locs - 1}, "locations, limit"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ReadLimited(bytes.NewReader(blob), tc.lim)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("ReadLimited: %v", err)
				}
				if len(got.Events) != events {
					t.Fatalf("read %d events, want %d", len(got.Events), events)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("ReadLimited err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestReadLimitedMalformed confirms the limited entry point still applies
// the structural hardening checks (bad magic, lying counts).
func TestReadLimitedMalformed(t *testing.T) {
	tests := []struct {
		name string
		blob []byte
	}{
		{"bad magic", []byte("NOPE")},
		{"truncated header", []byte("ATS1")},
		// "ATS1" + region count claiming 2^60 entries in an empty body.
		{"huge region count", append([]byte("ATS1"), 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x10)},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadLimited(bytes.NewReader(tc.blob), Limits{MaxEvents: 10}); err == nil {
				t.Fatal("malformed input accepted")
			}
		})
	}
}

// spoolFromRun writes a two-location chunk spool and returns its path plus
// the per-location event count.
func spoolFromRun(t *testing.T) (path string, events int, locations int) {
	t.Helper()
	path = filepath.Join(t.TempDir(), "limits.atsc")
	w, err := NewChunkWriter(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	bufs := []*Buffer{NewBuffer(Location{Rank: 0}), NewBuffer(Location{Rank: 1})}
	for _, b := range bufs {
		w.Attach(b)
	}
	for i, b := range bufs {
		b.Enter("main", 0.0)
		b.Enter("phase", 0.1)
		b.Exit(0.2 + float64(i)*0.1)
		b.Exit(0.5)
		if err := w.Finish(b); err != nil {
			t.Fatal(err)
		}
		events += 4
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path, events, len(bufs)
}

// TestOpenChunkFileLimited drives the ATSC reader through the policy-cap
// table.
func TestOpenChunkFileLimited(t *testing.T) {
	path, events, locs := spoolFromRun(t)

	tests := []struct {
		name    string
		lim     Limits
		wantErr string
	}{
		{"unlimited", Limits{}, ""},
		{"generous", Limits{MaxEvents: int64(events), MaxLocations: locs, MaxFrame: 1 << 20}, ""},
		{"events over cap", Limits{MaxEvents: int64(events) - 1}, "events, limit"},
		{"locations over cap", Limits{MaxLocations: locs - 1}, "locations, limit"},
		{"frame over cap", Limits{MaxFrame: 8}, "frame"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			r, err := OpenChunkFileLimited(path, tc.lim)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("OpenChunkFileLimited: %v", err)
				}
				if got := r.Events(); got != events {
					t.Fatalf("index records %d events, want %d", got, events)
				}
				r.Close()
				return
			}
			if err == nil {
				r.Close()
				t.Fatal("over-limit spool accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestOpenChunkFileLimitedMalformed confirms limits compose with the
// structural spool validation (corrupt trailer).
func TestOpenChunkFileLimitedMalformed(t *testing.T) {
	path, _, _ := spoolFromRun(t)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	copy(blob[len(blob)-4:], []byte("XXXX")) // clobber trailer magic
	bad := filepath.Join(t.TempDir(), "bad.atsc")
	if err := os.WriteFile(bad, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if r, err := OpenChunkFileLimited(bad, Limits{MaxEvents: 100}); err == nil {
		r.Close()
		t.Fatal("corrupt spool accepted")
	}
}
