package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Timeline renders an ASCII Gantt chart of the trace, one row per location,
// sampling the innermost active region across `width` columns.  It is the
// Vampir-timeline stand-in used to reproduce the paper's Figures 3.2–3.4:
// the visible shape (who computes, who waits in which MPI call, when) is
// what those figures convey.
//
// Each region is assigned a display rune; a legend is appended.  Idle time
// outside any region renders as '.'.
type TimelineOptions struct {
	Width int // number of sample columns (default 100)
	// Regions restricts the legend/rune assignment to the given regions;
	// others render as '#'.  Empty means auto-assign all.
	Regions []string
}

type interval struct {
	start, end float64
	region     string
}

// buildIntervals reconstructs, per location, the innermost-region intervals.
func buildIntervals(t *Trace) map[Location][]interval {
	type frame struct {
		region string
		since  float64
	}
	out := make(map[Location][]interval)
	stacks := make(map[Location][]frame)
	emit := func(loc Location, start, end float64, region string) {
		if end > start {
			out[loc] = append(out[loc], interval{start, end, region})
		}
	}
	for _, ev := range t.Events {
		switch ev.Kind {
		case KindEnter:
			st := stacks[ev.Loc]
			if len(st) > 0 {
				top := &st[len(st)-1]
				emit(ev.Loc, top.since, ev.Time, top.region)
				top.since = ev.Time // will resume after nested exit
			}
			stacks[ev.Loc] = append(st, frame{region: t.RegionName(ev.Region), since: ev.Time})
		case KindExit:
			st := stacks[ev.Loc]
			if len(st) == 0 {
				continue
			}
			top := st[len(st)-1]
			emit(ev.Loc, top.since, ev.Time, top.region)
			stacks[ev.Loc] = st[:len(st)-1]
			if len(stacks[ev.Loc]) > 0 {
				stacks[ev.Loc][len(stacks[ev.Loc])-1].since = ev.Time
			}
		}
	}
	return out
}

// timelineRunes is the palette for region bars.
var timelineRunes = []rune("WSRBXGAVQCDEFHIJKLMNOPTUYZwsrbxgavqdefhijklmnop")

// Timeline renders the ASCII timeline.
func Timeline(t *Trace, opt TimelineOptions) string {
	width := opt.Width
	if width <= 0 {
		width = 100
	}
	if len(t.Events) == 0 {
		return "(empty trace)\n"
	}
	start, end := t.Start(), t.End()
	span := end - start
	if span <= 0 {
		span = 1
	}

	intervals := buildIntervals(t)

	// Assign runes to regions, preferring caller-specified ordering.
	runeFor := make(map[string]rune)
	order := opt.Regions
	if len(order) == 0 {
		seen := make(map[string]bool)
		for _, ivs := range intervals {
			for _, iv := range ivs {
				seen[iv.region] = true
			}
		}
		for r := range seen {
			order = append(order, r)
		}
		sort.Strings(order)
	}
	for i, r := range order {
		if i < len(timelineRunes) {
			runeFor[r] = timelineRunes[i]
		} else {
			runeFor[r] = '#'
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "timeline: %.6fs .. %.6fs (span %.6fs), %d locations\n",
		start, end, span, len(t.Locations))
	for _, loc := range t.Locations {
		row := make([]rune, width)
		for i := range row {
			row[i] = '.'
		}
		for _, iv := range intervals[loc] {
			c0 := int((iv.start - start) / span * float64(width))
			c1 := int((iv.end - start) / span * float64(width))
			if c1 <= c0 {
				c1 = c0 + 1
			}
			if c0 < 0 {
				c0 = 0
			}
			if c1 > width {
				c1 = width
			}
			r, ok := runeFor[iv.region]
			if !ok {
				r = '#'
			}
			for c := c0; c < c1; c++ {
				row[c] = r
			}
		}
		fmt.Fprintf(&b, "%8s |%s|\n", loc, string(row))
	}
	b.WriteString("legend: '.'=idle")
	for _, r := range order {
		if _, used := runeFor[r]; used {
			fmt.Fprintf(&b, "  '%c'=%s", runeFor[r], r)
		}
	}
	b.WriteString("\n")
	return b.String()
}
