package trace

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// enc builds a trace header byte by byte for corruption tests.
type enc struct{ bytes.Buffer }

func (e *enc) uvarint(v uint64) {
	var buf [binary.MaxVarintLen64]byte
	e.Write(buf[:binary.PutUvarint(buf[:], v)])
}

func (e *enc) varint(v int64) {
	var buf [binary.MaxVarintLen64]byte
	e.Write(buf[:binary.PutVarint(buf[:], v)])
}

func header() *enc {
	e := &enc{}
	e.Write(magic[:])
	return e
}

// Corrupt and truncated inputs must fail fast with a diagnostic, never
// with a speculative multi-gigabyte allocation driven by an untrusted
// header count.
func TestReadRejectsCorruptCounts(t *testing.T) {
	cases := []struct {
		name string
		blob func() []byte
		want string // error substring
	}{
		{"huge event count", func() []byte {
			e := header()
			e.uvarint(0)       // regions
			e.uvarint(1)       // paths (root only)
			e.uvarint(0)       // locations
			e.uvarint(1 << 60) // events
			return e.Bytes()
		}, "implausible event count"},
		{"huge region count", func() []byte {
			e := header()
			e.uvarint(1 << 61)
			return e.Bytes()
		}, "implausible region count"},
		{"huge path count", func() []byte {
			e := header()
			e.uvarint(0)
			e.uvarint(1 << 59)
			return e.Bytes()
		}, "implausible path count"},
		{"huge location count", func() []byte {
			e := header()
			e.uvarint(0)
			e.uvarint(1)
			e.uvarint(1 << 62)
			return e.Bytes()
		}, "implausible location count"},
		{"location rank out of int32 range", func() []byte {
			e := header()
			e.uvarint(0)
			e.uvarint(1)
			e.uvarint(1)      // one location
			e.varint(1 << 40) // rank far beyond int32
			e.varint(0)       // thread
			e.uvarint(0)      // events
			return e.Bytes()
		}, "rank 1099511627776 out of range"},
		{"location thread out of int32 range", func() []byte {
			e := header()
			e.uvarint(0)
			e.uvarint(1)
			e.uvarint(1)
			e.varint(0)
			e.varint(-(1 << 40))
			e.uvarint(0)
			return e.Bytes()
		}, "thread -1099511627776 out of range"},
		{"missing path root", func() []byte {
			e := header()
			e.uvarint(0)
			e.uvarint(0)
			return e.Bytes()
		}, "missing path root"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(bytes.NewReader(tc.blob()))
			if err == nil {
				t.Fatalf("corrupt input accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// A count that passes the plausibility bound but overstates the available
// data must still fail on the short read, without allocating for the full
// claim (append growth stops at end of input).
func TestReadTruncatedBody(t *testing.T) {
	e := header()
	e.uvarint(0)
	e.uvarint(1)
	e.uvarint(0)
	e.uvarint(1 << 30) // plausible only because the reader can't see a size
	// No event bytes follow.
	if _, err := Read(bareReader{bytes.NewReader(e.Bytes())}); err == nil {
		t.Fatal("truncated body accepted")
	}
}

// bareReader hides Len/Seek so Read cannot learn the input size and must
// rely on incremental growth.
type bareReader struct{ r *bytes.Reader }

func (b bareReader) Read(p []byte) (int, error) { return b.r.Read(p) }

// The committed fixture is the reproducer from the wild: a ~16-byte file
// whose header claims 2^60 events.
func TestReadFileCorruptFixture(t *testing.T) {
	_, err := ReadFile(filepath.Join("testdata", "corrupt-hugecount.ats"))
	if err == nil {
		t.Fatal("corrupt fixture accepted")
	}
	if !strings.Contains(err.Error(), "implausible event count") {
		t.Fatalf("error %q does not mention the implausible count", err)
	}
}

// WriteFile must be atomic: a failed write leaves neither a partial file
// at the target path nor temp-file litter.
func TestWriteFileAtomic(t *testing.T) {
	b := NewBuffer(loc(0, 0))
	b.Enter("x", 0)
	b.Exit(1)
	tr := Merge(b)

	dir := t.TempDir()
	path := filepath.Join(dir, "out.ats")

	// Failure injection: the rename target is an occupied directory, so
	// the final step fails after a complete write.
	if err := os.Mkdir(path, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(path, "occupant"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteFile(path); err == nil {
		t.Fatal("rename onto non-empty directory succeeded")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp litter left behind: %v", ents)
	}

	// Success path still lands the complete file.
	ok := filepath.Join(dir, "ok.ats")
	if err := tr.WriteFile(ok); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(ok)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != 2 {
		t.Fatalf("got %d events", len(got.Events))
	}
}
