package trace

import (
	"fmt"
	"io"
	"sort"
)

// RegionNamer resolves region ids to names.  Both the materialized Trace
// and the streaming Stream implement it; StatsBuilder only needs this
// slice of the trace API.
type RegionNamer interface {
	RegionName(RegionID) string
}

// View is the read-only name/path resolution interface shared by Trace and
// Stream.  The analyzer renders call paths through it, so the streamed and
// materialized paths produce identical strings.
type View interface {
	RegionNamer
	PathString(p PathID) string
}

var (
	_ View = (*Trace)(nil)
	_ View = (*Stream)(nil)
)

// streamSource is one location's frame sequence feeding a Stream: chunk
// cursors for spooled runs, buffer adapters for in-memory ones.
type streamSource interface {
	loc() Location
	// next returns the next frame of locally-interned events, or nil at
	// end of stream.  The slice is only valid until the following call.
	next() ([]Event, error)
	// tables exposes the source's local intern tables as of the last next
	// call; entries are append-only across frames.
	tables() (regions []string, pathParent []PathID, pathRegion []RegionID)
}

// bufferSource adapts an in-memory Buffer as a single-frame source.
type bufferSource struct {
	b    *Buffer
	done bool
}

func (s *bufferSource) loc() Location { return s.b.Loc }

func (s *bufferSource) next() ([]Event, error) {
	if s.done {
		return nil, nil
	}
	s.done = true
	return s.b.events, nil
}

func (s *bufferSource) tables() ([]string, []PathID, []RegionID) {
	return s.b.regions, s.b.pathParent, s.b.pathRegion
}

// sourceState is the per-source merge state: the current remapped frame
// and the local→global id maps, grown as the local tables grow.
type sourceState struct {
	src       streamSource
	cur       []Event
	pos       int
	regionMap []RegionID
	pathMap   []PathID
}

// Stream is a k-way merge over per-location event streams, delivering
// events in exactly the order trace.Merge would: (Time, Location), with
// within-location order preserved.  Region names and call paths are
// interned globally and incrementally, so a Stream implements View and the
// analyzer can consume it in place of a Trace while holding only
// O(locations + intern tables + one frame per location) memory.
type Stream struct {
	srcs []sourceState
	heap []int

	regions    []string
	regionIDs  map[string]RegionID
	pathParent []PathID
	pathRegion []RegionID
	pathChild  map[pathKey]PathID
	pathStrs   []string // rendered alongside the path table

	locs   []Location
	events int
	first  float64
	last   float64

	evBuf   Event
	err     error
	closers []io.Closer
}

// NewStream merges the streams of one or more chunk spools.  The readers'
// locations must be pairwise distinct.  Closing the stream closes the
// readers.
func NewStream(readers ...*ChunkReader) (*Stream, error) {
	var srcs []streamSource
	var closers []io.Closer
	for _, r := range readers {
		for _, c := range r.cursors() {
			srcs = append(srcs, c)
		}
		closers = append(closers, r)
	}
	return newStream(srcs, closers)
}

// NewBufferStream merges in-memory buffers, mirroring Merge's input shape.
// It exists for tests and for analyzing without a spool file; the buffers
// must not be recorded into or released while the stream is live.
func NewBufferStream(buffers ...*Buffer) (*Stream, error) {
	var srcs []streamSource
	for _, b := range buffers {
		if b == nil {
			continue
		}
		srcs = append(srcs, &bufferSource{b: b})
	}
	return newStream(srcs, nil)
}

func newStream(sources []streamSource, closers []io.Closer) (*Stream, error) {
	// Sources are ordered by location, making the merge independent of
	// argument order (locations are unique per source, so the heap's
	// source-index tiebreak is never reached across sources).
	sort.Slice(sources, func(i, j int) bool { return sources[i].loc().less(sources[j].loc()) })
	st := &Stream{
		regionIDs:  make(map[string]RegionID),
		pathParent: []PathID{-1},
		pathRegion: []RegionID{-1},
		pathStrs:   []string{""},
		pathChild:  make(map[pathKey]PathID),
		closers:    closers,
	}
	for i, src := range sources {
		if i > 0 && !sources[i-1].loc().less(src.loc()) {
			st.Close()
			return nil, fmt.Errorf("trace: stream: duplicate location %v", src.loc())
		}
		st.locs = append(st.locs, src.loc())
		st.srcs = append(st.srcs, sourceState{src: src})
	}
	for i := range st.srcs {
		if err := st.refill(i); err != nil {
			st.Close()
			return nil, err
		}
		if st.srcs[i].cur != nil {
			st.heap = append(st.heap, i)
		}
	}
	for i := len(st.heap)/2 - 1; i >= 0; i-- {
		st.siftDown(i)
	}
	return st, nil
}

// intern maps a region name to its global id.
func (st *Stream) intern(name string) RegionID {
	if id, ok := st.regionIDs[name]; ok {
		return id
	}
	id := RegionID(len(st.regions))
	st.regions = append(st.regions, name)
	st.regionIDs[name] = id
	return id
}

// child returns (creating if needed) the global path node for region under
// parent, rendering its string form on creation — the same concatenation
// Trace.PathString caches, so rendered paths are identical.
func (st *Stream) child(parent PathID, region RegionID) PathID {
	k := pathKey{parent, region}
	if id, ok := st.pathChild[k]; ok {
		return id
	}
	id := PathID(len(st.pathParent))
	st.pathParent = append(st.pathParent, parent)
	st.pathRegion = append(st.pathRegion, region)
	leaf := st.regions[region]
	if parent > PathRoot {
		st.pathStrs = append(st.pathStrs, st.pathStrs[parent]+"/"+leaf)
	} else {
		st.pathStrs = append(st.pathStrs, leaf)
	}
	st.pathChild[k] = id
	return id
}

// refill loads source i's next non-empty frame, extends its id maps from
// the grown local tables, and remaps the frame's events to global ids in
// place.  cur is nil once the source is exhausted.
func (st *Stream) refill(i int) error {
	s := &st.srcs[i]
	for {
		evs, err := s.src.next()
		if err != nil {
			return err
		}
		if evs == nil {
			s.cur, s.pos = nil, 0
			return nil
		}
		regions, pathParent, pathRegion := s.src.tables()
		for j := len(s.regionMap); j < len(regions); j++ {
			s.regionMap = append(s.regionMap, st.intern(regions[j]))
		}
		for j := len(s.pathMap); j < len(pathParent); j++ {
			if j == 0 {
				s.pathMap = append(s.pathMap, PathRoot)
				continue
			}
			// Parents precede children in the local table, so the
			// parent's global id is already mapped.
			s.pathMap = append(s.pathMap, st.child(s.pathMap[pathParent[j]], s.regionMap[pathRegion[j]]))
		}
		if len(evs) == 0 {
			continue
		}
		for j := range evs {
			ev := &evs[j]
			if ev.Kind == KindEnter || ev.Kind == KindExit {
				ev.Region = s.regionMap[ev.Region]
			}
			ev.Path = s.pathMap[ev.Path]
		}
		s.cur, s.pos = evs, 0
		return nil
	}
}

// less orders heap candidates exactly like Merge: (Time, Location, source
// index).
func (st *Stream) less(a, b int) bool {
	ea := &st.srcs[a].cur[st.srcs[a].pos]
	eb := &st.srcs[b].cur[st.srcs[b].pos]
	if ea.Time != eb.Time {
		return ea.Time < eb.Time
	}
	if ea.Loc != eb.Loc {
		return ea.Loc.less(eb.Loc)
	}
	return a < b
}

func (st *Stream) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(st.heap) && st.less(st.heap[l], st.heap[small]) {
			small = l
		}
		if r < len(st.heap) && st.less(st.heap[r], st.heap[small]) {
			small = r
		}
		if small == i {
			return
		}
		st.heap[i], st.heap[small] = st.heap[small], st.heap[i]
		i = small
	}
}

// Next returns the next event in merged order, or (nil, nil) at end of
// stream.  The returned pointer is only valid until the following call.
// Errors are sticky.
func (st *Stream) Next() (*Event, error) {
	if st.err != nil {
		return nil, st.err
	}
	if len(st.heap) == 0 {
		return nil, nil
	}
	i := st.heap[0]
	s := &st.srcs[i]
	// Copy before refilling: the source reuses its frame storage.
	st.evBuf = s.cur[s.pos]
	s.pos++
	if s.pos == len(s.cur) {
		if err := st.refill(i); err != nil {
			st.err = err
			return nil, err
		}
		if s.cur == nil {
			st.heap[0] = st.heap[len(st.heap)-1]
			st.heap = st.heap[:len(st.heap)-1]
		}
	}
	st.siftDown(0)
	if st.events == 0 {
		st.first = st.evBuf.Time
	}
	st.last = st.evBuf.Time
	st.events++
	return &st.evBuf, nil
}

// RegionName implements View over the global intern table.
func (st *Stream) RegionName(id RegionID) string {
	if id < 0 || int(id) >= len(st.regions) {
		return "?"
	}
	return st.regions[id]
}

// PathString implements View; rendered forms match Trace.PathString.
func (st *Stream) PathString(p PathID) string {
	if p <= PathRoot || int(p) >= len(st.pathStrs) {
		return ""
	}
	return st.pathStrs[p]
}

// Locations returns the stream's locations in rank-major order (the same
// set Merge records in Trace.Locations).
func (st *Stream) Locations() []Location { return st.locs }

// Shape mirrors Trace.Shape: distinct ranks and the maximum thread count.
func (st *Stream) Shape() (ranks, threads int) {
	seen := make(map[int32]bool)
	for _, loc := range st.locs {
		if !seen[loc.Rank] {
			seen[loc.Rank] = true
			ranks++
		}
		if n := int(loc.Thread) + 1; n > threads {
			threads = n
		}
	}
	return ranks, threads
}

// Events returns the number of events delivered so far (after the stream
// is drained: the total event count, mirroring len(Trace.Events)).
func (st *Stream) Events() int { return st.events }

// Duration returns the time span between the first and last delivered
// event, mirroring Trace.Duration once the stream is drained.
func (st *Stream) Duration() float64 {
	if st.events == 0 {
		return 0
	}
	return st.last - st.first
}

// Close releases the underlying readers.
func (st *Stream) Close() error {
	var first error
	for _, c := range st.closers {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	st.closers = nil
	return first
}
