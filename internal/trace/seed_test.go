package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestStackNames(t *testing.T) {
	b := NewBuffer(loc(0, 0))
	if names := b.StackNames(); len(names) != 0 {
		t.Errorf("fresh buffer stack = %v", names)
	}
	b.Enter("a", 0)
	b.Enter("b", 1)
	b.Enter("c", 2)
	got := b.StackNames()
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("stack = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("stack[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	b.Exit(3)
	if got := b.StackNames(); len(got) != 2 || got[1] != "b" {
		t.Errorf("after exit: %v", got)
	}
	var nilBuf *Buffer
	if nilBuf.StackNames() != nil {
		t.Error("nil buffer returned a stack")
	}
}

func TestSeedInheritsPath(t *testing.T) {
	child := NewBuffer(loc(0, 1))
	child.Seed([]string{"main", "phase"})
	child.Enter("leaf", 1)
	child.Record(Event{Time: 1.5, Kind: KindMarker})
	child.Exit(2)
	tr := Merge(child)
	for _, ev := range tr.Events {
		if got := tr.PathString(ev.Path); !strings.HasPrefix(got, "main/phase") {
			t.Errorf("event path %q lacks seeded prefix", got)
		}
	}
	// Depth excludes seeded frames.
	if child.Depth() != 0 {
		t.Errorf("depth = %d after balanced enter/exit", child.Depth())
	}
}

func TestSeedGuards(t *testing.T) {
	// Seeded frames must not be poppable by Exit.
	b := NewBuffer(loc(0, 0))
	b.Seed([]string{"x"})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Exit into seeded frames did not panic")
			}
		}()
		b.Exit(1)
	}()
	// Seeding a used buffer is a programming error.
	b2 := NewBuffer(loc(0, 0))
	b2.Enter("a", 0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Seed on non-fresh buffer did not panic")
			}
		}()
		b2.Seed([]string{"x"})
	}()
	// Nil buffer: no-op.
	var nb *Buffer
	nb.Seed([]string{"x"})
}

func TestWriteJSON(t *testing.T) {
	b := NewBuffer(loc(2, 1))
	b.Enter("region", 0)
	b.Record(Event{Time: 0.5, Kind: KindSend, Peer: 3, Tag: 7, Bytes: 64, Match: 9})
	b.Record(Event{Time: 0.8, Aux: 0.1, Kind: KindColl, Coll: CollBcast, Root: 0, Match: 4})
	b.Exit(1)
	tr := Merge(b)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		lines++
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		if m["kind"] == "send" {
			if m["peer"].(float64) != 3 || m["bytes"].(float64) != 64 {
				t.Errorf("send line wrong: %v", m)
			}
			if m["path"] != "region" {
				t.Errorf("send path = %v", m["path"])
			}
		}
		if m["kind"] == "coll" && m["coll"] != "MPI_Bcast" {
			t.Errorf("coll line wrong: %v", m)
		}
	}
	if lines != 4 {
		t.Errorf("got %d JSON lines, want 4", lines)
	}
}
