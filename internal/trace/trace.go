// Package trace implements the ATS event-trace layer.
//
// The original ATS validates analysis tools (EXPERT, Vampir, …) against
// traces produced by instrumented runs of the synthetic test programs.
// This reproduction needs the tool side as well, so the runtime records
// event traces directly: region enter/exit, point-to-point message events,
// collective-operation events, and thread fork/join.  Each execution
// location (MPI rank × OpenMP thread) writes to its own Buffer without
// locking; buffers are merged into a Trace afterwards — or, when a Sink
// is attached, spilled to an on-disk chunk spool during the run and
// re-merged incrementally by a Stream, so analysis memory stays bounded
// at large rank counts.
//
// Call paths are interned as a tree so that every event carries the full
// dynamic call path at constant cost — the analyzer's "call graph pane"
// (paper Fig 3.5) is reconstructed from these path ids.
//
// Two binary encodings exist: the merged ATS1 trace (Write/Read) and the
// ATSC chunk spool (ChunkWriter/OpenChunkFile); doc/FORMATS.md is the
// normative spec of both.
package trace

import (
	"fmt"
	"sort"
	"sync"
)

// Location identifies an execution location: an MPI process rank and an
// OpenMP thread within it.  Pure MPI programs use Thread 0; pure OpenMP
// programs use Rank 0.
type Location struct {
	Rank   int32
	Thread int32
}

// String renders the location as "rank.thread".
func (l Location) String() string { return fmt.Sprintf("%d.%d", l.Rank, l.Thread) }

// less orders locations rank-major.
func (l Location) less(o Location) bool {
	if l.Rank != o.Rank {
		return l.Rank < o.Rank
	}
	return l.Thread < o.Thread
}

// Kind enumerates event kinds.
type Kind uint8

const (
	// KindEnter marks entry into a region (function, construct).
	KindEnter Kind = iota
	// KindExit marks exit from the current region.
	KindExit
	// KindSend records a point-to-point message send.  Time is the
	// moment the sending operation was entered.
	KindSend
	// KindRecv records the completion of a point-to-point receive.
	// Time is completion; Aux is the time the receive was entered.
	KindRecv
	// KindColl records participation in a collective operation.  Time is
	// completion; Aux is the participant's enter time.
	KindColl
	// KindFork records an OpenMP parallel-region fork on the master.
	KindFork
	// KindJoin records the corresponding join; Aux is the fork time.
	KindJoin
	// KindLock records acquisition of a lock or critical section; Aux is
	// the waiting time incurred before acquisition.
	KindLock
	// KindMarker is a free-form marker event (used by tests and apps).
	KindMarker
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindEnter:
		return "enter"
	case KindExit:
		return "exit"
	case KindSend:
		return "send"
	case KindRecv:
		return "recv"
	case KindColl:
		return "coll"
	case KindFork:
		return "fork"
	case KindJoin:
		return "join"
	case KindLock:
		return "lock"
	case KindMarker:
		return "marker"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// CollKind enumerates collective operations for KindColl events.
type CollKind uint8

const (
	CollNone CollKind = iota
	CollBarrier
	CollBcast
	CollScatter
	CollScatterv
	CollGather
	CollGatherv
	CollReduce
	CollAllreduce
	CollAllgather
	CollAllgatherv
	CollAlltoall
	CollAlltoallv
	CollScan
	CollReduceScatter
	// OMP pseudo-collectives: team-wide synchronization points.
	CollOMPBarrier
	CollOMPForEnd  // implicit barrier at end of a worksharing loop
	CollOMPJoin    // implicit barrier at parallel-region join
	CollOMPSingle  // implicit barrier at end of single
	CollOMPSection // implicit barrier at end of sections
)

var collNames = map[CollKind]string{
	CollNone:          "none",
	CollBarrier:       "MPI_Barrier",
	CollBcast:         "MPI_Bcast",
	CollScatter:       "MPI_Scatter",
	CollScatterv:      "MPI_Scatterv",
	CollGather:        "MPI_Gather",
	CollGatherv:       "MPI_Gatherv",
	CollReduce:        "MPI_Reduce",
	CollAllreduce:     "MPI_Allreduce",
	CollAllgather:     "MPI_Allgather",
	CollAllgatherv:    "MPI_Allgatherv",
	CollAlltoall:      "MPI_Alltoall",
	CollAlltoallv:     "MPI_Alltoallv",
	CollScan:          "MPI_Scan",
	CollReduceScatter: "MPI_Reduce_scatter",
	CollOMPBarrier:    "omp barrier",
	CollOMPForEnd:     "omp for (implicit barrier)",
	CollOMPJoin:       "omp parallel (join)",
	CollOMPSingle:     "omp single (implicit barrier)",
	CollOMPSection:    "omp sections (implicit barrier)",
}

// String names the collective kind.
func (c CollKind) String() string {
	if s, ok := collNames[c]; ok {
		return s
	}
	return fmt.Sprintf("coll(%d)", uint8(c))
}

// Event flags.
const (
	// FlagSync marks a synchronous (rendezvous) point-to-point transfer.
	FlagSync uint8 = 1 << iota
	// FlagNonBlocking marks a non-blocking operation (Isend/Irecv).
	FlagNonBlocking
	// FlagRoot marks the root participant of a rooted collective.
	FlagRoot
)

// RegionID indexes the region name table of a Buffer or Trace.
type RegionID int32

// PathID indexes the call-path tree.  PathRoot is the empty path.
type PathID int32

// PathRoot is the id of the empty call path.
const PathRoot PathID = 0

// Event is one trace record.  The meaning of the payload fields depends on
// Kind; unused fields are zero.
type Event struct {
	Time float64  // event timestamp (seconds since run epoch)
	Aux  float64  // secondary timestamp or duration (see Kind docs)
	Kind Kind     //
	Loc  Location // where the event happened

	Region RegionID // Enter/Exit: region; Coll: unused
	Path   PathID   // call path at event time (after Enter / before Exit)

	// Point-to-point payload.
	Peer  int32  // comm-local peer rank (dest for Send, source for Recv)
	CRank int32  // own comm-local rank at the event
	Tag   int32  // message tag
	Bytes int64  // payload size in bytes
	Match uint64 // match id linking Send↔Recv, or collective instance id

	// Collective payload.
	Coll  CollKind
	Root  int32 // comm-local root rank (rooted collectives), else -1
	Comm  int32 // communicator context id (MPI) or team id (OMP)
	Flags uint8
}

// Buffer collects the events of a single location.  It is owned by exactly
// one goroutine and performs no locking.  Region names and call paths are
// interned locally and remapped during merge.
type Buffer struct {
	Loc    Location
	events []Event

	regionIDs map[string]RegionID
	regions   []string

	// Call-path tree: node i has parent pathParent[i] and leaf region
	// pathRegion[i].  Node 0 is the root (empty path).
	pathParent []PathID
	pathRegion []RegionID
	pathChild  map[pathKey]PathID

	stack  []PathID // current path stack; top is current path
	cur    PathID
	seeded int // frames installed by Seed (not matched by Exit)

	// Streaming mode: when sink is non-nil the buffer spills its event
	// slab as a chunk frame whenever it reaches spillAt events, so memory
	// stays bounded however long the run is.  The intern tables are never
	// spilled away — paths and regions keep their local ids across frames
	// and the sink writes table deltas per frame.  Set via Sink.Attach.
	sink    *ChunkWriter
	spillAt int
}

type pathKey struct {
	parent PathID
	region RegionID
}

// bufferPool recycles Buffer objects — including their event slabs,
// intern maps and path tables — between runs.  Campaigns execute hundreds
// of worlds back to back; without the pool every run re-grows every
// rank's event slab from scratch and the allocator dominates the
// profile.
var bufferPool = sync.Pool{New: func() any { return new(Buffer) }}

// NewBuffer returns an empty buffer for the given location.  Buffers are
// drawn from a process-wide free list; pass them to Release when the
// merged trace no longer references them to recycle their storage.
func NewBuffer(loc Location) *Buffer {
	b := bufferPool.Get().(*Buffer)
	b.Loc = loc
	b.cur = PathRoot
	b.seeded = 0
	if b.regionIDs == nil {
		b.regionIDs = make(map[string]RegionID)
		b.pathChild = make(map[pathKey]PathID)
	}
	b.pathParent = append(b.pathParent[:0], -1)
	b.pathRegion = append(b.pathRegion[:0], -1)
	return b
}

// Release returns the buffer's storage to the free list.  The caller must
// not touch b afterwards; events already copied out by Merge stay valid.
// Releasing a nil buffer is a no-op, mirroring the recording calls.
func (b *Buffer) Release() {
	if b == nil {
		return
	}
	b.events = b.events[:0]
	clear(b.regions)
	b.regions = b.regions[:0]
	clear(b.regionIDs)
	clear(b.pathChild)
	b.pathParent = b.pathParent[:0]
	b.pathRegion = b.pathRegion[:0]
	b.stack = b.stack[:0]
	b.cur = PathRoot
	b.seeded = 0
	b.sink = nil
	b.spillAt = 0
	bufferPool.Put(b)
}

// maybeSpill hands the event slab to the attached sink once it reaches the
// spill threshold.  Inlined into every recording path; the nil check keeps
// the non-streaming fast path a single compare.
func (b *Buffer) maybeSpill() {
	if b.sink != nil && len(b.events) >= b.spillAt {
		b.sink.spill(b)
	}
}

// region interns a region name.
func (b *Buffer) region(name string) RegionID {
	if id, ok := b.regionIDs[name]; ok {
		return id
	}
	id := RegionID(len(b.regions))
	b.regions = append(b.regions, name)
	b.regionIDs[name] = id
	return id
}

// child returns (creating if needed) the path node for region under parent.
func (b *Buffer) child(parent PathID, region RegionID) PathID {
	k := pathKey{parent, region}
	if id, ok := b.pathChild[k]; ok {
		return id
	}
	id := PathID(len(b.pathParent))
	b.pathParent = append(b.pathParent, parent)
	b.pathRegion = append(b.pathRegion, region)
	b.pathChild[k] = id
	return id
}

// Enter records entry into the named region at time t.
// A nil Buffer ignores all recording calls, so tracing can be disabled
// without changing the runtime code paths.
func (b *Buffer) Enter(name string, t float64) {
	if b == nil {
		return
	}
	r := b.region(name)
	b.stack = append(b.stack, b.cur)
	b.cur = b.child(b.cur, r)
	b.events = append(b.events, Event{
		Time: t, Kind: KindEnter, Loc: b.Loc, Region: r, Path: b.cur,
	})
	b.maybeSpill()
}

// StackNames returns the names of the currently open regions, outermost
// first — the dynamic call path of the executor.
func (b *Buffer) StackNames() []string {
	if b == nil {
		return nil
	}
	var names []string
	for p := b.cur; p > PathRoot; p = b.pathParent[p] {
		names = append(names, b.regions[b.pathRegion[p]])
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return names
}

// Seed installs an inherited call-path prefix without recording events.
// It is used when an executor forks sub-executors (OpenMP threads): the
// children's events must carry the creating thread's dynamic call path,
// as in EXPERT's call-tree model.  Seeded frames are not matched by Exit.
func (b *Buffer) Seed(names []string) {
	if b == nil {
		return
	}
	if len(b.events) > 0 || len(b.stack) > 0 {
		panic("trace: Seed on a non-fresh buffer")
	}
	for _, name := range names {
		r := b.region(name)
		b.stack = append(b.stack, b.cur)
		b.cur = b.child(b.cur, r)
	}
	b.seeded = len(names)
}

// Exit records exit from the current region at time t.
func (b *Buffer) Exit(t float64) {
	if b == nil {
		return
	}
	if len(b.stack) <= b.seeded {
		panic("trace: Exit without matching Enter")
	}
	r := b.pathRegion[b.cur]
	b.events = append(b.events, Event{
		Time: t, Kind: KindExit, Loc: b.Loc, Region: r, Path: b.cur,
	})
	b.cur = b.stack[len(b.stack)-1]
	b.stack = b.stack[:len(b.stack)-1]
	b.maybeSpill()
}

// Depth returns the current region-stack depth, excluding seeded frames.
func (b *Buffer) Depth() int {
	if b == nil {
		return 0
	}
	return len(b.stack) - b.seeded
}

// Record appends ev, filling in Loc and the current call path.
func (b *Buffer) Record(ev Event) {
	if b == nil {
		return
	}
	ev.Loc = b.Loc
	ev.Path = b.cur
	b.events = append(b.events, ev)
	b.maybeSpill()
}

// Len reports the number of recorded events.
func (b *Buffer) Len() int {
	if b == nil {
		return 0
	}
	return len(b.events)
}

// Trace is a merged, analysis-ready trace: all locations' events ordered by
// time, with globally interned region names and call paths.
type Trace struct {
	Events  []Event
	Regions []string // region names indexed by RegionID

	// Call-path tree, analogous to Buffer's.
	PathParent []PathID
	PathRegion []RegionID

	Locations []Location // sorted distinct locations

	// pathStrs lazily caches the rendered "a/b/c" form of every call
	// path.  The analyzer keys its per-path accumulators by rendered
	// path, so without the cache every compound event re-walks and
	// re-concatenates its path chain.
	pathStrOnce sync.Once
	pathStrs    []string
}

// Merge combines per-location buffers into a single Trace.  Buffers may be
// nil (ignored).  Events are ordered by (Time, Location); ties at equal
// time are resolved by location for determinism.
//
// Each buffer belongs to a single executor whose clock never runs
// backwards, so buffers arrive time-sorted and the merge is a k-way heap
// merge instead of a global sort — the sort was the dominant cost of the
// run→trace hot path because the standard library swaps the large Event
// structs through reflection.  A buffer that is *not* internally sorted
// (only possible for hand-built inputs) falls back to the original stable
// sort, so the output ordering contract is identical either way.
func Merge(buffers ...*Buffer) *Trace {
	t := &Trace{
		PathParent: []PathID{-1},
		PathRegion: []RegionID{-1},
	}
	regionIDs := make(map[string]RegionID)
	pathChild := make(map[pathKey]PathID)
	intern := func(name string) RegionID {
		if id, ok := regionIDs[name]; ok {
			return id
		}
		id := RegionID(len(t.Regions))
		t.Regions = append(t.Regions, name)
		regionIDs[name] = id
		return id
	}
	child := func(parent PathID, region RegionID) PathID {
		k := pathKey{parent, region}
		if id, ok := pathChild[k]; ok {
			return id
		}
		id := PathID(len(t.PathParent))
		t.PathParent = append(t.PathParent, parent)
		t.PathRegion = append(t.PathRegion, region)
		pathChild[k] = id
		return id
	}

	// Remap every buffer's region and path ids to global ids, check
	// per-buffer time-sortedness, and pre-size the output from the summed
	// buffer lengths.
	var total int
	sorted := true
	type source struct {
		b         *Buffer
		regionMap []RegionID
		pathMap   []PathID
		pos       int
	}
	srcs := make([]source, 0, len(buffers))
	for _, b := range buffers {
		if b == nil {
			continue
		}
		s := source{b: b}
		s.regionMap = make([]RegionID, len(b.regions))
		for i, name := range b.regions {
			s.regionMap[i] = intern(name)
		}
		s.pathMap = make([]PathID, len(b.pathParent))
		if len(s.pathMap) > 0 {
			s.pathMap[0] = PathRoot
		}
		for i := 1; i < len(b.pathParent); i++ {
			// Parents always precede children in the local table.
			s.pathMap[i] = child(s.pathMap[b.pathParent[i]], s.regionMap[b.pathRegion[i]])
		}
		for i := 1; i < len(b.events); i++ {
			if b.events[i].Time < b.events[i-1].Time {
				sorted = false
				break
			}
		}
		total += len(b.events)
		srcs = append(srcs, s)
		t.Locations = append(t.Locations, b.Loc)
	}
	t.Events = make([]Event, 0, total)

	remap := func(s *source, ev Event) Event {
		if ev.Kind == KindEnter || ev.Kind == KindExit {
			ev.Region = s.regionMap[ev.Region]
		}
		ev.Path = s.pathMap[ev.Path]
		return ev
	}

	if !sorted {
		// Fallback: flatten and stable-sort, exactly as the pre-merge
		// implementation did.
		for i := range srcs {
			for _, ev := range srcs[i].b.events {
				t.Events = append(t.Events, remap(&srcs[i], ev))
			}
		}
		sort.SliceStable(t.Events, func(i, j int) bool {
			if t.Events[i].Time != t.Events[j].Time {
				return t.Events[i].Time < t.Events[j].Time
			}
			return t.Events[i].Loc.less(t.Events[j].Loc)
		})
	} else {
		// K-way merge.  Heap order is (Time, Location, source index),
		// which reproduces the stable sort's output exactly: each source
		// contributes at most one candidate at a time, so within-buffer
		// insertion order is preserved, and the source index resolves the
		// (never observed in practice) case of two buffers sharing a
		// location at the same timestamp the same way stability did.
		less := func(a, b int) bool {
			ea := &srcs[a].b.events[srcs[a].pos]
			eb := &srcs[b].b.events[srcs[b].pos]
			if ea.Time != eb.Time {
				return ea.Time < eb.Time
			}
			if ea.Loc != eb.Loc {
				return ea.Loc.less(eb.Loc)
			}
			return a < b
		}
		// heap holds indices into srcs for sources with events remaining.
		heap := make([]int, 0, len(srcs))
		for i := range srcs {
			if len(srcs[i].b.events) > 0 {
				heap = append(heap, i)
			}
		}
		siftDown := func(i int) {
			for {
				l, r := 2*i+1, 2*i+2
				small := i
				if l < len(heap) && less(heap[l], heap[small]) {
					small = l
				}
				if r < len(heap) && less(heap[r], heap[small]) {
					small = r
				}
				if small == i {
					return
				}
				heap[i], heap[small] = heap[small], heap[i]
				i = small
			}
		}
		for i := len(heap)/2 - 1; i >= 0; i-- {
			siftDown(i)
		}
		for len(heap) > 0 {
			s := &srcs[heap[0]]
			t.Events = append(t.Events, remap(s, s.b.events[s.pos]))
			s.pos++
			if s.pos == len(s.b.events) {
				heap[0] = heap[len(heap)-1]
				heap = heap[:len(heap)-1]
			}
			siftDown(0)
		}
	}
	sort.Slice(t.Locations, func(i, j int) bool { return t.Locations[i].less(t.Locations[j]) })
	return t
}

// RegionName returns the name for id, or a placeholder for invalid ids.
func (t *Trace) RegionName(id RegionID) string {
	if id < 0 || int(id) >= len(t.Regions) {
		return "?"
	}
	return t.Regions[id]
}

// PathString renders a call path as "a/b/c".  The root path renders as "".
// The rendered forms are computed once per trace and cached; parents
// precede children in the path table, so each entry is its parent's
// rendering plus one segment.
func (t *Trace) PathString(p PathID) string {
	if p <= PathRoot || int(p) >= len(t.PathParent) {
		return ""
	}
	t.pathStrOnce.Do(func() {
		strs := make([]string, len(t.PathParent))
		for i := 1; i < len(strs); i++ {
			leaf := t.RegionName(t.PathRegion[i])
			if parent := t.PathParent[i]; parent > PathRoot {
				strs[i] = strs[parent] + "/" + leaf
			} else {
				strs[i] = leaf
			}
		}
		t.pathStrs = strs
	})
	return t.pathStrs[p]
}

// PathLeaf returns the leaf region name of path p ("" for the root).
func (t *Trace) PathLeaf(p PathID) string {
	if p <= PathRoot || int(p) >= len(t.PathParent) {
		return ""
	}
	return t.RegionName(t.PathRegion[p])
}

// Duration returns the time span covered by the trace.
func (t *Trace) Duration() float64 {
	if len(t.Events) == 0 {
		return 0
	}
	return t.Events[len(t.Events)-1].Time - t.Events[0].Time
}

// Start returns the earliest event time (0 for an empty trace).
func (t *Trace) Start() float64 {
	if len(t.Events) == 0 {
		return 0
	}
	return t.Events[0].Time
}

// End returns the latest event time.
func (t *Trace) End() float64 {
	if len(t.Events) == 0 {
		return 0
	}
	return t.Events[len(t.Events)-1].Time
}

// Shape summarizes the location grid of the trace: the number of distinct
// MPI ranks and the maximum thread count any rank ran with.  It is the run
// metadata the profile store records alongside each baseline.
func (t *Trace) Shape() (ranks, threads int) {
	seen := make(map[int32]bool)
	for _, loc := range t.Locations {
		if !seen[loc.Rank] {
			seen[loc.Rank] = true
			ranks++
		}
		if n := int(loc.Thread) + 1; n > threads {
			threads = n
		}
	}
	return ranks, threads
}

// FilterLocation returns the events of a single location, in time order.
func (t *Trace) FilterLocation(loc Location) []Event {
	var out []Event
	for _, ev := range t.Events {
		if ev.Loc == loc {
			out = append(out, ev)
		}
	}
	return out
}
