package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func loc(r, t int32) Location { return Location{Rank: r, Thread: t} }

func TestBufferRegionsAndPaths(t *testing.T) {
	b := NewBuffer(loc(0, 0))
	b.Enter("main", 0)
	b.Enter("phase1", 1)
	b.Exit(2)
	b.Enter("phase2", 3)
	b.Enter("inner", 4)
	b.Exit(5)
	b.Exit(6)
	b.Exit(7)
	tr := Merge(b)
	if len(tr.Events) != 8 {
		t.Fatalf("got %d events", len(tr.Events))
	}
	// The inner event's path must render main/phase2/inner.
	var innerPath PathID
	for _, ev := range tr.Events {
		if ev.Kind == KindEnter && tr.RegionName(ev.Region) == "inner" {
			innerPath = ev.Path
		}
	}
	if got := tr.PathString(innerPath); got != "main/phase2/inner" {
		t.Errorf("inner path = %q", got)
	}
	if got := tr.PathLeaf(innerPath); got != "inner" {
		t.Errorf("leaf = %q", got)
	}
}

func TestExitWithoutEnterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exit without Enter did not panic")
		}
	}()
	NewBuffer(loc(0, 0)).Exit(1)
}

func TestNilBufferIsSafe(t *testing.T) {
	var b *Buffer
	b.Enter("x", 0) // must not panic
	b.Exit(1)
	b.Record(Event{})
	if b.Len() != 0 || b.Depth() != 0 {
		t.Error("nil buffer reports nonzero state")
	}
}

func TestMergeOrdersAndRemaps(t *testing.T) {
	b0 := NewBuffer(loc(0, 0))
	b1 := NewBuffer(loc(1, 0))
	// Different interning orders for the same names.
	b0.Enter("alpha", 0)
	b0.Enter("beta", 2)
	b0.Exit(3)
	b0.Exit(4)
	b1.Enter("beta", 1)
	b1.Enter("alpha", 2.5)
	b1.Exit(5)
	b1.Exit(6)
	tr := Merge(b0, b1)
	// Events sorted by time.
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].Time < tr.Events[i-1].Time {
			t.Fatalf("events out of order at %d", i)
		}
	}
	// Region names preserved per location.
	for _, ev := range tr.Events {
		if ev.Kind != KindEnter {
			continue
		}
		name := tr.RegionName(ev.Region)
		if ev.Loc == loc(0, 0) && ev.Time == 0 && name != "alpha" {
			t.Errorf("loc0 first region = %q", name)
		}
		if ev.Loc == loc(1, 0) && ev.Time == 1 && name != "beta" {
			t.Errorf("loc1 first region = %q", name)
		}
	}
	if len(tr.Locations) != 2 {
		t.Errorf("locations = %v", tr.Locations)
	}
	if tr.Duration() != 6 {
		t.Errorf("duration = %v", tr.Duration())
	}
}

func TestMergeSkipsNil(t *testing.T) {
	b := NewBuffer(loc(0, 0))
	b.Enter("x", 0)
	b.Exit(1)
	tr := Merge(nil, b, nil)
	if len(tr.Events) != 2 {
		t.Errorf("got %d events", len(tr.Events))
	}
}

func TestStats(t *testing.T) {
	b := NewBuffer(loc(0, 0))
	b.Enter("main", 0)
	b.Enter("work", 1)
	b.Exit(4) // work: 3s inclusive
	b.Enter("work", 5)
	b.Exit(6) // work: 1s
	b.Exit(10)
	tr := Merge(b)
	st := ComputeStats(tr)
	if got := st.RegionInclusive("work"); got != 4 {
		t.Errorf("work inclusive = %v, want 4", got)
	}
	if got := st.RegionCount("work"); got != 2 {
		t.Errorf("work count = %d, want 2", got)
	}
	// main: inclusive 10, exclusive 10-4=6.
	ms := st.Regions["main"][loc(0, 0)]
	if ms.Inclusive != 10 || ms.Exclusive != 6 {
		t.Errorf("main = %+v", ms)
	}
	if st.TotalTime != 10 {
		t.Errorf("total = %v", st.TotalTime)
	}
	prof := st.Profile()
	if !strings.Contains(prof, "main") || !strings.Contains(prof, "work") {
		t.Errorf("profile missing regions:\n%s", prof)
	}
}

func TestRoundTripSerialization(t *testing.T) {
	b0 := NewBuffer(loc(0, 0))
	b0.Enter("main", 0)
	b0.Record(Event{
		Time: 1.5, Aux: 1.0, Kind: KindSend, Peer: 1, CRank: 0,
		Tag: 7, Bytes: 2048, Match: 42, Comm: 3, Flags: FlagSync,
	})
	b0.Exit(2)
	b1 := NewBuffer(loc(1, 2))
	b1.Enter("main", 0.5)
	b1.Record(Event{
		Time: 2.5, Aux: 0.5, Kind: KindColl, Coll: CollBcast,
		Root: 0, CRank: 1, Match: 9, Comm: 0, Bytes: 64,
	})
	b1.Exit(3)
	tr := Merge(b0, b1)

	var buf bytes.Buffer
	n, err := tr.Write(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(tr.Events) {
		t.Fatalf("event count %d != %d", len(got.Events), len(tr.Events))
	}
	for i := range tr.Events {
		if tr.Events[i] != got.Events[i] {
			t.Errorf("event %d differs:\n%+v\n%+v", i, tr.Events[i], got.Events[i])
		}
	}
	if len(got.Regions) != len(tr.Regions) {
		t.Errorf("region tables differ")
	}
	for i, ev := range got.Events {
		if got.PathString(ev.Path) != tr.PathString(tr.Events[i].Path) {
			t.Errorf("path of event %d differs", i)
		}
	}
	if len(got.Locations) != 2 {
		t.Errorf("locations = %v", got.Locations)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Valid magic, truncated body.
	if _, err := Read(bytes.NewReader([]byte("ATS1"))); err == nil {
		t.Error("truncated trace accepted")
	}
}

func TestFileRoundTrip(t *testing.T) {
	b := NewBuffer(loc(0, 0))
	b.Enter("x", 0)
	b.Exit(1)
	tr := Merge(b)
	path := t.TempDir() + "/trace.ats"
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != 2 {
		t.Errorf("got %d events", len(got.Events))
	}
}

func TestTimeline(t *testing.T) {
	b0 := NewBuffer(loc(0, 0))
	b0.Enter("work", 0)
	b0.Exit(10)
	b1 := NewBuffer(loc(1, 0))
	b1.Enter("wait", 0)
	b1.Exit(10)
	tr := Merge(b0, b1)
	out := Timeline(tr, TimelineOptions{Width: 40})
	if !strings.Contains(out, "0.0") || !strings.Contains(out, "1.0") {
		t.Errorf("timeline missing location rows:\n%s", out)
	}
	if !strings.Contains(out, "legend") {
		t.Errorf("timeline missing legend:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	var rowLen int
	for _, l := range lines {
		if strings.Contains(l, "|") {
			if rowLen == 0 {
				rowLen = len(l)
			} else if strings.HasPrefix(strings.TrimSpace(l), "0.") || strings.HasPrefix(strings.TrimSpace(l), "1.") {
				if len(l) != rowLen {
					t.Errorf("ragged timeline rows:\n%s", out)
				}
			}
		}
	}
}

func TestTimelineNested(t *testing.T) {
	// Nested regions: the innermost region must win in the rendering.
	b := NewBuffer(loc(0, 0))
	b.Enter("outer", 0)
	b.Enter("inner", 4)
	b.Exit(6)
	b.Exit(10)
	tr := Merge(b)
	out := Timeline(tr, TimelineOptions{Width: 10, Regions: []string{"inner", "outer"}})
	// With width 10 over span 10, columns 4-5 are inner ('W'), rest outer ('S').
	var row string
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "|") {
			row = l[strings.Index(l, "|")+1:]
			row = row[:10]
			break
		}
	}
	if row[0] != 'S' || row[4] != 'W' || row[9] != 'S' {
		t.Errorf("unexpected nesting render: %q (out:\n%s)", row, out)
	}
}

func TestEmptyTimeline(t *testing.T) {
	tr := Merge()
	if out := Timeline(tr, TimelineOptions{}); !strings.Contains(out, "empty") {
		t.Errorf("empty trace render = %q", out)
	}
}

func TestFilterLocation(t *testing.T) {
	b0 := NewBuffer(loc(0, 0))
	b0.Enter("a", 0)
	b0.Exit(1)
	b1 := NewBuffer(loc(1, 0))
	b1.Enter("b", 0.5)
	b1.Exit(2)
	tr := Merge(b0, b1)
	evs := tr.FilterLocation(loc(1, 0))
	if len(evs) != 2 {
		t.Fatalf("got %d events", len(evs))
	}
	for _, ev := range evs {
		if ev.Loc != loc(1, 0) {
			t.Errorf("wrong location %v", ev.Loc)
		}
	}
}

// Round-trip property test: arbitrary event payloads survive
// serialization bit-exactly.
func TestQuickSerializationRoundTrip(t *testing.T) {
	inv := func(times []float64, peers []int16, bytes16 []uint16) bool {
		b := NewBuffer(loc(0, 0))
		b.Enter("r", 0)
		n := len(times)
		if len(peers) < n {
			n = len(peers)
		}
		if len(bytes16) < n {
			n = len(bytes16)
		}
		for i := 0; i < n; i++ {
			b.Record(Event{
				Time: times[i], Kind: KindSend, Peer: int32(peers[i]),
				Bytes: int64(bytes16[i]), Match: uint64(i),
			})
		}
		b.Exit(1)
		tr := Merge(b)
		var buf bytes.Buffer
		if _, err := tr.Write(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(got.Events) != len(tr.Events) {
			return false
		}
		for i := range tr.Events {
			if tr.Events[i] != got.Events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(inv, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestKindAndCollStrings(t *testing.T) {
	if KindSend.String() != "send" || KindColl.String() != "coll" {
		t.Error("kind strings wrong")
	}
	if CollBcast.String() != "MPI_Bcast" {
		t.Errorf("CollBcast = %q", CollBcast.String())
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Error("unknown kind string")
	}
}

func TestPathProfile(t *testing.T) {
	b := NewBuffer(loc(0, 0))
	b.Enter("main", 0)
	b.Enter("work", 1)
	b.Exit(4)
	b.Enter("comm", 4)
	b.Enter("send", 4.5)
	b.Exit(5)
	b.Exit(6)
	b.Exit(10)
	tr := Merge(b)
	pp := ComputePathProfile(tr)
	if pp.Total != 10 {
		t.Errorf("total = %v", pp.Total)
	}
	// Find paths by rendered string.
	byPath := map[string]float64{}
	for p, v := range pp.Inclusive {
		byPath[tr.PathString(p)] = v
	}
	if byPath["main"] != 10 || byPath["main/work"] != 3 ||
		byPath["main/comm"] != 2 || byPath["main/comm/send"] != 0.5 {
		t.Errorf("inclusive = %v", byPath)
	}
	out := pp.RenderTree(tr)
	for _, want := range []string{"main", "work", "comm", "send", "call tree"} {
		if !strings.Contains(out, want) {
			t.Errorf("tree missing %q:\n%s", want, out)
		}
	}
	// "main" line must come before its children and children ordered by
	// time (work before comm).
	if strings.Index(out, "work") > strings.Index(out, "comm") {
		t.Errorf("children not sorted by inclusive time:\n%s", out)
	}
}
