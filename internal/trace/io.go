package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
)

// Binary trace format ("ATS1"):
//
//	magic            [4]byte  "ATS1"
//	regionCount      uvarint
//	regions          regionCount × (uvarint len, bytes)
//	pathCount        uvarint  (including the root node)
//	paths            (pathCount-1) × (uvarint parent, uvarint region)
//	locationCount    uvarint
//	locations        locationCount × (varint rank, varint thread)
//	eventCount       uvarint
//	events           eventCount × fixed encoding (see writeEvent)
//
// All multi-byte integers are varint-encoded; floats are IEEE-754 bits in
// little-endian order.  The format is self-contained: a trace written by
// cmd binaries can be re-read by cmd/atsanalyze and cmd/atstrace.

var magic = [4]byte{'A', 'T', 'S', '1'}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

func writeUvarint(w io.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeVarint(w io.Writer, v int64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeFloat(w io.Writer, f float64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
	_, err := w.Write(buf[:])
	return err
}

func writeString(w io.Writer, s string) error {
	if err := writeUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func writeEvent(w io.Writer, ev *Event) error {
	if err := writeFloat(w, ev.Time); err != nil {
		return err
	}
	if err := writeFloat(w, ev.Aux); err != nil {
		return err
	}
	fixed := []byte{byte(ev.Kind), byte(ev.Coll), ev.Flags}
	if _, err := w.Write(fixed); err != nil {
		return err
	}
	for _, v := range []int64{
		int64(ev.Loc.Rank), int64(ev.Loc.Thread),
		int64(ev.Region), int64(ev.Path),
		int64(ev.Peer), int64(ev.CRank), int64(ev.Tag),
		ev.Bytes, int64(ev.Root), int64(ev.Comm),
	} {
		if err := writeVarint(w, v); err != nil {
			return err
		}
	}
	return writeUvarint(w, ev.Match)
}

// Write serializes the trace to w.  It returns the number of bytes written.
func (t *Trace) Write(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	if _, err := bw.Write(magic[:]); err != nil {
		return cw.n, err
	}
	if err := writeUvarint(bw, uint64(len(t.Regions))); err != nil {
		return cw.n, err
	}
	for _, r := range t.Regions {
		if err := writeString(bw, r); err != nil {
			return cw.n, err
		}
	}
	if err := writeUvarint(bw, uint64(len(t.PathParent))); err != nil {
		return cw.n, err
	}
	for i := 1; i < len(t.PathParent); i++ {
		if err := writeUvarint(bw, uint64(t.PathParent[i])); err != nil {
			return cw.n, err
		}
		if err := writeUvarint(bw, uint64(t.PathRegion[i])); err != nil {
			return cw.n, err
		}
	}
	if err := writeUvarint(bw, uint64(len(t.Locations))); err != nil {
		return cw.n, err
	}
	for _, l := range t.Locations {
		if err := writeVarint(bw, int64(l.Rank)); err != nil {
			return cw.n, err
		}
		if err := writeVarint(bw, int64(l.Thread)); err != nil {
			return cw.n, err
		}
	}
	if err := writeUvarint(bw, uint64(len(t.Events))); err != nil {
		return cw.n, err
	}
	for i := range t.Events {
		if err := writeEvent(bw, &t.Events[i]); err != nil {
			return cw.n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// WriteFile serializes the trace to the named file.
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := t.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readFloat(r io.ByteReader) (float64, error) {
	var buf [8]byte
	for i := range buf {
		b, err := r.ReadByte()
		if err != nil {
			return 0, err
		}
		buf[i] = b
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}

func readString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("trace: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// Read deserializes a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("trace: bad magic %q", m[:])
	}
	t := &Trace{}
	nRegions, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	t.Regions = make([]string, nRegions)
	for i := range t.Regions {
		if t.Regions[i], err = readString(br); err != nil {
			return nil, err
		}
	}
	nPaths, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nPaths == 0 {
		return nil, fmt.Errorf("trace: missing path root")
	}
	t.PathParent = make([]PathID, nPaths)
	t.PathRegion = make([]RegionID, nPaths)
	t.PathParent[0], t.PathRegion[0] = -1, -1
	for i := uint64(1); i < nPaths; i++ {
		p, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		rg, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if p >= i || rg >= nRegions {
			return nil, fmt.Errorf("trace: corrupt path table entry %d", i)
		}
		t.PathParent[i] = PathID(p)
		t.PathRegion[i] = RegionID(rg)
	}
	nLocs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	t.Locations = make([]Location, nLocs)
	for i := range t.Locations {
		rank, err := binary.ReadVarint(br)
		if err != nil {
			return nil, err
		}
		thread, err := binary.ReadVarint(br)
		if err != nil {
			return nil, err
		}
		t.Locations[i] = Location{Rank: int32(rank), Thread: int32(thread)}
	}
	nEvents, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	t.Events = make([]Event, nEvents)
	for i := range t.Events {
		ev := &t.Events[i]
		if ev.Time, err = readFloat(br); err != nil {
			return nil, err
		}
		if ev.Aux, err = readFloat(br); err != nil {
			return nil, err
		}
		var fixed [3]byte
		if _, err := io.ReadFull(br, fixed[:]); err != nil {
			return nil, err
		}
		ev.Kind, ev.Coll, ev.Flags = Kind(fixed[0]), CollKind(fixed[1]), fixed[2]
		dst := []*int64{nil, nil, nil, nil, nil, nil, nil, &ev.Bytes, nil, nil}
		var ints [10]int64
		for j := range ints {
			v, err := binary.ReadVarint(br)
			if err != nil {
				return nil, err
			}
			ints[j] = v
			if dst[j] != nil {
				*dst[j] = v
			}
		}
		ev.Loc = Location{Rank: int32(ints[0]), Thread: int32(ints[1])}
		ev.Region = RegionID(ints[2])
		ev.Path = PathID(ints[3])
		ev.Peer, ev.CRank, ev.Tag = int32(ints[4]), int32(ints[5]), int32(ints[6])
		ev.Root, ev.Comm = int32(ints[8]), int32(ints[9])
		if ev.Match, err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
		if int(ev.Path) >= len(t.PathParent) {
			return nil, fmt.Errorf("trace: event %d references unknown path %d", i, ev.Path)
		}
	}
	return t, nil
}

// ReadFile deserializes a trace from the named file.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// jsonEvent is the export schema of WriteJSON.
type jsonEvent struct {
	Time  float64 `json:"t"`
	Aux   float64 `json:"aux,omitempty"`
	Kind  string  `json:"kind"`
	Loc   string  `json:"loc"`
	Path  string  `json:"path,omitempty"`
	Peer  int32   `json:"peer,omitempty"`
	Tag   int32   `json:"tag,omitempty"`
	Bytes int64   `json:"bytes,omitempty"`
	Match uint64  `json:"match,omitempty"`
	Coll  string  `json:"coll,omitempty"`
	Root  int32   `json:"root,omitempty"`
	Comm  int32   `json:"comm,omitempty"`
}

// WriteJSON exports the trace as JSON lines (one event per line) for
// consumption by external tooling.  The format is lossy in the direction
// of readability: region/path ids are resolved to strings.
func (t *Trace) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range t.Events {
		ev := &t.Events[i]
		je := jsonEvent{
			Time: ev.Time, Aux: ev.Aux, Kind: ev.Kind.String(),
			Loc: ev.Loc.String(), Path: t.PathString(ev.Path),
			Peer: ev.Peer, Tag: ev.Tag, Bytes: ev.Bytes, Match: ev.Match,
			Root: ev.Root, Comm: ev.Comm,
		}
		if ev.Coll != CollNone {
			je.Coll = ev.Coll.String()
		}
		if err := enc.Encode(&je); err != nil {
			return err
		}
	}
	return bw.Flush()
}
