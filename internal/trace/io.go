package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
)

// Binary trace format ("ATS1"):
//
//	magic            [4]byte  "ATS1"
//	regionCount      uvarint
//	regions          regionCount × (uvarint len, bytes)
//	pathCount        uvarint  (including the root node)
//	paths            (pathCount-1) × (uvarint parent, uvarint region)
//	locationCount    uvarint
//	locations        locationCount × (varint rank, varint thread)
//	eventCount       uvarint
//	events           eventCount × fixed encoding (see writeEvent)
//
// All multi-byte integers are varint-encoded; floats are IEEE-754 bits in
// little-endian order.  The format is self-contained: a trace written by
// cmd binaries can be re-read by cmd/atsanalyze and cmd/atstrace.
// doc/FORMATS.md is the normative spec of this encoding and of the ATSC
// chunk-spool variant (see chunk.go).

var magic = [4]byte{'A', 'T', 'S', '1'}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

func writeUvarint(w io.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeVarint(w io.Writer, v int64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeFloat(w io.Writer, f float64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
	_, err := w.Write(buf[:])
	return err
}

func writeString(w io.Writer, s string) error {
	if err := writeUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func writeEvent(w io.Writer, ev *Event) error {
	if err := writeFloat(w, ev.Time); err != nil {
		return err
	}
	if err := writeFloat(w, ev.Aux); err != nil {
		return err
	}
	fixed := []byte{byte(ev.Kind), byte(ev.Coll), ev.Flags}
	if _, err := w.Write(fixed); err != nil {
		return err
	}
	for _, v := range []int64{
		int64(ev.Loc.Rank), int64(ev.Loc.Thread),
		int64(ev.Region), int64(ev.Path),
		int64(ev.Peer), int64(ev.CRank), int64(ev.Tag),
		ev.Bytes, int64(ev.Root), int64(ev.Comm),
	} {
		if err := writeVarint(w, v); err != nil {
			return err
		}
	}
	return writeUvarint(w, ev.Match)
}

// Write serializes the trace to w.  It returns the number of bytes written.
func (t *Trace) Write(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	if _, err := bw.Write(magic[:]); err != nil {
		return cw.n, err
	}
	if err := writeUvarint(bw, uint64(len(t.Regions))); err != nil {
		return cw.n, err
	}
	for _, r := range t.Regions {
		if err := writeString(bw, r); err != nil {
			return cw.n, err
		}
	}
	if err := writeUvarint(bw, uint64(len(t.PathParent))); err != nil {
		return cw.n, err
	}
	for i := 1; i < len(t.PathParent); i++ {
		if err := writeUvarint(bw, uint64(t.PathParent[i])); err != nil {
			return cw.n, err
		}
		if err := writeUvarint(bw, uint64(t.PathRegion[i])); err != nil {
			return cw.n, err
		}
	}
	if err := writeUvarint(bw, uint64(len(t.Locations))); err != nil {
		return cw.n, err
	}
	for _, l := range t.Locations {
		if err := writeVarint(bw, int64(l.Rank)); err != nil {
			return cw.n, err
		}
		if err := writeVarint(bw, int64(l.Thread)); err != nil {
			return cw.n, err
		}
	}
	if err := writeUvarint(bw, uint64(len(t.Events))); err != nil {
		return cw.n, err
	}
	for i := range t.Events {
		if err := writeEvent(bw, &t.Events[i]); err != nil {
			return cw.n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// WriteFile serializes the trace to the named file.  The write is atomic:
// the trace lands in a temporary file in the same directory and is renamed
// into place only after a successful close, so a crash or write error never
// leaves a truncated trace at path.
func (t *Trace) WriteFile(path string) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := t.Write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

func readFloat(r io.ByteReader) (float64, error) {
	var buf [8]byte
	for i := range buf {
		b, err := r.ReadByte()
		if err != nil {
			return 0, err
		}
		buf[i] = b
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}

// byteScanner is the reader shape the decoding helpers need; both
// *bufio.Reader (trace files) and *bytes.Reader (chunk frames) satisfy it.
type byteScanner interface {
	io.Reader
	io.ByteReader
}

func readString(r byteScanner) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("trace: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// Minimum encoded size of one element of each variable-length section,
// used to bound untrusted header counts against the input size: an input
// of S bytes cannot hold more than S/min elements, so a count above that
// is corrupt and must not drive a speculative allocation.
const (
	minRegionBytes   = 1  // uvarint length (zero-length string)
	minPathBytes     = 2  // uvarint parent + uvarint region
	minLocationBytes = 2  // varint rank + varint thread
	minEventBytes    = 30 // 2 floats + 3 fixed bytes + 10 varints + 1 uvarint
)

// checkCount validates an untrusted element count against the remaining
// input size (size < 0 when unknown).  Even with an unknown size the count
// is bounded so a corrupt header cannot request an implausible allocation;
// the section readers additionally grow their slices incrementally, so the
// transient allocation stays proportional to the bytes actually present.
func checkCount(n uint64, minBytes, size int64, what string) error {
	if size >= 0 && n > uint64(size)/uint64(minBytes) {
		return fmt.Errorf("trace: implausible %s count %d for %d-byte input", what, n, size)
	}
	if n > math.MaxInt32 {
		return fmt.Errorf("trace: implausible %s count %d", what, n)
	}
	return nil
}

// sliceCap bounds the initial capacity reserved for n announced elements.
// When the input size is unknown the count can still lie about how much
// data follows, so growth past the cap is left to append, which stops at
// the actual end of input.
func sliceCap(n uint64) int {
	const chunk = 1 << 16
	if n > chunk {
		return chunk
	}
	return int(n)
}

// inputSize reports how many bytes remain in r, or -1 if unknowable
// without consuming the stream.
func inputSize(r io.Reader) int64 {
	switch v := r.(type) {
	case interface{ Len() int }: // bytes.Reader, bytes.Buffer, strings.Reader
		return int64(v.Len())
	case io.Seeker: // *os.File and friends
		cur, err := v.Seek(0, io.SeekCurrent)
		if err != nil {
			return -1
		}
		end, err := v.Seek(0, io.SeekEnd)
		if err != nil {
			return -1
		}
		if _, err := v.Seek(cur, io.SeekStart); err != nil {
			return -1
		}
		return end - cur
	}
	return -1
}

// Read deserializes a trace written by Write.  Counts in the header are
// untrusted: each is checked for plausibility against the input size (when
// the reader can report one) before any allocation, so a corrupt or
// malicious header claiming, say, 2^60 events fails fast instead of
// attempting a multi-gigabyte allocation.
func Read(r io.Reader) (*Trace, error) {
	return ReadLimited(r, Limits{})
}

// ReadLimited is Read with additional policy caps for untrusted network
// ingest (see Limits); the zero Limits is exactly Read.
func ReadLimited(r io.Reader, lim Limits) (*Trace, error) {
	size := inputSize(r)
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("trace: bad magic %q", m[:])
	}
	t := &Trace{}
	nRegions, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if err := checkCount(nRegions, minRegionBytes, size, "region"); err != nil {
		return nil, err
	}
	t.Regions = make([]string, 0, sliceCap(nRegions))
	for i := uint64(0); i < nRegions; i++ {
		s, err := readString(br)
		if err != nil {
			return nil, err
		}
		t.Regions = append(t.Regions, s)
	}
	nPaths, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nPaths == 0 {
		return nil, fmt.Errorf("trace: missing path root")
	}
	if err := checkCount(nPaths, minPathBytes, size, "path"); err != nil {
		return nil, err
	}
	t.PathParent = append(make([]PathID, 0, sliceCap(nPaths)), -1)
	t.PathRegion = append(make([]RegionID, 0, sliceCap(nPaths)), -1)
	for i := uint64(1); i < nPaths; i++ {
		p, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		rg, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if p >= i || rg >= nRegions {
			return nil, fmt.Errorf("trace: corrupt path table entry %d", i)
		}
		t.PathParent = append(t.PathParent, PathID(p))
		t.PathRegion = append(t.PathRegion, RegionID(rg))
	}
	nLocs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if err := checkCount(nLocs, minLocationBytes, size, "location"); err != nil {
		return nil, err
	}
	if err := lim.checkLocations(nLocs); err != nil {
		return nil, err
	}
	t.Locations = make([]Location, 0, sliceCap(nLocs))
	for i := uint64(0); i < nLocs; i++ {
		rank, err := binary.ReadVarint(br)
		if err != nil {
			return nil, err
		}
		thread, err := binary.ReadVarint(br)
		if err != nil {
			return nil, err
		}
		if rank < math.MinInt32 || rank > math.MaxInt32 {
			return nil, fmt.Errorf("trace: location %d: rank %d out of range", i, rank)
		}
		if thread < math.MinInt32 || thread > math.MaxInt32 {
			return nil, fmt.Errorf("trace: location %d: thread %d out of range", i, thread)
		}
		t.Locations = append(t.Locations, Location{Rank: int32(rank), Thread: int32(thread)})
	}
	nEvents, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if err := checkCount(nEvents, minEventBytes, size, "event"); err != nil {
		return nil, err
	}
	if err := lim.checkEvents(nEvents); err != nil {
		return nil, err
	}
	t.Events = make([]Event, 0, sliceCap(nEvents))
	for i := uint64(0); i < nEvents; i++ {
		t.Events = append(t.Events, Event{})
		ev := &t.Events[len(t.Events)-1]
		if err := readEventBody(br, ev); err != nil {
			return nil, err
		}
		if int(ev.Path) >= len(t.PathParent) {
			return nil, fmt.Errorf("trace: event %d references unknown path %d", i, ev.Path)
		}
	}
	return t, nil
}

// readEventBody decodes one event in the writeEvent encoding.  It is
// shared by the ATS1 trace reader and the ATSC chunk-frame reader; callers
// validate the decoded ids against their own tables.
func readEventBody(r byteScanner, ev *Event) error {
	var err error
	if ev.Time, err = readFloat(r); err != nil {
		return err
	}
	if ev.Aux, err = readFloat(r); err != nil {
		return err
	}
	var fixed [3]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return err
	}
	ev.Kind, ev.Coll, ev.Flags = Kind(fixed[0]), CollKind(fixed[1]), fixed[2]
	var ints [10]int64
	for j := range ints {
		v, err := binary.ReadVarint(r)
		if err != nil {
			return err
		}
		ints[j] = v
	}
	ev.Loc = Location{Rank: int32(ints[0]), Thread: int32(ints[1])}
	ev.Region = RegionID(ints[2])
	ev.Path = PathID(ints[3])
	ev.Peer, ev.CRank, ev.Tag = int32(ints[4]), int32(ints[5]), int32(ints[6])
	ev.Bytes = ints[7]
	ev.Root, ev.Comm = int32(ints[8]), int32(ints[9])
	if ev.Match, err = binary.ReadUvarint(r); err != nil {
		return err
	}
	return nil
}

// ReadFile deserializes a trace from the named file.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// jsonEvent is the export schema of WriteJSON.
type jsonEvent struct {
	Time  float64 `json:"t"`
	Aux   float64 `json:"aux,omitempty"`
	Kind  string  `json:"kind"`
	Loc   string  `json:"loc"`
	Path  string  `json:"path,omitempty"`
	Peer  int32   `json:"peer,omitempty"`
	Tag   int32   `json:"tag,omitempty"`
	Bytes int64   `json:"bytes,omitempty"`
	Match uint64  `json:"match,omitempty"`
	Coll  string  `json:"coll,omitempty"`
	Root  int32   `json:"root,omitempty"`
	Comm  int32   `json:"comm,omitempty"`
}

// WriteJSON exports the trace as JSON lines (one event per line) for
// consumption by external tooling.  The format is lossy in the direction
// of readability: region/path ids are resolved to strings.
func (t *Trace) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range t.Events {
		ev := &t.Events[i]
		je := jsonEvent{
			Time: ev.Time, Aux: ev.Aux, Kind: ev.Kind.String(),
			Loc: ev.Loc.String(), Path: t.PathString(ev.Path),
			Peer: ev.Peer, Tag: ev.Tag, Bytes: ev.Bytes, Match: ev.Match,
			Root: ev.Root, Comm: ev.Comm,
		}
		if ev.Coll != CollNone {
			je.Coll = ev.Coll.String()
		}
		if err := enc.Encode(&je); err != nil {
			return err
		}
	}
	return bw.Flush()
}
