package trace

import (
	"fmt"
	"sort"
	"strings"
)

// RegionStat aggregates time spent in one region at one location.
type RegionStat struct {
	Region    string
	Loc       Location
	Count     int
	Inclusive float64 // time between Enter and matching Exit, summed
	Exclusive float64 // Inclusive minus time in nested regions
}

// Stats summarizes a trace: per-location total times and per-region
// inclusive/exclusive profiles.  It is the flat-profile complement to the
// analyzer's pattern search and feeds severity normalization.
type Stats struct {
	// PerLocation maps each location to its span (first to last event).
	PerLocation map[Location]float64
	// TotalTime is the sum of all location spans: the aggregate resource
	// consumption severities are normalized against (ASL convention).
	TotalTime float64
	// Regions holds per-(region, location) aggregates.
	Regions map[string]map[Location]*RegionStat
}

// ComputeStats scans the trace once and builds the profile.
func ComputeStats(t *Trace) *Stats {
	sb := NewStatsBuilder(t)
	for i := range t.Events {
		sb.Add(&t.Events[i])
	}
	return sb.Finish()
}

// StatsBuilder accumulates the flat profile event by event.  It exists so
// single-pass consumers (the analyzer fuses its pattern search, message
// statistics and the profile into one sweep) share the exact accumulation
// arithmetic of ComputeStats: same additions, same order, bit-identical
// floats — the regression store's content-addressed identity depends on
// that.
//
// Per-location state lives in dense slices indexed by a location index
// resolved once per event, instead of the three map lookups per event the
// original implementation paid.
type StatsBuilder struct {
	names    RegionNamer
	locIndex map[Location]int32
	locs     []Location // insertion order of first appearance
	perLoc   []locState
	regions  map[string]map[Location]*RegionStat
}

type statsFrame struct {
	region string
	enter  float64
	child  float64 // accumulated nested time
}

type locState struct {
	first, last float64
	stack       []statsFrame
}

// NewStatsBuilder returns a builder for events of t.
func NewStatsBuilder(t *Trace) *StatsBuilder {
	sb := NewStatsBuilderFor(t)
	n := len(t.Locations)
	sb.locIndex = make(map[Location]int32, n)
	sb.locs = make([]Location, 0, n)
	sb.perLoc = make([]locState, 0, n)
	return sb
}

// NewStatsBuilderFor returns a builder resolving region names through any
// RegionNamer — in particular a Stream, which lets the analyzer build the
// flat profile incrementally without a materialized trace.  The
// accumulation arithmetic is identical to NewStatsBuilder's.
func NewStatsBuilderFor(names RegionNamer) *StatsBuilder {
	return &StatsBuilder{
		names:    names,
		locIndex: make(map[Location]int32),
		regions:  make(map[string]map[Location]*RegionStat),
	}
}

func (sb *StatsBuilder) locState(loc Location, time float64) *locState {
	i, ok := sb.locIndex[loc]
	if !ok {
		i = int32(len(sb.perLoc))
		sb.locIndex[loc] = i
		sb.locs = append(sb.locs, loc)
		sb.perLoc = append(sb.perLoc, locState{first: time, last: time})
	}
	return &sb.perLoc[i]
}

// Add feeds one event, in trace order.
func (sb *StatsBuilder) Add(ev *Event) {
	ls := sb.locState(ev.Loc, ev.Time)
	ls.last = ev.Time
	switch ev.Kind {
	case KindEnter:
		ls.stack = append(ls.stack, statsFrame{
			region: sb.names.RegionName(ev.Region), enter: ev.Time,
		})
	case KindExit:
		if len(ls.stack) == 0 {
			return // tolerate truncated traces
		}
		f := ls.stack[len(ls.stack)-1]
		ls.stack = ls.stack[:len(ls.stack)-1]
		incl := ev.Time - f.enter
		excl := incl - f.child
		if len(ls.stack) > 0 {
			ls.stack[len(ls.stack)-1].child += incl
		}
		byLoc := sb.regions[f.region]
		if byLoc == nil {
			byLoc = make(map[Location]*RegionStat)
			sb.regions[f.region] = byLoc
		}
		rs := byLoc[ev.Loc]
		if rs == nil {
			rs = &RegionStat{Region: f.region, Loc: ev.Loc}
			byLoc[ev.Loc] = rs
		}
		rs.Count++
		rs.Inclusive += incl
		rs.Exclusive += excl
	}
}

// Finish computes the per-location spans and returns the profile.
func (sb *StatsBuilder) Finish() *Stats {
	s := &Stats{
		PerLocation: make(map[Location]float64, len(sb.locs)),
		Regions:     sb.regions,
	}
	// Sum spans in location order: TotalTime normalizes every severity,
	// so its float accumulation order must not depend on map iteration.
	order := append([]Location(nil), sb.locs...)
	sort.Slice(order, func(i, j int) bool { return order[i].less(order[j]) })
	for _, loc := range order {
		ls := &sb.perLoc[sb.locIndex[loc]]
		span := ls.last - ls.first
		s.PerLocation[loc] = span
		s.TotalTime += span
	}
	return s
}

// sortedLocs returns the keys of a per-location map in rank-major order.
func sortedLocs[V any](m map[Location]V) []Location {
	locs := make([]Location, 0, len(m))
	for loc := range m {
		locs = append(locs, loc)
	}
	sort.Slice(locs, func(i, j int) bool { return locs[i].less(locs[j]) })
	return locs
}

// RegionNames returns all region names present in the profile, sorted.
func (s *Stats) RegionNames() []string {
	names := make([]string, 0, len(s.Regions))
	for name := range s.Regions {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// RegionInclusive sums the inclusive time of a region over all locations.
func (s *Stats) RegionInclusive(region string) float64 {
	var tot float64
	for _, loc := range sortedLocs(s.Regions[region]) {
		tot += s.Regions[region][loc].Inclusive
	}
	return tot
}

// RegionCount sums the visit count of a region over all locations.
func (s *Stats) RegionCount(region string) int {
	var n int
	for _, rs := range s.Regions[region] {
		n += rs.Count
	}
	return n
}

// PathProfile aggregates inclusive time and visit counts per dynamic call
// path — the data behind an EXPERT-style call-tree pane.
type PathProfile struct {
	Inclusive map[PathID]float64
	Count     map[PathID]int
	Total     float64 // total resource time, for percentages
}

// ComputePathProfile scans the trace once and accumulates per-call-path
// inclusive times over all locations.
func ComputePathProfile(t *Trace) *PathProfile {
	pp := &PathProfile{
		Inclusive: make(map[PathID]float64),
		Count:     make(map[PathID]int),
	}
	type frame struct {
		path  PathID
		enter float64
	}
	stacks := make(map[Location][]frame)
	first := make(map[Location]float64)
	last := make(map[Location]float64)
	for _, ev := range t.Events {
		if _, ok := first[ev.Loc]; !ok {
			first[ev.Loc] = ev.Time
		}
		last[ev.Loc] = ev.Time
		switch ev.Kind {
		case KindEnter:
			stacks[ev.Loc] = append(stacks[ev.Loc], frame{path: ev.Path, enter: ev.Time})
		case KindExit:
			st := stacks[ev.Loc]
			if len(st) == 0 {
				continue
			}
			f := st[len(st)-1]
			stacks[ev.Loc] = st[:len(st)-1]
			pp.Inclusive[f.path] += ev.Time - f.enter
			pp.Count[f.path]++
		}
	}
	for _, loc := range sortedLocs(first) {
		pp.Total += last[loc] - first[loc]
	}
	return pp
}

// RenderTree renders the call-path profile as an indented tree, children
// sorted by inclusive time.
func (pp *PathProfile) RenderTree(t *Trace) string {
	children := make(map[PathID][]PathID)
	for p := range pp.Inclusive {
		node := p
		for node > PathRoot {
			parent := t.PathParent[node]
			found := false
			for _, c := range children[parent] {
				if c == node {
					found = true
					break
				}
			}
			if !found {
				children[parent] = append(children[parent], node)
			}
			node = parent
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "call tree (inclusive time over all locations; total %.6fs)\n", pp.Total)
	var walk func(p PathID, depth int)
	walk = func(p PathID, depth int) {
		kids := children[p]
		sort.Slice(kids, func(i, j int) bool {
			if pp.Inclusive[kids[i]] != pp.Inclusive[kids[j]] {
				return pp.Inclusive[kids[i]] > pp.Inclusive[kids[j]]
			}
			return kids[i] < kids[j]
		})
		for _, k := range kids {
			pct := 0.0
			if pp.Total > 0 {
				pct = pp.Inclusive[k] / pp.Total * 100
			}
			fmt.Fprintf(&b, "%s%-*s %10.6fs %6.2f%% %6d×\n",
				strings.Repeat("  ", depth),
				46-2*depth, t.RegionName(t.PathRegion[k]),
				pp.Inclusive[k], pct, pp.Count[k])
			walk(k, depth+1)
		}
	}
	walk(PathRoot, 0)
	return b.String()
}

// Profile renders a flat profile sorted by aggregate inclusive time —
// useful for eyeballing synthetic programs and in cmd/atstrace output.
func (s *Stats) Profile() string {
	type row struct {
		region string
		count  int
		incl   float64
		excl   float64
	}
	var rows []row
	for region, byLoc := range s.Regions {
		r := row{region: region}
		for _, rs := range byLoc {
			r.count += rs.Count
			r.incl += rs.Inclusive
			r.excl += rs.Exclusive
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].incl != rows[j].incl {
			return rows[i].incl > rows[j].incl
		}
		return rows[i].region < rows[j].region
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-40s %8s %12s %12s\n", "region", "count", "incl(s)", "excl(s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-40s %8d %12.6f %12.6f\n", r.region, r.count, r.incl, r.excl)
	}
	return b.String()
}
