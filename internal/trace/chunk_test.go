package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fillBuffer records a deterministic mix of event kinds into b.  The same
// (rank, n) always produces the same events, so a spooled and an in-memory
// copy of a "run" can be built independently.
func fillBuffer(b *Buffer, rank int32, n int) {
	t := float64(rank) * 0.001
	b.Enter("main", t)
	for i := 0; i < n; i++ {
		t += 0.001
		b.Enter(fmt.Sprintf("region%d", i%3), t)
		t += 0.001
		b.Record(Event{Time: t, Kind: KindSend, Peer: rank + 1, CRank: rank, Tag: 7,
			Bytes: 1024, Match: uint64(rank)*1000 + uint64(i), Flags: FlagSync})
		t += 0.001
		b.Record(Event{Time: t, Aux: t - 0.0005, Kind: KindColl, Coll: CollBarrier,
			Root: -1, Comm: 0, Match: uint64(i)})
		t += 0.001
		b.Exit(t)
	}
	t += 0.001
	b.Exit(t)
}

// buildBuffers creates nLocs deterministic buffers with distinct locations.
func buildBuffers(nLocs, events int) []*Buffer {
	bufs := make([]*Buffer, nLocs)
	for i := range bufs {
		bufs[i] = NewBuffer(Location{Rank: int32(i), Thread: 0})
		fillBuffer(bufs[i], int32(i), events)
	}
	return bufs
}

// buildSpool records the same events into a chunk spool at path, spilling
// every spillEvents events.
func buildSpool(t *testing.T, path string, nLocs, events, spillEvents int) {
	t.Helper()
	w, err := NewChunkWriter(path, spillEvents)
	if err != nil {
		t.Fatalf("NewChunkWriter: %v", err)
	}
	for i := 0; i < nLocs; i++ {
		b := NewBuffer(Location{Rank: int32(i), Thread: 0})
		w.Attach(b)
		fillBuffer(b, int32(i), events)
		if err := w.Finish(b); err != nil {
			t.Fatalf("Finish: %v", err)
		}
		b.Release()
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// drainStream collects every event of st together with its resolved
// region/path strings.
type streamedEvent struct {
	ev     Event
	region string
	path   string
}

func drainStream(t *testing.T, st *Stream) []streamedEvent {
	t.Helper()
	var out []streamedEvent
	for {
		ev, err := st.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if ev == nil {
			return out
		}
		se := streamedEvent{ev: *ev, path: st.PathString(ev.Path)}
		if ev.Kind == KindEnter || ev.Kind == KindExit {
			se.region = st.RegionName(ev.Region)
		}
		out = append(out, se)
	}
}

// compareToTrace checks that the streamed sequence equals the merged trace
// event for event.  Global region/path ids may legitimately differ between
// the two paths (interning order differs); names and rendered paths must
// not.
func compareToTrace(t *testing.T, want *Trace, got []streamedEvent) {
	t.Helper()
	if len(got) != len(want.Events) {
		t.Fatalf("streamed %d events, merged trace has %d", len(got), len(want.Events))
	}
	for i := range got {
		w, g := want.Events[i], got[i].ev
		gotRegion, gotPath := got[i].region, got[i].path
		wantRegion := ""
		if w.Kind == KindEnter || w.Kind == KindExit {
			wantRegion = want.RegionName(w.Region)
		}
		wantPath := want.PathString(w.Path)
		// Blank out the table ids before struct comparison.
		w.Region, g.Region = 0, 0
		w.Path, g.Path = 0, 0
		if w != g {
			t.Fatalf("event %d: streamed %+v, want %+v", i, g, w)
		}
		if gotRegion != wantRegion {
			t.Fatalf("event %d: region %q, want %q", i, gotRegion, wantRegion)
		}
		if gotPath != wantPath {
			t.Fatalf("event %d: path %q, want %q", i, gotPath, wantPath)
		}
	}
}

func TestChunkStreamMatchesMerge(t *testing.T) {
	const nLocs, events = 5, 13
	for _, spill := range []int{1, 4, 7, 1000} {
		t.Run(fmt.Sprintf("spill=%d", spill), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "run.atsc")
			buildSpool(t, path, nLocs, events, spill)

			bufs := buildBuffers(nLocs, events)
			want := Merge(bufs...)

			r, err := OpenChunkFile(path)
			if err != nil {
				t.Fatalf("OpenChunkFile: %v", err)
			}
			if got := r.Events(); got != len(want.Events) {
				t.Fatalf("index events = %d, want %d", got, len(want.Events))
			}
			st, err := NewStream(r)
			if err != nil {
				t.Fatalf("NewStream: %v", err)
			}
			defer st.Close()
			got := drainStream(t, st)
			compareToTrace(t, want, got)

			if st.Events() != len(want.Events) {
				t.Errorf("Stream.Events = %d, want %d", st.Events(), len(want.Events))
			}
			if st.Duration() != want.Duration() {
				t.Errorf("Stream.Duration = %v, want %v", st.Duration(), want.Duration())
			}
			gr, gt := st.Shape()
			wr, wt := want.Shape()
			if gr != wr || gt != wt {
				t.Errorf("Stream.Shape = (%d,%d), want (%d,%d)", gr, gt, wr, wt)
			}
			if len(st.Locations()) != len(want.Locations) {
				t.Errorf("Stream.Locations = %v, want %v", st.Locations(), want.Locations)
			}
		})
	}
}

func TestBufferStreamMatchesMerge(t *testing.T) {
	want := Merge(buildBuffers(4, 9)...)
	st, err := NewBufferStream(buildBuffers(4, 9)...)
	if err != nil {
		t.Fatalf("NewBufferStream: %v", err)
	}
	compareToTrace(t, want, drainStream(t, st))
}

// TestBufferSpillKeepsTables verifies that spilling clears only the event
// slab: the intern tables (and therefore StackNames for OMP forks) survive.
func TestBufferSpillKeepsTables(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.atsc")
	w, err := NewChunkWriter(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuffer(Location{Rank: 0, Thread: 0})
	w.Attach(b)
	b.Enter("outer", 0.1) // spill threshold 2 triggers inside Enter/Exit
	b.Enter("inner", 0.2)
	if got := b.Len(); got >= 2 {
		t.Fatalf("buffer holds %d events; expected spill to have drained it", got)
	}
	if got := strings.Join(b.StackNames(), "/"); got != "outer/inner" {
		t.Fatalf("StackNames after spill = %q", got)
	}
	b.Exit(0.3)
	b.Exit(0.4)
	if err := w.Finish(b); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenChunkFile(path)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStream(r)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	evs := drainStream(t, st)
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	if evs[1].path != "outer/inner" {
		t.Fatalf("inner enter path = %q", evs[1].path)
	}
}

// TestChunkWriterAtomic verifies the temp+rename contract: nothing lands
// at the target path before Close, and Abort leaves nothing behind.
func TestChunkWriterAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.atsc")
	w, err := NewChunkWriter(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuffer(Location{})
	w.Attach(b)
	fillBuffer(b, 0, 8)
	if err := w.Finish(b); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("spool visible at target path before Close (err=%v)", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("spool missing after Close: %v", err)
	}

	w2, err := NewChunkWriter(filepath.Join(dir, "aborted.atsc"), 4)
	if err != nil {
		t.Fatal(err)
	}
	b2 := NewBuffer(Location{})
	w2.Attach(b2)
	fillBuffer(b2, 0, 8)
	w2.Abort()
	if err := w2.Finish(b2); err == nil {
		t.Fatal("Finish after Abort: expected error")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "run.atsc" {
			t.Fatalf("leftover file %q after Abort", e.Name())
		}
	}
}

func TestChunkWriterDuplicateLocation(t *testing.T) {
	w, err := NewChunkWriter(filepath.Join(t.TempDir(), "run.atsc"), 4)
	if err != nil {
		t.Fatal(err)
	}
	a := NewBuffer(Location{Rank: 1})
	b := NewBuffer(Location{Rank: 1})
	w.Attach(a)
	w.Attach(b)
	if err := w.Close(); err == nil || !strings.Contains(err.Error(), "duplicate stream") {
		t.Fatalf("Close error = %v, want duplicate stream", err)
	}
}

func TestChunkWriterUnfinishedStream(t *testing.T) {
	w, err := NewChunkWriter(filepath.Join(t.TempDir(), "run.atsc"), 4)
	if err != nil {
		t.Fatal(err)
	}
	w.Attach(NewBuffer(Location{Rank: 3}))
	if err := w.Close(); err == nil || !strings.Contains(err.Error(), "unfinished stream") {
		t.Fatalf("Close error = %v, want unfinished stream", err)
	}
}

// corruptChunk is one corruption scenario: a mutation of a valid spool
// that must be rejected either at open or while draining the stream.
func TestChunkCorruption(t *testing.T) {
	valid := func(t *testing.T) []byte {
		path := filepath.Join(t.TempDir(), "run.atsc")
		buildSpool(t, path, 2, 6, 4)
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}

	// Hand-assembled spool whose index claims an absurd event count — the
	// chunk-format sibling of testdata/corrupt-hugecount.ats: it must be
	// rejected by the count-vs-size check, not by attempting to allocate.
	hugeCount := func(t *testing.T) []byte {
		var buf bytes.Buffer
		buf.Write(chunkMagic[:])
		buf.WriteByte(chunkVersion)
		buf.WriteByte(chunkTagEnd)
		indexOff := buf.Len()
		writeUvarint(&buf, 1)             // one stream
		writeVarint(&buf, 0)              // rank
		writeVarint(&buf, 0)              // thread
		writeUvarint(&buf, uint64(1)<<60) // events: implausible
		writeUvarint(&buf, 0)             // no frames
		var tail [chunkTrailerLen]byte
		binary.LittleEndian.PutUint64(tail[:8], uint64(indexOff))
		copy(tail[8:], chunkTrailerMagic[:])
		buf.Write(tail[:])
		return buf.Bytes()
	}

	cases := []struct {
		name   string
		mutate func(t *testing.T) []byte
	}{
		{"bad-magic", func(t *testing.T) []byte {
			b := valid(t)
			b[0] = 'X'
			return b
		}},
		{"bad-version", func(t *testing.T) []byte {
			b := valid(t)
			b[4] = 99
			return b
		}},
		{"bad-trailer-magic", func(t *testing.T) []byte {
			b := valid(t)
			b[len(b)-1] = 'Z'
			return b
		}},
		{"truncated", func(t *testing.T) []byte {
			b := valid(t)
			return b[:len(b)/2]
		}},
		{"too-short", func(t *testing.T) []byte {
			return []byte("ATSC")
		}},
		{"index-offset-beyond-file", func(t *testing.T) []byte {
			b := valid(t)
			binary.LittleEndian.PutUint64(b[len(b)-12:len(b)-4], uint64(len(b)))
			return b
		}},
		{"index-offset-into-header", func(t *testing.T) []byte {
			b := valid(t)
			binary.LittleEndian.PutUint64(b[len(b)-12:len(b)-4], 2)
			return b
		}},
		{"index-offset-misaligned", func(t *testing.T) []byte {
			// Points mid-frame: whatever parses must fail validation.
			b := valid(t)
			binary.LittleEndian.PutUint64(b[len(b)-12:len(b)-4], chunkHeaderLen+2)
			return b
		}},
		{"frame-garbage", func(t *testing.T) []byte {
			// Zero the first frame's body: the location varints and
			// counts no longer match the stream.
			b := valid(t)
			for i := chunkHeaderLen + 2; i < chunkHeaderLen+12; i++ {
				b[i] = 0xFF
			}
			return b
		}},
		{"huge-event-count", hugeCount},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "corrupt.atsc")
			if err := os.WriteFile(path, tc.mutate(t), 0o644); err != nil {
				t.Fatal(err)
			}
			r, err := OpenChunkFile(path)
			if err != nil {
				return // rejected at open: good
			}
			defer r.Close()
			st, err := NewStream(r)
			if err != nil {
				return // rejected while priming: good
			}
			for {
				ev, err := st.Next()
				if err != nil {
					return // rejected while draining: good
				}
				if ev == nil {
					t.Fatal("corrupt spool drained without error")
				}
			}
		})
	}
}

// TestChunkEmptyStreams: locations that never record events still appear
// in the stream's location set (they shape the grid), with no events.
func TestChunkEmptyStreams(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.atsc")
	w, err := NewChunkWriter(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	idle := NewBuffer(Location{Rank: 0})
	busy := NewBuffer(Location{Rank: 1})
	w.Attach(idle)
	w.Attach(busy)
	fillBuffer(busy, 1, 3)
	if err := w.Finish(idle); err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(busy); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenChunkFile(path)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStream(r)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got := len(st.Locations()); got != 2 {
		t.Fatalf("locations = %d, want 2", got)
	}
	evs := drainStream(t, st)
	for _, se := range evs {
		if se.ev.Loc.Rank != 1 {
			t.Fatalf("event from idle location: %+v", se.ev)
		}
	}
	if ranks, _ := st.Shape(); ranks != 2 {
		t.Fatalf("Shape ranks = %d, want 2", ranks)
	}
}
