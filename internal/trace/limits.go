package trace

import "fmt"

// Limits bounds untrusted trace input beyond the structural plausibility
// checks that Read and OpenChunkFile always apply.  The structural checks
// (checkCount) only reject counts the input *cannot* hold; a network
// ingest path additionally wants policy caps — a server must be able to
// say "no upload may carry more than N events", independent of how many
// bytes the client managed to send.  Zero fields are unlimited, so the
// zero Limits reproduces the old behavior exactly.
//
// Limits extends the PR 4 untrusted-count hardening: those fixes stop a
// tiny input from *claiming* huge counts; these stop a genuinely huge
// input from being admitted at all.
type Limits struct {
	// MaxEvents caps the total number of events an input may carry (ATS1:
	// the event section; ATSC: the sum of the index's per-stream counts).
	MaxEvents int64
	// MaxLocations caps the number of distinct locations (ATS1: the
	// location table; ATSC: the index's stream count).
	MaxLocations int
	// MaxFrame caps one ATSC frame body in bytes.  Frames are the unit a
	// streaming reader materializes, so this bounds per-frame memory even
	// when the spool as a whole is large.
	MaxFrame int64
}

// checkEvents enforces MaxEvents against an announced or accumulated
// event count.
func (l Limits) checkEvents(n uint64) error {
	if l.MaxEvents > 0 && n > uint64(l.MaxEvents) {
		return fmt.Errorf("trace: input carries %d events, limit %d", n, l.MaxEvents)
	}
	return nil
}

// checkLocations enforces MaxLocations against a location/stream count.
func (l Limits) checkLocations(n uint64) error {
	if l.MaxLocations > 0 && n > uint64(l.MaxLocations) {
		return fmt.Errorf("trace: input carries %d locations, limit %d", n, l.MaxLocations)
	}
	return nil
}

// checkFrame enforces MaxFrame against one ATSC frame body length.
func (l Limits) checkFrame(n int64) error {
	if l.MaxFrame > 0 && n > l.MaxFrame {
		return fmt.Errorf("trace: chunk frame of %d bytes, limit %d", n, l.MaxFrame)
	}
	return nil
}
