package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
	"repro/internal/vtime"
)

// Status describes a completed receive (MPI_Status).
type Status struct {
	// Source is the comm-local rank of the sender.
	Source int
	// Tag is the message tag.
	Tag int
	// Count is the number of elements received.
	Count int
}

// message is an in-flight point-to-point message.
type message struct {
	cid   int32
	src   int // comm-local source rank
	tag   int
	dtype Datatype
	count int
	data  []byte

	sendEnter float64 // time the sender entered the send operation
	avail     float64 // virtual arrival time (eager protocol)
	jitter    float64 // extra perturbed wire latency (see perturb.Model)
	sync      bool    // rendezvous protocol
	match     uint64

	// ack carries the virtual transfer-end time back to a rendezvous
	// sender (0 in real mode).  Buffered so the receiver never blocks.
	// Goroutine engine only.
	ack chan float64

	// Rendezvous completion under the event engine: the receiver stores
	// the transfer end and readies the parked sender directly (the
	// scheduler handoff serializes all access, so no channel is needed).
	acked  bool
	ackEnd float64
	waiter *proc // sender parked in waitAck, if any
}

// matchID derives the deterministic trace match id of a p2p message: the
// sender's world rank and its program-order send count.  A pure function
// of the program — identical across engines and host schedules — unlike
// the racy global counter it replaced.
func matchID(p *proc) uint64 {
	p.sendCount++
	return (uint64(p.rank)+1)<<40 | (p.sendCount & (1<<40 - 1))
}

// mailbox is a rank's incoming message queue with MPI matching semantics:
// per-sender, per-communicator, per-tag ordering is the post order (MPI's
// non-overtaking rule).  See take for the full matching rules, including
// the deterministic virtual-arrival-order treatment of AnySource.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	// q[head:] holds the pending messages; consuming from the front only
	// advances head (amortized O(1) even under large backlogs — a sender
	// racing ahead of its receiver must not make matching quadratic).
	q     []*message
	head  int
	w     *World
	owner *proc // the rank that receives from this mailbox
	// qlen mirrors the pending count for lock-free inspection by the
	// spoiler check of other ranks' wildcard receives.
	qlen atomic.Int32
}

// setQlen updates the pending-count mirror and maintains the world-wide
// count of occupied mailboxes (World.mailOcc), which lets the event
// scheduler's quiescence check conclude "no other rank holds mail, so
// nothing can spoil this wildcard" in O(1) instead of scanning every proc
// — the difference between linear and quadratic total cost for
// master/worker programs at 10⁴–10⁵ ranks.
func (mb *mailbox) setQlen(n int32) {
	old := mb.qlen.Swap(n)
	if old == 0 && n > 0 {
		mb.w.mailOcc.Add(1)
	} else if old > 0 && n == 0 {
		mb.w.mailOcc.Add(-1)
	}
}

// removeAt drops the message at index i (absolute index into q), keeping
// FIFO order.  Front removals advance head; mid-queue removals shift the
// (typically short) prefix between head and i.
func (mb *mailbox) removeAt(i int) {
	if i == mb.head {
		mb.q[i] = nil
		mb.head++
	} else {
		copy(mb.q[mb.head+1:i+1], mb.q[mb.head:i])
		mb.q[mb.head] = nil
		mb.head++
	}
	// Compact once the dead prefix dominates, bounding memory.
	if mb.head > 1024 && mb.head*2 > len(mb.q) {
		mb.q = append([]*message(nil), mb.q[mb.head:]...)
		mb.head = 0
	}
	mb.setQlen(int32(len(mb.q) - mb.head))
}

func newMailbox(w *World, owner *proc) *mailbox {
	mb := &mailbox{w: w, owner: owner}
	mb.cond = sync.NewCond(&mb.mu)
	w.registerWaker(mb)
	return mb
}

// wakeAll implements waker for abort propagation (goroutine engine).
func (mb *mailbox) wakeAll() {
	mb.mu.Lock()
	mb.cond.Broadcast()
	mb.mu.Unlock()
}

// post appends a message and wakes the receiver.  Under the event engine
// the poster is the currently running rank; a receiver parked on a
// specific source that this message satisfies becomes ready, while
// wildcard receivers stay parked until quiescence (see evScheduler).
func (mb *mailbox) post(m *message) {
	mb.mu.Lock()
	mb.q = append(mb.q, m)
	mb.setQlen(int32(len(mb.q) - mb.head))
	if mb.w.eventMode {
		mb.mu.Unlock()
		p := mb.owner
		if p.evState.Load() == evRecv && p.evSrc != AnySource &&
			matches(m, p.evCid, p.evSrc, p.evTag) {
			mb.w.sched.readyProc(p)
		}
		return
	}
	mb.cond.Broadcast()
	mb.mu.Unlock()
}

// bestAvail returns the earliest virtual arrival among queued messages a
// wildcard receive for (cid, tag) would match, and its queue index, for
// the scheduler's quiescence check.  The tie-break (lowest source rank)
// matches matchEvent's, so the index identifies exactly the message the
// granted receive will take.
func (mb *mailbox) bestAvail(cid int32, tag int) (float64, int, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	best := mb.scanBest(cid, AnySource, tag)
	if best < 0 {
		return 0, -1, false
	}
	return mb.q[best].avail, best, true
}

// scanBest returns the queue index a receive for (cid, src, tag) matches,
// or -1.  A fully specified receive matches the oldest message from its
// source; a wildcard receive matches the earliest virtual arrival, ties
// to the lowest source rank.  Caller holds mb.mu.
func (mb *mailbox) scanBest(cid int32, src, tag int) int {
	best := -1
	for i := mb.head; i < len(mb.q); i++ {
		m := mb.q[i]
		if !matches(m, cid, src, tag) {
			continue
		}
		if src != AnySource {
			return i
		}
		if best < 0 || m.avail < mb.q[best].avail ||
			(m.avail == mb.q[best].avail && m.src < mb.q[best].src) {
			best = i
		}
	}
	return best
}

// matches reports whether m satisfies a receive for (cid, src, tag).
func matches(m *message, cid int32, src, tag int) bool {
	if m.cid != cid {
		return false
	}
	if src != AnySource && m.src != src {
		return false
	}
	if tag != AnyTag && m.tag != tag {
		return false
	}
	return true
}

// take blocks until a matching message is queued, removes and returns it.
// It unwinds with a panic if the world fails while waiting.
//
// Matching semantics: a fully specified receive matches the oldest queued
// message from its source (MPI's non-overtaking rule makes this
// deterministic).  A wildcard (AnySource) receive in Virtual mode matches
// the message with the earliest virtual arrival time (ties to the lowest
// source rank), after a conservative quiescence check: as long as some
// other rank is still computing with a clock behind the candidate's
// arrival, that rank could yet produce an earlier message, so the receiver
// waits for it to advance, block, or finish.  This makes wildcard matching
// follow virtual-arrival order — the discrete-event analogue of real MPI's
// physical arrival order — instead of the racy host scheduling order.  In
// Real mode wildcard receives match in genuine arrival order.
func (mb *mailbox) take(p *proc, cid int32, src, tag int) *message {
	return mb.match(p, cid, src, tag, true)
}

// match implements take and the non-destructive Probe variant: when remove
// is false the chosen message stays queued and a subsequent receive with
// the same arguments is guaranteed to match it (the matching rules are
// deterministic functions of the queue contents).
func (mb *mailbox) match(p *proc, cid int32, src, tag int, remove bool) *message {
	if mb.w.eventMode {
		return mb.matchEvent(p, cid, src, tag, remove)
	}
	virtualWild := src == AnySource && p.ctx.Mode() == vtime.Virtual
	// maxWildcardPolls bounds the quiescence wait (~50ms of real time) so
	// a rank that holds unconsumed messages forever cannot livelock a
	// wildcard receiver; past the bound the best queued candidate is
	// accepted even if the schedule might still have been beaten.
	const maxWildcardPolls = 2500
	polls := 0
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		if virtualWild {
			best := -1
			for i := mb.head; i < len(mb.q); i++ {
				m := mb.q[i]
				if !matches(m, cid, src, tag) {
					continue
				}
				if best < 0 || m.avail < mb.q[best].avail ||
					(m.avail == mb.q[best].avail && m.src < mb.q[best].src) {
					best = i
				}
			}
			if best >= 0 {
				m := mb.q[best]
				if polls > maxWildcardPolls || !mb.w.spoilers(p, m.avail) {
					if remove {
						mb.removeAt(best)
					}
					return m
				}
				polls++
				// Quiescence poll: some rank may still beat the
				// candidate.  Count as blocked so mutually waiting
				// wildcard receivers do not spoil each other forever.
				restore := p.blockedSection()
				mb.mu.Unlock()
				time.Sleep(20 * time.Microsecond)
				mb.mu.Lock()
				restore()
				if mb.w.failed.Load() {
					mb.w.failMu.Lock()
					err := mb.w.failErr
					mb.w.failMu.Unlock()
					panic(abortError{cause: err})
				}
				continue
			}
		} else {
			for i := mb.head; i < len(mb.q); i++ {
				m := mb.q[i]
				if matches(m, cid, src, tag) {
					if remove {
						mb.removeAt(i)
					}
					return m
				}
			}
		}
		if mb.w.failed.Load() {
			mb.w.failMu.Lock()
			err := mb.w.failErr
			mb.w.failMu.Unlock()
			panic(abortError{cause: err})
		}
		restore := p.blockedSection()
		mb.cond.Wait()
		restore()
	}
}

// matchEvent is match under the event engine.  A specific-source receive
// scans for the oldest message from its source and parks until the
// matching post resumes it.  A wildcard receive parks unconditionally —
// even with candidates queued — and is granted at quiescence
// (evScheduler.quiesce), which substitutes deterministic event-queue
// reasoning for the goroutine engine's spoiler poll loop; the grant
// carries the chosen candidate's queue index (no rank runs between the
// quiescence scan and this take, so the queue is unchanged), which keeps
// a wildcard drain over a deep backlog to one scan per message instead
// of three.  Parking never holds mb.mu: the posting rank needs it.
func (mb *mailbox) matchEvent(p *proc, cid int32, src, tag int, remove bool) *message {
	wild := src == AnySource
	for {
		mb.mu.Lock()
		best := -1
		if wild {
			if p.evGrant {
				if i := p.evGrantIdx; i >= mb.head && i < len(mb.q) && matches(mb.q[i], cid, src, tag) {
					best = i
				} else {
					// The granted index should always validate; rescanning
					// keeps a broken invariant deterministic, not silent.
					best = mb.scanBest(cid, src, tag)
				}
			}
		} else {
			best = mb.scanBest(cid, src, tag)
		}
		if best >= 0 {
			p.evGrant = false
			m := mb.q[best]
			if remove {
				mb.removeAt(best)
			}
			mb.mu.Unlock()
			return m
		}
		mb.mu.Unlock()
		p.evCid, p.evSrc, p.evTag = cid, src, tag
		p.park(evRecv)
	}
}

// sendMode distinguishes the point-to-point send flavors.
type sendMode uint8

const (
	sendStandard sendMode = iota // eager below threshold, rendezvous above
	sendSync                     // always rendezvous (MPI_Ssend)
	sendBuffered                 // always eager (MPI_Bsend)
)

func (c *Comm) checkPeer(rank int, what string) {
	if rank < 0 || rank >= c.Size() {
		panic(fmt.Sprintf("mpi: %s rank %d outside communicator of size %d", what, rank, c.Size()))
	}
}

func (c *Comm) checkBuf(b *Buf, what string) {
	if b == nil || b.Data == nil {
		panic(fmt.Sprintf("mpi: %s with nil or freed buffer", what))
	}
}

// postSend builds and delivers the message for a send entered at time
// `enter`, returning it.  The caller handles rendezvous completion.
func (c *Comm) postSend(buf *Buf, dest, tag int, mode sendMode, enter float64, flags uint8) *message {
	c.checkPeer(dest, "send to")
	c.checkBuf(buf, "send")
	if tag < 0 {
		panic(fmt.Sprintf("mpi: send with negative tag %d", tag))
	}
	w := c.p.w
	bytes := buf.Bytes()
	isSync := mode == sendSync || (mode == sendStandard && bytes > w.opt.Cost.EagerThreshold)
	// The payload copy comes from the free list (no zeroing: copy
	// overwrites every byte) and is recycled by completeRecv once the
	// receiver has copied it out.
	payload := getBytes(bytes, false)
	copy(payload, buf.Data)
	m := &message{
		cid:       c.core.cid,
		src:       c.myRank,
		tag:       tag,
		dtype:     buf.Type,
		count:     buf.Count,
		data:      payload,
		sendEnter: enter,
		sync:      isSync,
		match:     matchID(c.p),
	}
	if isSync {
		if !w.eventMode {
			m.ack = make(chan float64, 1)
		}
		flags |= trace.FlagSync
	}
	if c.p.ctx.Mode() == vtime.Virtual {
		if w.opt.Perturb != nil {
			// Jitter is keyed by the sender's per-destination message
			// sequence, which program order makes deterministic; it is
			// drawn once here and reused by the rendezvous completion so
			// both protocols see the same wire.
			wdst := c.worldRankOf(dest)
			seq := c.p.sendSeq[wdst]
			c.p.sendSeq[wdst]++
			m.jitter = w.opt.Perturb.MessageJitter(c.p.rank, wdst, seq)
		}
		m.avail = enter + w.opt.Cost.transfer(bytes) + m.jitter
	}
	c.p.ctx.Record(trace.Event{
		Time: enter, Kind: trace.KindSend,
		Peer: int32(dest), CRank: int32(c.myRank), Tag: int32(tag),
		Bytes: int64(bytes), Match: m.match, Comm: c.core.cid,
		Flags: flags,
	})
	w.procs[c.worldRankOf(dest)].mb.post(m)
	return m
}

// waitAck blocks a rendezvous sender until the receiver acknowledges, then
// advances the virtual clock to the transfer end.  Under the event engine
// the sender parks and the receiver's completeRecv readies it; the
// Isend/Wait split means the ack may already have been delivered by the
// time the sender waits, in which case there is nothing to park on.
func (c *Comm) waitAck(m *message) {
	w := c.p.w
	if w.eventMode {
		if !m.acked {
			m.waiter = c.p
			c.p.park(evAck)
			m.waiter = nil
		}
		c.p.ctx.Clock.AdvanceTo(m.ackEnd + w.opt.Cost.Overhead)
		return
	}
	restore := c.p.blockedSection()
	defer restore()
	select {
	case end := <-m.ack:
		if c.p.ctx.Mode() == vtime.Virtual {
			c.p.ctx.Clock.AdvanceTo(end + w.opt.Cost.Overhead)
		}
	case <-w.failCh:
		w.checkFailed()
	}
}

// Send is the standard blocking send (MPI_Send): eager (buffered) up to the
// cost model's EagerThreshold, rendezvous above it.
func (c *Comm) Send(buf *Buf, dest, tag int) {
	ctx := c.p.ctx
	ctx.Enter("MPI_Send")
	enter := ctx.Now()
	m := c.postSend(buf, dest, tag, sendStandard, enter, 0)
	if m.sync {
		c.waitAck(m)
	} else if ctx.Mode() == vtime.Virtual {
		ctx.Clock.Advance(c.p.w.opt.Cost.Overhead)
	}
	ctx.Exit()
}

// Ssend is the synchronous blocking send (MPI_Ssend): it always completes
// only after the matching receive is posted — the protocol under which the
// "late receiver" property manifests.
func (c *Comm) Ssend(buf *Buf, dest, tag int) {
	ctx := c.p.ctx
	ctx.Enter("MPI_Ssend")
	enter := ctx.Now()
	m := c.postSend(buf, dest, tag, sendSync, enter, 0)
	c.waitAck(m)
	ctx.Exit()
}

// completeRecv copies payload, computes receive completion time, records
// the trace event and returns the status.  enter is the time waiting began
// (for the Aux field / late-sender analysis); flags annotate the event.
func (c *Comm) completeRecv(buf *Buf, m *message, enter float64, flags uint8) Status {
	if m.count > buf.Count {
		panic(fmt.Sprintf("mpi: message truncated: %d elements into buffer of %d", m.count, buf.Count))
	}
	if m.dtype != buf.Type {
		panic(fmt.Sprintf("mpi: datatype mismatch: sent %v, receiving into %v", m.dtype, buf.Type))
	}
	copy(buf.Data, m.data)
	// The message is off the queue for good (Probe never reaches here);
	// its payload can carry the next send.
	putBytes(m.data)
	m.data = nil
	ctx := c.p.ctx
	w := c.p.w
	bytes := m.count * m.dtype.Size()
	if m.sync {
		var end float64
		if ctx.Mode() == vtime.Virtual {
			start := m.sendEnter
			if enter > start {
				start = enter
			}
			end = start + w.opt.Cost.transfer(bytes) + m.jitter
		}
		if w.eventMode {
			m.ackEnd = end
			m.acked = true
			if m.waiter != nil {
				w.sched.readyProc(m.waiter)
			}
		} else {
			m.ack <- end
		}
		if ctx.Mode() == vtime.Virtual {
			ctx.Clock.AdvanceTo(end + w.opt.Cost.Overhead)
		}
		flags |= trace.FlagSync
	} else if ctx.Mode() == vtime.Virtual {
		end := m.avail
		if enter > end {
			end = enter
		}
		ctx.Clock.AdvanceTo(end + w.opt.Cost.Overhead)
	}
	ctx.Record(trace.Event{
		Time: ctx.Now(), Aux: enter, Kind: trace.KindRecv,
		Peer: int32(m.src), CRank: int32(c.myRank), Tag: int32(m.tag),
		Bytes: int64(bytes), Match: m.match, Comm: c.core.cid,
		Flags: flags,
	})
	return Status{Source: m.src, Tag: m.tag, Count: m.count}
}

// Recv is the blocking receive (MPI_Recv).  source may be AnySource and tag
// may be AnyTag.
func (c *Comm) Recv(buf *Buf, source, tag int) Status {
	if source != AnySource {
		c.checkPeer(source, "receive from")
	}
	c.checkBuf(buf, "receive")
	ctx := c.p.ctx
	ctx.Enter("MPI_Recv")
	enter := ctx.Now()
	m := c.p.mb.take(c.p, c.core.cid, source, tag)
	st := c.completeRecv(buf, m, enter, 0)
	ctx.Exit()
	return st
}

// reqKind distinguishes request flavors.
type reqKind uint8

const (
	reqSend reqKind = iota
	reqRecv
)

// Request is a non-blocking operation handle (MPI_Request).  Complete it
// with Comm.Wait or Comm.WaitAll.
type Request struct {
	kind   reqKind
	c      *Comm
	msg    *message // send requests
	buf    *Buf     // receive requests
	src    int
	tag    int
	done   bool
	status Status
}

// Isend starts a non-blocking standard send (MPI_Isend).  The message is
// posted immediately; for rendezvous-sized messages completion (in Wait)
// blocks until the receive is posted.
func (c *Comm) Isend(buf *Buf, dest, tag int) *Request {
	ctx := c.p.ctx
	ctx.Enter("MPI_Isend")
	enter := ctx.Now()
	m := c.postSend(buf, dest, tag, sendStandard, enter, trace.FlagNonBlocking)
	if ctx.Mode() == vtime.Virtual {
		ctx.Clock.Advance(c.p.w.opt.Cost.Overhead)
	}
	ctx.Exit()
	return &Request{kind: reqSend, c: c, msg: m}
}

// Irecv starts a non-blocking receive (MPI_Irecv).  This reproduction
// performs the actual matching when the request is completed (Wait), which
// preserves blocking behaviour and trace shape for the ATS patterns; it
// deviates from real MPI in that the receive is not pre-posted for
// matching purposes.  The deviation is documented in DESIGN.md.
func (c *Comm) Irecv(buf *Buf, source, tag int) *Request {
	if source != AnySource {
		c.checkPeer(source, "receive from")
	}
	c.checkBuf(buf, "receive")
	ctx := c.p.ctx
	ctx.Enter("MPI_Irecv")
	if ctx.Mode() == vtime.Virtual {
		ctx.Clock.Advance(c.p.w.opt.Cost.Overhead)
	}
	ctx.Exit()
	return &Request{kind: reqRecv, c: c, buf: buf, src: source, tag: tag}
}

// Wait blocks until the request completes (MPI_Wait) and returns its
// status (meaningful for receives).
func (c *Comm) Wait(r *Request) Status {
	if r == nil {
		panic("mpi: Wait on nil request")
	}
	if r.c != c {
		panic("mpi: Wait on request from a different communicator handle")
	}
	if r.done {
		return r.status
	}
	ctx := c.p.ctx
	ctx.Enter("MPI_Wait")
	switch r.kind {
	case reqSend:
		if r.msg.sync {
			c.waitAck(r.msg)
		}
	case reqRecv:
		enter := ctx.Now()
		m := c.p.mb.take(c.p, c.core.cid, r.src, r.tag)
		r.status = c.completeRecv(r.buf, m, enter, trace.FlagNonBlocking)
	}
	r.done = true
	ctx.Exit()
	return r.status
}

// WaitAll completes all requests in order (MPI_Waitall).
func (c *Comm) WaitAll(rs ...*Request) []Status {
	out := make([]Status, len(rs))
	for i, r := range rs {
		out[i] = c.Wait(r)
	}
	return out
}

// Bsend is the buffered send (MPI_Bsend): it always completes eagerly,
// independent of the message size, as if an unlimited attach buffer were
// available.
func (c *Comm) Bsend(buf *Buf, dest, tag int) {
	ctx := c.p.ctx
	ctx.Enter("MPI_Bsend")
	enter := ctx.Now()
	c.postSend(buf, dest, tag, sendBuffered, enter, 0)
	if ctx.Mode() == vtime.Virtual {
		ctx.Clock.Advance(c.p.w.opt.Cost.Overhead)
	}
	ctx.Exit()
}

// Probe blocks until a matching message is available and returns its
// status without receiving it (MPI_Probe).  The matching rules are those
// of Recv, so a following Recv with the same arguments receives exactly
// the probed message.
func (c *Comm) Probe(source, tag int) Status {
	if source != AnySource {
		c.checkPeer(source, "probe")
	}
	ctx := c.p.ctx
	ctx.Enter("MPI_Probe")
	m := c.p.mb.match(c.p, c.core.cid, source, tag, false)
	if ctx.Mode() == vtime.Virtual {
		// The probe completes when the message is available.
		end := m.avail
		if enter := ctx.Now(); enter > end {
			end = enter
		}
		ctx.Clock.AdvanceTo(end + c.p.w.opt.Cost.Overhead)
	}
	ctx.Exit()
	return Status{Source: m.src, Tag: m.tag, Count: m.count}
}

// Sendrecv performs a combined send and receive (MPI_Sendrecv), safe
// against the cyclic-dependency deadlocks plain Send/Recv pairs can
// produce under the rendezvous protocol.
func (c *Comm) Sendrecv(sbuf *Buf, dest, stag int, rbuf *Buf, source, rtag int) Status {
	ctx := c.p.ctx
	ctx.Enter("MPI_Sendrecv")
	enter := ctx.Now()
	m := c.postSend(sbuf, dest, stag, sendStandard, enter, 0)
	if source != AnySource {
		c.checkPeer(source, "receive from")
	}
	c.checkBuf(rbuf, "receive")
	in := c.p.mb.take(c.p, c.core.cid, source, rtag)
	st := c.completeRecv(rbuf, in, enter, 0)
	if m.sync {
		c.waitAck(m)
	} else if ctx.Mode() == vtime.Virtual {
		ctx.Clock.Advance(c.p.w.opt.Cost.Overhead)
	}
	ctx.Exit()
	return st
}
