package mpi

import (
	"fmt"
	"math"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/perturb"
	"repro/internal/trace"
	"repro/internal/vtime"
	"repro/internal/work"
	"repro/internal/xctx"
)

// Options configures a World run.
type Options struct {
	// Procs is the number of MPI processes (default 4).
	Procs int
	// Mode selects virtual (default) or real time.
	Mode vtime.Mode
	// Cost is the virtual-time cost model; the zero value selects
	// DefaultCost.
	Cost CostModel
	// Untraced disables event tracing (the zero value traces).
	Untraced bool
	// Timeout is the real-time watchdog for deadlock detection
	// (default 60s).
	Timeout time.Duration
	// Seed seeds the per-rank random generators (default 1).
	Seed uint64
	// BaseType and BaseCount set the default message buffer used by
	// property functions (set_base_comm); defaults: MPI_DOUBLE × 256.
	BaseType  Datatype
	BaseCount int
	// Perturb injects deterministic timing disturbances (clock-rate
	// skew, stragglers, message/collective jitter, OS-noise bursts) into
	// Virtual-mode runs; nil leaves the run exactly unperturbed.  See
	// package perturb.
	Perturb *perturb.Model
	// Sink, when non-nil, streams trace events out of the run as ranks
	// execute instead of materializing them: every per-location buffer
	// is attached to the sink, spills chunk frames while recording, and
	// is finished as its executor completes.  Run then returns a nil
	// trace — open the sink's spool with trace.OpenChunkFile /
	// trace.NewStream and analyze with analyzer.AnalyzeStream, which
	// yields a report byte-identical to the materialized path at
	// O(locations) memory.  Ignored when Untraced.
	Sink trace.Sink
}

func (o Options) withDefaults() Options {
	if o.Procs <= 0 {
		o.Procs = 4
	}
	if o.Cost.zero() {
		o.Cost = DefaultCost()
	}
	if o.Cost.EagerThreshold <= 0 {
		o.Cost.EagerThreshold = 4096
	}
	if o.Timeout <= 0 {
		o.Timeout = 60 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.BaseCount <= 0 {
		o.BaseType, o.BaseCount = TypeDouble, 256
	}
	return o
}

// World is one parallel run: a fixed set of ranks executing a body
// function, exchanging messages, and (optionally) producing a trace.
type World struct {
	opt   Options
	epoch time.Time

	procs []*proc

	matchCounter atomic.Uint64 // p2p match ids
	collCounter  atomic.Uint64 // collective instance ids
	commCounter  atomic.Int32  // communicator context ids

	// failure propagation (MPI_Abort semantics): the first panic on any
	// rank aborts the world; all blocked ranks are woken and unwound.
	failMu   sync.Mutex
	failErr  error
	failed   atomic.Bool
	failCh   chan struct{} // closed on first failure
	wakeable []waker

	// adopted collects trace buffers of sub-executors (OpenMP threads).
	adoptMu sync.Mutex
	adopted []*trace.Buffer

	// clockFloor is a monotone lower bound on the minimum virtual clock
	// over all unfinished ranks, stored as math.Float64bits.  It lets the
	// spoiler check answer "no rank can still produce a message before
	// avail" in O(1) once the whole world has advanced past avail, instead
	// of rescanning every rank on every wildcard poll.
	clockFloor atomic.Uint64
}

// waker is anything blocked ranks wait on; on world failure every waker is
// broadcast so waiters can observe the failure and unwind.
type waker interface{ wakeAll() }

// abortError wraps the original rank failure for ranks unwound by the
// abort broadcast.
type abortError struct{ cause error }

func (e abortError) Error() string {
	return "mpi: run aborted because another rank failed: " + e.cause.Error()
}

// Execution states used by the conservative wildcard-matching protocol
// (see mailbox.take): a rank that is blocked or finished cannot produce an
// earlier message than the best queued candidate.
const (
	stateRunning int32 = iota
	stateBlocked
	stateDone
)

// proc is the per-rank state.
type proc struct {
	w    *World
	rank int
	ctx  *xctx.Ctx
	mb   *mailbox

	// state tracks whether the rank's goroutine is computing, blocked in
	// a substrate wait, or finished; read concurrently by wildcard
	// receivers.
	state atomic.Int32

	// sendSeq counts this rank's p2p messages per destination world rank
	// (only allocated under Options.Perturb): the deterministic message
	// identity that keys latency jitter.  Owned by the rank's goroutine.
	sendSeq []uint64

	// base default buffer (set_base_comm); per-rank so writes stay local.
	baseType  Datatype
	baseCount int
}

// blockedSection marks the proc blocked for the duration of a substrate
// wait; the returned function restores the running state.
func (p *proc) blockedSection() func() {
	p.state.Store(stateBlocked)
	return func() { p.state.Store(stateRunning) }
}

// spoilers reports whether any other rank could still produce a message
// arriving before `avail` virtual time: a rank whose clock is behind the
// candidate arrival and that is either computing, or blocked with
// deliverable messages in its own mailbox (it may wake, consume them, and
// respond before the candidate).
func (w *World) spoilers(me *proc, avail float64) bool {
	// Fast path: once every unfinished rank's clock is at or past avail,
	// nothing can still arrive earlier.  The floor only rises — per-rank
	// clocks are monotone and ranks only ever transition into stateDone —
	// so a passing check stays valid; it covers all ranks (including the
	// caller), making it independent of which rank asks.
	if math.Float64frombits(w.clockFloor.Load()) >= avail {
		return false
	}
	floor := math.Inf(1)
	for _, p := range w.procs {
		st := p.state.Load()
		if st == stateDone {
			continue
		}
		now := p.ctx.Clock.Now()
		if now < floor {
			floor = now
		}
		if p == me || now >= avail {
			continue
		}
		switch st {
		case stateRunning:
			return true
		case stateBlocked:
			if p.mb.qlen.Load() > 0 {
				return true
			}
		}
	}
	// Only a completed scan may raise the floor: the minimum over a
	// partial scan could overshoot the slowest unvisited rank.
	w.raiseClockFloor(floor)
	return false
}

// raiseClockFloor lifts clockFloor to f if f is higher.  Observed clocks
// are lower bounds on current clocks (monotonicity), so the minimum of a
// full scan is always a valid floor.
func (w *World) raiseClockFloor(f float64) {
	if math.IsInf(f, 1) {
		return // every rank finished; nothing left to bound
	}
	nb := math.Float64bits(f)
	for {
		old := w.clockFloor.Load()
		if math.Float64frombits(old) >= f || w.clockFloor.CompareAndSwap(old, nb) {
			return
		}
	}
}

// fail records the first failure and wakes every blocked rank.
func (w *World) fail(err error) {
	w.failMu.Lock()
	first := w.failErr == nil
	if first {
		w.failErr = err
	}
	w.failed.Store(true)
	if first {
		close(w.failCh)
	}
	wk := append([]waker(nil), w.wakeable...)
	w.failMu.Unlock()
	for _, x := range wk {
		x.wakeAll()
	}
}

// registerWaker adds a blocking structure to the abort broadcast set.
func (w *World) registerWaker(x waker) {
	w.failMu.Lock()
	w.wakeable = append(w.wakeable, x)
	w.failMu.Unlock()
}

// checkFailed panics with an abort error if the world has failed; called
// from every blocking wait loop.
func (w *World) checkFailed() {
	if w.failed.Load() {
		w.failMu.Lock()
		err := w.failErr
		w.failMu.Unlock()
		panic(abortError{cause: err})
	}
}

// adoptBuffer registers a sub-executor trace buffer for the final merge.
func (w *World) adoptBuffer(b *trace.Buffer) {
	if b == nil {
		return
	}
	w.adoptMu.Lock()
	w.adopted = append(w.adopted, b)
	w.adoptMu.Unlock()
}

// Run executes body on opt.Procs ranks and returns the merged trace (nil if
// Untraced).  The body receives each rank's handle on the world
// communicator.  Any panic on any rank aborts the run and is returned as an
// error; a watchdog converts deadlocks into errors after opt.Timeout.
func Run(opt Options, body func(c *Comm)) (*trace.Trace, error) {
	opt = opt.withDefaults()
	if opt.Mode == vtime.Real {
		// Calibrate outside the timed region.
		vtime.Calibrate()
		work.CalibrateReal()
	}
	w := &World{opt: opt, epoch: time.Now(), failCh: make(chan struct{})}

	worldCore := &commCore{
		w:      w,
		cid:    0,
		ranks:  make([]int, opt.Procs),
		engine: newCollEngine(w),
	}
	w.commCounter.Store(1)
	for i := range worldCore.ranks {
		worldCore.ranks[i] = i
	}

	streaming := opt.Sink != nil && !opt.Untraced
	var sinkMu sync.Mutex
	var sinkErr error
	noteSinkErr := func(err error) {
		if err == nil {
			return
		}
		sinkMu.Lock()
		if sinkErr == nil {
			sinkErr = err
		}
		sinkMu.Unlock()
	}

	rootRNG := work.NewRNG(opt.Seed)
	w.procs = make([]*proc, opt.Procs)
	comms := make([]*Comm, opt.Procs)
	for i := 0; i < opt.Procs; i++ {
		loc := trace.Location{Rank: int32(i), Thread: 0}
		var tb *trace.Buffer
		if !opt.Untraced {
			tb = trace.NewBuffer(loc)
			if streaming {
				opt.Sink.Attach(tb)
			}
		}
		clock := vtime.NewClock(opt.Mode, w.epoch)
		if opt.Perturb != nil && opt.Mode == vtime.Virtual {
			clock.SetPerturber(opt.Perturb.Executor(i, opt.Procs))
		}
		ctx := xctx.New(clock, tb, rootRNG.Fork(uint64(i)), loc)
		if streaming {
			// Sub-executor buffers stream too: attached at fork, and at
			// the join (the thread is complete) flushed and recycled
			// instead of being kept for a final merge.
			ctx.Spill = opt.Sink.Attach
			ctx.Adopt = func(b *trace.Buffer) {
				if b == nil {
					return
				}
				noteSinkErr(opt.Sink.Finish(b))
				b.Release()
			}
		} else if !opt.Untraced {
			ctx.Adopt = w.adoptBuffer
		}
		p := &proc{
			w:         w,
			rank:      i,
			ctx:       ctx,
			mb:        newMailbox(w),
			baseType:  opt.BaseType,
			baseCount: opt.BaseCount,
		}
		if opt.Perturb != nil {
			p.sendSeq = make([]uint64, opt.Procs)
		}
		w.procs[i] = p
		comms[i] = &Comm{core: worldCore, p: p, myRank: i}
	}

	var wg sync.WaitGroup
	errs := make([]error, opt.Procs)
	for i := 0; i < opt.Procs; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					var err error
					if ae, ok := r.(abortError); ok {
						err = ae
					} else {
						err = fmt.Errorf("mpi: rank %d panicked: %v\n%s",
							rank, r, debug.Stack())
						w.fail(err)
					}
					errs[rank] = err
				}
			}()
			defer w.procs[rank].state.Store(stateDone)
			c := comms[rank]
			c.init()
			body(c)
			c.finalize()
		}(i)
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(opt.Timeout):
		w.fail(fmt.Errorf("mpi: watchdog timeout after %v (deadlock suspected)", opt.Timeout))
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			return nil, fmt.Errorf("mpi: ranks failed to unwind after abort; giving up")
		}
	}

	var runErr error
	w.failMu.Lock()
	runErr = w.failErr
	w.failMu.Unlock()
	if runErr == nil {
		// Pick up any non-aborting rank error (shouldn't happen, but be safe).
		for _, e := range errs {
			if e != nil {
				runErr = e
				break
			}
		}
	}

	if opt.Untraced {
		return nil, runErr
	}
	if streaming {
		// Flush the rank buffers' tails; adopted thread buffers were
		// already finished at their joins.  Ranks have all exited
		// (wg.Wait above), so no goroutine is still recording.
		for _, p := range w.procs {
			noteSinkErr(opt.Sink.Finish(p.ctx.TB))
			p.ctx.TB.Release()
		}
		if runErr == nil {
			runErr = sinkErr
		}
		return nil, runErr
	}
	buffers := make([]*trace.Buffer, 0, opt.Procs+len(w.adopted))
	for _, p := range w.procs {
		buffers = append(buffers, p.ctx.TB)
	}
	w.adoptMu.Lock()
	extra := append([]*trace.Buffer(nil), w.adopted...)
	w.adoptMu.Unlock()
	sort.Slice(extra, func(i, j int) bool {
		if extra[i].Loc.Rank != extra[j].Loc.Rank {
			return extra[i].Loc.Rank < extra[j].Loc.Rank
		}
		return extra[i].Loc.Thread < extra[j].Loc.Thread
	})
	buffers = append(buffers, extra...)
	tr := trace.Merge(buffers...)
	// The merge copies everything it needs; recycle the per-rank buffers
	// for the next world.  Ranks have all exited (wg.Wait above), so no
	// goroutine can still be recording into them.
	for _, b := range buffers {
		b.Release()
	}
	return tr, runErr
}
