package mpi

import (
	"fmt"
	"math"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/perturb"
	"repro/internal/trace"
	"repro/internal/vtime"
	"repro/internal/work"
	"repro/internal/xctx"
)

// Options configures a World run.
type Options struct {
	// Procs is the number of MPI processes (default 4).
	Procs int
	// Mode selects virtual (default) or real time.
	Mode vtime.Mode
	// Cost is the virtual-time cost model; the zero value selects
	// DefaultCost.
	Cost CostModel
	// Untraced disables event tracing (the zero value traces).
	Untraced bool
	// Timeout is the real-time watchdog for deadlock detection
	// (default 60s).
	Timeout time.Duration
	// Seed seeds the per-rank random generators (default 1).
	Seed uint64
	// BaseType and BaseCount set the default message buffer used by
	// property functions (set_base_comm); defaults: MPI_DOUBLE × 256.
	BaseType  Datatype
	BaseCount int
	// Perturb injects deterministic timing disturbances (clock-rate
	// skew, stragglers, message/collective jitter, OS-noise bursts) into
	// Virtual-mode runs; nil leaves the run exactly unperturbed.  See
	// package perturb.
	Perturb *perturb.Model
	// Sink, when non-nil, streams trace events out of the run as ranks
	// execute instead of materializing them: every per-location buffer
	// is attached to the sink, spills chunk frames while recording, and
	// is finished as its executor completes.  Run then returns a nil
	// trace — open the sink's spool with trace.OpenChunkFile /
	// trace.NewStream and analyze with analyzer.AnalyzeStream, which
	// yields a report byte-identical to the materialized path at
	// O(locations) memory.  Ignored when Untraced.
	Sink trace.Sink
	// Engine selects the rank-execution strategy: EngineAuto (the zero
	// value) resolves to the event-queue scheduler for Virtual mode and
	// goroutine-per-rank for Real mode; EngineGoroutine forces the
	// pre-event-queue behaviour as a migration escape hatch.  Both
	// engines produce byte-identical traces (see engine_diff_test.go).
	Engine Engine
}

func (o Options) withDefaults() Options {
	if o.Procs <= 0 {
		o.Procs = 4
	}
	if o.Cost.zero() {
		o.Cost = DefaultCost()
	}
	if o.Cost.EagerThreshold <= 0 {
		o.Cost.EagerThreshold = 4096
	}
	if o.Timeout <= 0 {
		o.Timeout = 60 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.BaseCount <= 0 {
		o.BaseType, o.BaseCount = TypeDouble, 256
	}
	return o
}

// World is one parallel run: a fixed set of ranks executing a body
// function, exchanging messages, and (optionally) producing a trace.
type World struct {
	opt   Options
	epoch time.Time

	procs []*proc

	// eventMode marks a run on the event engine (see evsched.go); sched
	// is its dispatcher.  p2p match ids and collective instance ids need
	// no counters: they are pure functions of (rank, send count) and
	// (communicator, sequence) — identical across engines and host
	// schedules, which is what makes byte-identical traces possible.
	eventMode bool
	sched     *evScheduler

	// mailOcc counts mailboxes with pending messages (maintained by
	// mailbox.setQlen).  The event scheduler's quiescence check reads it
	// to decide in O(1) that no other rank holds mail that could spoil a
	// wildcard receive.
	mailOcc atomic.Int32

	commCounter atomic.Int32 // communicator context ids

	// failure propagation (MPI_Abort semantics): the first panic on any
	// rank aborts the world; all blocked ranks are woken and unwound.
	failMu   sync.Mutex
	failErr  error
	failed   atomic.Bool
	failCh   chan struct{} // closed on first failure
	wakeable []waker

	// adopted collects trace buffers of sub-executors (OpenMP threads).
	adoptMu sync.Mutex
	adopted []*trace.Buffer

	// clockFloor is a monotone lower bound on the minimum virtual clock
	// over all unfinished ranks, stored as math.Float64bits.  It lets the
	// spoiler check answer "no rank can still produce a message before
	// avail" in O(1) once the whole world has advanced past avail, instead
	// of rescanning every rank on every wildcard poll.
	clockFloor atomic.Uint64
}

// waker is anything blocked ranks wait on; on world failure every waker is
// broadcast so waiters can observe the failure and unwind.
type waker interface{ wakeAll() }

// abortError wraps the original rank failure for ranks unwound by the
// abort broadcast.
type abortError struct{ cause error }

func (e abortError) Error() string {
	return "mpi: run aborted because another rank failed: " + e.cause.Error()
}

// RankError is the failure Run returns when a rank's body panics: it
// carries the failing rank's identity out of the event loop so callers
// (and the conformance shrinker) can attribute the abort.  Err holds the
// panic value and stack.
type RankError struct {
	Rank int
	Err  error
}

func (e *RankError) Error() string {
	return fmt.Sprintf("mpi: rank %d panicked: %v", e.Rank, e.Err)
}

func (e *RankError) Unwrap() error { return e.Err }

// Execution states used by the conservative wildcard-matching protocol
// (see mailbox.take): a rank that is blocked or finished cannot produce an
// earlier message than the best queued candidate.
const (
	stateRunning int32 = iota
	stateBlocked
	stateDone
)

// proc is the per-rank state.
type proc struct {
	w    *World
	rank int
	ctx  *xctx.Ctx
	mb   *mailbox

	// state tracks whether the rank's goroutine is computing, blocked in
	// a substrate wait, or finished; read concurrently by wildcard
	// receivers.
	state atomic.Int32

	// sendSeq counts this rank's p2p messages per destination world rank
	// (only allocated under Options.Perturb): the deterministic message
	// identity that keys latency jitter.  Owned by the rank's goroutine.
	sendSeq []uint64

	// sendCount numbers this rank's p2p sends in program order; together
	// with the rank it forms the deterministic trace match id (see
	// matchID).  Owned by the rank's goroutine.
	sendCount uint64

	// Event-engine state (see evsched.go).  evResume carries the
	// scheduler's run token (capacity 1).  evState is written by
	// whichever side owns the rank at the time and read by the
	// scheduler's abort and quiescence scans, hence atomic.
	evResume   chan struct{}
	evState    atomic.Int32
	evCid      int32 // parked receive spec, valid when evState == evRecv
	evSrc      int
	evTag      int
	evGrant    bool // scheduler granted the parked wildcard receive
	evGrantIdx int  // queue index of the granted candidate (evScheduler.quiesce)
	evInWild   bool // on the scheduler's wildcard-waiter list (scheduler-owned)

	// base default buffer (set_base_comm); per-rank so writes stay local.
	baseType  Datatype
	baseCount int
}

// blockedSection marks the proc blocked for the duration of a substrate
// wait; the returned function restores the running state.
func (p *proc) blockedSection() func() {
	p.state.Store(stateBlocked)
	return func() { p.state.Store(stateRunning) }
}

// spoilers reports whether any other rank could still produce a message
// arriving before `avail` virtual time: a rank whose clock is behind the
// candidate arrival and that is either computing, or blocked with
// deliverable messages in its own mailbox (it may wake, consume them, and
// respond before the candidate).
func (w *World) spoilers(me *proc, avail float64) bool {
	// Fast path: once every unfinished rank's clock is at or past avail,
	// nothing can still arrive earlier.  The floor only rises — per-rank
	// clocks are monotone and ranks only ever transition into stateDone —
	// so a passing check stays valid; it covers all ranks (including the
	// caller), making it independent of which rank asks.
	if math.Float64frombits(w.clockFloor.Load()) >= avail {
		return false
	}
	floor := math.Inf(1)
	for _, p := range w.procs {
		st := p.state.Load()
		if st == stateDone {
			continue
		}
		now := p.ctx.Clock.Now()
		if now < floor {
			floor = now
		}
		if p == me || now >= avail {
			continue
		}
		switch st {
		case stateRunning:
			return true
		case stateBlocked:
			if p.mb.qlen.Load() > 0 {
				return true
			}
		}
	}
	// Only a completed scan may raise the floor: the minimum over a
	// partial scan could overshoot the slowest unvisited rank.
	w.raiseClockFloor(floor)
	return false
}

// raiseClockFloor lifts clockFloor to f if f is higher.  Observed clocks
// are lower bounds on current clocks (monotonicity), so the minimum of a
// full scan is always a valid floor.
func (w *World) raiseClockFloor(f float64) {
	if math.IsInf(f, 1) {
		return // every rank finished; nothing left to bound
	}
	nb := math.Float64bits(f)
	for {
		old := w.clockFloor.Load()
		if math.Float64frombits(old) >= f || w.clockFloor.CompareAndSwap(old, nb) {
			return
		}
	}
}

// fail records the first failure and wakes every blocked rank.
func (w *World) fail(err error) {
	w.failMu.Lock()
	first := w.failErr == nil
	if first {
		w.failErr = err
	}
	w.failed.Store(true)
	if first {
		close(w.failCh)
	}
	wk := append([]waker(nil), w.wakeable...)
	w.failMu.Unlock()
	for _, x := range wk {
		x.wakeAll()
	}
}

// registerWaker adds a blocking structure to the abort broadcast set.
// The event engine has no blocking condition variables to broadcast —
// parked ranks are resumed by the scheduler's abort scan — so it keeps
// the set empty instead of accumulating one waker per mailbox and
// collective engine.
func (w *World) registerWaker(x waker) {
	if w.eventMode {
		return
	}
	w.failMu.Lock()
	w.wakeable = append(w.wakeable, x)
	w.failMu.Unlock()
}

// failError returns the recorded first failure.
func (w *World) failError() error {
	w.failMu.Lock()
	defer w.failMu.Unlock()
	return w.failErr
}

// checkFailed panics with an abort error if the world has failed; called
// from every blocking wait loop.
func (w *World) checkFailed() {
	if w.failed.Load() {
		panic(abortError{cause: w.failError()})
	}
}

// adoptBuffer registers a sub-executor trace buffer for the final merge.
func (w *World) adoptBuffer(b *trace.Buffer) {
	if b == nil {
		return
	}
	w.adoptMu.Lock()
	w.adopted = append(w.adopted, b)
	w.adoptMu.Unlock()
}

// Run executes body on opt.Procs ranks and returns the merged trace (nil if
// Untraced).  The body receives each rank's handle on the world
// communicator.  Any panic on any rank aborts the run and is returned as an
// error; a watchdog converts deadlocks into errors after opt.Timeout.
func Run(opt Options, body func(c *Comm)) (*trace.Trace, error) {
	opt = opt.withDefaults()
	if opt.Mode == vtime.Real {
		// Calibrate outside the timed region.
		vtime.Calibrate()
		work.CalibrateReal()
	}
	w := &World{opt: opt, epoch: time.Now(), failCh: make(chan struct{})}
	w.eventMode = resolveEngine(opt.Engine, opt.Mode) == EngineEvent

	worldCore := &commCore{
		w:      w,
		cid:    0,
		ranks:  make([]int, opt.Procs),
		engine: newCollEngine(w),
	}
	w.commCounter.Store(1)
	for i := range worldCore.ranks {
		worldCore.ranks[i] = i
	}

	streaming := opt.Sink != nil && !opt.Untraced
	var sinkMu sync.Mutex
	var sinkErr error
	noteSinkErr := func(err error) {
		if err == nil {
			return
		}
		sinkMu.Lock()
		if sinkErr == nil {
			sinkErr = err
		}
		sinkMu.Unlock()
	}

	rootRNG := work.NewRNG(opt.Seed)
	w.procs = make([]*proc, opt.Procs)
	comms := make([]*Comm, opt.Procs)
	for i := 0; i < opt.Procs; i++ {
		loc := trace.Location{Rank: int32(i), Thread: 0}
		var tb *trace.Buffer
		if !opt.Untraced {
			tb = trace.NewBuffer(loc)
			if streaming {
				opt.Sink.Attach(tb)
			}
		}
		clock := vtime.NewClock(opt.Mode, w.epoch)
		if opt.Perturb != nil && opt.Mode == vtime.Virtual {
			clock.SetPerturber(opt.Perturb.Executor(i, opt.Procs))
		}
		ctx := xctx.New(clock, tb, rootRNG.Fork(uint64(i)), loc)
		if streaming {
			// Sub-executor buffers stream too: attached at fork, and at
			// the join (the thread is complete) flushed and recycled
			// instead of being kept for a final merge.
			ctx.Spill = opt.Sink.Attach
			ctx.Adopt = func(b *trace.Buffer) {
				if b == nil {
					return
				}
				noteSinkErr(opt.Sink.Finish(b))
				b.Release()
			}
		} else if !opt.Untraced {
			ctx.Adopt = w.adoptBuffer
		}
		p := &proc{
			w:         w,
			rank:      i,
			ctx:       ctx,
			baseType:  opt.BaseType,
			baseCount: opt.BaseCount,
		}
		p.mb = newMailbox(w, p)
		if opt.Perturb != nil {
			p.sendSeq = make([]uint64, opt.Procs)
		}
		w.procs[i] = p
		comms[i] = &Comm{core: worldCore, p: p, myRank: i}
	}

	errs := make([]error, opt.Procs)
	var runErr error
	var stuck bool
	if w.eventMode {
		runErr, stuck = w.runEvent(comms, errs, body)
	} else {
		runErr, stuck = w.runGoroutine(comms, errs, body)
	}
	if stuck {
		// Some rank never unwound after the abort; its goroutine may
		// still be recording, so the buffers cannot be touched.
		return nil, runErr
	}

	if opt.Untraced {
		return nil, runErr
	}
	if streaming {
		// Flush the rank buffers' tails; adopted thread buffers were
		// already finished at their joins.  Ranks have all exited
		// (wg.Wait above), so no goroutine is still recording.
		for _, p := range w.procs {
			noteSinkErr(opt.Sink.Finish(p.ctx.TB))
			p.ctx.TB.Release()
		}
		if runErr == nil {
			runErr = sinkErr
		}
		return nil, runErr
	}
	buffers := make([]*trace.Buffer, 0, opt.Procs+len(w.adopted))
	for _, p := range w.procs {
		buffers = append(buffers, p.ctx.TB)
	}
	w.adoptMu.Lock()
	extra := append([]*trace.Buffer(nil), w.adopted...)
	w.adoptMu.Unlock()
	sort.Slice(extra, func(i, j int) bool {
		if extra[i].Loc.Rank != extra[j].Loc.Rank {
			return extra[i].Loc.Rank < extra[j].Loc.Rank
		}
		return extra[i].Loc.Thread < extra[j].Loc.Thread
	})
	buffers = append(buffers, extra...)
	tr := trace.Merge(buffers...)
	// The merge copies everything it needs; recycle the per-rank buffers
	// for the next world.  Ranks have all exited (wg.Wait above), so no
	// goroutine can still be recording into them.
	for _, b := range buffers {
		b.Release()
	}
	return tr, runErr
}

// runRank executes one rank's init/body/finalize with panic confinement;
// shared by both engines.
func (w *World) runRank(c *Comm, body func(c *Comm), errs []error) {
	rank := c.p.rank
	defer func() {
		if r := recover(); r != nil {
			var err error
			if ae, ok := r.(abortError); ok {
				err = ae
			} else {
				err = &RankError{Rank: rank, Err: fmt.Errorf("%v\n%s", r, debug.Stack())}
				w.fail(err)
			}
			errs[rank] = err
		}
	}()
	defer c.p.state.Store(stateDone)
	c.init()
	body(c)
	c.finalize()
}

// runGoroutine executes the world on the goroutine engine: one
// free-running goroutine per rank, condition-variable blocking, and the
// spoiler poll loop for wildcard receives.
func (w *World) runGoroutine(comms []*Comm, errs []error, body func(c *Comm)) (runErr error, stuck bool) {
	var wg sync.WaitGroup
	for i := range comms {
		wg.Add(1)
		go func(c *Comm) {
			defer wg.Done()
			w.runRank(c, body, errs)
		}(comms[i])
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	return w.awaitDone(done, errs)
}

// runEvent executes the world on the event engine: rank goroutines gate
// on their resume channels and the scheduler single-steps them in
// virtual-clock order (see evsched.go).
func (w *World) runEvent(comms []*Comm, errs []error, body func(c *Comm)) (runErr error, stuck bool) {
	s := newEvScheduler(w)
	w.sched = s
	s.live = len(w.procs)
	for _, p := range w.procs {
		p.evResume = make(chan struct{}, 1)
		s.readyProc(p)
	}
	for i := range comms {
		go func(c *Comm) {
			p := c.p
			<-p.evResume // first dispatch
			w.runRank(c, body, errs)
			p.evState.Store(evDone)
			s.notes <- evNote{p: p, done: true}
		}(comms[i])
	}
	done := make(chan struct{})
	go func() {
		s.loop()
		close(done)
	}()
	return w.awaitDone(done, errs)
}

// awaitDone waits for a run to complete under the real-time watchdog and
// resolves the run error.  The watchdog remains even though the event
// engine detects structural deadlocks instantly: runaway user code (an
// infinite loop inside a rank body) blocks either engine forever and
// only real time can catch it.  stuck reports that some rank failed to
// unwind within the grace period, in which case its goroutine may still
// be running and the trace buffers must not be touched.
func (w *World) awaitDone(done chan struct{}, errs []error) (runErr error, stuck bool) {
	select {
	case <-done:
	case <-time.After(w.opt.Timeout):
		w.fail(fmt.Errorf("mpi: watchdog timeout after %v (deadlock suspected)", w.opt.Timeout))
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			return fmt.Errorf("mpi: ranks failed to unwind after abort; giving up"), true
		}
	}
	runErr = w.failError()
	if runErr == nil {
		// Pick up any non-aborting rank error (shouldn't happen, but be safe).
		for _, e := range errs {
			if e != nil {
				runErr = e
				break
			}
		}
	}
	return runErr, false
}
