package mpi

// Stress tests for the event scheduler's concurrency discipline, designed
// to run under -race (the check job runs this package with -race): the
// scheduler claims that exactly one rank steps at a time and that the
// handoff channels provide all the happens-before edges the lockless heap
// mutation relies on.  Any violation of single-threaded dispatch is a
// data race on scheduler state, which the race detector turns into a hard
// failure here.

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/trace"
)

// stressBody mixes every blocking-operation class so parked/ready
// transitions of all kinds interleave: wildcard receives, directed
// receives, rendezvous sends, nonblocking completion, collectives, and a
// communicator split.
func stressBody(c *Comm) {
	buf := AllocBuf(TypeDouble, 8)
	defer FreeBuf(buf)
	next := (c.Rank() + 1) % c.Size()
	prev := (c.Rank() - 1 + c.Size()) % c.Size()
	for round := 0; round < 3; round++ {
		c.Sendrecv(buf, next, 1, buf, prev, 1)
		if c.Rank() == 0 {
			for i := 1; i < c.Size(); i++ {
				c.Recv(buf, AnySource, 2)
			}
		} else {
			c.Work(float64(c.Rank()) * 1e-5)
			c.Ssend(buf, 0, 2)
		}
		r := c.Irecv(buf, prev, 3)
		c.Wait(c.Isend(buf, next, 3))
		c.Wait(r)
		c.Allreduce(buf, buf, OpSum)
	}
	sub := c.Split(c.Rank()%2, c.Rank())
	sub.Barrier()
	c.Barrier()
}

// TestEventEngineConcurrentWorlds runs many event-engine worlds at once —
// the campaign.Run -j shape.  Worlds must be fully isolated: the only
// shared state is the buffer pool, and the traces must come out identical.
func TestEventEngineConcurrentWorlds(t *testing.T) {
	const workers = 8
	hashes := make([]string, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func(i int) {
			defer wg.Done()
			tr, err := Run(Options{Procs: 12, Engine: EngineEvent}, stressBody)
			if err != nil {
				hashes[i] = "error: " + err.Error()
				return
			}
			hashes[i] = fmt.Sprintf("%d events", len(tr.Events))
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if hashes[i] != hashes[0] {
			t.Fatalf("world %d diverged: %s vs %s", i, hashes[i], hashes[0])
		}
	}
	if strings.HasPrefix(hashes[0], "error") {
		t.Fatal(hashes[0])
	}
}

// TestEventEngineMixedEnginesConcurrent interleaves event and goroutine
// worlds in one process, sharing the pooled buffers, while the process
// default engine is flipped concurrently (CLI tools set it once, but it
// must at minimum be race-clean).
func TestEventEngineMixedEnginesConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	defer SetDefaultEngine(EngineAuto)
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eng := EngineEvent
			if i%2 == 1 {
				eng = EngineGoroutine
			}
			SetDefaultEngine(eng)
			if _, err := Run(Options{Procs: 8, Engine: eng}, stressBody); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
}

// TestEventEngineStreamedConcurrent runs concurrent event-engine worlds
// that stream through chunk sinks: buffer adoption and spill recycling run
// on rank goroutines while the scheduler single-steps them.
func TestEventEngineStreamedConcurrent(t *testing.T) {
	dir := t.TempDir()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spool := fmt.Sprintf("%s/w%d.atsc", dir, i)
			w, err := trace.NewChunkWriter(spool, 256)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := Run(Options{Procs: 10, Engine: EngineEvent, Sink: w}, stressBody); err != nil {
				w.Abort()
				t.Error(err)
				return
			}
			if err := w.Close(); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	// The spools must replay: truncated or interleaved frames would fail
	// to open.
	for i := 0; i < 4; i++ {
		r, err := trace.OpenChunkFile(fmt.Sprintf("%s/w%d.atsc", dir, i))
		if err != nil {
			t.Fatalf("spool %d: %v", i, err)
		}
		r.Close()
	}
}

// TestEventEngineSingleStepInvariant instruments a run to prove at most
// one rank executes user code at any instant under the event engine.
func TestEventEngineSingleStepInvariant(t *testing.T) {
	var inBody atomic.Int32
	var violations atomic.Int32
	_, err := Run(Options{Procs: 16, Engine: EngineEvent}, func(c *Comm) {
		for round := 0; round < 4; round++ {
			if inBody.Add(1) > 1 {
				violations.Add(1)
			}
			c.Work(1e-5)
			inBody.Add(-1)
			c.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := violations.Load(); v > 0 {
		t.Fatalf("%d instants with more than one rank running", v)
	}
}

// TestRankErrorIdentity pins failure attribution: a rank panic must
// surface as a RankError naming the panicking rank, on both engines.
func TestRankErrorIdentity(t *testing.T) {
	for _, eng := range []Engine{EngineEvent, EngineGoroutine} {
		_, err := Run(Options{Procs: 4, Engine: eng}, func(c *Comm) {
			c.Barrier()
			if c.Rank() == 2 {
				panic("kaboom")
			}
			c.Barrier()
		})
		if err == nil {
			t.Fatalf("engine %s: no error from panicking world", eng)
		}
		var re *RankError
		if !errors.As(err, &re) {
			t.Fatalf("engine %s: error %v is not a RankError", eng, err)
		}
		if re.Rank != 2 {
			t.Fatalf("engine %s: RankError names rank %d, want 2", eng, re.Rank)
		}
		if !strings.Contains(re.Error(), "kaboom") {
			t.Fatalf("engine %s: RankError lost the panic value: %v", eng, re)
		}
	}
}

// TestEventEngineDeadlockNamesRanks pins the structural deadlock report:
// the event engine detects the cycle at quiescence (no watchdog wait) and
// names the blocked ranks and their wait kinds.
func TestEventEngineDeadlockNamesRanks(t *testing.T) {
	_, err := Run(Options{Procs: 3, Engine: EngineEvent}, func(c *Comm) {
		buf := AllocBuf(TypeInt, 1)
		defer FreeBuf(buf)
		c.Recv(buf, (c.Rank()+1)%c.Size(), 1) // cyclic wait, no sends
	})
	if err == nil {
		t.Fatal("no error from deadlocked world")
	}
	msg := err.Error()
	for _, want := range []string{"deadlock detected", "rank 0 in receive", "rank 1 in receive", "rank 2 in receive"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("deadlock error %q missing %q", msg, want)
		}
	}
}

// TestEventEngineScaleSmoke runs a 16k-rank composite in-process when
// ATS_SCALE_SMOKE is set (the CI scale-smoke job) — the tentpole's
// headline capability as a plain test.
func TestEventEngineScaleSmoke(t *testing.T) {
	if os.Getenv("ATS_SCALE_SMOKE") == "" {
		t.Skip("set ATS_SCALE_SMOKE=1 to run the 16384-rank smoke")
	}
	const procs = 16384
	tr, err := Run(Options{Procs: procs, Untraced: true, Engine: EngineEvent}, func(c *Comm) {
		buf := AllocBuf(TypeDouble, 4)
		defer FreeBuf(buf)
		next := (c.Rank() + 1) % c.Size()
		prev := (c.Rank() - 1 + c.Size()) % c.Size()
		for round := 0; round < 3; round++ {
			c.Sendrecv(buf, next, 1, buf, prev, 1)
			c.Allreduce(buf, buf, OpSum)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = tr
}
