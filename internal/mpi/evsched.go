package mpi

// The event engine: a single-stepped, virtual-clock-ordered scheduler
// that replaces goroutine-per-rank free running (and with it the
// World.spoilers poll loop and the clockFloor fast path) with
// deterministic event dispatch.
//
// Go has no first-class continuations, so a rank's "resumable state
// machine" is its goroutine, parked on a per-rank resume channel: the
// parked stack *is* the continuation, and its memory cost is one small
// goroutine stack — the scheduler's own state stays O(ranks + pending
// events).  What changes relative to the goroutine engine is the
// execution discipline:
//
//   - At most one rank steps at a time.  The scheduler pops the ready
//     rank with the minimum (virtual clock, rank) key, hands it the run
//     token, and blocks until the rank reports back — either "parked at
//     a blocking operation" or "finished".  Because the scheduler is
//     idle while a rank runs, the running rank may mutate scheduler
//     state (readying the peers its sends, collective completions and
//     rendezvous acks unblock) without locks; the resume/notes channel
//     pair provides the happens-before edges, which is why the -race
//     stress tests can enforce the single-threaded dispatch invariant
//     rather than assume it.
//
//   - Blocking operations park instead of spinning: a specific-source
//     receive parks until the matching post readies it; a collective
//     participant parks until the last arriver computes the operation; a
//     rendezvous sender parks until the receiver acknowledges.  No
//     condition variables, no polling, no sleeps.
//
//   - Wildcard (AnySource) receives are resolved at quiescence.  When
//     the ready heap drains, every live rank is parked, so the spoiler
//     question — "could any rank still produce a message arriving before
//     the best queued candidate?" — has a deterministic answer: only a
//     rank whose clock is behind the candidate's arrival and whose own
//     mailbox holds unconsumed messages might.  This is exactly the
//     predicate the goroutine engine's poll loop evaluates, evaluated at
//     a quiescent instant instead of 20µs at a time; releases can only
//     see *more* candidates than the goroutine engine did, and any later
//     candidate from a non-spoiler rank arrives strictly after the
//     chosen one (transfer latency is positive), so both engines choose
//     the same message — the property the differential harness
//     (engine_diff_test.go, conformance.DiffEngines) locks in.
//
//   - A drained heap with no releasable wildcard receive is a structural
//     deadlock, reported immediately with the parked ranks' identities
//     instead of waiting out the real-time watchdog.

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
)

// proc.evState values.  Transitions: evReady -> evRunning (dispatch),
// evRunning -> evRecv/evColl/evAck (park) or evDone (return),
// parked -> evReady (post/completion/grant or abort resume).
const (
	evRunning int32 = iota // holds the run token (or is being dispatched)
	evReady                // in the scheduler's ready heap
	evRecv                 // parked in mailbox.matchEvent
	evColl                 // parked in collEngine.join
	evAck                  // parked in waitAck (rendezvous sender)
	evDone                 // rank goroutine finished
)

// evWaitName names a parked state for deadlock diagnostics.
func evWaitName(st int32) string {
	switch st {
	case evRecv:
		return "in receive"
	case evColl:
		return "in collective"
	case evAck:
		return "awaiting rendezvous ack"
	case evReady, evRunning:
		return "runnable"
	default:
		return "unknown"
	}
}

// evNote is a stepped rank's report back to the scheduler.
type evNote struct {
	p    *proc
	done bool
}

// evItem orders the ready heap by (virtual clock at ready time, rank).
// The clock of a parked rank cannot change (only the owning goroutine
// advances it), so the key is stable while queued.
type evItem struct {
	key  float64
	rank int
}

type evHeap []evItem

func (h evHeap) Len() int { return len(h) }
func (h evHeap) Less(i, j int) bool {
	if h[i].key != h[j].key {
		return h[i].key < h[j].key
	}
	return h[i].rank < h[j].rank
}
func (h evHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *evHeap) Push(x any)   { *h = append(*h, x.(evItem)) }
func (h *evHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// evScheduler is the per-World event dispatcher.  All fields are owned
// by the scheduler goroutine except during a rank's step, when the
// running rank may push to ready via readyProc (the scheduler is blocked
// on notes for the duration, so access never overlaps).
type evScheduler struct {
	w     *World
	ready evHeap
	notes chan evNote
	live  int
	// wild tracks procs parked in wildcard receives so quiesce never
	// scans all ranks to find its waiters; stale entries (granted or
	// re-parked elsewhere) are compacted away on each quiescence.
	wild []*proc
}

func newEvScheduler(w *World) *evScheduler {
	return &evScheduler{
		w:     w,
		ready: make(evHeap, 0, len(w.procs)),
		notes: make(chan evNote, len(w.procs)+1),
	}
}

// readyProc moves a parked (or fresh) proc into the ready heap.  Called
// by the scheduler itself (initial fill, wildcard grants, abort) or by
// the currently running rank (message post, collective completion,
// rendezvous ack) — never concurrently.
func (s *evScheduler) readyProc(p *proc) {
	p.evState.Store(evReady)
	heap.Push(&s.ready, evItem{key: p.ctx.Clock.Now(), rank: p.rank})
}

// loop dispatches ranks until all have finished.  It runs on its own
// goroutine; Run waits for it under the real-time watchdog.
func (s *evScheduler) loop() {
	for s.live > 0 {
		if len(s.ready) == 0 {
			if s.quiesce() {
				continue
			}
			// Nothing runnable and no wildcard receive can be released:
			// the program is structurally deadlocked.
			s.w.fail(s.deadlockError())
			s.abort()
			return
		}
		it := heap.Pop(&s.ready).(evItem)
		p := s.w.procs[it.rank]
		p.evState.Store(evRunning)
		p.evResume <- struct{}{}
		select {
		case n := <-s.notes:
			if n.done {
				s.live--
			} else if !n.p.evInWild && n.p.evState.Load() == evRecv && n.p.evSrc == AnySource {
				n.p.evInWild = true
				s.wild = append(s.wild, n.p)
			}
		case <-s.w.failCh:
			// Failure while a rank runs (rank panic, OMP thread failure,
			// watchdog): stop dispatching and unwind everyone.
			s.abort()
			return
		}
	}
}

// quiesce resolves wildcard receives once the ready heap has drained.
// It releases the lowest-ranked AnySource waiter whose best candidate
// can no longer be beaten — no live rank with a clock behind the
// candidate's arrival still holds unconsumed mail — mirroring the
// goroutine engine's spoiler predicate at a quiescent instant.  If every
// waiter with candidates is spoiled by another parked rank's unconsumed
// mailbox (the mutual-wait livelock the goroutine engine escapes with
// its poll cap), the lowest-ranked waiter is deterministically forced to
// accept its best candidate.  Returns false if no rank became runnable.
func (s *evScheduler) quiesce() bool {
	// Compact the waiter list: entries granted or resumed since they were
	// recorded are no longer parked wildcard receives.
	live := s.wild[:0]
	for _, p := range s.wild {
		if p.evState.Load() == evRecv && p.evSrc == AnySource {
			live = append(live, p)
		} else {
			p.evInWild = false
		}
	}
	s.wild = live
	if len(s.wild) == 0 {
		return false
	}
	// Release order is rank order, matching the goroutine engine's
	// deterministic tie-break (list insertion order is parking order).
	sort.Slice(s.wild, func(i, j int) bool { return s.wild[i].rank < s.wild[j].rank })
	occ := s.w.mailOcc.Load()
	var forced *proc
	for _, p := range s.wild {
		avail, idx, ok := p.mb.bestAvail(p.evCid, p.evTag)
		if !ok {
			continue
		}
		// Remember the candidate: if this waiter is granted (here or as
		// the forced fallback), its take reuses the index instead of
		// rescanning the backlog — nothing runs between this scan and the
		// granted rank's resume, so the queue cannot change.
		p.evGrantIdx = idx
		if forced == nil {
			forced = p
		}
		// Occupancy fast path: a waiter with a candidate has mail itself,
		// so occ == 1 means no *other* rank holds mail — nothing can
		// spoil, skip the O(ranks) scan.  This keeps master/worker-style
		// programs (one wildcard drain per message) linear in rank count.
		if occ > 1 && s.spoiled(p, avail) {
			continue
		}
		p.evGrant = true
		s.readyProc(p)
		return true
	}
	if forced != nil {
		forced.evGrant = true
		s.readyProc(forced)
		return true
	}
	return false
}

// spoiled reports whether any rank other than me could still produce a
// message arriving before avail: its clock is behind avail and its own
// mailbox holds deliverable messages it may yet consume and respond to.
// At quiescence no rank is running, so this is the blocked-rank half of
// World.spoilers.
func (s *evScheduler) spoiled(me *proc, avail float64) bool {
	for _, q := range s.w.procs {
		if q == me || q.evState.Load() == evDone {
			continue
		}
		if q.ctx.Clock.Now() < avail && q.mb.qlen.Load() > 0 {
			return true
		}
	}
	return false
}

// deadlockError names the parked ranks (the watchdog-timeout upgrade the
// event engine makes possible: a structural deadlock is detected the
// moment it forms).
func (s *evScheduler) deadlockError() error {
	var parked []string
	blocked := 0
	for _, p := range s.w.procs {
		st := p.evState.Load()
		if st == evDone {
			continue
		}
		blocked++
		if len(parked) < 8 {
			parked = append(parked, fmt.Sprintf("rank %d %s", p.rank, evWaitName(st)))
		}
	}
	more := ""
	if blocked > len(parked) {
		more = fmt.Sprintf(", and %d more", blocked-len(parked))
	}
	return fmt.Errorf("mpi: deadlock detected: %d rank(s) blocked with nothing deliverable (%s%s)",
		blocked, strings.Join(parked, "; "), more)
}

// abort resumes every parked or ready rank so it observes the recorded
// failure (park panics with an abortError once World.failed is set) and
// unwinds, then drains completion notes.  Resume sends are non-blocking:
// a rank that raced into park around the failure instant may already
// hold an unconsumed token, which is all it needs to wake and unwind.  A
// rank stuck in user code never reports done; Run's watchdog grace
// period gives up on the world in that case, exactly as the goroutine
// engine does.
func (s *evScheduler) abort() {
	for _, p := range s.w.procs {
		switch p.evState.Load() {
		case evReady, evRecv, evColl, evAck:
			select {
			case p.evResume <- struct{}{}:
			default:
			}
		}
	}
	for s.live > 0 {
		n := <-s.notes
		if n.done {
			s.live--
			continue
		}
		// Parked in the instant between the failure and its resume; wake
		// it (again) so the park observes the failure and unwinds.
		select {
		case n.p.evResume <- struct{}{}:
		default:
		}
	}
}

// park blocks the calling rank until the scheduler resumes it: the
// rank's half of the handoff protocol, called from every event-engine
// blocking point with no locks held.  kind records why the rank is
// parked (deadlock diagnostics, abort scans); receive parks additionally
// set evCid/evSrc/evTag first.  On a failed world park panics with the
// abort error instead of blocking, so unwinding never stalls.
func (p *proc) park(kind int32) {
	w := p.w
	if w.failed.Load() {
		panic(abortError{cause: w.failError()})
	}
	p.evState.Store(kind)
	w.sched.notes <- evNote{p: p}
	<-p.evResume
	if w.failed.Load() {
		panic(abortError{cause: w.failError()})
	}
}
