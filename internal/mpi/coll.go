package mpi

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/trace"
	"repro/internal/vtime"
)

// collSplit is the internal pseudo-collective kind used by Comm.Split/Dup.
const collSplit trace.CollKind = 255

// collArgs carries one participant's contribution to a collective.
type collArgs struct {
	kind      trace.CollKind
	root      int // comm-local root; -1 for unrooted operations
	op        Op
	sendData  []byte
	sendType  Datatype
	sendCount int   // per-destination element count (regular ops)
	counts    []int // per-rank counts (v-variants, reduce_scatter)
	color     int   // split
	key       int   // split
}

// collResult is one participant's outcome.
type collResult struct {
	exit    float64 // virtual completion time (ignored in real mode)
	data    []byte  // output payload (nil if none)
	id      uint64  // collective instance id (trace match id)
	newCore *commCore
}

// collOp accumulates one collective instance across the communicator.
type collOp struct {
	kind    trace.CollKind
	id      uint64
	seq     uint64 // per-communicator sequence (deterministic identity)
	size    int
	arrived int
	taken   int
	done    bool
	err     error

	enter []float64
	args  []*collArgs

	exits []float64
	out   [][]byte
	cores []*commCore

	// waiters are the participants parked under the event engine; the
	// last arriver readies them after computing the operation.
	waiters []*proc
}

// collID derives the deterministic trace match id of a collective
// instance from the communicator and its per-communicator sequence.  A
// pure function of the program — identical across engines and host
// schedules — unlike the racy global counter it replaced.
func collID(cid int32, seq uint64) uint64 {
	return uint64(uint32(cid))<<32 | (seq+1)&0xffffffff
}

// collEngine synchronizes the members of one communicator through their
// collective calls.  MPI requires all members to call collectives in the
// same order; the per-communicator sequence number plus the kind check
// enforce exactly that and turn order violations into run failures.
type collEngine struct {
	mu   sync.Mutex
	cond *sync.Cond
	w    *World
	ops  map[uint64]*collOp
}

func newCollEngine(w *World) *collEngine {
	e := &collEngine{w: w, ops: make(map[uint64]*collOp)}
	e.cond = sync.NewCond(&e.mu)
	w.registerWaker(e)
	return e
}

// wakeAll implements waker.
func (e *collEngine) wakeAll() {
	e.mu.Lock()
	e.cond.Broadcast()
	e.mu.Unlock()
}

// abort releases the lock, fails the world and unwinds the caller.
func (e *collEngine) abort(err error) {
	e.mu.Unlock()
	e.w.fail(err)
	panic(abortError{cause: err})
}

// join is called by each participant; it blocks until the operation
// completes and returns the participant's result.
func (e *collEngine) join(c *Comm, seq uint64, enter float64, args collArgs) collResult {
	me := c.myRank
	size := c.Size()
	e.mu.Lock()

	op := e.ops[seq]
	if op == nil {
		op = &collOp{
			kind:  args.kind,
			id:    collID(c.core.cid, seq),
			seq:   seq,
			size:  size,
			enter: make([]float64, size),
			args:  make([]*collArgs, size),
		}
		e.ops[seq] = op
	}
	if op.kind != args.kind {
		err := fmt.Errorf("mpi: collective mismatch on comm %d seq %d: rank %d called %v, others called %v",
			c.core.cid, seq, me, args.kind, op.kind)
		e.abort(err) // does not return
	}
	if op.args[me] != nil {
		err := fmt.Errorf("mpi: rank %d joined collective seq %d twice", me, seq)
		e.abort(err)
	}
	a := args // copy
	op.args[me] = &a
	op.enter[me] = enter
	op.arrived++

	if op.arrived == op.size {
		if err := e.compute(c.core, op); err != nil {
			op.err = err
			op.done = true
			e.cond.Broadcast()
			e.abort(err)
		}
		op.done = true
		if e.w.eventMode {
			// The last arriver is the running rank; the parked
			// participants become ready at their own (already advanced)
			// clocks and pick up their results when dispatched.
			for _, q := range op.waiters {
				e.w.sched.readyProc(q)
			}
			op.waiters = nil
		} else {
			e.cond.Broadcast()
		}
	} else if e.w.eventMode {
		op.waiters = append(op.waiters, c.p)
		e.mu.Unlock()
		c.p.park(evColl)
		e.mu.Lock()
	} else {
		restore := c.p.blockedSection()
		for !op.done {
			if e.w.failed.Load() {
				e.w.failMu.Lock()
				err := e.w.failErr
				e.w.failMu.Unlock()
				e.mu.Unlock()
				panic(abortError{cause: err})
			}
			e.cond.Wait()
		}
		restore()
	}
	if op.err != nil {
		e.mu.Unlock()
		panic(abortError{cause: op.err})
	}
	res := collResult{exit: op.exits[me], id: op.id}
	if op.out != nil {
		res.data = op.out[me]
	}
	if op.cores != nil {
		res.newCore = op.cores[me]
	}
	op.taken++
	if op.taken == op.size {
		delete(e.ops, seq)
	}
	e.mu.Unlock()
	return res
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// compute fills exits/out/cores once all participants have arrived.  It
// runs under the engine lock; all inputs are staged copies, so no rank's
// memory is touched concurrently.
func (e *collEngine) compute(core *commCore, op *collOp) error {
	P := op.size
	cost := e.w.opt.Cost
	op.exits = make([]float64, P)
	maxE := maxOf(op.enter)

	// sameCounts verifies a uniform element count and type across ranks.
	sameCounts := func() (Datatype, int, error) {
		t, n := op.args[0].sendType, op.args[0].sendCount
		for i := 1; i < P; i++ {
			if op.args[i].sendType != t || op.args[i].sendCount != n {
				return 0, 0, fmt.Errorf("mpi: %v: rank %d contributed %d×%v, rank 0 contributed %d×%v",
					op.kind, i, op.args[i].sendCount, op.args[i].sendType, n, t)
			}
		}
		return t, n, nil
	}
	sameRoot := func() (int, error) {
		r := op.args[0].root
		for i := 1; i < P; i++ {
			if op.args[i].root != r {
				return 0, fmt.Errorf("mpi: %v: inconsistent roots %d and %d", op.kind, r, op.args[i].root)
			}
		}
		if r < 0 || r >= P {
			return 0, fmt.Errorf("mpi: %v: root %d outside communicator of size %d", op.kind, r, P)
		}
		return r, nil
	}

	switch op.kind {
	case trace.CollBarrier:
		x := maxE + cost.barrierNet(P) + cost.Overhead
		for i := range op.exits {
			op.exits[i] = x
		}

	case trace.CollBcast:
		root, err := sameRoot()
		if err != nil {
			return err
		}
		t, n, err := sameCounts()
		if err != nil {
			return err
		}
		bytes := n * t.Size()
		data := op.args[root].sendData
		if len(data) != bytes {
			return fmt.Errorf("mpi: Bcast root buffer holds %d bytes, expected %d", len(data), bytes)
		}
		net := cost.collNet(P, bytes)
		avail := op.enter[root] + net
		op.out = make([][]byte, P)
		for i := 0; i < P; i++ {
			op.out[i] = append([]byte(nil), data...)
			if i == root {
				op.exits[i] = op.enter[root] + net + cost.Overhead
			} else {
				x := op.enter[i]
				if avail > x {
					x = avail
				}
				op.exits[i] = x + cost.Overhead
			}
		}

	case trace.CollScatter, trace.CollScatterv:
		root, err := sameRoot()
		if err != nil {
			return err
		}
		t, _, err := sameCounts()
		if err != nil {
			return err
		}
		counts := make([]int, P)
		if op.kind == trace.CollScatter {
			for i := range counts {
				counts[i] = op.args[0].sendCount
			}
		} else {
			counts = op.args[root].counts
			if len(counts) != P {
				return fmt.Errorf("mpi: Scatterv root supplied %d counts for %d ranks", len(counts), P)
			}
		}
		var total int
		for _, n := range counts {
			total += n
		}
		data := op.args[root].sendData
		if len(data) != total*t.Size() {
			return fmt.Errorf("mpi: %v root buffer holds %d bytes, expected %d", op.kind, len(data), total*t.Size())
		}
		op.out = make([][]byte, P)
		off := 0
		for i := 0; i < P; i++ {
			nb := counts[i] * t.Size()
			op.out[i] = append([]byte(nil), data[off:off+nb]...)
			off += nb
			net := cost.collNet(P, nb)
			if i == root {
				op.exits[i] = op.enter[root] + net + cost.Overhead
			} else {
				avail := op.enter[root] + net
				x := op.enter[i]
				if avail > x {
					x = avail
				}
				op.exits[i] = x + cost.Overhead
			}
		}

	case trace.CollGather, trace.CollGatherv, trace.CollReduce:
		root, err := sameRoot()
		if err != nil {
			return err
		}
		t, n, err := sameCounts()
		if err != nil {
			return err
		}
		var rootData []byte
		var rootBytes int
		if op.kind == trace.CollReduce {
			rootBytes = n * t.Size()
			rootData = append([]byte(nil), op.args[0].sendData...)
			for i := 1; i < P; i++ {
				if err := reduceInto(rootData, op.args[i].sendData, t, op.args[root].op, n); err != nil {
					return err
				}
			}
		} else {
			for i := 0; i < P; i++ {
				rootData = append(rootData, op.args[i].sendData...)
			}
			rootBytes = len(rootData)
		}
		op.out = make([][]byte, P)
		op.out[root] = rootData
		for i := 0; i < P; i++ {
			if i == root {
				op.exits[i] = maxE + cost.collNet(P, rootBytes) + cost.Overhead
			} else {
				op.exits[i] = op.enter[i] + cost.transfer(len(op.args[i].sendData)) + cost.Overhead
			}
		}

	case trace.CollAllreduce, trace.CollAllgather, trace.CollAllgatherv,
		trace.CollAlltoall, trace.CollAlltoallv, trace.CollReduceScatter:
		t, n, err := sameCounts()
		if err != nil {
			return err
		}
		op.out = make([][]byte, P)
		es := t.Size()
		switch op.kind {
		case trace.CollAllreduce:
			acc := append([]byte(nil), op.args[0].sendData...)
			for i := 1; i < P; i++ {
				if err := reduceInto(acc, op.args[i].sendData, t, op.args[0].op, n); err != nil {
					return err
				}
			}
			for i := range op.out {
				op.out[i] = append([]byte(nil), acc...)
			}
		case trace.CollAllgather, trace.CollAllgatherv:
			var all []byte
			for i := 0; i < P; i++ {
				all = append(all, op.args[i].sendData...)
			}
			for i := range op.out {
				op.out[i] = append([]byte(nil), all...)
			}
		case trace.CollAlltoall:
			// Rank i receives segment i of every rank's send buffer.
			seg := n * es
			for i := 0; i < P; i++ {
				if len(op.args[i].sendData) != P*seg {
					return fmt.Errorf("mpi: Alltoall rank %d buffer holds %d bytes, expected %d",
						i, len(op.args[i].sendData), P*seg)
				}
			}
			for i := 0; i < P; i++ {
				buf := make([]byte, 0, P*seg)
				for j := 0; j < P; j++ {
					buf = append(buf, op.args[j].sendData[i*seg:(i+1)*seg]...)
				}
				op.out[i] = buf
			}
		case trace.CollAlltoallv:
			// args[j].counts[i] elements travel j→i; receiver layout is
			// sender-rank order.
			for j := 0; j < P; j++ {
				if len(op.args[j].counts) != P {
					return fmt.Errorf("mpi: Alltoallv rank %d supplied %d counts for %d ranks",
						j, len(op.args[j].counts), P)
				}
			}
			for i := 0; i < P; i++ {
				var buf []byte
				for j := 0; j < P; j++ {
					off := 0
					for k := 0; k < i; k++ {
						off += op.args[j].counts[k] * es
					}
					nb := op.args[j].counts[i] * es
					if off+nb > len(op.args[j].sendData) {
						return fmt.Errorf("mpi: Alltoallv rank %d send buffer too small", j)
					}
					buf = append(buf, op.args[j].sendData[off:off+nb]...)
				}
				op.out[i] = buf
			}
		case trace.CollReduceScatter:
			counts := op.args[0].counts
			if len(counts) != P {
				return fmt.Errorf("mpi: Reduce_scatter needs %d counts, got %d", P, len(counts))
			}
			var total int
			for _, cnt := range counts {
				total += cnt
			}
			if total != n {
				return fmt.Errorf("mpi: Reduce_scatter counts sum to %d, buffers hold %d", total, n)
			}
			acc := append([]byte(nil), op.args[0].sendData...)
			for i := 1; i < P; i++ {
				if err := reduceInto(acc, op.args[i].sendData, t, op.args[0].op, n); err != nil {
					return err
				}
			}
			off := 0
			for i := 0; i < P; i++ {
				nb := counts[i] * es
				op.out[i] = append([]byte(nil), acc[off:off+nb]...)
				off += nb
			}
		}
		x := maxE + cost.collNet(P, n*es) + cost.Overhead
		for i := range op.exits {
			op.exits[i] = x
		}

	case trace.CollScan:
		t, n, err := sameCounts()
		if err != nil {
			return err
		}
		op.out = make([][]byte, P)
		acc := append([]byte(nil), op.args[0].sendData...)
		op.out[0] = append([]byte(nil), acc...)
		prefixMax := op.enter[0]
		op.exits[0] = prefixMax + cost.transfer(n*t.Size()) + cost.Overhead
		for i := 1; i < P; i++ {
			if err := reduceInto(acc, op.args[i].sendData, t, op.args[0].op, n); err != nil {
				return err
			}
			op.out[i] = append([]byte(nil), acc...)
			if op.enter[i] > prefixMax {
				prefixMax = op.enter[i]
			}
			op.exits[i] = prefixMax + cost.collNet(i+1, n*t.Size()) + cost.Overhead
		}

	case collSplit:
		op.cores = make([]*commCore, P)
		type member struct{ color, key, rank int }
		var ms []member
		for i := 0; i < P; i++ {
			ms = append(ms, member{op.args[i].color, op.args[i].key, i})
		}
		sort.Slice(ms, func(a, b int) bool {
			if ms[a].color != ms[b].color {
				return ms[a].color < ms[b].color
			}
			if ms[a].key != ms[b].key {
				return ms[a].key < ms[b].key
			}
			return ms[a].rank < ms[b].rank
		})
		for i := 0; i < len(ms); {
			j := i
			for j < len(ms) && ms[j].color == ms[i].color {
				j++
			}
			if ms[i].color != Undefined {
				nc := &commCore{
					w:      e.w,
					cid:    e.w.commCounter.Add(1) - 1,
					engine: newCollEngine(e.w),
				}
				for _, m := range ms[i:j] {
					nc.ranks = append(nc.ranks, core.ranks[m.rank])
					op.cores[m.rank] = nc
				}
			}
			i = j
		}
		x := maxE + cost.barrierNet(P) + cost.Overhead
		for i := range op.exits {
			op.exits[i] = x
		}

	default:
		return fmt.Errorf("mpi: unknown collective kind %v", op.kind)
	}
	if pm := e.w.opt.Perturb; pm != nil && e.w.opt.Mode == vtime.Virtual {
		// Perturbation: each participant leaves the collective a little
		// later, keyed by the operation's deterministic (communicator,
		// sequence) identity — the virtual-time analogue of per-rank
		// completion jitter on a real interconnect.
		for i := range op.exits {
			op.exits[i] += pm.CollJitter(core.cid, op.seq, i)
		}
	}
	return nil
}

// runColl drives one collective call on this communicator: engine join,
// virtual clock update, and (for split) construction of the new handle.
func (c *Comm) runColl(args collArgs) collResult {
	enter := c.p.ctx.Now()
	seq := c.collSeq
	c.collSeq++
	res := c.core.engine.join(c, seq, enter, args)
	if c.p.ctx.Mode() == vtime.Virtual {
		c.p.ctx.Clock.AdvanceTo(res.exit)
	}
	return res
}

// recordColl emits the KindColl trace event for a completed collective.
func (c *Comm) recordColl(kind trace.CollKind, root int, bytes int, id uint64, enter float64) {
	flags := uint8(0)
	if root == c.myRank {
		flags |= trace.FlagRoot
	}
	c.p.ctx.Record(trace.Event{
		Time: c.p.ctx.Now(), Aux: enter, Kind: trace.KindColl,
		Coll: kind, Root: int32(root), CRank: int32(c.myRank),
		Comm: c.core.cid, Bytes: int64(bytes), Match: id, Flags: flags,
	})
}

// syncCollective runs an untraced barrier (used by MPI_Finalize).
func (c *Comm) syncCollective(kind trace.CollKind, _ bool) {
	c.runColl(collArgs{kind: kind, root: -1})
}

// Barrier blocks until all members arrive (MPI_Barrier).
func (c *Comm) Barrier() {
	ctx := c.p.ctx
	ctx.Enter("MPI_Barrier")
	enter := ctx.Now()
	res := c.runColl(collArgs{kind: trace.CollBarrier, root: -1})
	c.recordColl(trace.CollBarrier, -1, 0, res.id, enter)
	ctx.Exit()
}

// Bcast broadcasts the root's buffer to all members (MPI_Bcast).
func (c *Comm) Bcast(buf *Buf, root int) {
	c.checkBuf(buf, "Bcast")
	ctx := c.p.ctx
	ctx.Enter("MPI_Bcast")
	enter := ctx.Now()
	args := collArgs{kind: trace.CollBcast, root: root,
		sendType: buf.Type, sendCount: buf.Count}
	if c.myRank == root {
		args.sendData = append([]byte(nil), buf.Data...)
	}
	res := c.runColl(args)
	copy(buf.Data, res.data)
	c.recordColl(trace.CollBcast, root, buf.Bytes(), res.id, enter)
	ctx.Exit()
}

// Scatter distributes equal slices of the root's send buffer
// (MPI_Scatter).  sbuf is significant only at the root and must hold
// Size()×rbuf.Count elements.
func (c *Comm) Scatter(sbuf, rbuf *Buf, root int) {
	c.checkBuf(rbuf, "Scatter")
	ctx := c.p.ctx
	ctx.Enter("MPI_Scatter")
	enter := ctx.Now()
	args := collArgs{kind: trace.CollScatter, root: root,
		sendType: rbuf.Type, sendCount: rbuf.Count}
	if c.myRank == root {
		c.checkBuf(sbuf, "Scatter root")
		args.sendData = append([]byte(nil), sbuf.Data...)
	}
	res := c.runColl(args)
	copy(rbuf.Data, res.data)
	c.recordColl(trace.CollScatter, root, rbuf.Bytes(), res.id, enter)
	ctx.Exit()
}

// Scatterv distributes the root's aggregate buffer according to the VBuf's
// distribution (MPI_Scatterv).
func (c *Comm) Scatterv(v *VBuf) {
	ctx := c.p.ctx
	ctx.Enter("MPI_Scatterv")
	enter := ctx.Now()
	args := collArgs{kind: trace.CollScatterv, root: v.Root,
		sendType: v.Buf.Type, sendCount: 0, counts: v.Counts}
	if c.myRank == v.Root {
		args.sendData = append([]byte(nil), v.RootBuf.Data...)
	}
	res := c.runColl(args)
	copy(v.Buf.Data, res.data)
	c.recordColl(trace.CollScatterv, v.Root, v.Buf.Bytes(), res.id, enter)
	ctx.Exit()
}

// Gather collects equal contributions into the root's receive buffer
// (MPI_Gather).  rbuf is significant only at the root and must hold
// Size()×sbuf.Count elements.
func (c *Comm) Gather(sbuf, rbuf *Buf, root int) {
	c.checkBuf(sbuf, "Gather")
	ctx := c.p.ctx
	ctx.Enter("MPI_Gather")
	enter := ctx.Now()
	args := collArgs{kind: trace.CollGather, root: root,
		sendType: sbuf.Type, sendCount: sbuf.Count,
		sendData: append([]byte(nil), sbuf.Data...)}
	res := c.runColl(args)
	if c.myRank == root {
		c.checkBuf(rbuf, "Gather root")
		if len(res.data) > len(rbuf.Data) {
			panic(fmt.Sprintf("mpi: Gather root buffer too small: %d < %d", len(rbuf.Data), len(res.data)))
		}
		copy(rbuf.Data, res.data)
	}
	c.recordColl(trace.CollGather, root, sbuf.Bytes(), res.id, enter)
	ctx.Exit()
}

// Gatherv collects per-rank portions into the root's aggregate buffer
// according to the VBuf's distribution (MPI_Gatherv).
func (c *Comm) Gatherv(v *VBuf) {
	ctx := c.p.ctx
	ctx.Enter("MPI_Gatherv")
	enter := ctx.Now()
	args := collArgs{kind: trace.CollGatherv, root: v.Root,
		sendType: v.Buf.Type, sendCount: 0,
		sendData: append([]byte(nil), v.Buf.Data...)}
	res := c.runColl(args)
	if c.myRank == v.Root {
		copy(v.RootBuf.Data, res.data)
	}
	c.recordColl(trace.CollGatherv, v.Root, v.Buf.Bytes(), res.id, enter)
	ctx.Exit()
}

// Reduce combines contributions elementwise at the root (MPI_Reduce).
func (c *Comm) Reduce(sbuf, rbuf *Buf, op Op, root int) {
	c.checkBuf(sbuf, "Reduce")
	ctx := c.p.ctx
	ctx.Enter("MPI_Reduce")
	enter := ctx.Now()
	args := collArgs{kind: trace.CollReduce, root: root, op: op,
		sendType: sbuf.Type, sendCount: sbuf.Count,
		sendData: append([]byte(nil), sbuf.Data...)}
	res := c.runColl(args)
	if c.myRank == root {
		c.checkBuf(rbuf, "Reduce root")
		copy(rbuf.Data, res.data)
	}
	c.recordColl(trace.CollReduce, root, sbuf.Bytes(), res.id, enter)
	ctx.Exit()
}

// Allreduce combines contributions elementwise on every rank
// (MPI_Allreduce).
func (c *Comm) Allreduce(sbuf, rbuf *Buf, op Op) {
	c.checkBuf(sbuf, "Allreduce")
	c.checkBuf(rbuf, "Allreduce")
	ctx := c.p.ctx
	ctx.Enter("MPI_Allreduce")
	enter := ctx.Now()
	args := collArgs{kind: trace.CollAllreduce, root: -1, op: op,
		sendType: sbuf.Type, sendCount: sbuf.Count,
		sendData: append([]byte(nil), sbuf.Data...)}
	res := c.runColl(args)
	copy(rbuf.Data, res.data)
	c.recordColl(trace.CollAllreduce, -1, sbuf.Bytes(), res.id, enter)
	ctx.Exit()
}

// Allgather concatenates every rank's contribution on every rank
// (MPI_Allgather).  rbuf must hold Size()×sbuf.Count elements.
func (c *Comm) Allgather(sbuf, rbuf *Buf) {
	c.checkBuf(sbuf, "Allgather")
	c.checkBuf(rbuf, "Allgather")
	ctx := c.p.ctx
	ctx.Enter("MPI_Allgather")
	enter := ctx.Now()
	args := collArgs{kind: trace.CollAllgather, root: -1,
		sendType: sbuf.Type, sendCount: sbuf.Count,
		sendData: append([]byte(nil), sbuf.Data...)}
	res := c.runColl(args)
	if len(res.data) > len(rbuf.Data) {
		panic(fmt.Sprintf("mpi: Allgather buffer too small: %d < %d", len(rbuf.Data), len(res.data)))
	}
	copy(rbuf.Data, res.data)
	c.recordColl(trace.CollAllgather, -1, sbuf.Bytes(), res.id, enter)
	ctx.Exit()
}

// Allgatherv concatenates irregular per-rank contributions on every rank
// (MPI_Allgatherv).  counts gives each rank's contribution size (identical
// on all ranks); rbuf must hold their sum.
func (c *Comm) Allgatherv(sbuf, rbuf *Buf, counts []int) {
	c.checkBuf(sbuf, "Allgatherv")
	c.checkBuf(rbuf, "Allgatherv")
	if len(counts) != c.Size() {
		panic(fmt.Sprintf("mpi: Allgatherv needs %d counts, got %d", c.Size(), len(counts)))
	}
	if counts[c.myRank] != sbuf.Count {
		panic(fmt.Sprintf("mpi: Allgatherv rank %d contributes %d elements, counts say %d",
			c.myRank, sbuf.Count, counts[c.myRank]))
	}
	ctx := c.p.ctx
	ctx.Enter("MPI_Allgatherv")
	enter := ctx.Now()
	args := collArgs{kind: trace.CollAllgatherv, root: -1,
		sendType: sbuf.Type, sendCount: 0,
		sendData: append([]byte(nil), sbuf.Data...)}
	res := c.runColl(args)
	if len(res.data) > len(rbuf.Data) {
		panic(fmt.Sprintf("mpi: Allgatherv buffer too small: %d < %d", len(rbuf.Data), len(res.data)))
	}
	copy(rbuf.Data, res.data)
	c.recordColl(trace.CollAllgatherv, -1, sbuf.Bytes(), res.id, enter)
	ctx.Exit()
}

// Alltoall exchanges equal segments between all pairs (MPI_Alltoall).
// Both buffers hold Size()×count elements; count is inferred from the
// buffer sizes.
func (c *Comm) Alltoall(sbuf, rbuf *Buf) {
	c.checkBuf(sbuf, "Alltoall")
	c.checkBuf(rbuf, "Alltoall")
	if sbuf.Count%c.Size() != 0 {
		panic(fmt.Sprintf("mpi: Alltoall buffer count %d not divisible by size %d", sbuf.Count, c.Size()))
	}
	ctx := c.p.ctx
	ctx.Enter("MPI_Alltoall")
	enter := ctx.Now()
	args := collArgs{kind: trace.CollAlltoall, root: -1,
		sendType: sbuf.Type, sendCount: sbuf.Count / c.Size(),
		sendData: append([]byte(nil), sbuf.Data...)}
	res := c.runColl(args)
	copy(rbuf.Data, res.data)
	c.recordColl(trace.CollAlltoall, -1, sbuf.Bytes(), res.id, enter)
	ctx.Exit()
}

// Alltoallv exchanges irregular segments between all pairs (MPI_Alltoallv).
// sendCounts[i] elements of sbuf go to rank i, laid out contiguously in
// rank order; the receive layout is likewise in sender order.
func (c *Comm) Alltoallv(sbuf *Buf, sendCounts []int, rbuf *Buf) {
	c.checkBuf(sbuf, "Alltoallv")
	c.checkBuf(rbuf, "Alltoallv")
	if len(sendCounts) != c.Size() {
		panic(fmt.Sprintf("mpi: Alltoallv needs %d send counts, got %d", c.Size(), len(sendCounts)))
	}
	ctx := c.p.ctx
	ctx.Enter("MPI_Alltoallv")
	enter := ctx.Now()
	args := collArgs{kind: trace.CollAlltoallv, root: -1,
		sendType: sbuf.Type, sendCount: 0,
		counts:   append([]int(nil), sendCounts...),
		sendData: append([]byte(nil), sbuf.Data...)}
	res := c.runColl(args)
	if len(res.data) > len(rbuf.Data) {
		panic(fmt.Sprintf("mpi: Alltoallv receive buffer too small: %d < %d", len(rbuf.Data), len(res.data)))
	}
	copy(rbuf.Data, res.data)
	c.recordColl(trace.CollAlltoallv, -1, sbuf.Bytes(), res.id, enter)
	ctx.Exit()
}

// Scan computes the inclusive prefix reduction (MPI_Scan): rank i receives
// the reduction of ranks 0..i.
func (c *Comm) Scan(sbuf, rbuf *Buf, op Op) {
	c.checkBuf(sbuf, "Scan")
	c.checkBuf(rbuf, "Scan")
	ctx := c.p.ctx
	ctx.Enter("MPI_Scan")
	enter := ctx.Now()
	args := collArgs{kind: trace.CollScan, root: -1, op: op,
		sendType: sbuf.Type, sendCount: sbuf.Count,
		sendData: append([]byte(nil), sbuf.Data...)}
	res := c.runColl(args)
	copy(rbuf.Data, res.data)
	c.recordColl(trace.CollScan, -1, sbuf.Bytes(), res.id, enter)
	ctx.Exit()
}

// ReduceScatter reduces the full vector and scatters segments of the
// result according to counts (MPI_Reduce_scatter).
func (c *Comm) ReduceScatter(sbuf, rbuf *Buf, counts []int, op Op) {
	c.checkBuf(sbuf, "Reduce_scatter")
	c.checkBuf(rbuf, "Reduce_scatter")
	ctx := c.p.ctx
	ctx.Enter("MPI_Reduce_scatter")
	enter := ctx.Now()
	args := collArgs{kind: trace.CollReduceScatter, root: -1, op: op,
		sendType: sbuf.Type, sendCount: sbuf.Count,
		counts:   append([]int(nil), counts...),
		sendData: append([]byte(nil), sbuf.Data...)}
	res := c.runColl(args)
	copy(rbuf.Data, res.data)
	c.recordColl(trace.CollReduceScatter, -1, sbuf.Bytes(), res.id, enter)
	ctx.Exit()
}
