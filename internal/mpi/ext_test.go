package mpi

import (
	"math"
	"testing"
	"time"

	"repro/internal/trace"
)

func TestPackUnpackVector(t *testing.T) {
	src := AllocBuf(TypeInt, 12)
	for i := 0; i < 12; i++ {
		src.SetInt64(i, int64(i))
	}
	// 3 blocks of 2 elements, stride 4: elements 0,1, 4,5, 8,9.
	v := Vector{Count: 3, BlockLen: 2, Stride: 4}
	packed := Pack(src, v)
	want := []int64{0, 1, 4, 5, 8, 9}
	if packed.Count != len(want) {
		t.Fatalf("packed count = %d", packed.Count)
	}
	for i, w := range want {
		if packed.Int64(i) != w {
			t.Errorf("packed[%d] = %d, want %d", i, packed.Int64(i), w)
		}
	}
	dst := AllocBuf(TypeInt, 12)
	for i := 0; i < 12; i++ {
		dst.SetInt64(i, -1)
	}
	Unpack(dst, v, packed)
	for i := 0; i < 12; i++ {
		wantV := int64(-1)
		for _, idx := range want {
			if int64(i) == idx {
				wantV = idx
			}
		}
		if dst.Int64(i) != wantV {
			t.Errorf("dst[%d] = %d, want %d", i, dst.Int64(i), wantV)
		}
	}
}

func TestPackRejectsBadLayouts(t *testing.T) {
	src := AllocBuf(TypeInt, 8)
	for _, v := range []Vector{
		{Count: 3, BlockLen: 0, Stride: 2},  // empty blocks
		{Count: 3, BlockLen: 3, Stride: 2},  // overlapping
		{Count: 4, BlockLen: 2, Stride: 4},  // exceeds buffer
		{Count: -1, BlockLen: 1, Stride: 1}, // negative count
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("layout %+v accepted", v)
				}
			}()
			Pack(src, v)
		}()
	}
}

func TestSendRecvVector(t *testing.T) {
	mustRun(t, testOpts(2), func(c *Comm) {
		v := Vector{Count: 4, BlockLen: 1, Stride: 3}
		if c.Rank() == 0 {
			buf := AllocBuf(TypeDouble, 10)
			for i := 0; i < 10; i++ {
				buf.SetFloat64(i, float64(i)*1.5)
			}
			c.SendVector(buf, v, 1, 0)
		} else {
			buf := AllocBuf(TypeDouble, 10)
			st := c.RecvVector(buf, v, 0, 0)
			if st.Count != 4 {
				t.Errorf("count = %d", st.Count)
			}
			for _, idx := range []int{0, 3, 6, 9} {
				if buf.Float64(idx) != float64(idx)*1.5 {
					t.Errorf("element %d = %v", idx, buf.Float64(idx))
				}
			}
			// Non-layout positions stay zero.
			if buf.Float64(1) != 0 {
				t.Errorf("gap element written: %v", buf.Float64(1))
			}
		}
	})
}

func TestBsendAlwaysEager(t *testing.T) {
	opt := testOpts(2)
	opt.Cost = DefaultCost()
	opt.Cost.EagerThreshold = 8 // tiny: standard sends would rendezvous
	tr := mustRun(t, opt, func(c *Comm) {
		b := AllocBuf(TypeDouble, 128) // 1 KiB >> threshold
		if c.Rank() == 0 {
			c.Bsend(b, 1, 0) // must not block even though recv is late
			c.Work(0.01)
		} else {
			c.Work(0.05)
			c.Recv(b, 0, 0)
		}
	})
	for _, ev := range tr.Events {
		if ev.Kind == trace.KindSend && ev.Flags&trace.FlagSync != 0 {
			t.Error("Bsend used the rendezvous protocol")
		}
	}
	// Sender's Bsend region must be short (no blocking).
	st := trace.ComputeStats(tr)
	if got := st.RegionInclusive("MPI_Bsend"); got > 0.001 {
		t.Errorf("MPI_Bsend took %v — blocked?", got)
	}
}

func TestProbeThenRecv(t *testing.T) {
	mustRun(t, testOpts(2), func(c *Comm) {
		if c.Rank() == 0 {
			b := AllocBuf(TypeInt, 5)
			b.FillSeq(0)
			c.Work(0.02)
			c.Send(b, 1, 9)
		} else {
			st := c.Probe(0, 9)
			if st.Count != 5 || st.Source != 0 || st.Tag != 9 {
				t.Errorf("probe status %+v", st)
			}
			// Allocate exactly the probed size, as real MPI code does.
			b := AllocBuf(TypeInt, st.Count)
			got := c.Recv(b, st.Source, st.Tag)
			if got.Count != 5 {
				t.Errorf("recv count %d", got.Count)
			}
			// The probe completed no earlier than the message arrival.
			if c.WTime() < 0.02 {
				t.Errorf("receiver time %v before sender's work finished", c.WTime())
			}
		}
	})
}

func TestProbeAnySource(t *testing.T) {
	mustRun(t, testOpts(3), func(c *Comm) {
		if c.Rank() == 0 {
			b := AllocBuf(TypeInt, 1)
			for i := 0; i < 2; i++ {
				st := c.Probe(AnySource, AnyTag)
				got := c.Recv(b, st.Source, st.Tag)
				if got.Source != st.Source || got.Tag != st.Tag {
					t.Errorf("probe/recv mismatch: %+v vs %+v", st, got)
				}
			}
		} else {
			b := AllocBuf(TypeInt, 1)
			c.Work(float64(c.Rank()) * 0.01)
			c.Send(b, 0, c.Rank())
		}
	})
}

// TestWildcardVirtualArrivalOrder checks the deterministic wildcard rule:
// the receiver must match messages in virtual-arrival order even though
// the host-scheduling order of the senders is arbitrary.
func TestWildcardVirtualArrivalOrder(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		order := make([]int, 0, 3)
		mustRun(t, testOpts(4), func(c *Comm) {
			b := AllocBuf(TypeInt, 1)
			if c.Rank() == 0 {
				for i := 0; i < 3; i++ {
					st := c.Recv(b, AnySource, 0)
					order = append(order, st.Source)
				}
			} else {
				// Rank r sends at virtual time (4-r)*10ms: rank 3
				// earliest, rank 1 latest.
				c.Work(float64(4-c.Rank()) * 0.01)
				b.SetInt64(0, int64(c.Rank()))
				c.Send(b, 0, 0)
			}
		})
		want := []int{3, 2, 1}
		for i, w := range want {
			if order[i] != w {
				t.Fatalf("trial %d: match order %v, want %v", trial, order, want)
			}
		}
	}
}

func TestGrowingSeverityPerIteration(t *testing.T) {
	// Barrier waits must grow linearly across repetitions when the scale
	// factor is the iteration number.
	const reps = 4
	tr := mustRun(t, testOpts(4), func(c *Comm) {
		for i := 0; i < reps; i++ {
			if c.Rank() == 0 {
				c.Work(0.01 * float64(i+1))
			}
			c.Barrier()
		}
	})
	var waits []float64
	perBarrier := map[uint64]float64{}
	for _, ev := range tr.Events {
		if ev.Kind == trace.KindColl && ev.Coll == trace.CollBarrier && ev.CRank == 1 {
			perBarrier[ev.Match] = ev.Time - ev.Aux
		}
	}
	for _, w := range perBarrier {
		waits = append(waits, w)
	}
	if len(waits) != reps {
		t.Fatalf("got %d barrier instances", len(waits))
	}
	var total float64
	for _, w := range waits {
		total += w
	}
	// Each instance's wait additionally includes the barrier's own
	// network+overhead cost (~tens of µs with the default model).
	want := 0.01 * (1 + 2 + 3 + 4)
	if math.Abs(total-want) > 1e-3 {
		t.Errorf("total wait %v, want ≈ %v", total, want)
	}
}

func TestAllgatherv(t *testing.T) {
	const P = 4
	mustRun(t, testOpts(P), func(c *Comm) {
		counts := []int{2, 1, 3, 2}
		s := AllocBuf(TypeInt, counts[c.Rank()])
		for i := 0; i < s.Count; i++ {
			s.SetInt64(i, int64(c.Rank()*10+i))
		}
		r := AllocBuf(TypeInt, 8)
		c.Allgatherv(s, r, counts)
		off := 0
		for rank, n := range counts {
			for i := 0; i < n; i++ {
				if r.Int64(off) != int64(rank*10+i) {
					t.Errorf("slot %d = %d, want %d", off, r.Int64(off), rank*10+i)
				}
				off++
			}
		}
	})
}

func TestAllgathervValidatesCounts(t *testing.T) {
	_, err := Run(testOpts(2), func(c *Comm) {
		s := AllocBuf(TypeInt, 1)
		r := AllocBuf(TypeInt, 4)
		c.Allgatherv(s, r, []int{2, 2}) // wrong: contributes 1, claims 2
	})
	if err == nil {
		t.Fatal("count mismatch accepted")
	}
}

// TestRendezvousRingDeadlockDetected: a ring of plain blocking Sends above
// the eager threshold deadlocks in real MPI — our substrate must reproduce
// that failure mode and the watchdog must convert it into an error rather
// than a hang.
func TestRendezvousRingDeadlockDetected(t *testing.T) {
	opt := testOpts(3)
	opt.Cost = DefaultCost()
	opt.Cost.EagerThreshold = 8
	opt.Timeout = 300 * time.Millisecond
	_, err := Run(opt, func(c *Comm) {
		big := AllocBuf(TypeDouble, 1024)
		next, prev := (c.Rank()+1)%3, (c.Rank()+2)%3
		c.Send(big, next, 0) // rendezvous: everyone blocks waiting for a recv
		c.Recv(big, prev, 0)
	})
	if err == nil {
		t.Fatal("rendezvous ring of blocking sends did not deadlock")
	}
}

// TestSelfSendEager: an eager self-send must work (real MPI allows
// buffered self-sends); a rendezvous self-send is the classic self-
// deadlock the watchdog must catch.
func TestSelfSendEager(t *testing.T) {
	mustRun(t, testOpts(1), func(c *Comm) {
		b := AllocBuf(TypeInt, 1)
		b.SetInt64(0, 77)
		c.Send(b, 0, 0)
		r := AllocBuf(TypeInt, 1)
		c.Recv(r, 0, 0)
		if r.Int64(0) != 77 {
			t.Errorf("self-send payload %d", r.Int64(0))
		}
	})
	opt := testOpts(1)
	opt.Timeout = 300 * time.Millisecond
	_, err := Run(opt, func(c *Comm) {
		b := AllocBuf(TypeInt, 1)
		c.Ssend(b, 0, 0) // blocks forever: no concurrent receive possible
	})
	if err == nil {
		t.Fatal("synchronous self-send did not deadlock")
	}
}

// TestTruncationDetected: receiving into a too-small buffer is an error,
// as in MPI (MPI_ERR_TRUNCATE).
func TestTruncationDetected(t *testing.T) {
	_, err := Run(testOpts(2), func(c *Comm) {
		if c.Rank() == 0 {
			b := AllocBuf(TypeInt, 8)
			c.Send(b, 1, 0)
		} else {
			small := AllocBuf(TypeInt, 4)
			c.Recv(small, 0, 0)
		}
	})
	if err == nil {
		t.Fatal("truncated receive accepted")
	}
}

// TestTypeMismatchDetected: datatype disagreement between send and
// receive is an error.
func TestTypeMismatchDetected(t *testing.T) {
	_, err := Run(testOpts(2), func(c *Comm) {
		if c.Rank() == 0 {
			b := AllocBuf(TypeDouble, 4)
			c.Send(b, 1, 0)
		} else {
			b := AllocBuf(TypeInt, 4)
			c.Recv(b, 0, 0)
		}
	})
	if err == nil {
		t.Fatal("datatype mismatch accepted")
	}
}

// TestLargeBacklogDrainsLinearly: a sender racing far ahead of its
// receiver builds a large mailbox backlog; draining it must stay fast
// (regression test for the O(n²) front-removal this exposed).
func TestLargeBacklogDrainsLinearly(t *testing.T) {
	if testing.Short() {
		t.Skip("large-backlog stress test")
	}
	const n = 200000
	start := time.Now()
	mustRun(t, testOpts(2), func(c *Comm) {
		b := AllocBuf(TypeByte, 8)
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				c.Send(b, 1, 0)
			}
		} else {
			c.Work(0.001) // let the backlog build
			for i := 0; i < n; i++ {
				c.Recv(b, 0, 0)
			}
		}
	})
	if el := time.Since(start); el > 20*time.Second {
		t.Errorf("draining %d messages took %v", n, el)
	}
}
