package mpi

// Communication patterns (paper §3.1.4): readily usable point-to-point
// building blocks for property functions.  As the paper requires, the
// patterns can be called with little context — they work for any number of
// processes (ranks without a partner simply skip the communication) and do
// not interfere with other traffic (each invocation uses its own tag
// space via the fixed pattern tag).

// Direction selects the orientation of a pattern (DIR_UP / DIR_DOWN).  It
// must be the same on all calling processes.
type Direction int

const (
	// DirUp sends towards higher ranks.
	DirUp Direction = iota
	// DirDown sends towards lower ranks.
	DirDown
)

// String names the direction.
func (d Direction) String() string {
	if d == DirUp {
		return "up"
	}
	return "down"
}

// patternTag is the tag used by the built-in patterns.
const patternTag = 42

// PatternOpts selects the communication flavor of a pattern, mirroring the
// use_isend / use_irecv flags of mpi_commpattern_sendrecv.  UseSsend forces
// the synchronous protocol on the sending side (an addition over the paper
// needed to realize the late-receiver property independently of message
// size).
type PatternOpts struct {
	UseIsend bool
	UseIrecv bool
	UseSsend bool
}

// PatternSendRecv performs the even-odd send-receive pattern
// (mpi_commpattern_sendrecv): processes with even ranks send to a process
// with an odd rank.  With DirUp, even rank e sends to e+1; with DirDown,
// even rank e sends to e-1.  Ranks without a partner (rank 0 for DirDown,
// the last even rank for DirUp with an odd communicator size) do not take
// part, as specified in the paper.
func PatternSendRecv(c *Comm, buf *Buf, dir Direction, opt PatternOpts) {
	me, sz := c.Rank(), c.Size()
	var partner int
	sender := me%2 == 0
	if dir == DirUp {
		if sender {
			partner = me + 1
		} else {
			partner = me - 1
		}
	} else {
		if sender {
			partner = me - 1
		} else {
			partner = me + 1
		}
	}
	if partner < 0 || partner >= sz {
		return
	}
	if sender {
		switch {
		case opt.UseSsend:
			c.Ssend(buf, partner, patternTag)
		case opt.UseIsend:
			c.Wait(c.Isend(buf, partner, patternTag))
		default:
			c.Send(buf, partner, patternTag)
		}
	} else {
		if opt.UseIrecv {
			c.Wait(c.Irecv(buf, partner, patternTag))
		} else {
			c.Recv(buf, partner, patternTag)
		}
	}
}

// PatternShift performs a cyclic shift (mpi_commpattern_shift): every
// process sends to its neighbour and receives from the other side.  With
// DirUp, rank r sends to (r+1) mod size; with DirDown to (r-1) mod size.
// The implementation uses a non-blocking send so the cycle cannot deadlock
// under the rendezvous protocol.  A singleton communicator ships the data
// to itself.
func PatternShift(c *Comm, sbuf, rbuf *Buf, dir Direction, opt PatternOpts) {
	me, sz := c.Rank(), c.Size()
	var dst, src int
	if dir == DirUp {
		dst, src = (me+1)%sz, (me-1+sz)%sz
	} else {
		dst, src = (me-1+sz)%sz, (me+1)%sz
	}
	req := c.Isend(sbuf, dst, patternTag)
	if opt.UseIrecv {
		c.Wait(c.Irecv(rbuf, src, patternTag))
	} else {
		c.Recv(rbuf, src, patternTag)
	}
	c.Wait(req)
}
