package mpi

import "fmt"

// Cartesian process topologies (MPI_Cart_create and friends).  Stencil
// applications — the Chapter-4 workload class — decompose their domains
// over a process grid; the topology functions translate between ranks and
// grid coordinates and provide the neighbour arithmetic halo exchanges
// need.

// Cart is a communicator with an attached Cartesian topology.
type Cart struct {
	*Comm
	dims     []int
	periodic []bool
	coords   []int // this rank's coordinates
}

// CartCreate attaches a Cartesian topology over the communicator
// (MPI_Cart_create with reorder=false): dims gives the grid extent per
// dimension and periodic whether each dimension wraps.  The product of
// dims must not exceed the communicator size; ranks beyond the product
// receive nil (they are not part of the grid — MPI returns MPI_COMM_NULL).
// Like the real operation it is collective.
func (c *Comm) CartCreate(dims []int, periodic []bool) *Cart {
	if len(dims) == 0 || len(dims) != len(periodic) {
		panic(fmt.Sprintf("mpi: CartCreate with dims %v and periodic %v", dims, periodic))
	}
	total := 1
	for _, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("mpi: CartCreate with non-positive dimension in %v", dims))
		}
		total *= d
	}
	if total > c.Size() {
		panic(fmt.Sprintf("mpi: CartCreate grid %v needs %d ranks, communicator has %d",
			dims, total, c.Size()))
	}
	color := 0
	if c.Rank() >= total {
		color = Undefined
	}
	sub := c.Split(color, c.Rank())
	if sub == nil {
		return nil
	}
	ct := &Cart{
		Comm:     sub,
		dims:     append([]int(nil), dims...),
		periodic: append([]bool(nil), periodic...),
	}
	ct.coords = ct.CoordsOf(sub.Rank())
	return ct
}

// Dims returns the grid extents.
func (ct *Cart) Dims() []int { return append([]int(nil), ct.dims...) }

// Coords returns this rank's grid coordinates (MPI_Cart_coords of self).
func (ct *Cart) Coords() []int { return append([]int(nil), ct.coords...) }

// CoordsOf converts a grid rank to coordinates (MPI_Cart_coords),
// row-major as in MPI.
func (ct *Cart) CoordsOf(rank int) []int {
	if rank < 0 || rank >= ct.Size() {
		panic(fmt.Sprintf("mpi: CoordsOf rank %d outside grid of size %d", rank, ct.Size()))
	}
	coords := make([]int, len(ct.dims))
	for i := len(ct.dims) - 1; i >= 0; i-- {
		coords[i] = rank % ct.dims[i]
		rank /= ct.dims[i]
	}
	return coords
}

// RankOf converts coordinates to a grid rank (MPI_Cart_rank).  Periodic
// dimensions wrap; out-of-range coordinates in non-periodic dimensions
// return ProcNull.
func (ct *Cart) RankOf(coords []int) int {
	if len(coords) != len(ct.dims) {
		panic(fmt.Sprintf("mpi: RankOf with %d coordinates for %d dimensions",
			len(coords), len(ct.dims)))
	}
	rank := 0
	for i, x := range coords {
		d := ct.dims[i]
		if ct.periodic[i] {
			x = ((x % d) + d) % d
		} else if x < 0 || x >= d {
			return ProcNull
		}
		rank = rank*d + x
	}
	return rank
}

// ProcNull is the null neighbour rank (MPI_PROC_NULL): communication
// directed at it is skipped.
const ProcNull = -2

// Shift returns the source and destination ranks for a shift of disp
// steps along dimension dim (MPI_Cart_shift): dst is where this rank's
// data goes, src is where data comes from.  Non-periodic edges yield
// ProcNull.
func (ct *Cart) Shift(dim, disp int) (src, dst int) {
	if dim < 0 || dim >= len(ct.dims) {
		panic(fmt.Sprintf("mpi: Shift on dimension %d of %d", dim, len(ct.dims)))
	}
	up := append([]int(nil), ct.coords...)
	up[dim] += disp
	dst = ct.RankOf(up)
	down := append([]int(nil), ct.coords...)
	down[dim] -= disp
	src = ct.RankOf(down)
	return src, dst
}

// SendrecvNeighbor performs a Sendrecv along a shift, handling ProcNull
// partners like MPI does (the corresponding half of the exchange is
// skipped and the receive buffer is left untouched).
func (ct *Cart) SendrecvNeighbor(sbuf *Buf, dst, stag int, rbuf *Buf, src, rtag int) {
	switch {
	case dst != ProcNull && src != ProcNull:
		ct.Sendrecv(sbuf, dst, stag, rbuf, src, rtag)
	case dst != ProcNull:
		ct.Send(sbuf, dst, stag)
	case src != ProcNull:
		ct.Recv(rbuf, src, rtag)
	}
}
