package mpi

// Engine differential tests over hand-written communication bodies: the
// mpi-level half of the migration oracle (the conformance half sweeps
// generated cases; see internal/conformance/diff.go).  Each body targets a
// scheduler mechanism with a known divergence risk — wildcard resolution
// order, rendezvous handshakes, nonblocking completion, communicator
// splits — and must serialize to byte-identical ATS1 traces on both
// engines.

import (
	"bytes"
	"testing"

	"repro/internal/distr"
)

// diffEngines runs body at the given scale on both engines and
// byte-compares the serialized traces.
func diffEngines(t *testing.T, procs int, body func(c *Comm)) {
	t.Helper()
	ser := func(eng Engine) []byte {
		t.Helper()
		tr, err := Run(Options{Procs: procs, Engine: eng}, body)
		if err != nil {
			t.Fatalf("engine %s: %v", eng, err)
		}
		var buf bytes.Buffer
		if _, err := tr.Write(&buf); err != nil {
			t.Fatalf("engine %s: serialize: %v", eng, err)
		}
		return buf.Bytes()
	}
	ev, gr := ser(EngineEvent), ser(EngineGoroutine)
	if !bytes.Equal(ev, gr) {
		i, n := 0, len(ev)
		if len(gr) < n {
			n = len(gr)
		}
		for i < n && ev[i] == gr[i] {
			i++
		}
		t.Fatalf("traces diverge at byte %d (event %dB, goroutine %dB)", i, len(ev), len(gr))
	}
}

// TestEngineDiffWildcard stresses AnySource resolution: a sink rank
// draining staggered senders must pick messages in virtual-arrival order
// on both engines, including the ties broken by sender rank.
func TestEngineDiffWildcard(t *testing.T) {
	diffEngines(t, 6, func(c *Comm) {
		buf := AllocBuf(TypeInt, 1)
		defer FreeBuf(buf)
		if c.Rank() == 0 {
			for i := 1; i < c.Size(); i++ {
				c.Recv(buf, AnySource, 7)
			}
		} else {
			c.Work(float64(c.Rank()%3) * 1e-4) // staggered, with ties
			c.Send(buf, 0, 7)
		}
	})
}

// TestEngineDiffWildcardMutual drives the mutual-wait shape the goroutine
// engine escapes with its poll cap and the event engine with a forced
// grant at quiescence: both ranks block in AnySource receives with
// messages already queued on each side.
func TestEngineDiffWildcardMutual(t *testing.T) {
	diffEngines(t, 4, func(c *Comm) {
		buf := AllocBuf(TypeInt, 1)
		defer FreeBuf(buf)
		partner := c.Rank() ^ 1
		c.Send(buf, partner, 3)
		c.Recv(buf, AnySource, 3)
	})
}

// TestEngineDiffProbe covers Probe followed by a directed receive.
func TestEngineDiffProbe(t *testing.T) {
	diffEngines(t, 5, func(c *Comm) {
		buf := AllocBuf(TypeDouble, 4)
		defer FreeBuf(buf)
		if c.Rank() == 0 {
			for i := 1; i < c.Size(); i++ {
				st := c.Probe(AnySource, 9)
				c.Recv(buf, st.Source, 9)
			}
		} else {
			c.Work(float64(c.Size()-c.Rank()) * 5e-5)
			c.Send(buf, 0, 9)
		}
	})
}

// TestEngineDiffRendezvous exercises the parked-sender ack path: Ssend
// forces the rendezvous protocol regardless of size, in a ring so every
// rank is both a parked sender and the acking receiver.
func TestEngineDiffRendezvous(t *testing.T) {
	diffEngines(t, 4, func(c *Comm) {
		sb := AllocBuf(TypeByte, 64)
		rb := AllocBuf(TypeByte, 64)
		defer FreeBuf(sb)
		defer FreeBuf(rb)
		next := (c.Rank() + 1) % c.Size()
		prev := (c.Rank() - 1 + c.Size()) % c.Size()
		if c.Rank()%2 == 0 {
			c.Ssend(sb, next, 1)
			c.Recv(rb, prev, 1)
		} else {
			c.Recv(rb, prev, 1)
			c.Ssend(sb, next, 1)
		}
	})
}

// TestEngineDiffRendezvousLarge sends above the eager threshold, taking
// the rendezvous path through standard Send, with the sender racing ahead
// so the receiver's ack arrives while the sender is parked in Wait.
func TestEngineDiffRendezvousLarge(t *testing.T) {
	diffEngines(t, 3, func(c *Comm) {
		big := AllocBuf(TypeByte, 1<<16) // past EagerThreshold
		defer FreeBuf(big)
		next := (c.Rank() + 1) % c.Size()
		prev := (c.Rank() - 1 + c.Size()) % c.Size()
		if c.Rank() == 0 {
			c.Send(big, next, 2)
			c.Recv(big, prev, 2)
		} else {
			c.Work(1e-4)
			c.Recv(big, prev, 2)
			c.Send(big, next, 2)
		}
	})
}

// TestEngineDiffNonblocking covers Isend/Irecv with out-of-order Waits
// and an already-acked completion.
func TestEngineDiffNonblocking(t *testing.T) {
	diffEngines(t, 4, func(c *Comm) {
		a := AllocBuf(TypeInt, 8)
		b := AllocBuf(TypeInt, 8)
		defer FreeBuf(a)
		defer FreeBuf(b)
		next := (c.Rank() + 1) % c.Size()
		prev := (c.Rank() - 1 + c.Size()) % c.Size()
		rs := c.Irecv(a, prev, 4)
		rr := c.Isend(b, next, 4)
		c.Work(2e-5)
		c.Wait(rs)
		c.Wait(rr)
	})
}

// TestEngineDiffSendrecv covers the combined exchange in a ring.
func TestEngineDiffSendrecv(t *testing.T) {
	diffEngines(t, 5, func(c *Comm) {
		sb := AllocBuf(TypeDouble, 2)
		rb := AllocBuf(TypeDouble, 2)
		defer FreeBuf(sb)
		defer FreeBuf(rb)
		next := (c.Rank() + 1) % c.Size()
		prev := (c.Rank() - 1 + c.Size()) % c.Size()
		c.Sendrecv(sb, next, 5, rb, prev, 5)
	})
}

// TestEngineDiffCart runs a 2D halo exchange over a Cartesian topology.
func TestEngineDiffCart(t *testing.T) {
	diffEngines(t, 6, func(c *Comm) {
		ct := c.CartCreate([]int{3, 2}, []bool{true, true})
		sb := AllocBuf(TypeDouble, 16)
		rb := AllocBuf(TypeDouble, 16)
		defer FreeBuf(sb)
		defer FreeBuf(rb)
		for dim := 0; dim < 2; dim++ {
			for _, disp := range []int{1, -1} {
				src, dst := ct.Shift(dim, disp)
				ct.SendrecvNeighbor(sb, dst, 6+dim, rb, src, 6+dim)
			}
		}
	})
}

// TestEngineDiffPatterns runs the paper's §3.1.4 built-in patterns in all
// flavors (blocking, Ssend, Isend).
func TestEngineDiffPatterns(t *testing.T) {
	diffEngines(t, 6, func(c *Comm) {
		buf := AllocBuf(TypeByte, 256)
		sb := AllocBuf(TypeByte, 256)
		defer FreeBuf(buf)
		defer FreeBuf(sb)
		for _, opt := range []PatternOpts{{}, {UseSsend: true}, {UseIsend: true, UseIrecv: true}} {
			PatternSendRecv(c, buf, DirUp, opt)
			PatternShift(c, sb, buf, DirDown, opt)
		}
	})
}

// TestEngineDiffSplit covers communicator splits with reversed key order
// and collectives inside the subcommunicators.
func TestEngineDiffSplit(t *testing.T) {
	diffEngines(t, 6, func(c *Comm) {
		sub := c.Split(c.Rank()%2, -c.Rank())
		buf := AllocBuf(TypeDouble, 4)
		out := AllocBuf(TypeDouble, 4)
		defer FreeBuf(buf)
		defer FreeBuf(out)
		sub.Allreduce(buf, out, OpSum)
		sub.Barrier()
		c.Bcast(buf, 0)
	})
}

// TestEngineDiffCollectives sweeps the collective surface on the world
// communicator with unequal arrival times.
func TestEngineDiffCollectives(t *testing.T) {
	diffEngines(t, 5, func(c *Comm) {
		n := c.Size()
		one := AllocBuf(TypeDouble, 2)
		all := AllocBuf(TypeDouble, 2*n)
		defer FreeBuf(one)
		defer FreeBuf(all)
		c.Work(float64(c.Rank()) * 3e-5)
		c.Barrier()
		c.Bcast(one, 1)
		c.Gather(one, all, 0)
		c.Scatter(all, one, 0)
		c.Allgather(one, all)
		c.Reduce(one, one, OpMax, n-1)
		c.Allreduce(one, one, OpSum)
		c.Scan(one, one, OpSum)
		c.Alltoall(all, all)
	})
}

// TestEngineDiffWork covers the distribution-driven work surface (the
// per-rank RNG streams must be consumed identically).
func TestEngineDiffWork(t *testing.T) {
	diffEngines(t, 4, func(c *Comm) {
		c.DoWork(distr.Linear, distr.Val2{Low: 1, High: 2}, 1e-4)
		c.Barrier()
		c.DoWork(distr.Cyclic2, distr.Val2{Low: 1, High: 3}, 5e-5)
		c.Barrier()
	})
}
