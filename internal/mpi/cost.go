package mpi

import "math"

// CostModel parameterizes the virtual-time costs of communication and of
// the MPI machinery itself.  It is a deliberately simple latency/bandwidth
// (Hockney-style) model with a logarithmic tree factor for collectives —
// enough to give synthetic traces realistic *shape* without pretending to
// model a specific interconnect.  In Real clock mode the model is ignored
// except for InitTime/FinalizeTime, which are spun for real so the
// "High MPI Init/Finalize Overhead" property (paper §3.2) also manifests
// there.
type CostModel struct {
	// Latency is the per-message wire latency in seconds.
	Latency float64
	// Bandwidth is the wire bandwidth in bytes/second.
	Bandwidth float64
	// Overhead is the per-call CPU overhead charged to each participant
	// of any MPI operation.
	Overhead float64
	// InitTime and FinalizeTime model MPI_Init / MPI_Finalize cost.  The
	// paper observes that for tiny test programs this overhead dominates
	// and is itself a detectable property.
	InitTime     float64
	FinalizeTime float64
	// EagerThreshold is the message size in bytes up to which standard
	// sends complete eagerly (buffered); larger sends use the rendezvous
	// protocol and block until the receive is posted.  The late-receiver
	// property only manifests at or above this threshold (or with Ssend).
	EagerThreshold int
}

// DefaultCost returns a cost model loosely shaped like a 2002-era cluster
// interconnect: 5 µs latency, 1 GB/s bandwidth, 1 µs CPU overhead per call,
// 20 ms Init, 10 ms Finalize, 4 KiB eager threshold.
func DefaultCost() CostModel {
	return CostModel{
		Latency:        5e-6,
		Bandwidth:      1e9,
		Overhead:       1e-6,
		InitTime:       20e-3,
		FinalizeTime:   10e-3,
		EagerThreshold: 4096,
	}
}

// zero reports whether the model is entirely unset (so defaults apply).
func (c CostModel) zero() bool {
	return c == CostModel{}
}

// transfer returns the wire time for a message of the given size.
func (c CostModel) transfer(bytes int) float64 {
	bw := c.Bandwidth
	if bw <= 0 {
		bw = 1e9
	}
	return c.Latency + float64(bytes)/bw
}

// ceilLog2 returns ceil(log2(n)) with ceilLog2(1) == 1, so even trivial
// collectives have nonzero cost.
func ceilLog2(n int) int {
	if n <= 2 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// collNet returns the network time of a tree-based collective moving bytes
// per stage over a group of p ranks.
func (c CostModel) collNet(p, bytes int) float64 {
	return float64(ceilLog2(p)) * c.transfer(bytes)
}

// barrierNet returns the network time of a barrier over p ranks.
func (c CostModel) barrierNet(p int) float64 {
	return float64(ceilLog2(p)) * c.Latency
}
