package mpi

import "testing"

// mustPanic asserts that f panics with the given message.
func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Errorf("no panic, want %q", want)
			return
		}
		if msg, ok := r.(string); !ok || msg != want {
			t.Errorf("panic = %v, want %q", r, want)
		}
	}()
	f()
}

// TestFreedBufferPanicsUniformly pins the use-after-free contract: every
// accessor of a freed buffer — typed element access AND Bytes, which used
// to return 0 silently — panics with the same message.
func TestFreedBufferPanicsUniformly(t *testing.T) {
	const want = "mpi: use of freed buffer"
	fresh := func() *Buf {
		b := AllocBuf(TypeDouble, 4)
		FreeBuf(b)
		return b
	}
	mustPanic(t, want, func() { fresh().Bytes() })
	mustPanic(t, want, func() { fresh().Float64(0) })
	mustPanic(t, want, func() { fresh().SetFloat64(0, 1) })
	mustPanic(t, want, func() { fresh().Byte(0) })
	mustPanic(t, want, func() { fresh().SetByte(0, 1) })
	mustPanic(t, want, func() { fresh().FillSeq(0) })
	mustPanic(t, want, func() { fresh().Clone() })
	mustPanic(t, want, func() { fresh().Equal(AllocBuf(TypeDouble, 4)) })
	mustPanic(t, want, func() { AllocBuf(TypeDouble, 4).Equal(fresh()) })

	ib := AllocBuf(TypeInt, 2)
	FreeBuf(ib)
	mustPanic(t, want, func() { ib.Int64(0) })
	mustPanic(t, want, func() { ib.SetInt64(0, 1) })
}

func TestFreeBufIdempotentAndNilSafe(t *testing.T) {
	FreeBuf(nil) // must not panic
	b := AllocBuf(TypeDouble, 4)
	FreeBuf(b)
	FreeBuf(b) // double free stays legal, like free_mpi_buf(NULL)
}

// TestLiveBufferStillWorks guards against the freed check tripping on
// legal zero-count buffers.
func TestLiveBufferStillWorks(t *testing.T) {
	b := AllocBuf(TypeDouble, 0)
	if b.Bytes() != 0 {
		t.Errorf("empty live buffer Bytes() = %d", b.Bytes())
	}
	c := AllocBuf(TypeDouble, 2)
	c.SetFloat64(1, 3.5)
	if c.Float64(1) != 3.5 || c.Bytes() != 16 {
		t.Errorf("live buffer access broken: %v %d", c.Float64(1), c.Bytes())
	}
}
