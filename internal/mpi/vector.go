package mpi

import "fmt"

// Non-contiguous data support (paper §3.1.3: "MPI provides the possibility
// to work with arbitrarily complex, structured and possibly non-contiguous
// data").  This substrate keeps wire messages contiguous and provides the
// derived-datatype facility as explicit pack/unpack of strided layouts —
// the same data movement an MPI implementation performs internally for
// MPI_Type_vector.

// Vector describes a strided layout over a buffer, in elements of the
// buffer's datatype: Count blocks of BlockLen elements, the starts of
// consecutive blocks separated by Stride elements (MPI_Type_vector).
type Vector struct {
	Count    int
	BlockLen int
	Stride   int
}

// Elements returns the number of elements a packed vector holds.
func (v Vector) Elements() int { return v.Count * v.BlockLen }

// span returns the extent of the layout in elements.
func (v Vector) span() int {
	if v.Count == 0 {
		return 0
	}
	return (v.Count-1)*v.Stride + v.BlockLen
}

func (v Vector) check(buf *Buf, what string) {
	if v.Count < 0 || v.BlockLen <= 0 || v.Stride < v.BlockLen {
		panic(fmt.Sprintf("mpi: %s with invalid vector layout %+v", what, v))
	}
	if v.span() > buf.Count {
		panic(fmt.Sprintf("mpi: %s layout %+v exceeds buffer of %d elements", what, v, buf.Count))
	}
}

// Pack gathers the strided elements of src into a fresh contiguous buffer
// suitable for sending.
func Pack(src *Buf, v Vector) *Buf {
	v.check(src, "Pack")
	es := src.Type.Size()
	out := AllocBuf(src.Type, v.Elements())
	o := 0
	for b := 0; b < v.Count; b++ {
		start := b * v.Stride * es
		n := v.BlockLen * es
		copy(out.Data[o:o+n], src.Data[start:start+n])
		o += n
	}
	return out
}

// Unpack scatters a packed contiguous buffer back into the strided
// positions of dst.
func Unpack(dst *Buf, v Vector, packed *Buf) {
	v.check(dst, "Unpack")
	if packed.Type != dst.Type {
		panic(fmt.Sprintf("mpi: Unpack type mismatch: %v into %v", packed.Type, dst.Type))
	}
	if packed.Count < v.Elements() {
		panic(fmt.Sprintf("mpi: Unpack needs %d elements, packed buffer has %d", v.Elements(), packed.Count))
	}
	es := dst.Type.Size()
	o := 0
	for b := 0; b < v.Count; b++ {
		start := b * v.Stride * es
		n := v.BlockLen * es
		copy(dst.Data[start:start+n], packed.Data[o:o+n])
		o += n
	}
}

// SendVector sends the strided elements of buf described by v (the
// MPI_Type_vector send path: pack and ship).
func (c *Comm) SendVector(buf *Buf, v Vector, dest, tag int) {
	c.Send(Pack(buf, v), dest, tag)
}

// RecvVector receives into the strided positions of buf described by v.
func (c *Comm) RecvVector(buf *Buf, v Vector, source, tag int) Status {
	tmp := AllocBuf(buf.Type, v.Elements())
	st := c.Recv(tmp, source, tag)
	Unpack(buf, v, tmp)
	return st
}
