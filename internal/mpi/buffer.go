package mpi

import (
	"fmt"

	"repro/internal/distr"
)

// Buf is a simple MPI message buffer (paper §3.1.3, mpi_buf_t): an element
// type, a count, and the backing storage.  Data is stored little-endian;
// use the typed accessors to read and write elements.
//
// Use after FreeBuf panics uniformly: every accessor — including Bytes —
// checks the freed marker, so a use-after-free is caught at the first
// touch instead of silently reading a zero size.
type Buf struct {
	Type  Datatype
	Count int
	Data  []byte

	freed bool
}

// AllocBuf allocates a zeroed buffer of cnt elements of type t
// (alloc_mpi_buf).  Backing arrays are drawn from a size-classed free list
// replenished by FreeBuf; recycled storage is re-zeroed so the zeroed
// promise holds either way.
func AllocBuf(t Datatype, cnt int) *Buf {
	if cnt < 0 {
		panic(fmt.Sprintf("mpi: AllocBuf with negative count %d", cnt))
	}
	return &Buf{Type: t, Count: cnt, Data: getBytes(cnt*t.Size(), true)}
}

// FreeBuf releases the buffer (free_mpi_buf): the backing array returns to
// the allocation free list and any later access through the Buf panics.
// Freeing twice is allowed, matching free_mpi_buf's idempotence on NULL.
// Do not retain a direct alias of Data across FreeBuf — the storage is
// reused by later allocations.
func FreeBuf(b *Buf) {
	if b == nil {
		return
	}
	putBytes(b.Data)
	b.Data = nil
	b.Count = 0
	b.freed = true
}

// checkLive panics if the buffer was released with FreeBuf.
func (b *Buf) checkLive() {
	if b.freed {
		panic("mpi: use of freed buffer")
	}
}

// Bytes returns the payload size in bytes.
func (b *Buf) Bytes() int {
	b.checkLive()
	return b.Count * b.Type.Size()
}

func (b *Buf) checkIndex(i int) {
	b.checkLive()
	if i < 0 || i >= b.Count {
		panic(fmt.Sprintf("mpi: buffer index %d out of range [0,%d)", i, b.Count))
	}
}

// Float64 returns element i of a TypeDouble buffer.
func (b *Buf) Float64(i int) float64 {
	b.checkIndex(i)
	if b.Type != TypeDouble {
		panic(fmt.Sprintf("mpi: Float64 access on %v buffer", b.Type))
	}
	return getFloat(b.Data, i)
}

// SetFloat64 stores v at element i of a TypeDouble buffer.
func (b *Buf) SetFloat64(i int, v float64) {
	b.checkIndex(i)
	if b.Type != TypeDouble {
		panic(fmt.Sprintf("mpi: SetFloat64 access on %v buffer", b.Type))
	}
	putFloat(b.Data, i, v)
}

// Int64 returns element i of a TypeInt buffer.
func (b *Buf) Int64(i int) int64 {
	b.checkIndex(i)
	if b.Type != TypeInt {
		panic(fmt.Sprintf("mpi: Int64 access on %v buffer", b.Type))
	}
	return getInt(b.Data, i)
}

// SetInt64 stores v at element i of a TypeInt buffer.
func (b *Buf) SetInt64(i int, v int64) {
	b.checkIndex(i)
	if b.Type != TypeInt {
		panic(fmt.Sprintf("mpi: SetInt64 access on %v buffer", b.Type))
	}
	putInt(b.Data, i, v)
}

// Byte returns element i of a TypeByte/TypeChar buffer.
func (b *Buf) Byte(i int) byte {
	b.checkIndex(i)
	return b.Data[i*b.Type.Size()]
}

// SetByte stores v at element i of a TypeByte/TypeChar buffer.
func (b *Buf) SetByte(i int, v byte) {
	b.checkIndex(i)
	b.Data[i*b.Type.Size()] = v
}

// FillSeq fills the buffer with a deterministic per-rank sequence so that
// validation tests can check data movement end-to-end: element i of rank r
// becomes f(r, i) for the canonical filler.
func (b *Buf) FillSeq(rank int) {
	b.checkLive()
	for i := 0; i < b.Count; i++ {
		switch b.Type {
		case TypeDouble:
			putFloat(b.Data, i, float64(rank*1000000+i))
		case TypeInt:
			putInt(b.Data, i, int64(rank*1000000+i))
		default:
			b.Data[i] = byte(rank*31 + i)
		}
	}
}

// Clone returns a deep copy of the buffer.
func (b *Buf) Clone() *Buf {
	b.checkLive()
	c := AllocBuf(b.Type, b.Count)
	copy(c.Data, b.Data)
	return c
}

// Equal reports whether two buffers have identical type, count and data.
func (b *Buf) Equal(o *Buf) bool {
	b.checkLive()
	o.checkLive()
	if b.Type != o.Type || b.Count != o.Count {
		return false
	}
	if len(b.Data) != len(o.Data) {
		return false
	}
	for i := range b.Data {
		if b.Data[i] != o.Data[i] {
			return false
		}
	}
	return true
}

// VBuf is the irregular-collective buffer (paper §3.1.3, mpi_vbuf_t): each
// rank's own portion plus, on the root, the per-rank counts/displacements
// and the aggregate root buffer that irregular collectives
// (Scatterv/Gatherv) operate on.
type VBuf struct {
	// Buf is this rank's portion (Counts[rank] elements).
	Buf *Buf
	// Counts and Displs describe the distribution of elements over the
	// communicator; they are identical on every rank because they are
	// computed from the (pure) distribution function.
	Counts []int
	Displs []int
	// Total is the aggregate element count.
	Total int
	// Root is the root rank this VBuf was allocated for.
	Root int
	// RootBuf is the aggregate buffer, allocated only on the root.
	RootBuf *Buf
}

// AllocVBuf builds an irregular buffer over communicator c: rank i's
// portion holds df(i, size, scale, dd) elements (truncated, floored at 0),
// mirroring alloc_mpi_vbuf.  Only the root allocates the aggregate buffer.
func AllocVBuf(c *Comm, t Datatype, df distr.Func, dd distr.Desc, scale float64, root int) *VBuf {
	sz := c.Size()
	if root < 0 || root >= sz {
		panic(fmt.Sprintf("mpi: AllocVBuf root %d outside communicator of size %d", root, sz))
	}
	v := &VBuf{
		Counts: make([]int, sz),
		Displs: make([]int, sz),
		Root:   root,
	}
	for i := 0; i < sz; i++ {
		n := int(df(i, sz, scale, dd))
		if n < 0 {
			n = 0
		}
		v.Counts[i] = n
		v.Displs[i] = v.Total
		v.Total += n
	}
	v.Buf = AllocBuf(t, v.Counts[c.Rank()])
	if c.Rank() == root {
		v.RootBuf = AllocBuf(t, v.Total)
	}
	return v
}

// FreeVBuf releases the buffer (free_mpi_vbuf).
func FreeVBuf(v *VBuf) {
	if v == nil {
		return
	}
	FreeBuf(v.Buf)
	FreeBuf(v.RootBuf)
	v.Counts, v.Displs = nil, nil
}
