package mpi

import (
	"fmt"
	"sync/atomic"

	"repro/internal/vtime"
)

// Engine selects the rank-execution strategy of a World run.
//
// The event engine (the Virtual-mode default) drives ranks as resumable
// state machines from a central virtual-clock event queue: exactly one
// rank steps at a time, blocking operations park the rank's goroutine and
// hand control back to the scheduler, and wildcard receives are resolved
// at event-queue quiescence instead of by polling.  It produces traces
// byte-identical to the goroutine engine (the migration oracle in
// engine_diff_test.go enforces this) while scaling to 10⁴–10⁵ ranks in
// one process, because no rank ever spins and scheduler state is
// O(ranks + pending events).
//
// The goroutine engine runs every rank as a free-running goroutine with
// condition-variable blocking and the spoiler poll loop for wildcard
// receives — the pre-event-queue behaviour, kept as a migration escape
// hatch and as the only engine for Real (wall-clock) mode, where genuine
// host parallelism is the point.
type Engine uint8

const (
	// EngineAuto resolves to the process default (see SetDefaultEngine):
	// the event engine for Virtual mode, the goroutine engine for Real.
	EngineAuto Engine = iota
	// EngineEvent is the single-stepped event-queue scheduler
	// (Virtual mode only; Real-mode runs fall back to goroutines).
	EngineEvent
	// EngineGoroutine is goroutine-per-rank execution.
	EngineGoroutine
)

// String names the engine for flags and logs.
func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineEvent:
		return "event"
	case EngineGoroutine:
		return "goroutine"
	default:
		return fmt.Sprintf("engine(%d)", uint8(e))
	}
}

// Engine implementation versions: the invalidation epoch recorded in
// content-addressed result-cache keys (internal/rescache).  Bump an
// engine's version whenever a change could alter its observable output —
// serialized traces, profile hashes, error text surfaced into cached
// outcomes — even if the change is believed equivalent; a stale bump
// costs one cold sweep, a missed bump serves wrong results forever.
const (
	eventEngineVersion     = 1
	goroutineEngineVersion = 1
)

// Version returns the engine's observable-output version (see the bump
// rules above).  EngineAuto reports the version of the engine it would
// resolve to for a Virtual-mode run.
func (e Engine) Version() int {
	switch resolveEngine(e, vtime.Virtual) {
	case EngineEvent:
		return eventEngineVersion
	case EngineGoroutine:
		return goroutineEngineVersion
	default:
		return 0
	}
}

// EffectiveDefault returns the concrete engine a Virtual-mode run with
// Options.Engine == EngineAuto executes on — the engine identity cache
// keys and calibration keys must record, since "auto" is not an identity.
func EffectiveDefault() Engine { return resolveEngine(EngineAuto, vtime.Virtual) }

// ParseEngine parses a -engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "auto":
		return EngineAuto, nil
	case "event":
		return EngineEvent, nil
	case "goroutine":
		return EngineGoroutine, nil
	default:
		return EngineAuto, fmt.Errorf("mpi: unknown engine %q (want auto, event or goroutine)", s)
	}
}

// defaultEngine is the process-wide engine used when Options.Engine is
// EngineAuto, itself defaulting to EngineAuto (= event for Virtual mode).
// Like campaign.SetDefaultWorkers it exists so CLI tools can apply one
// -engine flag to every run they orchestrate without threading the option
// through every experiment signature.
var defaultEngine atomic.Uint32

// SetDefaultEngine sets the process-wide engine applied to runs whose
// Options.Engine is EngineAuto.
func SetDefaultEngine(e Engine) { defaultEngine.Store(uint32(e)) }

// DefaultEngine returns the engine set by SetDefaultEngine.
func DefaultEngine() Engine { return Engine(defaultEngine.Load()) }

// resolveEngine maps the option (and the process default) to the concrete
// engine for a run in the given clock mode.  The event scheduler is
// meaningless under wall-clock time — there is no virtual clock to order
// the event queue by — so Real mode always runs on goroutines.
func resolveEngine(e Engine, mode vtime.Mode) Engine {
	if e == EngineAuto {
		e = DefaultEngine()
	}
	if e == EngineAuto {
		e = EngineEvent
	}
	if mode == vtime.Real {
		return EngineGoroutine
	}
	return e
}
