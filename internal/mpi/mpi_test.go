package mpi

import (
	"math"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/distr"
	"repro/internal/trace"
)

// testOpts returns small, fast default options for unit tests.
func testOpts(procs int) Options {
	return Options{Procs: procs, Timeout: 20 * time.Second}
}

func mustRun(t *testing.T, opt Options, body func(c *Comm)) *trace.Trace {
	t.Helper()
	tr, err := Run(opt, body)
	if err != nil {
		t.Fatalf("Run failed: %v", err)
	}
	return tr
}

func TestRankAndSize(t *testing.T) {
	const P = 5
	var seen [P]atomic.Bool
	mustRun(t, testOpts(P), func(c *Comm) {
		if c.Size() != P {
			t.Errorf("Size() = %d, want %d", c.Size(), P)
		}
		if c.Rank() != c.WorldRank() {
			t.Errorf("world comm: Rank %d != WorldRank %d", c.Rank(), c.WorldRank())
		}
		if seen[c.Rank()].Swap(true) {
			t.Errorf("rank %d seen twice", c.Rank())
		}
	})
	for i := range seen {
		if !seen[i].Load() {
			t.Errorf("rank %d never ran", i)
		}
	}
}

func TestSendRecvData(t *testing.T) {
	mustRun(t, testOpts(2), func(c *Comm) {
		if c.Rank() == 0 {
			b := AllocBuf(TypeInt, 8)
			for i := 0; i < 8; i++ {
				b.SetInt64(i, int64(i*i))
			}
			c.Send(b, 1, 7)
		} else {
			b := AllocBuf(TypeInt, 8)
			st := c.Recv(b, 0, 7)
			if st.Source != 0 || st.Tag != 7 || st.Count != 8 {
				t.Errorf("status = %+v", st)
			}
			for i := 0; i < 8; i++ {
				if b.Int64(i) != int64(i*i) {
					t.Errorf("element %d = %d, want %d", i, b.Int64(i), i*i)
				}
			}
		}
	})
}

func TestSendRecvNonOvertaking(t *testing.T) {
	// Messages with the same (source, tag, comm) must arrive in order.
	mustRun(t, testOpts(2), func(c *Comm) {
		const n = 50
		if c.Rank() == 0 {
			b := AllocBuf(TypeInt, 1)
			for i := 0; i < n; i++ {
				b.SetInt64(0, int64(i))
				c.Send(b, 1, 3)
			}
		} else {
			b := AllocBuf(TypeInt, 1)
			for i := 0; i < n; i++ {
				c.Recv(b, 0, 3)
				if b.Int64(0) != int64(i) {
					t.Fatalf("message %d overtaken: got %d", i, b.Int64(0))
				}
			}
		}
	})
}

func TestTagSelectivity(t *testing.T) {
	// A receive for tag 2 must match the tag-2 message even when a tag-1
	// message was posted earlier.
	mustRun(t, testOpts(2), func(c *Comm) {
		if c.Rank() == 0 {
			b1 := AllocBuf(TypeInt, 1)
			b1.SetInt64(0, 111)
			c.Send(b1, 1, 1)
			b2 := AllocBuf(TypeInt, 1)
			b2.SetInt64(0, 222)
			c.Send(b2, 1, 2)
		} else {
			b := AllocBuf(TypeInt, 1)
			c.Recv(b, 0, 2)
			if b.Int64(0) != 222 {
				t.Errorf("tag-2 recv got %d", b.Int64(0))
			}
			c.Recv(b, 0, 1)
			if b.Int64(0) != 111 {
				t.Errorf("tag-1 recv got %d", b.Int64(0))
			}
		}
	})
}

func TestAnySourceAnyTag(t *testing.T) {
	mustRun(t, testOpts(3), func(c *Comm) {
		switch c.Rank() {
		case 0:
			b := AllocBuf(TypeInt, 1)
			got := map[int64]bool{}
			for i := 0; i < 2; i++ {
				st := c.Recv(b, AnySource, AnyTag)
				if st.Source != int(b.Int64(0)) {
					t.Errorf("status source %d, payload says %d", st.Source, b.Int64(0))
				}
				got[b.Int64(0)] = true
			}
			if !got[1] || !got[2] {
				t.Errorf("wildcard receive missed a sender: %v", got)
			}
		default:
			b := AllocBuf(TypeInt, 1)
			b.SetInt64(0, int64(c.Rank()))
			c.Send(b, 0, c.Rank()+10)
		}
	})
}

func TestIsendIrecvWait(t *testing.T) {
	mustRun(t, testOpts(2), func(c *Comm) {
		b := AllocBuf(TypeDouble, 4)
		if c.Rank() == 0 {
			for i := 0; i < 4; i++ {
				b.SetFloat64(i, float64(i)+0.5)
			}
			req := c.Isend(b, 1, 0)
			c.Wait(req)
		} else {
			req := c.Irecv(b, 0, 0)
			st := c.Wait(req)
			if st.Count != 4 {
				t.Errorf("count = %d", st.Count)
			}
			for i := 0; i < 4; i++ {
				if b.Float64(i) != float64(i)+0.5 {
					t.Errorf("element %d = %v", i, b.Float64(i))
				}
			}
		}
	})
}

func TestSsendRendezvous(t *testing.T) {
	// Virtual time: the sender enters Ssend at t=A; the receiver enters
	// Recv later at t=B>A (late receiver).  The sender must block until
	// B: its exit time is >= B.
	const late = 0.25
	tr := mustRun(t, testOpts(2), func(c *Comm) {
		b := AllocBuf(TypeInt, 1)
		if c.Rank() == 0 {
			c.Ssend(b, 1, 0)
		} else {
			c.Work(late)
			c.Recv(b, 0, 0)
		}
	})
	var sendEnter, recvEnter float64
	for _, ev := range tr.Events {
		if ev.Kind == trace.KindSend {
			sendEnter = ev.Time
			if ev.Flags&trace.FlagSync == 0 {
				t.Error("Ssend event not flagged sync")
			}
		}
		if ev.Kind == trace.KindRecv {
			recvEnter = ev.Aux
		}
	}
	if recvEnter-sendEnter < late*0.99 {
		t.Errorf("receiver enter %v not late relative to send enter %v", recvEnter, sendEnter)
	}
	// Sender's MPI_Ssend region must span the wait.
	st := trace.ComputeStats(tr)
	if got := st.RegionInclusive("MPI_Ssend"); got < late*0.99 {
		t.Errorf("MPI_Ssend inclusive time %v, want >= %v", got, late)
	}
}

func TestStandardSendRendezvousAboveThreshold(t *testing.T) {
	opt := testOpts(2)
	opt.Cost = DefaultCost()
	opt.Cost.EagerThreshold = 64
	tr := mustRun(t, opt, func(c *Comm) {
		b := AllocBuf(TypeDouble, 64) // 512 bytes > 64-byte threshold
		if c.Rank() == 0 {
			c.Send(b, 1, 0)
		} else {
			c.Work(0.1)
			c.Recv(b, 0, 0)
		}
	})
	found := false
	for _, ev := range tr.Events {
		if ev.Kind == trace.KindSend {
			found = true
			if ev.Flags&trace.FlagSync == 0 {
				t.Error("above-threshold standard send should be rendezvous")
			}
		}
	}
	if !found {
		t.Fatal("no send event in trace")
	}
}

func TestEagerSendDoesNotBlock(t *testing.T) {
	// An eager send must complete even though the receive happens much
	// later in program order (same rank pair, no deadlock).
	mustRun(t, testOpts(2), func(c *Comm) {
		b := AllocBuf(TypeInt, 1)
		if c.Rank() == 0 {
			c.Send(b, 1, 0) // eager: returns immediately
			c.Recv(b, 1, 1)
		} else {
			c.Send(b, 0, 1)
			c.Recv(b, 0, 0)
		}
	})
}

func TestSendrecvExchange(t *testing.T) {
	const P = 4
	mustRun(t, testOpts(P), func(c *Comm) {
		s := AllocBuf(TypeInt, 1)
		r := AllocBuf(TypeInt, 1)
		s.SetInt64(0, int64(c.Rank()))
		next, prev := (c.Rank()+1)%P, (c.Rank()+P-1)%P
		c.Sendrecv(s, next, 0, r, prev, 0)
		if r.Int64(0) != int64(prev) {
			t.Errorf("rank %d received %d, want %d", c.Rank(), r.Int64(0), prev)
		}
	})
}

func TestSendrecvLargeNoDeadlock(t *testing.T) {
	// Under rendezvous, a ring of plain Send/Recv would deadlock;
	// Sendrecv must not.
	opt := testOpts(4)
	opt.Cost = DefaultCost()
	opt.Cost.EagerThreshold = 8
	mustRun(t, opt, func(c *Comm) {
		s := AllocBuf(TypeDouble, 1024)
		r := AllocBuf(TypeDouble, 1024)
		next, prev := (c.Rank()+1)%4, (c.Rank()+3)%4
		c.Sendrecv(s, next, 0, r, prev, 0)
	})
}

func TestDeadlockDetection(t *testing.T) {
	opt := testOpts(2)
	opt.Timeout = 300 * time.Millisecond
	_, err := Run(opt, func(c *Comm) {
		b := AllocBuf(TypeInt, 1)
		c.Recv(b, (c.Rank()+1)%2, 0) // everyone receives, nobody sends
	})
	if err == nil {
		t.Fatal("expected watchdog error for deadlocked program")
	}
}

func TestPanicPropagation(t *testing.T) {
	_, err := Run(testOpts(3), func(c *Comm) {
		if c.Rank() == 1 {
			panic("boom")
		}
		c.Barrier() // others block; must be unwound by the abort
	})
	if err == nil {
		t.Fatal("expected error from panicking rank")
	}
}

func TestBarrierSynchronizesVirtualClocks(t *testing.T) {
	const P = 4
	tr := mustRun(t, testOpts(P), func(c *Comm) {
		c.Work(float64(c.Rank()) * 0.1) // rank r works r*100ms
		c.Barrier()
	})
	// All barrier exits must equal the maximum arrival (plus epsilon).
	var exits []float64
	var maxEnter float64
	for _, ev := range tr.Events {
		if ev.Kind == trace.KindColl && ev.Coll == trace.CollBarrier {
			exits = append(exits, ev.Time)
			if ev.Aux > maxEnter {
				maxEnter = ev.Aux
			}
		}
	}
	if len(exits) != P {
		t.Fatalf("got %d barrier events, want %d", len(exits), P)
	}
	for _, x := range exits {
		if x < maxEnter {
			t.Errorf("barrier exit %v before last arrival %v", x, maxEnter)
		}
		if x-exits[0] > 1e-12 && exits[0]-x > 1e-12 {
			t.Errorf("barrier exits differ: %v vs %v", x, exits[0])
		}
	}
}

func TestBcastData(t *testing.T) {
	const P = 5
	mustRun(t, testOpts(P), func(c *Comm) {
		b := AllocBuf(TypeDouble, 3)
		if c.Rank() == 2 {
			b.SetFloat64(0, 1.5)
			b.SetFloat64(1, 2.5)
			b.SetFloat64(2, 3.5)
		}
		c.Bcast(b, 2)
		for i, want := range []float64{1.5, 2.5, 3.5} {
			if b.Float64(i) != want {
				t.Errorf("rank %d element %d = %v, want %v", c.Rank(), i, b.Float64(i), want)
			}
		}
	})
}

func TestLateBroadcastTiming(t *testing.T) {
	// Root enters Bcast `delay` seconds late; every other rank's KindColl
	// event must show waiting >= delay.
	const P = 4
	const delay = 0.2
	tr := mustRun(t, testOpts(P), func(c *Comm) {
		if c.Rank() == 0 {
			c.Work(delay)
		}
		b := AllocBuf(TypeInt, 1)
		c.Bcast(b, 0)
	})
	n := 0
	for _, ev := range tr.Events {
		if ev.Kind != trace.KindColl || ev.Coll != trace.CollBcast {
			continue
		}
		n++
		if ev.CRank == 0 {
			if ev.Flags&trace.FlagRoot == 0 {
				t.Error("root event not flagged")
			}
			continue
		}
		if wait := ev.Time - ev.Aux; wait < delay*0.99 {
			t.Errorf("rank %d waited only %v, want >= %v", ev.CRank, wait, delay)
		}
	}
	if n != P {
		t.Errorf("got %d bcast events, want %d", n, P)
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	const P = 4
	mustRun(t, testOpts(P), func(c *Comm) {
		const cnt = 3
		var sbuf, rbuf *Buf
		recv := AllocBuf(TypeInt, cnt)
		if c.Rank() == 1 {
			sbuf = AllocBuf(TypeInt, P*cnt)
			for i := 0; i < P*cnt; i++ {
				sbuf.SetInt64(i, int64(100+i))
			}
			rbuf = AllocBuf(TypeInt, P*cnt)
		}
		c.Scatter(sbuf, recv, 1)
		for i := 0; i < cnt; i++ {
			want := int64(100 + c.Rank()*cnt + i)
			if recv.Int64(i) != want {
				t.Errorf("rank %d scatter element %d = %d, want %d", c.Rank(), i, recv.Int64(i), want)
			}
		}
		c.Gather(recv, rbuf, 1)
		if c.Rank() == 1 {
			for i := 0; i < P*cnt; i++ {
				if rbuf.Int64(i) != int64(100+i) {
					t.Errorf("gather element %d = %d, want %d", i, rbuf.Int64(i), 100+i)
				}
			}
		}
	})
}

func TestScattervGathervWithDistribution(t *testing.T) {
	const P = 4
	mustRun(t, testOpts(P), func(c *Comm) {
		// Linear distribution of counts: 2, 4, 6, 8.
		dd := distr.Val2{Low: 2, High: 8}
		v := AllocVBuf(c, TypeInt, distr.Linear, dd, 1.0, 0)
		wantCounts := []int{2, 4, 6, 8}
		for i, w := range wantCounts {
			if v.Counts[i] != w {
				t.Errorf("count[%d] = %d, want %d", i, v.Counts[i], w)
			}
		}
		if c.Rank() == 0 {
			for i := 0; i < v.Total; i++ {
				v.RootBuf.SetInt64(i, int64(i))
			}
		}
		c.Scatterv(v)
		base := v.Displs[c.Rank()]
		for i := 0; i < v.Counts[c.Rank()]; i++ {
			if v.Buf.Int64(i) != int64(base+i) {
				t.Errorf("rank %d scatterv element %d = %d, want %d",
					c.Rank(), i, v.Buf.Int64(i), base+i)
			}
		}
		// Modify and gather back.
		for i := 0; i < v.Counts[c.Rank()]; i++ {
			v.Buf.SetInt64(i, v.Buf.Int64(i)*2)
		}
		c.Gatherv(v)
		if c.Rank() == 0 {
			for i := 0; i < v.Total; i++ {
				if v.RootBuf.Int64(i) != int64(2*i) {
					t.Errorf("gatherv element %d = %d, want %d", i, v.RootBuf.Int64(i), 2*i)
				}
			}
		}
	})
}

func TestReduceOps(t *testing.T) {
	const P = 4
	cases := []struct {
		op   Op
		want int64 // reduce of values 1..P
	}{
		{OpSum, 10},
		{OpProd, 24},
		{OpMax, 4},
		{OpMin, 1},
		{OpBAnd, 0},
		{OpBOr, 7},
		{OpLAnd, 1},
		{OpLOr, 1},
	}
	mustRun(t, testOpts(P), func(c *Comm) {
		for _, tc := range cases {
			s := AllocBuf(TypeInt, 1)
			r := AllocBuf(TypeInt, 1)
			s.SetInt64(0, int64(c.Rank()+1))
			c.Reduce(s, r, tc.op, 0)
			if c.Rank() == 0 && r.Int64(0) != tc.want {
				t.Errorf("%v = %d, want %d", tc.op, r.Int64(0), tc.want)
			}
		}
	})
}

func TestReduceDouble(t *testing.T) {
	const P = 3
	mustRun(t, testOpts(P), func(c *Comm) {
		s := AllocBuf(TypeDouble, 2)
		r := AllocBuf(TypeDouble, 2)
		s.SetFloat64(0, float64(c.Rank())+1)
		s.SetFloat64(1, 0.5)
		c.Allreduce(s, r, OpSum)
		if math.Abs(r.Float64(0)-6) > 1e-12 {
			t.Errorf("allreduce sum = %v, want 6", r.Float64(0))
		}
		if math.Abs(r.Float64(1)-1.5) > 1e-12 {
			t.Errorf("allreduce sum = %v, want 1.5", r.Float64(1))
		}
	})
}

func TestAllgather(t *testing.T) {
	const P = 4
	mustRun(t, testOpts(P), func(c *Comm) {
		s := AllocBuf(TypeInt, 2)
		r := AllocBuf(TypeInt, 2*P)
		s.SetInt64(0, int64(c.Rank()))
		s.SetInt64(1, int64(c.Rank()*10))
		c.Allgather(s, r)
		for i := 0; i < P; i++ {
			if r.Int64(2*i) != int64(i) || r.Int64(2*i+1) != int64(i*10) {
				t.Errorf("rank %d allgather slot %d = (%d,%d)", c.Rank(), i, r.Int64(2*i), r.Int64(2*i+1))
			}
		}
	})
}

func TestAlltoall(t *testing.T) {
	const P = 3
	mustRun(t, testOpts(P), func(c *Comm) {
		s := AllocBuf(TypeInt, P)
		r := AllocBuf(TypeInt, P)
		for j := 0; j < P; j++ {
			s.SetInt64(j, int64(c.Rank()*100+j)) // segment j goes to rank j
		}
		c.Alltoall(s, r)
		for j := 0; j < P; j++ {
			want := int64(j*100 + c.Rank())
			if r.Int64(j) != want {
				t.Errorf("rank %d slot %d = %d, want %d", c.Rank(), j, r.Int64(j), want)
			}
		}
	})
}

func TestAlltoallv(t *testing.T) {
	const P = 3
	mustRun(t, testOpts(P), func(c *Comm) {
		// Rank r sends r+1 elements to each destination.
		n := c.Rank() + 1
		counts := make([]int, P)
		for i := range counts {
			counts[i] = n
		}
		s := AllocBuf(TypeInt, n*P)
		for i := 0; i < n*P; i++ {
			s.SetInt64(i, int64(c.Rank()*1000+i))
		}
		// Receive 1+2+3 = 6 elements.
		r := AllocBuf(TypeInt, 6)
		c.Alltoallv(s, counts, r)
		// Expect segments from ranks 0,1,2 with lengths 1,2,3; segment
		// from rank j starts at element j's offset j*(j+1)... check first
		// element of each segment.
		off := 0
		for j := 0; j < P; j++ {
			want := int64(j*1000 + (j+1)*c.Rank())
			if r.Int64(off) != want {
				t.Errorf("rank %d segment from %d starts with %d, want %d",
					c.Rank(), j, r.Int64(off), want)
			}
			off += j + 1
		}
	})
}

func TestScan(t *testing.T) {
	const P = 5
	mustRun(t, testOpts(P), func(c *Comm) {
		s := AllocBuf(TypeInt, 1)
		r := AllocBuf(TypeInt, 1)
		s.SetInt64(0, int64(c.Rank()+1))
		c.Scan(s, r, OpSum)
		want := int64((c.Rank() + 1) * (c.Rank() + 2) / 2)
		if r.Int64(0) != want {
			t.Errorf("rank %d scan = %d, want %d", c.Rank(), r.Int64(0), want)
		}
	})
}

func TestReduceScatter(t *testing.T) {
	const P = 3
	mustRun(t, testOpts(P), func(c *Comm) {
		counts := []int{1, 2, 1}
		s := AllocBuf(TypeInt, 4)
		for i := 0; i < 4; i++ {
			s.SetInt64(i, int64(i+1)) // same on all ranks → reduce = P*(i+1)
		}
		r := AllocBuf(TypeInt, counts[c.Rank()])
		c.ReduceScatter(s, r, counts, OpSum)
		offs := []int{0, 1, 3}
		for i := 0; i < counts[c.Rank()]; i++ {
			want := int64(P * (offs[c.Rank()] + i + 1))
			if r.Int64(i) != want {
				t.Errorf("rank %d element %d = %d, want %d", c.Rank(), i, r.Int64(i), want)
			}
		}
	})
}

func TestSplitHalves(t *testing.T) {
	const P = 8
	mustRun(t, testOpts(P), func(c *Comm) {
		color := 0
		if c.Rank() >= P/2 {
			color = 1
		}
		sub := c.Split(color, c.Rank())
		if sub == nil {
			t.Fatalf("rank %d got nil sub-communicator", c.Rank())
		}
		if sub.Size() != P/2 {
			t.Errorf("sub size = %d, want %d", sub.Size(), P/2)
		}
		wantLocal := c.Rank() % (P / 2)
		if sub.Rank() != wantLocal {
			t.Errorf("world rank %d has sub rank %d, want %d", c.Rank(), sub.Rank(), wantLocal)
		}
		// Collectives on the sub-communicator are independent: reduce
		// rank sums per half.
		s := AllocBuf(TypeInt, 1)
		r := AllocBuf(TypeInt, 1)
		s.SetInt64(0, int64(c.Rank()))
		sub.Allreduce(s, r, OpSum)
		want := int64(0 + 1 + 2 + 3)
		if color == 1 {
			want = 4 + 5 + 6 + 7
		}
		if r.Int64(0) != want {
			t.Errorf("half %d sum = %d, want %d", color, r.Int64(0), want)
		}
	})
}

func TestSplitUndefined(t *testing.T) {
	mustRun(t, testOpts(4), func(c *Comm) {
		color := 0
		if c.Rank() == 3 {
			color = Undefined
		}
		sub := c.Split(color, 0)
		if c.Rank() == 3 {
			if sub != nil {
				t.Error("Undefined rank received a communicator")
			}
			return
		}
		if sub == nil || sub.Size() != 3 {
			t.Errorf("rank %d: bad sub communicator", c.Rank())
		}
	})
}

func TestSplitKeyOrdering(t *testing.T) {
	const P = 4
	mustRun(t, testOpts(P), func(c *Comm) {
		// Reverse the ranks via the key.
		sub := c.Split(0, P-c.Rank())
		want := P - 1 - c.Rank()
		if sub.Rank() != want {
			t.Errorf("world rank %d got sub rank %d, want %d", c.Rank(), sub.Rank(), want)
		}
	})
}

func TestDup(t *testing.T) {
	mustRun(t, testOpts(3), func(c *Comm) {
		d := c.Dup()
		if d.Size() != c.Size() || d.Rank() != c.Rank() {
			t.Errorf("dup mismatch: %d/%d vs %d/%d", d.Rank(), d.Size(), c.Rank(), c.Size())
		}
		if d.ContextID() == c.ContextID() {
			t.Error("dup shares context id with parent")
		}
		// Traffic on the dup must not interfere with the parent.
		b := AllocBuf(TypeInt, 1)
		if c.Rank() == 0 {
			b.SetInt64(0, 5)
			d.Send(b, 1, 0)
			b.SetInt64(0, 9)
			c.Send(b, 1, 0)
		} else if c.Rank() == 1 {
			c.Recv(b, 0, 0)
			if b.Int64(0) != 9 {
				t.Errorf("parent comm recv = %d, want 9", b.Int64(0))
			}
			d.Recv(b, 0, 0)
			if b.Int64(0) != 5 {
				t.Errorf("dup comm recv = %d, want 5", b.Int64(0))
			}
		}
	})
}

func TestCollectiveMismatchDetected(t *testing.T) {
	_, err := Run(testOpts(2), func(c *Comm) {
		if c.Rank() == 0 {
			c.Barrier()
		} else {
			b := AllocBuf(TypeInt, 1)
			c.Bcast(b, 0)
		}
	})
	if err == nil {
		t.Fatal("expected collective mismatch error")
	}
}

func TestLateSenderWaitExact(t *testing.T) {
	// Virtual time: sender is late by exactly `extra`; the receiver's
	// waiting time (sendEnter - recvEnter) must equal it.
	const extra = 0.3
	tr := mustRun(t, testOpts(2), func(c *Comm) {
		b := AllocBuf(TypeInt, 1)
		if c.Rank() == 0 {
			c.Work(extra)
			c.Send(b, 1, 0)
		} else {
			c.Recv(b, 0, 0)
		}
	})
	var send, recv *trace.Event
	for i := range tr.Events {
		ev := &tr.Events[i]
		if ev.Kind == trace.KindSend {
			send = ev
		}
		if ev.Kind == trace.KindRecv {
			recv = ev
		}
	}
	if send == nil || recv == nil {
		t.Fatal("missing message events")
	}
	if send.Match != recv.Match {
		t.Errorf("match ids differ: %d vs %d", send.Match, recv.Match)
	}
	wait := send.Time - recv.Aux
	if math.Abs(wait-extra) > 1e-9 {
		t.Errorf("late-sender wait = %v, want exactly %v", wait, extra)
	}
}

func TestInitFinalizeRegions(t *testing.T) {
	tr := mustRun(t, testOpts(2), func(c *Comm) {
		c.Work(0.01)
	})
	st := trace.ComputeStats(tr)
	if st.RegionCount("MPI_Init") != 2 {
		t.Errorf("MPI_Init count = %d, want 2", st.RegionCount("MPI_Init"))
	}
	if st.RegionCount("MPI_Finalize") != 2 {
		t.Errorf("MPI_Finalize count = %d, want 2", st.RegionCount("MPI_Finalize"))
	}
	cost := DefaultCost()
	if got := st.RegionInclusive("MPI_Init"); got < 2*cost.InitTime*0.99 {
		t.Errorf("MPI_Init inclusive = %v, want >= %v", got, 2*cost.InitTime)
	}
}

func TestUntracedRun(t *testing.T) {
	opt := testOpts(2)
	opt.Untraced = true
	tr, err := Run(opt, func(c *Comm) {
		b := AllocBuf(TypeInt, 1)
		if c.Rank() == 0 {
			c.Send(b, 1, 0)
		} else {
			c.Recv(b, 0, 0)
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatalf("untraced run failed: %v", err)
	}
	if tr != nil {
		t.Error("untraced run returned a trace")
	}
}

func TestDeterminism(t *testing.T) {
	// Two identical virtual runs must produce identical event timings.
	run := func() []float64 {
		tr := mustRun(t, testOpts(4), func(c *Comm) {
			dd := distr.Val2{Low: 0.01, High: 0.05}
			c.DoWork(distr.Linear, dd, 1.0)
			c.Barrier()
			b := AllocBuf(TypeDouble, 16)
			c.Bcast(b, 0)
			PatternShift(c, b.Clone(), b, DirUp, PatternOpts{})
		})
		var times []float64
		for _, ev := range tr.Events {
			times = append(times, ev.Time)
		}
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d time differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPatternSendRecvPairs(t *testing.T) {
	for _, dir := range []Direction{DirUp, DirDown} {
		for _, p := range []int{2, 4, 5, 7} {
			tr := mustRun(t, testOpts(p), func(c *Comm) {
				buf := c.BaseBuf()
				PatternSendRecv(c, buf, dir, PatternOpts{})
			})
			sends, recvs := 0, 0
			for _, ev := range tr.Events {
				switch ev.Kind {
				case trace.KindSend:
					sends++
					if ev.CRank%2 != 0 {
						t.Errorf("dir %v P=%d: odd rank %d sent", dir, p, ev.CRank)
					}
				case trace.KindRecv:
					recvs++
				}
			}
			wantPairs := p / 2
			if dir == DirDown {
				// Even rank e sends to e-1: pairs (2,1),(4,3)...
				wantPairs = (p - 1) / 2
			}
			if sends != wantPairs || recvs != wantPairs {
				t.Errorf("dir %v P=%d: %d sends %d recvs, want %d pairs", dir, p, sends, recvs, wantPairs)
			}
		}
	}
}

func TestPatternShiftAllRanks(t *testing.T) {
	const P = 5
	tr := mustRun(t, testOpts(P), func(c *Comm) {
		s := AllocBuf(TypeInt, 1)
		r := AllocBuf(TypeInt, 1)
		s.SetInt64(0, int64(c.Rank()))
		PatternShift(c, s, r, DirUp, PatternOpts{})
		want := int64((c.Rank() + P - 1) % P)
		if r.Int64(0) != want {
			t.Errorf("rank %d received %d, want %d", c.Rank(), r.Int64(0), want)
		}
	})
	sends := 0
	for _, ev := range tr.Events {
		if ev.Kind == trace.KindSend {
			sends++
		}
	}
	if sends != P {
		t.Errorf("%d sends, want %d", sends, P)
	}
}

func TestVBufTotals(t *testing.T) {
	mustRun(t, testOpts(4), func(c *Comm) {
		v := AllocVBuf(c, TypeDouble, distr.Same, distr.Val1{Val: 5}, 2.0, 0)
		if v.Total != 40 {
			t.Errorf("total = %d, want 40", v.Total)
		}
		if v.Buf.Count != 10 {
			t.Errorf("portion = %d, want 10", v.Buf.Count)
		}
		if (c.Rank() == 0) != (v.RootBuf != nil) {
			t.Errorf("rank %d rootbuf presence wrong", c.Rank())
		}
	})
}

func TestSetBase(t *testing.T) {
	mustRun(t, testOpts(2), func(c *Comm) {
		c.SetBase(TypeInt, 17)
		b := c.BaseBuf()
		if b.Type != TypeInt || b.Count != 17 {
			t.Errorf("base buf = %v×%d", b.Type, b.Count)
		}
	})
}

func TestWorkDistributionTiming(t *testing.T) {
	// par_do_mpi_work with a Peak distribution: rank 2 works 0.5s, the
	// rest 0.1s; check virtual clocks via WTime.
	mustRun(t, testOpts(4), func(c *Comm) {
		before := c.WTime()
		dd := distr.Val2N{Low: 0.1, High: 0.5, N: 2}
		c.DoWork(distr.Peak, dd, 1.0)
		got := c.WTime() - before
		want := 0.1
		if c.Rank() == 2 {
			want = 0.5
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("rank %d worked %v, want %v", c.Rank(), got, want)
		}
	})
}
