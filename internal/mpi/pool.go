package mpi

import (
	"math/bits"
	"sync"
)

// bytePools recycles the two []byte allocation-churn sources of a run —
// Buf backing arrays and in-flight message payloads — in power-of-two size
// classes: class c serves lengths in (2^(c-1), 2^c] from slabs of capacity
// 2^c.  At fuzzer scale a campaign allocates and drops these slices
// millions of times; recycling them keeps the garbage collector out of the
// hot path.
var bytePools [31]sync.Pool

// getBytes returns a slice of length n.  A recycled slab holds arbitrary
// stale bytes; pass zero to clear it (AllocBuf's zeroed-buffer promise) or
// false when every byte is about to be overwritten (payload copies).
func getBytes(n int, zero bool) []byte {
	if n <= 0 {
		// Non-nil so empty buffers stay sendable (checkBuf treats nil
		// Data as freed).
		return make([]byte, 0)
	}
	c := bits.Len(uint(n - 1))
	if c >= len(bytePools) {
		return make([]byte, n)
	}
	if v, _ := bytePools[c].Get().(*[]byte); v != nil {
		s := (*v)[:n]
		if zero {
			clear(s)
		}
		return s
	}
	return make([]byte, n, 1<<c)
}

// putBytes returns a slice's backing array to its size class.  The class
// is floor(log2(cap)) so every slab in class c has capacity >= 2^c, the
// most getBytes will reslice it to.
func putBytes(s []byte) {
	c := bits.Len(uint(cap(s))) - 1
	if c < 0 || c >= len(bytePools) {
		return
	}
	s = s[:0]
	bytePools[c].Put(&s)
}
