// Datatypes and typed buffer management (paper §3.1.3).
package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Datatype identifies an element type of a message buffer.
type Datatype uint8

const (
	// TypeByte is an uninterpreted 8-bit element (MPI_BYTE).
	TypeByte Datatype = iota
	// TypeChar is an 8-bit character element (MPI_CHAR).
	TypeChar
	// TypeInt is a 64-bit signed integer element (MPI_INT; widened to 64
	// bits as is natural in Go).
	TypeInt
	// TypeDouble is a 64-bit IEEE float element (MPI_DOUBLE).
	TypeDouble
)

// Size returns the element size in bytes.
func (d Datatype) Size() int {
	switch d {
	case TypeByte, TypeChar:
		return 1
	case TypeInt, TypeDouble:
		return 8
	default:
		panic(fmt.Sprintf("mpi: unknown datatype %d", d))
	}
}

// String names the datatype.
func (d Datatype) String() string {
	switch d {
	case TypeByte:
		return "MPI_BYTE"
	case TypeChar:
		return "MPI_CHAR"
	case TypeInt:
		return "MPI_INT"
	case TypeDouble:
		return "MPI_DOUBLE"
	default:
		return fmt.Sprintf("datatype(%d)", uint8(d))
	}
}

// ParseDatatype converts a CLI name ("int", "double", "byte", "char") to a
// Datatype.
func ParseDatatype(s string) (Datatype, error) {
	switch s {
	case "byte", "MPI_BYTE":
		return TypeByte, nil
	case "char", "MPI_CHAR":
		return TypeChar, nil
	case "int", "MPI_INT":
		return TypeInt, nil
	case "double", "MPI_DOUBLE":
		return TypeDouble, nil
	default:
		return 0, fmt.Errorf("mpi: unknown datatype %q", s)
	}
}

// Op identifies a reduction operation.
type Op uint8

const (
	// OpSum adds elements (MPI_SUM).
	OpSum Op = iota
	// OpProd multiplies elements (MPI_PROD).
	OpProd
	// OpMax takes the elementwise maximum (MPI_MAX).
	OpMax
	// OpMin takes the elementwise minimum (MPI_MIN).
	OpMin
	// OpLAnd is logical AND: nonzero is true (MPI_LAND).
	OpLAnd
	// OpLOr is logical OR (MPI_LOR).
	OpLOr
	// OpBAnd is bitwise AND on integer types (MPI_BAND).
	OpBAnd
	// OpBOr is bitwise OR on integer types (MPI_BOR).
	OpBOr
)

// String names the op.
func (o Op) String() string {
	switch o {
	case OpSum:
		return "MPI_SUM"
	case OpProd:
		return "MPI_PROD"
	case OpMax:
		return "MPI_MAX"
	case OpMin:
		return "MPI_MIN"
	case OpLAnd:
		return "MPI_LAND"
	case OpLOr:
		return "MPI_LOR"
	case OpBAnd:
		return "MPI_BAND"
	case OpBOr:
		return "MPI_BOR"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// element accessors on raw little-endian storage.

func getFloat(data []byte, i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
}

func putFloat(data []byte, i int, v float64) {
	binary.LittleEndian.PutUint64(data[i*8:], math.Float64bits(v))
}

func getInt(data []byte, i int) int64 {
	return int64(binary.LittleEndian.Uint64(data[i*8:]))
}

func putInt(data []byte, i int, v int64) {
	binary.LittleEndian.PutUint64(data[i*8:], uint64(v))
}

func boolTo[T int64 | float64](b bool) T {
	if b {
		return 1
	}
	return 0
}

// reduceInto applies dst[i] = op(dst[i], src[i]) elementwise for count
// elements of type t.
func reduceInto(dst, src []byte, t Datatype, op Op, count int) error {
	switch t {
	case TypeDouble:
		for i := 0; i < count; i++ {
			a, b := getFloat(dst, i), getFloat(src, i)
			var r float64
			switch op {
			case OpSum:
				r = a + b
			case OpProd:
				r = a * b
			case OpMax:
				r = math.Max(a, b)
			case OpMin:
				r = math.Min(a, b)
			case OpLAnd:
				r = boolTo[float64](a != 0 && b != 0)
			case OpLOr:
				r = boolTo[float64](a != 0 || b != 0)
			default:
				return fmt.Errorf("mpi: op %v not defined for %v", op, t)
			}
			putFloat(dst, i, r)
		}
	case TypeInt:
		for i := 0; i < count; i++ {
			a, b := getInt(dst, i), getInt(src, i)
			var r int64
			switch op {
			case OpSum:
				r = a + b
			case OpProd:
				r = a * b
			case OpMax:
				r = max(a, b)
			case OpMin:
				r = min(a, b)
			case OpLAnd:
				r = boolTo[int64](a != 0 && b != 0)
			case OpLOr:
				r = boolTo[int64](a != 0 || b != 0)
			case OpBAnd:
				r = a & b
			case OpBOr:
				r = a | b
			default:
				return fmt.Errorf("mpi: op %v not defined for %v", op, t)
			}
			putInt(dst, i, r)
		}
	case TypeByte, TypeChar:
		for i := 0; i < count; i++ {
			a, b := dst[i], src[i]
			var r byte
			switch op {
			case OpSum:
				r = a + b
			case OpProd:
				r = a * b
			case OpMax:
				r = max(a, b)
			case OpMin:
				r = min(a, b)
			case OpBAnd:
				r = a & b
			case OpBOr:
				r = a | b
			case OpLAnd:
				if a != 0 && b != 0 {
					r = 1
				}
			case OpLOr:
				if a != 0 || b != 0 {
					r = 1
				}
			default:
				return fmt.Errorf("mpi: op %v not defined for %v", op, t)
			}
			dst[i] = r
		}
	default:
		return fmt.Errorf("mpi: reduce on unknown datatype %v", t)
	}
	return nil
}
