package mpi

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/distr"
	"repro/internal/trace"
)

// TestScale64Ranks exercises the substrate at a "real-world size" rank
// count: a multi-phase program over 64 simulated ranks must run, stay
// deterministic, and produce a well-formed trace.
func TestScale64Ranks(t *testing.T) {
	const P = 64
	opt := Options{Procs: P, Timeout: 120 * time.Second}
	run := func() *trace.Trace {
		tr, err := Run(opt, func(c *Comm) {
			dd := distr.Val2{Low: 0.001, High: 0.01}
			c.DoWork(distr.Linear, dd, 1.0)
			c.Barrier()
			b := AllocBuf(TypeDouble, 32)
			c.Bcast(b, 0)
			s := AllocBuf(TypeInt, 1)
			r := AllocBuf(TypeInt, 1)
			s.SetInt64(0, int64(c.Rank()))
			c.Allreduce(s, r, OpSum)
			if r.Int64(0) != P*(P-1)/2 {
				t.Errorf("allreduce over %d ranks = %d", P, r.Int64(0))
			}
			PatternShift(c, s, r, DirUp, PatternOpts{})
			sub := c.Split(c.Rank()%4, c.Rank())
			sub.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	tr1 := run()
	tr2 := run()
	if len(tr1.Events) != len(tr2.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(tr1.Events), len(tr2.Events))
	}
	for i := range tr1.Events {
		if tr1.Events[i].Time != tr2.Events[i].Time {
			t.Fatalf("64-rank run not deterministic at event %d", i)
		}
	}
	if len(tr1.Locations) != P {
		t.Errorf("locations = %d", len(tr1.Locations))
	}
}

// TestQuickRingDataIntegrity: for random payload sizes and rank counts,
// a full ring circulation returns every rank's original data.
func TestQuickRingDataIntegrity(t *testing.T) {
	inv := func(pRaw, nRaw uint8) bool {
		P := int(pRaw%6) + 2  // 2..7 ranks
		n := int(nRaw%64) + 1 // 1..64 elements
		ok := true
		_, err := Run(Options{Procs: P, Untraced: true, Timeout: 30 * time.Second},
			func(c *Comm) {
				s := AllocBuf(TypeInt, n)
				r := AllocBuf(TypeInt, n)
				s.FillSeq(c.Rank())
				for step := 0; step < P; step++ {
					c.Sendrecv(s, (c.Rank()+1)%P, 0, r, (c.Rank()+P-1)%P, 0)
					s, r = r, s
				}
				want := AllocBuf(TypeInt, n)
				want.FillSeq(c.Rank())
				if !s.Equal(want) {
					ok = false
				}
			})
		return err == nil && ok
	}
	if err := quick.Check(inv, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickReduceMatchesSerial: Allreduce(SUM) over random contributions
// equals the serially computed sum.
func TestQuickReduceMatchesSerial(t *testing.T) {
	inv := func(pRaw uint8, vals [8]int16) bool {
		P := int(pRaw%5) + 2 // 2..6 ranks
		var want int64
		for i := 0; i < P; i++ {
			want += int64(vals[i%8])
		}
		ok := true
		_, err := Run(Options{Procs: P, Untraced: true, Timeout: 30 * time.Second},
			func(c *Comm) {
				s := AllocBuf(TypeInt, 1)
				r := AllocBuf(TypeInt, 1)
				s.SetInt64(0, int64(vals[c.Rank()%8]))
				c.Allreduce(s, r, OpSum)
				if r.Int64(0) != want {
					ok = false
				}
			})
		return err == nil && ok
	}
	if err := quick.Check(inv, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickVBufCountsAgree: every rank derives identical counts/displs
// from the same distribution, for random distribution parameters.
func TestQuickVBufCountsAgree(t *testing.T) {
	inv := func(lowRaw, highRaw uint8) bool {
		low := float64(lowRaw%32) + 1
		high := low + float64(highRaw%32)
		agree := true
		_, err := Run(Options{Procs: 4, Untraced: true, Timeout: 30 * time.Second},
			func(c *Comm) {
				v := AllocVBuf(c, TypeDouble, distr.Linear,
					distr.Val2{Low: low, High: high}, 1.0, 2)
				// Gatherv exercises the agreement: mismatched counts
				// would corrupt or crash.
				for i := 0; i < v.Buf.Count; i++ {
					v.Buf.SetFloat64(i, float64(c.Rank()))
				}
				c.Gatherv(v)
				if c.Rank() == 2 {
					off := 0
					for rank, n := range v.Counts {
						for i := 0; i < n; i++ {
							if v.RootBuf.Float64(off) != float64(rank) {
								agree = false
							}
							off++
						}
					}
				}
			})
		return err == nil && agree
	}
	if err := quick.Check(inv, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// BenchmarkEventEngineRanks measures raw event-engine dispatch throughput
// at 10³–10⁵ ranks, untraced, so the scheduler itself (heap churn, park/
// resume handoffs, collective completion) dominates the measurement
// rather than trace recording.
func BenchmarkEventEngineRanks(b *testing.B) {
	for _, procs := range []int{4096, 16384, 65536} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := Run(Options{Procs: procs, Untraced: true, Engine: EngineEvent,
					Timeout: 300 * time.Second}, func(c *Comm) {
					buf := AllocBuf(TypeDouble, 4)
					defer FreeBuf(buf)
					next := (c.Rank() + 1) % c.Size()
					prev := (c.Rank() - 1 + c.Size()) % c.Size()
					for round := 0; round < 3; round++ {
						c.Sendrecv(buf, next, 1, buf, prev, 1)
						c.Allreduce(buf, buf, OpSum)
					}
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(procs), "ranks")
		})
	}
}
