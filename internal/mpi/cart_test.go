package mpi

import (
	"testing"
)

func TestCartCoordsRoundTrip(t *testing.T) {
	mustRun(t, testOpts(6), func(c *Comm) {
		ct := c.CartCreate([]int{2, 3}, []bool{false, false})
		if ct == nil {
			t.Fatalf("rank %d excluded from exact-fit grid", c.Rank())
		}
		// Row-major: rank = x*3 + y.
		coords := ct.Coords()
		if want := ct.Rank() / 3; coords[0] != want {
			t.Errorf("rank %d x = %d, want %d", ct.Rank(), coords[0], want)
		}
		if want := ct.Rank() % 3; coords[1] != want {
			t.Errorf("rank %d y = %d, want %d", ct.Rank(), coords[1], want)
		}
		if back := ct.RankOf(coords); back != ct.Rank() {
			t.Errorf("round trip %v -> %d, want %d", coords, back, ct.Rank())
		}
		d := ct.Dims()
		if d[0] != 2 || d[1] != 3 {
			t.Errorf("dims = %v", d)
		}
	})
}

func TestCartExcessRanksExcluded(t *testing.T) {
	mustRun(t, testOpts(5), func(c *Comm) {
		ct := c.CartCreate([]int{2, 2}, []bool{false, false})
		if c.Rank() == 4 {
			if ct != nil {
				t.Error("excess rank received a grid communicator")
			}
			return
		}
		if ct == nil || ct.Size() != 4 {
			t.Errorf("rank %d: bad grid", c.Rank())
		}
	})
}

func TestCartShiftPeriodic(t *testing.T) {
	mustRun(t, testOpts(4), func(c *Comm) {
		ct := c.CartCreate([]int{4}, []bool{true})
		src, dst := ct.Shift(0, 1)
		if dst != (ct.Rank()+1)%4 || src != (ct.Rank()+3)%4 {
			t.Errorf("rank %d shift = (%d,%d)", ct.Rank(), src, dst)
		}
		// Data makes a full circle in 4 shifts.
		s := AllocBuf(TypeInt, 1)
		r := AllocBuf(TypeInt, 1)
		s.SetInt64(0, int64(ct.Rank()))
		for i := 0; i < 4; i++ {
			src, dst := ct.Shift(0, 1)
			ct.SendrecvNeighbor(s, dst, 5, r, src, 5)
			s, r = r, s
		}
		if s.Int64(0) != int64(ct.Rank()) {
			t.Errorf("rank %d: data did not circle back: %d", ct.Rank(), s.Int64(0))
		}
	})
}

func TestCartShiftNonPeriodicEdges(t *testing.T) {
	mustRun(t, testOpts(3), func(c *Comm) {
		ct := c.CartCreate([]int{3}, []bool{false})
		src, dst := ct.Shift(0, 1)
		switch ct.Rank() {
		case 0:
			if src != ProcNull || dst != 1 {
				t.Errorf("rank 0 shift = (%d,%d)", src, dst)
			}
		case 2:
			if src != 1 || dst != ProcNull {
				t.Errorf("rank 2 shift = (%d,%d)", src, dst)
			}
		}
		// A halo-style exchange over the open chain must not deadlock.
		s := AllocBuf(TypeInt, 1)
		r := AllocBuf(TypeInt, 1)
		s.SetInt64(0, int64(ct.Rank()*7))
		ct.SendrecvNeighbor(s, dst, 6, r, src, 6)
		if ct.Rank() > 0 && r.Int64(0) != int64((ct.Rank()-1)*7) {
			t.Errorf("rank %d received %d", ct.Rank(), r.Int64(0))
		}
	})
}

func TestCart2DNeighborExchange(t *testing.T) {
	mustRun(t, testOpts(6), func(c *Comm) {
		ct := c.CartCreate([]int{2, 3}, []bool{false, true})
		s := AllocBuf(TypeInt, 1)
		r := AllocBuf(TypeInt, 1)
		// Exchange along the periodic y dimension.
		s.SetInt64(0, int64(ct.Rank()))
		src, dst := ct.Shift(1, 1)
		ct.SendrecvNeighbor(s, dst, 7, r, src, 7)
		co := ct.Coords()
		wantSrc := ct.RankOf([]int{co[0], co[1] - 1})
		if r.Int64(0) != int64(wantSrc) {
			t.Errorf("rank %d received %d, want %d", ct.Rank(), r.Int64(0), wantSrc)
		}
	})
}

func TestCartValidation(t *testing.T) {
	mustRun(t, testOpts(2), func(c *Comm) {
		assertPanics := func(name string, f func()) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}
		if c.Rank() == 0 {
			assertPanics("oversized grid", func() { c.CartCreate([]int{5}, []bool{false}) })
		} else {
			assertPanics("oversized grid", func() { c.CartCreate([]int{5}, []bool{false}) })
		}
	})
	_, err := Run(testOpts(2), func(c *Comm) {
		c.CartCreate([]int{2, 2}, []bool{false}) // dims/periodic mismatch
	})
	if err == nil {
		t.Error("dims/periodic mismatch accepted")
	}
}
